// Ablation: the static memory latency constant of the ISS timing model.
//
// The paper's model is "conservative in assigning statically to all the
// transactions the largest memory access latency without contentions
// (9 cycles)". This sweep shows how the estimate-vs-RTL error moves as the
// constant varies from 1 to 13, and with the NUMA-distance-aware
// alternative, justifying the paper's choice.
#include "bench_common.h"

#include "iss/machine.h"
#include "uarch/cluster_sim.h"

namespace tsim::bench {
namespace {

void run(const BenchOptions& opt) {
  const tera::TeraPoolConfig cluster = tera::TeraPoolConfig::full();
  const u32 core_cap = opt.full ? 256 : 16;
  const u32 n = 8;
  const auto prec = kern::Precision::k16Half;  // most memory-bound variant
  std::printf("Ablation | static memory latency of the ISS timing model "
              "(16bHalf 8x8, cores capped at %u)\n\n", core_cap);

  const auto lay = parallel_layout(cluster, n, prec, core_cap);
  const auto program = kern::build_mmse_program(lay);

  uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
  rtl.load_program(program);
  stage_random_problems(rtl.memory(), lay, 12.0, 33);
  const u64 rtl_cycles = rtl.run().cycles;

  sim::Table table({"model", "ISS cycles", "RTL cycles", "error"});
  const auto add = [&](const std::string& label, const iss::TimingConfig& t) {
    iss::Machine machine(cluster, t, lay.num_cores);
    machine.load_program(program);
    stage_random_problems(machine.memory(), lay, 12.0, 33);
    machine.run();
    const u64 est = machine.estimated_cycles();
    table.add_row({label, sim::strf("%llu", static_cast<unsigned long long>(est)),
                   sim::strf("%llu", static_cast<unsigned long long>(rtl_cycles)),
                   sim::strf("%+.1f%%", 100.0 * (static_cast<double>(est) -
                                                 static_cast<double>(rtl_cycles)) /
                                            static_cast<double>(rtl_cycles))});
  };
  for (const u32 lat : {1u, 3u, 5u, 7u, 9u, 11u, 13u}) {
    iss::TimingConfig t;
    t.static_mem_latency = lat;
    add(sim::strf("static latency = %u%s", lat, lat == 9 ? " (paper)" : ""), t);
  }
  iss::TimingConfig numa;
  numa.numa_latency = true;
  add("NUMA-distance latency", numa);
  table.print();
  opt.maybe_write(table, "ablation_memlatency");
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
