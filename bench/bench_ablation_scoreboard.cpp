// Ablation: the RAW scoreboard of the ISS timing model (paper Sec. III-B,
// Fig. 7 green annotations: the scoreboard improves the estimate by 12-16%
// over a bare instruction count on small MIMO).
//
// Rows compare, against the cycle-accurate reference: (a) the full ISS
// timing model, (b) scoreboard disabled (every instruction retires in its
// issue cycles), and (c) the raw instruction count.
#include "bench_common.h"

#include "iss/machine.h"
#include "uarch/cluster_sim.h"

namespace tsim::bench {
namespace {

void run(const BenchOptions& opt) {
  const tera::TeraPoolConfig cluster = tera::TeraPoolConfig::full();
  const u32 core_cap = opt.full ? 256 : 16;
  std::printf("Ablation | RAW scoreboard contribution to the cycle estimate "
              "(cores capped at %u)\n\n", core_cap);

  sim::Table table({"MIMO", "precision", "RTL cycles", "ISS (scoreboard)",
                    "err", "ISS (no scoreboard)", "err", "instr count", "err"});
  for (const u32 n : mimo_sizes()) {
    for (const kern::Precision prec :
         {kern::Precision::k16Half, kern::Precision::k16CDotp}) {
      const auto lay = parallel_layout(cluster, n, prec, core_cap);
      const auto program = kern::build_mmse_program(lay);

      uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
      rtl.load_program(program);
      stage_random_problems(rtl.memory(), lay, 12.0, 21 + n);
      const u64 rtl_cycles = rtl.run().cycles;

      const auto run_iss = [&](bool scoreboard) {
        iss::TimingConfig t;
        t.scoreboard = scoreboard;
        iss::Machine machine(cluster, t, lay.num_cores);
        machine.load_program(program);
        stage_random_problems(machine.memory(), lay, 12.0, 21 + n);
        machine.run();
        u64 max_instr = 0;
        for (u32 c = 0; c < machine.num_harts(); ++c)
          max_instr = std::max(max_instr, machine.hart(c).instructions());
        return std::pair<u64, u64>(machine.estimated_cycles(), max_instr);
      };
      const auto [with_sb, max_instr] = run_iss(true);
      const auto [without_sb, unused] = run_iss(false);
      (void)unused;
      const auto err = [&](u64 v) {
        return sim::strf("%+.0f%%", 100.0 * (static_cast<double>(v) -
                                             static_cast<double>(rtl_cycles)) /
                                        static_cast<double>(rtl_cycles));
      };
      table.add_row({sim::strf("%ux%u", n, n), std::string(name_of(prec)),
                     sim::strf("%llu", static_cast<unsigned long long>(rtl_cycles)),
                     sim::strf("%llu", static_cast<unsigned long long>(with_sb)),
                     err(with_sb),
                     sim::strf("%llu", static_cast<unsigned long long>(without_sb)),
                     err(without_sb),
                     sim::strf("%llu", static_cast<unsigned long long>(max_instr)),
                     err(max_instr)});
    }
  }
  table.print();
  opt.maybe_write(table, "ablation_scoreboard");
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
