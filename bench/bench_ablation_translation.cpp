// Ablation: the translation cache (this repo's SBT analog).
//
// Banshee's defining trick is translating the binary once instead of
// decoding at every step. This google-benchmark binary measures the fast
// ISS (predecoded dispatch) against a decode-every-step interpreter built
// from the same semantics, quantifying what "static binary translation"
// buys on this substrate.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "iss/machine.h"
#include "rv/decode.h"
#include "rv/exec.h"

namespace tsim::bench {
namespace {

rvasm::Program batched_program(u32 n, u32 problems) {
  const auto cluster = tera::TeraPoolConfig::full();
  const auto lay = batched_layout(cluster, n, kern::Precision::k16CDotp, problems);
  return kern::build_mmse_program(lay);
}

/// Fast ISS: predecoded translation cache.
void BM_TranslatedExecution(benchmark::State& state) {
  const auto cluster = tera::TeraPoolConfig::full();
  const auto lay =
      batched_layout(cluster, static_cast<u32>(state.range(0)), kern::Precision::k16CDotp, 16);
  iss::Machine machine(cluster, iss::TimingConfig{}, 1);
  machine.load_program(kern::build_mmse_program(lay));
  stage_random_problems(machine.memory(), lay, 12.0, 1);
  u64 instructions = 0;
  for (auto _ : state) {
    machine.reset_harts();
    instructions += machine.run().instructions;
  }
  state.counters["MIPS"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TranslatedExecution)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

/// Reference interpreter: re-decodes every instruction word from memory.
void BM_DecodeEveryStep(benchmark::State& state) {
  const auto cluster = tera::TeraPoolConfig::full();
  const auto lay =
      batched_layout(cluster, static_cast<u32>(state.range(0)), kern::Precision::k16CDotp, 16);
  const auto program = kern::build_mmse_program(lay);
  tera::ClusterMemory mem(cluster);
  mem.load_program(program.base, program.words);
  bool exited = false;
  mem.set_exit_handler([&](u32) { exited = true; });
  stage_random_problems(mem, lay, 12.0, 1);

  u64 instructions = 0;
  for (auto _ : state) {
    rv::HartState hart;
    hart.pc = program.symbol("_start");
    exited = false;
    while (!exited && !hart.halted) {
      const auto fetch = mem.fetch(hart.pc);
      if (fetch.fault) break;
      const rv::Decoded d = rv::decode(fetch.value);  // <- per-step decode
      rv::execute(d, hart, mem);
      ++instructions;
    }
  }
  state.counters["MIPS"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeEveryStep)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

/// One-time translation cost amortization: how long does predecoding take
/// relative to executing the program once?
void BM_TranslationCost(benchmark::State& state) {
  const auto program = batched_program(4, 16);
  for (auto _ : state) {
    iss::TranslationCache cache(program);
    benchmark::DoNotOptimize(cache.size());
  }
}
BENCHMARK(BM_TranslationCost)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tsim::bench

BENCHMARK_MAIN();
