// Ablation: inner-loop unrolling of the Gram/MVM dot products.
//
// The paper: "Loops are unrolled to minimize RAW stalls, with increasing
// benefits at higher problem sizes" (Sec. V-B). This sweep compares the
// fully-unrolled configuration against partial unroll factors on both
// timing engines.
#include "bench_common.h"

#include "iss/machine.h"
#include "uarch/cluster_sim.h"

namespace tsim::bench {
namespace {

void run(const BenchOptions& opt) {
  const tera::TeraPoolConfig cluster = tera::TeraPoolConfig::full();
  const u32 core_cap = opt.full ? 256 : 16;
  std::printf("Ablation | Gram/MVM inner-loop unrolling (16bwDotp, cores capped "
              "at %u)\n\n", core_cap);

  sim::Table table({"MIMO", "unroll", "instr/core", "ISS cycles", "RTL cycles",
                    "RTL raw-stall%"});
  for (const u32 n : mimo_sizes()) {
    for (const u32 unroll : {1u, 2u, 4u, 0u}) {  // 0 = fully unrolled
      const auto lay = parallel_layout(cluster, n, kern::Precision::k16WDotp, core_cap);
      if (unroll != 0 && (lay.nrx % unroll) != 0) continue;
      const auto program = kern::build_mmse_program(lay, {.gram_unroll = unroll});

      iss::Machine machine(cluster, iss::TimingConfig{}, lay.num_cores);
      machine.load_program(program);
      stage_random_problems(machine.memory(), lay, 12.0, 44 + n);
      machine.run();

      uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
      rtl.load_program(program);
      stage_random_problems(rtl.memory(), lay, 12.0, 44 + n);
      const auto rtl_res = rtl.run();
      const auto agg = rtl.aggregate_stats();

      table.add_row(
          {sim::strf("%ux%u", n, n), unroll == 0 ? "full (paper)" : sim::strf("%u", unroll),
           sim::strf("%llu",
                     static_cast<unsigned long long>(agg.instructions / lay.num_cores)),
           sim::strf("%llu", static_cast<unsigned long long>(machine.estimated_cycles())),
           sim::strf("%llu", static_cast<unsigned long long>(rtl_res.cycles)),
           sim::strf("%.1f", 100.0 * static_cast<double>(agg.stall_raw) /
                                 static_cast<double>(agg.total_cycles()))});
    }
  }
  table.print();
  opt.maybe_write(table, "ablation_unroll");
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
