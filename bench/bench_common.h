// Shared utilities for the figure/table reproduction harnesses.
//
// Every bench binary accepts:
//   --full        paper-scale parameters (slow; default is a laptop-scale
//                 "quick" configuration that preserves the figure's shape)
//   --csv DIR     also write each table as CSV into DIR
//   --json DIR    also write each table as JSON rows into DIR (for recording
//                 BENCH_*.json performance trajectories across commits)
//   --help        usage and exit 0
// and prints the rows/series of its paper figure via sim::Table. Unknown
// flags are a hard error (exit 2), so a typo can never silently run the
// default configuration - the CLI contract the CI cli-contract step checks.
// Benches with binary-specific flags declare them via ExtraFlag so parse()
// can validate the full command line; the bench re-scans argv for its own
// flags afterwards.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "kernels/layout.h"
#include "kernels/mmse_program.h"
#include "sim/cosim.h"
#include "sim/report.h"

namespace tsim::bench {

/// A bench-specific flag BenchOptions::parse should accept (and, for value
/// flags, skip the operand of). The bench re-scans argv for it afterwards.
struct ExtraFlag {
  const char* name;   // e.g. "--guard"
  bool takes_value;   // true: the next argv element is the flag's operand
  const char* help;   // one-line description for --help
};

struct BenchOptions {
  bool full = false;
  std::string csv_dir;
  std::string json_dir;

  static void usage(std::FILE* f, const char* prog,
                    const std::vector<ExtraFlag>& extra) {
    std::fprintf(f, "usage: %s [flags]\n", prog);
    std::fprintf(f, "  --full       paper-scale parameters (default: quick)\n");
    std::fprintf(f, "  --csv DIR    also write each table as CSV into DIR\n");
    std::fprintf(f, "  --json DIR   also write each table as JSON rows into DIR\n");
    for (const ExtraFlag& e : extra)
      std::fprintf(f, "  %s%s  %s\n", e.name, e.takes_value ? " VALUE" : "",
                   e.help);
    std::fprintf(f, "  --help       this message\n");
  }

  static BenchOptions parse(int argc, char** argv,
                            const std::vector<ExtraFlag>& extra = {}) {
    BenchOptions opt;
    const auto need_value = [&](int& i, const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        usage(stdout, argv[0], extra);
        std::exit(0);
      }
      if (std::strcmp(arg, "--full") == 0) {
        opt.full = true;
        continue;
      }
      if (std::strcmp(arg, "--csv") == 0) {
        opt.csv_dir = need_value(i, "--csv");
        continue;
      }
      if (std::strcmp(arg, "--json") == 0) {
        opt.json_dir = need_value(i, "--json");
        continue;
      }
      bool matched = false;
      for (const ExtraFlag& e : extra) {
        if (std::strcmp(arg, e.name) == 0) {
          matched = true;
          if (e.takes_value) need_value(i, e.name);
          break;
        }
      }
      if (!matched) {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
        usage(stderr, argv[0], extra);
        std::exit(2);
      }
    }
    return opt;
  }

  void maybe_write(const sim::Table& table, const std::string& name) const {
    if (!csv_dir.empty()) table.write_csv(csv_dir + "/" + name + ".csv");
    if (!json_dir.empty()) write_json_table(table, json_dir, name);
  }

  /// The one JSON-table writer every trajectory emitter goes through
  /// (bench_iss_mips, bench_ran_throughput, dse_driver): DIR/NAME.json via
  /// sim::write_json_rows. Returns the path written, empty on failure.
  static std::string write_json_table(const sim::Table& table, const std::string& dir,
                                      const std::string& name) {
    const std::string path = dir + "/" + name + ".json";
    return table.write_json(path) ? path : std::string();
  }
};

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The paper's MIMO sizes (NTX = NRX).
inline std::vector<u32> mimo_sizes() { return {4, 8, 16, 32}; }

/// Builds a parallel-MMSE layout with as many cores as fit (capped).
inline kern::MmseLayout parallel_layout(const tera::TeraPoolConfig& cluster, u32 n,
                                        kern::Precision prec, u32 core_cap) {
  kern::MmseLayout lay;
  lay.ntx = n;
  lay.nrx = n;
  lay.prec = prec;
  lay.problems_per_core = 1;
  lay.cluster = cluster;
  const u32 fit = kern::MmseLayout::max_parallel_cores(cluster, n, n, prec);
  lay.num_cores = std::min(fit, core_cap);
  lay.validate();
  return lay;
}

/// Builds a batched layout: `problems` subcarriers on a single Snitch core.
inline kern::MmseLayout batched_layout(const tera::TeraPoolConfig& cluster, u32 n,
                                       kern::Precision prec, u32 problems) {
  kern::MmseLayout lay;
  lay.ntx = n;
  lay.nrx = n;
  lay.prec = prec;
  lay.problems_per_core = problems;
  lay.num_cores = 1;
  lay.cluster = cluster;
  lay.validate();
  return lay;
}

/// Stages one random Rayleigh problem per (core, slot) at a fixed SNR.
inline void stage_random_problems(tera::ClusterMemory& mem, const kern::MmseLayout& lay,
                                  double snr_db, u64 seed) {
  Rng rng(seed);
  phy::Channel ch(phy::ChannelType::kRayleigh, lay.nrx, lay.ntx);
  phy::QamModulator qam(16);
  const sim::Batch batch = sim::generate_batch(
      ch, qam, lay.ntx, lay.num_cores * lay.problems_per_core, snr_db, rng);
  for (u32 c = 0; c < lay.num_cores; ++c)
    for (u32 p = 0; p < lay.problems_per_core; ++p)
      sim::stage_problem(mem, lay, c, p, batch.problems[c * lay.problems_per_core + p]);
}

inline u32 host_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace tsim::bench
