// Figure 10: BER vs SNR over the flat-fading Rayleigh channel, 16QAM and
// 64QAM, for 4x4 and 32x32 MIMO with the 64bDouble golden model and the two
// wide-accumulation 16-bit variants.
//
// Paper shape: only 16bwDotp and 16bCDotp follow the double-precision curve
// (the fast co-simulation "revealed the benefits of accumulating in 32b");
// the fully-loaded Rayleigh MMSE is interference-limited, so BER stays in
// the 1e-1 decade across the sweep. We additionally print 16bHalf to show
// the narrow-accumulation gap the paper describes in the text.
#include "bench_common.h"

#include "sim/mc.h"

namespace tsim::bench {
namespace {

constexpr kern::Precision kCurves[] = {
    kern::Precision::k16Half, kern::Precision::k16WDotp, kern::Precision::k16CDotp};

void run_subfigure(const BenchOptions& opt, u32 n, u32 qam_order,
                   const std::vector<double>& snrs) {
  sim::McConfig cfg;
  cfg.ntx = n;
  cfg.nrx = n;
  cfg.qam_order = qam_order;
  cfg.channel = phy::ChannelType::kRayleigh;
  cfg.target_errors = opt.full ? 400 : 120;
  cfg.max_bits = opt.full ? 400'000 : 30'000;  // Rayleigh BER is high: cheap
  cfg.cluster = tera::TeraPoolConfig::tiny();
  cfg.problems_per_core = 4;
  cfg.host_threads = host_threads();
  sim::McRunner mc(cfg);

  std::printf("\n%ux%u %uQAM Rayleigh\n", n, n, qam_order);
  std::vector<std::string> header = {"SNR [dB]", "64bDouble"};
  for (const auto p : kCurves) header.emplace_back(name_of(p));
  sim::Table table(header);
  for (const double snr : snrs) {
    std::vector<std::string> row = {sim::strf("%.1f", snr)};
    row.push_back(sim::strf("%.3f", mc.golden_point(snr).ber));
    for (const auto prec : kCurves)
      row.push_back(sim::strf("%.3f", mc.dut_point(prec, snr).ber));
    table.add_row(row);
  }
  table.print();
  opt.maybe_write(table, sim::strf("fig10_ber_rayleigh_%ux%u_%uqam", n, n, qam_order));
}

void run(const BenchOptions& opt) {
  std::printf("Fig. 10 | BER vs SNR, flat Rayleigh channel\n");
  const std::vector<double> snrs = opt.full
                                       ? std::vector<double>{0, 2.5, 5, 7.5, 10, 12.5, 15}
                                       : std::vector<double>{0, 7.5, 15};
  for (const u32 qam : {16u, 64u}) {
    run_subfigure(opt, 4, qam, snrs);
    run_subfigure(opt, 32, qam, snrs);
  }
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
