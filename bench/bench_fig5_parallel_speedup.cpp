// Figure 5: CPU-time of the parallel MMSE simulated with the fast ISS
// (multi-threaded, Banshee-analog) and its speedup over the single-threaded
// cycle-accurate model (RTL-analog), per precision and MIMO size.
//
// Paper shape to reproduce: the SBT-class simulator is one to two orders of
// magnitude faster than the cycle-accurate baseline, with the gap growing
// with MIMO size (paper: 3x/12x/30x/63x vs event-driven RTL; our baseline
// is a compiled C++ cycle model, so absolute ratios are smaller - see
// EXPERIMENTS.md).
#include "bench_common.h"

#include "iss/machine.h"
#include "uarch/cluster_sim.h"

namespace tsim::bench {
namespace {

void run(const BenchOptions& opt) {
  const tera::TeraPoolConfig cluster = tera::TeraPoolConfig::full();
  const u32 core_cap = opt.full ? 1024 : 64;
  std::printf("Fig. 5 | parallel MMSE: multi-thread ISS vs single-thread "
              "cycle-accurate model (cores capped at %u)\n\n", core_cap);

  sim::Table table({"MIMO", "precision", "cores", "ISS wall [s]", "ISS CPU [s]",
                    "RTL wall [s]", "speedup (CPU)", "speedup (wall)"});
  const u32 threads = host_threads();
  for (const u32 n : mimo_sizes()) {
    for (const kern::Precision prec : kern::kTimedPrecisions) {
      const auto lay = parallel_layout(cluster, n, prec, core_cap);
      const auto program = kern::build_mmse_program(lay);

      // --- fast ISS, multi-threaded ---
      iss::Machine machine(cluster, iss::TimingConfig{}, lay.num_cores);
      machine.load_program(program);
      stage_random_problems(machine.memory(), lay, 12.0, 42 + n);
      Stopwatch iss_clock;
      const auto iss_res = machine.run_threads(threads);
      const double iss_wall = iss_clock.seconds();
      const double iss_cpu = iss_wall * threads;  // CPU-time upper bound
      check(iss_res.exited, "fig5: ISS run failed");

      // --- cycle-accurate reference, single-threaded ---
      uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
      rtl.load_program(program);
      stage_random_problems(rtl.memory(), lay, 12.0, 42 + n);
      Stopwatch rtl_clock;
      const auto rtl_res = rtl.run();
      const double rtl_wall = rtl_clock.seconds();
      check(rtl_res.exited, "fig5: RTL run failed");

      table.add_row({sim::strf("%ux%u", n, n), std::string(name_of(prec)),
                     sim::strf("%u", lay.num_cores), sim::strf("%.3f", iss_wall),
                     sim::strf("%.3f", iss_cpu), sim::strf("%.3f", rtl_wall),
                     sim::strf("%.1fx", rtl_wall / iss_cpu),
                     sim::strf("%.1fx", rtl_wall / iss_wall)});
    }
  }
  table.print();
  opt.maybe_write(table, "fig5_parallel_speedup");
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
