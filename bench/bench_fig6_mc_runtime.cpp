// Figure 6: runtime of one Monte-Carlo iteration - NSC batched MMSE
// problems on a single Snitch core - simulated on one host thread, and the
// speedup from parallelizing independent OFDM symbols over all host threads.
//
// Paper shape: <3 min per MC iteration (NSC = 1638) single-threaded, down
// to 9.44 s for 4x4; near-linear (73-121x on 128 threads) scaling across
// independent symbols. We report the same rows at laptop scale plus the
// simulator MIPS (paper Sec. V-A: 3.57 MIPS single-thread Banshee).
#include "bench_common.h"

#include <memory>

#include "iss/machine.h"

namespace tsim::bench {
namespace {

void run(const BenchOptions& opt) {
  const tera::TeraPoolConfig cluster = tera::TeraPoolConfig::full();
  // NR 50 MHz carrier: 1638 subcarriers per OFDM symbol (paper Sec. V-A).
  const u32 nsc = opt.full ? 1638 : 128;
  const u32 threads = host_threads();
  std::printf("Fig. 6 | batched MC iteration on one Snitch (NSC = %u), then %u "
              "independent symbols on %u host threads\n\n", nsc, threads, threads);

  sim::Table table({"MIMO", "precision", "instructions", "1-thr wall [s]", "MIPS",
                    "symbols/threads", "N-thr wall [s]", "speedup"});
  for (const u32 n : mimo_sizes()) {
    for (const kern::Precision prec : kern::kTimedPrecisions) {
      const auto lay = batched_layout(cluster, n, prec, nsc);
      const auto program = kern::build_mmse_program(lay);

      // --- one MC iteration, one hart, one host thread ---
      iss::Machine machine(cluster, iss::TimingConfig{}, 1);
      machine.load_program(program);
      stage_random_problems(machine.memory(), lay, 12.0, 7 + n);
      Stopwatch single_clock;
      const auto res = machine.run();
      const double single_wall = single_clock.seconds();
      check(res.exited, "fig6: batched run failed");
      const double mips =
          static_cast<double>(res.instructions) / single_wall / 1e6;

      // --- independent symbols parallelized across host threads ---
      // One machine per symbol, each on its own thread (symbols share
      // nothing, exactly as in the paper's 128-symbol experiment).
      std::vector<std::unique_ptr<iss::Machine>> machines;
      for (u32 t = 0; t < threads; ++t) {
        machines.push_back(std::make_unique<iss::Machine>(cluster,
                                                          iss::TimingConfig{}, 1));
        machines.back()->load_program(program);
        stage_random_problems(machines.back()->memory(), lay, 12.0, 100 + t);
      }
      Stopwatch multi_clock;
      std::vector<std::thread> workers;
      for (u32 t = 0; t < threads; ++t)
        workers.emplace_back([&machines, t] { machines[t]->run(); });
      for (auto& w : workers) w.join();
      const double multi_wall = multi_clock.seconds();
      // Speedup = total work done / time, vs single-thread throughput.
      const double speedup = (single_wall * threads) / multi_wall;

      table.add_row({sim::strf("%ux%u", n, n), std::string(name_of(prec)),
                     sim::strf("%llu", static_cast<unsigned long long>(res.instructions)),
                     sim::strf("%.3f", single_wall), sim::strf("%.2f", mips),
                     sim::strf("%u/%u", threads, threads),
                     sim::strf("%.3f", multi_wall), sim::strf("%.2fx", speedup)});
    }
  }
  table.print();
  opt.maybe_write(table, "fig6_mc_runtime");
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
