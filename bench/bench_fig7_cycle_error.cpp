// Figure 7: parallel-MMSE cycle counts per precision and MIMO size -
// (a) relative cycle count measured by the cycle-accurate model (RTL-analog),
// (b) relative cycle count estimated by the ISS timing model (SBT-analog),
// (c) error of the ISS estimate and of a raw instruction count vs (a).
//
// Paper shape: SBT underestimates RTL cycles (negative errors, ~30% average,
// worst for 16bHalf with its doubled memory operations); the scoreboard
// estimate beats the bare instruction count; the SIMD-variant speedup
// ordering (16bCDotp fastest, then 8bwDotp, 16bwDotp) survives in the
// estimates.
#include "bench_common.h"

#include "iss/machine.h"
#include "uarch/cluster_sim.h"

namespace tsim::bench {
namespace {

struct Row {
  u64 rtl_cycles = 0;
  u64 iss_cycles = 0;
  u64 instructions = 0;  // per-core max, the naive estimate
};

void run(const BenchOptions& opt) {
  const tera::TeraPoolConfig cluster = tera::TeraPoolConfig::full();
  const u32 core_cap = opt.full ? 1024 : 32;
  std::printf("Fig. 7 | MMSE cycle count: cycle-accurate (RTL) vs ISS estimate vs "
              "instruction count (cores capped at %u)\n\n", core_cap);

  sim::Table table({"MIMO", "precision", "RTL kCycles", "rel RTL", "ISS kCycles",
                    "rel ISS", "err ISS", "err instr-count"});
  for (const u32 n : mimo_sizes()) {
    std::vector<Row> rows;
    for (const kern::Precision prec : kern::kTimedPrecisions) {
      const auto lay = parallel_layout(cluster, n, prec, core_cap);
      const auto program = kern::build_mmse_program(lay);

      Row row;
      {
        uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
        rtl.load_program(program);
        stage_random_problems(rtl.memory(), lay, 12.0, 5 + n);
        const auto res = rtl.run();
        check(res.exited, "fig7: RTL run failed");
        row.rtl_cycles = res.cycles;
      }
      {
        iss::Machine machine(cluster, iss::TimingConfig{}, lay.num_cores);
        machine.load_program(program);
        stage_random_problems(machine.memory(), lay, 12.0, 5 + n);
        const auto res = machine.run();
        check(res.exited, "fig7: ISS run failed");
        row.iss_cycles = machine.estimated_cycles();
        u64 max_instr = 0;
        for (u32 c = 0; c < machine.num_harts(); ++c)
          max_instr = std::max(max_instr, machine.hart(c).instructions());
        row.instructions = max_instr;
      }
      rows.push_back(row);
    }
    const double base_rtl = static_cast<double>(rows[0].rtl_cycles);
    const double base_iss = static_cast<double>(rows[0].iss_cycles);
    for (size_t p = 0; p < rows.size(); ++p) {
      const auto& r = rows[p];
      const double err_iss =
          (static_cast<double>(r.iss_cycles) - static_cast<double>(r.rtl_cycles)) /
          static_cast<double>(r.rtl_cycles);
      const double err_ins =
          (static_cast<double>(r.instructions) - static_cast<double>(r.rtl_cycles)) /
          static_cast<double>(r.rtl_cycles);
      table.add_row({sim::strf("%ux%u", n, n),
                     std::string(name_of(kern::kTimedPrecisions[p])),
                     sim::strf("%.2fk", r.rtl_cycles / 1e3),
                     sim::strf("%.2f", r.rtl_cycles / base_rtl),
                     sim::strf("%.2fk", r.iss_cycles / 1e3),
                     sim::strf("%.2f", r.iss_cycles / base_iss),
                     sim::strf("%+.0f%%", err_iss * 100),
                     sim::strf("%+.0f%%", err_ins * 100)});
    }
  }
  table.print();
  opt.maybe_write(table, "fig7_cycle_error");
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
