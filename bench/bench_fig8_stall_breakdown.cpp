// Figure 8: breakdown of instructions and architectural stalls over the
// cycle count of the parallel MMSE, from the cycle-accurate model.
//
// Paper shape: few stall-ins (I$ refill) and stall-acc (busy FPU pipelines);
// RAW stalls shrink with problem size (unrolled loops); stall-LSU
// (interconnect contention) is highest for the low-arithmetic-intensity
// 16bHalf variant; stall-WFI (barrier idling) dominates small problems.
#include "bench_common.h"

#include "uarch/cluster_sim.h"

namespace tsim::bench {
namespace {

void run(const BenchOptions& opt) {
  const tera::TeraPoolConfig cluster = tera::TeraPoolConfig::full();
  const u32 core_cap = opt.full ? 1024 : 32;
  std::printf("Fig. 8 | cycle breakdown of the parallel MMSE (cycle-accurate model, "
              "cores capped at %u)\n\n", core_cap);

  sim::Table table({"MIMO", "precision", "instr%", "stall-raw%", "stall-lsu%",
                    "stall-acc%", "stall-ins%", "stall-wfi%", "branch%",
                    "kCycles/core"});
  for (const u32 n : mimo_sizes()) {
    for (const kern::Precision prec : kern::kTimedPrecisions) {
      const auto lay = parallel_layout(cluster, n, prec, core_cap);
      uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
      rtl.load_program(kern::build_mmse_program(lay));
      stage_random_problems(rtl.memory(), lay, 12.0, 3 + n);
      const auto res = rtl.run();
      check(res.exited, "fig8: run failed");
      const uarch::CoreStats agg = rtl.aggregate_stats();
      const double total = static_cast<double>(agg.total_cycles());
      const auto pct = [&](u64 v) {
        return sim::strf("%.1f", 100.0 * static_cast<double>(v) / total);
      };
      table.add_row({sim::strf("%ux%u", n, n), std::string(name_of(prec)),
                     pct(agg.instr_cycles), pct(agg.stall_raw), pct(agg.stall_lsu),
                     pct(agg.stall_acc), pct(agg.stall_ins), pct(agg.stall_wfi),
                     pct(agg.stall_branch),
                     sim::strf("%.2f", total / lay.num_cores / 1e3)});
    }
  }
  table.print();
  opt.maybe_write(table, "fig8_stall_breakdown");
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
