// Figure 9: BER vs SNR over the AWGN channel, 16QAM and 64QAM, 4x4 and
// 32x32 MIMO, for the 64bDouble golden model and all five DUT precisions.
//
// Paper shape: 16bHalf / 16bwDotp / 16bCDotp sit on top of the double-
// precision curve; both 8b variants lose about an order of magnitude of BER
// at 18 dB because the Gram/matched-filter outputs are truncated before the
// 16b solve.
#include "bench_common.h"

#include "sim/mc.h"

namespace tsim::bench {
namespace {

void run_subfigure(const BenchOptions& opt, u32 n, u32 qam_order,
                   const std::vector<double>& snrs, u64 max_bits) {
  sim::McConfig cfg;
  cfg.ntx = n;
  cfg.nrx = n;
  cfg.qam_order = qam_order;
  cfg.channel = phy::ChannelType::kAwgn;
  cfg.target_errors = opt.full ? 300 : 80;
  cfg.max_bits = max_bits;
  cfg.cluster = tera::TeraPoolConfig::tiny();
  cfg.problems_per_core = 4;
  cfg.host_threads = host_threads();
  sim::McRunner mc(cfg);

  std::printf("\n%ux%u %uQAM AWGN (target errors %u, bit budget %llu)\n", n, n,
              qam_order, cfg.target_errors,
              static_cast<unsigned long long>(cfg.max_bits));
  std::vector<std::string> header = {"SNR [dB]", "64bDouble"};
  for (const auto p : kern::kAllPrecisions) header.emplace_back(name_of(p));
  sim::Table table(header);

  for (const double snr : snrs) {
    std::vector<std::string> row = {sim::strf("%.1f", snr)};
    row.push_back(sim::strf("%.2e", mc.golden_point(snr).ber));
    for (const auto prec : kern::kAllPrecisions)
      row.push_back(sim::strf("%.2e", mc.dut_point(prec, snr).ber));
    table.add_row(row);
  }
  table.print();
  opt.maybe_write(table, sim::strf("fig9_ber_awgn_%ux%u_%uqam", n, n, qam_order));
}

void run(const BenchOptions& opt) {
  std::printf("Fig. 9 | BER vs SNR, AWGN channel, all detector precisions\n");
  const std::vector<double> snrs =
      opt.full ? std::vector<double>{7.5, 10.0, 12.5, 15.0, 17.5}
               : std::vector<double>{7.5, 12.5, 17.5};
  run_subfigure(opt, 4, 16, snrs, opt.full ? 4'000'000 : 120'000);
  run_subfigure(opt, 4, 64, snrs, opt.full ? 2'000'000 : 120'000);
  run_subfigure(opt, 32, 16, snrs, opt.full ? 1'000'000 : 40'000);
  run_subfigure(opt, 32, 64, snrs, opt.full ? 1'000'000 : 40'000);
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  const auto opt = tsim::bench::BenchOptions::parse(argc, argv);
  tsim::bench::run(opt);
  return 0;
}
