// Simulated-MIPS trajectory bench for the fast ISS hot loop.
//
// Measures raw emulation throughput (millions of simulated instructions per
// wall-clock second) of Machine::run / Machine::run_threads on the parallel
// MMSE workload, sweeping the hart count up to the largest configuration
// that fits the full TeraPool's L1. Unlike bench_table1_sim_speed this
// binary has no google-benchmark dependency, so it always builds, and its
// --json output is the stable record of the hot-loop speed across commits
// (BENCH_*.json trajectories).
//
// Rows: one per (cores, host threads) point, plus a barrier-heavy variant
// that re-runs the same DUT binary many times back to back (reset_harts +
// run), which is exactly the slot scheduler's batch pattern.
#include <cstdio>

#include "bench_common.h"
#include "iss/machine.h"

namespace tsim::bench {
namespace {

struct Point {
  u32 cores;
  u32 threads;
  u32 repeats;
  double seconds;
  u64 instructions;
  double mips() const { return static_cast<double>(instructions) / seconds / 1e6; }
};

Point measure(const tera::TeraPoolConfig& cluster, u32 cores, u32 threads,
              double min_seconds) {
  const kern::MmseLayout lay =
      parallel_layout(cluster, 4, kern::Precision::k16CDotp, cores);
  iss::Machine machine(cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(kern::build_mmse_program(lay));
  stage_random_problems(machine.memory(), lay, 12.0, 21);

  // Warm-up run (first touch of memory, page faults, translation).
  machine.reset_harts();
  const auto warm = threads > 1 ? machine.run_threads(threads) : machine.run();
  check(warm.exited && !warm.deadlock, "bench_iss_mips: warm-up run failed");

  // Repeat whole batch runs (the slot scheduler's pattern) until the
  // measurement window is long enough to be stable.
  Point p{lay.num_cores, threads, 0, 0.0, 0};
  const Stopwatch clock;
  do {
    machine.reset_harts();
    const auto res = threads > 1 ? machine.run_threads(threads) : machine.run();
    check(res.exited && !res.deadlock, "bench_iss_mips: run failed");
    p.instructions += res.instructions;
    ++p.repeats;
    p.seconds = clock.seconds();
  } while (p.seconds < min_seconds);
  return p;
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  using namespace tsim;
  using namespace tsim::bench;
  const BenchOptions opt = BenchOptions::parse(argc, argv);

  const auto cluster = tera::TeraPoolConfig::full();
  const u32 max_fit = kern::MmseLayout::max_parallel_cores(
      cluster, 4, 4, kern::Precision::k16CDotp);
  std::vector<u32> core_counts = {16, 64, 256};
  if (opt.full && max_fit > 256) core_counts.push_back(std::min(max_fit, 1024u));
  std::vector<u32> thread_counts = {1};
  if (host_threads() > 1) thread_counts.push_back(host_threads());

  sim::Table table({"cores", "host_threads", "repeats", "instructions",
                    "wall_s", "sim_MIPS"});
  std::printf("bench_iss_mips | fast-ISS hot-loop throughput (parallel MMSE)\n\n");
  const double min_seconds = opt.full ? 2.0 : 0.5;
  for (const u32 cores : core_counts) {
    for (const u32 threads : thread_counts) {
      const Point p = measure(cluster, cores, threads, min_seconds);
      table.add_row({
          sim::strf("%u", p.cores),
          sim::strf("%u", p.threads),
          sim::strf("%u", p.repeats),
          sim::strf("%llu", static_cast<unsigned long long>(p.instructions)),
          sim::strf("%.3f", p.seconds),
          sim::strf("%.2f", p.mips()),
      });
    }
  }
  table.print();
  opt.maybe_write(table, "iss_mips");
  return 0;
}
