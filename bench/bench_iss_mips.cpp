// Simulated-MIPS trajectory bench for the fast ISS hot loop.
//
// Measures raw emulation throughput (millions of simulated instructions per
// wall-clock second) of Machine::run / Machine::run_threads on the parallel
// MMSE workload, sweeping the hart count up to the largest configuration
// that fits the full TeraPool's L1. Unlike bench_table1_sim_speed this
// binary has no google-benchmark dependency, so it always builds, and its
// --json output is the stable record of the hot-loop speed across commits
// (BENCH_*.json trajectories).
//
// Rows: one per (cores, host threads, dispatch path) point. Each point is
// measured twice - `serial` (Machine::set_batching(false): the PR 2
// superblock fast path, one hart at a time) and `batched` (the SPMD
// convergence-batch dispatch, see machine.h) - so the batching speedup and
// its efficiency counters are recorded side by side:
//   speedup        batched sim_MIPS / serial sim_MIPS of the same point
//   lockstep_frac  fraction of instructions retired in lockstep sweeps
//   avg_width      mean convergence-batch width at formation (incl. leader)
//   p50_w / p90_w  width percentiles of the formation histogram
//   avg_run        mean superblock run length swept in lockstep
// The batch-heavy repeat loop (reset_harts + run) is exactly the slot
// scheduler's batch pattern, so these rows predict scheduler throughput.
//
// --guard: A/B regression guard for CI. Exits non-zero when the batched
// path's simulated MIPS falls below 1.25x the serial path at the largest
// quick-mode hart count. The floor is a real speedup requirement, not a
// noise tolerance: the SoA vectorized sweep holds ~1.3x+ on this workload,
// and the interleaved A/B rounds in measure_ab cancel most runner drift, so
// a ratio under 1.25x means the lockstep sweep stopped paying for itself.
//
// --threads LIST: comma-separated host thread counts for the sweep rows
// (e.g. --threads 1,2,4,8), replacing the default {1, host_threads()}.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "iss/machine.h"

namespace tsim::bench {
namespace {

struct Point {
  u32 cores;
  u32 threads;
  bool batched;
  u32 repeats;
  double seconds;
  u64 instructions;
  iss::BatchStats stats;
  double mips() const { return static_cast<double>(instructions) / seconds / 1e6; }
};

/// Measures the serial (first) and batched (second) dispatch of one
/// (cores, threads) point. The two paths run in short interleaved rounds -
/// serial chunk, batched chunk, repeat - so slow host-throughput drift
/// (VM steal, frequency) hits both paths equally and the speedup column
/// stays meaningful on noisy runners; back-to-back windows can drift by
/// tens of percent on shared machines.
std::pair<Point, Point> measure_ab(const tera::TeraPoolConfig& cluster, u32 cores,
                                   u32 threads, double min_seconds) {
  const kern::MmseLayout lay =
      parallel_layout(cluster, 4, kern::Precision::k16CDotp, cores);
  iss::Machine machine(cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(kern::build_mmse_program(lay));
  stage_random_problems(machine.memory(), lay, 12.0, 21);

  const auto one_run = [&](bool batched) {
    machine.set_batching(batched);
    machine.reset_harts();
    const auto res = threads > 1 ? machine.run_threads(threads) : machine.run();
    check(res.exited && !res.deadlock, "bench_iss_mips: run failed");
    return res.instructions;
  };
  // Warm-up runs (first touch of memory, page faults, translation).
  one_run(false);
  one_run(true);

  Point s{lay.num_cores, threads, false, 0, 0.0, 0, {}};
  Point b{lay.num_cores, threads, true, 0, 0.0, 0, {}};
  machine.reset_batch_stats();
  const Stopwatch total;
  while (total.seconds() < 2.0 * min_seconds) {
    // One round: a few whole batch runs (the slot scheduler's pattern) per
    // path, timed separately.
    for (Point* p : {&s, &b}) {
      const Stopwatch clock;
      do {
        p->instructions += one_run(p->batched);
        ++p->repeats;
      } while (clock.seconds() < min_seconds / 8.0);
      p->seconds += clock.seconds();
    }
  }
  // Serial rounds contribute nothing here: BatchStats accumulate only
  // while batching is enabled.
  b.stats = machine.batch_stats();
  return {s, b};
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  using namespace tsim;
  using namespace tsim::bench;
  const BenchOptions opt = BenchOptions::parse(
      argc, argv,
      {{"--guard", false, "exit 1 if simulated MIPS regresses below the floor"},
       {"--threads", true, "comma-separated host thread counts to sweep"}});
  bool guard = false;
  std::vector<u32> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--guard") == 0) guard = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      for (const char* p = argv[i + 1]; *p != '\0';) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v == 0 || (*end != ',' && *end != '\0')) {
          std::fprintf(stderr, "%s: bad --threads list '%s' (want e.g. 1,2,4)\n",
                       argv[0], argv[i + 1]);
          return 2;
        }
        thread_counts.push_back(static_cast<u32>(v));
        p = *end == ',' ? end + 1 : end;
      }
    }
  }

  const auto cluster = tera::TeraPoolConfig::full();
  const u32 max_fit = kern::MmseLayout::max_parallel_cores(
      cluster, 4, 4, kern::Precision::k16CDotp);
  const double min_seconds = opt.full ? 2.0 : 0.5;

  if (guard) {
    // CI speedup guard: the vectorized lockstep sweep must keep a real
    // margin over the serial fast path it wraps (see the header note).
    const auto [s, b] = measure_ab(cluster, 256, 1, min_seconds);
    const double ratio = b.mips() / s.mips();
    std::printf("bench_iss_mips --guard | serial %.2f MIPS, batched %.2f MIPS, "
                "ratio %.2fx (threshold 1.25x)\n",
                s.mips(), b.mips(), ratio);
    if (ratio < 1.25) {
      std::fprintf(stderr, "FAIL: batched dispatch fell below the 1.25x speedup floor\n");
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }

  std::vector<u32> core_counts = {16, 64, 256};
  if (opt.full && max_fit > 256) core_counts.push_back(std::min(max_fit, 1024u));
  if (thread_counts.empty()) {
    thread_counts.push_back(1);
    if (host_threads() > 1) thread_counts.push_back(host_threads());
  }

  sim::Table table({"cores", "host_threads", "path", "repeats", "instructions",
                    "wall_s", "sim_MIPS", "speedup", "lockstep_frac",
                    "avg_width", "p50_w", "p90_w", "avg_run"});
  std::printf("bench_iss_mips | fast-ISS hot-loop throughput (parallel MMSE)\n\n");
  for (const u32 cores : core_counts) {
    for (const u32 threads : thread_counts) {
      const auto [s, b] = measure_ab(cluster, cores, threads, min_seconds);
      table.add_row({
          sim::strf("%u", s.cores),
          sim::strf("%u", s.threads),
          "serial",
          sim::strf("%u", s.repeats),
          sim::strf("%llu", static_cast<unsigned long long>(s.instructions)),
          sim::strf("%.3f", s.seconds),
          sim::strf("%.2f", s.mips()),
          "1.00",
          "-", "-", "-", "-", "-",
      });
      table.add_row({
          sim::strf("%u", b.cores),
          sim::strf("%u", b.threads),
          "batched",
          sim::strf("%u", b.repeats),
          sim::strf("%llu", static_cast<unsigned long long>(b.instructions)),
          sim::strf("%.3f", b.seconds),
          sim::strf("%.2f", b.mips()),
          sim::strf("%.2f", b.mips() / s.mips()),
          sim::strf("%.3f", b.stats.lockstep_fraction()),
          sim::strf("%.1f", b.stats.avg_width()),
          sim::strf("%llu", static_cast<unsigned long long>(b.stats.width_percentile(0.5))),
          sim::strf("%llu", static_cast<unsigned long long>(b.stats.width_percentile(0.9))),
          sim::strf("%.1f", b.stats.avg_run_length()),
      });
    }
  }
  table.print();
  opt.maybe_write(table, "iss_mips");
  return 0;
}
