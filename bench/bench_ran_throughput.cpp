// RAN slot-engine throughput: host-side simulation rate and DUT-side slot
// latency as the cluster pool and host thread count scale.
//
// Quick mode runs a scaled-down carrier (10 MHz-equivalent grid, 4 symbols);
// --full runs the paper's 1638-subcarrier x 14-symbol TTI. Rows report
// wall-clock time per TTI, simulated problems/s, the slot's critical-path
// latency at 1 GHz, and whether the 0.5 ms deadline holds.
#include "bench_common.h"

#include "ran/deadline.h"
#include "ran/scheduler.h"
#include "ran/traffic.h"

using namespace tsim;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);

  phy::CarrierConfig carrier;
  if (!opt.full) {
    carrier.bandwidth_hz = 10e6;  // ~327 subcarriers
    carrier.symbols_per_slot = 4;
  }

  ran::TrafficConfig traffic;
  traffic.carrier = carrier;
  traffic.groups = {
      ran::UeGroup{"embb", 4, 4, 16, 15.0, phy::ChannelType::kRayleigh, 1.0}};
  traffic.seed = 0xBE7C;

  struct PoolShape {
    u32 clusters;
    u32 host_threads;
  };
  const std::vector<PoolShape> shapes = {{1, 1}, {2, 2}, {4, 2}, {4, 4}};

  sim::Table table({"clusters", "host_threads", "problems", "wall_ms_per_tti",
                    "problems_per_s", "slot_kcycles", "latency_us", "deadline"});
  for (const PoolShape& shape : shapes) {
    ran::ClusterPoolConfig pool;
    pool.num_clusters = shape.clusters;
    pool.host_threads = shape.host_threads;
    pool.cluster = tera::TeraPoolConfig::tiny();
    pool.problems_per_core = 4;

    ran::TrafficGenerator gen(traffic);
    ran::SlotScheduler sched(pool, traffic.groups);

    const u32 ttis = opt.full ? 1 : 2;
    bench::Stopwatch wall;
    u64 problems = 0;
    ran::SlotResult last;
    for (u32 t = 0; t < ttis; ++t) {
      last = sched.run_slot(gen.next_slot());
      problems += last.problems;
    }
    const double wall_s = wall.seconds();
    const ran::SlotTiming timing = ran::slot_timing(last, traffic.carrier, 1e9);

    table.add_row({
        sim::strf("%u", shape.clusters),
        sim::strf("%u", shape.host_threads),
        sim::strf("%llu", static_cast<unsigned long long>(problems)),
        sim::strf("%.1f", wall_s / ttis * 1e3),
        sim::strf("%.0f", wall_s > 0 ? problems / wall_s : 0.0),
        sim::strf("%.0f", static_cast<double>(last.slot_cycles) / 1e3),
        sim::strf("%.1f", timing.latency_seconds() * 1e6),
        timing.meets_deadline() ? "met" : "missed",
    });
  }

  std::printf("RAN slot-engine throughput (%s carrier: %u sc x %u sym)\n",
              opt.full ? "paper" : "quick", traffic.carrier.num_subcarriers(),
              traffic.carrier.symbols_per_slot);
  table.print();
  opt.maybe_write(table, "bench_ran_throughput");
  return 0;
}
