// RAN slot-engine throughput: host-side simulation rate and DUT-side slot
// latency as the cluster pool, host thread count, and batch-to-cluster
// assignment policy scale.
//
// Traffic is the mixed-geometry UE population (three distinct (ntx, nrx)
// geometries sharing the carrier), so with fewer clusters than geometries
// the round-robin assignment ping-pongs programs on nearly every batch
// while the locality policy keeps them resident - the `reloads` and
// `reload_kcycles` columns make the difference visible, and the wall-clock
// column shows the host-side cost of the remaining image restores.
//
// Quick mode runs a scaled-down carrier (10 MHz-equivalent grid, 4 symbols);
// --full runs the paper's 1638-subcarrier x 14-symbol TTI. Both policies are
// swept by default; --policy {roundrobin,locality} restricts the sweep.
// Rows report wall-clock time per TTI, simulated problems/s, program
// reloads, the slot's critical-path latency at 1 GHz, and whether the
// 0.5 ms deadline holds.
#include "bench_common.h"

#include "ran/deadline.h"
#include "ran/scheduler.h"
#include "ran/traffic.h"

using namespace tsim;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv,
      {{"--policy", true, "run only this assignment policy (roundrobin|locality)"}});
  std::vector<ran::AssignPolicy> policies = {ran::AssignPolicy::kRoundRobin,
                                             ran::AssignPolicy::kLocality};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      try {
        policies = {ran::parse_policy(argv[++i])};
      } catch (const SimError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    }
  }

  phy::CarrierConfig carrier;
  if (!opt.full) {
    carrier.bandwidth_hz = 10e6;  // ~327 subcarriers
    carrier.symbols_per_slot = 4;
  }

  ran::TrafficConfig traffic;
  traffic.carrier = carrier;
  traffic.groups = ran::mixed_geometry_groups();
  traffic.seed = 0xBE7C;

  struct PoolShape {
    u32 clusters;
    u32 host_threads;
  };
  const std::vector<PoolShape> shapes = {{1, 1}, {2, 2}, {4, 2}, {4, 4}};

  sim::Table table({"policy", "clusters", "host_threads", "problems",
                    "wall_ms_per_tti", "problems_per_s", "reloads",
                    "reload_kcycles", "slot_kcycles", "latency_us", "deadline"});
  for (const PoolShape& shape : shapes) {
    for (const ran::AssignPolicy policy : policies) {
      ran::ClusterPoolConfig pool;
      pool.num_clusters = shape.clusters;
      pool.host_threads = shape.host_threads;
      pool.cluster = tera::TeraPoolConfig::tiny();
      pool.problems_per_core = 4;
      pool.policy = policy;

      ran::TrafficGenerator gen(traffic);
      ran::SlotScheduler sched(pool, traffic.groups);

      const u32 ttis = opt.full ? 1 : 2;
      bench::Stopwatch wall;
      u64 problems = 0, reloads = 0, reload_cycles = 0;
      ran::SlotResult last;
      for (u32 t = 0; t < ttis; ++t) {
        last = sched.run_slot(gen.next_slot());
        problems += last.problems;
        reloads += last.total_reloads;
        reload_cycles += last.total_reload_cycles;
      }
      const double wall_s = wall.seconds();
      const ran::SlotTiming timing = ran::slot_timing(last, traffic.carrier, 1e9);

      table.add_row({
          ran::policy_name(policy),
          sim::strf("%u", shape.clusters),
          sim::strf("%u", shape.host_threads),
          sim::strf("%llu", static_cast<unsigned long long>(problems)),
          sim::strf("%.1f", wall_s / ttis * 1e3),
          sim::strf("%.0f", wall_s > 0 ? problems / wall_s : 0.0),
          sim::strf("%llu", static_cast<unsigned long long>(reloads)),
          sim::strf("%.1f", static_cast<double>(reload_cycles) / 1e3),
          sim::strf("%.0f", static_cast<double>(last.slot_cycles) / 1e3),
          sim::strf("%.1f", timing.latency_seconds() * 1e6),
          timing.meets_deadline() ? "met" : "missed",
      });
    }
  }

  std::printf("RAN slot-engine throughput (%s carrier: %u sc x %u sym, %zu UE "
              "geometries)\n",
              opt.full ? "paper" : "quick", traffic.carrier.num_subcarriers(),
              traffic.carrier.symbols_per_slot, traffic.groups.size());
  table.print();
  opt.maybe_write(table, "bench_ran_throughput");
  return 0;
}
