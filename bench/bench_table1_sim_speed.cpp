// Table I analog: simulation-method comparison for SDR baseband hardware.
//
// The paper's Table I surveys RTL / TLM / FPGA / SBT approaches by speed and
// multi-core support. The measurable analog in this repo is the raw
// simulation speed (MIPS) of our two engines on the same DUT binary:
//   - SBT-class fast ISS (translation cache + static timing), single hart,
//     multi-hart single-thread, and multi-hart multi-thread;
//   - RTL-class cycle-accurate model (contention, I$, barriers).
// Measured with google-benchmark; a summary table mirroring Table I's rows
// is printed at the end.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "iss/machine.h"
#include "uarch/cluster_sim.h"

namespace tsim::bench {
namespace {

constexpr u32 kBatch = 32;  // subcarriers per run

/// One batched-MMSE run on the fast ISS; reports instructions/second.
void BM_IssSingleHart(benchmark::State& state) {
  const auto cluster = tera::TeraPoolConfig::full();
  const auto lay = batched_layout(cluster, static_cast<u32>(state.range(0)),
                                  kern::Precision::k16CDotp, kBatch);
  iss::Machine machine(cluster, iss::TimingConfig{}, 1);
  machine.load_program(kern::build_mmse_program(lay));
  stage_random_problems(machine.memory(), lay, 12.0, 9);
  u64 instructions = 0;
  for (auto _ : state) {
    machine.reset_harts();
    const auto res = machine.run();
    instructions += res.instructions;
  }
  state.counters["MIPS"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssSingleHart)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

/// Parallel MMSE on many harts, single host thread.
void BM_IssManyHart(benchmark::State& state) {
  const auto cluster = tera::TeraPoolConfig::full();
  const auto lay = parallel_layout(cluster, 4, kern::Precision::k16CDotp,
                                   static_cast<u32>(state.range(0)));
  iss::Machine machine(cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(kern::build_mmse_program(lay));
  stage_random_problems(machine.memory(), lay, 12.0, 10);
  u64 instructions = 0;
  for (auto _ : state) {
    machine.reset_harts();
    instructions += machine.run().instructions;
  }
  state.counters["MIPS"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssManyHart)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

/// Same parallel MMSE on the cycle-accurate model (the RTL-class baseline).
void BM_CycleAccurate(benchmark::State& state) {
  const auto cluster = tera::TeraPoolConfig::full();
  const auto lay = parallel_layout(cluster, 4, kern::Precision::k16CDotp,
                                   static_cast<u32>(state.range(0)));
  uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
  rtl.load_program(kern::build_mmse_program(lay));
  u64 instructions = 0;
  for (auto _ : state) {
    rtl.reset();
    stage_random_problems(rtl.memory(), lay, 12.0, 11);
    instructions += rtl.run().instructions;
  }
  state.counters["MIPS"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CycleAccurate)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

/// Printed after the google-benchmark run: the Table I analog.
void print_summary() {
  const auto cluster = tera::TeraPoolConfig::full();
  const auto measure_iss = [&](u32 cores, u32 threads) {
    const auto lay = parallel_layout(cluster, 4, kern::Precision::k16CDotp, cores);
    iss::Machine machine(cluster, iss::TimingConfig{}, lay.num_cores);
    machine.load_program(kern::build_mmse_program(lay));
    stage_random_problems(machine.memory(), lay, 12.0, 12);
    Stopwatch clock;
    const auto res =
        threads > 1 ? machine.run_threads(threads) : machine.run();
    return static_cast<double>(res.instructions) / clock.seconds() / 1e6;
  };
  const auto measure_rtl = [&](u32 cores) {
    const auto lay = parallel_layout(cluster, 4, kern::Precision::k16CDotp, cores);
    uarch::ClusterSim rtl(cluster, uarch::UarchConfig{}, lay.num_cores);
    rtl.load_program(kern::build_mmse_program(lay));
    stage_random_problems(rtl.memory(), lay, 12.0, 12);
    Stopwatch clock;
    const auto res = rtl.run();
    return static_cast<double>(res.instructions) / clock.seconds() / 1e6;
  };

  std::printf("\nTable I analog | simulation methods for SDR baseband hardware\n");
  std::printf("(paper rows [8][9]=RTL, [10]=TLM, [11][2]=FPGA are literature "
              "references; measured rows below)\n\n");
  sim::Table table({"method", "device", "speed [MIPS]", "multi-core"});
  table.add_row({"RTL sim (paper [8,9])", "QuestaSim/event-driven", "(slowest; ref)", "no"});
  table.add_row({"TLM (paper [10])", "SystemC", "(slow; ref)", "no"});
  table.add_row({"FPGA (paper [2,11])", "XCZU28DR/ZCU102", "(120-128 MHz)", "partial"});
  table.add_row({"cycle-accurate (ours)", "this host",
                 sim::strf("%.2f", measure_rtl(64)), "yes"});
  table.add_row({"SBT-class ISS (ours, 1 thread)", "this host",
                 sim::strf("%.2f", measure_iss(64, 1)), "yes"});
  table.add_row({"SBT-class ISS (ours, all threads)", "this host",
                 sim::strf("%.2f", measure_iss(64, host_threads())), "yes"});
  table.print();
}

}  // namespace
}  // namespace tsim::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tsim::bench::print_summary();
  return 0;
}
