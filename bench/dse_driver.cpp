// Design-space-exploration driver: the paper's headline workflow as a CLI.
// Sweeps candidate transceiver configurations (clusters x cores/cluster x
// arithmetic precision x problems/core x assignment policy) end-to-end
// through the RAN slot engine - every point processes the same generated
// TTIs on emulated clusters - and extracts the Pareto front over
// configurable objectives (default: total cores vs worst-slot latency vs
// detection BER).
//
//   ./dse_driver                 medium sweep (10 MHz carrier, 72 points)
//   ./dse_driver --quick         CI-sized sweep (2 MHz carrier, 24 points)
//   ./dse_driver --full          paper-scale carrier (1638 sc x 14 symbols)
//   ./dse_driver --quick --json  also write ./dse_pareto.json (JSON rows in
//                                the BENCH_*.json trajectory format; CI
//                                validates and archives them - see
//                                BENCH_dse_pareto.json for the history)
//
// Flags: --json [DIR] (default "."), --csv DIR, --ttis N, --threads N,
// --clock GHZ, --seed S, --objectives LIST (comma-separated from
// {cores, latency, ber, reloads}). Unknown flags exit 2.
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cstring>

#include "bench_common.h"
#include "dse/pareto.h"
#include "dse/space.h"
#include "dse/sweep.h"
#include "ran/traffic.h"

using namespace tsim;

namespace {

enum class Mode { kQuick, kMedium, kFull };

struct DriverOptions {
  Mode mode = Mode::kMedium;
  std::string json_dir;  // empty = no JSON
  std::string csv_dir;
  u32 ttis = 1;
  u32 host_threads = 1;
  double clock_ghz = 1.0;
  u64 seed = 0xD5E;
  // Warm-started construction: sibling points reuse translated programs and
  // locality calibration (metrics bit-identical to a cold sweep, only wall
  // time moves), so it defaults on; --cold-start is the reference mode.
  bool warm_start = true;
  std::vector<dse::Objective> objectives = dse::default_objectives();
};

/// Strict positive-integer flag parsing: rejects junk and negatives, which
/// would otherwise wrap through the u32 cast past the >= 1 checks.
u32 parse_positive_u32(const char* flag, const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  check(end != text && *end == '\0' && v >= 1 && v <= 0xFFFFFFFFll,
        std::string(flag) + " expects a positive integer, got '" + text + "'");
  return static_cast<u32>(v);
}

double parse_positive_double(const char* flag, const char* text) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  check(end != text && *end == '\0' && v > 0.0,
        std::string(flag) + " expects a positive number, got '" + text + "'");
  return v;
}

u64 parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  // Requiring a leading digit rejects the whitespace/sign prefixes strtoull
  // would otherwise skip (and wrap: " -5" parses as a huge u64).
  check(std::isdigit(static_cast<unsigned char>(text[0])) && end != text &&
            *end == '\0',
        std::string(flag) + " expects a non-negative integer, got '" + text + "'");
  return static_cast<u64>(v);
}

void print_usage(std::FILE* f, const char* prog) {
  std::fprintf(f, "usage: %s [flags]\n", prog);
  std::fprintf(f, "  --quick | --full     sweep size (default: medium)\n");
  std::fprintf(f, "  --json [DIR]         write dse_pareto.json (default DIR: .)\n");
  std::fprintf(f, "  --csv DIR            write dse_pareto.csv into DIR\n");
  std::fprintf(f, "  --ttis N             slots per design point\n");
  std::fprintf(f, "  --threads N          host evaluation threads\n");
  std::fprintf(f, "  --clock GHZ          modelled cluster clock\n");
  std::fprintf(f, "  --seed S             traffic seed\n");
  std::fprintf(f, "  --warm-start / --cold-start\n");
  std::fprintf(f, "                       reuse warmed scheduler state across\n");
  std::fprintf(f, "                       sibling points (default on; metrics\n");
  std::fprintf(f, "                       are bit-identical to a cold sweep)\n");
  std::fprintf(f, "  --objectives A,B,..  Pareto objectives\n");
  std::fprintf(f, "  --help               this message\n");
}

DriverOptions parse_args(int argc, char** argv) {
  DriverOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      check(i + 1 < argc, std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.mode = Mode::kQuick;
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.mode = Mode::kFull;
    } else if (std::strcmp(arg, "--json") == 0) {
      // Directory operand is optional: bare --json writes ./dse_pareto.json.
      // Anything flag-shaped is not a directory (so a typo like `--json -q`
      // still hits the unknown-flag error instead of becoming a path).
      opt.json_dir = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : ".";
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv_dir = next("--csv");
    } else if (std::strcmp(arg, "--ttis") == 0) {
      opt.ttis = parse_positive_u32("--ttis", next("--ttis"));
    } else if (std::strcmp(arg, "--threads") == 0) {
      opt.host_threads = parse_positive_u32("--threads", next("--threads"));
    } else if (std::strcmp(arg, "--clock") == 0) {
      opt.clock_ghz = parse_positive_double("--clock", next("--clock"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.seed = parse_u64("--seed", next("--seed"));
    } else if (std::strcmp(arg, "--warm-start") == 0) {
      opt.warm_start = true;
    } else if (std::strcmp(arg, "--cold-start") == 0) {
      opt.warm_start = false;
    } else if (std::strcmp(arg, "--objectives") == 0) {
      opt.objectives = dse::parse_objectives(next("--objectives"));
    } else {
      throw SimError(std::string("unknown flag '") + arg + "'");
    }
  }
  return opt;
}

/// The swept axes and workload per mode. All three share the mixed-geometry
/// UE population (three (ntx, nrx) geometries sharing the carrier), so the
/// precision axis moves BER and the policy/cluster axes move reloads and
/// latency - every objective has real trade-offs to expose.
dse::DesignSpace space_for(Mode mode) {
  dse::DesignSpace space;
  switch (mode) {
    case Mode::kQuick:
      space.clusters = {1, 2};
      space.cores_per_cluster = {16, 32};
      space.precisions = {kern::Precision::k16Half, kern::Precision::k16CDotp,
                          kern::Precision::k8WDotp};
      space.problems_per_core = {1, 4};
      space.policies = {ran::AssignPolicy::kLocality};
      break;
    case Mode::kMedium:
      space.clusters = {1, 2, 4};
      space.cores_per_cluster = {16, 32, 64};
      space.precisions = {kern::Precision::k16Half, kern::Precision::k16WDotp,
                          kern::Precision::k16CDotp, kern::Precision::k8WDotp};
      space.problems_per_core = {1, 4};
      space.policies = {ran::AssignPolicy::kLocality};
      break;
    case Mode::kFull:
      space.clusters = {2, 4};
      space.cores_per_cluster = {64, 256, 1024};
      space.precisions = {kern::Precision::k16Half, kern::Precision::k16WDotp,
                          kern::Precision::k16CDotp, kern::Precision::k8WDotp};
      space.problems_per_core = {1, 4};
      space.policies = {ran::AssignPolicy::kLocality};
      break;
  }
  return space;
}

ran::TrafficConfig traffic_for(Mode mode, u64 seed) {
  ran::TrafficConfig traffic;
  traffic.groups = ran::mixed_geometry_groups();
  traffic.seed = seed;
  switch (mode) {
    case Mode::kQuick:
      traffic.carrier.bandwidth_hz = 2e6;  // ~65 subcarriers
      traffic.carrier.symbols_per_slot = 2;
      break;
    case Mode::kMedium:
      traffic.carrier.bandwidth_hz = 10e6;  // ~327 subcarriers
      traffic.carrier.symbols_per_slot = 4;
      break;
    case Mode::kFull:
      traffic.carrier = phy::CarrierConfig::paper_50mhz();
      break;
  }
  return traffic;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kQuick: return "quick";
    case Mode::kMedium: return "medium";
    case Mode::kFull: return "full";
  }
  return "?";
}

int run(int argc, char** argv) {
  const DriverOptions opt = parse_args(argc, argv);
  const dse::DesignSpace space = space_for(opt.mode);

  dse::SweepConfig cfg;
  cfg.traffic = traffic_for(opt.mode, opt.seed);
  cfg.ttis = opt.ttis;
  cfg.clock_hz = opt.clock_ghz * 1e9;
  cfg.host_threads = opt.host_threads;
  cfg.warm_start = opt.warm_start;

  std::printf("dse_driver | %s sweep: %zu points over (clusters x cores x "
              "precision x problems/core x policy)\n",
              mode_name(opt.mode), space.enumerate().size());
  std::printf("workload: %u sc x %u sym (%llu problems/TTI) x %u TTI(s), "
              "%zu UE geometries, seed 0x%llx\n",
              cfg.traffic.carrier.num_subcarriers(),
              cfg.traffic.carrier.symbols_per_slot,
              static_cast<unsigned long long>(cfg.traffic.carrier.problems_per_tti()),
              cfg.ttis, cfg.traffic.groups.size(),
              static_cast<unsigned long long>(opt.seed));
  std::printf("objectives:");
  for (const dse::Objective o : opt.objectives)
    std::printf(" %s", dse::name_of(o));
  std::printf(" (all minimized)\n\n");

  const bench::Stopwatch wall;
  const dse::SweepResult result = dse::run_sweep(space, cfg);
  const std::vector<u32> front = dse::pareto_front(result.points, opt.objectives);

  const sim::Table table = dse::sweep_table(result, front);
  table.print();
  if (!result.skipped.empty()) {
    std::printf("\nskipped (infeasible) points:\n");
    for (const dse::SkippedPoint& s : result.skipped)
      std::printf("  %s: %s\n", s.point.label().c_str(), s.reason.c_str());
  }

  std::printf("\nPareto front (%zu of %zu evaluated points):\n", front.size(),
              result.points.size());
  dse::front_table(result, front).print();
  std::printf("\nswept %zu points (%zu skipped) in %.1f s wall clock (%s)\n",
              result.points.size(), result.skipped.size(), wall.seconds(),
              cfg.warm_start ? "warm-started" : "cold-started");

  if (!opt.csv_dir.empty()) table.write_csv(opt.csv_dir + "/dse_pareto.csv");
  if (!opt.json_dir.empty()) {
    const std::string path =
        bench::BenchOptions::write_json_table(table, opt.json_dir, "dse_pareto");
    check(!path.empty(), "failed to write the JSON trajectory");
    std::printf("wrote %s\n", path.c_str());
  }

  if (front.empty()) {
    std::fprintf(stderr, "error: empty Pareto front\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
