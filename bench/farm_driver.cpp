// Multi-cell gNB farm soak driver: N independent cells of persistent UEs
// with closed-loop HARQ traffic (src/mac/), shard-parallel across forked
// worker processes, reported through the shared BENCH_*.json row format.
//
//   ./farm_driver --quick                    CI-sized soak (2 MHz carrier)
//   ./farm_driver --quick --shards 4         same numbers, 4 worker processes
//   ./farm_driver --quick --json             also write ./farm_soak.json
//   ./farm_driver --full                     paper-scale carrier per cell
//
// The JSON rows are one CellReport per cell - exact integers only, and
// independent of --shards and --threads - so CI's farm-smoke step diffs the
// --shards 1 and --shards 2 outputs byte-for-byte to pin the shard-
// invariance contract (see BENCH_farm_soak.json for the seeded history).
//
// Flags: --cells N, --ues N, --ttis N, --shards N, --threads N, --seed S,
// --quick | --full, --no-harq (single-shot A/B baseline), --burst (on/off
// arrival bursts + diurnal modulation), --json [DIR], --csv DIR.
//
// Fault injection & supervision (sim/fault.h + the mac/farm.h supervisor):
// --policy fail_fast|retry|degrade, --attempts N, --shard-timeout SECS,
// --inject-shard-crash/stall/garble S (host-level worker faults; recovery
// under --policy retry is byte-identical to a clean run - CI's fault-smoke
// step diffs the JSON), --fault-seed S, --hart-trap-rate/--hart-hang-rate R,
// --l1-flip-rate R, --no-ecc, --cluster-fail TTI [--cluster-fail-cluster C],
// --drop-ind/--delay-ind R, --delay-slots N, --harq-timeout SLOTS.
//
// Checkpoint / resume / bisect (mac/farm.h snapshot ladder):
// --checkpoint-every N --checkpoint-dir DIR write atomic per-cell snapshots
// every N TTIs; --resume restarts an interrupted soak from the newest valid
// snapshots (byte-identical to an uninterrupted run - CI's kill-and-resume
// step pins it with cmp); --bisect miss|degraded|bler=X [--bisect-cell C]
// binary-searches the snapshots for the first TTI where the predicate holds
// and replays only the final window with per-TTI tracing.
// Unknown flags exit 2.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "dse/space.h"
#include "mac/farm.h"

using namespace tsim;

namespace {

struct Options {
  u32 cells = 4;
  u32 ues = 32;
  u32 ttis = 100;
  u32 shards = 1;
  u32 host_threads = 2;
  u64 seed = 0xFA21;
  bool quick = false;
  bool full = false;
  bool no_harq = false;
  bool burst = false;
  // Event-driven fast-forward (quiescent-TTI skip + batch shrink). Reports
  // are bit-identical either way - CI's fastforward-smoke pins that with cmp
  // - so the faster path is the default.
  bool fastforward = true;
  u32 problems_per_core = 0;  // 0 = pool default
  u32 batch_cores = 0;        // 0 = pool default (as many as fit in L1)
  u32 cluster_cores = 0;      // 0 = the 16-core tiny cluster
  std::string json_dir;
  std::string csv_dir;
  // Supervisor + fault-injection knobs (defaults = clean run).
  mac::FarmPolicy policy = mac::FarmPolicy::kRetry;
  u32 attempts = 2;
  double shard_timeout_s = 0.0;
  sim::HostFaultConfig host_fault;
  sim::FaultConfig fault;
  u32 harq_timeout_slots = 0;
  // Checkpoint / resume / bisect.
  u32 checkpoint_every = 0;
  std::string checkpoint_dir;
  bool resume = false;
  std::string bisect;  // predicate spec; empty = normal soak
  u32 bisect_cell = 0;
};

u32 parse_positive_u32(const char* flag, const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  check(end != text && *end == '\0' && v >= 1 && v <= 0xFFFFFFFFll,
        std::string(flag) + " expects a positive integer, got '" + text + "'");
  return static_cast<u32>(v);
}

u64 parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  check(std::isdigit(static_cast<unsigned char>(text[0])) && end != text &&
            *end == '\0',
        std::string(flag) + " expects a non-negative integer, got '" + text + "'");
  return static_cast<u64>(v);
}

u32 parse_u32(const char* flag, const char* text) {
  const u64 v = parse_u64(flag, text);
  check(v <= 0xFFFFFFFFull,
        std::string(flag) + " value out of range: '" + text + "'");
  return static_cast<u32>(v);
}

double parse_rate(const char* flag, const char* text) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  check(end != text && *end == '\0' && v >= 0.0,
        std::string(flag) + " expects a non-negative number, got '" + text + "'");
  return v;
}

void print_usage(std::FILE* f, const char* prog) {
  std::fprintf(f, "usage: %s [flags]\n", prog);
  std::fprintf(f, "  --cells N      gNB cells in the farm (default 4)\n");
  std::fprintf(f, "  --ues N        UEs per cell (default 32)\n");
  std::fprintf(f, "  --ttis N       closed-loop TTIs per cell (default 100)\n");
  std::fprintf(f, "  --shards N     forked worker processes (default 1)\n");
  std::fprintf(f, "  --threads N    host threads per cell's cluster pool\n");
  std::fprintf(f, "  --seed S       farm seed (default 0xFA21)\n");
  std::fprintf(f, "  --quick        CI-sized carrier (2 MHz x 2 symbols)\n");
  std::fprintf(f, "  --full         paper-scale carrier (50 MHz x 14 symbols)\n");
  std::fprintf(f, "  --no-harq      single-shot baseline (every CRC fail drops)\n");
  std::fprintf(f, "  --burst        on/off arrival bursts + diurnal modulation\n");
  std::fprintf(f, "  --fastforward / --no-fastforward\n");
  std::fprintf(f, "                 event-driven idle skip (default on; reports\n");
  std::fprintf(f, "                 are bit-identical to the cycle-by-cycle run)\n");
  std::fprintf(f, "  --ppc N        problems per core (default: pool default)\n");
  std::fprintf(f, "  --batch-cores N  cores per batch (default: L1-fit maximum)\n");
  std::fprintf(f, "  --cluster-cores N  cores per emulated cluster (multiple of\n");
  std::fprintf(f, "                 8; default: 16-core tiny cluster)\n");
  std::fprintf(f, "  --json [DIR]   write DIR/farm_soak.json (default DIR: .)\n");
  std::fprintf(f, "  --csv DIR      write DIR/farm_soak.csv\n");
  std::fprintf(f, "supervisor / fault injection:\n");
  std::fprintf(f, "  --policy P     fail_fast | retry | degrade (default retry)\n");
  std::fprintf(f, "  --attempts N   forked attempts per shard under retry\n");
  std::fprintf(f, "  --shard-timeout SECS  wall-clock bound per worker (0 = off)\n");
  std::fprintf(f, "  --inject-shard-crash S   shard S crashes mid-stream\n");
  std::fprintf(f, "  --inject-shard-stall S   shard S hangs (needs a timeout)\n");
  std::fprintf(f, "  --inject-shard-garble S  shard S emits truncated JSON\n");
  std::fprintf(f, "  --fault-attempts N  host faults fire while attempt <= N\n");
  std::fprintf(f, "  --fault-seed S      fault stream seed (default 0xF417)\n");
  std::fprintf(f, "  --hart-trap-rate R  P(transient hart trap | batch run)\n");
  std::fprintf(f, "  --hart-hang-rate R  P(stuck hart | batch run)\n");
  std::fprintf(f, "  --l1-flip-rate R    expected L1 bit upsets per batch run\n");
  std::fprintf(f, "  --no-ecc            disable the SECDED model (silent upsets)\n");
  std::fprintf(f, "  --cluster-fail TTI  kill one cluster per cell from this TTI\n");
  std::fprintf(f, "  --cluster-fail-cluster C  which cluster dies (default 0)\n");
  std::fprintf(f, "  --drop-ind R        P(SlotIndication lost | TTI)\n");
  std::fprintf(f, "  --delay-ind R       P(SlotIndication delayed | TTI)\n");
  std::fprintf(f, "  --delay-slots N     delivery delay of a delayed indication\n");
  std::fprintf(f, "  --harq-timeout N    HARQ feedback timeout in slots (0 = off)\n");
  std::fprintf(f, "checkpoint / resume / bisect:\n");
  std::fprintf(f, "  --checkpoint-every N  snapshot every cell every N TTIs\n");
  std::fprintf(f, "  --checkpoint-dir DIR  where the per-cell snapshots live\n");
  std::fprintf(f, "  --resume              resume from the newest valid snapshots\n");
  std::fprintf(f, "  --bisect PRED   find the first TTI where PRED holds\n");
  std::fprintf(f, "                  (miss | degraded | bler=X); exit 1 if never\n");
  std::fprintf(f, "  --bisect-cell C cell to bisect (default 0)\n");
  std::fprintf(f, "  --help         this message\n");
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      check(i + 1 < argc, std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else if (std::strcmp(arg, "--cells") == 0) {
      opt.cells = parse_positive_u32("--cells", next("--cells"));
    } else if (std::strcmp(arg, "--ues") == 0) {
      opt.ues = parse_positive_u32("--ues", next("--ues"));
    } else if (std::strcmp(arg, "--ttis") == 0) {
      opt.ttis = parse_positive_u32("--ttis", next("--ttis"));
    } else if (std::strcmp(arg, "--shards") == 0) {
      opt.shards = parse_positive_u32("--shards", next("--shards"));
    } else if (std::strcmp(arg, "--threads") == 0) {
      opt.host_threads = parse_positive_u32("--threads", next("--threads"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.seed = parse_u64("--seed", next("--seed"));
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(arg, "--no-harq") == 0) {
      opt.no_harq = true;
    } else if (std::strcmp(arg, "--burst") == 0) {
      opt.burst = true;
    } else if (std::strcmp(arg, "--fastforward") == 0) {
      opt.fastforward = true;
    } else if (std::strcmp(arg, "--no-fastforward") == 0) {
      opt.fastforward = false;
    } else if (std::strcmp(arg, "--ppc") == 0) {
      opt.problems_per_core = parse_positive_u32("--ppc", next("--ppc"));
    } else if (std::strcmp(arg, "--batch-cores") == 0) {
      opt.batch_cores =
          parse_positive_u32("--batch-cores", next("--batch-cores"));
    } else if (std::strcmp(arg, "--cluster-cores") == 0) {
      opt.cluster_cores =
          parse_positive_u32("--cluster-cores", next("--cluster-cores"));
    } else if (std::strcmp(arg, "--policy") == 0) {
      opt.policy = mac::parse_farm_policy(next("--policy"));
    } else if (std::strcmp(arg, "--attempts") == 0) {
      opt.attempts = parse_positive_u32("--attempts", next("--attempts"));
    } else if (std::strcmp(arg, "--shard-timeout") == 0) {
      opt.shard_timeout_s = parse_rate("--shard-timeout", next("--shard-timeout"));
    } else if (std::strcmp(arg, "--inject-shard-crash") == 0) {
      opt.host_fault.crash_shard =
          parse_u32("--inject-shard-crash", next("--inject-shard-crash"));
    } else if (std::strcmp(arg, "--inject-shard-stall") == 0) {
      opt.host_fault.stall_shard =
          parse_u32("--inject-shard-stall", next("--inject-shard-stall"));
    } else if (std::strcmp(arg, "--inject-shard-garble") == 0) {
      opt.host_fault.garble_shard =
          parse_u32("--inject-shard-garble", next("--inject-shard-garble"));
    } else if (std::strcmp(arg, "--fault-attempts") == 0) {
      opt.host_fault.fault_attempts =
          parse_positive_u32("--fault-attempts", next("--fault-attempts"));
    } else if (std::strcmp(arg, "--fault-seed") == 0) {
      opt.fault.seed = parse_u64("--fault-seed", next("--fault-seed"));
    } else if (std::strcmp(arg, "--hart-trap-rate") == 0) {
      opt.fault.hart_trap_rate =
          parse_rate("--hart-trap-rate", next("--hart-trap-rate"));
      opt.fault.enabled = true;
    } else if (std::strcmp(arg, "--hart-hang-rate") == 0) {
      opt.fault.hart_hang_rate =
          parse_rate("--hart-hang-rate", next("--hart-hang-rate"));
      opt.fault.enabled = true;
    } else if (std::strcmp(arg, "--l1-flip-rate") == 0) {
      opt.fault.l1_flip_rate =
          parse_rate("--l1-flip-rate", next("--l1-flip-rate"));
      opt.fault.enabled = true;
    } else if (std::strcmp(arg, "--no-ecc") == 0) {
      opt.fault.ecc = false;
    } else if (std::strcmp(arg, "--cluster-fail") == 0) {
      opt.fault.cluster_fail_tti =
          parse_u32("--cluster-fail", next("--cluster-fail"));
      opt.fault.enabled = true;
    } else if (std::strcmp(arg, "--cluster-fail-cluster") == 0) {
      opt.fault.cluster_fail_id = parse_u32("--cluster-fail-cluster",
                                            next("--cluster-fail-cluster"));
    } else if (std::strcmp(arg, "--drop-ind") == 0) {
      opt.fault.drop_indication_rate = parse_rate("--drop-ind", next("--drop-ind"));
      opt.fault.enabled = true;
    } else if (std::strcmp(arg, "--delay-ind") == 0) {
      opt.fault.delay_indication_rate =
          parse_rate("--delay-ind", next("--delay-ind"));
      opt.fault.enabled = true;
    } else if (std::strcmp(arg, "--delay-slots") == 0) {
      opt.fault.delay_slots =
          parse_positive_u32("--delay-slots", next("--delay-slots"));
    } else if (std::strcmp(arg, "--harq-timeout") == 0) {
      opt.harq_timeout_slots = parse_u32("--harq-timeout", next("--harq-timeout"));
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      opt.checkpoint_every =
          parse_positive_u32("--checkpoint-every", next("--checkpoint-every"));
    } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
      opt.checkpoint_dir = next("--checkpoint-dir");
    } else if (std::strcmp(arg, "--resume") == 0) {
      opt.resume = true;
    } else if (std::strcmp(arg, "--bisect") == 0) {
      opt.bisect = next("--bisect");
      mac::parse_bisect_predicate(opt.bisect);  // fail fast on a bad spec
    } else if (std::strcmp(arg, "--bisect-cell") == 0) {
      opt.bisect_cell = parse_u32("--bisect-cell", next("--bisect-cell"));
    } else if (std::strcmp(arg, "--json") == 0) {
      // Optional operand, as in dse_driver: bare --json writes into ".".
      opt.json_dir = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : ".";
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv_dir = next("--csv");
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      print_usage(stderr, argv[0]);
      std::exit(2);
    }
  }
  check(!(opt.quick && opt.full), "--quick and --full are mutually exclusive");
  return opt;
}

mac::FarmConfig farm_config(const Options& opt) {
  mac::FarmConfig cfg;
  cfg.cells = opt.cells;
  cfg.shards = opt.shards;
  cfg.seed = opt.seed;
  cfg.ttis = opt.ttis;
  cfg.ues_per_cell = opt.ues;
  if (opt.quick) {
    cfg.carrier.bandwidth_hz = 2e6;  // ~65 subcarriers
    cfg.carrier.symbols_per_slot = 2;
  } else if (opt.full) {
    cfg.carrier = phy::CarrierConfig::paper_50mhz();
  } else {
    cfg.carrier.bandwidth_hz = 10e6;  // ~327 subcarriers
    cfg.carrier.symbols_per_slot = 4;
  }
  cfg.harq.enabled = !opt.no_harq;
  if (opt.burst) {
    cfg.burst.enabled = true;
    cfg.burst.duty = 0.5;
    cfg.burst.mean_on_slots = 8.0;
    cfg.burst.arrival_prob = 0.9;
    cfg.burst.diurnal_period_ttis = 50.0;
    cfg.burst.diurnal_depth = 0.5;
  }
  cfg.pool.host_threads = opt.host_threads;
  cfg.pool.fast_forward = opt.fastforward;
  if (opt.problems_per_core > 0) cfg.pool.problems_per_core = opt.problems_per_core;
  if (opt.batch_cores > 0) cfg.pool.batch_cores = opt.batch_cores;
  if (opt.cluster_cores > 0)
    cfg.pool.cluster = dse::cluster_for_cores(opt.cluster_cores);
  cfg.policy = opt.policy;
  cfg.max_shard_attempts = opt.attempts;
  cfg.shard_timeout_s = opt.shard_timeout_s;
  cfg.host_fault = opt.host_fault;
  cfg.fault = opt.fault;
  cfg.harq.feedback_timeout_slots = opt.harq_timeout_slots;
  cfg.checkpoint_every = opt.checkpoint_every;
  cfg.checkpoint_dir = opt.checkpoint_dir;
  cfg.resume = opt.resume;
  return cfg;
}

/// --bisect mode: O(log snapshots) restores + one replayed window instead of
/// a full re-run. Exit 0 when the predicate fires, 1 when it never does.
int run_bisect(const Options& opt, const mac::FarmConfig& cfg) {
  const mac::BisectPredicate pred = mac::parse_bisect_predicate(opt.bisect);
  std::printf("bisecting cell %u for first %s (snapshots in %s)\n",
              opt.bisect_cell, pred.describe().c_str(),
              cfg.checkpoint_dir.c_str());
  const mac::BisectResult res = mac::bisect_cell(cfg, opt.bisect_cell, pred);
  std::printf("probed %llu snapshot(s), replayed %llu TTI(s) from boundary "
              "%lld\n",
              static_cast<unsigned long long>(res.snapshots_loaded),
              static_cast<unsigned long long>(res.ttis_replayed),
              static_cast<long long>(res.window_start));
  for (const std::string& line : res.window_trace)
    std::printf("  %s\n", line.c_str());
  if (res.first_bad_tti < 0) {
    std::printf("predicate never fires in %u TTI(s)\n", cfg.ttis);
    return 1;
  }
  std::printf("first %s at TTI %lld\n", pred.describe().c_str(),
              static_cast<long long>(res.first_bad_tti));
  return 0;
}

int run(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const mac::FarmConfig cfg = farm_config(opt);
  if (!opt.bisect.empty()) return run_bisect(opt, cfg);

  std::printf("farm_driver | %u cell(s) x %u UE(s) x %u TTI(s), %u shard(s), "
              "seed 0x%llx\n",
              cfg.cells, cfg.ues_per_cell, cfg.ttis, cfg.shards,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("carrier: %u sc x %u sym | HARQ %s (%u processes, %u attempts) | "
              "arrivals %s\n\n",
              cfg.carrier.num_subcarriers(), cfg.carrier.symbols_per_slot,
              cfg.harq.enabled ? "on" : "OFF",
              cfg.harq.num_processes, cfg.harq.max_attempts,
              cfg.burst.enabled ? "bursty" : "full-buffer");
  if (!cfg.pool.fast_forward)
    std::printf("fast-forward OFF: cycle-by-cycle reference run\n");

  const bench::Stopwatch wall;
  const mac::FarmResult result = mac::run_farm(cfg);
  const double wall_s = wall.seconds();

  sim::Table table(mac::cell_report_header());
  for (const mac::CellReport& rep : result.cells)
    table.add_row(mac::cell_report_row(rep));

  const double tti_s = cfg.carrier.numerology.slot_seconds();
  std::printf("%-5s %6s %7s %7s %7s %7s %10s %8s %9s %7s\n", "cell", "pdus",
              "new_tx", "retx", "drops", "stalls", "res.BLER", "retx%",
              "Mb/s", "misses");
  for (const mac::CellReport& rep : result.cells)
    std::printf("%-5u %6llu %7llu %7llu %7llu %7llu %10.4f %7.1f%% %9.2f %7llu\n",
                rep.cell, static_cast<unsigned long long>(rep.pdus),
                static_cast<unsigned long long>(rep.harq.new_tx),
                static_cast<unsigned long long>(rep.harq.retx),
                static_cast<unsigned long long>(rep.harq.drops),
                static_cast<unsigned long long>(rep.harq.stalls),
                rep.residual_bler(), rep.retx_fraction() * 100.0,
                rep.delivered_mbps(tti_s),
                static_cast<unsigned long long>(rep.misses));

  const mac::CellReport total = result.total();
  std::printf("%-5s %6llu %7llu %7llu %7llu %7llu %10.4f %7.1f%% %9.2f %7llu\n",
              "TOTAL", static_cast<unsigned long long>(total.pdus),
              static_cast<unsigned long long>(total.harq.new_tx),
              static_cast<unsigned long long>(total.harq.retx),
              static_cast<unsigned long long>(total.harq.drops),
              static_cast<unsigned long long>(total.harq.stalls),
              total.residual_bler(), total.retx_fraction() * 100.0,
              total.delivered_mbps(tti_s),
              static_cast<unsigned long long>(total.misses));

  std::printf("\nCRC: %llu/%llu transmissions failed (%.1f%%); "
              "%llu block(s) unresolved at end of soak\n",
              static_cast<unsigned long long>(total.crc_fail),
              static_cast<unsigned long long>(total.pdus),
              total.crc_fail_fraction() * 100.0,
              static_cast<unsigned long long>(total.unresolved));
  std::printf("latency: p50 %.1f us, p99 %.1f us, worst %.1f us (worst cell) | "
              "soft-buffer peak %llu bits\n",
              static_cast<double>(total.p50_cycles) / cfg.clock_hz * 1e6,
              static_cast<double>(total.p99_cycles) / cfg.clock_hz * 1e6,
              static_cast<double>(total.worst_cycles) / cfg.clock_hz * 1e6,
              static_cast<unsigned long long>(total.harq.soft_buffer_peak_bits));
  std::printf("host: %u cell-TTIs in %.2f s wall clock (%.0f TTI/s)\n",
              cfg.cells * cfg.ttis, wall_s,
              wall_s > 0 ? cfg.cells * cfg.ttis / wall_s : 0.0);

  // Host-side fast-forward activity (in-process runs only; reports and JSON
  // stay byte-identical either way - this line is diagnostics).
  if (cfg.pool.fast_forward && result.ff.ttis > 0) {
    const mac::FarmResult::FfActivity& ff = result.ff;
    std::printf("fast-forward: %llu/%llu quiescent TTI(s) skipped, "
                "%llu/%llu batch(es) shrunk (%.0f%% of core-runs parked)\n",
                static_cast<unsigned long long>(ff.idle_ttis),
                static_cast<unsigned long long>(ff.ttis),
                static_cast<unsigned long long>(ff.shrunk_batches),
                static_cast<unsigned long long>(ff.full_batches +
                                                ff.shrunk_batches),
                ff.cores_full > 0
                    ? 100.0 *
                          static_cast<double>(ff.cores_full - ff.cores_run) /
                          static_cast<double>(ff.cores_full)
                    : 0.0);
  }

  if (cfg.fault.enabled) {
    std::printf("faults: %llu degraded slot(s), %llu hart fault(s), "
                "ECC %llu corrected / %llu detected / %llu silent, "
                "FAPI %llu dropped / %llu delayed, %llu HARQ timeout(s)\n",
                static_cast<unsigned long long>(total.degraded_slots),
                static_cast<unsigned long long>(total.hart_faults),
                static_cast<unsigned long long>(total.ecc_corrected),
                static_cast<unsigned long long>(total.ecc_detected),
                static_cast<unsigned long long>(total.ecc_silent),
                static_cast<unsigned long long>(total.dropped_ind),
                static_cast<unsigned long long>(total.delayed_ind),
                static_cast<unsigned long long>(total.harq.timeouts));
  }
  if (!result.failures.empty()) {
    std::printf("supervisor: %zu failed shard attempt(s) under policy %s\n",
                result.failures.size(), mac::farm_policy_name(cfg.policy));
    for (const mac::ShardFailure& f : result.failures) {
      std::printf("  shard %u attempt %u: %s%s\n", f.shard, f.attempt,
                  f.reason.c_str(), f.recovered ? " (recovered)" : " (LOST)");
      for (size_t i = 0; i < f.resume_ttis.size(); ++i) {
        if (f.resume_ttis[i] < 0)
          std::printf("    cell %u: recovery restarted clean\n", f.cells[i]);
        else
          std::printf("    cell %u: recovery resumed from snapshot TTI %lld\n",
                      f.cells[i], static_cast<long long>(f.resume_ttis[i]));
      }
    }
    const std::vector<u32> missing = result.missing_cells();
    if (!missing.empty()) {
      std::printf("  %zu cell(s) degraded to zero-filled reports\n",
                  missing.size());
    }
  }

  if (!opt.json_dir.empty()) {
    const std::string path =
        bench::BenchOptions::write_json_table(table, opt.json_dir, "farm_soak");
    if (path.empty()) {
      std::fprintf(stderr, "error: could not write JSON into '%s'\n",
                   opt.json_dir.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  if (!opt.csv_dir.empty()) table.write_csv(opt.csv_dir + "/farm_soak.csv");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
