// Multi-cell gNB farm soak driver: N independent cells of persistent UEs
// with closed-loop HARQ traffic (src/mac/), shard-parallel across forked
// worker processes, reported through the shared BENCH_*.json row format.
//
//   ./farm_driver --quick                    CI-sized soak (2 MHz carrier)
//   ./farm_driver --quick --shards 4         same numbers, 4 worker processes
//   ./farm_driver --quick --json             also write ./farm_soak.json
//   ./farm_driver --full                     paper-scale carrier per cell
//
// The JSON rows are one CellReport per cell - exact integers only, and
// independent of --shards and --threads - so CI's farm-smoke step diffs the
// --shards 1 and --shards 2 outputs byte-for-byte to pin the shard-
// invariance contract (see BENCH_farm_soak.json for the seeded history).
//
// Flags: --cells N, --ues N, --ttis N, --shards N, --threads N, --seed S,
// --quick | --full, --no-harq (single-shot A/B baseline), --burst (on/off
// arrival bursts + diurnal modulation), --json [DIR], --csv DIR.
// Unknown flags exit 2.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "mac/farm.h"

using namespace tsim;

namespace {

struct Options {
  u32 cells = 4;
  u32 ues = 32;
  u32 ttis = 100;
  u32 shards = 1;
  u32 host_threads = 2;
  u64 seed = 0xFA21;
  bool quick = false;
  bool full = false;
  bool no_harq = false;
  bool burst = false;
  std::string json_dir;
  std::string csv_dir;
};

u32 parse_positive_u32(const char* flag, const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  check(end != text && *end == '\0' && v >= 1 && v <= 0xFFFFFFFFll,
        std::string(flag) + " expects a positive integer, got '" + text + "'");
  return static_cast<u32>(v);
}

u64 parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  check(std::isdigit(static_cast<unsigned char>(text[0])) && end != text &&
            *end == '\0',
        std::string(flag) + " expects a non-negative integer, got '" + text + "'");
  return static_cast<u64>(v);
}

void print_usage(std::FILE* f, const char* prog) {
  std::fprintf(f, "usage: %s [flags]\n", prog);
  std::fprintf(f, "  --cells N      gNB cells in the farm (default 4)\n");
  std::fprintf(f, "  --ues N        UEs per cell (default 32)\n");
  std::fprintf(f, "  --ttis N       closed-loop TTIs per cell (default 100)\n");
  std::fprintf(f, "  --shards N     forked worker processes (default 1)\n");
  std::fprintf(f, "  --threads N    host threads per cell's cluster pool\n");
  std::fprintf(f, "  --seed S       farm seed (default 0xFA21)\n");
  std::fprintf(f, "  --quick        CI-sized carrier (2 MHz x 2 symbols)\n");
  std::fprintf(f, "  --full         paper-scale carrier (50 MHz x 14 symbols)\n");
  std::fprintf(f, "  --no-harq      single-shot baseline (every CRC fail drops)\n");
  std::fprintf(f, "  --burst        on/off arrival bursts + diurnal modulation\n");
  std::fprintf(f, "  --json [DIR]   write DIR/farm_soak.json (default DIR: .)\n");
  std::fprintf(f, "  --csv DIR      write DIR/farm_soak.csv\n");
  std::fprintf(f, "  --help         this message\n");
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      check(i + 1 < argc, std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else if (std::strcmp(arg, "--cells") == 0) {
      opt.cells = parse_positive_u32("--cells", next("--cells"));
    } else if (std::strcmp(arg, "--ues") == 0) {
      opt.ues = parse_positive_u32("--ues", next("--ues"));
    } else if (std::strcmp(arg, "--ttis") == 0) {
      opt.ttis = parse_positive_u32("--ttis", next("--ttis"));
    } else if (std::strcmp(arg, "--shards") == 0) {
      opt.shards = parse_positive_u32("--shards", next("--shards"));
    } else if (std::strcmp(arg, "--threads") == 0) {
      opt.host_threads = parse_positive_u32("--threads", next("--threads"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.seed = parse_u64("--seed", next("--seed"));
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(arg, "--no-harq") == 0) {
      opt.no_harq = true;
    } else if (std::strcmp(arg, "--burst") == 0) {
      opt.burst = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      // Optional operand, as in dse_driver: bare --json writes into ".".
      opt.json_dir = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : ".";
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv_dir = next("--csv");
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      print_usage(stderr, argv[0]);
      std::exit(2);
    }
  }
  check(!(opt.quick && opt.full), "--quick and --full are mutually exclusive");
  return opt;
}

mac::FarmConfig farm_config(const Options& opt) {
  mac::FarmConfig cfg;
  cfg.cells = opt.cells;
  cfg.shards = opt.shards;
  cfg.seed = opt.seed;
  cfg.ttis = opt.ttis;
  cfg.ues_per_cell = opt.ues;
  if (opt.quick) {
    cfg.carrier.bandwidth_hz = 2e6;  // ~65 subcarriers
    cfg.carrier.symbols_per_slot = 2;
  } else if (opt.full) {
    cfg.carrier = phy::CarrierConfig::paper_50mhz();
  } else {
    cfg.carrier.bandwidth_hz = 10e6;  // ~327 subcarriers
    cfg.carrier.symbols_per_slot = 4;
  }
  cfg.harq.enabled = !opt.no_harq;
  if (opt.burst) {
    cfg.burst.enabled = true;
    cfg.burst.duty = 0.5;
    cfg.burst.mean_on_slots = 8.0;
    cfg.burst.arrival_prob = 0.9;
    cfg.burst.diurnal_period_ttis = 50.0;
    cfg.burst.diurnal_depth = 0.5;
  }
  cfg.pool.host_threads = opt.host_threads;
  return cfg;
}

int run(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const mac::FarmConfig cfg = farm_config(opt);

  std::printf("farm_driver | %u cell(s) x %u UE(s) x %u TTI(s), %u shard(s), "
              "seed 0x%llx\n",
              cfg.cells, cfg.ues_per_cell, cfg.ttis, cfg.shards,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("carrier: %u sc x %u sym | HARQ %s (%u processes, %u attempts) | "
              "arrivals %s\n\n",
              cfg.carrier.num_subcarriers(), cfg.carrier.symbols_per_slot,
              cfg.harq.enabled ? "on" : "OFF",
              cfg.harq.num_processes, cfg.harq.max_attempts,
              cfg.burst.enabled ? "bursty" : "full-buffer");

  const bench::Stopwatch wall;
  const mac::FarmResult result = mac::run_farm(cfg);
  const double wall_s = wall.seconds();

  sim::Table table(mac::cell_report_header());
  for (const mac::CellReport& rep : result.cells)
    table.add_row(mac::cell_report_row(rep));

  const double tti_s = cfg.carrier.numerology.slot_seconds();
  std::printf("%-5s %6s %7s %7s %7s %7s %10s %8s %9s %7s\n", "cell", "pdus",
              "new_tx", "retx", "drops", "stalls", "res.BLER", "retx%",
              "Mb/s", "misses");
  for (const mac::CellReport& rep : result.cells)
    std::printf("%-5u %6llu %7llu %7llu %7llu %7llu %10.4f %7.1f%% %9.2f %7llu\n",
                rep.cell, static_cast<unsigned long long>(rep.pdus),
                static_cast<unsigned long long>(rep.harq.new_tx),
                static_cast<unsigned long long>(rep.harq.retx),
                static_cast<unsigned long long>(rep.harq.drops),
                static_cast<unsigned long long>(rep.harq.stalls),
                rep.residual_bler(), rep.retx_fraction() * 100.0,
                rep.delivered_mbps(tti_s),
                static_cast<unsigned long long>(rep.misses));

  const mac::CellReport total = result.total();
  std::printf("%-5s %6llu %7llu %7llu %7llu %7llu %10.4f %7.1f%% %9.2f %7llu\n",
              "TOTAL", static_cast<unsigned long long>(total.pdus),
              static_cast<unsigned long long>(total.harq.new_tx),
              static_cast<unsigned long long>(total.harq.retx),
              static_cast<unsigned long long>(total.harq.drops),
              static_cast<unsigned long long>(total.harq.stalls),
              total.residual_bler(), total.retx_fraction() * 100.0,
              total.delivered_mbps(tti_s),
              static_cast<unsigned long long>(total.misses));

  std::printf("\nCRC: %llu/%llu transmissions failed (%.1f%%); "
              "%llu block(s) unresolved at end of soak\n",
              static_cast<unsigned long long>(total.crc_fail),
              static_cast<unsigned long long>(total.pdus),
              total.crc_fail_fraction() * 100.0,
              static_cast<unsigned long long>(total.unresolved));
  std::printf("latency: p50 %.1f us, p99 %.1f us, worst %.1f us (worst cell) | "
              "soft-buffer peak %llu bits\n",
              static_cast<double>(total.p50_cycles) / cfg.clock_hz * 1e6,
              static_cast<double>(total.p99_cycles) / cfg.clock_hz * 1e6,
              static_cast<double>(total.worst_cycles) / cfg.clock_hz * 1e6,
              static_cast<unsigned long long>(total.harq.soft_buffer_peak_bits));
  std::printf("host: %u cell-TTIs in %.2f s wall clock (%.0f TTI/s)\n",
              cfg.cells * cfg.ttis, wall_s,
              wall_s > 0 ? cfg.cells * cfg.ttis / wall_s : 0.0);

  if (!opt.json_dir.empty()) {
    const std::string path =
        bench::BenchOptions::write_json_table(table, opt.json_dir, "farm_soak");
    if (path.empty()) {
      std::fprintf(stderr, "error: could not write JSON into '%s'\n",
                   opt.json_dir.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  if (!opt.csv_dir.empty()) table.write_csv(opt.csv_dir + "/farm_soak.csv");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
