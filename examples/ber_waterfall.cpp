// BER waterfall: Monte-Carlo extraction of BER-vs-SNR curves with the
// emulated DUT in the loop (a compact version of the paper's Figs. 9/10).
//
// Usage: ./examples/ber_waterfall [awgn|rayleigh] [qam_order]
#include <cstdio>
#include <cstring>

#include "sim/mc.h"
#include "sim/report.h"

using namespace tsim;

int main(int argc, char** argv) {
  const bool rayleigh = argc > 1 && std::strcmp(argv[1], "rayleigh") == 0;
  const u32 qam = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 16;

  sim::McConfig cfg;
  cfg.ntx = 4;
  cfg.nrx = 4;
  cfg.qam_order = qam;
  cfg.channel = rayleigh ? phy::ChannelType::kRayleigh : phy::ChannelType::kAwgn;
  cfg.target_errors = 100;
  cfg.max_bits = 100'000;
  cfg.problems_per_core = 4;
  sim::McRunner mc(cfg);

  const std::vector<double> snrs = rayleigh
                                       ? std::vector<double>{0, 5, 10, 15}
                                       : std::vector<double>{7.5, 10, 12.5, 15, 17.5};
  std::printf("BER waterfall: 4x4 %uQAM over %s (DUT in the loop, bit-true)\n\n", qam,
              rayleigh ? "Rayleigh" : "AWGN");

  sim::Table table({"SNR [dB]", "64bDouble", "16bCDotp", "8bQuarter"});
  for (const double snr : snrs) {
    table.add_row({sim::strf("%.1f", snr),
                   sim::strf("%.3e", mc.golden_point(snr).ber),
                   sim::strf("%.3e", mc.dut_point(kern::Precision::k16CDotp, snr).ber),
                   sim::strf("%.3e", mc.dut_point(kern::Precision::k8Quarter, snr).ber)});
  }
  table.print();
  std::printf("\nNote: the 8-bit variant's BER floor at high SNR is the paper's\n"
              "Fig. 9 observation - Gram outputs are truncated to fp8 before the\n"
              "16-bit solve.\n");
  return 0;
}
