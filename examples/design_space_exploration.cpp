// Design-space exploration: the paper's core use case - evaluate MMSE
// arithmetic-precision variants quickly, trading functional accuracy
// against execution speed before committing to RTL.
//
// For each precision this example reports, on one 8x8 problem:
//   - retired instructions and estimated DUT cycles (fast ISS),
//   - cycle-accurate cycles and stall profile (RTL-analog model),
//   - detection error vs the double-precision golden model,
// and prints the Fig. 3-style complex-MAC instruction sequence extracted
// from the generated binary.
#include <cmath>
#include <cstdio>
#include <limits>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "phy/mmse.h"
#include "rv/disasm.h"
#include "sim/cosim.h"
#include "sim/report.h"
#include "uarch/cluster_sim.h"

using namespace tsim;

namespace {

/// Extracts the first inner-loop MAC sequence of the Gram kernel by
/// disassembling between the first two post-increment loads after `gram`.
void print_mac_sequence(const rvasm::Program& program, std::string_view name) {
  const u32 gram = program.symbol("gram");
  const u32 mvm = program.symbol("mvm");
  std::printf("  %s complex-MAC (from the generated binary):\n",
              std::string(name).c_str());
  u32 printed = 0;
  bool in_mac = false;
  for (u32 pc = gram; pc < mvm && printed < 14; pc += 4) {
    const u32 word = program.words[(pc - program.base) / 4];
    const auto d = rv::decode(word);
    const bool is_load = d.op == rv::Op::kPLh || d.op == rv::Op::kPLhu ||
                         d.op == rv::Op::kPLw;
    if (is_load) in_mac = true;
    if (in_mac) {
      std::printf("    %s\n", rv::disassemble(d).c_str());
      ++printed;
      // Stop at the next control transfer (end of the unrolled body slice).
      if (d.op == rv::Op::kBne || d.op == rv::Op::kJal) break;
    }
  }
}

}  // namespace

int main() {
  const u32 n = 8;
  Rng rng(99);
  phy::Channel channel(phy::ChannelType::kRayleigh, n, n);
  phy::QamModulator qam(16);
  const sim::Batch batch = sim::generate_batch(channel, qam, n, 1, 14.0, rng);
  const sim::MimoProblem& problem = batch.problems[0];
  const auto golden = phy::mmse_detect(problem.h, problem.y, problem.sigma2);

  sim::Table table({"precision", "instructions", "ISS cycles", "RTL cycles",
                    "RTL stall%", "max |err| vs golden"});
  for (const kern::Precision prec : kern::kAllPrecisions) {
    kern::MmseLayout layout;
    layout.ntx = n;
    layout.nrx = n;
    layout.prec = prec;
    layout.num_cores = 1;
    layout.cluster = tera::TeraPoolConfig::full();
    const auto program = kern::build_mmse_program(layout);

    iss::Machine machine(layout.cluster, iss::TimingConfig{}, 1);
    machine.load_program(program);
    sim::stage_problem(machine.memory(), layout, 0, 0, problem);
    const auto iss_res = machine.run();

    uarch::ClusterSim rtl(layout.cluster, uarch::UarchConfig{}, 1);
    rtl.load_program(program);
    sim::stage_problem(rtl.memory(), layout, 0, 0, problem);
    const auto rtl_res = rtl.run();
    const auto stats = rtl.aggregate_stats();
    const double stall_pct =
        100.0 * static_cast<double>(stats.total_cycles() - stats.instr_cycles) /
        static_cast<double>(stats.total_cycles());

    const auto xhat = sim::read_xhat(machine.memory(), layout, 0, 0);
    double max_err = 0.0;
    for (u32 i = 0; i < n; ++i) {
      const double e = std::abs(xhat[i] - golden[i]);
      max_err = std::isfinite(e) ? std::max(max_err, e)
                                 : std::numeric_limits<double>::infinity();
    }

    table.add_row({std::string(kern::name_of(prec)),
                   sim::strf("%llu", static_cast<unsigned long long>(iss_res.instructions)),
                   sim::strf("%llu", static_cast<unsigned long long>(machine.estimated_cycles())),
                   sim::strf("%llu", static_cast<unsigned long long>(rtl_res.cycles)),
                   sim::strf("%.1f", stall_pct), sim::strf("%.4f", max_err)});
  }

  std::printf("Design-space exploration: software MMSE variants on an %ux%u problem\n\n",
              n, n);
  table.print();

  std::printf("\nFig. 3 companion - generated complex-MAC sequences:\n\n");
  for (const kern::Precision prec :
       {kern::Precision::k16Half, kern::Precision::k16WDotp, kern::Precision::k16CDotp,
        kern::Precision::k8WDotp}) {
    kern::MmseLayout layout;
    layout.ntx = n;
    layout.nrx = n;
    layout.prec = prec;
    layout.num_cores = 1;
    layout.cluster = tera::TeraPoolConfig::full();
    print_mac_sequence(kern::build_mmse_program(layout), kern::name_of(prec));
    std::printf("\n");
  }
  return 0;
}
