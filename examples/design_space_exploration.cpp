// Design-space exploration walkthrough: the paper's core use case on the
// real DSE subsystem (src/dse/). A small sweep evaluates every arithmetic
// precision at two pool sizes end-to-end through the slot engine - traffic
// generation, batch scheduling on emulated clusters, deadline accounting,
// golden-model reference - and extracts the Pareto front over
// (total cores, worst-slot latency, detection BER). `./dse_driver` is the
// full CLI with the larger sweeps and the JSON trajectory output.
//
// As a Fig. 3 companion, the complex-MAC instruction sequences are printed
// from the generated binaries of the four timed precision variants.
#include <cstdio>

#include "dse/pareto.h"
#include "dse/space.h"
#include "dse/sweep.h"
#include "kernels/mmse_program.h"
#include "ran/traffic.h"
#include "rv/disasm.h"

using namespace tsim;

namespace {

/// Extracts the first inner-loop MAC sequence of the Gram kernel by
/// disassembling between the first two post-increment loads after `gram`.
void print_mac_sequence(const rvasm::Program& program, std::string_view name) {
  const u32 gram = program.symbol("gram");
  const u32 mvm = program.symbol("mvm");
  std::printf("  %s complex-MAC (from the generated binary):\n",
              std::string(name).c_str());
  u32 printed = 0;
  bool in_mac = false;
  for (u32 pc = gram; pc < mvm && printed < 14; pc += 4) {
    const u32 word = program.words[(pc - program.base) / 4];
    const auto d = rv::decode(word);
    const bool is_load = d.op == rv::Op::kPLh || d.op == rv::Op::kPLhu ||
                         d.op == rv::Op::kPLw;
    if (is_load) in_mac = true;
    if (in_mac) {
      std::printf("    %s\n", rv::disassemble(d).c_str());
      ++printed;
      // Stop at the next control transfer (end of the unrolled body slice).
      if (d.op == rv::Op::kBne || d.op == rv::Op::kJal) break;
    }
  }
}

}  // namespace

int main() {
  // Every precision variant at two pool sizes, on a tiny mixed-geometry
  // carrier: enough to show the cost/latency/BER trade-off the paper's
  // exploration methodology is built around.
  dse::DesignSpace space;
  space.clusters = {1, 2};
  space.cores_per_cluster = {16};
  space.precisions.assign(std::begin(kern::kAllPrecisions),
                          std::end(kern::kAllPrecisions));
  space.problems_per_core = {2};
  space.policies = {ran::AssignPolicy::kLocality};

  dse::SweepConfig cfg;
  cfg.traffic.carrier.bandwidth_hz = 2e6;  // ~65 subcarriers
  cfg.traffic.carrier.symbols_per_slot = 2;
  cfg.traffic.groups = ran::mixed_geometry_groups();
  cfg.traffic.seed = 0x99;

  const dse::SweepResult result = dse::run_sweep(space, cfg);
  const std::vector<u32> front =
      dse::pareto_front(result.points, dse::default_objectives());

  std::printf("Design-space exploration: %zu points, %u sc x %u sym per TTI\n\n",
              result.points.size(), cfg.traffic.carrier.num_subcarriers(),
              cfg.traffic.carrier.symbols_per_slot);
  dse::sweep_table(result, front).print();
  for (const dse::SkippedPoint& s : result.skipped)
    std::printf("skipped (infeasible): %s: %s\n", s.point.label().c_str(),
                s.reason.c_str());
  std::printf("\nPareto front over (cores, latency, ber): %zu points\n",
              front.size());
  for (const u32 i : front)
    std::printf("  %s\n", result.points[i].point.label().c_str());

  std::printf("\nFig. 3 companion - generated complex-MAC sequences:\n\n");
  for (const kern::Precision prec : kern::kTimedPrecisions) {
    kern::MmseLayout layout;
    layout.ntx = 8;
    layout.nrx = 8;
    layout.prec = prec;
    layout.num_cores = 1;
    layout.cluster = tera::TeraPoolConfig::full();
    print_mac_sequence(kern::build_mmse_program(layout), kern::name_of(prec));
    std::printf("\n");
  }
  return 0;
}
