// OFDM-symbol detection: the paper's headline workload (Sec. V-A).
//
// A 5G NR transmission in a 50 MHz bandwidth has NSC = 1638 subcarriers per
// OFDM symbol; every subcarrier is an independent MMSE problem. This
// example batches a (scaled) OFDM symbol onto a single Snitch core - the
// Monte-Carlo configuration of Fig. 6 - runs it on the fast ISS, and
// reports simulator speed, estimated DUT cycles, and detection quality.
//
// Usage: ./examples/ofdm_symbol_detection [nsc] [mimo_n]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "kernels/profile.h"
#include "phy/ber.h"
#include "phy/mmse.h"
#include "phy/ofdm.h"
#include "sim/cosim.h"

using namespace tsim;

int main(int argc, char** argv) {
  const u32 nsc = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 256;
  const u32 n = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 4;

  kern::MmseLayout layout;
  layout.ntx = n;
  layout.nrx = n;
  layout.prec = kern::Precision::k16WDotp;
  layout.num_cores = 1;           // one Snitch core...
  layout.problems_per_core = nsc; // ...iterating over the whole symbol
  layout.cluster = tera::TeraPoolConfig::full();
  layout.validate();

  std::printf("OFDM symbol: %u subcarriers, %ux%u MIMO, %s kernels, 16QAM\n", nsc, n,
              n, std::string(kern::name_of(layout.prec)).c_str());

  // Generate one OFDM symbol worth of subcarrier problems.
  Rng rng(7);
  phy::Channel channel(phy::ChannelType::kRayleigh, n, n);
  phy::QamModulator qam(16);
  const sim::Batch batch = sim::generate_batch(channel, qam, n, nsc, 14.0, rng);

  iss::Machine machine(layout.cluster, iss::TimingConfig{}, 1);
  machine.load_program(kern::build_mmse_program(layout));
  for (u32 p = 0; p < nsc; ++p)
    sim::stage_problem(machine.memory(), layout, 0, p, batch.problems[p]);

  const auto start = std::chrono::steady_clock::now();
  const auto result = machine.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!result.exited) {
    std::fprintf(stderr, "DUT did not exit cleanly\n");
    return 1;
  }

  // Detection quality across the whole symbol.
  phy::BerCounter ber;
  const u32 bits_per_problem = n * qam.bits_per_symbol();
  for (u32 p = 0; p < nsc; ++p) {
    const auto xhat = sim::read_xhat(machine.memory(), layout, 0, p);
    const auto rx = qam.demap_sequence(xhat);
    ber.add(std::span(batch.tx_bits).subspan(p * bits_per_problem, bits_per_problem),
            rx);
  }

  std::printf("\nsimulation:  %.3f s wall, %llu instructions, %.2f MIPS\n", wall,
              static_cast<unsigned long long>(result.instructions),
              static_cast<double>(result.instructions) / wall / 1e6);
  std::printf("DUT runtime: %llu estimated cycles (%.2f us at 1 GHz)\n",
              static_cast<unsigned long long>(machine.estimated_cycles()),
              static_cast<double>(machine.estimated_cycles()) / 1e3);
  std::printf("detection:   BER %.4f (%llu errors / %llu bits) over the symbol\n",
              ber.ber(), static_cast<unsigned long long>(ber.errors()),
              static_cast<unsigned long long>(ber.bits()));

  // Per-operator cycle profile of the last subcarrier (mcycle-instrumented).
  const kern::KernelProfile prof = kern::read_profile(machine.memory(), layout, 0);
  std::printf("\nper-operator cycles (last problem): gram %u, mvm %u, chol %u, "
              "fsolve %u, bsolve %u, total %u\n",
              prof.gram, prof.mvm, prof.chol, prof.fsolve, prof.bsolve, prof.total);

  // Real-time feasibility: can the full 1024-core cluster detect every
  // subcarrier of every symbol inside the paper's 0.5 ms TTI at 1 GHz?
  const auto carrier = phy::CarrierConfig::paper_50mhz();
  const u32 cores = kern::MmseLayout::max_parallel_cores(
      tera::TeraPoolConfig::full(), n, n, layout.prec);
  const auto deadline = phy::tti_deadline(carrier, prof.total, cores);
  std::printf("TTI check:   %llu problems / TTI, %u parallel cores -> %.0f us "
              "processing vs %.0f us budget: %s (headroom %.1fx)\n",
              static_cast<unsigned long long>(deadline.problems), cores,
              deadline.processing_seconds() * 1e6, deadline.tti_seconds * 1e6,
              deadline.meets_deadline() ? "MEETS deadline" : "MISSES deadline",
              deadline.headroom());
  return 0;
}
