// Quickstart: simulate one 4x4 MIMO-MMSE detection end-to-end.
//
//   transmit bits -> 16-QAM -> Rayleigh channel -> stage into TeraPool L1 ->
//   run the fp16 MMSE software on the emulated 1024-core cluster ->
//   read back the detected symbols and compare with the double-precision
//   golden detector.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "phy/mmse.h"
#include "sim/cosim.h"

using namespace tsim;

int main() {
  // 1. Describe the workload: one 4x4 problem on one core of the full
  //    TeraPool cluster, 16bCDotp precision (complex-dot-product ISA).
  kern::MmseLayout layout;
  layout.ntx = 4;
  layout.nrx = 4;
  layout.prec = kern::Precision::k16CDotp;
  layout.num_cores = 1;
  layout.cluster = tera::TeraPoolConfig::full();

  // 2. Generate one subcarrier's transmission.
  Rng rng(2024);
  phy::Channel channel(phy::ChannelType::kRayleigh, layout.nrx, layout.ntx);
  phy::QamModulator qam(16);
  const sim::Batch batch = sim::generate_batch(channel, qam, layout.ntx,
                                               /*num_problems=*/1, /*snr_db=*/15.0, rng);
  const sim::MimoProblem& problem = batch.problems[0];

  // 3. Build the DUT software (genuine RV32 machine code from the in-repo
  //    assembler), load it, stage the operands bit-true into L1.
  iss::Machine machine(layout.cluster, iss::TimingConfig{}, layout.num_cores);
  machine.load_program(kern::build_mmse_program(layout));
  sim::stage_problem(machine.memory(), layout, 0, 0, problem);

  // 4. Run the emulated cluster.
  const iss::RunResult result = machine.run();
  std::printf("DUT run: exited=%d instructions=%llu estimated cycles=%llu\n",
              result.exited, static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(machine.estimated_cycles()));

  // 5. Compare the fp16 detection with the 64-bit golden detector.
  const auto xhat = sim::read_xhat(machine.memory(), layout, 0, 0);
  const auto golden = phy::mmse_detect(problem.h, problem.y, problem.sigma2);
  std::printf("\n%-8s %-24s %-24s %-24s\n", "stream", "transmitted", "DUT (fp16)",
              "golden (double)");
  for (u32 i = 0; i < layout.ntx; ++i) {
    std::printf("%-8u (%+.4f, %+.4f)      (%+.4f, %+.4f)      (%+.4f, %+.4f)\n", i,
                batch.tx_symbols[i].real(), batch.tx_symbols[i].imag(),
                xhat[i].real(), xhat[i].imag(), golden[i].real(), golden[i].imag());
  }

  // 6. Demap and count bit errors against the transmitted bits.
  const auto rx_bits = qam.demap_sequence(xhat);
  u32 errors = 0;
  for (size_t b = 0; b < rx_bits.size(); ++b) errors += rx_bits[b] != batch.tx_bits[b];
  std::printf("\nbit errors: %u / %zu\n", errors, rx_bits.size());
  return 0;
}
