// Slot-level RAN simulation: a full 14-symbol TTI of the paper's NR carrier
// (50 MHz, 30 kHz SCS, 1638 subcarriers) processed by a pool of emulated
// TeraPool clusters, with per-TTI latency checked against the 0.5 ms slot
// deadline (paper Sec. II: "processes a TTI with 14 OFDM-symbols in < 1 ms").
//
// Traffic is heterogeneous: an eMBB group (4x4 MIMO, 64-QAM, Rayleigh) and a
// low-order control-like group (2x4, QPSK, AWGN) share each symbol's
// subcarriers. Every subcarrier problem runs bit-true on the emulated RV32
// clusters; cycle accounting converts to latency at the given clock.
//
// Build & run:  ./ran_slot_sim [--clusters N] [--threads N] [--ttis N]
//                              [--poisson LOAD] [--full] [--clock GHZ]
//                              [--policy roundrobin|locality] [--json DIR]
//   --full uses the 1024-core TeraPool per cluster (default: the 16-core
//   tiny configuration, which visibly misses the deadline).
//   --policy selects the batch-to-cluster assignment (default: locality;
//   see scheduler.h); --json DIR writes the per-TTI table as JSON rows so
//   the two policies can be diffed from the CLI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "ran/deadline.h"
#include "ran/scheduler.h"
#include "ran/traffic.h"

using namespace tsim;

namespace {

int run(int argc, char** argv) {
  u32 num_clusters = 2;
  u32 host_threads = std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
  u32 ttis = 1;
  double poisson_load = -1.0;  // < 0 = full buffer
  double clock_ghz = 1.0;
  bool full = false;
  ran::AssignPolicy policy = ran::AssignPolicy::kLocality;
  std::string json_dir;
  const auto usage = [&](std::FILE* f) {
    std::fprintf(f,
                 "usage: %s [--clusters N] [--threads N] [--ttis N] "
                 "[--poisson LOAD] [--clock GHZ] [--full]\n"
                 "       [--policy roundrobin|locality] [--json DIR] [--help]\n",
                 argv[0]);
  };
  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* flag) -> const char* {
      check(i + 1 < argc, std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--clusters") == 0)
      num_clusters = static_cast<u32>(std::atoi(value("--clusters")));
    else if (std::strcmp(argv[i], "--threads") == 0)
      host_threads = static_cast<u32>(std::atoi(value("--threads")));
    else if (std::strcmp(argv[i], "--ttis") == 0)
      ttis = static_cast<u32>(std::atoi(value("--ttis")));
    else if (std::strcmp(argv[i], "--poisson") == 0)
      poisson_load = std::atof(value("--poisson"));
    else if (std::strcmp(argv[i], "--clock") == 0)
      clock_ghz = std::atof(value("--clock"));
    else if (std::strcmp(argv[i], "--full") == 0)
      full = true;
    else if (std::strcmp(argv[i], "--policy") == 0)
      policy = ran::parse_policy(value("--policy"));
    else if (std::strcmp(argv[i], "--json") == 0)
      json_dir = value("--json");
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  ttis = std::max(1u, ttis);

  // The paper's carrier and a mixed-service UE population.
  ran::TrafficConfig traffic;
  traffic.carrier = phy::CarrierConfig::paper_50mhz();
  traffic.groups = {
      ran::UeGroup{"embb", 4, 4, 64, 22.0, phy::ChannelType::kRayleigh, 3.0},
      ran::UeGroup{"ctrl", 2, 4, 4, 10.0, phy::ChannelType::kAwgn, 1.0},
  };
  if (poisson_load >= 0.0) {
    traffic.arrival = ran::ArrivalModel::kPoisson;
    traffic.offered_load = poisson_load;
  }

  ran::ClusterPoolConfig pool;
  pool.num_clusters = num_clusters;
  pool.host_threads = host_threads;
  pool.cluster = full ? tera::TeraPoolConfig::full() : tera::TeraPoolConfig::tiny();
  pool.prec = kern::Precision::k16CDotp;
  pool.problems_per_core = 4;
  pool.policy = policy;

  ran::TrafficGenerator gen(traffic);
  ran::SlotScheduler sched(pool, traffic.groups);
  const kern::MmseLayout& lay = sched.layout_for_group(0);
  std::printf(
      "carrier: %u subcarriers x %u symbols (%llu problems/TTI), slot = %.1f us\n",
      traffic.carrier.num_subcarriers(), traffic.carrier.symbols_per_slot,
      static_cast<unsigned long long>(traffic.carrier.problems_per_tti()),
      traffic.carrier.numerology.slot_seconds() * 1e6);
  std::printf(
      "pool: %u cluster(s) x %u cores/batch x %u problems/core, %u host thread(s), "
      "%.1f GHz, %s assignment\n\n",
      pool.num_clusters, lay.num_cores, pool.problems_per_core, pool.host_threads,
      clock_ghz, ran::policy_name(pool.policy));

  sim::Table slots = ran::slot_report_header();
  const auto wall_start = std::chrono::steady_clock::now();
  u64 total_problems = 0;
  std::vector<ran::SlotResult> history;
  history.reserve(ttis);
  ran::SlotResult last;
  for (u32 t = 0; t < ttis; ++t) {
    const ran::SlotWorkload slot = gen.next_slot();
    ran::SlotResult result = sched.run_slot(slot);
    const ran::SlotTiming timing =
        ran::slot_timing(result, traffic.carrier, clock_ghz * 1e9);
    ran::add_slot_row(slots, result, timing);
    total_problems += result.problems;
    ran::SlotResult slim = result;
    slim.detected_bits.clear();
    slim.trace.clear();
    history.push_back(std::move(slim));
    last = std::move(result);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  slots.print();
  if (!json_dir.empty()) slots.write_json(json_dir + "/ran_slot_sim.json");
  const ran::SlotTiming timing =
      ran::slot_timing(last, traffic.carrier, clock_ghz * 1e9);
  std::printf("\nper-cluster utilization (last TTI):\n");
  ran::cluster_report(last).print();
  std::printf("\nper-symbol critical path (last TTI):\n");
  sim::Table symbols = ran::symbol_report(last, timing);
  symbols.print();

  const ran::DeadlineReport report =
      ran::deadline_report(last, traffic.carrier, clock_ghz * 1e9);
  std::printf("\n%s: latency %.1f us vs %.1f us deadline (margin %+.1f%%)\n",
              timing.meets_deadline() ? "DEADLINE MET" : "DEADLINE MISSED",
              timing.latency_seconds() * 1e6, timing.tti_seconds * 1e6,
              timing.margin_fraction() * 100.0);
  std::printf("program reloads (last TTI): %llu switches, %llu cycles "
              "(%.2f%% of cluster busy time)\n",
              static_cast<unsigned long long>(report.reloads),
              static_cast<unsigned long long>(report.reload_cycles),
              report.reload_fraction() * 100.0);
  const ran::AggregateReport agg =
      ran::aggregate_report(history, traffic.carrier, clock_ghz * 1e9);
  std::printf("\nrun summary (%llu TTIs): p50 %.1f us, p99 %.1f us, worst %.1f us, "
              "%llu deadline miss(es) (%.1f%%), %llu reloads (%llu cycles)\n",
              static_cast<unsigned long long>(agg.slots),
              agg.p50_latency_seconds() * 1e6, agg.p99_latency_seconds() * 1e6,
              agg.worst_latency_seconds() * 1e6,
              static_cast<unsigned long long>(agg.misses),
              agg.miss_fraction() * 100.0,
              static_cast<unsigned long long>(agg.reloads),
              static_cast<unsigned long long>(agg.reload_cycles));
  std::printf("host: simulated %u TTI(s), %llu subcarrier problems, in %.2f s "
              "wall clock (%.0f problems/s)\n",
              ttis, static_cast<unsigned long long>(total_problems), wall_s,
              wall_s > 0 ? total_problems / wall_s : 0.0);
  return timing.meets_deadline() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
