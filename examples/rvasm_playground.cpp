// RISC-V assembler playground: author custom DUT software in text assembly,
// run it on the emulated TeraPool cluster, and inspect the results - the
// path an adopter takes to put their own kernels on the simulator.
//
// The program below computes, on 8 parallel cores, a SIMD fp16 AXPY
// (y = a*x + y over packed half-words) with each core handling its own slice,
// synchronizing on the cluster barrier, and hart 0 reporting completion.
#include <cstdio>

#include "iss/machine.h"
#include "rv/disasm.h"
#include "rvasm/textasm.h"
#include "softfloat/minifloat.h"
#include "softfloat/packed.h"

using namespace tsim;

namespace {

constexpr const char* kAxpyProgram = R"(
    # 8 harts: y[i] = a * x[i] + y[i] over packed fp16 pairs.
    # x at 0x1000, y at 0x2000, 16 packed words per hart.
    _start:
      csrr  t0, mhartid
      li    t1, 8
      bgeu  t0, t1, park

      # my slice: 16 words starting at hartid*64 bytes
      slli  t2, t0, 6
      li    s2, 0x1000
      add   s2, s2, t2        # x slice
      li    s3, 0x2000
      add   s3, s3, t2        # y slice
      li    s4, 16            # words in the slice
      li    s5, 0x42004200    # a = (3.0, 3.0) packed fp16

    loop:
      lw    t3, 0(s2)
      lw    t4, 0(s3)
      vfmac.h t4, s5, t3      # y += a * x (per lane, fused)
      p.sw  t4, 4(s3!)        # store and bump y pointer
      addi  s2, s2, 4
      addi  s4, s4, -1
      bnez  s4, loop

      # barrier: amoadd counter at 0x80, wake-all on the last arrival
      li    t3, 0x80
      li    t4, 1
      amoadd.w t5, t4, (t3)
      li    t6, 7
      beq   t5, t6, last
      wfi
      j     done
    last:
      sw    zero, 0(t3)
      li    s6, 0x40000008
      li    s7, -1
      sw    s7, 0(s6)
    done:
      csrr  t0, mhartid
      bnez  t0, park
      li    s8, 0x40000000
      sw    zero, 0(s8)       # hart 0 signals exit
    park:
      wfi
      j     park
)";

}  // namespace

int main() {
  // Assemble from text and show a disassembly slice to prove the round trip.
  const rvasm::Program program = rvasm::assemble(kAxpyProgram);
  std::printf("assembled %zu words; first instructions:\n", program.words.size());
  for (u32 i = 0; i < 6; ++i)
    std::printf("  %08x: %s\n", program.base + i * 4,
                rv::disassemble_word(program.words[i]).c_str());

  // Prepare operands: x[i] = 0.5, y[i] = 1.0 in every fp16 lane.
  iss::Machine machine(tera::TeraPoolConfig::full(), iss::TimingConfig{}, 8);
  machine.load_program(program);
  const u16 half_05 = static_cast<u16>(sf::F16::from_double(0.5));
  const u16 one = static_cast<u16>(sf::F16::from_double(1.0));
  std::vector<u32> xs(8 * 16, sf::pack16(half_05, half_05));
  std::vector<u32> ys(8 * 16, sf::pack16(one, one));
  machine.memory().host_write_words(0x1000, xs);
  machine.memory().host_write_words(0x2000, ys);

  const auto result = machine.run();
  std::printf("\nrun: exited=%d instructions=%llu estimated cycles=%llu\n",
              result.exited, static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(machine.estimated_cycles()));

  // Every lane must now hold 3.0 * 0.5 + 1.0 = 2.5.
  const u32 expect = sf::pack16(static_cast<u16>(sf::F16::from_double(2.5)),
                                static_cast<u16>(sf::F16::from_double(2.5)));
  u32 mismatches = 0;
  for (u32 i = 0; i < 8 * 16; ++i)
    if (machine.memory().host_read_word(0x2000 + i * 4) != expect) ++mismatches;
  std::printf("axpy check: %u mismatching words (expect 0); y[0] = 0x%08x\n",
              mismatches, machine.memory().host_read_word(0x2000));
  return mismatches == 0 ? 0 : 1;
}
