// Error reporting conventions.
//
// terasim uses exceptions for unrecoverable misuse (per C++ Core Guidelines
// E.2): SimError carries a formatted message. Hot simulation paths never
// throw; guest-program faults are reported through trap states instead.
#pragma once

#include <stdexcept>
#include <string>

namespace tsim {

/// Exception thrown on simulator misuse or unrecoverable internal errors.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws SimError with `message` if `condition` is false.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw SimError(message);
}

}  // namespace tsim
