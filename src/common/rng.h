// Deterministic random number generation for reproducible Monte-Carlo runs.
//
// We use xoshiro256++ (public-domain algorithm by Blackman & Vigna) rather
// than std::mt19937 so that streams are cheap to split per-thread and the
// exact sequence is pinned by this repo, not by the standard library vendor.
#pragma once

#include <array>
#include <cmath>

#include "common/types.h"

namespace tsim {

/// xoshiro256++ deterministic PRNG with splittable sub-streams.
class Rng {
 public:
  /// Seeds the generator with SplitMix64 expansion of `seed`.
  explicit Rng(u64 seed = 0x5DEECE66Dull) {
    u64 x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  u64 next_u64() {
    const u64 result = rotl(state_[0] + state_[3], 23) + state_[0];
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n).
  u64 below(u64 n) { return next_u64() % n; }

  /// Single random bit.
  bool bit() { return (next_u64() >> 63) != 0; }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  /// Derive an independent sub-stream (e.g. one per thread / per symbol).
  /// NOTE: split() draws from this stream, so the derived stream depends on
  /// how many values were consumed before the call. For sub-streams that must
  /// be reproducible independent of generation order (out-of-order TTIs,
  /// per-shard cells), use the stateless keyed() derivation instead.
  Rng split(u64 stream_id) {
    return Rng(next_u64() ^ (0x9E3779B97F4A7C15ull * (stream_id + 1)));
  }

  /// Derives a seed fully determined by (seed, keys) - a pure hash, no draws
  /// involved. Two key lists differing in any position (or length) yield
  /// independent streams; the same list always yields the same stream.
  static u64 derive_seed(u64 seed, std::initializer_list<u64> keys) {
    u64 h = seed;
    for (const u64 k : keys) {
      // Inject the key, then run the SplitMix64 finalizer so every key
      // position diffuses through all 64 bits before the next one lands.
      h ^= k + 0x9E3779B97F4A7C15ull;
      h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
      h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
      h = h ^ (h >> 31);
    }
    return h;
  }

  /// Stateless keyed sub-stream: Rng(derive_seed(seed, keys)). The canonical
  /// derivation for reproducible simulation streams keyed by identity - e.g.
  /// (traffic seed, TTI, symbol, group) or (farm seed, cell, TTI) - so the
  /// same entity gets the same bits no matter which order (or host process)
  /// generates it.
  static Rng keyed(u64 seed, std::initializer_list<u64> keys) {
    return Rng(derive_seed(seed, keys));
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
};

}  // namespace tsim
