// Small string helpers used by the assembler, disassembler and reports.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace tsim {

/// Strips leading and trailing whitespace.
inline std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits `s` on any character in `seps`, dropping empty fields.
inline std::vector<std::string_view> split_any(std::string_view s, std::string_view seps) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// ASCII lowercase copy.
inline std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Formats seconds as "m:ss.mmm" for human-readable bench output.
inline std::string format_duration(double seconds) {
  const int minutes = static_cast<int>(seconds) / 60;
  const double rem = seconds - 60.0 * minutes;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%d:%06.3f", minutes, rem);
  return buf;
}

}  // namespace tsim
