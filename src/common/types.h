// Core scalar typedefs and small utilities shared by every terasim module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace tsim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Sign-extend the low `bits` bits of `value` to a full signed 32-bit integer.
constexpr i32 sign_extend(u32 value, unsigned bits) {
  const u32 mask = (bits >= 32) ? 0xFFFFFFFFu : ((1u << bits) - 1u);
  const u32 sign = 1u << (bits - 1);
  const u32 low = value & mask;
  return static_cast<i32>((low ^ sign) - sign);
}

/// Extract bit-field [lo, lo+len) from `value`.
constexpr u32 bits_of(u32 value, unsigned lo, unsigned len) {
  return (value >> lo) & ((len >= 32) ? 0xFFFFFFFFu : ((1u << len) - 1u));
}

/// True if `value` is a power of two (and nonzero).
constexpr bool is_pow2(u64 value) { return value != 0 && (value & (value - 1)) == 0; }

/// ceil(a / b) for positive integers.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// Round `value` up to the next multiple of `align` (align must be a power of two).
constexpr u64 align_up(u64 value, u64 align) { return (value + align - 1) & ~(align - 1); }

}  // namespace tsim
