#include "dse/pareto.h"

#include "common/error.h"
#include "common/strings.h"

namespace tsim::dse {

Objective parse_objective(const std::string& name) {
  if (name == "cores") return Objective::kCores;
  if (name == "latency") return Objective::kLatency;
  if (name == "ber") return Objective::kBer;
  if (name == "reloads") return Objective::kReloadCycles;
  throw SimError("unknown objective '" + name +
                 "' (expected cores, latency, ber, or reloads)");
}

std::vector<Objective> parse_objectives(const std::string& list) {
  std::vector<Objective> objectives;
  for (const std::string_view field : split_any(list, ", "))
    objectives.push_back(parse_objective(std::string(field)));
  check(!objectives.empty(), "parse_objectives: empty objective list");
  return objectives;
}

double objective_value(const PointMetrics& m, Objective o) {
  switch (o) {
    case Objective::kCores: return static_cast<double>(m.point.total_cores());
    case Objective::kLatency: return static_cast<double>(m.slot_cycles);
    case Objective::kBer: return m.dut_ber();
    case Objective::kReloadCycles: return static_cast<double>(m.reload_cycles);
  }
  throw SimError("objective_value: unknown objective");
}

bool dominates(const PointMetrics& a, const PointMetrics& b,
               const std::vector<Objective>& objectives) {
  bool strictly_better = false;
  for (const Objective o : objectives) {
    const double va = objective_value(a, o);
    const double vb = objective_value(b, o);
    if (va > vb) return false;
    if (va < vb) strictly_better = true;
  }
  return strictly_better;
}

std::vector<u32> pareto_front(const std::vector<PointMetrics>& points,
                              const std::vector<Objective>& objectives) {
  check(!objectives.empty(), "pareto_front: need at least one objective");
  std::vector<u32> front;
  for (u32 i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (u32 j = 0; j < points.size() && !dominated; ++j)
      dominated = j != i && dominates(points[j], points[i], objectives);
    if (!dominated) front.push_back(i);
  }
  return front;
}

namespace {

/// The single row schema behind the human table, the CSV, and the JSON
/// trajectory rows; dse_test and the CI dse-smoke validator pin its keys.
std::vector<std::string> schema_header() {
  return {"clusters", "cores_per_cluster", "total_cores", "precision",
          "problems_per_core", "policy", "batch_cores", "problems",
          "instructions", "slot_kcycles", "latency_us", "deadline_us",
          "margin_%", "met", "mbps", "dut_ber", "golden_ber", "reloads",
          "reload_%", "sim_MIPS", "wall_ms", "front"};
}

std::vector<std::string> point_row(const SweepResult& result, u32 index,
                                   bool on_front) {
  const PointMetrics& m = result.points[index];
  const double clock = result.config.clock_hz;
  return {
      sim::strf("%u", m.point.clusters),
      sim::strf("%u", m.point.cores_per_cluster),
      sim::strf("%u", m.point.total_cores()),
      std::string(kern::name_of(m.point.prec)),
      sim::strf("%u", m.point.problems_per_core),
      ran::policy_name(m.point.policy),
      sim::strf("%u", m.batch_cores),
      sim::strf("%llu", static_cast<unsigned long long>(m.problems)),
      sim::strf("%llu", static_cast<unsigned long long>(m.instructions)),
      sim::strf("%.0f", static_cast<double>(m.slot_cycles) / 1e3),
      sim::strf("%.1f", m.latency_seconds(clock) * 1e6),
      sim::strf("%.1f", m.deadline_seconds * 1e6),
      sim::strf("%+.1f", m.margin_fraction(clock) * 100.0),
      m.deadline_met(clock) ? "yes" : "NO",
      sim::strf("%.1f", m.throughput_mbps(clock)),
      sim::strf("%.3g", m.dut_ber()),
      sim::strf("%.3g", m.golden_ber()),
      sim::strf("%llu", static_cast<unsigned long long>(m.reloads)),
      sim::strf("%.2f", m.reload_fraction() * 100.0),
      sim::strf("%.1f", m.sim_mips()),
      sim::strf("%.1f", m.wall_seconds * 1e3),
      on_front ? "1" : "0",
  };
}

}  // namespace

sim::Table sweep_table(const SweepResult& result, const std::vector<u32>& front) {
  sim::Table table(schema_header());
  std::vector<bool> on_front(result.points.size(), false);
  for (const u32 i : front) {
    check(i < result.points.size(), "sweep_table: front index out of range");
    on_front[i] = true;
  }
  for (u32 i = 0; i < result.points.size(); ++i)
    table.add_row(point_row(result, i, on_front[i]));
  return table;
}

sim::Table front_table(const SweepResult& result, const std::vector<u32>& front) {
  sim::Table table(schema_header());
  for (const u32 i : front) {
    check(i < result.points.size(), "front_table: front index out of range");
    table.add_row(point_row(result, i, true));
  }
  return table;
}

}  // namespace tsim::dse
