// Pareto-front extraction over sweep results (pareto.{h,cpp}): the paper's
// exploration deliverable is not a single winner but the set of
// non-dominated (cost, quality) trade-offs - e.g. "1024 cores at 16 bit
// meet the deadline with BER x; 512 cores only at 8 bit with BER y".
//
// Objectives are configurable; every objective is minimized. A point
// dominates another when it is no worse in every objective and strictly
// better in at least one; the front is the set of non-dominated points,
// reported in enumeration order (deterministic).
#pragma once

#include <string>
#include <vector>

#include "dse/sweep.h"
#include "sim/report.h"

namespace tsim::dse {

/// Sweep metrics a front can optimize over. All are minimized; kCores is
/// the modeled hardware cost proxy, kLatency the worst-slot critical path,
/// kBer the DUT detection error rate, kReloadCycles the program-switch
/// overhead the assignment policy paid.
enum class Objective : u8 { kCores, kLatency, kBer, kReloadCycles };

constexpr const char* name_of(Objective o) {
  switch (o) {
    case Objective::kCores: return "cores";
    case Objective::kLatency: return "latency";
    case Objective::kBer: return "ber";
    case Objective::kReloadCycles: return "reloads";
  }
  return "?";
}

/// Parses "cores" / "latency" / "ber" / "reloads"; throws SimError otherwise.
Objective parse_objective(const std::string& name);

/// Parses a comma-separated objective list, e.g. "cores,latency,ber".
std::vector<Objective> parse_objectives(const std::string& list);

/// The default exploration trade-off: hardware cost vs worst-slot latency
/// vs detection quality.
inline std::vector<Objective> default_objectives() {
  return {Objective::kCores, Objective::kLatency, Objective::kBer};
}

/// The (minimized) value of `m` under one objective.
double objective_value(const PointMetrics& m, Objective o);

/// True when `a` dominates `b` under `objectives` (no worse everywhere,
/// strictly better somewhere).
bool dominates(const PointMetrics& a, const PointMetrics& b,
               const std::vector<Objective>& objectives);

/// Indices (into `points`, ascending) of the non-dominated set.
std::vector<u32> pareto_front(const std::vector<PointMetrics>& points,
                              const std::vector<Objective>& objectives);

/// One row per evaluated point - axes, metrics, and a `front` marker column
/// ("1" = on the front) - in enumeration order. This is the single schema
/// behind the human table, the CSV, and the JSON trajectory rows
/// (BENCH_dse_pareto.json); dse_test pins its keys.
sim::Table sweep_table(const SweepResult& result, const std::vector<u32>& front);

/// The front rows only (same columns), for compact reporting.
sim::Table front_table(const SweepResult& result, const std::vector<u32>& front);

}  // namespace tsim::dse
