// Design-space description for the paper's exploration use case (Sec. V-C):
// candidate many-core transceiver configurations swept against the TTI
// deadline before committing to RTL. A DesignSpace lists the axes
//
//   clusters          parallel emulated TeraPool clusters in the pool
//   cores_per_cluster cluster size (topology scaled from the tiny shape,
//                     shared L1 scales with the tile count)
//   precision         MMSE arithmetic variant (kernels/precision.h)
//   problems_per_core subcarrier problems batched per Snitch core
//   policy            batch-to-cluster assignment (ran/scheduler.h)
//
// and enumerate() expands their cartesian product - or an explicitly listed
// set of points - in a fixed axis-major order, so sweep results and Pareto
// fronts are reproducible row-for-row across runs and host thread counts.
#pragma once

#include <string>
#include <vector>

#include "common/error.h"
#include "kernels/precision.h"
#include "ran/scheduler.h"
#include "sim/report.h"
#include "tera/config.h"

namespace tsim::dse {

/// One candidate transceiver configuration (a point of the design space).
struct DesignPoint {
  u32 clusters = 1;
  u32 cores_per_cluster = 16;
  kern::Precision prec = kern::Precision::k16CDotp;
  u32 problems_per_core = 1;
  ran::AssignPolicy policy = ran::AssignPolicy::kLocality;

  /// Modeled hardware cost proxy: total Snitch cores across the pool.
  u32 total_cores() const { return clusters * cores_per_cluster; }

  std::string label() const {
    return sim::strf("%ux%u/%s/ppc%u/%s", clusters, cores_per_cluster,
                     std::string(kern::name_of(prec)).c_str(), problems_per_core,
                     ran::policy_name(policy));
  }

  bool operator==(const DesignPoint&) const = default;
};

/// A TeraPool-shaped cluster with exactly `cores` Snitch cores: the tiny
/// tile shape (2 cores + 16 KiB L1 slice + 4 banks per tile) replicated via
/// the group count, so shared L1 capacity scales linearly with the core
/// count just as in the real TeraPool family. `cores` must be a positive
/// multiple of 8 (one group of the tiny shape).
inline tera::TeraPoolConfig cluster_for_cores(u32 cores) {
  check(cores >= 8 && cores % 8 == 0,
        "cluster_for_cores: core count must be a positive multiple of 8");
  tera::TeraPoolConfig c = tera::TeraPoolConfig::tiny();
  c.groups = cores / (c.cores_per_tile * c.tiles_per_subgroup * c.subgroups_per_group);
  c.validate();
  check(c.num_cores() == cores, "cluster_for_cores: topology does not close");
  return c;
}

/// The axes of one sweep. `listed`, when non-empty, bypasses the cartesian
/// product and evaluates exactly those points (the paper's "explore a
/// handful of candidate RTL design points" mode).
struct DesignSpace {
  std::vector<u32> clusters = {1, 2};
  std::vector<u32> cores_per_cluster = {16};
  std::vector<kern::Precision> precisions = {kern::Precision::k16Half,
                                             kern::Precision::k16CDotp,
                                             kern::Precision::k8WDotp};
  std::vector<u32> problems_per_core = {1, 4};
  std::vector<ran::AssignPolicy> policies = {ran::AssignPolicy::kLocality};
  std::vector<DesignPoint> listed;

  void validate() const {
    if (!listed.empty()) return;
    check(!clusters.empty() && !cores_per_cluster.empty() && !precisions.empty() &&
              !problems_per_core.empty() && !policies.empty(),
          "DesignSpace: every cartesian axis needs at least one value");
  }

  /// All points in deterministic axis-major order (clusters outermost,
  /// policy innermost), or `listed` verbatim.
  std::vector<DesignPoint> enumerate() const {
    validate();
    if (!listed.empty()) return listed;
    std::vector<DesignPoint> points;
    points.reserve(clusters.size() * cores_per_cluster.size() * precisions.size() *
                   problems_per_core.size() * policies.size());
    for (const u32 nc : clusters)
      for (const u32 cores : cores_per_cluster)
        for (const kern::Precision prec : precisions)
          for (const u32 ppc : problems_per_core)
            for (const ran::AssignPolicy policy : policies)
              points.push_back(DesignPoint{nc, cores, prec, ppc, policy});
    return points;
  }
};

}  // namespace tsim::dse
