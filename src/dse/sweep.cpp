#include "dse/sweep.h"

#include <chrono>
#include <map>
#include <memory>

#include "phy/mmse.h"
#include "phy/qam.h"
#include "ran/deadline.h"
#include "ran/scheduler.h"

namespace tsim::dse {

u64 golden_slot_errors(const ran::SlotWorkload& slot,
                       const std::vector<ran::UeGroup>& groups) {
  u64 errors = 0;
  for (const ran::Allocation& alloc : slot.allocations) {
    check(alloc.group < groups.size(),
          "golden_slot_errors: allocation references an unknown UE group");
    const phy::QamModulator qam(groups[alloc.group].qam_order);
    const u32 bits_per_problem =
        groups[alloc.group].ntx * qam.bits_per_symbol();
    for (u32 p = 0; p < alloc.num_problems(); ++p) {
      const sim::MimoProblem& problem = alloc.batch.problems[p];
      const auto xhat = phy::mmse_detect(problem.h, problem.y, problem.sigma2);
      const auto rx_bits = qam.demap_sequence(xhat);
      const size_t base = static_cast<size_t>(p) * bits_per_problem;
      for (u32 b = 0; b < bits_per_problem; ++b)
        errors += (rx_bits[b] != alloc.batch.tx_bits[base + b]) ? 1 : 0;
    }
  }
  return errors;
}

SweepResult run_sweep(const DesignSpace& space, const SweepConfig& cfg) {
  cfg.traffic.validate();
  check(cfg.ttis >= 1, "run_sweep: need at least one TTI per point");
  check(cfg.clock_hz > 0.0, "run_sweep: clock must be positive");
  const std::vector<DesignPoint> points = space.enumerate();
  check(!points.empty(), "run_sweep: the design space is empty");

  SweepResult result;
  result.config = cfg;

  // The workload is a property of the traffic config alone, so every point
  // sees the identical slots: generate them (and the golden reference, which
  // is also point-independent) once up front.
  ran::TrafficGenerator gen(cfg.traffic);
  std::vector<ran::SlotWorkload> slots;
  slots.reserve(cfg.ttis);
  u64 golden_errors = 0;
  for (u32 t = 0; t < cfg.ttis; ++t) {
    slots.push_back(gen.next_slot());
    if (cfg.golden_ber)
      golden_errors += golden_slot_errors(slots.back(), cfg.traffic.groups);
  }

  // Warm-start cache: first sibling per warm_key pays for program builds,
  // translation and (under the locality policy) calibration; the rest adopt
  // that state. An uncalibrated entry is upgraded in place the first time a
  // calibrated sibling (locality policy, multi-cluster) is evaluated.
  std::map<u64, ran::SlotScheduler::WarmState> warm_cache;

  for (const DesignPoint& point : points) {
    ran::ClusterPoolConfig pool;
    pool.num_clusters = point.clusters;
    pool.host_threads = cfg.host_threads;
    pool.threads_per_cluster = cfg.threads_per_cluster;
    pool.prec = point.prec;
    pool.problems_per_core = point.problems_per_core;
    pool.policy = point.policy;

    PointMetrics m;
    m.point = point;
    m.deadline_seconds = cfg.traffic.carrier.numerology.slot_seconds();
    m.golden_errors = golden_errors;

    // Infeasibility is a *construction-time* property: the topology check
    // and the per-geometry layout/L1-fit validation both throw from here.
    // Failures while processing slots are genuine simulator errors and
    // propagate - a sweep must not record a deadlocked run as "infeasible".
    std::unique_ptr<ran::SlotScheduler> sched;
    try {
      pool.cluster = cluster_for_cores(point.cores_per_cluster);
      const ran::SlotScheduler::WarmState* warm = nullptr;
      u64 key = 0;
      if (cfg.warm_start) {
        key = ran::SlotScheduler::warm_key(pool, cfg.traffic.groups);
        const auto it = warm_cache.find(key);
        if (it != warm_cache.end()) warm = &it->second;
      }
      sched = std::make_unique<ran::SlotScheduler>(pool, cfg.traffic.groups,
                                                   warm);
      if (cfg.warm_start) {
        const auto it = warm_cache.find(key);
        if (it == warm_cache.end()) {
          warm_cache.emplace(key, sched->export_warm_state());
        } else if (!it->second.calibrated) {
          ran::SlotScheduler::WarmState ws = sched->export_warm_state();
          if (ws.calibrated) it->second = std::move(ws);
        }
      }
    } catch (const SimError& e) {
      result.skipped.push_back(SkippedPoint{point, e.what()});
      continue;
    }
    // All geometries share one hart count (see the SlotScheduler
    // constructor), so group 0's layout is representative. The stopwatch
    // starts after construction: calibration instructions are not counted,
    // so they must not sit in the sim-MIPS denominator either.
    m.batch_cores = sched->layout_for_group(0).num_cores;
    const auto wall_start = std::chrono::steady_clock::now();
    for (const ran::SlotWorkload& slot : slots) {
      const ran::SlotResult res = sched->run_slot(slot);
      m.problems += res.problems;
      m.bits += res.bits;
      m.errors += res.errors;
      m.instructions += res.total_instructions;
      m.reloads += res.total_reloads;
      m.reload_cycles += res.total_reload_cycles;
      for (const u64 busy : res.cluster_busy_cycles) m.busy_cycles += busy;
      // Worst slot and its own payload (ties keep the earliest slot, so
      // the throughput column stays deterministic).
      if (res.slot_cycles > m.slot_cycles) {
        m.slot_cycles = res.slot_cycles;
        m.worst_slot_bits = res.bits;
      }
    }
    m.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    result.points.push_back(std::move(m));
  }
  return result;
}

}  // namespace tsim::dse
