// Sweep engine: evaluates every point of a DesignSpace end-to-end through
// the existing stack - ran::TrafficGenerator slot generation ->
// ran::SlotScheduler batch dispatch on emulated iss::Machine clusters ->
// deadline accounting - and records per-point metrics for Pareto extraction
// (pareto.h).
//
// Determinism: the traffic workload depends only on TrafficConfig::seed, and
// every SlotScheduler metric (cycles, reloads, detections, instructions) is
// deterministic regardless of SweepConfig::host_threads (see scheduler.h).
// The only nondeterministic fields of PointMetrics are wall_seconds and the
// simulated-MIPS rate derived from it; everything else is bit-stable across
// runs and host thread counts, which dse_test pins.
#pragma once

#include <string>
#include <vector>

#include "dse/space.h"
#include "phy/ofdm.h"
#include "ran/traffic.h"

namespace tsim::dse {

/// Workload and evaluation parameters shared by every point of one sweep.
struct SweepConfig {
  ran::TrafficConfig traffic;   // carrier, UE groups, arrivals, seed
  u32 ttis = 1;                 // slots evaluated per point
  double clock_hz = 1e9;        // assumed DUT clock for latency conversion
  u32 host_threads = 1;         // scheduler pool threads (host-side only)
  u32 threads_per_cluster = 1;  // Machine::run_threads shards within a batch
  bool golden_ber = true;       // also run the double-precision reference
  /// Reuse warmed-up scheduler state across sibling points. Points sharing a
  /// SlotScheduler::warm_key (cluster shape, latencies, precision,
  /// problems/core, UE-group geometry) hand the first sibling's translated
  /// kernel programs and locality calibration to the rest instead of
  /// rebuilding and re-measuring them per point. Construction-only shortcut:
  /// every PointMetrics field except wall_seconds stays bit-identical to a
  /// cold sweep (pinned by fastforward_test).
  bool warm_start = false;
};

/// Everything measured for one feasible design point. Counters aggregate
/// over all swept TTIs; deadline fields report the *worst* slot, since the
/// paper's real-time question is "does every TTI fit in 0.5 ms".
struct PointMetrics {
  DesignPoint point;
  u32 batch_cores = 0;        // cores per batch after the L1 fit (common
                              // across all geometries, see SlotScheduler)
  u64 problems = 0;           // subcarrier detections over all TTIs
  u64 bits = 0;               // payload bits over all TTIs
  u64 errors = 0;             // DUT hard-decision bit errors
  u64 golden_errors = 0;      // golden-model bit errors on the same slots
  u64 instructions = 0;       // retired DUT instructions over all TTIs
  u64 slot_cycles = 0;        // worst per-TTI critical path (DUT cycles)
  u64 worst_slot_bits = 0;    // payload bits of the slot that set slot_cycles
  u64 reloads = 0;            // program switches over all TTIs
  u64 reload_cycles = 0;      // modeled DMA cycles of those switches
  u64 busy_cycles = 0;        // total cluster busy cycles over all TTIs
  double deadline_seconds = 0.0;
  double wall_seconds = 0.0;  // host time for the point (nondeterministic)

  double latency_seconds(double clock_hz) const {
    return static_cast<double>(slot_cycles) / clock_hz;
  }
  bool deadline_met(double clock_hz) const {
    return latency_seconds(clock_hz) <= deadline_seconds;
  }
  /// Positive = headroom of the worst slot, negative = overrun.
  double margin_fraction(double clock_hz) const {
    return (deadline_seconds - latency_seconds(clock_hz)) / deadline_seconds;
  }
  double dut_ber() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors) / static_cast<double>(bits);
  }
  double golden_ber() const {
    return bits == 0 ? 0.0
                     : static_cast<double>(golden_errors) / static_cast<double>(bits);
  }
  double reload_fraction() const {
    return busy_cycles == 0 ? 0.0
                            : static_cast<double>(reload_cycles) /
                                  static_cast<double>(busy_cycles);
  }
  /// Processed throughput of the worst slot: its own payload bits over its
  /// own latency (not an average across slots).
  double throughput_mbps(double clock_hz) const {
    const double lat = latency_seconds(clock_hz);
    return lat <= 0.0 ? 0.0 : static_cast<double>(worst_slot_bits) / lat / 1e6;
  }
  /// Host-side emulation rate (nondeterministic; 0 when wall time is 0).
  double sim_mips() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(instructions) / wall_seconds / 1e6;
  }
};

/// A point the sweep could not evaluate (e.g. the batch layout overflows the
/// cluster's L1 at that precision/problems-per-core), with the reason.
struct SkippedPoint {
  DesignPoint point;
  std::string reason;
};

struct SweepResult {
  SweepConfig config;
  std::vector<PointMetrics> points;   // feasible points, enumeration order
  std::vector<SkippedPoint> skipped;  // infeasible points, enumeration order
};

/// Evaluates every point of `space` on the workload described by `cfg`.
/// Infeasible points land in SweepResult::skipped instead of aborting the
/// sweep. Throws SimError only for configuration errors that invalidate the
/// whole sweep (bad traffic config, empty space).
SweepResult run_sweep(const DesignSpace& space, const SweepConfig& cfg);

/// Golden-model reference: double-precision MMSE detection of every problem
/// in `slot`, hard-decision bit errors vs the transmitted bits.
u64 golden_slot_errors(const ran::SlotWorkload& slot,
                       const std::vector<ran::UeGroup>& groups);

}  // namespace tsim::dse
