// Per-hart execution state of the fast ISS, laid out as structure-of-arrays.
//
// The hot per-hart quantities - pc, cycle, instret, the 32-entry RAW
// scoreboard, stall counters, wake timestamp, instruction-mix histogram -
// live in machine-owned parallel arrays indexed by hart id (`HartArrays`).
// This is the SIMD-lane layout: the convergence-batch follower sweep in
// machine.cpp iterates lane-major over these columns, so the per-member
// scoreboard/retire arithmetic of one SbEntry is a handful of unit-stride
// loops over u64 columns that auto-vectorize, instead of strided loads from
// per-hart structs.
//
// Two views exist over the arrays:
//  - `HartLane` is a thin mutable per-lane view with rv::HartState's field
//    names; rv::execute runs against it directly, so instruction semantics
//    stay single-source (rv/exec_inl.h) and the serial oracle path executes
//    byte-for-byte the same state transitions as before the layout change.
//  - `Hart` is a value snapshot assembled on demand (Machine::hart()) for
//    tests, benches, and reporting; it carries the pre-SoA shape.
//
// The architectural register file stays AoS (one 32-word block per lane,
// in `HartArrays::Arch` next to the rarely-written flags): rv semantics
// read/write 2-3 registers of ONE lane per instruction, so per-lane
// contiguity - not column contiguity - is what keeps pass B of the sweep
// inside a couple of cache lines.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "rv/hart_state.h"

namespace tsim::iss {

constexpr size_t kMixCount = 10;  // matches rv::Mix enumerators

/// Value snapshot of one hart (see Machine::hart()).
struct Hart {
  rv::HartState state;

  // RAW scoreboard: cycle at which each register's pending result lands.
  std::array<u64, 32> ready{};

  // Timing statistics.
  u64 raw_stall_cycles = 0;  // cycles lost waiting on busy source registers
  u64 wfi_stall_cycles = 0;  // cycles asleep at barriers
  u64 wake_cycle = 0;        // set by the waking hart; consumed on resume

  // Instruction mix histogram (Fig. 8 companion / Fig. 7 instruction count).
  std::array<u64, kMixCount> mix{};

  u64 instructions() const { return state.instret; }
  u64 cycles() const { return state.cycle; }
};

/// Mutable per-lane view over a HartArrays: the serial oracle path, the
/// trace hook path, and the generic member sweep execute rv semantics
/// through this. Field names mirror rv::HartState so rv::execute<> works on
/// either (the State template parameter of rv::execute_impl).
struct HartLane {
  u32* x;  // this lane's 32-entry register file block
  u32& pc;
  u32 hartid;
  u64& cycle;
  u64& instret;
  bool& halted;
  bool& in_wfi;
  bool& trapped;
  bool& has_reservation;
  u32& reservation_addr;

  u32 read_reg(u8 i) const { return x[i & 31]; }
  void write_reg(u8 i, u32 v) {
    if ((i & 31) != 0) x[i & 31] = v;
  }
};

/// Machine-owned structure-of-arrays hart state, indexed by hart id.
struct HartArrays {
  // Hot timing columns. The follower sweep's vector passes read/write these
  // as flat unit-stride arrays when the batch members are consecutive ids.
  std::vector<u32> pc;
  std::vector<u64> cycle;
  std::vector<u64> instret;
  std::vector<u64> raw_stall;   // cycles lost to RAW hazards
  std::vector<u64> wfi_stall;   // cycles asleep at barriers
  std::vector<u64> wake_cycle;  // waker timestamp, consumed on resume

  // RAW scoreboard, register-major: ready[r * stride + i] is the cycle at
  // which lane i's register r becomes available. Register-major because one
  // sweep reads the SAME 2-4 registers for every member - each pass touches
  // a few contiguous column windows instead of 32-entry per-hart blocks.
  // The column stride is padded by one cache line over the lane count: at
  // power-of-two lane counts an exact-n stride puts column pairs at the
  // same offset modulo 4K, and the sweep's store-to-one-column /
  // load-from-another pattern then stalls on false 4K-aliasing
  // dependencies.
  std::vector<u64> ready;
  // Instruction-mix histogram, class-major (same reasoning: one sweep
  // increments the same class for every member).
  std::vector<u64> mix;

  /// Per-lane architectural block: the register file plus the flags the
  /// vector passes never touch. AoS by design (see header note).
  struct Arch {
    std::array<u32, 32> x{};
    bool halted = false;
    bool in_wfi = false;
    bool trapped = false;
    bool has_reservation = false;
    u32 reservation_addr = 0;
  };
  std::vector<Arch> arch;

  explicit HartArrays(u32 n = 0) { resize(n); }

  u32 size() const { return n_; }

  void resize(u32 n) {
    n_ = n;
    stride_ = n + 8;  // +1 cache line of u64s; keeps columns 64B-aligned
    pc.assign(n, 0);
    cycle.assign(n, 0);
    instret.assign(n, 0);
    raw_stall.assign(n, 0);
    wfi_stall.assign(n, 0);
    wake_cycle.assign(n, 0);
    ready.assign(static_cast<size_t>(32) * stride_, 0);
    mix.assign(kMixCount * stride_, 0);
    arch.assign(n, Arch{});
  }

  /// Re-arms every lane at `entry_pc` with cleared state (reset_harts).
  void reset(u32 entry_pc) {
    std::fill(pc.begin(), pc.end(), entry_pc);
    std::fill(cycle.begin(), cycle.end(), 0u);
    std::fill(instret.begin(), instret.end(), 0u);
    std::fill(raw_stall.begin(), raw_stall.end(), 0u);
    std::fill(wfi_stall.begin(), wfi_stall.end(), 0u);
    std::fill(wake_cycle.begin(), wake_cycle.end(), 0u);
    std::fill(ready.begin(), ready.end(), 0u);
    std::fill(mix.begin(), mix.end(), 0u);
    std::fill(arch.begin(), arch.end(), Arch{});
  }

  /// Scoreboard column of register `r` (ready_col(r)[i] = lane i's entry).
  u64* ready_col(u32 r) { return ready.data() + static_cast<size_t>(r) * stride_; }
  const u64* ready_col(u32 r) const {
    return ready.data() + static_cast<size_t>(r) * stride_;
  }
  /// Mix-histogram column of instruction class `c`.
  u64* mix_col(u32 c) { return mix.data() + static_cast<size_t>(c) * stride_; }
  const u64* mix_col(u32 c) const {
    return mix.data() + static_cast<size_t>(c) * stride_;
  }

  /// Mutable view of lane `i` (references stay valid until resize()).
  HartLane lane(u32 i) {
    Arch& a = arch[i];
    return HartLane{a.x.data(),  pc[i],    i,         cycle[i],
                    instret[i],  a.halted, a.in_wfi,  a.trapped,
                    a.has_reservation,     a.reservation_addr};
  }

  /// Value snapshot of lane `i` in the pre-SoA shape.
  Hart snapshot(u32 i) const {
    Hart out;
    const Arch& a = arch[i];
    out.state.x = a.x;
    out.state.pc = pc[i];
    out.state.hartid = i;
    out.state.cycle = cycle[i];
    out.state.instret = instret[i];
    out.state.halted = a.halted;
    out.state.in_wfi = a.in_wfi;
    out.state.trapped = a.trapped;
    out.state.has_reservation = a.has_reservation;
    out.state.reservation_addr = a.reservation_addr;
    for (u32 r = 0; r < 32; ++r) out.ready[r] = ready_col(r)[i];
    out.raw_stall_cycles = raw_stall[i];
    out.wfi_stall_cycles = wfi_stall[i];
    out.wake_cycle = wake_cycle[i];
    for (u32 c = 0; c < kMixCount; ++c) out.mix[c] = mix_col(c)[i];
    return out;
  }

 private:
  u32 n_ = 0;
  u32 stride_ = 8;  // column stride of `ready`/`mix` (see layout note)
};

}  // namespace tsim::iss
