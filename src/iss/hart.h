// One emulated hart of the fast ISS: architectural state + the static
// timing scoreboard and per-class instruction statistics.
#pragma once

#include <array>

#include "rv/hart_state.h"
#include "rv/inst.h"

namespace tsim::iss {

constexpr size_t kMixCount = 10;  // matches rv::Mix enumerators

struct Hart {
  rv::HartState state;

  // RAW scoreboard: cycle at which each register's pending result lands.
  std::array<u64, 32> ready{};

  // Timing statistics.
  u64 raw_stall_cycles = 0;  // cycles lost waiting on busy source registers
  u64 wfi_stall_cycles = 0;  // cycles asleep at barriers
  u64 wake_cycle = 0;        // set by the waking hart; consumed on resume

  // Instruction mix histogram (Fig. 8 companion / Fig. 7 instruction count).
  std::array<u64, kMixCount> mix{};

  u64 instructions() const { return state.instret; }
  u64 cycles() const { return state.cycle; }

  void reset(u32 hartid, u32 pc) {
    state = rv::HartState{};
    state.hartid = hartid;
    state.pc = pc;
    ready.fill(0);
    raw_stall_cycles = 0;
    wfi_stall_cycles = 0;
    wake_cycle = 0;
    mix.fill(0);
  }
};

}  // namespace tsim::iss
