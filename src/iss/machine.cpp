#include "iss/machine.h"

#include <algorithm>
#include <thread>

#include "rv/exec.h"

namespace tsim::iss {
namespace {

constexpr u32 kQuantum = 256;  // instructions per hart per scheduler turn

// Consecutive idle observations of the all-parked condition a run_threads
// worker requires before declaring deadlock. The triple-read snapshot in
// the worker loop is already sound on its own (see the comment there); the
// confirmation margin is belt-and-braces against future protocol edits.
constexpr u32 kIdleConfirm = 64;

/// Cycle of the instruction currently executing on this host thread; read
/// by the MMIO wake handler to timestamp barrier releases. Thread-local so
/// concurrent shards never share a cache line. Only stores can reach the
/// wake register, so the fast path refreshes it on store-class instructions
/// only (the traced reference path refreshes it every instruction, matching
/// the historical behaviour; both are observationally identical).
thread_local u64 t_current_cycle = 0;

/// Placeholder translation table for a machine that has no program loaded
/// yet: every lookup misses, so a premature run() halts the harts exactly
/// like the pre-cache implementation did.
const TranslationCache& empty_translation() {
  static const TranslationCache empty;
  return empty;
}

/// Scoreboard: earliest cycle the instruction can issue, charging RAW
/// stalls to the hart.
inline u64 compute_issue(Hart& h, const SbEntry& e, bool scoreboard) {
  u64 issue = h.state.cycle;
  if (scoreboard) {
    u64 ready = std::max(h.ready[e.d.rs1], h.ready[e.d.rs2]);
    if (e.flags & kSbReadsRs3) ready = std::max(ready, h.ready[e.d.rs3]);
    if (e.flags & kSbReadsRdSrc) ready = std::max(ready, h.ready[e.d.rd]);
    if (ready > issue) {
      h.raw_stall_cycles += ready - issue;
      issue = ready;
    }
  }
  return issue;
}

/// Static-latency accounting for one retired instruction: advances the hart
/// clock and marks the destination busy until its result latency elapses.
inline void retire_timing(Hart& h, const SbEntry& e, const rv::StepInfo& info,
                          u64 issue, const TimingConfig& timing,
                          const tera::TeraPoolConfig& cluster,
                          const tera::ClusterMemory& mem) {
  auto& st = h.state;
  st.cycle = issue + e.issue_cycles;
  if (info.branch_taken) st.cycle += timing.branch_taken_penalty;

  u64 result_at = issue + e.result_latency;
  if (info.is_load || info.is_amo) {
    u32 mem_lat;
    if (info.mem_addr >= tera::kL2Base) {
      mem_lat = timing.l2_latency;
    } else if (info.mem_addr >= tera::kMmioBase) {
      mem_lat = 1;
    } else if (timing.numa_latency) {
      const auto route = mem.map().route(info.mem_addr);
      const u32 tile = route ? route->tile : 0;
      mem_lat = cluster.numa_latency(st.hartid, tile);
    } else {
      mem_lat = timing.static_mem_latency;
    }
    result_at += mem_lat;
  }
  if ((e.flags & kSbWritesRd) && e.d.rd != 0) h.ready[e.d.rd] = result_at;
  if ((e.flags & kSbPostIncLoad) && e.d.rs1 != 0) h.ready[e.d.rs1] = issue + 1;
}

}  // namespace

Machine::Machine(const tera::TeraPoolConfig& cluster, TimingConfig timing, u32 active_harts)
    : cluster_(cluster),
      timing_(timing),
      mem_(std::make_unique<tera::ClusterMemory>(cluster)),
      tcache_(&empty_translation()),
      harts_(active_harts == 0 ? cluster.num_cores() : active_harts),
      sleep_(harts_.size()) {
  mem_->set_exit_handler([this](u32 code) { on_exit(code); });
  mem_->set_wake_handler([this](u32 target) { on_wake(target, t_current_cycle); });
  for (auto& s : sleep_) s.store(0, std::memory_order_relaxed);
}

Machine::ProgramHandle Machine::load_program(const rvasm::Program& prog) {
  const u64 key = program_fingerprint(prog);
  const u32 entry = program_entry_pc(prog);
  for (ProgramHandle h = 0; h < resident_.size(); ++h) {
    const ResidentProgram& r = *resident_[h];
    if (r.key == key && r.base == prog.base && r.entry_pc == entry &&
        r.image == prog.words) {
      select_program(h);  // cache hit: no retranslation
      return h;
    }
  }
  auto r = std::make_unique<ResidentProgram>();
  r->key = key;
  r->base = prog.base;
  r->image = prog.words;
  r->tcache = TranslationCache(prog);
  r->entry_pc = entry;
  resident_.push_back(std::move(r));
  const ProgramHandle h = static_cast<ProgramHandle>(resident_.size() - 1);
  select_program(h);
  return h;
}

void Machine::select_program(ProgramHandle handle) {
  check(handle < resident_.size(), "select_program: unknown program handle");
  if (handle != active_) {
    const ResidentProgram& r = *resident_[handle];
    mem_->load_program(r.base, r.image);
    tcache_ = &r.tcache;
    entry_pc_ = r.entry_pc;
    active_ = handle;
    ++program_switches_;
  }
  reset_harts();
}

void Machine::reset_harts() {
  for (u32 i = 0; i < harts_.size(); ++i) harts_[i].reset(i, entry_pc_);
  for (auto& s : sleep_) s.store(static_cast<u8>(SleepState::kAwake), std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  exited_.store(false, std::memory_order_relaxed);
  exit_code_.store(0, std::memory_order_relaxed);
}

void Machine::on_exit(u32 code) {
  exit_code_.store(code, std::memory_order_relaxed);
  exited_.store(true, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_release);
}

void Machine::on_wake(u32 target, u64 waker_cycle) {
  const auto wake_one = [&](u32 i) {
    if (i >= harts_.size()) return;
    harts_[i].wake_cycle = waker_cycle;
    auto& s = sleep_[i];
    u8 expected = static_cast<u8>(SleepState::kSleeping);
    if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kAwake))) {
      // The hart was parked: hand it back to its scheduler's run list.
      if (st_mode_) {
        // Same host thread (wakes only happen inside a store instruction):
        // insert in sorted position. Adjusting st_pos_ when the insertion
        // lands at or before it reproduces the scan-all-harts visit order
        // exactly: a hart woken "behind" the scan runs next pass, a hart
        // woken "ahead" still runs this pass.
        const auto it = std::lower_bound(st_awake_.begin(), st_awake_.end(), i);
        const size_t idx = static_cast<size_t>(it - st_awake_.begin());
        st_awake_.insert(it, i);
        if (idx <= st_pos_) ++st_pos_;
      } else if (mt_mode_) {
        pending_wakes_.fetch_add(1, std::memory_order_release);
        WakeInbox& box = inboxes_[i / shard_size_];
        const std::lock_guard<std::mutex> lock(box.m);
        box.ids.push_back(i);
        box.count.fetch_add(1, std::memory_order_release);
      }
      return;
    }
    expected = static_cast<u8>(SleepState::kAwake);
    s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kWakePending));
  };
  if (target == ~0u) {
    for (u32 i = 0; i < harts_.size(); ++i) wake_one(i);
  } else {
    wake_one(target);
  }
}

bool Machine::park_in_wfi(u32 hart_index) {
  Hart& h = harts_[hart_index];
  auto& s = sleep_[hart_index];
  u8 expected = static_cast<u8>(SleepState::kWakePending);
  if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kAwake))) {
    // A wake arrived between barrier arrival and wfi: consume it and keep going.
    resume_from_wfi(hart_index);
    return false;
  }
  expected = static_cast<u8>(SleepState::kAwake);
  if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kSleeping))) {
    return true;  // now asleep; the scheduler resumes us after a wake
  }
  // A wake raced in during the transition: consume it.
  s.store(static_cast<u8>(SleepState::kAwake), std::memory_order_relaxed);
  h.state.in_wfi = false;
  return false;
}

void Machine::resume_from_wfi(u32 hart_index) {
  Hart& h = harts_[hart_index];
  h.state.in_wfi = false;
  const u64 resume = h.wake_cycle + timing_.barrier_wake_cost;
  if (resume > h.state.cycle) {
    h.wfi_stall_cycles += resume - h.state.cycle;
    h.state.cycle = resume;
  }
}

u64 Machine::exec_quantum(u32 hart_index, u64 budget, TurnEnd& end) {
  Hart& h = harts_[hart_index];
  auto& st = h.state;
  const bool scoreboard = timing_.scoreboard;
  u64 executed = 0;
  end = TurnEnd::kBudget;
  while (budget != 0) {
    const SbEntry* e = tcache_->entry(st.pc);
    if (e == nullptr || e->d.op == rv::Op::kInvalid) {
      st.halted = true;
      st.trapped = true;
      end = TurnEnd::kHalted;
      return executed;
    }
    // Retire the whole straight-line run: only its last instruction can
    // branch or enter wfi, so pc tracks the entry pointer implicitly. Any
    // instruction may still fault, which shows up as st.halted.
    const u32 n = static_cast<u32>(std::min<u64>(e->run_len, budget));
    budget -= n;
    for (u32 k = 0; k < n; ++k, ++e) {
      const u64 issue = compute_issue(h, *e, scoreboard);
      st.cycle = issue;
      if (e->flags & kSbStore) t_current_cycle = issue;
      const rv::StepInfo info = rv::execute(e->d, st, *mem_);
      h.mix[e->mix]++;
      retire_timing(h, *e, info, issue, timing_, cluster_, *mem_);
      ++executed;
      if (st.halted) {
        end = TurnEnd::kHalted;
        return executed;
      }
      if (stop_.load(std::memory_order_relaxed)) {
        end = TurnEnd::kStopped;
        return executed;
      }
    }
    if (st.in_wfi && park_in_wfi(hart_index)) {
      end = TurnEnd::kAsleep;
      return executed;
    }
  }
  return executed;
}

u64 Machine::exec_quantum_traced(u32 hart_index, u64 budget, TurnEnd& end) {
  Hart& h = harts_[hart_index];
  auto& st = h.state;
  u64 executed = 0;
  end = TurnEnd::kBudget;
  while (budget != 0) {
    const SbEntry* e = tcache_->entry(st.pc);
    if (e == nullptr || e->d.op == rv::Op::kInvalid) {
      st.halted = true;
      st.trapped = true;
      end = TurnEnd::kHalted;
      return executed;
    }
    const u64 issue = compute_issue(h, *e, timing_.scoreboard);
    st.cycle = issue;
    t_current_cycle = issue;
    if (trace_) trace_(hart_index, st.pc, e->d);
    const rv::StepInfo info = rv::execute(e->d, st, *mem_);
    h.mix[e->mix]++;
    retire_timing(h, *e, info, issue, timing_, cluster_, *mem_);
    ++executed;
    --budget;
    if (st.halted) {
      end = TurnEnd::kHalted;
      return executed;
    }
    if (st.in_wfi && park_in_wfi(hart_index)) {
      end = TurnEnd::kAsleep;
      return executed;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      end = TurnEnd::kStopped;
      return executed;
    }
  }
  return executed;
}

RunResult Machine::run(u64 max_instructions) {
  RunResult res;
  u64 executed = 0;

  // Build the awake run list once; after this the scheduler never loads a
  // sleep state - on_wake (same host thread) re-inserts woken harts.
  st_awake_.clear();
  for (u32 i = 0; i < num_harts(); ++i) {
    if (harts_[i].state.halted) continue;
    if (sleep_[i].load(std::memory_order_relaxed) ==
        static_cast<u8>(SleepState::kSleeping))
      continue;
    st_awake_.push_back(i);
  }
  st_pos_ = 0;
  st_mode_ = true;

  bool first_pass = true;
  for (;;) {
    if (first_pass || st_pos_ >= st_awake_.size()) {
      // Pass boundary (the sorted list was scanned end to end). stop_ is
      // only consulted here and after each retired instruction, mirroring
      // the original scan-all-harts loop cycle for cycle.
      first_pass = false;
      st_pos_ = 0;
      if (stop_.load(std::memory_order_acquire)) break;
      if (st_awake_.empty()) {
        for (const Hart& h : harts_) {
          if (!h.state.halted) {
            res.deadlock = true;  // live harts asleep, nobody left to wake them
            break;
          }
        }
        break;
      }
    }
    const u32 i = st_awake_[st_pos_];
    if (harts_[i].state.in_wfi) resume_from_wfi(i);
    u64 budget = kQuantum;
    if (max_instructions != 0)
      budget = std::min<u64>(budget, max_instructions - executed);
    TurnEnd end;
    executed += trace_ ? exec_quantum_traced(i, budget, end)
                       : exec_quantum(i, budget, end);
    if (end == TurnEnd::kAsleep || end == TurnEnd::kHalted) {
      st_awake_.erase(st_awake_.begin() + static_cast<ptrdiff_t>(st_pos_));
    } else {
      ++st_pos_;
    }
    if (max_instructions != 0 && executed >= max_instructions) break;
  }

  st_mode_ = false;
  res.exited = exited_.load(std::memory_order_relaxed);
  res.exit_code = exit_code_.load(std::memory_order_relaxed);
  res.instructions = executed;
  return res;
}

RunResult Machine::run_threads(u32 n_threads, u64 max_instructions) {
  n_threads = std::max(1u, std::min<u32>(n_threads, num_harts()));
  const u32 per = (num_harts() + n_threads - 1) / n_threads;
  const u32 n_shards = (num_harts() + per - 1) / per;

  shard_size_ = per;
  inboxes_ = std::make_unique<WakeInbox[]>(n_shards);
  u32 awake = 0;
  for (u32 i = 0; i < num_harts(); ++i) {
    if (harts_[i].state.halted) continue;
    if (sleep_[i].load(std::memory_order_relaxed) !=
        static_cast<u8>(SleepState::kSleeping))
      ++awake;
  }
  awake_count_.store(awake, std::memory_order_relaxed);
  pending_wakes_.store(0, std::memory_order_relaxed);
  budget_left_.store(static_cast<i64>(max_instructions), std::memory_order_relaxed);
  mt_mode_ = true;

  std::atomic<u64> executed{0};
  std::atomic<bool> deadlock{false};
  // Claimed-but-unsettled budget quanta: a worker that cannot claim may only
  // declare the budget exhausted once no peer still holds a claim (a peer
  // that parks early returns its unused share to the pool).
  std::atomic<u32> claims_in_flight{0};
  std::vector<std::thread> workers;
  workers.reserve(n_shards);

  for (u32 t = 0; t < n_shards; ++t) {
    const u32 lo = t * per;
    const u32 hi = std::min(num_harts(), lo + per);
    workers.emplace_back([this, t, lo, hi, max_instructions, &executed, &deadlock,
                          &claims_in_flight] {
      // Shard-local run list; cross-thread wakes arrive via our inbox.
      std::vector<u32> awake_list;
      u32 shard_live = 0;
      for (u32 i = lo; i < hi; ++i) {
        if (harts_[i].state.halted) continue;
        ++shard_live;
        if (sleep_[i].load(std::memory_order_relaxed) !=
            static_cast<u8>(SleepState::kSleeping))
          awake_list.push_back(i);
      }
      WakeInbox& inbox = inboxes_[t];
      size_t pos = 0;
      u64 local_exec = 0;
      u32 idle_confirm = 0;
      std::vector<u32> drained;

      const auto drain_inbox = [&] {
        {
          const std::lock_guard<std::mutex> lock(inbox.m);
          drained.swap(inbox.ids);
          inbox.count.store(0, std::memory_order_release);
        }
        for (const u32 i : drained) {
          // Order matters for the deadlock snapshot: make the hart visible
          // as awake before retiring its pending-wake token.
          awake_count_.fetch_add(1, std::memory_order_release);
          pending_wakes_.fetch_sub(1, std::memory_order_release);
          const auto it = std::lower_bound(awake_list.begin(), awake_list.end(), i);
          const size_t idx = static_cast<size_t>(it - awake_list.begin());
          awake_list.insert(it, i);
          if (idx <= pos) ++pos;
        }
        drained.clear();
      };

      for (;;) {
        if (inbox.count.load(std::memory_order_acquire) != 0) drain_inbox();
        if (pos >= awake_list.size()) {
          pos = 0;
          if (stop_.load(std::memory_order_acquire)) break;
          if (shard_live == 0) break;  // every hart of this shard halted
        }
        if (awake_list.empty()) {
          // All our live harts are parked. Wait for a wake; declare
          // deadlock only on a triple-read (awake, pending, awake) snapshot
          // of all zeros, which is sound under acquire/release:
          //  - a running hart that later parks issues its wakes (pending++)
          //    before its own awake--; observing awake==0 therefore makes
          //    those pending++ visible to the subsequent pending read;
          //  - a drain performs awake++ before pending--; observing
          //    pending==0 after a drain therefore makes its awake++ visible
          //    to the second awake read.
          // So aw1==pw==aw2==0 implies no awake hart and no wake in flight.
          const u32 aw1 = awake_count_.load(std::memory_order_acquire);
          const u32 pw = pending_wakes_.load(std::memory_order_acquire);
          const u32 aw2 = awake_count_.load(std::memory_order_acquire);
          if (aw1 == 0 && pw == 0 && aw2 == 0) {
            if (++idle_confirm > kIdleConfirm) {
              deadlock.store(true, std::memory_order_relaxed);
              stop_.store(true, std::memory_order_release);
              break;
            }
          } else {
            idle_confirm = 0;
          }
          std::this_thread::yield();
          continue;
        }
        idle_confirm = 0;

        const u32 i = awake_list[pos];
        if (harts_[i].state.in_wfi) resume_from_wfi(i);
        u64 budget = kQuantum;
        if (max_instructions != 0) {
          claims_in_flight.fetch_add(1, std::memory_order_acq_rel);
          i64 cur = budget_left_.load(std::memory_order_acquire);
          i64 claim;
          do {
            claim = std::min<i64>(kQuantum, cur);
            if (claim <= 0) break;
          } while (!budget_left_.compare_exchange_weak(cur, cur - claim,
                                                       std::memory_order_acq_rel));
          if (claim <= 0) {
            claims_in_flight.fetch_sub(1, std::memory_order_acq_rel);
            // Only call the budget exhausted when no peer holds unsettled
            // budget (it might hand it back if its hart parks early).
            if (claims_in_flight.load(std::memory_order_acquire) == 0 &&
                budget_left_.load(std::memory_order_acquire) <= 0) {
              stop_.store(true, std::memory_order_release);
            }
            if (stop_.load(std::memory_order_acquire)) break;
            std::this_thread::yield();
            continue;
          }
          budget = static_cast<u64>(claim);
        }
        TurnEnd end;
        const u64 n = exec_quantum(i, budget, end);
        local_exec += n;
        if (max_instructions != 0) {
          if (n < budget)
            budget_left_.fetch_add(static_cast<i64>(budget - n),
                                   std::memory_order_acq_rel);
          claims_in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
        if (end == TurnEnd::kAsleep || end == TurnEnd::kHalted) {
          awake_list.erase(awake_list.begin() + static_cast<ptrdiff_t>(pos));
          awake_count_.fetch_sub(1, std::memory_order_release);
          if (end == TurnEnd::kHalted) --shard_live;
        } else {
          ++pos;
        }
      }
      executed.fetch_add(local_exec, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();

  mt_mode_ = false;
  inboxes_.reset();

  RunResult res;
  res.exited = exited_.load(std::memory_order_relaxed);
  res.exit_code = exit_code_.load(std::memory_order_relaxed);
  res.deadlock = deadlock.load(std::memory_order_relaxed);
  res.instructions = executed.load(std::memory_order_relaxed);
  return res;
}

u64 Machine::total_instructions() const {
  u64 sum = 0;
  for (const auto& h : harts_) sum += h.instructions();
  return sum;
}

u64 Machine::estimated_cycles() const {
  u64 mx = 0;
  for (const auto& h : harts_) mx = std::max(mx, h.cycles());
  return mx;
}

u64 Machine::total_cycles() const {
  u64 sum = 0;
  for (const auto& h : harts_) sum += h.cycles();
  return sum;
}

}  // namespace tsim::iss
