#include "iss/machine.h"

#include <algorithm>
#include <thread>

#include "rv/exec.h"

namespace tsim::iss {
namespace {

constexpr u32 kQuantum = 256;  // instructions per hart per scheduler turn

// Consecutive idle observations of the all-parked condition a run_threads
// worker requires before declaring deadlock. The triple-read snapshot in
// the worker loop is already sound on its own (see the comment there); the
// confirmation margin is belt-and-braces against future protocol edits.
constexpr u32 kIdleConfirm = 64;

/// Cycle of the instruction currently executing on this host thread; read
/// by the MMIO wake handler to timestamp barrier releases. Thread-local so
/// concurrent shards never share a cache line. Only stores can reach the
/// wake register, so the fast path refreshes it on store-class instructions
/// only (the traced reference path refreshes it every instruction, matching
/// the historical behaviour; both are observationally identical).
thread_local u64 t_current_cycle = 0;

/// Placeholder translation table for a machine that has no program loaded
/// yet: every lookup misses, so a premature run() halts the harts exactly
/// like the pre-cache implementation did.
const TranslationCache& empty_translation() {
  static const TranslationCache empty;
  return empty;
}

/// Scoreboard: earliest cycle lane `i`'s instruction can issue, charging
/// RAW stalls to the lane.
inline u64 compute_issue(HartArrays& s, u32 i, const SbEntry& e, bool scoreboard) {
  u64 issue = s.cycle[i];
  if (scoreboard) {
    u64 ready = std::max(s.ready_col(e.d.rs1)[i], s.ready_col(e.d.rs2)[i]);
    if (e.flags & kSbReadsRs3) ready = std::max(ready, s.ready_col(e.d.rs3)[i]);
    if (e.flags & kSbReadsRdSrc) ready = std::max(ready, s.ready_col(e.d.rd)[i]);
    if (ready > issue) {
      s.raw_stall[i] += ready - issue;
      issue = ready;
    }
  }
  return issue;
}

/// Extra result latency of a load/AMO that hit `addr` (the timing model's
/// memory leg, shared by retire_timing and the lockstep sweep).
inline u32 memory_access_latency(u32 addr, u32 hartid, const TimingConfig& timing,
                                 const tera::TeraPoolConfig& cluster,
                                 const tera::ClusterMemory& mem) {
  if (addr >= tera::kL2Base) return timing.l2_latency;
  if (addr >= tera::kMmioBase) return 1;
  if (timing.numa_latency) {
    const auto route = mem.map().route(addr);
    const u32 tile = route ? route->tile : 0;
    return cluster.numa_latency(hartid, tile);
  }
  return timing.static_mem_latency;
}

/// Static-latency accounting for one retired instruction of lane `i`:
/// advances the lane clock and marks the destination busy until its result
/// latency elapses.
inline void retire_timing(HartArrays& s, u32 i, const SbEntry& e,
                          const rv::StepInfo& info, u64 issue,
                          const TimingConfig& timing,
                          const tera::TeraPoolConfig& cluster,
                          const tera::ClusterMemory& mem) {
  u64 cyc = issue + e.issue_cycles;
  if (info.branch_taken) cyc += timing.branch_taken_penalty;
  s.cycle[i] = cyc;

  u64 result_at = issue + e.result_latency;
  if (info.is_load || info.is_amo)
    result_at += memory_access_latency(info.mem_addr, i, timing, cluster, mem);
  if ((e.flags & kSbWritesRd) && e.d.rd != 0) s.ready_col(e.d.rd)[i] = result_at;
  if ((e.flags & kSbPostIncLoad) && e.d.rs1 != 0) s.ready_col(e.d.rs1)[i] = issue + 1;
}

/// True when `op` has any path to fault()/halt in rv::execute (memory ops
/// can misalign or leave the map; ebreak/invalid halt by design). The
/// specialized lockstep sweeps elide the per-member halted check for ops
/// that provably cannot fault - a hart on the run list is never halted on
/// entry, and a non-faulting op cannot make it so.
constexpr bool op_may_fault(rv::Op op) {
  switch (op) {
    case rv::Op::kAddi:
    case rv::Op::kAdd:
    case rv::Op::kSub:
    case rv::Op::kSlli:
    case rv::Op::kLui:
    case rv::Op::kMul:
    case rv::Op::kPMac:
    case rv::Op::kPvExtractH:
    case rv::Op::kPvInsertH:
    case rv::Op::kPvPackH:
    case rv::Op::kFaddH:
    case rv::Op::kFsubH:
    case rv::Op::kFmulH:
    case rv::Op::kFmaddH:
    case rv::Op::kFmsubH:
    case rv::Op::kVfmacH:
    case rv::Op::kVfcdotpH:
    case rv::Op::kVfccdotpH:
    case rv::Op::kVfdotpexSH:
    case rv::Op::kBeq:
    case rv::Op::kBne:
    case rv::Op::kBlt:
    case rv::Op::kBge:
      return false;
    default:
      return true;  // conservative: loads/stores/amo, ebreak, invalid, ...
  }
}

// Op classes of the specialized lockstep sweeps: which pass-C columns an op
// touches and which pass-B side channels it needs are compile-time facts of
// the opcode, so each sweep instantiation keeps only its own buffers/loops.
constexpr bool op_is_branch(rv::Op op) {
  return op == rv::Op::kBeq || op == rv::Op::kBne || op == rv::Op::kBlt ||
         op == rv::Op::kBge;
}
constexpr bool op_is_load_cls(rv::Op op) {
  return op == rv::Op::kLw || op == rv::Op::kLh || op == rv::Op::kPLw ||
         op == rv::Op::kPLh;
}
constexpr bool op_is_store_cls(rv::Op op) {
  return op == rv::Op::kSh || op == rv::Op::kSw || op == rv::Op::kPSw;
}

}  // namespace

double BatchStats::avg_width() const {
  return batches != 0 ? static_cast<double>(width_sum) / static_cast<double>(batches) : 0.0;
}

double BatchStats::avg_run_length() const {
  return runs != 0 ? static_cast<double>(run_entries) / static_cast<double>(runs) : 0.0;
}

double BatchStats::lockstep_fraction() const {
  const u64 total = lockstep_instructions + serial_instructions;
  return total != 0 ? static_cast<double>(lockstep_instructions) / static_cast<double>(total)
                    : 0.0;
}

u64 BatchStats::width_percentile(double p) const {
  u64 total = 0;
  for (const u64 v : width_hist) total += v;
  if (total == 0) return 0;
  const double target = p * static_cast<double>(total);
  u64 acc = 0;
  for (size_t w = 0; w < width_hist.size(); ++w) {
    acc += width_hist[w];
    if (static_cast<double>(acc) >= target && acc != 0) return static_cast<u64>(w);
  }
  return static_cast<u64>(width_hist.size() - 1);
}

void BatchStats::merge(const BatchStats& other) {
  lockstep_instructions += other.lockstep_instructions;
  serial_instructions += other.serial_instructions;
  batches += other.batches;
  width_sum += other.width_sum;
  width_max = std::max(width_max, other.width_max);
  runs += other.runs;
  run_entries += other.run_entries;
  split_divergence += other.split_divergence;
  split_budget += other.split_budget;
  split_wake += other.split_wake;
  split_stop += other.split_stop;
  split_drain += other.split_drain;
  if (width_hist.size() < other.width_hist.size())
    width_hist.resize(other.width_hist.size(), 0);
  for (size_t w = 0; w < other.width_hist.size(); ++w) width_hist[w] += other.width_hist[w];
}

Machine::Machine(const tera::TeraPoolConfig& cluster, TimingConfig timing, u32 active_harts)
    : cluster_(cluster),
      timing_(timing),
      mem_(std::make_unique<tera::ClusterMemory>(cluster)),
      tcache_(&empty_translation()),
      soa_(active_harts == 0 ? cluster.num_cores() : active_harts),
      sleep_(soa_.size()) {
  mem_->set_exit_handler([this](u32 code) { on_exit(code); });
  mem_->set_wake_handler([this](u32 target) { on_wake(target, t_current_cycle); });
  for (auto& s : sleep_) s.store(0, std::memory_order_relaxed);
  bstats_.width_hist.assign(kMaxBatchWidth + 1, 0);
}

void Machine::reset_batch_stats() {
  bstats_ = BatchStats{};
  bstats_.width_hist.assign(kMaxBatchWidth + 1, 0);
}

Machine::ProgramHandle Machine::load_program(const rvasm::Program& prog) {
  const u64 key = program_fingerprint(prog);
  const u32 entry = program_entry_pc(prog);
  for (ProgramHandle h = 0; h < resident_.size(); ++h) {
    const ResidentProgram& r = *resident_[h];
    if (r.key == key && r.base == prog.base && r.entry_pc == entry &&
        r.image == prog.words) {
      select_program(h);  // cache hit: no retranslation
      return h;
    }
  }
  auto r = std::make_unique<ResidentProgram>();
  r->key = key;
  r->base = prog.base;
  r->image = prog.words;
  r->tcache = TranslationCache(prog);
  r->entry_pc = entry;
  resident_.push_back(std::move(r));
  const ProgramHandle h = static_cast<ProgramHandle>(resident_.size() - 1);
  select_program(h);
  return h;
}

void Machine::select_program(ProgramHandle handle) {
  check(handle < resident_.size(), "select_program: unknown program handle");
  if (handle != active_) {
    const ResidentProgram& r = *resident_[handle];
    mem_->load_program(r.base, r.image);
    tcache_ = &r.tcache;
    entry_pc_ = r.entry_pc;
    active_ = handle;
    ++program_switches_;
  }
  reset_harts();
}

void Machine::reset_harts() {
  soa_.reset(entry_pc_);
  for (auto& s : sleep_) s.store(static_cast<u8>(SleepState::kAwake), std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  exited_.store(false, std::memory_order_relaxed);
  exit_code_.store(0, std::memory_order_relaxed);
  wake_events_.clear();
  if (faults_armed_) {
    // Re-arm scheduled faults: a faulted run replays bit-for-bit.
    for (HartFault& f : hart_faults_) f.applied = false;
    std::fill(hart_hung_.begin(), hart_hung_.end(), u8{0});
    faults_applied_ = 0;
  }
}

void Machine::schedule_wake_at(u32 hart, u64 at_cycle) {
  check(hart == ~0u || hart < num_harts(), "schedule_wake_at: hart out of range");
  const WakeEvent e{at_cycle, hart};
  const auto before = [](const WakeEvent& a, const WakeEvent& b) {
    return a.at_cycle != b.at_cycle ? a.at_cycle < b.at_cycle : a.hart < b.hart;
  };
  wake_events_.insert(
      std::lower_bound(wake_events_.begin(), wake_events_.end(), e, before), e);
}

bool Machine::fire_wake_events() {
  // Every runnable hart is asleep, so simulated time has no owner: the
  // earliest pending event IS the present. on_wake stamps wake_cycle with
  // the event cycle and resume_from_wfi charges the sleeper the exact wfi
  // stall a cycle-by-cycle wait would have accumulated, so the O(1) jump is
  // invisible to the timing model. An event targeting a hart that is not
  // sleeping (halted, hung, or already awake) wakes nobody; keep firing
  // until one does or the queue drains.
  while (!wake_events_.empty()) {
    const u64 cycle = wake_events_.front().at_cycle;
    while (!wake_events_.empty() && wake_events_.front().at_cycle == cycle) {
      const u32 target = wake_events_.front().hart;
      wake_events_.erase(wake_events_.begin());
      on_wake(target, cycle);
    }
    if (!st_awake_.empty()) {
      ++idle_jumps_;
      return true;
    }
  }
  return false;
}

void Machine::inject_hart_fault(u32 hart, u64 at_instret, bool hang) {
  check(hart < num_harts(), "inject_hart_fault: hart out of range");
  if (hart_hung_.size() != num_harts()) hart_hung_.assign(num_harts(), 0);
  hart_faults_.push_back(HartFault{hart, at_instret, hang, false});
  faults_armed_ = true;
}

void Machine::clear_hart_faults() {
  hart_faults_.clear();
  std::fill(hart_hung_.begin(), hart_hung_.end(), u8{0});
  faults_armed_ = false;
  faults_applied_ = 0;
}

void Machine::apply_hart_fault(HartFault& f) {
  f.applied = true;
  ++faults_applied_;
  if (f.hang) {
    // Stuck hart: parked asleep with the hung mark set, so on_wake ignores
    // it forever. Peers blocked on it at a barrier deadlock - run() detects
    // the empty run list and reports it, exactly like a real hung core
    // stalls its cluster.
    soa_.arch[f.hart].in_wfi = true;
    hart_hung_[f.hart] = 1;
    sleep_[f.hart].store(static_cast<u8>(SleepState::kSleeping),
                         std::memory_order_relaxed);
  } else {
    // Transient trap: the hart halts like an architectural fault.
    soa_.arch[f.hart].halted = true;
    soa_.arch[f.hart].trapped = true;
  }
}

namespace {
constexpr u32 kMachineTag = 0x31535349;  // "ISS1"
}

void Machine::save_state(sim::SnapshotWriter& w) const {
  check(!st_mode_ && !mt_mode_, "Machine::save_state: machine is mid-run");
  check(wake_events_.empty(),
        "Machine::save_state: pending wake events are not serializable");
  w.tag(kMachineTag);
  const u32 n = soa_.size();
  w.write_u32(n);

  // Resident-program table: (key, base, entry, image). The translation
  // cache is NOT serialized - it is a pure function of (base, image) and is
  // rebuilt (and fingerprint-checked) on restore.
  w.write_u64(resident_.size());
  for (const auto& r : resident_) {
    w.write_u64(r->key);
    w.write_u32(r->base);
    w.write_u32(r->entry_pc);
    w.write_vec_u32(r->image);
  }
  w.write_u32(active_);
  w.write_u32(entry_pc_);
  w.write_u64(program_switches_);

  mem_->save_state(w);

  // HartArrays columns, serialized logically (n lanes per column) so the
  // payload is independent of the padded column stride.
  w.write_vec_u32(soa_.pc);
  w.write_vec_u64(soa_.cycle);
  w.write_vec_u64(soa_.instret);
  w.write_vec_u64(soa_.raw_stall);
  w.write_vec_u64(soa_.wfi_stall);
  w.write_vec_u64(soa_.wake_cycle);
  for (u32 reg = 0; reg < 32; ++reg)
    w.write_bytes(soa_.ready_col(reg), static_cast<size_t>(n) * sizeof(u64));
  for (u32 c = 0; c < kMixCount; ++c)
    w.write_bytes(soa_.mix_col(c), static_cast<size_t>(n) * sizeof(u64));
  for (const HartArrays::Arch& a : soa_.arch) {
    w.write_bytes(a.x.data(), a.x.size() * sizeof(u32));
    w.write_bool(a.halted);
    w.write_bool(a.in_wfi);
    w.write_bool(a.trapped);
    w.write_bool(a.has_reservation);
    w.write_u32(a.reservation_addr);
  }
  for (u32 i = 0; i < n; ++i)
    w.write_u8(sleep_[i].load(std::memory_order_relaxed));

  w.write_bool(stop_.load(std::memory_order_relaxed));
  w.write_bool(exited_.load(std::memory_order_relaxed));
  w.write_u32(exit_code_.load(std::memory_order_relaxed));

  // Fault schedule, including armed-but-unfired entries: a restored run
  // fires them at the exact same instruction boundaries.
  w.write_bool(faults_armed_);
  w.write_u64(hart_faults_.size());
  for (const HartFault& f : hart_faults_) {
    w.write_u32(f.hart);
    w.write_u64(f.at_instret);
    w.write_bool(f.hang);
    w.write_bool(f.applied);
  }
  w.write_vec_u8(hart_hung_);
  w.write_u32(faults_applied_);
}

void Machine::restore_state(sim::SnapshotReader& r) {
  check(!st_mode_ && !mt_mode_, "Machine::restore_state: machine is mid-run");
  r.expect_tag(kMachineTag, "Machine");
  const u32 n = soa_.size();
  if (r.read_u32() != n)
    r.fail("machine snapshot hart count does not match this configuration");

  // Rebuild the resident table in snapshot order (handles are positional).
  const u64 nres = r.read_u64();
  resident_.clear();
  for (u64 i = 0; i < nres; ++i) {
    const u64 key = r.read_u64();
    const u32 base = r.read_u32();
    const u32 entry = r.read_u32();
    rvasm::Program prog;
    prog.base = base;
    prog.words = r.read_vec_u32();
    prog.symbols["_start"] = entry;
    if (program_fingerprint(prog) != key)
      r.fail("resident program fingerprint mismatch (corrupt image?)");
    auto res = std::make_unique<ResidentProgram>();
    res->key = key;
    res->base = base;
    res->entry_pc = entry;
    res->tcache = TranslationCache(prog);
    res->image = std::move(prog.words);
    resident_.push_back(std::move(res));
  }
  const ProgramHandle active = r.read_u32();
  if (active != kNoProgram && active >= resident_.size())
    r.fail("active program handle out of range");
  active_ = active;
  tcache_ = active == kNoProgram ? &empty_translation()
                                 : &resident_[active]->tcache;
  entry_pc_ = r.read_u32();
  program_switches_ = r.read_u64();

  // Memory contents as captured (including the active image - select is
  // not re-run, so no spurious program switch is counted).
  mem_->restore_state(r);

  auto take_u32_col = [&r, n](std::vector<u32>& col) {
    std::vector<u32> v = r.read_vec_u32();
    if (v.size() != n) r.fail("hart column size mismatch");
    col = std::move(v);
  };
  auto take_u64_col = [&r, n](std::vector<u64>& col) {
    std::vector<u64> v = r.read_vec_u64();
    if (v.size() != n) r.fail("hart column size mismatch");
    col = std::move(v);
  };
  take_u32_col(soa_.pc);
  take_u64_col(soa_.cycle);
  take_u64_col(soa_.instret);
  take_u64_col(soa_.raw_stall);
  take_u64_col(soa_.wfi_stall);
  take_u64_col(soa_.wake_cycle);
  for (u32 reg = 0; reg < 32; ++reg)
    r.read_bytes(soa_.ready_col(reg), static_cast<size_t>(n) * sizeof(u64));
  for (u32 c = 0; c < kMixCount; ++c)
    r.read_bytes(soa_.mix_col(c), static_cast<size_t>(n) * sizeof(u64));
  for (HartArrays::Arch& a : soa_.arch) {
    r.read_bytes(a.x.data(), a.x.size() * sizeof(u32));
    a.halted = r.read_bool();
    a.in_wfi = r.read_bool();
    a.trapped = r.read_bool();
    a.has_reservation = r.read_bool();
    a.reservation_addr = r.read_u32();
  }
  for (u32 i = 0; i < n; ++i) {
    const u8 s = r.read_u8();
    if (s > static_cast<u8>(SleepState::kWakePending))
      r.fail("invalid hart sleep state");
    sleep_[i].store(s, std::memory_order_relaxed);
  }

  stop_.store(r.read_bool(), std::memory_order_relaxed);
  exited_.store(r.read_bool(), std::memory_order_relaxed);
  exit_code_.store(r.read_u32(), std::memory_order_relaxed);

  faults_armed_ = r.read_bool();
  const u64 nfaults = r.read_u64();
  hart_faults_.clear();
  for (u64 i = 0; i < nfaults; ++i) {
    HartFault f;
    f.hart = r.read_u32();
    f.at_instret = r.read_u64();
    f.hang = r.read_bool();
    f.applied = r.read_bool();
    if (f.hart >= n) r.fail("hart fault targets an unknown hart");
    hart_faults_.push_back(f);
  }
  hart_hung_ = r.read_vec_u8();
  if (!hart_hung_.empty() && hart_hung_.size() != n)
    r.fail("hart hang mask size mismatch");
  faults_applied_ = r.read_u32();
}

void Machine::on_exit(u32 code) {
  exit_code_.store(code, std::memory_order_relaxed);
  exited_.store(true, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_release);
}

void Machine::on_wake(u32 target, u64 waker_cycle) {
  const auto wake_one = [&](u32 i) {
    if (i >= soa_.size()) return;
    if (faults_armed_ && hart_hung_[i] != 0) return;  // stuck harts ignore wakes
    soa_.wake_cycle[i] = waker_cycle;
    auto& s = sleep_[i];
    u8 expected = static_cast<u8>(SleepState::kSleeping);
    if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kAwake))) {
      // The hart was parked: hand it back to its scheduler's run list.
      if (st_mode_) {
        // Same host thread (wakes only happen inside a store instruction):
        // insert in sorted position. Adjusting st_pos_ when the insertion
        // lands at or before it reproduces the scan-all-harts visit order
        // exactly: a hart woken "behind" the scan runs next pass, a hart
        // woken "ahead" still runs this pass.
        const auto it = std::lower_bound(st_awake_.begin(), st_awake_.end(), i);
        const size_t idx = static_cast<size_t>(it - st_awake_.begin());
        st_awake_.insert(it, i);
        if (idx <= st_pos_) ++st_pos_;
        // A lockstep batch in flight ends at the next superblock boundary so
        // the woken hart is rescheduled with (close to) serial promptness.
        if (st_batch_active_) st_batch_wake_ = true;
      } else if (mt_mode_) {
        pending_wakes_.fetch_add(1, std::memory_order_release);
        WakeInbox& box = inboxes_[i / shard_size_];
        const std::lock_guard<std::mutex> lock(box.m);
        box.ids.push_back(i);
        box.count.fetch_add(1, std::memory_order_release);
      }
      return;
    }
    expected = static_cast<u8>(SleepState::kAwake);
    s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kWakePending));
  };
  if (target == ~0u) {
    for (u32 i = 0; i < soa_.size(); ++i) wake_one(i);
  } else {
    wake_one(target);
  }
}

bool Machine::park_in_wfi(u32 hart_index) {
  auto& s = sleep_[hart_index];
  u8 expected = static_cast<u8>(SleepState::kWakePending);
  if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kAwake))) {
    // A wake arrived between barrier arrival and wfi: consume it and keep going.
    resume_from_wfi(hart_index);
    return false;
  }
  expected = static_cast<u8>(SleepState::kAwake);
  if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kSleeping))) {
    return true;  // now asleep; the scheduler resumes us after a wake
  }
  // A wake raced in during the transition: consume it.
  s.store(static_cast<u8>(SleepState::kAwake), std::memory_order_relaxed);
  soa_.arch[hart_index].in_wfi = false;
  return false;
}

void Machine::resume_from_wfi(u32 hart_index) {
  soa_.arch[hart_index].in_wfi = false;
  const u64 resume = soa_.wake_cycle[hart_index] + timing_.barrier_wake_cost;
  if (resume > soa_.cycle[hart_index]) {
    soa_.wfi_stall[hart_index] += resume - soa_.cycle[hart_index];
    soa_.cycle[hart_index] = resume;
  }
}

template <bool kRecord>
u64 Machine::exec_quantum_impl(u32 hart_index, u64 budget, TurnEnd& end,
                               std::vector<TraceRun>* trace) {
  const u32 i = hart_index;
  HartLane h = soa_.lane(i);
  const bool scoreboard = timing_.scoreboard;
  u64 executed = 0;
  end = TurnEnd::kBudget;
  while (budget != 0) {
    const SbEntry* e = tcache_->entry(h.pc);
    if (e == nullptr || e->d.op == rv::Op::kInvalid) {
      h.halted = true;
      h.trapped = true;
      end = TurnEnd::kHalted;
      return executed;
    }
    // Retire the whole straight-line run: only its last instruction can
    // branch or enter wfi, so pc tracks the entry pointer implicitly. Any
    // instruction may still fault, which shows up as h.halted.
    const u32 n = static_cast<u32>(std::min<u64>(e->run_len, budget));
    if constexpr (kRecord) trace->push_back(TraceRun{e, h.pc, n});
    budget -= n;
    for (u32 k = 0; k < n; ++k, ++e) {
      const u64 issue = compute_issue(soa_, i, *e, scoreboard);
      h.cycle = issue;
      if (e->flags & kSbStore) t_current_cycle = issue;
      const rv::StepInfo info = rv::execute(e->d, h, *mem_);
      soa_.mix_col(e->mix)[i]++;
      retire_timing(soa_, i, *e, info, issue, timing_, cluster_, *mem_);
      ++executed;
      if (h.halted) {
        if constexpr (kRecord) trace->back().n = k + 1;
        end = TurnEnd::kHalted;
        return executed;
      }
      if (stop_.load(std::memory_order_relaxed)) {
        if constexpr (kRecord) trace->back().n = k + 1;
        end = TurnEnd::kStopped;
        return executed;
      }
    }
    if (h.in_wfi && park_in_wfi(i)) {
      end = TurnEnd::kAsleep;
      return executed;
    }
  }
  return executed;
}

u64 Machine::exec_quantum(u32 hart_index, u64 budget, TurnEnd& end) {
  return exec_quantum_impl<false>(hart_index, budget, end, nullptr);
}

u64 Machine::exec_quantum_record(u32 hart_index, u64 budget, TurnEnd& end,
                                 std::vector<TraceRun>& trace) {
  return exec_quantum_impl<true>(hart_index, budget, end, &trace);
}

u64 Machine::exec_quantum_traced(u32 hart_index, u64 budget, TurnEnd& end) {
  const u32 i = hart_index;
  HartLane h = soa_.lane(i);
  u64 executed = 0;
  end = TurnEnd::kBudget;
  while (budget != 0) {
    const SbEntry* e = tcache_->entry(h.pc);
    if (e == nullptr || e->d.op == rv::Op::kInvalid) {
      h.halted = true;
      h.trapped = true;
      end = TurnEnd::kHalted;
      return executed;
    }
    const u64 issue = compute_issue(soa_, i, *e, timing_.scoreboard);
    h.cycle = issue;
    t_current_cycle = issue;
    if (trace_) trace_(hart_index, h.pc, e->d);
    const rv::StepInfo info = rv::execute(e->d, h, *mem_);
    soa_.mix_col(e->mix)[i]++;
    retire_timing(soa_, i, *e, info, issue, timing_, cluster_, *mem_);
    ++executed;
    --budget;
    if (h.halted) {
      end = TurnEnd::kHalted;
      return executed;
    }
    if (h.in_wfi && park_in_wfi(i)) {
      end = TurnEnd::kAsleep;
      return executed;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      end = TurnEnd::kStopped;
      return executed;
    }
  }
  return executed;
}

u32 Machine::scan_convergent(const std::vector<u32>& list, size_t pos, u32 limit) const {
  const u32 pc = soa_.pc[list[pos]];
  u32 width = 1;
  while (width < limit && soa_.pc[list[pos + width]] == pc) ++width;
  return width;
}

u64 Machine::exec_followers_replay(const u32* ids, u32 count, u64 budget,
                                   const std::vector<TraceRun>& trace,
                                   BatchEnd* ends, u64* rems,
                                   BatchStats& stats) {
  // Live followers with order-preserving compaction; lid[k] is the hart id
  // (= SoA lane) of live member k, orig[k] its formation index so ends/rems
  // stay addressable as followers drop out.
  u32 lid[kMaxBatchWidth];
  u16 orig[kMaxBatchWidth];
  u32 live = count;
  for (u32 k = 0; k < count; ++k) {
    lid[k] = ids[k];
    orig[k] = static_cast<u16>(k);
    ends[k] = BatchEnd::kRun;
    rems[k] = budget;
  }
  ++stats.batches;
  stats.width_sum += count + 1;  // reported widths include the leader
  stats.width_max = std::max<u64>(stats.width_max, count + 1);
  if (count + 1 < stats.width_hist.size()) ++stats.width_hist[count + 1];

  const auto drop = [&](u32 k, BatchEnd why) {
    ends[orig[k]] = why;
    for (u32 t = k + 1; t < live; ++t) {
      lid[t - 1] = lid[t];
      orig[t - 1] = orig[t];
    }
    --live;
  };

  const bool scoreboard = timing_.scoreboard;
  tera::ClusterMemory& mem = *mem_;
  u64 executed = 0;
  u64 consumed = 0;  // instructions each live follower retired so far
  bool diverged = false;
  bool ended_early = false;  // stop / wake cut the replay short
  if (st_mode_) {
    st_batch_wake_ = false;
    st_batch_active_ = true;
  }

  // Per-sweep scratch handing results between the three passes, indexed by
  // live member slot.
  u64 issue_buf[kMaxBatchWidth];
  u32 addr_buf[kMaxBatchWidth];
  u8 taken_buf[kMaxBatchWidth];
  u8 halt_buf[kMaxBatchWidth];

  for (size_t r = 0; r < trace.size() && live != 0 && !ended_early; ++r) {
    const TraceRun& run = trace[r];
    if (r != 0) {
      // Run boundary: a follower whose branch outcome left the leader's
      // path falls out and finishes its turn on the serial path.
      for (u32 k = 0; k < live;) {
        if (soa_.pc[lid[k]] != run.pc) {
          diverged = true;
          rems[orig[k]] = budget - consumed;
          drop(k, BatchEnd::kRun);
          continue;
        }
        ++k;
      }
      if (live == 0) break;
      if (st_mode_ && st_batch_wake_) {
        // A wake landed in the run list: hand the remaining turns back to
        // the serial scheduler so the woken hart is rescheduled promptly.
        ++stats.split_wake;
        for (u32 k = 0; k < live; ++k) rems[orig[k]] = budget - consumed;
        ended_early = true;
        break;
      }
    }
    ++stats.runs;
    stats.run_entries += run.n;
    const SbEntry* e = run.base;
    for (u32 s = 0; s < run.n; ++s, ++e) {
      const SbEntry ent = *e;  // per-sweep constants stay in registers
      // Member sweep, templated on the (loop-invariant) opcode, split into
      // three lane-major passes over the SoA columns:
      //   A. scoreboard issue + RAW stall        (vector, u64 columns)
      //   B. architectural semantics             (scalar, member order)
      //   C. retire clock/ready/mix              (vector, u64 columns)
      // The split is sound because pass A/C touch only per-lane timing
      // columns no other lane reads, and pass B runs in member order, so
      // the DUT-visible memory-access order is exactly the serial path's
      // (the bit-exactness contract in machine.h). The hot ops below
      // dispatch ONCE per SbEntry to a straight-line per-op kernel
      // (rv::execute_known folds the decode switch away); everything else
      // takes the generic member loop - bit-identical semantics either way
      // (execute_impl is the single source of truth).
      // Generic member loop for everything off the specialized list: per
      // member, the exact serial-path helper sequence.
      const auto sweep_generic = [&]() {
        const bool is_store = (ent.flags & kSbStore) != 0;
        for (u32 k = 0; k < live;) {
          const u32 i = lid[k];
          HartLane h = soa_.lane(i);
          const u64 issue = compute_issue(soa_, i, ent, scoreboard);
          if (is_store) t_current_cycle = issue;
          h.cycle = issue;  // mcycle-visible (CSR reads take this path)
          const rv::StepInfo info = rv::execute(ent.d, h, mem);
          soa_.mix_col(ent.mix)[i] += 1;
          retire_timing(soa_, i, ent, info, issue, timing_, cluster_, mem);
          ++executed;
          if (h.halted) [[unlikely]] {
            drop(k, BatchEnd::kHalted);
            continue;
          }
          ++k;
        }
      };
      const auto sweep_vec = [&]<rv::Op kOp>() {
        constexpr bool kBranch = op_is_branch(kOp);
        constexpr bool kLoad = op_is_load_cls(kOp);
        constexpr bool kStoreCls = op_is_store_cls(kOp);
        // Per-entry invariants of the timing model, hoisted out of the
        // passes (values identical to what compute_issue/retire_timing read
        // per member on the serial path; the pass bodies are the same
        // arithmetic in the same per-lane order).
        const u8 r1 = ent.d.rs1, r2 = ent.d.rs2, rd = ent.d.rd;
        const bool writes_rd = (ent.flags & kSbWritesRd) != 0 && rd != 0;
        const bool post_inc = (ent.flags & kSbPostIncLoad) != 0 && r1 != 0;
        const u64 issue_add = ent.issue_cycles;
        const u64 latency_add = ent.result_latency;
        u64* __restrict const cyc = soa_.cycle.data();
        // Pin the member count in a local: `live`'s address escapes into
        // drop(), so loop bounds on it defeat the vectorizer's iteration
        // count analysis (no store in the passes can change `n`).
        const u32 n = live;

        // Lane addressing: batches form over sorted run lists, so the live
        // members are almost always a window of consecutive hart ids - the
        // passes iterate unit-stride directly over the columns (the shape
        // the compiler vectorizes). A window fragmented by a mid-trace
        // drop-out takes the generic member loop instead: gather-indexed
        // pass variants would double every kernel's code size for a case
        // that occurs only after a fault or serial-finish split.
        const u32 lane0 = lid[0];
        if (lid[n - 1] - lane0 != n - 1) {
          sweep_generic();
          return;
        }

        const auto passes = [&](auto at) {
          if constexpr (!kBranch && !kLoad && !kStoreCls) {
            // Pure ALU/FP shape: the timing pass fuses A and C into ONE
            // vector loop per member window. Running it before the
            // semantics is sound for exactly this class - the op reads
            // neither cycle nor ready (no CSR access on the specialized
            // list), makes no memory access (no t_current_cycle refresh, no
            // wake handler), and cannot fault - and the fused loop is the
            // same per-lane arithmetic in the same order as split passes.
            // (kSbPostIncLoad never occurs here: the flag is only set on
            // post-increment loads, which take the kLoad shape.)
            u64* __restrict const mx = soa_.mix_col(ent.mix);
            u64* __restrict const out = soa_.ready_col(rd);
            const auto fused = [&](auto wr) {
              if (scoreboard) {
                u64* __restrict const stall = soa_.raw_stall.data();
                const u64* __restrict c1 = soa_.ready_col(r1);
                const u64* __restrict c2 = soa_.ready_col(r2);
                const u64* __restrict c3 =
                    (ent.flags & kSbReadsRs3) ? soa_.ready_col(ent.d.rs3) : c1;
                const u64* __restrict cd =
                    (ent.flags & kSbReadsRdSrc) ? soa_.ready_col(rd) : c1;
                for (u32 k = 0; k < n; ++k) {
                  const size_t i = at(k);
                  const u64 c = cyc[i];
                  const u64 ready =
                      std::max(std::max(c1[i], c2[i]), std::max(c3[i], cd[i]));
                  const u64 st = ready > c ? ready - c : 0;
                  stall[i] += st;
                  const u64 issue = c + st;
                  cyc[i] = issue + issue_add;
                  if constexpr (wr()) out[i] = issue + latency_add;
                  mx[i] += 1;
                }
              } else {
                for (u32 k = 0; k < n; ++k) {
                  const size_t i = at(k);
                  const u64 issue = cyc[i];
                  cyc[i] = issue + issue_add;
                  if constexpr (wr()) out[i] = issue + latency_add;
                  mx[i] += 1;
                }
              }
            };
            if (writes_rd) {
              fused([] { return true; });
            } else {
              fused([] { return false; });
            }
            for (u32 k = 0; k < n; ++k) {
              HartLane h = soa_.lane(at(k));
              rv::execute_known<kOp>(ent.d, h, mem);
            }
            return;
          }

          if (scoreboard) {
            u64* __restrict const stall = soa_.raw_stall.data();
            const u64* __restrict c1 = soa_.ready_col(r1);
            const u64* __restrict c2 = soa_.ready_col(r2);
            // Columns the entry does not read alias c1: max() against an
            // already-included column is a no-op, keeping pass A branch-free
            // (and vectorizable) for every operand shape.
            const u64* __restrict c3 =
                (ent.flags & kSbReadsRs3) ? soa_.ready_col(ent.d.rs3) : c1;
            const u64* __restrict cd =
                (ent.flags & kSbReadsRdSrc) ? soa_.ready_col(rd) : c1;
            for (u32 k = 0; k < n; ++k) {
              const u32 i = at(k);
              const u64 c = cyc[i];
              const u64 ready =
                  std::max(std::max(c1[i], c2[i]), std::max(c3[i], cd[i]));
              const u64 st = ready > c ? ready - c : 0;
              stall[i] += st;
              issue_buf[k] = c + st;
            }
          } else {
            for (u32 k = 0; k < n; ++k) issue_buf[k] = cyc[at(k)];
          }

          // Pass B, member order. The pre-execute cycle store is observable
          // only through the mcycle CSR reads of the generic path (none of
          // the specialized ops read CSRs) - pass C overwrites it either
          // way, so the specialized sweeps elide it.
          for (u32 k = 0; k < n; ++k) {
            if constexpr (kStoreCls) t_current_cycle = issue_buf[k];
            HartLane h = soa_.lane(at(k));
            const rv::StepInfo info = rv::execute_known<kOp>(ent.d, h, mem);
            if constexpr (kBranch) taken_buf[k] = info.branch_taken;
            if constexpr (kLoad) addr_buf[k] = info.mem_addr;
            if constexpr (kLoad || kStoreCls) halt_buf[k] = info.halted;
          }

          // Pass C retires every member that executed, faulted or not (the
          // serial path charges timing before the halted check); faulting
          // members drop after the passes.
          if constexpr (kBranch) {
            const u64 pen = timing_.branch_taken_penalty;
            for (u32 k = 0; k < n; ++k)
              cyc[at(k)] = issue_buf[k] + issue_add + (taken_buf[k] ? pen : 0);
          } else {
            for (u32 k = 0; k < n; ++k) cyc[at(k)] = issue_buf[k] + issue_add;
          }
          if (writes_rd) {
            u64* __restrict const out = soa_.ready_col(rd);
            if constexpr (kLoad) {
              if (!timing_.numa_latency) {
                // memory_access_latency's static leg, inlined so the loop
                // stays branch-light and vectorizable.
                const u64 l2lat = timing_.l2_latency;
                const u64 slat = timing_.static_mem_latency;
                for (u32 k = 0; k < n; ++k) {
                  const u32 a = addr_buf[k];
                  const u64 lat = a >= tera::kL2Base
                                      ? l2lat
                                      : (a >= tera::kMmioBase ? 1 : slat);
                  out[at(k)] = issue_buf[k] + latency_add + lat;
                }
              } else {
                for (u32 k = 0; k < n; ++k)
                  out[at(k)] = issue_buf[k] + latency_add +
                               memory_access_latency(addr_buf[k], at(k),
                                                     timing_, cluster_, mem);
              }
            } else {
              for (u32 k = 0; k < n; ++k)
                out[at(k)] = issue_buf[k] + latency_add;
            }
          }
          if (post_inc) {
            u64* __restrict const o1 = soa_.ready_col(r1);
            for (u32 k = 0; k < n; ++k) o1[at(k)] = issue_buf[k] + 1;
          }
          u64* __restrict const mx = soa_.mix_col(ent.mix);
          for (u32 k = 0; k < n; ++k) mx[at(k)] += 1;
        };
        // size_t index: a u32 `lane0 + k` may wrap (defined behaviour), so
        // the vectorizer cannot treat the accesses as affine; 64-bit
        // arithmetic keeps them provably unit-stride.
        passes([lane0](u32 k) { return size_t{lane0} + k; });

        executed += live;
        if constexpr (kLoad || kStoreCls) {
          // Deferred fault drop-outs; halt_buf is indexed by pre-drop slot,
          // so walk it while compacting lid/orig in place.
          const u32 was = live;
          u32 k = 0;
          for (u32 src = 0; src < was; ++src) {
            if (halt_buf[src]) [[unlikely]] {
              drop(k, BatchEnd::kHalted);
            } else {
              ++k;
            }
          }
        }
      };
// Specialized sweeps for the ops that dominate the MMSE/barrier kernels
// (addi/p.lw/vfccdotp.h/sh/pv.extract.h cover ~2/3 of retired instructions;
// the rest of the list rounds out the kernels' inner loops across the
// supported precisions). Adding an op here is a pure perf knob.
#define TSIM_SWEEP_CASE(OP)                       \
  case rv::Op::OP:                                \
    sweep_vec.template operator()<rv::Op::OP>();  \
    break;
      switch (ent.d.op) {
        TSIM_SWEEP_CASE(kAddi)
        TSIM_SWEEP_CASE(kAdd)
        TSIM_SWEEP_CASE(kSub)
        TSIM_SWEEP_CASE(kSlli)
        TSIM_SWEEP_CASE(kLui)
        TSIM_SWEEP_CASE(kMul)
        TSIM_SWEEP_CASE(kLw)
        TSIM_SWEEP_CASE(kLh)
        TSIM_SWEEP_CASE(kSh)
        TSIM_SWEEP_CASE(kSw)
        TSIM_SWEEP_CASE(kPLw)
        TSIM_SWEEP_CASE(kPLh)
        TSIM_SWEEP_CASE(kPSw)
        TSIM_SWEEP_CASE(kPMac)
        TSIM_SWEEP_CASE(kPvExtractH)
        TSIM_SWEEP_CASE(kPvInsertH)
        TSIM_SWEEP_CASE(kPvPackH)
        TSIM_SWEEP_CASE(kFaddH)
        TSIM_SWEEP_CASE(kFsubH)
        TSIM_SWEEP_CASE(kFmulH)
        TSIM_SWEEP_CASE(kFmaddH)
        TSIM_SWEEP_CASE(kFmsubH)
        TSIM_SWEEP_CASE(kVfmacH)
        TSIM_SWEEP_CASE(kVfcdotpH)
        TSIM_SWEEP_CASE(kVfccdotpH)
        TSIM_SWEEP_CASE(kVfdotpexSH)
        TSIM_SWEEP_CASE(kBeq)
        TSIM_SWEEP_CASE(kBne)
        TSIM_SWEEP_CASE(kBlt)
        TSIM_SWEEP_CASE(kBge)
        default:
          sweep_generic();
          break;
      }
#undef TSIM_SWEEP_CASE
      ++consumed;
      // stop_ is consulted once per sweep, mirroring the serial loop: when
      // the leader (or a follower store) raised it, every live follower has
      // retired exactly one instruction past the stop, like the serial
      // harts scheduled after the raiser.
      if (stop_.load(std::memory_order_relaxed)) [[unlikely]] {
        ++stats.split_stop;
        while (live != 0) drop(0, BatchEnd::kStopped);
        ended_early = true;
        break;
      }
      if (ent.d.op == rv::Op::kWfi) {
        // wfi terminates every superblock, so this is the run's final
        // sweep: park the followers in visit order, exactly where their
        // serial turns would have ended. A follower that consumed a
        // pending wake inside park_in_wfi keeps running.
        for (u32 k = 0; k < live;) {
          if (park_in_wfi(lid[k])) {
            drop(k, BatchEnd::kAsleep);
            continue;
          }
          ++k;
        }
      }
      if (live == 0) break;
    }
  }

  // Trace exhausted with live followers: either the leader used its whole
  // quantum (so did they - turn over), or the leader's turn ended early
  // (park/halt/stop) and the still-runnable followers finish serially.
  for (u32 k = 0; k < live; ++k) {
    if (consumed == budget) {
      ends[orig[k]] = BatchEnd::kBudget;
    } else {
      rems[orig[k]] = budget - consumed;
    }
  }
  if (live != 0) {
    if (consumed == budget) ++stats.split_budget;
    else if (!ended_early) ++stats.split_drain;
  }
  if (diverged) ++stats.split_divergence;

  if (st_mode_) st_batch_active_ = false;
  stats.lockstep_instructions += executed;
  return executed;
}

template <typename EraseFn, typename AdvanceFn>
u64 Machine::reconcile_batch(const u32* ids, u32 width, TurnEnd leader_end,
                             const BatchEnd* follower_ends, const u64* rems,
                             const std::vector<u32>& list, BatchStats& stats,
                             EraseFn&& erase_at, AdvanceFn&& advance_to) {
  u64 executed = 0;
  for (u32 k = 0; k < width; ++k) {
    const u32 id = ids[k];
    BatchEnd be;
    if (k == 0) {
      be = leader_end == TurnEnd::kAsleep    ? BatchEnd::kAsleep
           : leader_end == TurnEnd::kHalted  ? BatchEnd::kHalted
           : leader_end == TurnEnd::kStopped ? BatchEnd::kStopped
                                             : BatchEnd::kBudget;
    } else {
      be = follower_ends[k - 1];
    }
    // Members are re-located by id: wakes during the batch (run() inserts,
    // or the serial finish below) may have shifted positions, but the list
    // is sorted and members never leave it mid-batch.
    auto it = std::lower_bound(list.begin(), list.end(), id);
    size_t pos = static_cast<size_t>(it - list.begin());
    switch (be) {
      case BatchEnd::kAsleep:
      case BatchEnd::kHalted:
        erase_at(pos, be == BatchEnd::kHalted);
        break;
      case BatchEnd::kBudget:
      case BatchEnd::kStopped:
        advance_to(pos + 1);
        break;
      case BatchEnd::kRun: {
        // Finish the member's turn on the serial path with the exact
        // remaining quantum; the scan position is parked on it so wake
        // inserts during the finish see the exact serial scan position.
        advance_to(pos);
        TurnEnd end;
        const u64 n = exec_quantum(id, rems[k - 1], end);
        executed += n;
        stats.serial_instructions += n;
        it = std::lower_bound(list.begin(), list.end(), id);
        pos = static_cast<size_t>(it - list.begin());
        if (end == TurnEnd::kAsleep || end == TurnEnd::kHalted) {
          erase_at(pos, end == TurnEnd::kHalted);
          advance_to(pos);
        } else {
          advance_to(pos + 1);
        }
        break;
      }
    }
  }
  return executed;
}

RunResult Machine::run(u64 max_instructions) {
  RunResult res;
  u64 executed = 0;

  // Build the awake run list once; after this the scheduler never loads a
  // sleep state - on_wake (same host thread) re-inserts woken harts.
  st_awake_.clear();
  for (u32 i = 0; i < num_harts(); ++i) {
    if (soa_.arch[i].halted) continue;
    if (sleep_[i].load(std::memory_order_relaxed) ==
        static_cast<u8>(SleepState::kSleeping))
      continue;
    st_awake_.push_back(i);
  }
  st_pos_ = 0;
  st_mode_ = true;

  u32 batch_ids[kMaxBatchWidth];
  BatchEnd batch_ends[kMaxBatchWidth];
  u64 batch_rems[kMaxBatchWidth];

  bool first_pass = true;
  for (;;) {
    if (first_pass || st_pos_ >= st_awake_.size()) {
      // Pass boundary (the sorted list was scanned end to end). stop_ is
      // only consulted here and after each retired instruction, mirroring
      // the original scan-all-harts loop cycle for cycle.
      first_pass = false;
      st_pos_ = 0;
      if (stop_.load(std::memory_order_acquire)) break;
      if (st_awake_.empty()) {
        // Quiescence fast-forward: with wake events pending, jump straight
        // to the earliest one instead of declaring deadlock.
        if (!wake_events_.empty() && fire_wake_events()) continue;
        for (u32 i = 0; i < num_harts(); ++i) {
          if (!soa_.arch[i].halted) {
            res.deadlock = true;  // live harts asleep, nobody left to wake them
            break;
          }
        }
        break;
      }
    }
    const u32 i = st_awake_[st_pos_];
    if (soa_.arch[i].in_wfi) resume_from_wfi(i);
    u64 budget = kQuantum;
    if (max_instructions != 0)
      budget = std::min<u64>(budget, max_instructions - executed);

    // Scheduled fault hook (cold branch; see inject_hart_fault): a due
    // fault lands at this turn boundary, a pending one clamps the turn's
    // budget so the NEXT visit of this hart sits exactly at its instret.
    if (faults_armed_) {
      bool fault_applied = false;
      for (HartFault& f : hart_faults_) {
        if (f.applied || f.hart != i) continue;
        const u64 done = soa_.instret[i];
        if (done >= f.at_instret) {
          apply_hart_fault(f);
          fault_applied = true;
          break;
        }
        budget = std::min(budget, f.at_instret - done);
      }
      if (fault_applied) {
        st_awake_.erase(st_awake_.begin() + static_cast<ptrdiff_t>(st_pos_));
        continue;
      }
    }

    // Convergence batch: consecutive same-pc harts from st_pos_ (see the
    // SPMD batching note in the header). Every member needs a full quantum
    // of budget headroom, so a max_instructions cut always lands on a
    // serial turn and budget semantics stay exactly serial. Armed faults
    // force the serial oracle: exact instret boundaries, no replay.
    u32 width = 1;
    if (batching_ && !trace_ && !faults_armed_ && budget == kQuantum &&
        st_awake_.size() - st_pos_ >= 2) {
      u64 limit = std::min<u64>(kMaxBatchWidth, st_awake_.size() - st_pos_);
      if (max_instructions != 0)
        limit = std::min<u64>(limit, (max_instructions - executed) / kQuantum);
      if (limit >= 2) width = scan_convergent(st_awake_, st_pos_, static_cast<u32>(limit));
    }

    if (width >= 2) {
      for (u32 k = 0; k < width; ++k) {
        batch_ids[k] = st_awake_[st_pos_ + k];
        // Turn-start wake accounting for the joining harts: it reads only
        // the hart's own wake_cycle, so resuming at formation is
        // bit-identical to resuming at the hart's serial turn.
        if (k != 0 && soa_.arch[batch_ids[k]].in_wfi) resume_from_wfi(batch_ids[k]);
      }
      // Leader turn: a plain serial quantum (st_pos_ is parked on the
      // leader, so wakes it raises see the exact serial scan position) that
      // records its superblock runs for the followers to replay.
      st_trace_.clear();
      TurnEnd leader_end;
      const u64 leader_n = exec_quantum_record(batch_ids[0], kQuantum,
                                               leader_end, st_trace_);
      executed += leader_n;
      bstats_.serial_instructions += leader_n;
      executed += exec_followers_replay(batch_ids + 1, width - 1, kQuantum,
                                        st_trace_, batch_ends, batch_rems,
                                        bstats_);
      // Reconcile in member (= serial visit) order (shared helper; the
      // callbacks apply run()'s scan-position bookkeeping).
      executed += reconcile_batch(
          batch_ids, width, leader_end, batch_ends, batch_rems, st_awake_,
          bstats_,
          [this](size_t pos, bool) {
            st_awake_.erase(st_awake_.begin() + static_cast<ptrdiff_t>(pos));
            if (pos < st_pos_) --st_pos_;
          },
          [this](size_t pos) { st_pos_ = pos; });
    } else {
      TurnEnd end;
      const u64 n = trace_ ? exec_quantum_traced(i, budget, end)
                           : exec_quantum(i, budget, end);
      executed += n;
      if (!trace_ && batching_) bstats_.serial_instructions += n;
      if (end == TurnEnd::kAsleep || end == TurnEnd::kHalted) {
        st_awake_.erase(st_awake_.begin() + static_cast<ptrdiff_t>(st_pos_));
      } else {
        ++st_pos_;
      }
    }
    if (max_instructions != 0 && executed >= max_instructions) break;
  }

  st_mode_ = false;
  res.exited = exited_.load(std::memory_order_relaxed);
  res.exit_code = exit_code_.load(std::memory_order_relaxed);
  res.instructions = executed;
  return res;
}

RunResult Machine::run_threads(u32 n_threads, u64 max_instructions) {
  check(!faults_armed_,
        "run_threads: hart faults are applied by the serial run() oracle");
  check(wake_events_.empty(),
        "run_threads: wake events are fired by the serial run() scheduler");
  n_threads = std::max(1u, std::min<u32>(n_threads, num_harts()));
  const u32 per = (num_harts() + n_threads - 1) / n_threads;
  const u32 n_shards = (num_harts() + per - 1) / per;

  shard_size_ = per;
  inboxes_ = std::make_unique<WakeInbox[]>(n_shards);
  u32 awake = 0;
  for (u32 i = 0; i < num_harts(); ++i) {
    if (soa_.arch[i].halted) continue;
    if (sleep_[i].load(std::memory_order_relaxed) !=
        static_cast<u8>(SleepState::kSleeping))
      ++awake;
  }
  awake_count_.store(awake, std::memory_order_relaxed);
  pending_wakes_.store(0, std::memory_order_relaxed);
  budget_left_.store(static_cast<i64>(max_instructions), std::memory_order_relaxed);
  mt_mode_ = true;

  std::atomic<u64> executed{0};
  std::atomic<bool> deadlock{false};
  // Claimed-but-unsettled budget quanta: a worker that cannot claim may only
  // declare the budget exhausted once no peer still holds a claim (a peer
  // that parks early returns its unused share to the pool).
  std::atomic<u32> claims_in_flight{0};
  std::vector<std::thread> workers;
  workers.reserve(n_shards);

  for (u32 t = 0; t < n_shards; ++t) {
    const u32 lo = t * per;
    const u32 hi = std::min(num_harts(), lo + per);
    workers.emplace_back([this, t, lo, hi, max_instructions, &executed, &deadlock,
                          &claims_in_flight] {
      // Shard-local run list; cross-thread wakes arrive via our inbox.
      // Convergence batches form inside this list only, so a convergence
      // group spanning a shard boundary simply splits at it; batch stats
      // accumulate shard-locally and merge on join.
      std::vector<u32> awake_list;
      u32 batch_ids[kMaxBatchWidth];
      BatchEnd batch_ends[kMaxBatchWidth];
      u64 batch_rems[kMaxBatchWidth];
      std::vector<TraceRun> trace;  // shard-local leader-trace scratch
      BatchStats local_stats;
      local_stats.width_hist.assign(kMaxBatchWidth + 1, 0);
      u32 shard_live = 0;
      for (u32 i = lo; i < hi; ++i) {
        if (soa_.arch[i].halted) continue;
        ++shard_live;
        if (sleep_[i].load(std::memory_order_relaxed) !=
            static_cast<u8>(SleepState::kSleeping))
          awake_list.push_back(i);
      }
      WakeInbox& inbox = inboxes_[t];
      size_t pos = 0;
      u64 local_exec = 0;
      u32 idle_confirm = 0;
      std::vector<u32> drained;

      const auto drain_inbox = [&] {
        {
          const std::lock_guard<std::mutex> lock(inbox.m);
          drained.swap(inbox.ids);
          inbox.count.store(0, std::memory_order_release);
        }
        for (const u32 i : drained) {
          // Order matters for the deadlock snapshot: make the hart visible
          // as awake before retiring its pending-wake token.
          awake_count_.fetch_add(1, std::memory_order_release);
          pending_wakes_.fetch_sub(1, std::memory_order_release);
          const auto it = std::lower_bound(awake_list.begin(), awake_list.end(), i);
          const size_t idx = static_cast<size_t>(it - awake_list.begin());
          awake_list.insert(it, i);
          if (idx <= pos) ++pos;
        }
        drained.clear();
      };

      for (;;) {
        if (inbox.count.load(std::memory_order_acquire) != 0) drain_inbox();
        if (pos >= awake_list.size()) {
          pos = 0;
          if (stop_.load(std::memory_order_acquire)) break;
          if (shard_live == 0) break;  // every hart of this shard halted
        }
        if (awake_list.empty()) {
          // All our live harts are parked. Wait for a wake; declare
          // deadlock only on a triple-read (awake, pending, awake) snapshot
          // of all zeros, which is sound under acquire/release:
          //  - a running hart that later parks issues its wakes (pending++)
          //    before its own awake--; observing awake==0 therefore makes
          //    those pending++ visible to the subsequent pending read;
          //  - a drain performs awake++ before pending--; observing
          //    pending==0 after a drain therefore makes its awake++ visible
          //    to the second awake read.
          // So aw1==pw==aw2==0 implies no awake hart and no wake in flight.
          const u32 aw1 = awake_count_.load(std::memory_order_acquire);
          const u32 pw = pending_wakes_.load(std::memory_order_acquire);
          const u32 aw2 = awake_count_.load(std::memory_order_acquire);
          if (aw1 == 0 && pw == 0 && aw2 == 0) {
            if (++idle_confirm > kIdleConfirm) {
              deadlock.store(true, std::memory_order_relaxed);
              stop_.store(true, std::memory_order_release);
              break;
            }
          } else {
            idle_confirm = 0;
          }
          std::this_thread::yield();
          continue;
        }
        idle_confirm = 0;

        const u32 i = awake_list[pos];
        if (soa_.arch[i].in_wfi) resume_from_wfi(i);

        // Convergence batch inside this shard's list; a batch runs only on
        // a full width*kQuantum claim from the shared budget pool, so the
        // pool tail is always consumed by serial turns.
        u32 width = 1;
        if (batching_ && awake_list.size() - pos >= 2) {
          const u64 limit = std::min<u64>(kMaxBatchWidth, awake_list.size() - pos);
          width = scan_convergent(awake_list, pos, static_cast<u32>(limit));
        }
        u64 budget = kQuantum;
        if (max_instructions != 0) {
          claims_in_flight.fetch_add(1, std::memory_order_acq_rel);
          const i64 want = static_cast<i64>(width) * kQuantum;
          i64 cur = budget_left_.load(std::memory_order_acquire);
          i64 claim;
          do {
            claim = cur >= want ? want : std::min<i64>(kQuantum, cur);
            if (claim <= 0) break;
          } while (!budget_left_.compare_exchange_weak(cur, cur - claim,
                                                       std::memory_order_acq_rel));
          if (claim <= 0) {
            claims_in_flight.fetch_sub(1, std::memory_order_acq_rel);
            // Only call the budget exhausted when no peer holds unsettled
            // budget (it might hand it back if its hart parks early).
            if (claims_in_flight.load(std::memory_order_acquire) == 0 &&
                budget_left_.load(std::memory_order_acquire) <= 0) {
              stop_.store(true, std::memory_order_release);
            }
            if (stop_.load(std::memory_order_acquire)) break;
            std::this_thread::yield();
            continue;
          }
          if (claim < want) width = 1;  // partial claim: serial turn
          budget = width >= 2 ? kQuantum : static_cast<u64>(claim);
        }

        u64 turn_exec = 0;
        u64 turn_claimed = budget;
        if (width >= 2) {
          turn_claimed = static_cast<u64>(width) * kQuantum;
          for (u32 k = 0; k < width; ++k) {
            batch_ids[k] = awake_list[pos + k];
            if (k != 0 && soa_.arch[batch_ids[k]].in_wfi)
              resume_from_wfi(batch_ids[k]);
          }
          // Leader turn: a plain serial quantum that records its superblock
          // runs; the followers then replay the trace in lockstep.
          trace.clear();
          TurnEnd leader_end;
          const u64 leader_n =
              exec_quantum_record(batch_ids[0], kQuantum, leader_end, trace);
          turn_exec += leader_n;
          local_stats.serial_instructions += leader_n;
          turn_exec += exec_followers_replay(batch_ids + 1, width - 1, kQuantum,
                                             trace, batch_ends, batch_rems,
                                             local_stats);
          // Reconcile in member order (shared helper; the callbacks apply
          // this shard's list bookkeeping and awake/live counters - no
          // inserts can land in awake_list mid-turn, wakes queue in the
          // inbox, but members are re-located by id all the same).
          turn_exec += reconcile_batch(
              batch_ids, width, leader_end, batch_ends, batch_rems, awake_list,
              local_stats,
              [&](size_t mpos, bool halted) {
                awake_list.erase(awake_list.begin() + static_cast<ptrdiff_t>(mpos));
                awake_count_.fetch_sub(1, std::memory_order_release);
                if (halted) --shard_live;
                if (mpos < pos) --pos;
              },
              [&](size_t mpos) { pos = mpos; });
        } else {
          TurnEnd end;
          turn_exec = exec_quantum(i, budget, end);
          if (batching_) local_stats.serial_instructions += turn_exec;
          if (end == TurnEnd::kAsleep || end == TurnEnd::kHalted) {
            awake_list.erase(awake_list.begin() + static_cast<ptrdiff_t>(pos));
            awake_count_.fetch_sub(1, std::memory_order_release);
            if (end == TurnEnd::kHalted) --shard_live;
          } else {
            ++pos;
          }
        }
        local_exec += turn_exec;
        if (max_instructions != 0) {
          if (turn_exec < turn_claimed)
            budget_left_.fetch_add(static_cast<i64>(turn_claimed - turn_exec),
                                   std::memory_order_acq_rel);
          claims_in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
      executed.fetch_add(local_exec, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(bstats_mutex_);
        bstats_.merge(local_stats);
      }
    });
  }
  for (auto& w : workers) w.join();

  mt_mode_ = false;
  inboxes_.reset();

  RunResult res;
  res.exited = exited_.load(std::memory_order_relaxed);
  res.exit_code = exit_code_.load(std::memory_order_relaxed);
  res.deadlock = deadlock.load(std::memory_order_relaxed);
  res.instructions = executed.load(std::memory_order_relaxed);
  return res;
}

u64 Machine::total_instructions() const {
  u64 sum = 0;
  for (const u64 n : soa_.instret) sum += n;
  return sum;
}

u64 Machine::estimated_cycles() const {
  u64 mx = 0;
  for (const u64 c : soa_.cycle) mx = std::max(mx, c);
  return mx;
}

u64 Machine::total_cycles() const {
  u64 sum = 0;
  for (const u64 c : soa_.cycle) sum += c;
  return sum;
}

}  // namespace tsim::iss
