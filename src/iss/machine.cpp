#include "iss/machine.h"

#include <algorithm>
#include <thread>

#include "rv/exec.h"

namespace tsim::iss {
namespace {

constexpr u32 kQuantum = 256;       // instructions per hart per scheduler turn
constexpr u64 kSpinLimit = 200'000'000;  // idle passes before declaring deadlock

bool writes_rd(rv::Fmt fmt) {
  switch (fmt) {
    case rv::Fmt::kS:
    case rv::Fmt::kB:
    case rv::Fmt::kNullary:
      return false;
    default:
      return true;
  }
}

/// Cycle of the instruction currently executing on this host thread; read
/// by the MMIO wake handler to timestamp barrier releases. Thread-local so
/// concurrent shards never share a cache line.
thread_local u64 t_current_cycle = 0;

bool is_post_increment_load(rv::Op op) {
  switch (op) {
    case rv::Op::kPLb:
    case rv::Op::kPLbu:
    case rv::Op::kPLh:
    case rv::Op::kPLhu:
    case rv::Op::kPLw:
      return true;
    default:
      return false;
  }
}

}  // namespace

Machine::Machine(const tera::TeraPoolConfig& cluster, TimingConfig timing, u32 active_harts)
    : cluster_(cluster),
      timing_(timing),
      mem_(std::make_unique<tera::ClusterMemory>(cluster)),
      harts_(active_harts == 0 ? cluster.num_cores() : active_harts),
      sleep_(harts_.size()) {
  mem_->set_exit_handler([this](u32 code) { on_exit(code); });
  mem_->set_wake_handler([this](u32 target) { on_wake(target, t_current_cycle); });
  for (auto& s : sleep_) s.store(0, std::memory_order_relaxed);
}

void Machine::load_program(const rvasm::Program& prog) {
  mem_->load_program(prog.base, prog.words);
  tcache_ = TranslationCache(prog);
  const auto it = prog.symbols.find("_start");
  entry_pc_ = it != prog.symbols.end() ? it->second : prog.base;
  reset_harts();
}

void Machine::reset_harts() {
  for (u32 i = 0; i < harts_.size(); ++i) harts_[i].reset(i, entry_pc_);
  for (auto& s : sleep_) s.store(static_cast<u8>(SleepState::kAwake), std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  exited_.store(false, std::memory_order_relaxed);
  exit_code_.store(0, std::memory_order_relaxed);
}

void Machine::on_exit(u32 code) {
  exit_code_.store(code, std::memory_order_relaxed);
  exited_.store(true, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_release);
}

void Machine::on_wake(u32 target, u64 waker_cycle) {
  const auto wake_one = [&](u32 i) {
    if (i >= harts_.size()) return;
    harts_[i].wake_cycle = waker_cycle;
    auto& s = sleep_[i];
    u8 expected = static_cast<u8>(SleepState::kSleeping);
    if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kAwake))) return;
    expected = static_cast<u8>(SleepState::kAwake);
    s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kWakePending));
  };
  if (target == ~0u) {
    for (u32 i = 0; i < harts_.size(); ++i) wake_one(i);
  } else {
    wake_one(target);
  }
}

bool Machine::step(u32 hart_index) {
  Hart& h = harts_[hart_index];
  auto& st = h.state;
  const rv::Decoded* d = tcache_.lookup(st.pc);
  if (d == nullptr || d->op == rv::Op::kInvalid) {
    st.halted = true;
    st.trapped = true;
    return false;
  }
  const rv::InstrDef& def = isa_defs_[static_cast<size_t>(d->op)];

  // --- RAW scoreboard: stall issue until all sources are ready ---
  u64 issue = st.cycle;
  if (timing_.scoreboard) {
    u64 ready = std::max(h.ready[d->rs1], h.ready[d->rs2]);
    if (def.fmt == rv::Fmt::kR4) ready = std::max(ready, h.ready[d->rs3]);
    if (rv::reads_rd(d->op)) ready = std::max(ready, h.ready[d->rd]);
    if (ready > issue) {
      h.raw_stall_cycles += ready - issue;
      issue = ready;
    }
  }
  st.cycle = issue;

  t_current_cycle = issue;
  if (trace_) trace_(hart_index, st.pc, *d);
  const rv::StepInfo info = rv::execute(*d, st, *mem_);
  h.mix[static_cast<size_t>(def.mix)]++;

  // --- advance the hart clock ---
  st.cycle = issue + def.issue_cycles;
  if (info.branch_taken) st.cycle += timing_.branch_taken_penalty;

  // --- mark destination busy until its static result latency elapses ---
  u64 result_at = issue + def.result_latency;
  if (info.is_load || info.is_amo) {
    u32 mem_lat;
    if (info.mem_addr >= tera::kL2Base) {
      mem_lat = timing_.l2_latency;
    } else if (info.mem_addr >= tera::kMmioBase) {
      mem_lat = 1;
    } else if (timing_.numa_latency) {
      const auto route = mem_->map().route(info.mem_addr);
      const u32 tile = route ? route->tile : 0;
      const u32 core = st.hartid;
      mem_lat = cluster_.numa_latency(core, tile);
    } else {
      mem_lat = timing_.static_mem_latency;
    }
    result_at += mem_lat;
  }
  if (writes_rd(def.fmt) && d->rd != 0) h.ready[d->rd] = result_at;
  if (is_post_increment_load(d->op) && d->rs1 != 0) h.ready[d->rs1] = issue + 1;

  if (st.halted) return false;

  if (info.entered_wfi) {
    auto& s = sleep_[hart_index];
    u8 expected = static_cast<u8>(SleepState::kWakePending);
    if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kAwake))) {
      // A wake arrived between barrier arrival and wfi: consume it and keep going.
      st.in_wfi = false;
      const u64 resume = h.wake_cycle + timing_.barrier_wake_cost;
      if (resume > st.cycle) {
        h.wfi_stall_cycles += resume - st.cycle;
        st.cycle = resume;
      }
      return true;
    }
    expected = static_cast<u8>(SleepState::kAwake);
    if (s.compare_exchange_strong(expected, static_cast<u8>(SleepState::kSleeping))) {
      return false;  // now asleep; scheduler resumes us after a wake
    }
    // A wake raced in during the transition: consume it.
    s.store(static_cast<u8>(SleepState::kAwake), std::memory_order_relaxed);
    st.in_wfi = false;
    return true;
  }
  return true;
}

bool Machine::all_asleep() const {
  for (u32 i = 0; i < harts_.size(); ++i) {
    if (harts_[i].state.halted) continue;
    if (sleep_[i].load(std::memory_order_relaxed) !=
        static_cast<u8>(SleepState::kSleeping))
      return false;
  }
  return true;
}

RunResult Machine::run(u64 max_instructions) {
  RunResult res;
  u64 executed = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    bool any_live = false;
    bool progress = false;
    for (u32 i = 0; i < harts_.size(); ++i) {
      Hart& h = harts_[i];
      if (h.state.halted) continue;
      any_live = true;
      if (h.state.in_wfi) {
        if (sleep_[i].load(std::memory_order_acquire) !=
            static_cast<u8>(SleepState::kAwake))
          continue;  // still asleep
        h.state.in_wfi = false;
        const u64 resume = h.wake_cycle + timing_.barrier_wake_cost;
        if (resume > h.state.cycle) {
          h.wfi_stall_cycles += resume - h.state.cycle;
          h.state.cycle = resume;
        }
      }
      for (u32 q = 0; q < kQuantum; ++q) {
        if (!step(i)) break;
        ++executed;
        progress = true;
        if (max_instructions != 0 && executed >= max_instructions) {
          res.instructions = executed;
          return res;
        }
        if (stop_.load(std::memory_order_relaxed)) break;
      }
      if (!h.state.in_wfi && !h.state.halted) progress = true;
    }
    if (!any_live) break;  // everything halted
    if (!progress && all_asleep()) {
      res.deadlock = true;
      break;
    }
  }
  res.exited = exited_.load(std::memory_order_relaxed);
  res.exit_code = exit_code_.load(std::memory_order_relaxed);
  res.instructions = executed;
  return res;
}

RunResult Machine::run_threads(u32 n_threads) {
  n_threads = std::max(1u, std::min<u32>(n_threads, num_harts()));
  std::vector<std::thread> workers;
  std::atomic<u64> executed{0};
  std::atomic<bool> deadlock{false};
  const u32 per = (num_harts() + n_threads - 1) / n_threads;

  for (u32 t = 0; t < n_threads; ++t) {
    const u32 lo = t * per;
    const u32 hi = std::min(num_harts(), lo + per);
    if (lo >= hi) break;
    workers.emplace_back([this, lo, hi, &executed, &deadlock] {
      u64 local_exec = 0;
      u64 idle_passes = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        bool any_live = false;
        bool progress = false;
        for (u32 i = lo; i < hi; ++i) {
          Hart& h = harts_[i];
          if (h.state.halted) continue;
          any_live = true;
          if (h.state.in_wfi) {
            if (sleep_[i].load(std::memory_order_acquire) !=
                static_cast<u8>(SleepState::kAwake))
              continue;
            h.state.in_wfi = false;
            const u64 resume = h.wake_cycle + timing_.barrier_wake_cost;
            if (resume > h.state.cycle) {
              h.wfi_stall_cycles += resume - h.state.cycle;
              h.state.cycle = resume;
            }
          }
          for (u32 q = 0; q < kQuantum; ++q) {
            if (!step(i)) break;
            ++local_exec;
            progress = true;
            if (stop_.load(std::memory_order_relaxed)) break;
          }
        }
        if (!any_live) break;
        if (!progress) {
          if (++idle_passes > kSpinLimit) {
            deadlock.store(true, std::memory_order_relaxed);
            stop_.store(true, std::memory_order_release);
            break;
          }
          std::this_thread::yield();
        } else {
          idle_passes = 0;
        }
      }
      executed.fetch_add(local_exec, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();

  RunResult res;
  res.exited = exited_.load(std::memory_order_relaxed);
  res.exit_code = exit_code_.load(std::memory_order_relaxed);
  res.deadlock = deadlock.load(std::memory_order_relaxed);
  res.instructions = executed.load(std::memory_order_relaxed);
  return res;
}

u64 Machine::total_instructions() const {
  u64 sum = 0;
  for (const auto& h : harts_) sum += h.instructions();
  return sum;
}

u64 Machine::estimated_cycles() const {
  u64 mx = 0;
  for (const auto& h : harts_) mx = std::max(mx, h.cycles());
  return mx;
}

u64 Machine::total_cycles() const {
  u64 sum = 0;
  for (const auto& h : harts_) sum += h.cycles();
  return sum;
}

}  // namespace tsim::iss
