// The fast ISS machine: N harts over one ClusterMemory, executing a
// predecoded (translated) program with the static-latency timing model.
//
// Run modes mirror Banshee's:
//  - run():           deterministic single-host-thread round-robin.
//  - run_threads(n):  harts sharded over n host threads, synchronizing only
//                     through the DUT program's own atomics and wfi/wake.
//
// Hot-loop design: both run modes schedule only *awake* harts. Each
// scheduler keeps a run list of runnable hart ids; a hart leaves the list
// when it halts or parks in wfi and is re-inserted by the MMIO wake handler
// (run()) or a per-shard wake inbox (run_threads()), so a barrier-heavy
// 1024-hart phase costs O(awake) per pass instead of O(num_harts).
// Within a hart's turn, instructions are retired superblock-at-a-time from
// the TranslationCache (see translation.h): one pc lookup per straight-line
// run, with the ISA-table properties folded into the predecoded entries.
//
// Per-hart cycle estimates depend only on that hart's instruction stream
// plus barrier wake times. Functional results are independent of the host
// scheduling (verified by test); cycle estimates agree up to a few cycles of
// barrier-wake jitter, because which hart's amoadd arrives last - and hence
// whose cycle timestamps the wake - is resolved by the physical race, as on
// the real hardware.
//
// Resident-program cache: load_program() keys programs by content identity
// (iss::program_fingerprint + full word compare) and keeps every program it
// has ever translated resident - translation cache, initial memory image,
// and entry point. Loading a program that is already resident degenerates to
// select_program(): the active translation table is swapped and the image
// rewritten (a memcpy-sized host cost), with NO retranslation; reloading the
// program that is already active is a pure reset_harts(). This makes
// cluster-level program ping-pong (the RAN scheduler switching UE
// geometries between batches) nearly free on the host. Contract: resident
// programs must not store into their own image range if they are to be
// re-selected without an explicit reload - the kernel programs in this repo
// keep all mutable data in L1, while images live in L2.
//
// Structure-of-arrays hart state
// ------------------------------
// The hot per-hart state (pc, cycle, instret, the RAW scoreboard, stall
// counters, wake timestamps, instruction mix) lives in machine-owned
// parallel arrays indexed by hart id (iss::HartArrays, see hart.h); only
// the register file and the rarely-touched flags stay per-lane blocks.
// Scoreboard and mix arrays are register-/class-major, so the per-entry
// arithmetic of a lockstep sweep reads and writes a few unit-stride u64
// column windows. Serial turns and trace hooks run rv semantics through
// iss::HartLane, a thin per-lane view with HartState's field names - the
// state transitions are the same loads and stores as the pre-SoA layout,
// which is what keeps the bit-exactness contract below layout-independent.
// Machine::hart() assembles a value snapshot on demand.
//
// SPMD convergence batching
// -------------------------
// The DUT workloads are SPMD: every hart of a cluster runs the same kernel
// and re-converges at barriers, so at a scheduling-pass boundary most awake
// harts sit at the *same pc*. Both run modes exploit this: when the next
// `kMaxBatchWidth` (or fewer) consecutive harts of the sorted run list share
// a pc, they form a *convergence batch* and the dispatcher executes the
// shared superblock instruction-major, hart-minor - one translation lookup
// and one predecoded-metadata read per SbEntry per *batch* instead of per
// hart. The member sweep dispatches on the (loop-invariant) opcode ONCE per
// entry: hot ops run a three-pass vectorized sweep over the SoA columns -
// pass A computes every member's issue cycle and RAW stall from the
// scoreboard columns, pass B runs the architectural semantics member-by-
// member in member order through a straight-line rv::execute_known kernel
// (decode switch constant-folded away, per-entry invariants hoisted), and
// pass C retires cycle/scoreboard/mix columns. Batches form from
// consecutive entries of a sorted run list, so member lanes are usually
// consecutive hart ids: passes A and C then run as unit-stride column loops
// the compiler auto-vectorizes; after a drop-out the same passes run
// through the member indirection. Everything else takes the generic
// rv::execute with the same single-source semantics. The pass split is
// sound because per-hart timing reads only that hart's own state (the
// timing.h locality contract): reordering pass A across members commutes,
// and pass B keeps the member-order memory accesses that the bit-exactness
// contract pins. Members that fault in pass B still retire pass C (the
// serial path retires timing before the halted check) and drop out after.
//
// Batch invariants (the serial path stays the bit-exactness oracle):
//  - A batch FORMS only from consecutive entries of the run list, all at one
//    pc, each with a full quantum available (under a max_instructions budget
//    a batch needs width*quantum headroom, so the budget cut always lands on
//    a serial turn). Formation order equals list order equals serial visit
//    order.
//  - The first member is the LEADER: it takes an ordinary serial turn
//    (exec_quantum, with the scan position parked on it, so its barrier
//    wakes, parks, and exits behave byte-for-byte like an unbatched turn)
//    that additionally records the sequence of superblock runs it retired.
//  - The FOLLOWERS then replay the leader's trace in lockstep: each SbEntry
//    is retired for every live follower in member order before the next
//    entry. For any memory location, the leader's accesses precede the
//    followers' and followers access it in member order - the serial visit
//    order (an amoadd barrier arrival sequence is preserved exactly).
//    Per-hart timing (compute_issue/retire_timing) reads only that hart's
//    own state and is untouched by batching.
//  - A follower DROPS OUT when it halts or parks in wfi (mid-replay,
//    exactly where its serial turn would have ended) or when its pc leaves
//    the leader's path at a run boundary (a divergent branch outcome). The
//    replay ENDS when the global stop flag is up at a sweep boundary (every
//    live follower then retired exactly one instruction past the stop, like
//    the serial harts scheduled after it), when a wake lands in the run
//    list (run() only), or when the trace is exhausted. A follower that
//    leaves the replay still runnable finishes the REMAINDER of its turn
//    through the unmodified serial exec_quantum, in member order, with the
//    scan position parked on it - so each hart's turn retires exactly the
//    instructions its serial turn would have.
//  - Visit order: the batch occupies consecutive list positions; after the
//    turn the scan continues past the batch, and parked/halted members are
//    erased at their positions - the same list transitions a serial pass
//    performs, in the same order. A quantum that expires mid-superblock
//    simply re-forms the batch at the interior pc next turn.
// Because the leader's turn fully precedes the replay, a stop raised by the
// leader (the exit store of the repo's kernels runs on hart 0, the lowest
// batch position) truncates every follower to the exact serial one-
// instruction tail. Residual (documented) divergence from pure serial
// execution remains only for programs where batch members race peers on a
// shared location within one turn window: a non-leader hart raising the
// exit, two harts storing to the same address inside one superblock, or
// ANY member (leader included) waking a hart whose id falls inside the
// batch's id range - the woken hart is rescheduled after the whole batch
// instead of between the members' turns, so its loads can see member
// stores that a serial interleaving would have ordered after it. The
// kernels in this repo keep per-hart data disjoint and exit from hart 0,
// and the differential tests in iss_test/threading_test enforce exact
// equality of cycles, registers, stalls, and wake timestamps on the
// barrier+MMSE and deadlock workloads. run_threads() batches per shard, so
// a convergence group spanning a shard boundary simply splits at it.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "iss/hart.h"
#include "iss/timing.h"
#include "iss/translation.h"
#include "sim/snapshot.h"
#include "tera/memory.h"

namespace tsim::iss {

struct RunResult {
  bool exited = false;    // program stored to the exit MMIO register
  u32 exit_code = 0;
  bool deadlock = false;  // all live harts asleep with nobody to wake them
  u64 instructions = 0;   // total retired across harts this run
};

/// Statistics of the SPMD convergence-batch dispatch (see the header note).
/// Counters accumulate across runs until Machine::reset_batch_stats(); in
/// run_threads() each shard accumulates locally and merges on join.
struct BatchStats {
  u64 lockstep_instructions = 0;  // retired inside lockstep sweeps
  u64 serial_instructions = 0;    // retired by the serial path (incl. finishes)
  u64 batches = 0;                // lockstep turns entered (width >= 2)
  u64 width_sum = 0;              // formation widths, summed
  u64 width_max = 0;
  u64 runs = 0;                   // superblock sweeps executed in lockstep
  u64 run_entries = 0;            // entries swept, summed (avg run length)
  u64 split_divergence = 0;       // lockstep ended: members' pcs diverged
  u64 split_budget = 0;           //   per-member quantum exhausted
  u64 split_wake = 0;             //   a wake landed in the run list (run())
  u64 split_stop = 0;             //   global stop observed mid-batch
  u64 split_drain = 0;            //   members parked/halted down to < 2
  std::vector<u64> width_hist;    // formations by width (index = width)

  double avg_width() const;
  double avg_run_length() const;
  /// Fraction of all retired instructions that took the lockstep path.
  double lockstep_fraction() const;
  /// Smallest width W with >= p (in 0..1) of formations at width <= W.
  u64 width_percentile(double p) const;
  void merge(const BatchStats& other);
};

class Machine {
 public:
  /// Constructs a machine with `active_harts` live cores (0 = all cores of
  /// the cluster configuration).
  Machine(const tera::TeraPoolConfig& cluster, TimingConfig timing = {},
          u32 active_harts = 0);

  tera::ClusterMemory& memory() { return *mem_; }
  const tera::ClusterMemory& memory() const { return *mem_; }

  /// Handle to a resident program (index into this machine's cache).
  using ProgramHandle = u32;
  static constexpr ProgramHandle kNoProgram = ~0u;

  /// Loads the program and resets harts to its "_start" symbol. The program
  /// stays resident: a second load of a content-identical program reuses the
  /// cached translation (see the header comment) and returns the same
  /// handle. Translation happens at most once per distinct program.
  ProgramHandle load_program(const rvasm::Program& prog);

  /// Makes a resident program active: swaps the translation table, restores
  /// the program's initial memory image (skipped when `handle` is already
  /// active), and resets harts to its entry point. No retranslation.
  void select_program(ProgramHandle handle);

  /// Handle of the active program (kNoProgram before any load).
  ProgramHandle active_program() const { return active_; }
  /// Distinct programs held resident by this machine.
  size_t num_resident_programs() const { return resident_.size(); }
  /// Image-restoring program switches performed (cache hits and misses both
  /// count when they rewrite the image; no-op reselects do not).
  u64 program_switches() const { return program_switches_; }

  /// Re-arms all harts at the entry point (keeps memory and translation).
  void reset_harts();

  /// Runs until exit, deadlock, or `max_instructions` (0 = unlimited).
  /// Every field of the RunResult is populated on every return path.
  RunResult run(u64 max_instructions = 0);

  /// Runs with harts sharded across `n_threads` host threads, stopping after
  /// `max_instructions` total retired instructions (0 = unlimited; the
  /// budget is shared across shards and never overshoots).
  RunResult run_threads(u32 n_threads, u64 max_instructions = 0);

  u32 num_harts() const { return soa_.size(); }
  /// Value snapshot of hart `i`, assembled from the SoA state (hart.h).
  Hart hart(u32 i) const { return soa_.snapshot(i); }
  const TimingConfig& timing() const { return timing_; }

  /// Harts per convergence batch, capped to bound the lockstep working set
  /// (member state must stay L1-resident across an instruction sweep).
  static constexpr u32 kMaxBatchWidth = 64;

  /// Enables/disables the convergence-batched SPMD dispatch (default on).
  /// The serial path is the bit-exactness oracle; disabling it is for A/B
  /// benchmarking and the differential tests.
  void set_batching(bool on) { batching_ = on; }
  bool batching() const { return batching_; }
  /// Batch-efficiency counters (see BatchStats). Read between runs only;
  /// counters accumulate only while batching is enabled, so A/B runs with
  /// set_batching(false) leave them untouched.
  const BatchStats& batch_stats() const { return bstats_; }
  void reset_batch_stats();

  // ---- deterministic fault injection (see sim/fault.h) ----
  /// Schedules a fault on `hart`, applied when its retired-instruction count
  /// reaches `at_instret` during a later run(): a transient trap (the hart
  /// halts with trapped set, exactly like an architectural fault) or a
  /// stuck-hart hang (the hart parks forever and ignores wakes, so peers
  /// waiting on it at a barrier deadlock - which run() detects and reports).
  /// Faults persist across reset_harts() (each reset re-arms them, so a
  /// faulted run is re-runnable bit-for-bit) until clear_hart_faults().
  /// Armed faults disable the convergence-batch fast path - the serial
  /// oracle applies them at exact instruction boundaries - and are supported
  /// on the single-threaded run() only (run_threads refuses). A fault whose
  /// at_instret the hart never reaches simply does not fire. When no fault
  /// is armed every hook is one cold branch per scheduler turn: the hot loop
  /// is untouched (pinned by bench_iss_mips --guard).
  void inject_hart_fault(u32 hart, u64 at_instret, bool hang);
  /// Clears every scheduled hart fault (pending and applied).
  void clear_hart_faults();
  /// Faults applied since the last clear_hart_faults()/reset_harts().
  u32 hart_faults_applied() const { return faults_applied_; }
  bool hart_faults_armed() const { return faults_armed_; }

  // ---- event-driven fast-forward (deterministic wake events) ----
  /// Schedules a wake event: hart `hart` (~0u = every hart) is woken at
  /// absolute cycle `at_cycle`, exactly as if a peer's MMIO wake store had
  /// issued at that cycle (wake_cycle = at_cycle; the sleeper resumes at
  /// at_cycle + barrier_wake_cost with the wfi stall charged in full). When
  /// run()'s awake list drains while events are pending, the machine does
  /// NOT spin or report deadlock: it jumps straight to the earliest pending
  /// event in O(1) host work and fires every event scheduled at that cycle -
  /// the timer/DMA-completion quiescence skip for long idle windows. Cycle
  /// accounting is identical to a cycle-by-cycle wait for the same wake.
  /// Events that never find a sleeping hart are dropped at run end.
  /// Single-threaded run() only (run_threads refuses, like hart faults);
  /// reset_harts() clears pending events, and save_state refuses to capture
  /// with events pending (fire or drop them first).
  void schedule_wake_at(u32 hart, u64 at_cycle);
  /// Pending (unfired) wake events.
  size_t pending_wake_events() const { return wake_events_.size(); }
  /// All-asleep quiescence jumps run() performed via pending wake events.
  u64 idle_jumps() const { return idle_jumps_; }

  /// Per-instruction trace hook: called before each instruction executes
  /// with (hart id, pc, decoded instruction). Intended for debugging and
  /// trace tooling; when set, execution takes the per-instruction reference
  /// path instead of the superblock fast path (bit-identical results, see
  /// translation.h). Only meaningful with single-threaded run().
  using TraceFn = std::function<void(u32 hart, u32 pc, const rv::Decoded&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  // ---- checkpoint/restore (sim/snapshot.h) ----
  /// Serializes the machine's complete simulation state: the resident-
  /// program table (base, entry pc and image words - retranslated and
  /// re-bound by program_fingerprint on restore), the active-program
  /// selection, full memory contents, every HartArrays column, per-hart
  /// sleep states, the stop/exit flags, and the hart-fault schedule
  /// including armed-but-unfired entries. Callable only between runs -
  /// run()/run_threads() normalize every hart to a serial instruction
  /// boundary before returning, so there is no in-flight batch or run-list
  /// state to capture (both are rebuilt from hart state on the next run).
  /// Host-only counters (BatchStats) are deliberately excluded: they do not
  /// influence simulation results.
  void save_state(sim::SnapshotWriter& w) const;
  /// Restores a save_state capture into a machine constructed with the same
  /// configuration (hart count and memory geometry are checked). The
  /// resident table is rebuilt deterministically from the serialized
  /// (base, entry, image) triples - translation is a pure function of those
  /// - and each rebuilt program's fingerprint must match the recorded key,
  /// so a corrupt image can never be silently re-bound. Continuing the
  /// restored machine is bit-identical to continuing the original
  /// (tests/snapshot_test.cpp). Throws sim::SnapshotError on any mismatch.
  void restore_state(sim::SnapshotReader& r);

  /// Aggregate retired instructions over all harts.
  u64 total_instructions() const;
  /// Parallel-program cycle estimate: max per-hart cycle count.
  u64 estimated_cycles() const;
  /// Sum of per-hart estimated cycles (single-stream comparisons).
  u64 total_cycles() const;

 private:
  enum class SleepState : u8 { kAwake = 0, kSleeping = 1, kWakePending = 2 };

  /// Why a hart's scheduler turn ended.
  enum class TurnEnd : u8 {
    kBudget = 0,  // quantum/budget exhausted; still runnable
    kAsleep,      // parked in wfi; re-inserted by a wake
    kHalted,      // ebreak / trap; never runs again
    kStopped,     // global stop_ observed (exit or external)
  };

  /// Per-follower outcome of a replay turn (see the header note).
  enum class BatchEnd : u8 {
    kRun = 0,  // replay ended early; finish the turn on the serial path
    kBudget,   // quantum fully consumed in replay; turn over, runnable
    kAsleep,   // parked in wfi during replay
    kHalted,   // ebreak / trap during replay
    kStopped,  // global stop observed; turn over
  };

  /// One superblock run retired by a recorded leader turn.
  struct TraceRun {
    const SbEntry* base;  // first entry of the run
    u32 pc;               // pc of `base` (the followers' convergence check)
    u32 n;                // instructions the leader retired in this run
  };

  /// Shared body of exec_quantum / exec_quantum_record.
  template <bool kRecord>
  u64 exec_quantum_impl(u32 hart_index, u64 budget, TurnEnd& end,
                        std::vector<TraceRun>* trace);
  /// Runs hart `h` for up to `budget` instructions on the superblock fast
  /// path. Returns instructions retired and sets `end`.
  u64 exec_quantum(u32 hart_index, u64 budget, TurnEnd& end);
  /// Same turn, additionally appending the retired superblock runs to
  /// `trace` (the convergence-batch leader path; `trace` must arrive empty).
  u64 exec_quantum_record(u32 hart_index, u64 budget, TurnEnd& end,
                          std::vector<TraceRun>& trace);
  /// Per-instruction reference path (used when a trace hook is set; also the
  /// bit-exactness oracle for the superblock path).
  u64 exec_quantum_traced(u32 hart_index, u64 budget, TurnEnd& end);
  /// Replays a leader trace across followers `ids[0..count)` in lockstep,
  /// instruction-major, hart-minor (see header note). Fills `ends[k]` per
  /// formation index, and for kRun followers the unconsumed turn budget in
  /// `rems[k]`. Returns instructions retired. Does NOT touch any run list -
  /// the caller reconciles membership and finishes kRun followers serially.
  u64 exec_followers_replay(const u32* ids, u32 count, u64 budget,
                            const std::vector<TraceRun>& trace, BatchEnd* ends,
                            u64* rems, BatchStats& stats);
  /// Width of the convergence batch at `list[pos..]`: consecutive harts at
  /// the same pc, capped at `limit`.
  u32 scan_convergent(const std::vector<u32>& list, size_t pos, u32 limit) const;
  /// Shared member-reconcile of a convergence-batch turn (both run modes):
  /// walks the members in formation (= serial visit) order, re-locating
  /// each by id in the sorted `list`, applies its BatchEnd via the two
  /// mode-specific callbacks, and finishes kRun members serially with their
  /// remaining budget. `erase_at(pos, halted)` erases `list[pos]` and does
  /// the mode's accounting (scan-position shift, awake/live counters);
  /// `advance_to(pos)` sets the mode's scan position. Returns instructions
  /// retired by the serial finishes. Defined in machine.cpp (only used
  /// there).
  template <typename EraseFn, typename AdvanceFn>
  u64 reconcile_batch(const u32* ids, u32 width, TurnEnd leader_end,
                      const BatchEnd* follower_ends, const u64* rems,
                      const std::vector<u32>& list, BatchStats& stats,
                      EraseFn&& erase_at, AdvanceFn&& advance_to);

  /// Shared wfi bookkeeping after an instruction entered wfi. Returns true
  /// if the hart is now asleep (turn over), false if a pending wake was
  /// consumed and the hart keeps running.
  bool park_in_wfi(u32 hart_index);
  /// Applies the wake-to-resume cycle accounting when a woken hart is
  /// scheduled again.
  void resume_from_wfi(u32 hart_index);

  void on_exit(u32 code);
  void on_wake(u32 target, u64 waker_cycle);

  /// One resident program: everything needed to reactivate it without
  /// retranslating. unique_ptr keeps addresses stable across cache growth,
  /// so tcache_ can point straight into the active entry.
  struct ResidentProgram {
    u64 key = 0;             // program_fingerprint of the image
    u32 base = 0;            // load address
    u32 entry_pc = 0;        // "_start" (or base)
    std::vector<u32> image;  // initial memory image, restored on select
    TranslationCache tcache;
  };

  tera::TeraPoolConfig cluster_;
  TimingConfig timing_;
  std::unique_ptr<tera::ClusterMemory> mem_;
  std::vector<std::unique_ptr<ResidentProgram>> resident_;
  ProgramHandle active_ = kNoProgram;
  const TranslationCache* tcache_;  // active program's cache (never null)
  u64 program_switches_ = 0;
  u32 entry_pc_ = 0;
  HartArrays soa_;  // per-hart state, structure-of-arrays (see hart.h)
  std::vector<std::atomic<u8>> sleep_;  // SleepState per hart
  std::atomic<bool> stop_{false};
  std::atomic<u32> exit_code_{0};
  std::atomic<bool> exited_{false};
  TraceFn trace_;

  // ---- event-driven fast-forward ----
  struct WakeEvent {
    u64 at_cycle = 0;
    u32 hart = 0;  // ~0u = broadcast
  };
  /// Fires every pending event at the earliest scheduled cycle, repeating
  /// until a hart actually wakes or the queue drains. Returns true when the
  /// run list was refilled. run() only.
  bool fire_wake_events();
  std::vector<WakeEvent> wake_events_;  // sorted by (at_cycle, hart)
  u64 idle_jumps_ = 0;

  // ---- deterministic fault injection ----
  struct HartFault {
    u32 hart = 0;
    u64 at_instret = 0;
    bool hang = false;
    bool applied = false;
  };
  /// Applies fault `f` to its (runnable) hart at a turn boundary.
  void apply_hart_fault(HartFault& f);
  bool faults_armed_ = false;  // any fault scheduled (cold-path gate)
  std::vector<HartFault> hart_faults_;
  std::vector<u8> hart_hung_;  // lanes stuck by an applied hang fault
  u32 faults_applied_ = 0;

  // ---- convergence batching ----
  bool batching_ = true;
  BatchStats bstats_;
  std::mutex bstats_mutex_;          // run_threads shards merge their stats
  bool st_batch_active_ = false;     // run(): follower replay in progress
  bool st_batch_wake_ = false;       // run(): a wake hit st_awake_ mid-replay
  std::vector<TraceRun> st_trace_;   // run(): leader-trace scratch

  // ---- single-threaded run() scheduler state ----
  // The sorted awake-hart list; on_wake inserts woken harts directly (same
  // host thread), preserving the exact visit order of a scan-all-harts
  // round-robin, so cycle results are bit-identical to the previous
  // implementation. No atomic sleep-state loads on this path.
  bool st_mode_ = false;
  std::vector<u32> st_awake_;
  size_t st_pos_ = 0;

  // ---- run_threads() scheduler state ----
  // Each shard owns a run list; cross-thread wakes go through the target
  // shard's mutex-protected inbox (wakes are rare: barrier releases).
  // awake/pending counters give exact deadlock detection via the ordered
  // triple-read snapshot in the worker loop (see machine.cpp).
  struct WakeInbox {
    std::mutex m;
    std::vector<u32> ids;
    std::atomic<u32> count{0};
  };
  bool mt_mode_ = false;
  u32 shard_size_ = 1;
  std::unique_ptr<WakeInbox[]> inboxes_;
  std::atomic<u32> awake_count_{0};
  std::atomic<u32> pending_wakes_{0};
  std::atomic<i64> budget_left_{0};  // run_threads max_instructions pool
};

}  // namespace tsim::iss
