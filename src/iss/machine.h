// The fast ISS machine: N harts over one ClusterMemory, executing a
// predecoded (translated) program with the static-latency timing model.
//
// Run modes mirror Banshee's:
//  - run():           deterministic single-host-thread round-robin.
//  - run_threads(n):  harts sharded over n host threads, synchronizing only
//                     through the DUT program's own atomics and wfi/wake.
//
// Per-hart cycle estimates depend only on that hart's instruction stream
// plus barrier wake times. Functional results are independent of the host
// scheduling (verified by test); cycle estimates agree up to a few cycles of
// barrier-wake jitter, because which hart's amoadd arrives last - and hence
// whose cycle timestamps the wake - is resolved by the physical race, as on
// the real hardware.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "iss/hart.h"
#include "iss/timing.h"
#include "iss/translation.h"
#include "tera/memory.h"

namespace tsim::iss {

struct RunResult {
  bool exited = false;    // program stored to the exit MMIO register
  u32 exit_code = 0;
  bool deadlock = false;  // all live harts asleep with nobody to wake them
  u64 instructions = 0;   // total retired across harts this run
};

class Machine {
 public:
  /// Constructs a machine with `active_harts` live cores (0 = all cores of
  /// the cluster configuration).
  Machine(const tera::TeraPoolConfig& cluster, TimingConfig timing = {},
          u32 active_harts = 0);

  tera::ClusterMemory& memory() { return *mem_; }
  const tera::ClusterMemory& memory() const { return *mem_; }

  /// Loads and translates the program; harts reset to its "_start" symbol.
  void load_program(const rvasm::Program& prog);

  /// Re-arms all harts at the entry point (keeps memory and translation).
  void reset_harts();

  /// Runs until exit, deadlock, or `max_instructions` (0 = unlimited).
  RunResult run(u64 max_instructions = 0);

  /// Runs with harts sharded across `n_threads` host threads.
  RunResult run_threads(u32 n_threads);

  u32 num_harts() const { return static_cast<u32>(harts_.size()); }
  const Hart& hart(u32 i) const { return harts_[i]; }
  const TimingConfig& timing() const { return timing_; }

  /// Per-instruction trace hook: called before each instruction executes
  /// with (hart id, pc, decoded instruction). Intended for debugging and
  /// trace tooling; adds one predictable branch when unset. Only meaningful
  /// with single-threaded run().
  using TraceFn = std::function<void(u32 hart, u32 pc, const rv::Decoded&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Aggregate retired instructions over all harts.
  u64 total_instructions() const;
  /// Parallel-program cycle estimate: max per-hart cycle count.
  u64 estimated_cycles() const;
  /// Sum of per-hart estimated cycles (single-stream comparisons).
  u64 total_cycles() const;

 private:
  enum class SleepState : u8 { kAwake = 0, kSleeping = 1, kWakePending = 2 };

  /// Executes one instruction on hart `h`. Returns false when the hart can
  /// make no further progress now (halted or just went to sleep).
  bool step(u32 hart_index);

  void on_exit(u32 code);
  void on_wake(u32 target, u64 waker_cycle);
  /// True if every live hart is asleep (deadlock when nobody will wake them).
  bool all_asleep() const;

  tera::TeraPoolConfig cluster_;
  TimingConfig timing_;
  const rv::InstrDef* isa_defs_ = rv::isa_table().data();
  std::unique_ptr<tera::ClusterMemory> mem_;
  TranslationCache tcache_;
  u32 entry_pc_ = 0;
  std::vector<Hart> harts_;
  std::vector<std::atomic<u8>> sleep_;  // SleepState per hart
  std::atomic<bool> stop_{false};
  std::atomic<u32> exit_code_{0};
  std::atomic<bool> exited_{false};
  TraceFn trace_;
};

}  // namespace tsim::iss
