// The fast ISS machine: N harts over one ClusterMemory, executing a
// predecoded (translated) program with the static-latency timing model.
//
// Run modes mirror Banshee's:
//  - run():           deterministic single-host-thread round-robin.
//  - run_threads(n):  harts sharded over n host threads, synchronizing only
//                     through the DUT program's own atomics and wfi/wake.
//
// Hot-loop design: both run modes schedule only *awake* harts. Each
// scheduler keeps a run list of runnable hart ids; a hart leaves the list
// when it halts or parks in wfi and is re-inserted by the MMIO wake handler
// (run()) or a per-shard wake inbox (run_threads()), so a barrier-heavy
// 1024-hart phase costs O(awake) per pass instead of O(num_harts).
// Within a hart's turn, instructions are retired superblock-at-a-time from
// the TranslationCache (see translation.h): one pc lookup per straight-line
// run, with the ISA-table properties folded into the predecoded entries.
//
// Per-hart cycle estimates depend only on that hart's instruction stream
// plus barrier wake times. Functional results are independent of the host
// scheduling (verified by test); cycle estimates agree up to a few cycles of
// barrier-wake jitter, because which hart's amoadd arrives last - and hence
// whose cycle timestamps the wake - is resolved by the physical race, as on
// the real hardware.
//
// Resident-program cache: load_program() keys programs by content identity
// (iss::program_fingerprint + full word compare) and keeps every program it
// has ever translated resident - translation cache, initial memory image,
// and entry point. Loading a program that is already resident degenerates to
// select_program(): the active translation table is swapped and the image
// rewritten (a memcpy-sized host cost), with NO retranslation; reloading the
// program that is already active is a pure reset_harts(). This makes
// cluster-level program ping-pong (the RAN scheduler switching UE
// geometries between batches) nearly free on the host. Contract: resident
// programs must not store into their own image range if they are to be
// re-selected without an explicit reload - the kernel programs in this repo
// keep all mutable data in L1, while images live in L2.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "iss/hart.h"
#include "iss/timing.h"
#include "iss/translation.h"
#include "tera/memory.h"

namespace tsim::iss {

struct RunResult {
  bool exited = false;    // program stored to the exit MMIO register
  u32 exit_code = 0;
  bool deadlock = false;  // all live harts asleep with nobody to wake them
  u64 instructions = 0;   // total retired across harts this run
};

class Machine {
 public:
  /// Constructs a machine with `active_harts` live cores (0 = all cores of
  /// the cluster configuration).
  Machine(const tera::TeraPoolConfig& cluster, TimingConfig timing = {},
          u32 active_harts = 0);

  tera::ClusterMemory& memory() { return *mem_; }
  const tera::ClusterMemory& memory() const { return *mem_; }

  /// Handle to a resident program (index into this machine's cache).
  using ProgramHandle = u32;
  static constexpr ProgramHandle kNoProgram = ~0u;

  /// Loads the program and resets harts to its "_start" symbol. The program
  /// stays resident: a second load of a content-identical program reuses the
  /// cached translation (see the header comment) and returns the same
  /// handle. Translation happens at most once per distinct program.
  ProgramHandle load_program(const rvasm::Program& prog);

  /// Makes a resident program active: swaps the translation table, restores
  /// the program's initial memory image (skipped when `handle` is already
  /// active), and resets harts to its entry point. No retranslation.
  void select_program(ProgramHandle handle);

  /// Handle of the active program (kNoProgram before any load).
  ProgramHandle active_program() const { return active_; }
  /// Distinct programs held resident by this machine.
  size_t num_resident_programs() const { return resident_.size(); }
  /// Image-restoring program switches performed (cache hits and misses both
  /// count when they rewrite the image; no-op reselects do not).
  u64 program_switches() const { return program_switches_; }

  /// Re-arms all harts at the entry point (keeps memory and translation).
  void reset_harts();

  /// Runs until exit, deadlock, or `max_instructions` (0 = unlimited).
  /// Every field of the RunResult is populated on every return path.
  RunResult run(u64 max_instructions = 0);

  /// Runs with harts sharded across `n_threads` host threads, stopping after
  /// `max_instructions` total retired instructions (0 = unlimited; the
  /// budget is shared across shards and never overshoots).
  RunResult run_threads(u32 n_threads, u64 max_instructions = 0);

  u32 num_harts() const { return static_cast<u32>(harts_.size()); }
  const Hart& hart(u32 i) const { return harts_[i]; }
  const TimingConfig& timing() const { return timing_; }

  /// Per-instruction trace hook: called before each instruction executes
  /// with (hart id, pc, decoded instruction). Intended for debugging and
  /// trace tooling; when set, execution takes the per-instruction reference
  /// path instead of the superblock fast path (bit-identical results, see
  /// translation.h). Only meaningful with single-threaded run().
  using TraceFn = std::function<void(u32 hart, u32 pc, const rv::Decoded&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Aggregate retired instructions over all harts.
  u64 total_instructions() const;
  /// Parallel-program cycle estimate: max per-hart cycle count.
  u64 estimated_cycles() const;
  /// Sum of per-hart estimated cycles (single-stream comparisons).
  u64 total_cycles() const;

 private:
  enum class SleepState : u8 { kAwake = 0, kSleeping = 1, kWakePending = 2 };

  /// Why a hart's scheduler turn ended.
  enum class TurnEnd : u8 {
    kBudget = 0,  // quantum/budget exhausted; still runnable
    kAsleep,      // parked in wfi; re-inserted by a wake
    kHalted,      // ebreak / trap; never runs again
    kStopped,     // global stop_ observed (exit or external)
  };

  /// Runs hart `h` for up to `budget` instructions on the superblock fast
  /// path. Returns instructions retired and sets `end`.
  u64 exec_quantum(u32 hart_index, u64 budget, TurnEnd& end);
  /// Per-instruction reference path (used when a trace hook is set; also the
  /// bit-exactness oracle for the superblock path).
  u64 exec_quantum_traced(u32 hart_index, u64 budget, TurnEnd& end);

  /// Shared wfi bookkeeping after an instruction entered wfi. Returns true
  /// if the hart is now asleep (turn over), false if a pending wake was
  /// consumed and the hart keeps running.
  bool park_in_wfi(u32 hart_index);
  /// Applies the wake-to-resume cycle accounting when a woken hart is
  /// scheduled again.
  void resume_from_wfi(u32 hart_index);

  void on_exit(u32 code);
  void on_wake(u32 target, u64 waker_cycle);

  /// One resident program: everything needed to reactivate it without
  /// retranslating. unique_ptr keeps addresses stable across cache growth,
  /// so tcache_ can point straight into the active entry.
  struct ResidentProgram {
    u64 key = 0;             // program_fingerprint of the image
    u32 base = 0;            // load address
    u32 entry_pc = 0;        // "_start" (or base)
    std::vector<u32> image;  // initial memory image, restored on select
    TranslationCache tcache;
  };

  tera::TeraPoolConfig cluster_;
  TimingConfig timing_;
  std::unique_ptr<tera::ClusterMemory> mem_;
  std::vector<std::unique_ptr<ResidentProgram>> resident_;
  ProgramHandle active_ = kNoProgram;
  const TranslationCache* tcache_;  // active program's cache (never null)
  u64 program_switches_ = 0;
  u32 entry_pc_ = 0;
  std::vector<Hart> harts_;
  std::vector<std::atomic<u8>> sleep_;  // SleepState per hart
  std::atomic<bool> stop_{false};
  std::atomic<u32> exit_code_{0};
  std::atomic<bool> exited_{false};
  TraceFn trace_;

  // ---- single-threaded run() scheduler state ----
  // The sorted awake-hart list; on_wake inserts woken harts directly (same
  // host thread), preserving the exact visit order of a scan-all-harts
  // round-robin, so cycle results are bit-identical to the previous
  // implementation. No atomic sleep-state loads on this path.
  bool st_mode_ = false;
  std::vector<u32> st_awake_;
  size_t st_pos_ = 0;

  // ---- run_threads() scheduler state ----
  // Each shard owns a run list; cross-thread wakes go through the target
  // shard's mutex-protected inbox (wakes are rare: barrier releases).
  // awake/pending counters give exact deadlock detection via the ordered
  // triple-read snapshot in the worker loop (see machine.cpp).
  struct WakeInbox {
    std::mutex m;
    std::vector<u32> ids;
    std::atomic<u32> count{0};
  };
  bool mt_mode_ = false;
  u32 shard_size_ = 1;
  std::unique_ptr<WakeInbox[]> inboxes_;
  std::atomic<u32> awake_count_{0};
  std::atomic<u32> pending_wakes_{0};
  std::atomic<i64> budget_left_{0};  // run_threads max_instructions pool
};

}  // namespace tsim::iss
