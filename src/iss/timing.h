// Static timing model of the fast ISS (paper Sec. III-B).
//
// Banshee "assigns a static latency to each instruction to estimate the
// program runtime" and "implements a scoreboard that keeps track of the RAW
// dependencies": issuing a consumer before its producer's result latency has
// elapsed stalls the hart. Memory transactions conservatively receive the
// largest zero-contention access latency (9 cycles) regardless of NUMA
// distance; both the value and the NUMA-aware alternative are exposed for
// the ablation benches.
//
// Locality contract: the model is strictly per-hart. An instruction's issue
// and retire timing read only (a) these config constants, (b) the SbEntry's
// translation-time constants, and (c) the executing hart's own state
// (cycle, scoreboard, wake timestamp) - never another hart's. This is what
// makes the SPMD convergence-batch dispatch (machine.h) cycle-exact: the
// instruction-major member sweep evaluates the same arithmetic per hart in
// a different global order, and the per-entry terms (b) are hoisted out of
// the member loop without changing any per-hart result. Keep new timing
// terms per-hart, or teach the batched sweep about them explicitly.
#pragma once

#include "common/types.h"

namespace tsim::iss {

struct TimingConfig {
  bool scoreboard = true;        // RAW dependency tracking (ablation: off)
  bool numa_latency = false;     // ablation: use real NUMA distance instead
  u32 static_mem_latency = 9;    // cycles charged to every L1 transaction
  u32 l2_latency = 25;           // cycles for L2 transactions
  u32 branch_taken_penalty = 2;  // pipeline refill on taken control flow
  u32 barrier_wake_cost = 2;     // cycles from wake store to sleeper resume
};

}  // namespace tsim::iss
