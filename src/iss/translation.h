// Translation cache: the SBT analog of this repo.
//
// Banshee translates the RISC-V binary once (to LLVM IR, then host code).
// Offline we cannot JIT, so the equivalent one-time work is predecoding
// every program word into its dense `rv::Decoded` form; emulation then
// dispatches on the predecoded array with no per-step decode cost. The
// ablation bench `bench_ablation_translation` quantifies the speedup over
// decode-every-step interpretation.
#pragma once

#include <vector>

#include "common/error.h"
#include "rv/decode.h"
#include "rvasm/program.h"

namespace tsim::iss {

class TranslationCache {
 public:
  TranslationCache() = default;

  /// Predecodes the full program image.
  explicit TranslationCache(const rvasm::Program& prog)
      : base_(prog.base), decoded_(prog.words.size()) {
    for (size_t i = 0; i < prog.words.size(); ++i) decoded_[i] = rv::decode(prog.words[i]);
  }

  /// Decoded instruction at `pc`; nullptr when pc leaves the translated image.
  const rv::Decoded* lookup(u32 pc) const {
    const u32 off = pc - base_;
    if ((off & 3) != 0 || off / 4 >= decoded_.size()) return nullptr;
    return &decoded_[off / 4];
  }

  u32 base() const { return base_; }
  size_t size() const { return decoded_.size(); }

 private:
  u32 base_ = 0;
  std::vector<rv::Decoded> decoded_;
};

}  // namespace tsim::iss
