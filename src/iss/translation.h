// Translation cache: the SBT analog of this repo.
//
// Banshee translates the RISC-V binary once (to LLVM IR, then host code).
// Offline we cannot JIT, so the equivalent one-time work is predecoding
// every program word into its dense `rv::Decoded` form; emulation then
// dispatches on the predecoded array with no per-step decode cost. The
// ablation bench `bench_ablation_translation` quantifies the speedup over
// decode-every-step interpretation.
//
// Superblocks
// -----------
// On top of the plain predecode, the cache groups instructions into
// *superblocks*: maximal straight-line runs ending at the next instruction
// that can redirect control or change the hart's run state (branch, jal,
// jalr, wfi, ebreak, invalid word, or the end of the image). Each `SbEntry`
// carries
//   - the decoded operands,
//   - `run_len`: how many instructions remain in the superblock including
//     this one, so the ISS hot loop can retire a whole run with a single
//     pc-to-entry lookup and advance by pointer increment, and
//   - the per-instruction static properties the timing model needs
//     (issue cycles, result latency, mix class, and the writes-rd /
//     post-increment / reads-rd-as-source / R4 / store flags), folded in at
//     translation time so `Machine` never touches `rv::isa_table()` or
//     re-derives format properties per step.
// Only the *last* instruction of a run may branch or enter wfi; any
// instruction may still fault (misaligned or unmapped access), which the
// executor detects via the hart's `halted` flag. Bit-exactness with the
// per-instruction reference path is enforced by `iss_test.cpp` /
// `threading_test.cpp` (same registers, memory, and cycle counts).
//
// Pointer stability and the convergence-batch consumer
// ----------------------------------------------------
// `entry()` returns pointers into the immutable `entries_` array; the array
// is built once per program and never mutated or reallocated afterwards,
// and Machine keeps every translated program resident for its lifetime
// (machine.h). The SPMD convergence-batch dispatcher relies on this: a
// batch leader's recorded trace holds raw `SbEntry*` run bases that the
// follower replay dereferences after the leader's turn completes, and a
// single `SbEntry` is read ONCE per lockstep sweep (then applied to every
// batch member), which is where the per-hart metadata-read amortization of
// the batched path comes from. Any future cache eviction or in-place
// re-translation scheme must invalidate in-flight traces first.
#pragma once

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "rv/decode.h"
#include "rv/inst.h"
#include "rvasm/program.h"

namespace tsim::iss {

/// Entry point of a program: its "_start" symbol, or the base address when
/// the symbol is absent. Part of the program's execution identity.
inline u32 program_entry_pc(const rvasm::Program& prog) {
  const auto it = prog.symbols.find("_start");
  return it != prog.symbols.end() ? it->second : prog.base;
}

/// Content identity of a program: FNV-1a over the base address, the entry
/// point, and every image word. Machine keys its resident-program cache on
/// this (plus a full compare on hash match), so loading a structurally
/// identical program - even a distinct rvasm::Program object - finds the
/// already translated resident entry instead of retranslating. The entry pc
/// is part of the identity: two identical images whose "_start" symbols
/// differ execute differently.
inline u64 program_fingerprint(const rvasm::Program& prog) {
  u64 h = 1469598103934665603ull;  // FNV offset basis
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  mix(prog.base);
  mix(program_entry_pc(prog));
  mix(prog.words.size());
  for (const u32 w : prog.words) mix(w);
  return h;
}

/// One predecoded instruction with its superblock and timing metadata.
struct SbEntry {
  rv::Decoded d;
  u16 run_len = 1;        // instructions to the end of the superblock (>= 1)
  u8 flags = 0;           // kSb* bitmask below
  u8 issue_cycles = 1;    // from rv::InstrDef
  u8 result_latency = 1;  // from rv::InstrDef
  u8 mix = 0;             // rv::Mix as raw index
};

// SbEntry::flags bits.
constexpr u8 kSbWritesRd = 1u << 0;     // format writes a destination register
constexpr u8 kSbPostIncLoad = 1u << 1;  // post-increment load: rs1 ready at issue+1
constexpr u8 kSbReadsRdSrc = 1u << 2;   // rd is an implicit source (scoreboard)
constexpr u8 kSbReadsRs3 = 1u << 3;     // R4 format: scoreboard must check rs3
constexpr u8 kSbStore = 1u << 4;  // may store (incl. sc.w): can hit MMIO wake

class TranslationCache {
 public:
  TranslationCache() = default;

  /// Predecodes the full program image and computes superblock runs.
  explicit TranslationCache(const rvasm::Program& prog)
      : base_(prog.base), entries_(prog.words.size()) {
    for (size_t i = 0; i < prog.words.size(); ++i) {
      SbEntry& e = entries_[i];
      e.d = rv::decode(prog.words[i]);
      const rv::InstrDef& def = rv::def_of(e.d.op);
      e.issue_cycles = def.issue_cycles;
      e.result_latency = def.result_latency;
      e.mix = static_cast<u8>(def.mix);
      e.flags = 0;
      if (format_writes_rd(def.fmt)) e.flags |= kSbWritesRd;
      if (is_post_increment_load(e.d.op)) e.flags |= kSbPostIncLoad;
      if (rv::reads_rd(e.d.op)) e.flags |= kSbReadsRdSrc;
      if (def.fmt == rv::Fmt::kR4) e.flags |= kSbReadsRs3;
      // Everything that can reach ClusterMemory::store - and hence the MMIO
      // wake register, whose handler timestamps with t_current_cycle: the
      // store-class ops plus sc.w (classified kAmo but stores on success).
      if (def.mix == rv::Mix::kStore || e.d.op == rv::Op::kScW)
        e.flags |= kSbStore;
    }
    // Backward pass: run lengths up to the next control/run-state boundary.
    // Runs never extend INTO an invalid word: the executor halts a hart at
    // an invalid instruction without retiring it (no instret/cycle side
    // effects), which it can only do when the invalid entry heads its own
    // run and is caught by the head-of-run check.
    for (size_t i = entries_.size(); i-- > 0;) {
      if (i + 1 == entries_.size() || is_terminator(entries_[i].d.op) ||
          entries_[i + 1].d.op == rv::Op::kInvalid) {
        entries_[i].run_len = 1;
      } else {
        entries_[i].run_len = static_cast<u16>(
            std::min<u32>(entries_[i + 1].run_len + 1u, 0xFFFFu));
      }
    }
  }

  /// Decoded instruction at `pc`; nullptr when pc leaves the translated image.
  const rv::Decoded* lookup(u32 pc) const {
    const SbEntry* e = entry(pc);
    return e != nullptr ? &e->d : nullptr;
  }

  /// Superblock entry at `pc`; nullptr when pc leaves the translated image.
  /// The returned pointer is valid for `run_len` consecutive entries.
  const SbEntry* entry(u32 pc) const {
    const u32 off = pc - base_;
    if ((off & 3) != 0 || off / 4 >= entries_.size()) return nullptr;
    return &entries_[off / 4];
  }

  u32 base() const { return base_; }
  size_t size() const { return entries_.size(); }

  /// True for instructions that may end a superblock: anything that can
  /// redirect pc or change the hart's run state.
  static constexpr bool is_terminator(rv::Op op) {
    switch (op) {
      case rv::Op::kJal:
      case rv::Op::kJalr:
      case rv::Op::kBeq:
      case rv::Op::kBne:
      case rv::Op::kBlt:
      case rv::Op::kBge:
      case rv::Op::kBltu:
      case rv::Op::kBgeu:
      case rv::Op::kWfi:
      case rv::Op::kEbreak:
      case rv::Op::kInvalid:
        return true;
      default:
        return false;
    }
  }

  static constexpr bool format_writes_rd(rv::Fmt fmt) {
    switch (fmt) {
      case rv::Fmt::kS:
      case rv::Fmt::kB:
      case rv::Fmt::kNullary:
        return false;
      default:
        return true;
    }
  }

  static constexpr bool is_post_increment_load(rv::Op op) {
    switch (op) {
      case rv::Op::kPLb:
      case rv::Op::kPLbu:
      case rv::Op::kPLh:
      case rv::Op::kPLhu:
      case rv::Op::kPLw:
        return true;
      default:
        return false;
    }
  }

 private:
  u32 base_ = 0;
  std::vector<SbEntry> entries_;
};

}  // namespace tsim::iss
