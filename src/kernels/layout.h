// Shared-L1 data layout of the MMSE workload (paper Fig. 4).
//
// All per-problem data lives in the word-interleaved L1 region: inputs
// (H, y, sigma^2) and outputs (x) in consecutive addresses - matching their
// L2 allocation so DMA needs no element relocation - followed by a scratch
// area per core (G, L, z, w, reciprocal diagonal, stack). Consecutive words
// stripe across all cluster banks, so per-core blocks spread uniformly and
// cores contend only when their strided accesses collide on a bank.
//
// Capacity note (documented deviation, see EXPERIMENTS.md): a 32x32 fp16
// problem needs ~13 KiB of L1 per core; 1024 of them exceed TeraPool's
// 4 MiB. `max_parallel_cores` returns how many single-problem cores fit;
// benches use it to scale the parallel experiments.
//
// This struct is the single source of truth for addresses: the kernel
// generator bakes them into the emitted RISC-V code and the co-simulation
// driver uses them to stage operands and read back results.
#pragma once

#include <algorithm>

#include "common/error.h"
#include "common/types.h"
#include "kernels/precision.h"
#include "tera/addr_map.h"

namespace tsim::kern {

struct MmseLayout {
  u32 ntx = 4;          // transmitting users (matrix order)
  u32 nrx = 4;          // base-station antennas
  Precision prec = Precision::k16Half;
  u32 problems_per_core = 1;  // >1 = batched Monte-Carlo mode (paper Fig. 6)
  u32 num_cores = 1;          // cores running MMSE problems

  /// Execution-shortcut override: when nonzero, only the first active_cores
  /// harts run problems (the rest park in crt0) and the exit barrier counts
  /// active_cores arrivals. Every addressing constant - scratch region base,
  /// strides, the L1 fit - still derives from num_cores, so the generated
  /// program is word-for-word identical to the full layout's except for the
  /// two small immediates (park threshold, barrier count). That textual
  /// identity is what keeps the modeled per-hart timing of the active harts
  /// (including the barrier waker's critical-path tail) bit-equal to the
  /// full run; see SlotScheduler's fast-forward notes. Must be 0 or in
  /// [2, num_cores]: with a single active hart the barrier waker and the
  /// exit hart coincide and the waker's modeled tail changes.
  u32 active_cores = 0;

  tera::TeraPoolConfig cluster;

  // ---- input block, per problem ----
  u32 h_bytes() const { return nrx * ntx * input_elem_bytes(prec); }
  u32 y_bytes() const { return nrx * input_elem_bytes(prec); }
  u32 sigma_bytes() const { return 4; }  // one fp16 value, word-padded
  u32 x_bytes() const { return ntx * kScratchElemBytes; }  // fp16 output

  /// One problem's input+output footprint, word-aligned.
  u32 problem_bytes() const {
    return static_cast<u32>(
        align_up(h_bytes() + y_bytes() + sigma_bytes() + x_bytes(), 4));
  }

  // The barrier counter sits below the data blocks.
  static constexpr u32 kBarrierAddr = tera::kL1InterleavedBase + 0x80;
  static constexpr u32 kInputBase = tera::kL1InterleavedBase + 0x100;

  u32 problem_base(u32 core, u32 problem) const {
    return kInputBase + (core * problems_per_core + problem) * problem_bytes();
  }
  u32 h_addr(u32 core, u32 problem) const { return problem_base(core, problem); }
  u32 y_addr(u32 core, u32 problem) const { return h_addr(core, problem) + h_bytes(); }
  u32 sigma_addr(u32 core, u32 problem) const {
    return y_addr(core, problem) + y_bytes();
  }
  u32 x_addr(u32 core, u32 problem) const {
    return sigma_addr(core, problem) + sigma_bytes();
  }

  // ---- scratch block, per core, above all input blocks ----
  u32 g_bytes() const { return ntx * ntx * kScratchElemBytes; }
  u32 l_bytes() const { return ntx * ntx * kScratchElemBytes; }
  u32 z_bytes() const { return ntx * kScratchElemBytes; }
  u32 w_bytes() const { return ntx * kScratchElemBytes; }
  u32 invd_bytes() const { return static_cast<u32>(align_up(ntx * 2, 4)); }
  /// Per-core profile block: cycle counts of {gram, mvm, chol, fsolve,
  /// bsolve, whole problem} for the most recent problem, written by the
  /// instrumented main() via the mcycle CSR, plus two spare words.
  static constexpr u32 kProfileWords = 8;
  static constexpr u32 kProfileBytes = kProfileWords * 4;
  static constexpr u32 kStackBytes = 512;

  u32 scratch_stride() const {
    return static_cast<u32>(
        align_up(g_bytes() + l_bytes() + z_bytes() + w_bytes() + invd_bytes() +
                     kProfileBytes + kStackBytes,
                 16));
  }
  u32 scratch_region_base() const {
    return static_cast<u32>(
        align_up(kInputBase + static_cast<u64>(num_cores) * problems_per_core *
                                  problem_bytes(),
                 16));
  }
  u32 scratch_base(u32 core) const {
    return scratch_region_base() + core * scratch_stride();
  }
  u32 g_addr(u32 core) const { return scratch_base(core); }
  u32 l_addr(u32 core) const { return g_addr(core) + g_bytes(); }
  u32 z_addr(u32 core) const { return l_addr(core) + l_bytes(); }
  u32 w_addr(u32 core) const { return z_addr(core) + z_bytes(); }
  u32 invd_addr(u32 core) const { return w_addr(core) + w_bytes(); }
  u32 profile_addr(u32 core) const { return invd_addr(core) + invd_bytes(); }
  u32 stack_top(u32 core) const { return scratch_base(core) + scratch_stride(); }

  u64 total_l1_bytes() const {
    return static_cast<u64>(scratch_region_base()) - tera::kL1InterleavedBase +
           static_cast<u64>(num_cores) * scratch_stride();
  }

  /// Validates the layout against the cluster's L1 capacity.
  void validate() const {
    check(num_cores >= 1 && num_cores <= cluster.num_cores(),
          "MmseLayout: core count exceeds the cluster");
    check(ntx >= 2 && ntx <= 64 && nrx >= ntx, "MmseLayout: unsupported MIMO size");
    check(ntx % 2 == 0 && nrx % 2 == 0,
          "MmseLayout: SIMD variants require even antenna counts");
    check(total_l1_bytes() <= cluster.l1_bytes(), "MmseLayout: data overflows L1");
    check(active_cores == 0 ||
              (active_cores >= 2 && active_cores <= num_cores),
          "MmseLayout: active_cores must be 0 (all) or in [2, num_cores]");
  }

  /// Largest number of single-problem cores that fits in L1.
  static u32 max_parallel_cores(const tera::TeraPoolConfig& cluster, u32 ntx, u32 nrx,
                                Precision prec) {
    MmseLayout probe;
    probe.ntx = ntx;
    probe.nrx = nrx;
    probe.prec = prec;
    probe.cluster = cluster;
    probe.problems_per_core = 1;
    const u64 per_core = probe.problem_bytes() + probe.scratch_stride();
    const u64 budget = cluster.l1_bytes() - (kInputBase - tera::kL1InterleavedBase) - 64;
    const u64 fit = budget / per_core;
    return static_cast<u32>(std::min<u64>(fit, cluster.num_cores()));
  }
};

}  // namespace tsim::kern
