#include "kernels/mmse_program.h"

#include <initializer_list>
#include <string>
#include <utility>

#include "kernels/strategy.h"
#include "rv/hart_state.h"

namespace tsim::kern {
namespace {

using rvasm::Asm;
using rv::Op;
using rv::Reg;

constexpr i32 kFp16One = 0x3C00;

/// rd = rs + imm, honoring the 12-bit addi range (falls back to li+add).
void add_imm(Asm& a, Reg rd, Reg rs, i32 imm, Reg scratch) {
  if (imm >= -2048 && imm <= 2047) {
    a.addi(rd, rs, imm);
  } else {
    a.li(scratch, imm);
    a.add(rd, rs, scratch);
  }
}

/// Emits the per-element dot-product steps: load A, load B, MAC.
void emit_steps(Asm& a, MacEmitter& s, u32 count, i32 stride_a, i32 stride_b,
                Conj conj) {
  for (u32 k = 0; k < count; ++k) {
    s.load_a(a, stride_a);
    s.load_b(a, stride_b);
    s.mac(a, conj);
  }
}

/// Emits the inner dot-product over a compile-time element count, either
/// fully unrolled or as a counted loop of `unroll` steps per iteration.
/// Pointers must be preset in t0/t1; clobbers a6.
void emit_dot_imm(Asm& a, MacEmitter& s, u32 elems, i32 stride_a, i32 stride_b,
                  Conj conj, u32 unroll, const std::string& label) {
  const u32 steps = elems / s.elems_per_step();
  check(elems % s.elems_per_step() == 0, "kernelgen: element count not steppable");
  if (unroll == 0 || unroll >= steps) {
    emit_steps(a, s, steps, stride_a, stride_b, conj);
    return;
  }
  check(steps % unroll == 0, "kernelgen: unroll must divide the step count");
  a.li(Reg::a6, static_cast<i32>(steps / unroll));
  a.label(label);
  emit_steps(a, s, unroll, stride_a, stride_b, conj);
  a.addi(Reg::a6, Reg::a6, -1);
  a.bnez(Reg::a6, label);
}

/// Emits the inner dot-product over a runtime element count already in a6
/// (clobbered). Single-step body; elems_per_step must be 1.
void emit_dot_reg(Asm& a, MacEmitter& s, i32 stride_a, i32 stride_b, Conj conj,
                  const std::string& label) {
  check(s.elems_per_step() == 1, "kernelgen: runtime loops need 1 elem/step");
  a.beqz(Reg::a6, label + "_done");
  a.label(label);
  emit_steps(a, s, 1, stride_a, stride_b, conj);
  a.addi(Reg::a6, Reg::a6, -1);
  a.bnez(Reg::a6, label);
  a.label(label + "_done");
}

/// G = H^H H + sigma^2 I.  Args: a0 = H (column-major), a1 = sigma ptr
/// (fp16), a2 = G out (row-major complex fp16).
void emit_gram(Asm& a, MacEmitter& s, const MmseLayout& lay, u32 unroll) {
  const u32 n = lay.ntx;
  const i32 colbytes = static_cast<i32>(lay.nrx * s.elem_bytes());
  const i32 step = static_cast<i32>(s.elems_per_step() * s.elem_bytes());

  a.label("gram");
  s.prologue(a);
  a.li(Reg::s11, static_cast<i32>(n));
  a.li(Reg::a4, 0);
  a.mv(Reg::s8, Reg::a0);   // column i pointer
  a.mv(Reg::s10, Reg::a2);  // G walker
  a.label("gram_i");
  a.li(Reg::a5, 0);
  a.mv(Reg::s9, Reg::a0);   // column j pointer
  a.label("gram_j");
  a.mv(Reg::t0, Reg::s8);
  a.mv(Reg::t1, Reg::s9);
  s.init_acc(a);
  emit_dot_imm(a, s, lay.nrx, step, step, Conj::kA, unroll, "gram_k");
  s.reduce(a);
  a.sh(Reg::s6, 0, Reg::s10);
  a.sh(Reg::s7, 2, Reg::s10);
  a.addi(Reg::s10, Reg::s10, 4);
  add_imm(a, Reg::s9, Reg::s9, colbytes, Reg::t5);
  a.addi(Reg::a5, Reg::a5, 1);
  a.blt(Reg::a5, Reg::s11, "gram_j");
  add_imm(a, Reg::s8, Reg::s8, colbytes, Reg::t5);
  a.addi(Reg::a4, Reg::a4, 1);
  a.blt(Reg::a4, Reg::s11, "gram_i");
  // Diagonal regularization: G[d][d].re += sigma^2 (fp16).
  a.lh(Reg::a7, 0, Reg::a1);
  a.mv(Reg::t2, Reg::a2);
  a.li(Reg::a4, 0);
  a.label("gram_diag");
  a.lh(Reg::t3, 0, Reg::t2);
  a.r(Op::kFaddH, Reg::t3, Reg::t3, Reg::a7);
  a.sh(Reg::t3, 0, Reg::t2);
  add_imm(a, Reg::t2, Reg::t2, static_cast<i32>((n + 1) * 4), Reg::t5);
  a.addi(Reg::a4, Reg::a4, 1);
  a.blt(Reg::a4, Reg::s11, "gram_diag");
  a.ret();
}

/// z = H^H y.  Args: a0 = H (column-major), a1 = y, a2 = z out.
void emit_mvm(Asm& a, MacEmitter& s, const MmseLayout& lay, u32 unroll) {
  const i32 colbytes = static_cast<i32>(lay.nrx * s.elem_bytes());
  const i32 step = static_cast<i32>(s.elems_per_step() * s.elem_bytes());

  a.label("mvm");
  s.prologue(a);
  a.li(Reg::s11, static_cast<i32>(lay.ntx));
  a.li(Reg::a4, 0);
  a.mv(Reg::s8, Reg::a0);
  a.mv(Reg::s10, Reg::a2);
  a.label("mvm_i");
  a.mv(Reg::t0, Reg::s8);
  a.mv(Reg::t1, Reg::a1);
  s.init_acc(a);
  emit_dot_imm(a, s, lay.nrx, step, step, Conj::kA, unroll, "mvm_k");
  s.reduce(a);
  a.sh(Reg::s6, 0, Reg::s10);
  a.sh(Reg::s7, 2, Reg::s10);
  a.addi(Reg::s10, Reg::s10, 4);
  add_imm(a, Reg::s8, Reg::s8, colbytes, Reg::t5);
  a.addi(Reg::a4, Reg::a4, 1);
  a.blt(Reg::a4, Reg::s11, "mvm_i");
  a.ret();
}

/// In-place complex Cholesky: G = L L^H (lower L, real positive diagonal),
/// plus the reciprocal-diagonal vector.
/// Args: a0 = G (row-major cf16), a1 = L out, a2 = invd out (fp16/entry).
void emit_chol(Asm& a, MacEmitter& s, const MmseLayout& lay) {
  const u32 n = lay.ntx;
  const i32 row = static_cast<i32>(n * 4);

  a.label("chol");
  s.prologue(a);
  a.li(Reg::s11, static_cast<i32>(n));
  a.li(Reg::a5, 0);         // j
  a.mv(Reg::s8, Reg::a1);   // L row j
  a.mv(Reg::s9, Reg::a0);   // G[j][j]
  a.mv(Reg::s10, Reg::a1);  // L[j][j]
  a.label("chol_j");
  // sumsq = sum_{k<j} |L[j][k]|^2  (imaginary part cancels exactly)
  a.mv(Reg::t0, Reg::s8);
  a.mv(Reg::t1, Reg::s8);
  s.init_acc(a);
  a.mv(Reg::a6, Reg::a5);
  emit_dot_reg(a, s, 4, 4, Conj::kB, "chol_sumsq");
  s.reduce(a);
  a.lh(Reg::t3, 0, Reg::s9);
  a.r(Op::kFsubH, Reg::t3, Reg::t3, Reg::s6);
  // Clamp the pivot to the smallest fp16 normal: low-precision Gram
  // quantization (notably the 8-bit variants on fading channels) can push
  // it non-positive, and a robust detector must not emit NaN.
  a.li(Reg::t5, 0x0400);
  a.r(Op::kFmaxH, Reg::t3, Reg::t3, Reg::t5);
  a.r2(Op::kFsqrtH, Reg::t4, Reg::t3);
  a.sh(Reg::t4, 0, Reg::s10);
  a.sh(Reg::zero, 2, Reg::s10);
  a.li(Reg::t5, kFp16One);
  a.r(Op::kFdivH, Reg::a7, Reg::t5, Reg::t4);  // invd_j, kept live for the i loop
  a.sh(Reg::a7, 0, Reg::a2);
  // for i in j+1..n-1: L[i][j] = (G[i][j] - sum_k L[i][k] conj(L[j][k])) * invd_j
  a.addi(Reg::a4, Reg::a5, 1);
  a.li(Reg::t5, row);
  a.add(Reg::a3, Reg::s8, Reg::t5);  // L row i
  a.add(Reg::t2, Reg::s9, Reg::t5);  // G[i][j]
  a.label("chol_i");
  a.bge(Reg::a4, Reg::s11, "chol_i_done");
  a.mv(Reg::t0, Reg::a3);
  a.mv(Reg::t1, Reg::s8);
  s.init_acc(a);
  a.mv(Reg::a6, Reg::a5);
  emit_dot_reg(a, s, 4, 4, Conj::kB, "chol_dot");
  s.reduce(a);
  a.lh(Reg::t3, 0, Reg::t2);
  a.r(Op::kFsubH, Reg::t3, Reg::t3, Reg::s6);
  a.lh(Reg::t4, 2, Reg::t2);
  a.r(Op::kFsubH, Reg::t4, Reg::t4, Reg::s7);
  a.r(Op::kFmulH, Reg::t3, Reg::t3, Reg::a7);
  a.r(Op::kFmulH, Reg::t4, Reg::t4, Reg::a7);
  a.slli(Reg::t5, Reg::a5, 2);
  a.add(Reg::t5, Reg::a3, Reg::t5);
  a.sh(Reg::t3, 0, Reg::t5);
  a.sh(Reg::t4, 2, Reg::t5);
  add_imm(a, Reg::a3, Reg::a3, row, Reg::t5);
  add_imm(a, Reg::t2, Reg::t2, row, Reg::t5);
  a.addi(Reg::a4, Reg::a4, 1);
  a.j("chol_i");
  a.label("chol_i_done");
  add_imm(a, Reg::s8, Reg::s8, row, Reg::t5);
  add_imm(a, Reg::s9, Reg::s9, row + 4, Reg::t5);
  add_imm(a, Reg::s10, Reg::s10, row + 4, Reg::t5);
  a.addi(Reg::a2, Reg::a2, 2);
  a.addi(Reg::a5, Reg::a5, 1);
  a.blt(Reg::a5, Reg::s11, "chol_j");
  a.ret();
}

/// Forward solve: w[i] = (z[i] - sum_{k<i} L[i][k] w[k]) * invd[i].
/// Args: a0 = L, a1 = z, a2 = w out, a3 = invd.
void emit_fsolve(Asm& a, MacEmitter& s, const MmseLayout& lay) {
  const i32 row = static_cast<i32>(lay.ntx * 4);

  a.label("fsolve");
  s.prologue(a);
  a.li(Reg::s11, static_cast<i32>(lay.ntx));
  a.li(Reg::a4, 0);
  a.mv(Reg::s8, Reg::a0);
  a.mv(Reg::s9, Reg::a1);
  a.mv(Reg::s10, Reg::a3);
  a.label("fsolve_i");
  a.mv(Reg::t0, Reg::s8);
  a.mv(Reg::t1, Reg::a2);
  s.init_acc(a);
  a.mv(Reg::a6, Reg::a4);
  emit_dot_reg(a, s, 4, 4, Conj::kNone, "fs_dot");
  s.reduce(a);
  a.lh(Reg::t3, 0, Reg::s9);
  a.r(Op::kFsubH, Reg::t3, Reg::t3, Reg::s6);
  a.lh(Reg::t4, 2, Reg::s9);
  a.r(Op::kFsubH, Reg::t4, Reg::t4, Reg::s7);
  a.lh(Reg::t5, 0, Reg::s10);
  a.r(Op::kFmulH, Reg::t3, Reg::t3, Reg::t5);
  a.r(Op::kFmulH, Reg::t4, Reg::t4, Reg::t5);
  a.slli(Reg::t6, Reg::a4, 2);
  a.add(Reg::t6, Reg::a2, Reg::t6);
  a.sh(Reg::t3, 0, Reg::t6);
  a.sh(Reg::t4, 2, Reg::t6);
  add_imm(a, Reg::s8, Reg::s8, row, Reg::t5);
  a.addi(Reg::s9, Reg::s9, 4);
  a.addi(Reg::s10, Reg::s10, 2);
  a.addi(Reg::a4, Reg::a4, 1);
  a.blt(Reg::a4, Reg::s11, "fsolve_i");
  a.ret();
}

/// Backward solve: x[i] = (w[i] - sum_{k>i} conj(L[k][i]) x[k]) * invd[i].
/// Args: a0 = L, a1 = w, a2 = x out, a3 = invd.
void emit_bsolve(Asm& a, MacEmitter& s, const MmseLayout& lay) {
  const u32 n = lay.ntx;
  const i32 row = static_cast<i32>(n * 4);

  a.label("bsolve");
  s.prologue(a);
  a.li(Reg::s11, static_cast<i32>(n));
  a.li(Reg::a4, static_cast<i32>(n - 1));
  a.label("bsolve_i");
  // A: column i of L starting at row i+1 (stride = one row).
  a.addi(Reg::t5, Reg::a4, 1);
  a.li(Reg::t6, row);
  a.mul(Reg::t5, Reg::t5, Reg::t6);
  a.add(Reg::t5, Reg::a0, Reg::t5);
  a.slli(Reg::t6, Reg::a4, 2);
  a.add(Reg::t0, Reg::t5, Reg::t6);
  // B: x[i+1..n-1].
  a.slli(Reg::t6, Reg::a4, 2);
  a.addi(Reg::t6, Reg::t6, 4);
  a.add(Reg::t1, Reg::a2, Reg::t6);
  s.init_acc(a);
  a.li(Reg::a6, static_cast<i32>(n - 1));
  a.sub(Reg::a6, Reg::a6, Reg::a4);
  emit_dot_reg(a, s, row, 4, Conj::kA, "bs_dot");
  s.reduce(a);
  a.slli(Reg::t6, Reg::a4, 2);
  a.add(Reg::t5, Reg::a1, Reg::t6);
  a.lh(Reg::t3, 0, Reg::t5);
  a.r(Op::kFsubH, Reg::t3, Reg::t3, Reg::s6);
  a.lh(Reg::t4, 2, Reg::t5);
  a.r(Op::kFsubH, Reg::t4, Reg::t4, Reg::s7);
  a.slli(Reg::t5, Reg::a4, 1);
  a.add(Reg::t5, Reg::a3, Reg::t5);
  a.lh(Reg::t5, 0, Reg::t5);
  a.r(Op::kFmulH, Reg::t3, Reg::t3, Reg::t5);
  a.r(Op::kFmulH, Reg::t4, Reg::t4, Reg::t5);
  a.slli(Reg::t6, Reg::a4, 2);
  a.add(Reg::t6, Reg::a2, Reg::t6);
  a.sh(Reg::t3, 0, Reg::t6);
  a.sh(Reg::t4, 2, Reg::t6);
  a.addi(Reg::a4, Reg::a4, -1);
  a.bge(Reg::a4, Reg::zero, "bsolve_i");
  a.ret();
}

/// Per-hart startup, parking of inactive harts, and the fork-join epilogue
/// (barrier, then hart 0 signals exit).
void emit_crt0(Asm& a, const MmseLayout& lay) {
  // Park threshold: harts at or above the ACTIVE count never leave crt0.
  // Addressing below still uses num_cores-derived constants so the program
  // text matches the full layout's (see MmseLayout::active_cores).
  const u32 active = lay.active_cores != 0 ? lay.active_cores : lay.num_cores;
  a.label("_start");
  a.csrr(Reg::t0, rv::kCsrMhartid);
  a.li(Reg::t1, static_cast<i32>(active));
  a.bltu(Reg::t0, Reg::t1, "crt_run");
  a.label("crt_park");
  a.wfi();
  a.j("crt_park");
  a.label("crt_run");
  // sp = scratch_region_base + (hartid + 1) * scratch_stride.
  a.addi(Reg::t2, Reg::t0, 1);
  a.li(Reg::t3, static_cast<i32>(lay.scratch_stride()));
  a.mul(Reg::t2, Reg::t2, Reg::t3);
  a.li(Reg::t3, static_cast<i32>(lay.scratch_region_base()));
  a.add(Reg::sp, Reg::t3, Reg::t2);
  a.call("main");
  a.call("barrier");
  a.csrr(Reg::t0, rv::kCsrMhartid);
  a.bnez(Reg::t0, "crt_park");
  a.li(Reg::t1, static_cast<i32>(tera::kMmioExit));
  a.sw(Reg::zero, 0, Reg::t1);
  a.j("crt_park");
}

/// amoadd-counter barrier with wfi sleep and wake-register broadcast.
void emit_barrier(Asm& a, const MmseLayout& lay) {
  const u32 active = lay.active_cores != 0 ? lay.active_cores : lay.num_cores;
  a.label("barrier");
  a.li(Reg::t0, static_cast<i32>(MmseLayout::kBarrierAddr));
  a.li(Reg::t1, 1);
  a.amo(Op::kAmoaddW, Reg::t2, Reg::t1, Reg::t0);
  a.li(Reg::t3, static_cast<i32>(active - 1));
  a.beq(Reg::t2, Reg::t3, "barrier_last");
  a.wfi();
  a.ret();
  a.label("barrier_last");
  a.sw(Reg::zero, 0, Reg::t0);
  a.li(Reg::t4, static_cast<i32>(tera::kMmioWake));
  a.li(Reg::t5, -1);
  a.sw(Reg::t5, 0, Reg::t4);
  a.ret();
}

/// Per-core driver: computes this hart's pointers, then runs the operator
/// chain once per assigned problem, bracketing each operator with mcycle
/// reads that land in the core's profile block (kernels/profile.h).
void emit_main(Asm& a, const MmseLayout& lay) {
  const i32 pb = static_cast<i32>(lay.problem_bytes());

  a.label("main");
  a.addi(Reg::sp, Reg::sp, -56);
  a.sw(Reg::ra, 0, Reg::sp);
  a.csrr(Reg::s0, rv::kCsrMhartid);
  // First input block of this core.
  a.li(Reg::t0, static_cast<i32>(lay.problems_per_core * lay.problem_bytes()));
  a.mul(Reg::t0, Reg::s0, Reg::t0);
  a.li(Reg::t1, static_cast<i32>(MmseLayout::kInputBase));
  a.add(Reg::t1, Reg::t1, Reg::t0);
  // Scratch block of this core.
  a.li(Reg::t2, static_cast<i32>(lay.scratch_stride()));
  a.mul(Reg::t2, Reg::s0, Reg::t2);
  a.li(Reg::t3, static_cast<i32>(lay.scratch_region_base()));
  a.add(Reg::t2, Reg::t3, Reg::t2);
  // Stack slots: 4 H, 8 y, 12 sigma, 16 x, 20 G, 24 L, 28 z, 32 w, 36 invd.
  a.sw(Reg::t1, 4, Reg::sp);
  add_imm(a, Reg::t4, Reg::t1, static_cast<i32>(lay.h_bytes()), Reg::t5);
  a.sw(Reg::t4, 8, Reg::sp);
  add_imm(a, Reg::t4, Reg::t4, static_cast<i32>(lay.y_bytes()), Reg::t5);
  a.sw(Reg::t4, 12, Reg::sp);
  add_imm(a, Reg::t4, Reg::t4, static_cast<i32>(lay.sigma_bytes()), Reg::t5);
  a.sw(Reg::t4, 16, Reg::sp);
  a.sw(Reg::t2, 20, Reg::sp);
  add_imm(a, Reg::t4, Reg::t2, static_cast<i32>(lay.g_bytes()), Reg::t5);
  a.sw(Reg::t4, 24, Reg::sp);
  add_imm(a, Reg::t4, Reg::t4, static_cast<i32>(lay.l_bytes()), Reg::t5);
  a.sw(Reg::t4, 28, Reg::sp);
  add_imm(a, Reg::t4, Reg::t4, static_cast<i32>(lay.z_bytes()), Reg::t5);
  a.sw(Reg::t4, 32, Reg::sp);
  add_imm(a, Reg::t4, Reg::t4, static_cast<i32>(lay.w_bytes()), Reg::t5);
  a.sw(Reg::t4, 36, Reg::sp);
  // Profile block pointer (stack slot 44): right above invd.
  add_imm(a, Reg::t4, Reg::t4, static_cast<i32>(lay.invd_bytes()), Reg::t5);
  a.sw(Reg::t4, 44, Reg::sp);

  // Brackets one operator call with mcycle reads; stores the delta at
  // profile word `slot`.
  const auto timed_call = [&](const char* fn, i32 prof_slot,
                              std::initializer_list<std::pair<Reg, i32>> args) {
    a.csrr(Reg::t0, rv::kCsrMcycle);
    a.sw(Reg::t0, 40, Reg::sp);
    for (const auto& [reg, slot] : args) a.lw(reg, slot, Reg::sp);
    a.call(fn);
    a.csrr(Reg::t0, rv::kCsrMcycle);
    a.lw(Reg::t1, 40, Reg::sp);
    a.sub(Reg::t0, Reg::t0, Reg::t1);
    a.lw(Reg::t2, 44, Reg::sp);
    a.sw(Reg::t0, prof_slot, Reg::t2);
  };

  a.li(Reg::s1, static_cast<i32>(lay.problems_per_core));
  a.label("main_loop");
  a.csrr(Reg::t0, rv::kCsrMcycle);
  a.sw(Reg::t0, 48, Reg::sp);  // problem start timestamp
  timed_call("gram", 0, {{Reg::a0, 4}, {Reg::a1, 12}, {Reg::a2, 20}});
  timed_call("mvm", 4, {{Reg::a0, 4}, {Reg::a1, 8}, {Reg::a2, 28}});
  timed_call("chol", 8, {{Reg::a0, 20}, {Reg::a1, 24}, {Reg::a2, 36}});
  timed_call("fsolve", 12,
             {{Reg::a0, 24}, {Reg::a1, 28}, {Reg::a2, 32}, {Reg::a3, 36}});
  timed_call("bsolve", 16,
             {{Reg::a0, 24}, {Reg::a1, 32}, {Reg::a2, 16}, {Reg::a3, 36}});
  a.csrr(Reg::t0, rv::kCsrMcycle);
  a.lw(Reg::t1, 48, Reg::sp);
  a.sub(Reg::t0, Reg::t0, Reg::t1);
  a.lw(Reg::t2, 44, Reg::sp);
  a.sw(Reg::t0, 20, Reg::t2);  // whole-problem cycles
  a.addi(Reg::s1, Reg::s1, -1);
  a.beqz(Reg::s1, "main_done");
  // Advance the four input pointers to the next problem block.
  for (const i32 slot : {4, 8, 12, 16}) {
    a.lw(Reg::t0, slot, Reg::sp);
    add_imm(a, Reg::t0, Reg::t0, pb, Reg::t5);
    a.sw(Reg::t0, slot, Reg::sp);
  }
  a.j("main_loop");
  a.label("main_done");
  a.lw(Reg::ra, 0, Reg::sp);
  a.addi(Reg::sp, Reg::sp, 56);
  a.ret();
}

}  // namespace

rvasm::Program build_mmse_program(const MmseLayout& layout,
                                  const MmseProgramOptions& options) {
  layout.validate();
  const auto input = make_input_emitter(layout.prec);
  const auto solve = make_solve_emitter(layout.prec);

  Asm a(tera::kL2Base);
  emit_crt0(a, layout);
  emit_barrier(a, layout);
  emit_main(a, layout);
  emit_gram(a, *input, layout, options.gram_unroll);
  emit_mvm(a, *input, layout, options.gram_unroll);
  emit_chol(a, *solve, layout);
  emit_fsolve(a, *solve, layout);
  emit_bsolve(a, *solve, layout);
  return a.link();
}

}  // namespace tsim::kern
