// Generates the complete software-defined MMSE program (paper Sec. IV) as a
// linked RV32 image: crt0 (per-hart stacks, parking), the fork-join barrier
// (amoadd + wfi/wake), and the four operators - Gram matrix
// G = H^H H + sigma^2 I, matched filter z = H^H y, complex Cholesky
// G = L L^H, and the forward/backward triangular solves - instantiated for
// one of the five arithmetic precisions.
//
// Operand convention: H is staged column-major (column i contiguous), so
// every inner dot product walks unit-stride memory; y, z, w, x are
// contiguous complex vectors; G and L are row-major complex fp16 matrices;
// invd is the vector of reciprocal Cholesky diagonals (fp16).
//
// In parallel mode each active core solves the problem whose index equals
// its hartid; in batched mode (problems_per_core > 1, paper Fig. 6) a
// single core iterates over consecutive problem blocks.
#pragma once

#include "kernels/layout.h"
#include "rvasm/program.h"

namespace tsim::kern {

struct MmseProgramOptions {
  /// Unroll factor of the Gram/MVM inner dot-product loops. 0 = fully
  /// unrolled (the paper's configuration: "loops are unrolled to minimize
  /// RAW stalls"); 1/2/4 = partially unrolled runtime loops (ablation).
  u32 gram_unroll = 0;
};

/// Builds and links the full program for the given layout.
rvasm::Program build_mmse_program(const MmseLayout& layout,
                                  const MmseProgramOptions& options = {});

}  // namespace tsim::kern
