// Arithmetic precision variants of the software-defined MMSE (paper Sec. IV).
#pragma once

#include <string_view>

#include "common/types.h"

namespace tsim::kern {

enum class Precision : u8 {
  k16Half,     // zhinx scalar fp16; separate re/im loads; 4 fmadd.h per cMAC
  k16WDotp,    // vfdotpex.s.h wide dot product, fp32 accumulators
  k16CDotp,    // vfcdotp.h complex dot product, fp32 internal, fp16 accs
  k8Quarter,   // scalar-style fp8 ops, fp8 accumulation, cast to 16b to solve
  k8WDotp,     // vfdotpex.h.b fp8 dot product, fp16 accumulators
};

constexpr std::string_view name_of(Precision p) {
  switch (p) {
    case Precision::k16Half: return "16bHalf";
    case Precision::k16WDotp: return "16bwDotp";
    case Precision::k16CDotp: return "16bCDotp";
    case Precision::k8Quarter: return "8bQuarter";
    case Precision::k8WDotp: return "8bwDotp";
  }
  return "?";
}

/// Bytes per complex element of the *input* operands (H, y).
constexpr u32 input_elem_bytes(Precision p) {
  switch (p) {
    case Precision::k8Quarter:
    case Precision::k8WDotp:
      return 2;  // fp8 re + fp8 im
    default:
      return 4;  // fp16 re + fp16 im
  }
}

/// All intermediate (G, L, z, w) and output (x) elements are complex fp16.
constexpr u32 kScratchElemBytes = 4;

/// The five DUT variants, in the paper's presentation order.
constexpr Precision kAllPrecisions[] = {
    Precision::k16Half, Precision::k16WDotp, Precision::k16CDotp,
    Precision::k8Quarter, Precision::k8WDotp,
};

/// The four variants shown in the paper's runtime/cycle figures (Figs. 5-8).
constexpr Precision kTimedPrecisions[] = {
    Precision::k16Half, Precision::k16WDotp, Precision::k16CDotp,
    Precision::k8WDotp,
};

}  // namespace tsim::kern
