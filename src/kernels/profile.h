// Host-side reader for the DUT's per-operator cycle profile.
//
// The generated main() brackets each MMSE operator with mcycle CSR reads
// and stores the deltas of the most recent problem into the core's profile
// block (see MmseLayout::profile_addr). Both timing engines maintain
// mcycle, so profiles are available from the fast ISS (estimated cycles)
// and the cycle-accurate model (measured cycles) alike.
#pragma once

#include "kernels/layout.h"
#include "tera/memory.h"

namespace tsim::kern {

struct KernelProfile {
  u32 gram = 0;
  u32 mvm = 0;
  u32 chol = 0;
  u32 fsolve = 0;
  u32 bsolve = 0;
  u32 total = 0;  // whole problem, including call glue

  u32 operator_sum() const { return gram + mvm + chol + fsolve + bsolve; }
};

inline KernelProfile read_profile(const tera::ClusterMemory& mem,
                                  const MmseLayout& lay, u32 core) {
  const u32 base = lay.profile_addr(core);
  KernelProfile p;
  p.gram = mem.host_read_word(base + 0);
  p.mvm = mem.host_read_word(base + 4);
  p.chol = mem.host_read_word(base + 8);
  p.fsolve = mem.host_read_word(base + 12);
  p.bsolve = mem.host_read_word(base + 16);
  p.total = mem.host_read_word(base + 20);
  return p;
}

}  // namespace tsim::kern
