#include "kernels/strategy.h"

#include "common/error.h"
#include "rv/fp_formats.h"

namespace tsim::kern {
namespace {

using rvasm::Asm;
using rv::Op;
using rv::Reg;

// Register roles (see strategy.h).
constexpr Reg kPtrA = Reg::t0;
constexpr Reg kPtrB = Reg::t1;
constexpr Reg kOpA = Reg::t3;
constexpr Reg kOpB = Reg::t4;
constexpr Reg kTmp1 = Reg::t5;
constexpr Reg kTmp2 = Reg::t6;
constexpr Reg kTmp3 = Reg::t2;
constexpr Reg kAcc0 = Reg::s2;
constexpr Reg kAcc1 = Reg::s3;
constexpr Reg kConst0 = Reg::s4;
constexpr Reg kConst1 = Reg::s5;
constexpr Reg kOutRe = Reg::s6;
constexpr Reg kOutIm = Reg::s7;

// Per-lane sign masks of the DUT fp8 format. The format may be narrower
// than a byte (the paper's 1-4-2 occupies 7 LSB-aligned bits), so the sign
// position must come from the format, not from bit 7.
constexpr u32 kFp8Sign = rv::Fp8::kSignBit;
constexpr i32 kFp8SignLane1 = static_cast<i32>(kFp8Sign << 8);
constexpr i32 kFp8SignLanes13 = static_cast<i32>((kFp8Sign << 8) | (kFp8Sign << 24));
constexpr i32 kFp8SignLanes02 = static_cast<i32>(kFp8Sign | (kFp8Sign << 16));

/// 16bHalf: zhinx scalars; re/im loaded separately (2x the memory
/// operations, as the paper highlights); 4 fmadd.h per complex MAC.
class Half16Emitter final : public MacEmitter {
 public:
  u32 elem_bytes() const override { return 4; }
  void prologue(Asm&) override {}
  void init_acc(Asm& a) override {
    a.li(kAcc0, 0);
    a.li(kAcc1, 0);
  }
  void load_a(Asm& a, i32 stride) override {
    a.load(Op::kPLh, kOpA, 2, kPtrA);           // re, then advance to im
    a.load(Op::kPLh, kTmp1, stride - 2, kPtrA); // im, then advance to next elem
  }
  void load_b(Asm& a, i32 stride) override {
    a.load(Op::kPLh, kOpB, 2, kPtrB);
    a.load(Op::kPLh, kTmp2, stride - 2, kPtrB);
  }
  void mac(Asm& a, Conj conj) override {
    // a = (t3, t5), b = (t4, t6); acc = (s2, s3).
    switch (conj) {
      case Conj::kA:  // re+=rr+ii, im+=ri-ir
        a.r4(Op::kFmaddH, kAcc0, kOpA, kOpB, kAcc0);
        a.r4(Op::kFmaddH, kAcc0, kTmp1, kTmp2, kAcc0);
        a.r4(Op::kFmaddH, kAcc1, kOpA, kTmp2, kAcc1);
        a.r4(Op::kFnmsubH, kAcc1, kTmp1, kOpB, kAcc1);
        break;
      case Conj::kNone:  // re+=rr-ii, im+=ri+ir
        a.r4(Op::kFmaddH, kAcc0, kOpA, kOpB, kAcc0);
        a.r4(Op::kFnmsubH, kAcc0, kTmp1, kTmp2, kAcc0);
        a.r4(Op::kFmaddH, kAcc1, kOpA, kTmp2, kAcc1);
        a.r4(Op::kFmaddH, kAcc1, kTmp1, kOpB, kAcc1);
        break;
      case Conj::kB:  // re+=rr+ii, im+=ir-ri
        a.r4(Op::kFmaddH, kAcc0, kOpA, kOpB, kAcc0);
        a.r4(Op::kFmaddH, kAcc0, kTmp1, kTmp2, kAcc0);
        a.r4(Op::kFnmsubH, kAcc1, kOpA, kTmp2, kAcc1);
        a.r4(Op::kFmaddH, kAcc1, kTmp1, kOpB, kAcc1);
        break;
    }
  }
  void reduce(Asm& a) override {
    a.mv(kOutRe, kAcc0);
    a.mv(kOutIm, kAcc1);
  }
};

/// 16bwDotp: packed fp16 loads; two vfdotpex.s.h (fp32 accumulation) plus a
/// lane shuffle and a SIMD sign flip per complex MAC (paper Fig. 3).
class WDotp16Emitter final : public MacEmitter {
 public:
  u32 elem_bytes() const override { return 4; }
  void prologue(Asm& a) override {
    a.li(kConst0, static_cast<i32>(0x80000000));  // negate high (im) lane
    a.li(kConst1, 0x00000001);                    // swap-lane selector (1,0)
  }
  void init_acc(Asm& a) override {
    a.li(kAcc0, 0);
    a.li(kAcc1, 0);
  }
  void load_a(Asm& a, i32 stride) override { a.load(Op::kPLw, kOpA, stride, kPtrA); }
  void load_b(Asm& a, i32 stride) override { a.load(Op::kPLw, kOpB, stride, kPtrB); }
  void mac(Asm& a, Conj conj) override {
    switch (conj) {
      case Conj::kA:
        a.r(Op::kVfdotpexSH, kAcc0, kOpA, kOpB);    // re += rr + ii
        a.r(Op::kPvShuffleH, kTmp1, kOpB, kConst1); // (b_im, b_re)
        a.r(Op::kPvXorH, kTmp2, kOpA, kConst0);     // (a_re, -a_im)
        a.r(Op::kVfdotpexSH, kAcc1, kTmp2, kTmp1);  // im += ri - ir
        break;
      case Conj::kNone:
        a.r(Op::kPvXorH, kTmp2, kOpB, kConst0);     // (b_re, -b_im)
        a.r(Op::kVfdotpexSH, kAcc0, kOpA, kTmp2);   // re += rr - ii
        a.r(Op::kPvShuffleH, kTmp1, kOpB, kConst1); // (b_im, b_re)
        a.r(Op::kVfdotpexSH, kAcc1, kOpA, kTmp1);   // im += ri + ir
        break;
      case Conj::kB:
        a.r(Op::kVfdotpexSH, kAcc0, kOpA, kOpB);    // re += rr + ii
        a.li(kTmp2, 0x00008000);                    // negate low (re) lane
        a.r(Op::kPvXorH, kTmp2, kOpA, kTmp2);       // (-a_re, a_im)
        a.r(Op::kPvShuffleH, kTmp1, kOpB, kConst1); // (b_im, b_re)
        a.r(Op::kVfdotpexSH, kAcc1, kTmp2, kTmp1);  // im += ir - ri
        break;
    }
  }
  void reduce(Asm& a) override {
    a.r2(Op::kFcvtHS, kOutRe, kAcc0);
    a.r2(Op::kFcvtHS, kOutIm, kAcc1);
  }
};

/// 16bCDotp: one complex-dot-product instruction per MAC (fp32 internal,
/// packed fp16 accumulator).
class CDotp16Emitter final : public MacEmitter {
 public:
  u32 elem_bytes() const override { return 4; }
  void prologue(Asm&) override {}
  void init_acc(Asm& a) override { a.li(kAcc0, 0); }
  void load_a(Asm& a, i32 stride) override { a.load(Op::kPLw, kOpA, stride, kPtrA); }
  void load_b(Asm& a, i32 stride) override { a.load(Op::kPLw, kOpB, stride, kPtrB); }
  void mac(Asm& a, Conj conj) override {
    switch (conj) {
      case Conj::kA:
        a.r(Op::kVfccdotpH, kAcc0, kOpA, kOpB);
        break;
      case Conj::kNone:
        a.r(Op::kVfcdotpH, kAcc0, kOpA, kOpB);
        break;
      case Conj::kB:
        // a*conj(b) == conj(b)*a: swap the operands of the conjugating form.
        a.r(Op::kVfccdotpH, kAcc0, kOpB, kOpA);
        break;
    }
  }
  void reduce(Asm& a) override {
    a.lanes(Op::kPvExtractH, kOutRe, kAcc0, 0);
    a.lanes(Op::kPvExtractH, kOutIm, kAcc0, 1);
  }
};

/// 8bQuarter: SmallFloat scalar-style fp8 compute; products AND
/// accumulation stay in fp8 (the source of the BER loss in Fig. 9), cast to
/// fp16 only at reduce().
class Quarter8Emitter final : public MacEmitter {
 public:
  u32 elem_bytes() const override { return 2; }
  void prologue(Asm& a) override {
    a.li(kConst0, 0x03020000);  // selector (re,re,z,z); lanes 2,3 pick zeros
    a.li(kConst1, 0x03020001);  // selector (im,re,z,z) - swapped pair
  }
  void init_acc(Asm& a) override { a.li(kAcc0, 0); }
  void load_a(Asm& a, i32 stride) override { a.load(Op::kPLhu, kOpA, stride, kPtrA); }
  void load_b(Asm& a, i32 stride) override { a.load(Op::kPLhu, kOpB, stride, kPtrB); }
  void mac(Asm& a, Conj conj) override {
    // acc lanes (re, im, -, -) in fp8. Two vfmac.b terms:
    //   term1: (a_re, a_re) * f1(b);  term2: (a_im, a_im) * f2(swap(b)).
    if (conj == Conj::kB) {
      a.li(kTmp3, kFp8SignLane1);            // negate b_im for term1
      a.r(Op::kPvXorB, kTmp2, kOpB, kTmp3);  // (b_re, -b_im)
    } else {
      a.mv(kTmp2, kOpB);  // (b_re, b_im)
    }
    a.r(Op::kPvShuffleB, kTmp1, kOpA, kConst0);  // (a_re, a_re)
    a.r(Op::kVfmacB, kAcc0, kTmp1, kTmp2);       // term1
    a.i(Op::kOri, kTmp2, kConst0, 0x0101);       // selector (im,im,z,z)
    a.r(Op::kPvShuffleB, kTmp1, kOpA, kTmp2);    // (a_im, a_im)
    a.r(Op::kPvShuffleB, kTmp2, kOpB, kConst1);  // (b_im, b_re)
    switch (conj) {
      case Conj::kA:  // term2 = (a_im,a_im) * (b_im, -b_re)
        a.li(kTmp3, kFp8SignLane1);
        a.r(Op::kPvXorB, kTmp2, kTmp2, kTmp3);
        break;
      case Conj::kNone:  // term2 = (a_im,a_im) * (-b_im, b_re)
        a.li(kTmp3, static_cast<i32>(kFp8Sign));
        a.r(Op::kPvXorB, kTmp2, kTmp2, kTmp3);
        break;
      case Conj::kB:  // term2 = (a_im,a_im) * (b_im, b_re)
        break;
    }
    a.r(Op::kVfmacB, kAcc0, kTmp1, kTmp2);  // term2
  }
  void reduce(Asm& a) override {
    a.r2(Op::kVfcvtHB, kTmp1, kAcc0);  // fp8 (re,im) -> packed fp16
    a.lanes(Op::kPvExtractH, kOutRe, kTmp1, 0);
    a.lanes(Op::kPvExtractH, kOutIm, kTmp1, 1);
  }
};

/// 8bwDotp: four fp8 lanes = two complex elements per 32-bit load; one
/// vfdotpex.h.b (fp16 accumulation) per part plus a byte shuffle (Fig. 3).
class WDotp8Emitter final : public MacEmitter {
 public:
  u32 elems_per_step() const override { return 2; }
  u32 elem_bytes() const override { return 2; }
  void prologue(Asm& a) override {
    a.li(kConst0, kFp8SignLanes13);  // negate im lanes (1,3)
    a.li(kConst1, 0x02030001);       // byte selector (1,0,3,2)
  }
  void init_acc(Asm& a) override {
    a.li(kAcc0, 0);
    a.li(kAcc1, 0);
  }
  void load_a(Asm& a, i32 stride) override { a.load(Op::kPLw, kOpA, stride, kPtrA); }
  void load_b(Asm& a, i32 stride) override { a.load(Op::kPLw, kOpB, stride, kPtrB); }
  void mac(Asm& a, Conj conj) override {
    switch (conj) {
      case Conj::kA:
        a.r(Op::kVfdotpexHB, kAcc0, kOpA, kOpB);    // re parts of both elems
        a.r(Op::kPvShuffleB, kTmp1, kOpB, kConst1); // (im,re,im,re)
        a.r(Op::kPvXorB, kTmp2, kOpA, kConst0);     // negate a_im lanes
        a.r(Op::kVfdotpexHB, kAcc1, kTmp2, kTmp1);
        break;
      case Conj::kNone:
        a.r(Op::kPvXorB, kTmp2, kOpB, kConst0);     // negate b_im lanes
        a.r(Op::kVfdotpexHB, kAcc0, kOpA, kTmp2);
        a.r(Op::kPvShuffleB, kTmp1, kOpB, kConst1);
        a.r(Op::kVfdotpexHB, kAcc1, kOpA, kTmp1);
        break;
      case Conj::kB:
        a.r(Op::kVfdotpexHB, kAcc0, kOpA, kOpB);
        a.li(kTmp3, kFp8SignLanes02);               // negate a_re lanes
        a.r(Op::kPvXorB, kTmp2, kOpA, kTmp3);
        a.r(Op::kPvShuffleB, kTmp1, kOpB, kConst1);
        a.r(Op::kVfdotpexHB, kAcc1, kTmp2, kTmp1);
        break;
    }
  }
  void reduce(Asm& a) override {
    a.mv(kOutRe, kAcc0);
    a.mv(kOutIm, kAcc1);
  }
};

}  // namespace

std::unique_ptr<MacEmitter> make_input_emitter(Precision p) {
  switch (p) {
    case Precision::k16Half: return std::make_unique<Half16Emitter>();
    case Precision::k16WDotp: return std::make_unique<WDotp16Emitter>();
    case Precision::k16CDotp: return std::make_unique<CDotp16Emitter>();
    case Precision::k8Quarter: return std::make_unique<Quarter8Emitter>();
    case Precision::k8WDotp: return std::make_unique<WDotp8Emitter>();
  }
  throw SimError("unknown precision");
}

std::unique_ptr<MacEmitter> make_solve_emitter(Precision p) {
  switch (p) {
    case Precision::k16Half: return std::make_unique<Half16Emitter>();
    case Precision::k16WDotp:
    case Precision::k8WDotp: return std::make_unique<WDotp16Emitter>();
    case Precision::k16CDotp:
    case Precision::k8Quarter: return std::make_unique<CDotp16Emitter>();
  }
  throw SimError("unknown precision");
}

}  // namespace tsim::kern
