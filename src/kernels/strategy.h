// Per-precision complex-MAC emitter strategies (paper Fig. 3).
//
// The four MMSE operators are generated once against this interface; each
// precision variant supplies its own loads, multiply-accumulate sequence
// and reduction, which is exactly how the paper differentiates the five
// implementations ("the kernels differ in the complex MAC implementation
// and load width").
//
// Register convention inside generated kernels (all code in this repo is
// generated, so the C ABI is narrowed: kernels may clobber every register
// except ra/sp/s0/s1):
//   a0..a3   kernel arguments (pointers)
//   a4,a5,a6 loop counters (i, j, k/count)
//   t0,t1    operand pointers A and B (strategies post-increment them)
//   t2       output pointer / glue temporary
//   t3,t4    loaded operands (strategy-owned)
//   t5,t6    strategy temporaries
//   s2,s3    strategy accumulators
//   s4,s5    strategy constants (masks/selectors, set once in prologue)
//   s6,s7    reduce() outputs: scalar fp16 re/im
//   s8..s11,a7  glue registers of the kernel generator
#pragma once

#include <memory>

#include "kernels/precision.h"
#include "rvasm/builder.h"

namespace tsim::kern {

/// Conjugation mode of a complex multiply-accumulate acc += op(a)*op(b).
enum class Conj : u8 {
  kNone,   // acc += a * b
  kA,      // acc += conj(a) * b
  kB,      // acc += a * conj(b)
};

class MacEmitter {
 public:
  virtual ~MacEmitter() = default;

  /// Number of complex elements consumed per load_*/mac step (1 or 2).
  virtual u32 elems_per_step() const { return 1; }

  /// Emits one-time constant setup (masks, selectors) into s4/s5.
  virtual void prologue(rvasm::Asm& a) = 0;

  /// Zeroes the accumulators.
  virtual void init_acc(rvasm::Asm& a) = 0;

  /// Loads the next operand-A element(s) from (t0), post-incrementing t0 by
  /// `stride` bytes. Result parked in strategy registers.
  virtual void load_a(rvasm::Asm& a, i32 stride) = 0;

  /// Loads the next operand-B element(s) from (t1), post-incrementing t1.
  virtual void load_b(rvasm::Asm& a, i32 stride) = 0;

  /// Emits acc += op(a) * op(b) for the loaded operands.
  virtual void mac(rvasm::Asm& a, Conj conj) = 0;

  /// Finalizes the accumulators into scalar fp16 re -> s6, im -> s7.
  virtual void reduce(rvasm::Asm& a) = 0;

  /// Bytes of one complex element in this strategy's input operands.
  virtual u32 elem_bytes() const = 0;
};

/// Creates the emitter for a precision's Gram/MVM phase (fp8 for the 8-bit
/// variants, fp16 otherwise).
std::unique_ptr<MacEmitter> make_input_emitter(Precision p);

/// Creates the emitter for the Cholesky/solve phase (always fp16; the 8-bit
/// variants solve in 16-bit precision per paper Sec. IV).
std::unique_ptr<MacEmitter> make_solve_emitter(Precision p);

}  // namespace tsim::kern
