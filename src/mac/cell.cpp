#include "mac/cell.h"

#include <bit>
#include <cmath>

#include "common/error.h"
#include "sim/cosim.h"

namespace tsim::mac {

namespace {
// Rng::keyed stream domains of one cell. Disjoint tags keep burst
// transitions, arrival draws and payload generation on independent streams
// no matter how many draws each consumes.
constexpr u64 kCellStream = 0xCE11;
constexpr u64 kBurstInitStream = 0xB125;
constexpr u64 kBurstStream = 0xB127;
constexpr u64 kArrivalStream = 0xA221;
constexpr u64 kPayloadStream = 0xFA7;

/// validate() before any member that derives from the config is built.
const CellConfig& validated(const CellConfig& cfg) {
  cfg.validate();
  return cfg;
}

/// The cell's fault plan: the farm-level FaultConfig re-seeded with the
/// per-cell fault seed, so cells draw independent fault streams.
sim::FaultConfig cell_fault(const CellConfig& cfg) {
  sim::FaultConfig f = cfg.fault;
  f.seed = cfg.fault.cell_fault_seed(cfg.cell);
  return f;
}

/// The cell's cluster-pool config with the fault plan installed. A fault
/// plan set directly on cfg.pool.fault (scheduler-level tests) is left
/// alone when the cell-level plan is disabled.
ran::ClusterPoolConfig pool_with_fault(const CellConfig& cfg) {
  ran::ClusterPoolConfig pool = cfg.pool;
  if (cfg.fault.enabled) pool.fault = cell_fault(cfg);
  return pool;
}
}  // namespace

void BurstConfig::validate() const {
  if (!enabled) return;
  check(duty > 0.0 && duty < 1.0, "BurstConfig: duty must be in (0, 1)");
  check(mean_on_slots >= 1.0, "BurstConfig: mean_on_slots must be >= 1");
  check(arrival_prob > 0.0 && arrival_prob <= 1.0,
        "BurstConfig: arrival_prob must be in (0, 1]");
  check(diurnal_period_ttis >= 0.0, "BurstConfig: negative diurnal period");
  check(diurnal_depth >= 0.0 && diurnal_depth <= 1.0,
        "BurstConfig: diurnal_depth must be in [0, 1]");
}

double BurstConfig::p_on(u64 tti) const {
  // Two-state Markov chain: stationary duty d with P(on->off) = 1/mean_on
  // gives P(off->on) = p_off * d / (1 - d). The diurnal term modulates the
  // on-rate (not the off-rate), so burst lengths stay put while the number
  // of active UEs swells and ebbs over the configured period.
  double p = p_off() * duty / (1.0 - duty);
  if (diurnal_period_ttis > 0.0) {
    const double phase =
        2.0 * M_PI * static_cast<double>(tti) / diurnal_period_ttis;
    p *= 1.0 + diurnal_depth * std::sin(phase);
  }
  return std::min(1.0, std::max(0.0, p));
}

void CellConfig::validate() const {
  check(num_ues >= 1, "CellConfig: need at least one UE");
  check(!groups.empty(), "CellConfig: need at least one UE group");
  check(carrier.num_subcarriers() > 0, "CellConfig: carrier has no subcarriers");
  check(sc_per_pdu >= 1 && sc_per_pdu <= carrier.num_subcarriers(),
        "CellConfig: sc_per_pdu must fit within one symbol");
  check(clock_hz > 0.0, "CellConfig: clock must be positive");
  harq.validate();
  burst.validate();
  pool.validate();
  fault.validate();
  if (fault.enabled && fault.cluster_fail_tti != sim::FaultConfig::kNever) {
    check(fault.cluster_fail_id < pool.num_clusters,
          "CellConfig: fault.cluster_fail_id out of range");
    check(pool.num_clusters >= 2,
          "CellConfig: cluster failure needs a survivor cluster");
  }
}

u64 CellConfig::cell_seed() const {
  return Rng::derive_seed(farm_seed, {kCellStream, cell});
}

bool CellReport::operator==(const CellReport& o) const {
  return cell == o.cell && ues == o.ues && ttis == o.ttis &&
         harq.new_tx == o.harq.new_tx && harq.retx == o.harq.retx &&
         harq.acks == o.harq.acks && harq.drops == o.harq.drops &&
         harq.stalls == o.harq.stalls &&
         harq.offered_bits == o.harq.offered_bits &&
         harq.delivered_bits == o.harq.delivered_bits &&
         harq.dropped_bits == o.harq.dropped_bits &&
         harq.soft_buffer_peak_bits == o.harq.soft_buffer_peak_bits &&
         pdus == o.pdus && crc_fail == o.crc_fail &&
         unresolved == o.unresolved && bits == o.bits && errors == o.errors &&
         slots == o.slots && misses == o.misses &&
         worst_cycles == o.worst_cycles && p50_cycles == o.p50_cycles &&
         p99_cycles == o.p99_cycles && reloads == o.reloads &&
         reload_cycles == o.reload_cycles && harq.timeouts == o.harq.timeouts &&
         dropped_ind == o.dropped_ind && delayed_ind == o.delayed_ind &&
         degraded_slots == o.degraded_slots && hart_faults == o.hart_faults &&
         ecc_corrected == o.ecc_corrected && ecc_detected == o.ecc_detected &&
         ecc_silent == o.ecc_silent;
}

Cell::Cell(const CellConfig& cfg)
    : cfg_(validated(cfg)), seed_(cfg.cell_seed()), fault_(cell_fault(cfg)),
      scheduler_(pool_with_fault(cfg), cfg.groups) {
  ues_.reserve(cfg_.num_ues);
  for (u32 ue = 0; ue < cfg_.num_ues; ++ue) {
    const u32 group = ue % static_cast<u32>(cfg_.groups.size());
    ues_.emplace_back(group, cfg_.harq);
    // Initial burst state drawn at the stationary duty so the population
    // starts in steady state rather than ramping from all-on.
    if (cfg_.burst.enabled) {
      Rng rng = Rng::keyed(seed_, {kBurstInitStream, ue});
      ues_.back().on = rng.uniform() < cfg_.burst.duty;
    }
  }
  channels_.reserve(cfg_.groups.size());
  mods_.reserve(cfg_.groups.size());
  for (const ran::UeGroup& g : cfg_.groups) {
    channels_.emplace_back(g.channel, g.nrx, g.ntx);
    mods_.emplace_back(g.qam_order);
  }
}

u64 Cell::pdu_bits(u32 ue) const {
  const ran::UeGroup& g = cfg_.groups[ues_[ue].group];
  return static_cast<u64>(cfg_.sc_per_pdu) * g.ntx *
         mods_[ues_[ue].group].bits_per_symbol();
}

void Cell::update_burst_states(u64 tti) {
  if (!cfg_.burst.enabled || tti == last_burst_tti_) return;
  last_burst_tti_ = tti;
  for (u32 ue = 0; ue < cfg_.num_ues; ++ue) {
    Rng rng = Rng::keyed(seed_, {kBurstStream, tti, ue});
    const double draw = rng.uniform();
    if (ues_[ue].on) {
      if (draw < cfg_.burst.p_off()) ues_[ue].on = false;
    } else {
      if (draw < cfg_.burst.p_on(tti)) ues_[ue].on = true;
    }
  }
}

bool Cell::quiescent() const {
  if (!delayed_.empty() || fault_.any_indication_faults()) return false;
  for (const Ue& ue : ues_) {
    if (ue.on || ue.harq.pending_retx().has_value() ||
        ue.harq.unresolved() != 0)
      return false;
  }
  return true;
}

SlotRequest Cell::build_request(u64 tti) {
  update_burst_states(tti);

  SlotRequest req;
  req.cell = cfg_.cell;
  req.tti = tti;

  const u32 pdus_per_symbol = cfg_.carrier.num_subcarriers() / cfg_.sc_per_pdu;
  const u32 capacity = pdus_per_symbol * cfg_.carrier.symbols_per_slot;
  u32 used = 0;
  const auto place = [&](u32 ue, u32 pid, bool new_data, u32 transmission) {
    PduDescriptor p;
    p.ue = ue;
    p.harq_process = pid;
    p.new_data = new_data;
    p.transmission = transmission;
    p.group = ues_[ue].group;
    p.symbol = used / pdus_per_symbol;
    p.first_subcarrier = (used % pdus_per_symbol) * cfg_.sc_per_pdu;
    p.num_subcarriers = cfg_.sc_per_pdu;
    p.effective_snr_db = phy::Channel::chase_combined_snr_db(
        cfg_.groups[p.group].snr_db, transmission);
    p.pdu_bits = pdu_bits(ue);
    req.pdus.push_back(p);
    ++used;
  };

  // UE visit order rotates by one position per TTI so capacity pressure is
  // spread fairly over the population instead of starving high ids.
  const u32 start = static_cast<u32>(tti % cfg_.num_ues);
  std::vector<u8> granted(cfg_.num_ues, 0);  // one PDU per UE per slot

  // Pass 1: pending retransmissions (highest priority - they hold soft
  // buffers and block their HARQ process until resolved).
  for (u32 k = 0; k < cfg_.num_ues && used < capacity; ++k) {
    const u32 ue = (start + k) % cfg_.num_ues;
    const std::optional<u32> pid = ues_[ue].harq.pending_retx();
    if (!pid.has_value()) continue;
    const u32 transmission = ues_[ue].harq.grant_retx(*pid, tti);
    granted[ue] = 1;
    place(ue, *pid, false, transmission);
  }

  // Pass 2: new data for active UEs with a firing arrival, while capacity
  // lasts. An arrival that finds every HARQ process busy is a stall
  // (counted by the entity); an arrival beyond the slot's capacity is
  // simply not offered this TTI.
  for (u32 k = 0; k < cfg_.num_ues && used < capacity; ++k) {
    const u32 ue = (start + k) % cfg_.num_ues;
    if (granted[ue] != 0 || !ues_[ue].on) continue;
    if (cfg_.burst.enabled && cfg_.burst.arrival_prob < 1.0) {
      Rng rng = Rng::keyed(seed_, {kArrivalStream, tti, ue});
      if (rng.uniform() >= cfg_.burst.arrival_prob) continue;
    }
    const std::optional<u32> pid = ues_[ue].harq.start_new_data(pdu_bits(ue), tti);
    if (!pid.has_value()) continue;  // all processes busy: stall recorded
    granted[ue] = 1;
    place(ue, *pid, true, 1);
  }
  return req;
}

ran::SlotWorkload Cell::build_workload(const SlotRequest& req) const {
  ran::SlotWorkload slot;
  slot.tti = req.tti;
  slot.allocations.reserve(req.pdus.size());
  for (const PduDescriptor& p : req.pdus) {
    // Payload stream keyed by grid identity: any host process generating
    // this (tti, symbol, subcarrier) allocation draws the same bits.
    Rng rng = Rng::keyed(seed_, {kPayloadStream, req.tti, p.symbol,
                                 p.first_subcarrier});
    ran::Allocation a;
    a.group = p.group;
    a.symbol = p.symbol;
    a.first_subcarrier = p.first_subcarrier;
    a.batch = sim::generate_batch(channels_[p.group], mods_[p.group],
                                  cfg_.groups[p.group].ntx, p.num_subcarriers,
                                  p.effective_snr_db, rng);
    slot.allocations.push_back(std::move(a));
  }
  return slot;
}

SlotIndication Cell::run_slot(const SlotRequest& req) {
  SlotIndication ind;
  ind.cell = req.cell;
  ind.tti = req.tti;

  if (req.pdus.empty()) {
    // Idle slot: nothing reaches L1; record an empty result so latency
    // percentiles and miss counts still see one entry per TTI.
    ran::SlotResult empty;
    empty.tti = req.tti;
    results_.push_back(std::move(empty));
    return ind;
  }

  const ran::SlotWorkload slot = build_workload(req);
  ran::SlotResult result = scheduler_.run_slot(slot);
  check(result.allocation_errors.size() == req.pdus.size(),
        "Cell: allocation outcomes do not match the slot request");

  ind.crcs.reserve(req.pdus.size());
  for (size_t i = 0; i < req.pdus.size(); ++i) {
    CrcResult c;
    c.ue = req.pdus[i].ue;
    c.harq_process = req.pdus[i].harq_process;
    c.bit_errors = result.allocation_errors[i];
    c.bits = req.pdus[i].pdu_bits;
    c.crc_pass = c.bit_errors == 0;
    ind.crcs.push_back(c);
  }
  ind.slot_cycles = result.slot_cycles;
  ind.deadline_met = static_cast<double>(result.slot_cycles) / cfg_.clock_hz <=
                     cfg_.carrier.numerology.slot_seconds();

  // Keep a slim copy for the aggregate report: cycle/reload/error totals
  // stay, per-bit payloads and per-batch traces go.
  result.detected_bits.clear();
  result.detected_bits.shrink_to_fit();
  result.trace.clear();
  result.trace.shrink_to_fit();
  results_.push_back(std::move(result));
  return ind;
}

void Cell::apply_indication(const SlotIndication& ind) {
  const bool guarded =
      fault_.any_indication_faults() || cfg_.harq.feedback_timeout_slots > 0;
  for (const CrcResult& c : ind.crcs) {
    check(c.ue < ues_.size(), "Cell: CRC indication for an unknown UE");
    HarqEntity& harq = ues_[c.ue].harq;
    if (guarded) {
      // Stale-feedback guard: a delayed indication must only resolve the
      // attempt it belongs to - the timeout may already have NACKed the
      // attempt (and a later grant re-used the process). On the clean path
      // the attempt's sent TTI always matches, so the guard never fires.
      if (!harq.in_flight(c.harq_process) ||
          harq.sent_tti(c.harq_process) != ind.tti)
        continue;
    }
    harq.on_feedback(c.harq_process, c.crc_pass);
    crc_fail_ += c.crc_pass ? 0 : 1;
  }
}

void Cell::step(u64 tti) {
  // Deliver fault-delayed indications that are due, in insertion order,
  // before this TTI's scheduling decision (their ACKs free HARQ processes
  // the new request can use).
  if (!delayed_.empty()) {
    std::vector<DelayedInd> keep;
    keep.reserve(delayed_.size());
    for (DelayedInd& d : delayed_) {
      if (d.due_tti <= tti) {
        apply_indication(d.ind);
      } else {
        keep.push_back(std::move(d));
      }
    }
    delayed_ = std::move(keep);
  }

  // Fast-forward: a quiescent TTI (diurnal trough) provably runs the whole
  // loop below with zero side effects beyond archiving one empty SlotResult
  // - build_request grants nothing, run_slot never reaches L1, the empty
  // indication resolves nothing, and with nothing in flight the timeout
  // sweep is a no-op. Short-circuit to exactly that archive. Burst
  // transitions still advance first (quiescence is a property of this TTI's
  // post-transition state); the draw is identity-keyed, so the chain is
  // unaffected by which path consumed it.
  if (cfg_.pool.fast_forward) {
    update_burst_states(tti);
    if (quiescent()) {
      ran::SlotResult empty;
      empty.tti = tti;
      results_.push_back(std::move(empty));
      ++ff_idle_ttis_;
      ++ttis_run_;
      return;
    }
  }

  const SlotRequest req = build_request(tti);
  const SlotIndication ind = run_slot(req);

  // FAPI transport fault: this TTI's indication can be lost or postponed
  // (drawn per TTI from the cell's fault stream). The HARQ feedback timeout
  // below absorbs the loss.
  const sim::IndicationFaultDraw draw = sim::draw_indication_fault(fault_, tti);
  if (draw.drop) {
    dropped_ind_ += 1;
  } else if (draw.delay > 0) {
    delayed_ind_ += 1;
    delayed_.push_back(DelayedInd{tti + draw.delay, ind});
  } else {
    apply_indication(ind);
  }

  // Resolve attempts whose feedback is overdue as NACKs (no-op with the
  // timeout disabled).
  if (cfg_.harq.feedback_timeout_slots > 0) {
    for (Ue& ue : ues_) ue.harq.expire_overdue(tti);
  }
  ++ttis_run_;
}

namespace {
constexpr u32 kCellTag = 0x314C4543;  // "CEL1"

void save_slot_result(sim::SnapshotWriter& w, const ran::SlotResult& s) {
  // Stored results are the slim copies (run_slot strips detected_bits and
  // trace before archiving), so those two fields are not serialized.
  check(s.detected_bits.empty() && s.trace.empty(),
        "Cell snapshot: stored SlotResult is not slim");
  w.write_u64(s.tti);
  w.write_u64(s.problems);
  w.write_u64(s.bits);
  w.write_u64(s.errors);
  w.write_vec_u64(s.allocation_errors);
  w.write_vec_u64(s.cluster_busy_cycles);
  w.write_vec_u32(s.cluster_batches);
  w.write_vec_u32(s.cluster_reloads);
  w.write_vec_u64(s.cluster_reload_cycles);
  w.write_u64(s.total_reloads);
  w.write_u64(s.total_reload_cycles);
  w.write_u64(s.total_instructions);
  w.write_vec_u64(s.symbol_cycles);
  w.write_u64(s.slot_cycles);
  w.write_bool(s.degraded);
  w.write_vec_u32(s.dead_clusters);
  w.write_u64(s.failed_batches);
  w.write_u64(s.hart_faults);
  w.write_u64(s.ecc_corrected);
  w.write_u64(s.ecc_detected);
  w.write_u64(s.ecc_silent);
}

ran::SlotResult load_slot_result(sim::SnapshotReader& r) {
  ran::SlotResult s;
  s.tti = r.read_u64();
  s.problems = r.read_u64();
  s.bits = r.read_u64();
  s.errors = r.read_u64();
  s.allocation_errors = r.read_vec_u64();
  s.cluster_busy_cycles = r.read_vec_u64();
  s.cluster_batches = r.read_vec_u32();
  s.cluster_reloads = r.read_vec_u32();
  s.cluster_reload_cycles = r.read_vec_u64();
  s.total_reloads = r.read_u64();
  s.total_reload_cycles = r.read_u64();
  s.total_instructions = r.read_u64();
  s.symbol_cycles = r.read_vec_u64();
  s.slot_cycles = r.read_u64();
  s.degraded = r.read_bool();
  s.dead_clusters = r.read_vec_u32();
  s.failed_batches = r.read_u64();
  s.hart_faults = r.read_u64();
  s.ecc_corrected = r.read_u64();
  s.ecc_detected = r.read_u64();
  s.ecc_silent = r.read_u64();
  return s;
}
}  // namespace

u64 Cell::config_fingerprint() const {
  u64 h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mixd = [&mix](double d) { mix(std::bit_cast<u64>(d)); };
  mix(cfg_.cell);
  mix(cfg_.farm_seed);
  mix(cfg_.num_ues);
  mix(cfg_.sc_per_pdu);
  mix(cfg_.carrier.num_subcarriers());
  mix(cfg_.carrier.symbols_per_slot);
  mixd(cfg_.clock_hz);
  mix(cfg_.groups.size());
  for (const ran::UeGroup& g : cfg_.groups) {
    mix(g.ntx);
    mix(g.nrx);
    mix(g.qam_order);
    mixd(g.snr_db);
    mix(static_cast<u64>(g.channel));
    mixd(g.weight);
  }
  mix(cfg_.harq.num_processes);
  mix(cfg_.harq.max_attempts);
  mix(cfg_.harq.enabled ? 1 : 0);
  mix(cfg_.harq.feedback_timeout_slots);
  mix(cfg_.burst.enabled ? 1 : 0);
  mixd(cfg_.burst.duty);
  mixd(cfg_.burst.mean_on_slots);
  mixd(cfg_.burst.arrival_prob);
  mixd(cfg_.burst.diurnal_period_ttis);
  mixd(cfg_.burst.diurnal_depth);
  mix(cfg_.pool.num_clusters);
  mix(static_cast<u64>(cfg_.pool.prec));
  mix(cfg_.pool.problems_per_core);
  mix(cfg_.pool.batch_cores);
  mix(static_cast<u64>(cfg_.pool.policy));
  mix(cfg_.fault.enabled ? 1 : 0);
  mix(cfg_.fault.seed);
  mixd(cfg_.fault.hart_trap_rate);
  mixd(cfg_.fault.hart_hang_rate);
  mixd(cfg_.fault.l1_flip_rate);
  mixd(cfg_.fault.l1_double_bit_fraction);
  mix(cfg_.fault.ecc ? 1 : 0);
  mix(cfg_.fault.cluster_fail_tti);
  mix(cfg_.fault.cluster_fail_id);
  mixd(cfg_.fault.drop_indication_rate);
  mixd(cfg_.fault.delay_indication_rate);
  mix(cfg_.fault.delay_slots);
  return h;
}

void Cell::save_state(sim::SnapshotWriter& w) const {
  w.tag(kCellTag);
  w.write_u64(config_fingerprint());
  w.write_u32(ttis_run_);
  w.write_u64(crc_fail_);
  w.write_u64(dropped_ind_);
  w.write_u64(delayed_ind_);

  w.write_u64(ues_.size());
  for (const Ue& ue : ues_) {
    w.write_u32(ue.group);
    w.write_bool(ue.on);
    ue.harq.save_state(w);
  }

  w.write_u64(delayed_.size());
  for (const DelayedInd& d : delayed_) {
    w.write_u64(d.due_tti);
    w.write_u32(d.ind.cell);
    w.write_u64(d.ind.tti);
    w.write_u64(d.ind.slot_cycles);
    w.write_bool(d.ind.deadline_met);
    w.write_u64(d.ind.crcs.size());
    for (const CrcResult& c : d.ind.crcs) {
      w.write_u32(c.ue);
      w.write_u32(c.harq_process);
      w.write_bool(c.crc_pass);
      w.write_u64(c.bit_errors);
      w.write_u64(c.bits);
    }
  }

  w.write_u64(results_.size());
  for (const ran::SlotResult& s : results_) save_slot_result(w, s);

  scheduler_.save_state(w);
}

void Cell::restore_state(sim::SnapshotReader& r) {
  r.expect_tag(kCellTag, "Cell");
  if (r.read_u64() != config_fingerprint())
    r.fail("snapshot was captured under a different cell configuration");
  ttis_run_ = r.read_u32();
  crc_fail_ = r.read_u64();
  dropped_ind_ = r.read_u64();
  delayed_ind_ = r.read_u64();

  if (r.read_u64() != ues_.size()) r.fail("UE population size mismatch");
  for (Ue& ue : ues_) {
    const u32 group = r.read_u32();
    if (group != ue.group) r.fail("UE group assignment mismatch");
    ue.on = r.read_bool();
    ue.harq.restore_state(r);
  }

  const u64 ndelayed = r.read_u64();
  delayed_.clear();
  for (u64 i = 0; i < ndelayed; ++i) {
    DelayedInd d;
    d.due_tti = r.read_u64();
    d.ind.cell = r.read_u32();
    d.ind.tti = r.read_u64();
    d.ind.slot_cycles = r.read_u64();
    d.ind.deadline_met = r.read_bool();
    const u64 ncrcs = r.read_u64();
    d.ind.crcs.reserve(ncrcs);
    for (u64 k = 0; k < ncrcs; ++k) {
      CrcResult c;
      c.ue = r.read_u32();
      c.harq_process = r.read_u32();
      c.crc_pass = r.read_bool();
      c.bit_errors = r.read_u64();
      c.bits = r.read_u64();
      if (c.ue >= ues_.size()) r.fail("delayed indication targets unknown UE");
      d.ind.crcs.push_back(c);
    }
    delayed_.push_back(std::move(d));
  }

  const u64 nresults = r.read_u64();
  results_.clear();
  results_.reserve(nresults);
  for (u64 i = 0; i < nresults; ++i) results_.push_back(load_slot_result(r));

  scheduler_.restore_state(r);
}

CellReport Cell::report() const {
  CellReport rep;
  rep.cell = cfg_.cell;
  rep.ues = cfg_.num_ues;
  rep.ttis = ttis_run_;
  for (const Ue& ue : ues_) {
    const HarqStats& s = ue.harq.stats();
    rep.harq.new_tx += s.new_tx;
    rep.harq.retx += s.retx;
    rep.harq.acks += s.acks;
    rep.harq.drops += s.drops;
    rep.harq.stalls += s.stalls;
    rep.harq.timeouts += s.timeouts;
    rep.harq.offered_bits += s.offered_bits;
    rep.harq.delivered_bits += s.delivered_bits;
    rep.harq.dropped_bits += s.dropped_bits;
    // Summed per-UE peaks: the cell's worst case if every UE peaked at
    // once (an upper bound; exact per-UE peaks, summed).
    rep.harq.soft_buffer_peak_bits += s.soft_buffer_peak_bits;
    rep.unresolved += ue.harq.unresolved();
  }
  rep.pdus = rep.harq.transmissions();
  rep.crc_fail = crc_fail_;

  const ran::AggregateReport agg =
      ran::aggregate_report(results_, cfg_.carrier, cfg_.clock_hz);
  rep.bits = agg.total_bits;
  rep.errors = agg.total_errors;
  rep.slots = agg.slots;
  rep.misses = agg.misses;
  rep.worst_cycles = agg.worst_cycles;
  rep.p50_cycles = agg.p50_cycles;
  rep.p99_cycles = agg.p99_cycles;
  rep.reloads = agg.reloads;
  rep.reload_cycles = agg.reload_cycles;
  rep.dropped_ind = dropped_ind_;
  rep.delayed_ind = delayed_ind_;
  rep.degraded_slots = agg.degraded_slots;
  rep.hart_faults = agg.hart_faults;
  rep.ecc_corrected = agg.ecc_corrected;
  rep.ecc_detected = agg.ecc_detected;
  rep.ecc_silent = agg.ecc_silent;
  return rep;
}

}  // namespace tsim::mac
