// One gNB cell of the farm: a persistent UE population (HARQ entities +
// on/off burst arrival state) closed-loop against the L1 slot engine.
//
// Per TTI the cell
//   1. builds a FAPI-style SlotRequest (build_request): retransmissions
//      first (lowest HARQ process id, UE order rotated per TTI for
//      fairness), then new data for UEs whose burst process is "on" and
//      whose arrival draw fires, packed symbol-major into the carrier grid
//      at sc_per_pdu subcarriers per PDU until capacity runs out;
//   2. expands the request into a ran::SlotWorkload (build_workload): one
//      Allocation per PDU, generated at the PDU's Chase-combined effective
//      SNR from an Rng stream keyed by (cell seed, tti, symbol, subcarrier)
//      - identity, not draw order, so any shard reproduces the same bits;
//   3. runs it on the cell's own ran::SlotScheduler cluster pool and folds
//      SlotResult::allocation_errors into a SlotIndication (run_slot);
//   4. feeds the CRC outcomes back into the UEs' HARQ processes
//      (apply_indication) - ACK frees the process, NACK retransmits at
//      boosted SNR or drops after the attempt budget.
//
// Retransmission modelling: a retransmission is a fresh realization of the
// block (bits, channel, noise) at the combined effective SNR. Chase
// combining is captured in the success statistics of each attempt, not by
// carrying soft values across slots through the bit-true detector.
//
// Everything the cell does is a deterministic function of (CellConfig,
// tti): burst transitions, arrivals and payloads use Rng::keyed streams and
// the scheduler's accounting is host-thread-invariant, so a cell simulated
// in any farm shard (or any host process) produces bit-identical reports.
#pragma once

#include <vector>

#include "mac/fapi.h"
#include "mac/harq.h"
#include "ran/deadline.h"
#include "ran/scheduler.h"
#include "ran/traffic.h"

namespace tsim::mac {

/// Per-UE on/off burst arrival process, layered on the slot engine's
/// Poisson path: while "on" a UE offers new data with arrival_prob per slot
/// (Bernoulli thinning - the aggregate arrival stream stays Poisson-like),
/// while "off" only pending retransmissions go out. State transitions form
/// a two-state Markov chain with the configured duty cycle and mean burst
/// length; an optional diurnal term modulates the on-rate over TTIs.
struct BurstConfig {
  bool enabled = false;        // false: every UE offers new data every slot
  double duty = 0.5;           // stationary fraction of slots a UE is on
  double mean_on_slots = 8.0;  // expected burst length (slots)
  double arrival_prob = 1.0;   // P(new transport block | on) per slot
  double diurnal_period_ttis = 0.0;  // 0 = no diurnal modulation
  double diurnal_depth = 0.0;  // fractional swing of the on-rate, in [0, 1]

  void validate() const;
  /// P(off -> on) at `tti`, including the diurnal modulation.
  double p_on(u64 tti) const;
  /// P(on -> off) per slot: 1 / mean burst length.
  double p_off() const { return 1.0 / mean_on_slots; }
};

struct CellConfig {
  u32 cell = 0;
  u64 farm_seed = 0xFA21;
  u32 num_ues = 64;     // persistent UEs; service class = ue % groups.size()
  u32 sc_per_pdu = 4;   // allocation width (subcarriers) of one PDU
  phy::CarrierConfig carrier;             // callers shrink this for soaks
  std::vector<ran::UeGroup> groups;       // service classes (geometry/QAM/SNR)
  HarqConfig harq;
  BurstConfig burst;
  ran::ClusterPoolConfig pool;
  double clock_hz = 1e9;
  /// Farm-level fault plan (sim/fault.h). When enabled it is re-seeded per
  /// cell (cell_fault_seed) and installed into the cell's cluster pool, so
  /// every cell draws independent fault streams from one farm-level knob;
  /// FAPI indication faults are drawn from the same per-cell seed.
  sim::FaultConfig fault;

  void validate() const;
  /// The cell's deterministic seed: keyed by (farm_seed, cell) only, so a
  /// farm shard reconstructs it from the shared config without coordination.
  u64 cell_seed() const;
};

/// Integer-only per-cell aggregate. Every field is an exact count (or cycle
/// total), so a report serialized through the farm's JSON pipe round-trips
/// bit-identically - the derived rates live in accessors, not fields.
struct CellReport {
  u32 cell = 0;
  u32 ues = 0;
  u32 ttis = 0;
  HarqStats harq;          // summed over the cell's UEs
  u64 pdus = 0;            // PDUs carried to L1 (= harq.transmissions())
  u64 crc_fail = 0;        // transmissions whose CRC failed
  u64 unresolved = 0;      // blocks still awaiting feedback at end of run
  u64 bits = 0;            // detector payload bits over all slots
  u64 errors = 0;          // detector bit errors over all slots
  u64 slots = 0;           // slots processed (== ttis)
  u64 misses = 0;          // slots over the TTI deadline
  u64 worst_cycles = 0;
  u64 p50_cycles = 0;
  u64 p99_cycles = 0;
  u64 reloads = 0;
  u64 reload_cycles = 0;
  // Fault-injection outcome (all zero with faults off; harq.timeouts carries
  // the feedback-timeout count).
  u64 dropped_ind = 0;     // FAPI SlotIndications lost
  u64 delayed_ind = 0;     // FAPI SlotIndications delivered late
  u64 degraded_slots = 0;  // slots run degraded (dead cluster / failed batch)
  u64 hart_faults = 0;     // injected ISS hart faults that fired
  u64 ecc_corrected = 0;   // SECDED single-bit L1 upsets scrubbed
  u64 ecc_detected = 0;    // double-bit L1 upsets detected (corrupting)
  u64 ecc_silent = 0;      // ECC-off L1 upsets (silent corruption)

  double residual_bler() const { return harq.residual_bler(); }
  double retx_fraction() const { return harq.retx_fraction(); }
  double crc_fail_fraction() const {
    return pdus == 0 ? 0.0
                     : static_cast<double>(crc_fail) / static_cast<double>(pdus);
  }
  /// Delivered MAC throughput over the simulated wall time, in Mb/s.
  double delivered_mbps(double tti_seconds) const {
    return ttis == 0 ? 0.0
                     : static_cast<double>(harq.delivered_bits) /
                           (static_cast<double>(ttis) * tti_seconds) / 1e6;
  }

  bool operator==(const CellReport& o) const;
};

class Cell {
 public:
  explicit Cell(const CellConfig& cfg);

  /// MAC scheduling decision for `tti` (mutates HARQ/burst state: grants
  /// mark transmissions in flight).
  SlotRequest build_request(u64 tti);
  /// Expands a request into the L1 workload (pure; keyed RNG streams).
  ran::SlotWorkload build_workload(const SlotRequest& req) const;
  /// Runs the workload on the cell's cluster pool and builds the CRC
  /// indication from the per-allocation outcomes.
  SlotIndication run_slot(const SlotRequest& req);
  /// Feeds CRC outcomes back into the UEs' HARQ processes.
  void apply_indication(const SlotIndication& ind);

  /// One full closed-loop TTI: request -> workload -> L1 -> indication ->
  /// HARQ feedback.
  void step(u64 tti);

  CellReport report() const;
  /// Slim per-slot results (detected bits stripped) for AggregateReport.
  const std::vector<ran::SlotResult>& slot_results() const { return results_; }
  const CellConfig& config() const { return cfg_; }
  /// TTIs stepped so far == the TTI the next step() call should receive.
  u32 ttis_run() const { return ttis_run_; }

  // ---- fast-forward observability (pool.fast_forward) ----
  /// Quiescent TTIs skipped wholesale by step()'s fast path (always 0 with
  /// fast_forward off). Purely observational: the archived per-slot state of
  /// a skipped TTI is bit-identical to the cycle-by-cycle path.
  u64 ff_idle_ttis() const { return ff_idle_ttis_; }
  /// Batch shrink statistics from the cell's scheduler.
  ran::SlotScheduler::FastForwardStats ff_batch_stats() const {
    return scheduler_.fast_forward_stats();
  }

  // ---- checkpoint/restore (sim/snapshot.h) ----
  /// Identity of the configuration a snapshot belongs to (FNV-1a over every
  /// parameter that shapes the trajectory). restore_state refuses a payload
  /// captured under a different fingerprint, so a snapshot from another
  /// seed/carrier/fault plan fails loudly instead of restoring wrong.
  u64 config_fingerprint() const;
  /// Serializes the cell's complete closed-loop state at a TTI boundary:
  /// UE populations (burst state + HARQ processes/soft-buffer bookkeeping,
  /// in-flight attempts and their feedback timers included), fault-delayed
  /// indications, the per-slot result history the report percentiles read,
  /// the cumulative counters, and the scheduler (cluster machines +
  /// program residency). Traffic/arrival/payload RNG streams are keyed by
  /// identity (seed, tti, ue, ...) and carry no position - restore
  /// re-derives them exactly, so nothing RNG-shaped is serialized.
  void save_state(sim::SnapshotWriter& w) const;
  /// Restores into a freshly constructed Cell of the same configuration.
  /// Stepping the restored cell from ttis_run() onward is bit-identical to
  /// the uninterrupted run (tests/snapshot_test.cpp pins this byte-for-
  /// byte). Throws sim::SnapshotError on any mismatch or corruption.
  void restore_state(sim::SnapshotReader& r);

 private:
  struct Ue {
    u32 group = 0;
    bool on = true;        // burst state (always true when bursts disabled)
    HarqEntity harq;
    explicit Ue(u32 g, const HarqConfig& h) : group(g), harq(h) {}
  };

  /// Payload bits of one PDU of UE `ue` (sc_per_pdu problems x ntx layers x
  /// bits/symbol of the UE's constellation).
  u64 pdu_bits(u32 ue) const;
  /// Advances every UE's on/off Markov chain to `tti`. Guarded so the
  /// transition applies exactly once per TTI (the fast-forward quiescence
  /// probe and build_request may both ask for the same TTI): the chain draw
  /// is keyed by (seed, tti, ue) but the state update is not idempotent.
  void update_burst_states(u64 tti);
  /// True when this TTI provably builds an empty request with zero side
  /// effects: every UE off (after this TTI's burst transitions), no pending
  /// retransmission, nothing in flight awaiting feedback, no fault-delayed
  /// indication queued and no indication faults configured.
  bool quiescent() const;

  CellConfig cfg_;
  u64 seed_ = 0;  // cell_seed(), cached
  /// cfg_.fault re-seeded with the per-cell fault seed (drives the FAPI
  /// indication draws; the pool carries its own copy).
  sim::FaultConfig fault_;
  std::vector<Ue> ues_;
  std::vector<phy::Channel> channels_;   // one per group
  std::vector<phy::QamModulator> mods_;  // one per group
  ran::SlotScheduler scheduler_;
  std::vector<ran::SlotResult> results_;
  /// Indications delayed by the fault plan, awaiting their delivery TTI
  /// (flushed in insertion order at the start of each step).
  struct DelayedInd {
    u64 due_tti = 0;
    SlotIndication ind;
  };
  std::vector<DelayedInd> delayed_;
  u64 crc_fail_ = 0;
  u64 dropped_ind_ = 0;
  u64 delayed_ind_ = 0;
  u32 ttis_run_ = 0;
  /// Last TTI whose burst transitions were applied (update_burst_states
  /// guard). Not serialized: snapshots land on TTI boundaries, so the
  /// restored default never matches the next TTI stepped.
  u64 last_burst_tti_ = ~0ull;
  u64 ff_idle_ttis_ = 0;  // quiescent TTIs short-circuited by step()
};

}  // namespace tsim::mac
