// FAPI-style slot messaging between the MAC layer (src/mac/) and the L1
// slot scheduler (ran::SlotScheduler) - the control-plane seam of the
// multi-cell gNB farm.
//
// The interface mirrors the two messages that carry a PUSCH slot through a
// 5G FAPI / O-RAN split (SCF 222 "5G FAPI: PHY API"), reduced to what the
// simulated uplink needs:
//
//             MAC (mac::Cell)                         L1 (ran::SlotScheduler)
//   TTI n:    ------ SlotRequest (UL_TTI.request) ------------------------>
//             per-UE PduDescriptor: RNTI-like ue id,     expands PDUs into
//             HARQ process id, new-data indicator,       a SlotWorkload
//             transmission number, symbol/subcarrier     (one Allocation
//             allocation, effective SNR after Chase      per PDU) and runs
//             combining                                  it on the cluster
//                                                        pool
//   TTI n:    <----- SlotIndication (CRC.indication) ----------------------
//             per-PDU CrcResult: pass/fail + measured    per-allocation bit
//             BER + bit counts, plus the slot's          errors come from
//             latency/deadline verdict                   SlotResult::
//                                                        allocation_errors
//
// The MAC closes the loop: CRC failures advance the UE's HARQ process
// (retransmission at Chase-boosted effective SNR, or drop after the last
// permitted attempt), CRC passes free the process for new data. Because the
// exchange is two plain structs, an external MAC scheduler can be plugged
// in later by speaking these messages instead of mac::Cell's built-in
// scheduler (cf. the O-RAN FAPI translator's config/worker split).
//
// CRC model: a PDU "passes CRC" iff the detector reproduced every payload
// bit of the PDU (SlotResult::allocation_errors[pdu] == 0). There is no
// separate CRC field to corrupt - the ground-truth bits are known - so the
// indication's pass/fail is exact rather than probabilistic.
#pragma once

#include <vector>

#include "common/types.h"

namespace tsim::mac {

/// One UE's PUSCH PDU within a slot request (UL_TTI.request PDU entry).
struct PduDescriptor {
  u32 ue = 0;                 // UE id within the cell (RNTI stand-in)
  u32 harq_process = 0;       // HARQ process carrying the transport block
  bool new_data = true;       // new-data indicator (false = retransmission)
  u32 transmission = 1;       // 1-based transmission number (attempts so far)
  u32 group = 0;              // UE service class -> ran::UeGroup index
  u32 symbol = 0;             // OFDM symbol of the allocation
  u32 first_subcarrier = 0;   // grid position within the symbol
  u32 num_subcarriers = 0;    // allocation width
  double effective_snr_db = 0.0;  // base SNR + Chase combining boost
  u64 pdu_bits = 0;           // payload bits of the transport block
};

/// MAC -> L1: everything the PHY needs to process one cell's slot
/// (UL_TTI.request-like).
struct SlotRequest {
  u32 cell = 0;
  u64 tti = 0;
  std::vector<PduDescriptor> pdus;

  u64 total_bits() const {
    u64 n = 0;
    for (const PduDescriptor& p : pdus) n += p.pdu_bits;
    return n;
  }
};

/// Per-PDU uplink outcome (CRC.indication PDU entry).
struct CrcResult {
  u32 ue = 0;
  u32 harq_process = 0;
  bool crc_pass = false;
  u64 bit_errors = 0;   // hard-decision errors vs the transmitted bits
  u64 bits = 0;         // payload bits of the PDU
  double ber() const {
    return bits == 0 ? 0.0
                     : static_cast<double>(bit_errors) / static_cast<double>(bits);
  }
};

/// L1 -> MAC: per-PDU CRC outcomes plus the slot's timing verdict
/// (CRC.indication-like, with the SLOT.indication timing folded in).
struct SlotIndication {
  u32 cell = 0;
  u64 tti = 0;
  std::vector<CrcResult> crcs;   // same order as SlotRequest::pdus
  u64 slot_cycles = 0;           // L1 critical path of the slot
  bool deadline_met = true;      // slot_cycles vs the TTI budget at the clock

  u64 failed() const {
    u64 n = 0;
    for (const CrcResult& c : crcs) n += c.crc_pass ? 0 : 1;
    return n;
  }
};

}  // namespace tsim::mac
