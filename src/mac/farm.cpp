#include "mac/farm.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "sim/report.h"

#if defined(__unix__) || defined(__APPLE__)
#define TSIM_FARM_HAS_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define TSIM_FARM_HAS_FORK 0
#endif

namespace tsim::mac {

void FarmConfig::validate() const {
  check(cells >= 1, "FarmConfig: need at least one cell");
  check(shards >= 1, "FarmConfig: need at least one shard");
  check(ttis >= 1, "FarmConfig: need at least one TTI");
  // Everything else is validated per cell when the Cell is built.
  cell_config(0).validate();
}

CellConfig FarmConfig::cell_config(u32 cell) const {
  CellConfig c;
  c.cell = cell;
  c.farm_seed = seed;
  c.num_ues = ues_per_cell;
  c.sc_per_pdu = sc_per_pdu;
  c.carrier = carrier;
  c.groups = groups.empty() ? ran::mixed_geometry_groups() : groups;
  c.harq = harq;
  c.burst = burst;
  c.pool = pool;
  c.clock_hz = clock_hz;
  return c;
}

CellReport FarmResult::total() const {
  CellReport t;
  for (const CellReport& c : cells) {
    t.ues += c.ues;
    t.ttis = std::max(t.ttis, c.ttis);
    t.harq.new_tx += c.harq.new_tx;
    t.harq.retx += c.harq.retx;
    t.harq.acks += c.harq.acks;
    t.harq.drops += c.harq.drops;
    t.harq.stalls += c.harq.stalls;
    t.harq.offered_bits += c.harq.offered_bits;
    t.harq.delivered_bits += c.harq.delivered_bits;
    t.harq.dropped_bits += c.harq.dropped_bits;
    t.harq.soft_buffer_peak_bits += c.harq.soft_buffer_peak_bits;
    t.pdus += c.pdus;
    t.crc_fail += c.crc_fail;
    t.unresolved += c.unresolved;
    t.bits += c.bits;
    t.errors += c.errors;
    t.slots += c.slots;
    t.misses += c.misses;
    // Cells run concurrently on independent hardware, so farm-level timing
    // is the worst cell's: max of worsts and of per-cell percentiles.
    t.worst_cycles = std::max(t.worst_cycles, c.worst_cycles);
    t.p50_cycles = std::max(t.p50_cycles, c.p50_cycles);
    t.p99_cycles = std::max(t.p99_cycles, c.p99_cycles);
    t.reloads += c.reloads;
    t.reload_cycles += c.reload_cycles;
  }
  return t;
}

CellReport run_cell(const FarmConfig& cfg, u32 cell) {
  Cell c(cfg.cell_config(cell));
  for (u32 t = 0; t < cfg.ttis; ++t) c.step(t);
  return c.report();
}

std::vector<std::string> cell_report_header() {
  return {"cell",       "ues",          "ttis",           "pdus",
          "new_tx",     "retx",         "acks",           "drops",
          "stalls",     "crc_fail",     "offered_bits",   "delivered_bits",
          "dropped_bits", "soft_peak_bits", "unresolved", "bits",
          "errors",     "slots",        "misses",         "worst_cycles",
          "p50_cycles", "p99_cycles",   "reloads",        "reload_cycles"};
}

std::vector<std::string> cell_report_row(const CellReport& rep) {
  const auto u = [](u64 v) {
    return sim::strf("%llu", static_cast<unsigned long long>(v));
  };
  return {u(rep.cell),
          u(rep.ues),
          u(rep.ttis),
          u(rep.pdus),
          u(rep.harq.new_tx),
          u(rep.harq.retx),
          u(rep.harq.acks),
          u(rep.harq.drops),
          u(rep.harq.stalls),
          u(rep.crc_fail),
          u(rep.harq.offered_bits),
          u(rep.harq.delivered_bits),
          u(rep.harq.dropped_bits),
          u(rep.harq.soft_buffer_peak_bits),
          u(rep.unresolved),
          u(rep.bits),
          u(rep.errors),
          u(rep.slots),
          u(rep.misses),
          u(rep.worst_cycles),
          u(rep.p50_cycles),
          u(rep.p99_cycles),
          u(rep.reloads),
          u(rep.reload_cycles)};
}

CellReport cell_report_from_row(
    const std::vector<std::pair<std::string, std::string>>& row) {
  const auto field = [&](const char* key) -> u64 {
    for (const auto& [k, v] : row) {
      if (k == key) {
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
        check(end != v.c_str() && *end == '\0',
              std::string("farm row: non-integer value for '") + key + "'");
        return static_cast<u64>(parsed);
      }
    }
    throw SimError(std::string("farm row: missing field '") + key + "'");
  };
  CellReport rep;
  rep.cell = static_cast<u32>(field("cell"));
  rep.ues = static_cast<u32>(field("ues"));
  rep.ttis = static_cast<u32>(field("ttis"));
  rep.pdus = field("pdus");
  rep.harq.new_tx = field("new_tx");
  rep.harq.retx = field("retx");
  rep.harq.acks = field("acks");
  rep.harq.drops = field("drops");
  rep.harq.stalls = field("stalls");
  rep.crc_fail = field("crc_fail");
  rep.harq.offered_bits = field("offered_bits");
  rep.harq.delivered_bits = field("delivered_bits");
  rep.harq.dropped_bits = field("dropped_bits");
  rep.harq.soft_buffer_peak_bits = field("soft_peak_bits");
  rep.unresolved = field("unresolved");
  rep.bits = field("bits");
  rep.errors = field("errors");
  rep.slots = field("slots");
  rep.misses = field("misses");
  rep.worst_cycles = field("worst_cycles");
  rep.p50_cycles = field("p50_cycles");
  rep.p99_cycles = field("p99_cycles");
  rep.reloads = field("reloads");
  rep.reload_cycles = field("reload_cycles");
  return rep;
}

namespace {

FarmResult run_farm_inline(const FarmConfig& cfg) {
  FarmResult result;
  result.cells.reserve(cfg.cells);
  for (u32 c = 0; c < cfg.cells; ++c) result.cells.push_back(run_cell(cfg, c));
  return result;
}

}  // namespace

#if TSIM_FARM_HAS_FORK

FarmResult run_farm(const FarmConfig& cfg) {
  cfg.validate();
  const u32 shards = std::min(cfg.shards, cfg.cells);
  if (shards <= 1) return run_farm_inline(cfg);

  // Fork one worker per shard. Shard s owns cells {c : c % shards == s} and
  // streams their reports back as JSON rows over its pipe. stdio buffers
  // are flushed before forking so a worker cannot replay buffered output.
  std::fflush(stdout);
  std::fflush(stderr);
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<Worker> workers(shards);
  for (u32 s = 0; s < shards; ++s) {
    int fds[2];
    check(::pipe(fds) == 0, "run_farm: pipe() failed");
    const pid_t pid = ::fork();
    check(pid >= 0, "run_farm: fork() failed");
    if (pid == 0) {
      // Worker process. _exit (not exit) so the parent's atexit/stdio state
      // is never touched twice; exit status reports failure.
      ::close(fds[0]);
      for (u32 prev = 0; prev < s; ++prev) ::close(workers[prev].fd);
      int status = 0;
      std::FILE* out = ::fdopen(fds[1], "w");
      if (out == nullptr) ::_exit(3);
      std::vector<std::vector<std::string>> rows;
      try {
        for (u32 c = s; c < cfg.cells; c += shards)
          rows.push_back(cell_report_row(run_cell(cfg, c)));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "farm shard %u: %s\n", s, e.what());
        status = 4;
      }
      if (status == 0) sim::write_json_rows(out, cell_report_header(), rows);
      std::fclose(out);
      ::_exit(status);
    }
    ::close(fds[1]);
    workers[s] = Worker{pid, fds[0]};
  }

  // Gather: drain every pipe and reap every worker before deciding the
  // outcome, so a failing shard cannot leak children or block siblings.
  FarmResult result;
  result.cells.resize(cfg.cells);
  std::vector<u8> filled(cfg.cells, 0);
  std::string error;
  for (u32 s = 0; s < shards; ++s) {
    std::string text;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(workers[s].fd, buf, sizeof buf)) > 0)
      text.append(buf, static_cast<size_t>(n));
    ::close(workers[s].fd);
    int status = 0;
    ::waitpid(workers[s].pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      if (error.empty())
        error = sim::strf("run_farm: shard %u worker failed (status %d)", s,
                          status);
      continue;
    }
    std::vector<std::vector<std::pair<std::string, std::string>>> rows;
    if (!sim::parse_json_rows(text, rows)) {
      if (error.empty())
        error = sim::strf("run_farm: shard %u returned malformed JSON", s);
      continue;
    }
    try {
      for (const auto& row : rows) {
        CellReport rep = cell_report_from_row(row);
        check(rep.cell < cfg.cells && filled[rep.cell] == 0,
              "run_farm: duplicate or out-of-range cell in shard output");
        filled[rep.cell] = 1;
        result.cells[rep.cell] = rep;
      }
    } catch (const std::exception& e) {
      if (error.empty()) error = e.what();
    }
  }
  check(error.empty(), error);
  for (u32 c = 0; c < cfg.cells; ++c)
    check(filled[c] != 0, sim::strf("run_farm: no report for cell %u", c));
  return result;
}

#else  // !TSIM_FARM_HAS_FORK

FarmResult run_farm(const FarmConfig& cfg) {
  cfg.validate();
  if (cfg.shards > 1)
    std::fprintf(stderr,
                 "run_farm: no fork() on this platform, running inline\n");
  return run_farm_inline(cfg);
}

#endif

}  // namespace tsim::mac
