#include "mac/farm.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "common/error.h"
#include "sim/report.h"
#include "sim/snapshot.h"

#if defined(__unix__) || defined(__APPLE__)
#define TSIM_FARM_HAS_FORK 1
#include <cerrno>
#include <chrono>
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#ifndef TSIM_FARM_HAS_FORK
#define TSIM_FARM_HAS_FORK 0
#endif

namespace tsim::mac {

const char* farm_policy_name(FarmPolicy p) {
  switch (p) {
    case FarmPolicy::kFailFast: return "fail_fast";
    case FarmPolicy::kRetry: return "retry";
    case FarmPolicy::kDegrade: return "degrade";
  }
  return "?";
}

FarmPolicy parse_farm_policy(const std::string& name) {
  if (name == "fail_fast") return FarmPolicy::kFailFast;
  if (name == "retry") return FarmPolicy::kRetry;
  if (name == "degrade") return FarmPolicy::kDegrade;
  throw SimError("unknown farm policy '" + name +
                 "' (expected fail_fast, retry or degrade)");
}

void FarmConfig::validate() const {
  check(cells >= 1, "FarmConfig: need at least one cell");
  check(shards >= 1, "FarmConfig: need at least one shard");
  check(ttis >= 1, "FarmConfig: need at least one TTI");
  check(max_shard_attempts >= 1, "FarmConfig: need at least one shard attempt");
  check(shard_timeout_s >= 0.0, "FarmConfig: negative shard timeout");
  // A stalled worker writes nothing and never exits: only the wall-clock
  // timeout can resolve it, so injecting a stall requires one.
  check(host_fault.stall_shard == sim::HostFaultConfig::kNone ||
            shard_timeout_s > 0.0,
        "FarmConfig: stall injection needs shard_timeout_s > 0");
  check(checkpoint_every == 0 || !checkpoint_dir.empty(),
        "FarmConfig: checkpoint_every needs a checkpoint_dir");
  check(!resume || !checkpoint_dir.empty(),
        "FarmConfig: resume needs a checkpoint_dir");
  // Everything else is validated per cell when the Cell is built.
  cell_config(0).validate();
}

CellConfig FarmConfig::cell_config(u32 cell) const {
  CellConfig c;
  c.cell = cell;
  c.farm_seed = seed;
  c.num_ues = ues_per_cell;
  c.sc_per_pdu = sc_per_pdu;
  c.carrier = carrier;
  c.groups = groups.empty() ? ran::mixed_geometry_groups() : groups;
  c.harq = harq;
  c.burst = burst;
  c.pool = pool;
  c.clock_hz = clock_hz;
  c.fault = fault;
  return c;
}

std::vector<u32> FarmResult::missing_cells() const {
  std::vector<u32> out;
  for (const ShardFailure& f : failures) {
    if (f.recovered) continue;
    out.insert(out.end(), f.cells.begin(), f.cells.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CellReport FarmResult::total() const {
  CellReport t;
  for (const CellReport& c : cells) {
    t.ues += c.ues;
    t.ttis = std::max(t.ttis, c.ttis);
    t.harq.new_tx += c.harq.new_tx;
    t.harq.retx += c.harq.retx;
    t.harq.acks += c.harq.acks;
    t.harq.drops += c.harq.drops;
    t.harq.stalls += c.harq.stalls;
    t.harq.timeouts += c.harq.timeouts;
    t.harq.offered_bits += c.harq.offered_bits;
    t.harq.delivered_bits += c.harq.delivered_bits;
    t.harq.dropped_bits += c.harq.dropped_bits;
    t.harq.soft_buffer_peak_bits += c.harq.soft_buffer_peak_bits;
    t.pdus += c.pdus;
    t.crc_fail += c.crc_fail;
    t.unresolved += c.unresolved;
    t.bits += c.bits;
    t.errors += c.errors;
    t.slots += c.slots;
    t.misses += c.misses;
    // Cells run concurrently on independent hardware, so farm-level timing
    // is the worst cell's: max of worsts and of per-cell percentiles.
    t.worst_cycles = std::max(t.worst_cycles, c.worst_cycles);
    t.p50_cycles = std::max(t.p50_cycles, c.p50_cycles);
    t.p99_cycles = std::max(t.p99_cycles, c.p99_cycles);
    t.reloads += c.reloads;
    t.reload_cycles += c.reload_cycles;
    t.dropped_ind += c.dropped_ind;
    t.delayed_ind += c.delayed_ind;
    t.degraded_slots += c.degraded_slots;
    t.hart_faults += c.hart_faults;
    t.ecc_corrected += c.ecc_corrected;
    t.ecc_detected += c.ecc_detected;
    t.ecc_silent += c.ecc_silent;
  }
  return t;
}

// ---- per-cell snapshot files ----

namespace {

/// Payload discriminator of a farm per-cell snapshot file ("CELL").
constexpr u32 kCellSnapshotKind = 0x4C4C4543;

/// Climbs the snapshot ladder for cell `cell`: newest valid snapshot first,
/// older ones on corruption, clean construction when none loads. Sets
/// *resumed_from to the snapshot TTI (-1 = clean start).
std::unique_ptr<Cell> make_resumed_cell(const FarmConfig& cfg, u32 cell,
                                        i64* resumed_from) {
  *resumed_from = -1;
  auto c = std::make_unique<Cell>(cfg.cell_config(cell));
  if (cfg.checkpoint_dir.empty()) return c;
  const std::vector<u64> ttis = list_cell_snapshots(cfg.checkpoint_dir, cell);
  for (size_t i = ttis.size(); i-- > 0;) {
    if (ttis[i] > cfg.ttis) continue;  // beyond this run's horizon
    try {
      load_cell_snapshot(*c,
                         cell_snapshot_path(cfg.checkpoint_dir, cell, ttis[i]));
      *resumed_from = static_cast<i64>(ttis[i]);
      return c;
    } catch (const sim::SnapshotError&) {
      // A failed restore may have partially mutated the cell: rebuild it
      // fresh before trying the next-older rung.
      c = std::make_unique<Cell>(cfg.cell_config(cell));
    }
  }
  return c;
}

}  // namespace

std::string cell_snapshot_path(const std::string& dir, u32 cell, u64 tti) {
  return dir + "/" +
         sim::strf("cell%04u_tti%08llu.snap", cell,
                   static_cast<unsigned long long>(tti));
}

void save_cell_snapshot(const Cell& cell, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // write reports real failures
  sim::SnapshotWriter w;
  w.write_u32(cell.config().cell);
  w.write_u64(cell.ttis_run());
  cell.save_state(w);
  sim::write_snapshot_file(
      cell_snapshot_path(dir, cell.config().cell, cell.ttis_run()),
      kCellSnapshotKind, w.payload());
}

u64 load_cell_snapshot(Cell& cell, const std::string& path) {
  sim::SnapshotReader r(sim::read_snapshot_file(path, kCellSnapshotKind), path);
  const u32 id = r.read_u32();
  if (id != cell.config().cell) r.fail("snapshot belongs to a different cell");
  const u64 tti = r.read_u64();
  cell.restore_state(r);
  r.expect_end();
  if (tti != cell.ttis_run())
    r.fail("snapshot TTI header disagrees with the restored state");
  return tti;
}

std::vector<u64> list_cell_snapshots(const std::string& dir, u32 cell) {
  std::vector<u64> ttis;
  const std::string prefix = sim::strf("cell%04u_tti", cell);
  const std::string suffix = ".snap";
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    char* parse_end = nullptr;
    const unsigned long long tti = std::strtoull(digits.c_str(), &parse_end, 10);
    if (parse_end != digits.c_str() && *parse_end == '\0')
      ttis.push_back(static_cast<u64>(tti));
  }
  std::sort(ttis.begin(), ttis.end());
  return ttis;
}

CellReport run_cell(const FarmConfig& cfg, u32 cell, bool allow_resume,
                    i64* resumed_from, FarmResult::FfActivity* ff) {
  std::unique_ptr<Cell> c;
  i64 from = -1;
  if (allow_resume && !cfg.checkpoint_dir.empty())
    c = make_resumed_cell(cfg, cell, &from);
  else
    c = std::make_unique<Cell>(cfg.cell_config(cell));
  if (resumed_from != nullptr) *resumed_from = from;
  const bool ckpt = cfg.checkpoint_every > 0 && !cfg.checkpoint_dir.empty();
  for (u32 t = static_cast<u32>(c->ttis_run()); t < cfg.ttis; ++t) {
    c->step(t);
    // Snapshot at interval boundaries; the final TTI is never snapshotted
    // (a finished run has nothing left to resume).
    if (ckpt && (t + 1) % cfg.checkpoint_every == 0 && t + 1 < cfg.ttis)
      save_cell_snapshot(*c, cfg.checkpoint_dir);
  }
  if (ff != nullptr) {
    const ran::SlotScheduler::FastForwardStats s = c->ff_batch_stats();
    ff->idle_ttis += c->ff_idle_ttis();
    ff->ttis += c->ttis_run();
    ff->full_batches += s.full_batches;
    ff->shrunk_batches += s.shrunk_batches;
    ff->cores_full += s.cores_full;
    ff->cores_run += s.cores_run;
  }
  return c->report();
}

CellReport run_cell(const FarmConfig& cfg, u32 cell) {
  return run_cell(cfg, cell, cfg.resume, nullptr);
}

// ---- failure bisection ----

std::string BisectPredicate::describe() const {
  switch (kind) {
    case Kind::kDeadlineMiss: return "deadline miss";
    case Kind::kDegradedSlot: return "degraded slot";
    case Kind::kResidualBler:
      return sim::strf("residual BLER >= %.4g", threshold);
  }
  return "?";
}

BisectPredicate parse_bisect_predicate(const std::string& spec) {
  BisectPredicate p;
  if (spec == "miss") {
    p.kind = BisectPredicate::Kind::kDeadlineMiss;
    return p;
  }
  if (spec == "degraded") {
    p.kind = BisectPredicate::Kind::kDegradedSlot;
    return p;
  }
  if (spec.rfind("bler=", 0) == 0) {
    const char* num = spec.c_str() + 5;
    char* end = nullptr;
    const double v = std::strtod(num, &end);
    check(end != num && *end == '\0' && v >= 0.0 && v <= 1.0,
          "bisect predicate: BLER threshold must be a number in [0, 1] in '" +
              spec + "'");
    p.kind = BisectPredicate::Kind::kResidualBler;
    p.threshold = v;
    return p;
  }
  throw SimError("unknown bisect predicate '" + spec +
                 "' (expected miss, degraded or bler=X)");
}

namespace {

/// Whether one already-run slot satisfies a per-slot predicate.
bool slot_is_bad(const BisectPredicate& p, const Cell& c,
                 const ran::SlotResult& r) {
  switch (p.kind) {
    case BisectPredicate::Kind::kDeadlineMiss:
      return !ran::slot_timing(r, c.config().carrier, c.config().clock_hz)
                  .meets_deadline();
    case BisectPredicate::Kind::kDegradedSlot:
      return r.degraded;
    case BisectPredicate::Kind::kResidualBler:
      return c.report().residual_bler() >= p.threshold;
  }
  return false;
}

/// Whether the predicate has fired anywhere in the cell's history so far -
/// evaluable from snapshot-held state alone (no re-simulation). For BLER the
/// check is the cumulative ratio at this boundary.
bool bad_by_boundary(const BisectPredicate& p, const Cell& c) {
  if (p.kind == BisectPredicate::Kind::kResidualBler)
    return c.report().residual_bler() >= p.threshold;
  for (const ran::SlotResult& r : c.slot_results())
    if (slot_is_bad(p, c, r)) return true;
  return false;
}

std::string bisect_trace_line(const Cell& c, u64 tti) {
  const ran::SlotResult& r = c.slot_results().back();
  const ran::SlotTiming t =
      ran::slot_timing(r, c.config().carrier, c.config().clock_hz);
  return sim::strf(
      "tti %llu: slot_cycles=%llu latency_us=%.1f deadline_us=%.1f miss=%d "
      "degraded=%d failed_batches=%llu hart_faults=%llu bler=%.4g",
      static_cast<unsigned long long>(tti),
      static_cast<unsigned long long>(r.slot_cycles),
      t.latency_seconds() * 1e6, t.tti_seconds * 1e6,
      t.meets_deadline() ? 0 : 1, r.degraded ? 1 : 0,
      static_cast<unsigned long long>(r.failed_batches),
      static_cast<unsigned long long>(r.hart_faults),
      c.report().residual_bler());
}

}  // namespace

BisectResult bisect_cell(const FarmConfig& cfg, u32 cell,
                         const BisectPredicate& pred) {
  cfg.validate();
  check(cell < cfg.cells, "bisect_cell: cell id out of range");
  check(!cfg.checkpoint_dir.empty(), "bisect_cell: needs a checkpoint_dir");

  const auto usable_snapshots = [&] {
    std::vector<u64> ttis = list_cell_snapshots(cfg.checkpoint_dir, cell);
    std::erase_if(ttis, [&](u64 t) { return t == 0 || t >= cfg.ttis; });
    return ttis;
  };
  std::vector<u64> snaps = usable_snapshots();
  if (snaps.empty() && cfg.checkpoint_every > 0) {
    // No snapshots on disk yet: one full run populates them (this is the
    // only full-length simulation bisection ever pays).
    run_cell(cfg, cell, /*allow_resume=*/false, nullptr);
    snaps = usable_snapshots();
  }

  BisectResult res;
  // Boundary list the binary search probes: TTI 0 (clean construction) plus
  // every snapshot. bad_by_boundary is evaluated on restored state only.
  std::vector<u64> bounds;
  bounds.push_back(0);
  bounds.insert(bounds.end(), snaps.begin(), snaps.end());

  const auto cell_at = [&](u64 boundary) {
    auto c = std::make_unique<Cell>(cfg.cell_config(cell));
    if (boundary > 0) {
      load_cell_snapshot(
          *c, cell_snapshot_path(cfg.checkpoint_dir, cell, boundary));
      ++res.snapshots_loaded;
    }
    return c;
  };

  // Binary search for the first bad boundary. `bad` == bounds.size() means
  // no probed boundary is bad (the failure, if any, is past the last
  // snapshot). The predicate is treated as monotone once it fires - exact
  // for miss/degraded (cumulative-any), conventional for the BLER ratio.
  size_t good = 0;
  size_t bad = bounds.size();
  if (bad_by_boundary(pred, *cell_at(bounds[0]))) bad = 0;
  while (bad - good > 1 && bad != 0) {
    const size_t mid = good + (bad - good) / 2;
    if (bad_by_boundary(pred, *cell_at(bounds[mid])))
      bad = mid;
    else
      good = mid;
  }
  if (bad == 0) {
    // Degenerate: the predicate holds on an empty history (bler=0).
    res.first_bad_tti = 0;
    res.window_start = 0;
    return res;
  }

  // Replay ONLY the final window, tracing per TTI until the predicate first
  // fires. The window is bounded by one checkpoint interval (or the tail of
  // the run when no boundary was bad).
  const u64 start = bounds[good];
  const u64 stop = bad < bounds.size() ? bounds[bad] : cfg.ttis;
  auto c = cell_at(start);
  res.window_start = static_cast<i64>(start);
  for (u64 t = start; t < stop; ++t) {
    c->step(t);
    ++res.ttis_replayed;
    res.window_trace.push_back(bisect_trace_line(*c, t));
    const bool fired = pred.kind == BisectPredicate::Kind::kResidualBler
                           ? c->report().residual_bler() >= pred.threshold
                           : slot_is_bad(pred, *c, c->slot_results().back());
    if (fired) {
      res.first_bad_tti = static_cast<i64>(t);
      break;
    }
  }
  return res;
}

std::vector<std::string> cell_report_header() {
  return {"cell",        "ues",           "ttis",           "pdus",
          "new_tx",      "retx",          "acks",           "drops",
          "stalls",      "crc_fail",      "offered_bits",   "delivered_bits",
          "dropped_bits", "soft_peak_bits", "unresolved",   "bits",
          "errors",      "slots",         "misses",         "worst_cycles",
          "p50_cycles",  "p99_cycles",    "reloads",        "reload_cycles",
          "timeouts",    "dropped_ind",   "delayed_ind",    "degraded_slots",
          "hart_faults", "ecc_corrected", "ecc_detected",   "ecc_silent"};
}

std::vector<std::string> cell_report_row(const CellReport& rep) {
  const auto u = [](u64 v) {
    return sim::strf("%llu", static_cast<unsigned long long>(v));
  };
  return {u(rep.cell),
          u(rep.ues),
          u(rep.ttis),
          u(rep.pdus),
          u(rep.harq.new_tx),
          u(rep.harq.retx),
          u(rep.harq.acks),
          u(rep.harq.drops),
          u(rep.harq.stalls),
          u(rep.crc_fail),
          u(rep.harq.offered_bits),
          u(rep.harq.delivered_bits),
          u(rep.harq.dropped_bits),
          u(rep.harq.soft_buffer_peak_bits),
          u(rep.unresolved),
          u(rep.bits),
          u(rep.errors),
          u(rep.slots),
          u(rep.misses),
          u(rep.worst_cycles),
          u(rep.p50_cycles),
          u(rep.p99_cycles),
          u(rep.reloads),
          u(rep.reload_cycles),
          u(rep.harq.timeouts),
          u(rep.dropped_ind),
          u(rep.delayed_ind),
          u(rep.degraded_slots),
          u(rep.hart_faults),
          u(rep.ecc_corrected),
          u(rep.ecc_detected),
          u(rep.ecc_silent)};
}

CellReport cell_report_from_row(
    const std::vector<std::pair<std::string, std::string>>& row) {
  const auto field = [&](const char* key) -> u64 {
    for (const auto& [k, v] : row) {
      if (k == key) {
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
        check(end != v.c_str() && *end == '\0',
              std::string("farm row: non-integer value for '") + key + "'");
        return static_cast<u64>(parsed);
      }
    }
    throw SimError(std::string("farm row: missing field '") + key + "'");
  };
  CellReport rep;
  rep.cell = static_cast<u32>(field("cell"));
  rep.ues = static_cast<u32>(field("ues"));
  rep.ttis = static_cast<u32>(field("ttis"));
  rep.pdus = field("pdus");
  rep.harq.new_tx = field("new_tx");
  rep.harq.retx = field("retx");
  rep.harq.acks = field("acks");
  rep.harq.drops = field("drops");
  rep.harq.stalls = field("stalls");
  rep.crc_fail = field("crc_fail");
  rep.harq.offered_bits = field("offered_bits");
  rep.harq.delivered_bits = field("delivered_bits");
  rep.harq.dropped_bits = field("dropped_bits");
  rep.harq.soft_buffer_peak_bits = field("soft_peak_bits");
  rep.unresolved = field("unresolved");
  rep.bits = field("bits");
  rep.errors = field("errors");
  rep.slots = field("slots");
  rep.misses = field("misses");
  rep.worst_cycles = field("worst_cycles");
  rep.p50_cycles = field("p50_cycles");
  rep.p99_cycles = field("p99_cycles");
  rep.reloads = field("reloads");
  rep.reload_cycles = field("reload_cycles");
  rep.harq.timeouts = field("timeouts");
  rep.dropped_ind = field("dropped_ind");
  rep.delayed_ind = field("delayed_ind");
  rep.degraded_slots = field("degraded_slots");
  rep.hart_faults = field("hart_faults");
  rep.ecc_corrected = field("ecc_corrected");
  rep.ecc_detected = field("ecc_detected");
  rep.ecc_silent = field("ecc_silent");
  return rep;
}

namespace {

FarmResult run_farm_inline(const FarmConfig& cfg) {
  FarmResult result;
  result.cells.reserve(cfg.cells);
  for (u32 c = 0; c < cfg.cells; ++c)
    result.cells.push_back(run_cell(cfg, c, cfg.resume, nullptr, &result.ff));
  return result;
}

}  // namespace

#if TSIM_FARM_HAS_FORK

namespace {

/// read(2) with EINTR retry: a signal mid-gather must not truncate a
/// shard's JSON (it used to fail the whole farm).
ssize_t read_eintr(int fd, char* buf, size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

pid_t waitpid_eintr(pid_t pid, int* status) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, 0);
    if (r >= 0 || errno != EINTR) return r;
  }
}

int poll_eintr(struct pollfd* fds, nfds_t n, int timeout_ms) {
  for (;;) {
    const int r = ::poll(fds, n, timeout_ms);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// Parent-side preview of the ladder rung cell `cell`'s next recovery will
/// resume from: the newest snapshot whose container decodes (CRC, kind,
/// cell id, TTI within the horizon); -1 = clean start. The worker's own
/// ladder additionally survives semantic corruption that slips past the
/// CRC by falling further - the preview can only be newer, never wrong
/// about existence.
i64 newest_snapshot_tti(const FarmConfig& cfg, u32 cell) {
  const std::vector<u64> ttis = list_cell_snapshots(cfg.checkpoint_dir, cell);
  for (size_t i = ttis.size(); i-- > 0;) {
    if (ttis[i] > cfg.ttis) continue;
    const std::string path =
        cell_snapshot_path(cfg.checkpoint_dir, cell, ttis[i]);
    try {
      sim::SnapshotReader r(sim::read_snapshot_file(path, kCellSnapshotKind),
                            path);
      if (r.read_u32() == cell) return static_cast<i64>(ttis[i]);
    } catch (const sim::SnapshotError&) {
    } catch (const SimError&) {  // unreadable file
    }
  }
  return -1;
}

/// The wire text of a shard's rows, rendered to a string for the crash and
/// garble harnesses (which write a deliberately truncated prefix). Values
/// here are decimal integers and 'x' padding, so no escaping is needed.
std::string render_json_rows(const std::vector<std::string>& header,
                             const std::vector<std::vector<std::string>>& rows) {
  std::string text = "[\n";
  for (size_t r = 0; r < rows.size(); ++r) {
    text += "  {";
    for (size_t i = 0; i < header.size(); ++i) {
      if (i != 0) text += ", ";
      text += "\"";
      text += header[i];
      text += "\": \"";
      text += rows[r][i];
      text += "\"";
    }
    text += (r + 1 < rows.size()) ? "},\n" : "}\n";
  }
  text += "]\n";
  return text;
}

/// Worker process body: simulate the shard's cells and stream their JSON
/// rows, or enact the injected host fault. Host faults live entirely in
/// this harness - the simulated cells are untouched - so a retried or
/// inline-fallback shard reproduces its reports byte-identically.
[[noreturn]] void shard_worker(const FarmConfig& cfg, u32 shard, u32 attempt,
                               u32 shards, int write_fd) {
  const sim::HostFaultConfig& hf = cfg.host_fault;
  if (hf.fires(hf.stall_shard, shard, attempt)) {
    // Stalled worker: write nothing, keep the pipe open, hang until the
    // supervisor's wall-clock timeout SIGKILLs us.
    for (;;) ::pause();
  }
  std::FILE* out = ::fdopen(write_fd, "w");
  if (out == nullptr) ::_exit(3);

  std::vector<std::string> header = cell_report_header();
  if (cfg.pad_row_bytes > 0) header.push_back("pad");
  std::vector<std::vector<std::string>> rows;
  try {
    // Retried attempts always climb the snapshot ladder (that is the point
    // of checkpointing); first attempts only when cfg.resume asks for it.
    const bool allow_resume =
        cfg.resume || (attempt > 1 && !cfg.checkpoint_dir.empty());
    for (u32 c = shard; c < cfg.cells; c += shards) {
      rows.push_back(cell_report_row(run_cell(cfg, c, allow_resume, nullptr)));
      if (cfg.pad_row_bytes > 0)
        rows.back().push_back(std::string(cfg.pad_row_bytes, 'x'));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "farm shard %u: %s\n", shard, e.what());
    std::fclose(out);
    ::_exit(4);
  }

  const bool crash = hf.fires(hf.crash_shard, shard, attempt);
  const bool garble = hf.fires(hf.garble_shard, shard, attempt);
  if (crash || garble) {
    // Crash: half the JSON, then die with a non-zero status (a worker that
    // segfaulted mid-stream). Garble: the same truncated JSON but a clean
    // exit - only the parse step can catch it.
    const std::string text = render_json_rows(header, rows);
    std::fwrite(text.data(), 1, text.size() / 2, out);
    std::fclose(out);
    ::_exit(crash ? 9 : 0);
  }

  sim::write_json_rows(out, header, rows);
  std::fclose(out);
  ::_exit(0);
}

}  // namespace

FarmResult run_farm(const FarmConfig& cfg) {
  cfg.validate();
  const u32 shards = std::min(cfg.shards, cfg.cells);
  // Inline only when there is nothing to supervise: one shard with a host
  // fault plan still forks, so the supervisor itself can be exercised.
  if (shards <= 1 && !cfg.host_fault.any()) return run_farm_inline(cfg);

  using Clock = std::chrono::steady_clock;
  struct Shard {
    pid_t pid = -1;
    int fd = -1;  // read end of the worker's pipe; -1 = not running
    u32 attempt = 0;
    std::string text;  // bytes drained so far
    Clock::time_point deadline;
    bool has_deadline = false;
    bool timed_out = false;
  };
  std::vector<Shard> sh(shards);

  FarmResult result;
  result.cells.resize(cfg.cells);
  std::vector<u8> filled(cfg.cells, 0);
  // Indices into result.failures per shard, so a later successful attempt
  // (or the inline fallback) can flip its earlier failures to recovered.
  std::vector<std::vector<size_t>> failure_idx(shards);

  const auto owned_cells = [&](u32 s) {
    std::vector<u32> cells;
    for (u32 c = s; c < cfg.cells; c += shards) cells.push_back(c);
    return cells;
  };

  const auto launch = [&](u32 s, u32 attempt) {
    int fds[2];
    check(::pipe(fds) == 0, "run_farm: pipe() failed");
    // stdio buffers are flushed before forking so a worker cannot replay
    // buffered output.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    check(pid >= 0, "run_farm: fork() failed");
    if (pid == 0) {
      // Worker process. _exit (not exit) so the parent's atexit/stdio state
      // is never touched twice. Close every inherited pipe end that is not
      // ours (including read ends of siblings still running).
      ::close(fds[0]);
      for (const Shard& other : sh)
        if (other.fd >= 0) ::close(other.fd);
      shard_worker(cfg, s, attempt, shards, fds[1]);
    }
    ::close(fds[1]);
    sh[s] = Shard{};
    sh[s].pid = pid;
    sh[s].fd = fds[0];
    sh[s].attempt = attempt;
    if (cfg.shard_timeout_s > 0.0) {
      sh[s].deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(cfg.shard_timeout_s));
      sh[s].has_deadline = true;
    }
  };

  // Evaluates a reaped shard attempt. Returns "" and commits the reports on
  // success; the failure reason otherwise (nothing committed).
  const auto evaluate = [&](u32 s, int status) -> std::string {
    if (sh[s].timed_out)
      return sim::strf("timeout after %.1fs (SIGKILL)", cfg.shard_timeout_s);
    if (!WIFEXITED(status))
      return sim::strf("killed by signal %d",
                       WIFSIGNALED(status) ? WTERMSIG(status) : 0);
    if (WEXITSTATUS(status) != 0)
      return sim::strf("exit status %d", WEXITSTATUS(status));
    std::vector<std::vector<std::pair<std::string, std::string>>> rows;
    if (!sim::parse_json_rows(sh[s].text, rows)) return "malformed JSON";
    std::vector<std::pair<u32, CellReport>> staged;
    try {
      for (const auto& row : rows) {
        CellReport rep = cell_report_from_row(row);
        check(rep.cell < cfg.cells && rep.cell % shards == s,
              "out-of-range or foreign cell in shard output");
        for (const auto& [c, r] : staged)
          check(c != rep.cell, "duplicate cell in shard output");
        staged.emplace_back(rep.cell, rep);
      }
    } catch (const std::exception& e) {
      return e.what();
    }
    if (staged.size() != owned_cells(s).size())
      return sim::strf("incomplete shard output (%zu of %zu cells)",
                       staged.size(), owned_cells(s).size());
    for (auto& [c, rep] : staged) {
      result.cells[c] = rep;
      filled[c] = 1;
    }
    for (const size_t i : failure_idx[s]) result.failures[i].recovered = true;
    return "";
  };

  const auto kill_all = [&] {
    for (Shard& w : sh) {
      if (w.fd < 0) continue;
      ::kill(w.pid, SIGKILL);
      ::close(w.fd);
      w.fd = -1;
      int status = 0;
      waitpid_eintr(w.pid, &status);
    }
  };

  for (u32 s = 0; s < shards; ++s) launch(s, 1);

  // Supervisor loop: drain every live pipe concurrently (poll; a shard's
  // output can exceed the pipe buffer, and the supervisor must never block
  // on one worker while another's writer blocks on a full pipe), enforce
  // wall-clock deadlines, and resolve each shard as it finishes.
  const auto any_running = [&] {
    for (const Shard& w : sh)
      if (w.fd >= 0) return true;
    return false;
  };
  while (any_running()) {
    std::vector<struct pollfd> pfds;
    std::vector<u32> pfd_shard;
    int timeout_ms = -1;
    const Clock::time_point now = Clock::now();
    for (u32 s = 0; s < shards; ++s) {
      if (sh[s].fd < 0) continue;
      pfds.push_back({sh[s].fd, POLLIN, 0});
      pfd_shard.push_back(s);
      if (sh[s].has_deadline && !sh[s].timed_out) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              sh[s].deadline - now)
                              .count();
        const int ms = left <= 0 ? 0 : static_cast<int>(std::min<long long>(
                                           left + 1, 60'000));
        timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
      }
    }
    check(poll_eintr(pfds.data(), pfds.size(), timeout_ms) >= 0,
          "run_farm: poll() failed");

    // Enforce deadlines first: an overdue worker is SIGKILLed; the kernel
    // then closes its pipe end and the normal EOF path below reaps it.
    const Clock::time_point after = Clock::now();
    for (u32 s = 0; s < shards; ++s) {
      if (sh[s].fd < 0 || !sh[s].has_deadline || sh[s].timed_out) continue;
      if (after >= sh[s].deadline) {
        sh[s].timed_out = true;
        ::kill(sh[s].pid, SIGKILL);
      }
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const u32 s = pfd_shard[i];
      char buf[65536];
      const ssize_t n = read_eintr(sh[s].fd, buf, sizeof buf);
      check(n >= 0, "run_farm: read() failed");
      if (n > 0) {
        sh[s].text.append(buf, static_cast<size_t>(n));
        continue;
      }
      // EOF: the worker closed its pipe (exit or SIGKILL). Reap and decide.
      ::close(sh[s].fd);
      sh[s].fd = -1;
      int status = 0;
      check(waitpid_eintr(sh[s].pid, &status) == sh[s].pid,
            "run_farm: waitpid() failed");
      const std::string reason = evaluate(s, status);
      if (reason.empty()) continue;

      ShardFailure failure;
      failure.shard = s;
      failure.attempt = sh[s].attempt;
      failure.reason = reason;
      failure.cells = owned_cells(s);
      failure_idx[s].push_back(result.failures.size());
      result.failures.push_back(std::move(failure));

      switch (cfg.policy) {
        case FarmPolicy::kFailFast:
          kill_all();
          throw SimError(sim::strf("run_farm: shard %u attempt %u failed: %s",
                                   s, sh[s].attempt, reason.c_str()));
        case FarmPolicy::kRetry:
          if (sh[s].attempt < cfg.max_shard_attempts) {
            // Record which ladder rung the re-forked attempt will resume
            // each cell from (-1 = clean), then re-launch.
            if (!cfg.checkpoint_dir.empty())
              for (const u32 c : owned_cells(s))
                result.failures.back().resume_ttis.push_back(
                    newest_snapshot_tti(cfg, c));
            launch(s, sh[s].attempt + 1);
          } else {
            // Out of forked attempts: run the shard's cells inline,
            // resuming each from its newest valid snapshot (bounded
            // re-work). Cells are deterministic in (seed, cell id) alone
            // and restored continuations are bit-identical, so the
            // fallback reports are byte-identical to a clean worker's.
            for (const u32 c : owned_cells(s)) {
              i64 from = -1;
              result.cells[c] =
                  run_cell(cfg, c, !cfg.checkpoint_dir.empty(), &from);
              if (!cfg.checkpoint_dir.empty())
                result.failures.back().resume_ttis.push_back(from);
              filled[c] = 1;
            }
            for (const size_t fi : failure_idx[s])
              result.failures[fi].recovered = true;
          }
          break;
        case FarmPolicy::kDegrade:
          // Give up on the shard: zero-filled reports (cell id set) and an
          // unrecovered failure entry mark the hole.
          for (const u32 c : owned_cells(s)) {
            result.cells[c].cell = c;
            filled[c] = 1;
          }
          break;
      }
    }
  }

  for (u32 c = 0; c < cfg.cells; ++c)
    check(filled[c] != 0, sim::strf("run_farm: no report for cell %u", c));
  return result;
}

#else  // !TSIM_FARM_HAS_FORK

FarmResult run_farm(const FarmConfig& cfg) {
  cfg.validate();
  if (cfg.shards > 1)
    std::fprintf(stderr,
                 "run_farm: no fork() on this platform, running inline\n");
  return run_farm_inline(cfg);
}

#endif

}  // namespace tsim::mac
