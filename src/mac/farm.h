// Multi-cell gNB farm: N independent mac::Cell closed-loop simulations,
// shard-parallel across host worker processes.
//
// Scaling model: cells never interact (each has its own UE population,
// HARQ state and cluster pool), so the farm is embarrassingly parallel at
// cell granularity. `shards` partitions the cells round-robin across forked
// worker processes; each worker simulates its cells to completion, encodes
// the integer-only CellReports as JSON rows (the repo's shared
// sim::write_json_rows format), streams them through a pipe, and exits. The
// parent gathers, parses and reassembles the reports in cell order.
//
// Determinism: a cell's entire simulation is keyed by
// (FarmConfig::seed, cell id, tti) via Rng::keyed streams - nothing depends
// on which shard (or host thread) runs it, every report field is an exact
// integer, and the pipe carries decimal integers - so farm aggregates are
// bit-identical for every shard count and host thread count. That is the
// property the soak tests pin (tests/mac_test.cpp) and the CI farm-smoke
// step validates.
#pragma once

#include <string>
#include <vector>

#include "mac/cell.h"

namespace tsim::mac {

struct FarmConfig {
  u32 cells = 4;
  u32 shards = 1;        // worker processes (clamped to the cell count)
  u64 seed = 0xFA21;     // farm seed; cell c uses derive_seed(seed, cell c)
  u32 ttis = 32;         // closed-loop TTIs per cell
  u32 ues_per_cell = 64;
  u32 sc_per_pdu = 4;
  phy::CarrierConfig carrier;
  std::vector<ran::UeGroup> groups;  // defaulted in validate-time helper
  HarqConfig harq;
  BurstConfig burst;
  ran::ClusterPoolConfig pool;
  double clock_hz = 1e9;

  void validate() const;
  /// The per-cell config of cell `cell` (shared parameters + cell identity).
  CellConfig cell_config(u32 cell) const;
};

struct FarmResult {
  std::vector<CellReport> cells;  // indexed by cell id

  /// Element-wise sum of every cell's integer counters (timing fields take
  /// the max/percentile-of-worst semantics noted per field).
  CellReport total() const;
};

/// Runs every cell of the farm. shards == 1 runs inline on this process;
/// shards > 1 forks one worker per shard and gathers reports over pipes.
/// Throws SimError if a worker fails.
FarmResult run_farm(const FarmConfig& cfg);

/// Runs one cell inline (the worker path; also handy for tests).
CellReport run_cell(const FarmConfig& cfg, u32 cell);

/// The JSON row schema of one CellReport (shared by the pipe wire format
/// and the farm driver's trajectory output): integer fields only.
std::vector<std::string> cell_report_header();
std::vector<std::string> cell_report_row(const CellReport& rep);
/// Rebuilds a report from a parsed JSON row. Throws SimError on a missing
/// or malformed field.
CellReport cell_report_from_row(
    const std::vector<std::pair<std::string, std::string>>& row);

}  // namespace tsim::mac
