// Multi-cell gNB farm: N independent mac::Cell closed-loop simulations,
// shard-parallel across host worker processes under a supervising runner.
//
// Scaling model: cells never interact (each has its own UE population,
// HARQ state and cluster pool), so the farm is embarrassingly parallel at
// cell granularity. `shards` partitions the cells round-robin across forked
// worker processes; each worker simulates its cells to completion, encodes
// the integer-only CellReports as JSON rows (the repo's shared
// sim::write_json_rows format), streams them through a pipe, and exits.
//
// Supervisor contract (run_farm)
// ------------------------------
// The parent is a supervisor, not a serial gatherer:
//
//  - All worker pipes are drained CONCURRENTLY via poll(), so a shard that
//    produces more than one pipe buffer (64 KiB on Linux) can never
//    deadlock against a parent blocked on a sibling's pipe, and a slow
//    shard never delays reading a fast one.
//  - read()/waitpid()/poll() are EINTR-safe (retried), so a signal landing
//    mid-gather cannot truncate a shard's JSON.
//  - FarmConfig::shard_timeout_s puts a wall-clock bound on each worker;
//    an overdue worker is SIGKILLed and treated as failed. 0 disables the
//    timeout (a stalled worker then blocks forever - only safe when host
//    faults are impossible).
//  - A shard fails when its worker is killed/non-zero, its JSON does not
//    parse, or its cells are incomplete. What happens next is
//    FarmConfig::policy:
//      kFailFast  kill and reap every other worker, then throw SimError.
//      kRetry     re-run the shard (fresh fork) up to max_shard_attempts
//                 total attempts; if the last attempt still fails, run its
//                 cells inline in the supervisor. Because every cell is a
//                 deterministic function of (seed, cell id) alone, the
//                 recovered FarmResult is BYTE-IDENTICAL to a fault-free
//                 run at the same seed - the property tests and the CI
//                 fault-smoke step pin.
//      kDegrade   give up on the shard's cells: their reports stay
//                 zero-filled (cell id set) and the failure is recorded.
//    Every failed attempt - recovered or not - is appended to
//    FarmResult::failures with the shard, attempt, reason and cell list,
//    so callers can tell a clean run from a recovered one.
//
// Checkpoint-aware retry ladder
// -----------------------------
// With FarmConfig::checkpoint_every/checkpoint_dir set, workers write an
// atomic per-cell snapshot (sim/snapshot.h; temp file + fsync + rename)
// every checkpoint_every TTIs, and every RECOVERY resumes from snapshots
// instead of TTI 0. The ladder, per cell, newest first:
//
//   newest snapshot -> next-older snapshot -> ... -> clean start at TTI 0
//
// A rung is skipped when its file is truncated, bit-flipped, from a
// different configuration, or unreadable (all surfaced as SnapshotError by
// the loader, never a silent wrong restore). Both recovery paths climb the
// ladder: a kRetry re-fork (attempt > 1 workers resume) and the inline
// fallback in the supervisor. ShardFailure::resume_ttis records the
// snapshot TTI each owned cell's next recovery resumed from (-1 = clean),
// so FarmResult::failures tells bounded re-work from full re-execution.
// Because a restored cell's continuation is bit-identical to the
// uninterrupted run (the snapshot contract, tests/snapshot_test.cpp), the
// recovered FarmResult stays BYTE-IDENTICAL to a fault-free run - the same
// identity PR 8 pinned for full re-execution, now with bounded re-work.
// FarmConfig::resume extends the ladder to first attempts: a re-launched
// soak picks up every cell from its newest valid snapshot (the CI
// kill-and-resume smoke step SIGKILLs a soak mid-run and pins cmp-equality
// of the resumed JSON against an uninterrupted run).
//
// Fault injection: FarmConfig::fault (sim/fault.h) forwards a deterministic
// DUT-level fault plan to every cell; FarmConfig::host_fault crashes,
// stalls or garbles a chosen shard's worker process to exercise the
// supervisor itself. Host faults live entirely in the worker harness and
// key on (shard, attempt), so a retried shard runs clean and reproduces
// its reports exactly.
//
// Determinism: a cell's entire simulation is keyed by
// (FarmConfig::seed, cell id, tti) via Rng::keyed streams - nothing depends
// on which shard (or host thread, or attempt) runs it, every report field
// is an exact integer, and the pipe carries decimal integers - so farm
// aggregates are bit-identical for every shard count, host thread count
// and recovery path. That is the property the soak tests pin
// (tests/mac_test.cpp, tests/robustness_test.cpp) and the CI farm-smoke
// and fault-smoke steps validate.
#pragma once

#include <string>
#include <vector>

#include "mac/cell.h"

namespace tsim::mac {

/// What the supervisor does with a shard that crashed, stalled past the
/// timeout, or returned unusable output (see the header comment).
enum class FarmPolicy : u8 {
  kFailFast = 0,  // kill everything and throw
  kRetry,         // re-fork up to max_shard_attempts, then inline fallback
  kDegrade,       // record the failure, leave the cells zero-filled
};

const char* farm_policy_name(FarmPolicy p);
/// Parses "fail_fast" / "retry" / "degrade"; throws SimError otherwise.
FarmPolicy parse_farm_policy(const std::string& name);

struct FarmConfig {
  u32 cells = 4;
  u32 shards = 1;        // worker processes (clamped to the cell count)
  u64 seed = 0xFA21;     // farm seed; cell c uses derive_seed(seed, cell c)
  u32 ttis = 32;         // closed-loop TTIs per cell
  u32 ues_per_cell = 64;
  u32 sc_per_pdu = 4;
  phy::CarrierConfig carrier;
  std::vector<ran::UeGroup> groups;  // defaulted in validate-time helper
  HarqConfig harq;
  BurstConfig burst;
  ran::ClusterPoolConfig pool;
  double clock_hz = 1e9;

  // ---- supervisor knobs ----
  FarmPolicy policy = FarmPolicy::kRetry;
  u32 max_shard_attempts = 2;   // forked attempts per shard before fallback
  double shard_timeout_s = 0.0; // wall-clock bound per worker; 0 = none
  /// DUT-level fault plan, forwarded to every cell (re-seeded per cell).
  sim::FaultConfig fault;
  /// Host-level worker faults, handled by the worker harness only.
  sim::HostFaultConfig host_fault;
  /// Test hook: pad every JSON row with this many filler bytes (an ignored
  /// "pad" column) to drive per-shard report volume past the pipe buffer.
  u32 pad_row_bytes = 0;

  // ---- checkpoint / resume (see "Checkpoint-aware retry ladder" above) ----
  /// Write an atomic per-cell snapshot every this many TTIs (0 = off).
  /// Requires checkpoint_dir. No snapshot is written at the final TTI.
  u32 checkpoint_every = 0;
  /// Directory the snapshots live in (created on first write). Setting it
  /// without checkpoint_every arms resume-from-existing-snapshots only.
  std::string checkpoint_dir;
  /// Resume FIRST attempts from the newest valid snapshot in checkpoint_dir
  /// (recoveries always resume when a checkpoint_dir is set). Requires
  /// checkpoint_dir.
  bool resume = false;

  void validate() const;
  /// The per-cell config of cell `cell` (shared parameters + cell identity).
  CellConfig cell_config(u32 cell) const;
};

/// One failed shard attempt, as observed by the supervisor.
struct ShardFailure {
  u32 shard = 0;
  u32 attempt = 0;          // 1-based attempt number that failed
  std::string reason;       // "status 9", "timeout", "malformed JSON", ...
  std::vector<u32> cells;   // cells the shard owned
  bool recovered = false;   // true once a later attempt/fallback delivered
  /// Snapshot TTI each owned cell's recovery resumed from, parallel to
  /// `cells` (-1 = clean start at TTI 0). Empty when no recovery was
  /// attempted (kFailFast/kDegrade) or no checkpoint_dir is set.
  std::vector<i64> resume_ttis;
};

struct FarmResult {
  std::vector<CellReport> cells;  // indexed by cell id

  /// Host-side fast-forward activity: how much work the event-driven
  /// fast-forward skipped. Diagnostics only - never part of CellReport or
  /// any JSON surface (the bit-exactness contract compares those). Only
  /// populated by in-process runs (shards <= 1); sharded runs report zeros,
  /// since worker processes hand back CellReports alone.
  struct FfActivity {
    u64 idle_ttis = 0;       // quiescent TTIs skipped wholesale
    u64 ttis = 0;            // cell-TTIs run in-process
    u64 full_batches = 0;    // batches executed at full layout width
    u64 shrunk_batches = 0;  // batches executed on a shrunk variant
    u64 cores_full = 0;      // core-runs a full-width run would execute
    u64 cores_run = 0;       // core-runs actually executed
  };
  FfActivity ff;

  /// Structured failure report: one entry per failed shard attempt, in
  /// observation order. Empty on a clean run. Under kRetry every entry is
  /// recovered; under kDegrade unrecovered entries mark zero-filled cells.
  std::vector<ShardFailure> failures;

  /// Cells with no report (kDegrade only; sorted). Empty otherwise.
  std::vector<u32> missing_cells() const;

  /// Element-wise sum of every cell's integer counters (timing fields take
  /// the max/percentile-of-worst semantics noted per field).
  CellReport total() const;
};

/// Runs every cell of the farm under the supervisor described in the
/// header comment. shards == 1 with no host faults runs inline on this
/// process; otherwise one worker per shard is forked and supervised.
/// Throws SimError when the farm cannot produce a result under the policy.
FarmResult run_farm(const FarmConfig& cfg);

/// Runs one cell inline (the worker path; also handy for tests), honoring
/// cfg.checkpoint_every/checkpoint_dir and resuming per cfg.resume.
CellReport run_cell(const FarmConfig& cfg, u32 cell);
/// Worker/recovery variant: when `allow_resume`, climbs the snapshot ladder
/// (newest valid -> older -> clean) before stepping, and reports the TTI it
/// resumed from in *resumed_from (-1 = clean) when non-null. When `ff` is
/// non-null, the cell's host-side fast-forward activity is accumulated into
/// it (the counters are additive across cells).
CellReport run_cell(const FarmConfig& cfg, u32 cell, bool allow_resume,
                    i64* resumed_from, FarmResult::FfActivity* ff = nullptr);

// ---- per-cell snapshot files (sim/snapshot.h container) ----

/// Path of cell `cell`'s snapshot at TTI boundary `tti` under `dir`
/// ("<dir>/cellNNNN_ttiNNNNNNNN.snap"; zero-padded so lexicographic order
/// is numeric order).
std::string cell_snapshot_path(const std::string& dir, u32 cell, u64 tti);
/// Atomically writes `cell`'s state at its current TTI boundary. Creates
/// `dir` if missing.
void save_cell_snapshot(const Cell& cell, const std::string& dir);
/// Restores `cell` (freshly constructed, same config) from `path` and
/// returns the TTI boundary the snapshot was captured at. Throws
/// sim::SnapshotError on corruption, truncation, or a config mismatch.
u64 load_cell_snapshot(Cell& cell, const std::string& path);
/// Snapshot TTIs present on disk for `cell` under `dir`, ascending.
/// Presence only - validity is checked at load time.
std::vector<u64> list_cell_snapshots(const std::string& dir, u32 cell);

// ---- failure bisection ----

/// The failing-slot predicate --bisect searches for.
struct BisectPredicate {
  enum class Kind : u8 {
    kDeadlineMiss = 0,  // a slot over the TTI deadline
    kDegradedSlot,      // a slot run degraded (dead cluster / failed batch)
    kResidualBler,      // cumulative residual BLER >= threshold
  };
  Kind kind = Kind::kDeadlineMiss;
  double threshold = 0.0;  // kResidualBler only

  std::string describe() const;
};

/// Parses "miss" / "degraded" / "bler=X"; throws SimError otherwise.
BisectPredicate parse_bisect_predicate(const std::string& spec);

struct BisectResult {
  /// First TTI at which the predicate holds, -1 when it never fires.
  i64 first_bad_tti = -1;
  u64 snapshots_loaded = 0;  // snapshot restores the binary search consumed
  u64 ttis_replayed = 0;     // TTIs re-simulated (final window only)
  i64 window_start = -1;     // TTI boundary the final replay started from
  /// Per-TTI trace lines of the replayed window (cycles, deadline margin,
  /// degradation, cumulative BLER), ending at the offending TTI.
  std::vector<std::string> window_trace;
};

/// Binary-searches cell `cell`'s snapshots under cfg.checkpoint_dir for the
/// first TTI where `pred` holds, then replays ONLY the final window (at most
/// checkpoint_every TTIs) with per-TTI tracing: O(log snapshots) restores
/// plus one window of re-simulation instead of a full re-run. When the
/// directory holds no snapshots for the cell and cfg.checkpoint_every > 0,
/// the cell is first run once to populate them. The predicate is evaluated
/// on snapshot-held cumulative state (per-slot result history, HARQ
/// counters), so probing a boundary costs one restore, not a re-simulation.
BisectResult bisect_cell(const FarmConfig& cfg, u32 cell,
                         const BisectPredicate& pred);

/// The JSON row schema of one CellReport (shared by the pipe wire format
/// and the farm driver's trajectory output): integer fields only.
std::vector<std::string> cell_report_header();
std::vector<std::string> cell_report_row(const CellReport& rep);
/// Rebuilds a report from a parsed JSON row. Throws SimError on a missing
/// or malformed field; unknown keys are ignored (forward compatibility and
/// the pad_row_bytes hook).
CellReport cell_report_from_row(
    const std::vector<std::pair<std::string, std::string>>& row);

}  // namespace tsim::mac
