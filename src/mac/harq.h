// Per-UE HARQ state machine: the slot-to-slot persistent state that turns
// independent slots into closed-loop traffic (ROADMAP "multi-cell gNB farm").
//
// Each UE owns `HarqConfig::num_processes` stop-and-wait HARQ processes. A
// process carries one transport block from its first transmission until the
// block is ACKed (CRC pass) or dropped after `max_attempts` transmissions;
// while it waits for a retransmission opportunity its soft-buffer copy stays
// resident (Chase combining keeps one LLR-sized buffer per process, so
// occupancy is pdu_bits per active process, not per attempt). Retransmission
// combining is modelled as an effective-SNR boost: transmission k of a block
// is generated at phy::Channel::chase_combined_snr_db(base, k).
//
// The entity is pure bookkeeping - no RNG, no PHY - so every edge case
// (max-attempt drop, soft-buffer release, all-processes-busy stall) is unit
// testable without a simulation behind it (tests/mac_test.cpp).
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "sim/snapshot.h"

namespace tsim::mac {

struct HarqConfig {
  u32 num_processes = 8;  // concurrent stop-and-wait processes per UE
  u32 max_attempts = 4;   // transmissions per block (incl. the first), then drop
  bool enabled = true;    // false = single-shot: every CRC failure drops (A/B)
  /// Slots an in-flight transmission waits for its CRC indication before the
  /// attempt times out and resolves as a NACK (expire_overdue). 0 = wait
  /// forever - the right setting when feedback cannot be lost; any lost or
  /// over-delayed FAPI indication (sim/fault.h) would otherwise wedge the
  /// process in in_flight for the rest of the run.
  u32 feedback_timeout_slots = 0;

  /// Transmissions a block may use: max_attempts, or 1 with HARQ disabled.
  u32 attempt_budget() const { return enabled ? max_attempts : 1; }

  void validate() const {
    check(num_processes >= 1, "HarqConfig: need at least one HARQ process");
    check(max_attempts >= 1, "HarqConfig: need at least one attempt");
  }
};

/// Lifetime counters of one HARQ entity (all monotone; integers only, so
/// farm aggregates built from them round-trip shards exactly).
struct HarqStats {
  u64 new_tx = 0;         // first transmissions (new transport blocks)
  u64 retx = 0;           // retransmissions
  u64 acks = 0;           // blocks delivered (CRC pass)
  u64 drops = 0;          // blocks abandoned after the attempt budget
  u64 stalls = 0;         // slots where new data found no free process
  u64 timeouts = 0;       // in-flight attempts resolved as NACK by timeout
  u64 offered_bits = 0;   // bits of every new transport block
  u64 delivered_bits = 0; // bits of ACKed blocks
  u64 dropped_bits = 0;   // bits of dropped blocks
  u64 soft_buffer_peak_bits = 0;  // worst-case combined soft-buffer occupancy

  u64 transmissions() const { return new_tx + retx; }
  u64 finished() const { return acks + drops; }
  /// Residual block error rate after HARQ: blocks still lost at the MAC.
  double residual_bler() const {
    return finished() == 0
               ? 0.0
               : static_cast<double>(drops) / static_cast<double>(finished());
  }
  double retx_fraction() const {
    return transmissions() == 0
               ? 0.0
               : static_cast<double>(retx) / static_cast<double>(transmissions());
  }
};

class HarqEntity {
 public:
  explicit HarqEntity(const HarqConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
    processes_.resize(cfg_.num_processes);
  }

  /// Lowest-id process with a retransmission pending (NACKed, attempt budget
  /// left), or nullopt. Retransmissions take priority over new data.
  std::optional<u32> pending_retx() const {
    for (u32 p = 0; p < processes_.size(); ++p) {
      if (processes_[p].active && !processes_[p].in_flight &&
          processes_[p].attempts > 0)
        return p;
    }
    return std::nullopt;
  }

  /// Starts a new transport block of `bits` on the lowest-id free process and
  /// marks its first transmission in flight. Returns the process id, or
  /// nullopt (and counts a stall) when every process is busy - the
  /// all-processes-busy stall of a UE whose feedback is all NACKs. `tti`
  /// stamps the transmission slot (feedback timeout + stale-feedback guard).
  std::optional<u32> start_new_data(u64 bits, u64 tti = 0) {
    for (u32 p = 0; p < processes_.size(); ++p) {
      Process& proc = processes_[p];
      if (proc.active) continue;
      proc.active = true;
      proc.in_flight = true;
      proc.attempts = 1;
      proc.bits = bits;
      proc.sent_tti = tti;
      stats_.new_tx += 1;
      stats_.offered_bits += bits;
      note_occupancy();
      return p;
    }
    stats_.stalls += 1;
    return std::nullopt;
  }

  /// Marks process `p`'s pending retransmission in flight (transmission
  /// number attempts+1). Only valid for a process pending_retx() returned.
  u32 grant_retx(u32 p, u64 tti = 0) {
    Process& proc = process(p);
    check(proc.active && !proc.in_flight && proc.attempts > 0,
          "HarqEntity: grant_retx on a process with no pending retransmission");
    proc.attempts += 1;
    proc.in_flight = true;
    proc.sent_tti = tti;
    stats_.retx += 1;
    return proc.attempts;
  }

  /// Applies the CRC outcome of process `p`'s in-flight transmission.
  /// ACK frees the process (soft buffer released, bits delivered). NACK
  /// keeps the block for retransmission, or drops it - freeing the soft
  /// buffer and counting residual loss - when the attempt budget is spent.
  void on_feedback(u32 p, bool crc_pass) {
    Process& proc = process(p);
    check(proc.active && proc.in_flight,
          "HarqEntity: feedback for a process with nothing in flight");
    proc.in_flight = false;
    if (crc_pass) {
      stats_.acks += 1;
      stats_.delivered_bits += proc.bits;
      proc = Process{};  // soft buffer released
      return;
    }
    if (proc.attempts >= cfg_.attempt_budget()) {
      stats_.drops += 1;
      stats_.dropped_bits += proc.bits;
      proc = Process{};  // block abandoned: soft buffer released
      return;
    }
    // Block stays resident awaiting a retransmission grant.
  }

  /// Resolves every in-flight attempt whose CRC indication is overdue at
  /// `now_tti` as a NACK (lost or over-delayed FAPI feedback, sim/fault.h):
  /// the process follows the normal NACK path - retransmission if budget is
  /// left, drop otherwise - so lost feedback degrades throughput instead of
  /// wedging the process forever. No-op with feedback_timeout_slots == 0.
  /// Returns the number of attempts timed out.
  u32 expire_overdue(u64 now_tti) {
    if (cfg_.feedback_timeout_slots == 0) return 0;
    u32 expired = 0;
    for (u32 p = 0; p < processes_.size(); ++p) {
      const Process& proc = processes_[p];
      if (!proc.active || !proc.in_flight) continue;
      if (now_tti < proc.sent_tti + cfg_.feedback_timeout_slots) continue;
      stats_.timeouts += 1;
      on_feedback(p, /*crc_pass=*/false);
      ++expired;
    }
    return expired;
  }

  /// Transmission number (1-based) the next grant of process `p` would use;
  /// process must be active. Drives the Chase effective-SNR boost.
  u32 attempts(u32 p) const { return process(p).attempts; }
  bool active(u32 p) const { return process(p).active; }
  /// True while process `p` awaits CRC feedback for a transmission.
  bool in_flight(u32 p) const { return process(p).in_flight; }
  /// TTI of process `p`'s most recent transmission (stale-feedback guard:
  /// a delayed indication must only resolve the attempt it belongs to).
  u64 sent_tti(u32 p) const { return process(p).sent_tti; }

  /// Soft-buffer occupancy right now: one block-sized buffer per process
  /// holding a transport block (Chase combining accumulates in place).
  u64 soft_buffer_bits() const {
    u64 bits = 0;
    for (const Process& p : processes_)
      if (p.active) bits += p.bits;
    return bits;
  }

  /// True when no process can take new data.
  bool all_busy() const {
    for (const Process& p : processes_)
      if (!p.active) return false;
    return true;
  }

  /// Blocks still unresolved (active processes) - the farm flushes these
  /// out of the residual-BLER denominator at end of run.
  u32 unresolved() const {
    u32 n = 0;
    for (const Process& p : processes_) n += p.active ? 1 : 0;
    return n;
  }

  const HarqStats& stats() const { return stats_; }
  const HarqConfig& config() const { return cfg_; }

  // ---- checkpoint/restore (sim/snapshot.h) ----
  /// Serializes every process slot (including in-flight attempts and their
  /// sent TTIs, so feedback timeouts resume exactly) plus the lifetime
  /// stats. The config is NOT serialized - restore_state requires an entity
  /// constructed with the same HarqConfig.
  void save_state(sim::SnapshotWriter& w) const {
    w.write_u64(processes_.size());
    for (const Process& p : processes_) {
      w.write_bool(p.active);
      w.write_bool(p.in_flight);
      w.write_u32(p.attempts);
      w.write_u64(p.bits);
      w.write_u64(p.sent_tti);
    }
    w.write_u64(stats_.new_tx);
    w.write_u64(stats_.retx);
    w.write_u64(stats_.acks);
    w.write_u64(stats_.drops);
    w.write_u64(stats_.stalls);
    w.write_u64(stats_.timeouts);
    w.write_u64(stats_.offered_bits);
    w.write_u64(stats_.delivered_bits);
    w.write_u64(stats_.dropped_bits);
    w.write_u64(stats_.soft_buffer_peak_bits);
  }
  void restore_state(sim::SnapshotReader& r) {
    if (r.read_u64() != processes_.size())
      r.fail("HARQ process count does not match this configuration");
    for (Process& p : processes_) {
      p.active = r.read_bool();
      p.in_flight = r.read_bool();
      p.attempts = r.read_u32();
      p.bits = r.read_u64();
      p.sent_tti = r.read_u64();
    }
    stats_.new_tx = r.read_u64();
    stats_.retx = r.read_u64();
    stats_.acks = r.read_u64();
    stats_.drops = r.read_u64();
    stats_.stalls = r.read_u64();
    stats_.timeouts = r.read_u64();
    stats_.offered_bits = r.read_u64();
    stats_.delivered_bits = r.read_u64();
    stats_.dropped_bits = r.read_u64();
    stats_.soft_buffer_peak_bits = r.read_u64();
  }

 private:
  struct Process {
    bool active = false;     // holds a transport block
    bool in_flight = false;  // transmitted this slot, awaiting CRC
    u32 attempts = 0;        // transmissions so far
    u64 bits = 0;
    u64 sent_tti = 0;        // TTI of the latest transmission
  };

  Process& process(u32 p) {
    check(p < processes_.size(), "HarqEntity: process id out of range");
    return processes_[p];
  }
  const Process& process(u32 p) const {
    check(p < processes_.size(), "HarqEntity: process id out of range");
    return processes_[p];
  }
  void note_occupancy() {
    stats_.soft_buffer_peak_bits =
        std::max(stats_.soft_buffer_peak_bits, soft_buffer_bits());
  }

  HarqConfig cfg_;
  std::vector<Process> processes_;
  HarqStats stats_;
};

}  // namespace tsim::mac
