// Bit-error-rate accumulation for Monte-Carlo runs (paper Sec. V-C:
// "for different input SNR, we iterate to a target error count").
#pragma once

#include <span>

#include "common/types.h"

namespace tsim::phy {

class BerCounter {
 public:
  void add(std::span<const u8> sent, std::span<const u8> received) {
    const size_t n = std::min(sent.size(), received.size());
    for (size_t i = 0; i < n; ++i) errors_ += (sent[i] != received[i]) ? 1 : 0;
    bits_ += n;
  }

  void add_errors(u64 errors, u64 bits) {
    errors_ += errors;
    bits_ += bits;
  }

  u64 errors() const { return errors_; }
  u64 bits() const { return bits_; }
  double ber() const { return bits_ == 0 ? 0.0 : static_cast<double>(errors_) / bits_; }

 private:
  u64 errors_ = 0;
  u64 bits_ = 0;
};

}  // namespace tsim::phy
