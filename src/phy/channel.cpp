#include "phy/channel.h"

#include <cmath>

namespace tsim::phy {

CMat Channel::realize(Rng& rng) const {
  if (type_ == ChannelType::kAwgn) {
    // Zero attenuation, no inter-user interference (paper Sec. V-C):
    // identity coupling between each user and its antenna.
    CMat h(nrx_, ntx_);
    for (u32 i = 0; i < std::min(nrx_, ntx_); ++i) h.at(i, i) = 1.0;
    return h;
  }
  CMat h(nrx_, ntx_);
  const double s = 1.0 / std::sqrt(2.0 * ntx_);  // CN(0, 1/NTX) entries
  for (u32 r = 0; r < nrx_; ++r)
    for (u32 c = 0; c < ntx_; ++c) h.at(r, c) = cd(rng.normal() * s, rng.normal() * s);
  return h;
}

std::vector<cd> Channel::transmit(const CMat& h, const std::vector<cd>& x, double sigma2,
                                  Rng& rng) const {
  std::vector<cd> y = matvec(h, x);
  const double s = std::sqrt(sigma2 / 2.0);
  for (cd& v : y) v += cd(rng.normal() * s, rng.normal() * s);
  return y;
}

}  // namespace tsim::phy
