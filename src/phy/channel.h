// Wireless channel models of the E2E transmission (paper Sec. III-A, V-C):
// AWGN (identity channel, noise only) and flat-fading Rayleigh MIMO.
//
// Conventions: NTX users transmit unit-energy QAM symbols; H is NRX x NTX.
// Rayleigh entries are CN(0, 1/NTX) so the received per-antenna signal
// power is 1 and SNR(dB) maps to sigma^2 = 10^(-SNR/10) for both channels.
#pragma once

#include "common/rng.h"
#include "phy/linalg.h"

namespace tsim::phy {

enum class ChannelType : u8 { kAwgn, kRayleigh };

struct ChannelRealization {
  CMat h;                 // NRX x NTX
  double sigma2 = 0.0;    // complex noise variance per receive antenna
};

class Channel {
 public:
  Channel(ChannelType type, u32 nrx, u32 ntx) : type_(type), nrx_(nrx), ntx_(ntx) {}

  ChannelType type() const { return type_; }

  /// Draws a channel matrix for one subcarrier.
  CMat realize(Rng& rng) const;

  /// y = H x + n with n ~ CN(0, sigma2 I).
  std::vector<cd> transmit(const CMat& h, const std::vector<cd>& x, double sigma2,
                           Rng& rng) const;

  /// sigma^2 for an SNR in dB under this repo's normalization.
  static double sigma2_from_snr_db(double snr_db) {
    return std::pow(10.0, -snr_db / 10.0);
  }

  /// HARQ retransmission hook (used by the MAC layer, src/mac/): effective
  /// post-combining SNR after `transmissions` Chase-combined copies of the
  /// same transport block. Chase combining adds the copies' signal energy
  /// coherently while their independent noise adds in power, so the
  /// effective SNR grows linearly with the copy count:
  ///   SNR_eff(dB) = SNR(dB) + 10 log10(transmissions).
  /// The MAC feeds this back into traffic generation: a retransmitted
  /// allocation is generated (channel + noise) at the boosted SNR instead
  /// of carrying soft buffers through the bit-true detector.
  static double chase_combined_snr_db(double snr_db, u32 transmissions) {
    return transmissions <= 1
               ? snr_db
               : snr_db + 10.0 * std::log10(static_cast<double>(transmissions));
  }

 private:
  ChannelType type_;
  u32 nrx_;
  u32 ntx_;
};

}  // namespace tsim::phy
