#include "phy/linalg.h"

#include <cmath>

namespace tsim::phy {

CMat hermitian(const CMat& a) {
  CMat out(a.cols(), a.rows());
  for (u32 r = 0; r < a.rows(); ++r)
    for (u32 c = 0; c < a.cols(); ++c) out.at(c, r) = std::conj(a.at(r, c));
  return out;
}

CMat matmul(const CMat& a, const CMat& b) {
  check(a.cols() == b.rows(), "matmul: dimension mismatch");
  CMat out(a.rows(), b.cols());
  for (u32 r = 0; r < a.rows(); ++r) {
    for (u32 k = 0; k < a.cols(); ++k) {
      const cd av = a.at(r, k);
      for (u32 c = 0; c < b.cols(); ++c) out.at(r, c) += av * b.at(k, c);
    }
  }
  return out;
}

std::vector<cd> matvec(const CMat& a, const std::vector<cd>& x) {
  check(a.cols() == x.size(), "matvec: dimension mismatch");
  std::vector<cd> out(a.rows());
  for (u32 r = 0; r < a.rows(); ++r) {
    cd acc = 0.0;
    for (u32 c = 0; c < a.cols(); ++c) acc += a.at(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

std::vector<cd> hermitian_matvec(const CMat& a, const std::vector<cd>& x) {
  check(a.rows() == x.size(), "hermitian_matvec: dimension mismatch");
  std::vector<cd> out(a.cols());
  for (u32 c = 0; c < a.cols(); ++c) {
    cd acc = 0.0;
    for (u32 r = 0; r < a.rows(); ++r) acc += std::conj(a.at(r, c)) * x[r];
    out[c] = acc;
  }
  return out;
}

CMat gram(const CMat& a, double diag_load) {
  CMat g(a.cols(), a.cols());
  for (u32 i = 0; i < a.cols(); ++i) {
    for (u32 j = 0; j < a.cols(); ++j) {
      cd acc = 0.0;
      for (u32 r = 0; r < a.rows(); ++r) acc += std::conj(a.at(r, i)) * a.at(r, j);
      g.at(i, j) = acc;
    }
    g.at(i, i) += diag_load;
  }
  return g;
}

CMat cholesky(const CMat& g) {
  check(g.rows() == g.cols(), "cholesky: matrix must be square");
  const u32 n = g.rows();
  CMat l(n, n);
  for (u32 j = 0; j < n; ++j) {
    double sumsq = 0.0;
    for (u32 k = 0; k < j; ++k) sumsq += std::norm(l.at(j, k));
    const double d = g.at(j, j).real() - sumsq;
    check(d > 0.0, "cholesky: matrix not positive definite");
    const double diag = std::sqrt(d);
    l.at(j, j) = diag;
    for (u32 i = j + 1; i < n; ++i) {
      cd acc = 0.0;
      for (u32 k = 0; k < j; ++k) acc += l.at(i, k) * std::conj(l.at(j, k));
      l.at(i, j) = (g.at(i, j) - acc) / diag;
    }
  }
  return l;
}

std::vector<cd> forward_solve(const CMat& l, const std::vector<cd>& b) {
  const u32 n = l.rows();
  check(b.size() == n, "forward_solve: dimension mismatch");
  std::vector<cd> w(n);
  for (u32 i = 0; i < n; ++i) {
    cd acc = 0.0;
    for (u32 k = 0; k < i; ++k) acc += l.at(i, k) * w[k];
    w[i] = (b[i] - acc) / l.at(i, i).real();
  }
  return w;
}

std::vector<cd> backward_solve(const CMat& l, const std::vector<cd>& b) {
  const u32 n = l.rows();
  check(b.size() == n, "backward_solve: dimension mismatch");
  std::vector<cd> x(n);
  for (u32 ii = 0; ii < n; ++ii) {
    const u32 i = n - 1 - ii;
    cd acc = 0.0;
    for (u32 k = i + 1; k < n; ++k) acc += std::conj(l.at(k, i)) * x[k];
    x[i] = (b[i] - acc) / l.at(i, i).real();
  }
  return x;
}

double fro_norm(const CMat& a) {
  double s = 0.0;
  for (const cd& v : a.data()) s += std::norm(v);
  return std::sqrt(s);
}

}  // namespace tsim::phy
