// Dense complex double-precision linear algebra for the golden (64bDouble)
// receive chain: the reference the paper's Python model provides.
#pragma once

#include <complex>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace tsim::phy {

using cd = std::complex<double>;

/// Row-major dense complex matrix.
class CMat {
 public:
  CMat() = default;
  CMat(u32 rows, u32 cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  u32 rows() const { return rows_; }
  u32 cols() const { return cols_; }

  cd& at(u32 r, u32 c) { return data_[r * cols_ + c]; }
  const cd& at(u32 r, u32 c) const { return data_[r * cols_ + c]; }

  std::vector<cd>& data() { return data_; }
  const std::vector<cd>& data() const { return data_; }

  static CMat identity(u32 n) {
    CMat m(n, n);
    for (u32 i = 0; i < n; ++i) m.at(i, i) = 1.0;
    return m;
  }

 private:
  u32 rows_ = 0;
  u32 cols_ = 0;
  std::vector<cd> data_;
};

/// Conjugate transpose.
CMat hermitian(const CMat& a);

/// Matrix product a * b.
CMat matmul(const CMat& a, const CMat& b);

/// Matrix-vector product a * x.
std::vector<cd> matvec(const CMat& a, const std::vector<cd>& x);

/// a^H * x (matched filter) without forming the transpose.
std::vector<cd> hermitian_matvec(const CMat& a, const std::vector<cd>& x);

/// Gram matrix a^H a + diag_load * I.
CMat gram(const CMat& a, double diag_load);

/// Cholesky factorization g = l l^H (lower l, real positive diagonal).
/// Throws SimError if g is not positive definite.
CMat cholesky(const CMat& g);

/// Solves l w = b for lower-triangular l.
std::vector<cd> forward_solve(const CMat& l, const std::vector<cd>& b);

/// Solves l^H x = b for lower-triangular l.
std::vector<cd> backward_solve(const CMat& l, const std::vector<cd>& b);

/// Frobenius norm.
double fro_norm(const CMat& a);

}  // namespace tsim::phy
