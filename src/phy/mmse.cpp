#include "phy/mmse.h"

namespace tsim::phy {

std::vector<cd> mmse_detect(const CMat& h, const std::vector<cd>& y, double sigma2) {
  const CMat g = gram(h, sigma2);
  const std::vector<cd> z = hermitian_matvec(h, y);
  const CMat l = cholesky(g);
  const std::vector<cd> w = forward_solve(l, z);
  return backward_solve(l, w);
}

}  // namespace tsim::phy
