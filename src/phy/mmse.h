// Golden double-precision MMSE detector (the paper's "64bDouble" reference),
// implemented with the same operator decomposition the DUT software uses:
// Gram -> matched filter -> Cholesky -> forward/backward triangular solves.
#pragma once

#include "phy/linalg.h"

namespace tsim::phy {

/// x_hat = (H^H H + sigma2 I)^-1 H^H y.
std::vector<cd> mmse_detect(const CMat& h, const std::vector<cd>& y, double sigma2);

}  // namespace tsim::phy
