// 5G NR OFDM numerology and frame structure (paper Sec. II/V-A).
//
// The paper's Monte-Carlo unit is one OFDM symbol of a New Radio carrier:
// "a NR transmission in a 50 MHz bandwidth, with NSC = 1638, 30 kHz
// subcarrier spacing, and 0.5 ms TTI duration", and "the BS processes a
// Transmission Time Interval (TTI) with 14 OFDM-symbols in <1 ms". This
// module captures that arithmetic so workloads and deadline analyses are
// derived from standard parameters instead of magic numbers.
#pragma once

#include "common/error.h"
#include "common/types.h"

namespace tsim::phy {

/// NR numerology (3GPP TS 38.211): mu selects the subcarrier spacing.
struct Numerology {
  u32 mu = 1;  // 0: 15 kHz, 1: 30 kHz (the paper's case), 2: 60 kHz ...

  u32 subcarrier_spacing_hz() const { return 15'000u << mu; }
  u32 slots_per_subframe() const { return 1u << mu; }
  /// Slot (= TTI at one slot per TTI) duration in seconds.
  double slot_seconds() const { return 1e-3 / slots_per_subframe(); }
};

/// One carrier configuration: bandwidth + numerology -> resource grid.
struct CarrierConfig {
  double bandwidth_hz = 50e6;
  Numerology numerology{};
  double guard_fraction = 0.0172;  // spectrum not usable for data
  u32 symbols_per_slot = 14;       // normal cyclic prefix

  /// Usable data subcarriers per OFDM symbol. For the paper's 50 MHz /
  /// 30 kHz configuration this yields 1638 (= 136.5 PRB-equivalents).
  u32 num_subcarriers() const {
    const double usable = bandwidth_hz * (1.0 - guard_fraction);
    return static_cast<u32>(usable / numerology.subcarrier_spacing_hz());
  }

  /// OFDM symbol duration including cyclic prefix (seconds).
  double symbol_seconds() const {
    return numerology.slot_seconds() / symbols_per_slot;
  }

  /// Detection problems per TTI: one MMSE per subcarrier per symbol.
  u64 problems_per_tti() const {
    return static_cast<u64>(num_subcarriers()) * symbols_per_slot;
  }

  /// The paper's carrier: 50 MHz, mu = 1 (30 kHz SCS), NSC = 1638.
  static CarrierConfig paper_50mhz() { return CarrierConfig{}; }
};

/// Real-time feasibility of a detector implementation on the DUT.
struct TtiDeadlineReport {
  u64 cycles_per_problem = 0;
  u64 problems = 0;            // per TTI
  u32 parallel_cores = 0;      // cores processing problems concurrently
  double clock_hz = 1e9;       // assumed DUT clock

  double processing_seconds() const {
    const u64 rounds = ceil_div(problems, parallel_cores);
    return static_cast<double>(rounds) * cycles_per_problem / clock_hz;
  }
  double tti_seconds = 1e-3;
  bool meets_deadline() const { return processing_seconds() <= tti_seconds; }
  /// How many such carriers one cluster could sustain (>1 = headroom).
  double headroom() const { return tti_seconds / processing_seconds(); }
};

/// Builds the deadline report for a measured per-problem cycle count.
inline TtiDeadlineReport tti_deadline(const CarrierConfig& carrier,
                                      u64 cycles_per_problem, u32 parallel_cores,
                                      double clock_hz = 1e9) {
  check(parallel_cores > 0, "tti_deadline: need at least one core");
  TtiDeadlineReport r;
  r.cycles_per_problem = cycles_per_problem;
  r.problems = carrier.problems_per_tti();
  r.parallel_cores = parallel_cores;
  r.clock_hz = clock_hz;
  r.tti_seconds = carrier.numerology.slot_seconds();
  return r;
}

}  // namespace tsim::phy
