#include "phy/qam.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tsim::phy {
namespace {

u32 gray_encode(u32 v) { return v ^ (v >> 1); }

u32 gray_decode(u32 g) {
  u32 v = g;
  for (u32 shift = 1; shift < 32; shift <<= 1) v ^= v >> shift;
  return v;
}

}  // namespace

QamModulator::QamModulator(u32 order) : order_(order) {
  check(order == 4 || order == 16 || order == 64 || order == 256,
        "QamModulator: unsupported constellation order");
  bits_ = 0;
  for (u32 m = order; m > 1; m >>= 1) ++bits_;
  axis_bits_ = bits_ / 2;
  levels_ = 1u << axis_bits_;
  // Mean energy of the unnormalized constellation: 2*(M-1)/3.
  scale_ = 1.0 / std::sqrt(2.0 * (order - 1) / 3.0);
}

u32 QamModulator::axis_level(std::span<const u8> bits) const {
  u32 g = 0;
  for (u32 i = 0; i < axis_bits_; ++i) g = (g << 1) | (bits[i] & 1);
  return gray_decode(g);
}

void QamModulator::axis_bits(u32 index, std::span<u8> bits) const {
  const u32 g = gray_encode(index);
  for (u32 i = 0; i < axis_bits_; ++i)
    bits[i] = static_cast<u8>((g >> (axis_bits_ - 1 - i)) & 1);
}

std::complex<double> QamModulator::map(std::span<const u8> bits) const {
  check(bits.size() >= bits_, "QamModulator::map: not enough bits");
  const u32 li = axis_level(bits.first(axis_bits_));
  const u32 lq = axis_level(bits.subspan(axis_bits_, axis_bits_));
  const double re = (2.0 * li - (levels_ - 1)) * scale_;
  const double im = (2.0 * lq - (levels_ - 1)) * scale_;
  return {re, im};
}

void QamModulator::demap(std::complex<double> symbol, std::span<u8> bits) const {
  check(bits.size() >= bits_, "QamModulator::demap: not enough space");
  const auto quantize = [&](double v) -> u32 {
    if (!std::isfinite(v)) return 0;  // garbage symbols decode deterministically
    const double level = (v / scale_ + (levels_ - 1)) / 2.0;
    const long idx = std::lround(level);
    return static_cast<u32>(std::clamp<long>(idx, 0, levels_ - 1));
  };
  axis_bits(quantize(symbol.real()), bits.first(axis_bits_));
  axis_bits(quantize(symbol.imag()), bits.subspan(axis_bits_, axis_bits_));
}

std::vector<std::complex<double>> QamModulator::map_sequence(
    std::span<const u8> bits) const {
  check(bits.size() % bits_ == 0, "QamModulator: bit count not a symbol multiple");
  std::vector<std::complex<double>> out(bits.size() / bits_);
  for (size_t s = 0; s < out.size(); ++s) out[s] = map(bits.subspan(s * bits_, bits_));
  return out;
}

void QamModulator::soft_demap(std::complex<double> symbol, double n0,
                              std::span<double> llrs) const {
  check(llrs.size() >= bits_, "soft_demap: not enough space");
  check(n0 > 0.0, "soft_demap: noise variance must be positive");
  // The square Gray constellation factorizes: I-axis bits depend only on
  // Re(y), Q-axis bits only on Im(y). Enumerate the per-axis levels.
  const auto axis_llrs = [&](double y, std::span<double> out) {
    for (u32 b = 0; b < axis_bits_; ++b) {
      double best0 = std::numeric_limits<double>::infinity();
      double best1 = best0;
      for (u32 level = 0; level < levels_; ++level) {
        const double s = (2.0 * level - (levels_ - 1)) * scale_;
        const double d2 = (y - s) * (y - s);
        const u32 g = gray_encode(level);
        const bool bit = ((g >> (axis_bits_ - 1 - b)) & 1) != 0;
        (bit ? best1 : best0) = std::min(bit ? best1 : best0, d2);
      }
      out[b] = (best1 - best0) / n0;
    }
  };
  axis_llrs(symbol.real(), llrs.first(axis_bits_));
  axis_llrs(symbol.imag(), llrs.subspan(axis_bits_, axis_bits_));
}

std::vector<u8> QamModulator::demap_sequence(
    std::span<const std::complex<double>> symbols) const {
  std::vector<u8> out(symbols.size() * bits_);
  for (size_t s = 0; s < symbols.size(); ++s)
    demap(symbols[s], std::span<u8>(out).subspan(s * bits_, bits_));
  return out;
}

}  // namespace tsim::phy
