// Gray-coded square QAM mapping/demapping (4/16/64/256-QAM), unit average
// symbol energy, as used by the paper's transmission model.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace tsim::phy {

class QamModulator {
 public:
  /// order: constellation size M (4, 16, 64, 256).
  explicit QamModulator(u32 order);

  u32 order() const { return order_; }
  u32 bits_per_symbol() const { return bits_; }

  /// Maps `bits_per_symbol()` bits (MSB first: first half I, second half Q)
  /// to a unit-average-energy constellation point.
  std::complex<double> map(std::span<const u8> bits) const;

  /// Hard-decision demap to the nearest constellation point.
  void demap(std::complex<double> symbol, std::span<u8> bits) const;

  /// Maps a whole bit sequence (length multiple of bits_per_symbol).
  std::vector<std::complex<double>> map_sequence(std::span<const u8> bits) const;

  /// Demaps a symbol sequence into bits.
  std::vector<u8> demap_sequence(std::span<const std::complex<double>> symbols) const;

  /// Max-log-MAP soft demapping: per-bit log-likelihood ratios
  /// LLR_b = (min_{s: b=1} |y-s|^2 - min_{s: b=0} |y-s|^2) / n0,
  /// so positive values favour bit 0. `llrs` must hold bits_per_symbol().
  void soft_demap(std::complex<double> symbol, double n0, std::span<double> llrs) const;

 private:
  u32 axis_level(std::span<const u8> bits) const;  // Gray bits -> level index
  void axis_bits(u32 index, std::span<u8> bits) const;

  u32 order_;
  u32 bits_;       // per symbol
  u32 axis_bits_;  // per I/Q axis
  u32 levels_;     // per axis
  double scale_;   // 1/sqrt(mean energy)
};

}  // namespace tsim::phy
