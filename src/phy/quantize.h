// Host-side staging of complex operands into the DUT's bit-true formats.
#pragma once

#include <vector>

#include "phy/linalg.h"
#include "rv/fp_formats.h"
#include "softfloat/minifloat.h"

namespace tsim::phy {

/// Complex value -> packed (re16, im16) little-endian bytes.
inline void append_cf16(std::vector<u8>& out, cd v) {
  const u16 re = static_cast<u16>(sf::F16::from_double(v.real()));
  const u16 im = static_cast<u16>(sf::F16::from_double(v.imag()));
  out.push_back(static_cast<u8>(re));
  out.push_back(static_cast<u8>(re >> 8));
  out.push_back(static_cast<u8>(im));
  out.push_back(static_cast<u8>(im >> 8));
}

/// Complex value -> packed (re8, im8) bytes in the DUT's fp8 format.
inline void append_cf8(std::vector<u8>& out, cd v) {
  out.push_back(static_cast<u8>(rv::Fp8::from_double(v.real())));
  out.push_back(static_cast<u8>(rv::Fp8::from_double(v.imag())));
}

/// Packed (re16, im16) bytes -> complex double.
inline cd read_cf16(const u8* p) {
  const u16 re = static_cast<u16>(p[0] | (p[1] << 8));
  const u16 im = static_cast<u16>(p[2] | (p[3] << 8));
  return {sf::F16::to_double(re), sf::F16::to_double(im)};
}

/// Round-trips a complex value through fp16 (models input quantization).
inline cd quantize_cf16(cd v) {
  return {sf::F16::to_double(sf::F16::from_double(v.real())),
          sf::F16::to_double(sf::F16::from_double(v.imag()))};
}

/// Round-trips a complex value through the DUT fp8 format.
inline cd quantize_cf8(cd v) {
  return {rv::Fp8::to_double(rv::Fp8::from_double(v.real())),
          rv::Fp8::to_double(rv::Fp8::from_double(v.imag()))};
}

}  // namespace tsim::phy
