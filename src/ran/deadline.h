// TTI deadline accounting (paper Sec. II: "the BS processes a Transmission
// Time Interval (TTI) with 14 OFDM-symbols in < 1 ms"; at mu = 1 numerology
// one slot is 0.5 ms).
//
// The scheduler reports work in simulated DUT cycles; this header converts
// those to wall-clock latency at a configurable cluster frequency, checks the
// slot deadline, and renders the per-TTI summary (latency, margin, throughput
// in Mb/s, per-cluster utilization) as a sim::Table.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "phy/ofdm.h"
#include "ran/scheduler.h"
#include "sim/report.h"

namespace tsim::ran {

/// Latency of one processed slot at a given DUT clock.
struct SlotTiming {
  u64 slot_cycles = 0;      // critical-path cycles (max over clusters)
  double clock_hz = 1e9;    // assumed cluster frequency
  double tti_seconds = 5e-4;

  double latency_seconds() const {
    return static_cast<double>(slot_cycles) / clock_hz;
  }
  bool meets_deadline() const { return latency_seconds() <= tti_seconds; }
  /// Positive = headroom, negative = overrun.
  double margin_seconds() const { return tti_seconds - latency_seconds(); }
  /// Fraction of the TTI left over (1 = idle, 0 = exactly at the deadline).
  double margin_fraction() const { return margin_seconds() / tti_seconds; }
};

inline SlotTiming slot_timing(const SlotResult& result,
                              const phy::CarrierConfig& carrier,
                              double clock_hz = 1e9) {
  SlotTiming t;
  t.slot_cycles = result.slot_cycles;
  t.clock_hz = clock_hz;
  t.tti_seconds = carrier.numerology.slot_seconds();
  return t;
}

/// Payload bits over an interval, in Mb/s.
inline double throughput_mbps(u64 bits, double seconds) {
  return seconds <= 0.0 ? 0.0 : static_cast<double>(bits) / seconds / 1e6;
}

/// Aggregated per-TTI verdict: deadline timing plus the program-reload
/// overhead the batch-to-cluster assignment paid (see scheduler.h).
/// Reloads and busy cycles are summed across all clusters - clusters reload
/// in parallel, so only a slice of reload_cycles sits on the (max-based)
/// critical path. reload_fraction() therefore reports reload cycles as a
/// share of total cluster busy time - the number the locality policy
/// exists to shrink.
struct DeadlineReport {
  SlotTiming timing;
  u64 reloads = 0;          // program switches across all clusters
  u64 reload_cycles = 0;    // modeled DMA cycles of those switches
  u64 busy_cycles = 0;      // total cluster busy cycles (reloads included)
  bool degraded = false;    // slot ran around dead clusters / failed batches
  u32 dead_clusters = 0;    // clusters dead this TTI (fault plan)
  bool met() const { return timing.meets_deadline(); }
  double reload_fraction() const {
    return busy_cycles == 0 ? 0.0
                            : static_cast<double>(reload_cycles) /
                                  static_cast<double>(busy_cycles);
  }
};

inline DeadlineReport deadline_report(const SlotResult& result,
                                      const phy::CarrierConfig& carrier,
                                      double clock_hz = 1e9) {
  DeadlineReport rep;
  rep.timing = slot_timing(result, carrier, clock_hz);
  rep.reloads = result.total_reloads;
  rep.reload_cycles = result.total_reload_cycles;
  for (const u64 busy : result.cluster_busy_cycles) rep.busy_cycles += busy;
  rep.degraded = result.degraded;
  rep.dead_clusters = static_cast<u32>(result.dead_clusters.size());
  return rep;
}

/// Multi-slot aggregation: deadline misses, latency percentiles and reload
/// totals over a run of processed slots (a soak, one farm cell, a sweep
/// point). Percentiles are nearest-rank over the exact integer slot-cycle
/// counts, so aggregates are bit-identical wherever the slots were computed
/// (any host thread count, any farm shard).
struct AggregateReport {
  u64 slots = 0;
  u64 misses = 0;          // slots whose latency exceeded the TTI deadline
  u64 reloads = 0;         // program switches, summed over slots
  u64 reload_cycles = 0;   // modeled DMA cycles of those switches
  u64 worst_cycles = 0;    // worst slot critical path
  u64 p50_cycles = 0;      // nearest-rank median slot critical path
  u64 p99_cycles = 0;      // nearest-rank 99th-percentile slot critical path
  u64 total_bits = 0;      // payload bits over all slots
  u64 total_errors = 0;    // hard-decision bit errors over all slots
  // Fault-injection outcome over the run (all zero with faults off).
  u64 degraded_slots = 0;  // slots that ran degraded (dead cluster / failed batch)
  u64 failed_batches = 0;  // batch runs that did not complete
  u64 hart_faults = 0;     // injected ISS hart faults that fired
  u64 ecc_corrected = 0;   // SECDED single-bit L1 upsets scrubbed
  u64 ecc_detected = 0;    // double-bit L1 upsets detected (corrupting)
  u64 ecc_silent = 0;      // ECC-off L1 upsets (silent corruption)
  double clock_hz = 1e9;
  double tti_seconds = 5e-4;

  double worst_latency_seconds() const { return worst_cycles / clock_hz; }
  double p50_latency_seconds() const { return p50_cycles / clock_hz; }
  double p99_latency_seconds() const { return p99_cycles / clock_hz; }
  double miss_fraction() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(misses) / static_cast<double>(slots);
  }
  double ber() const {
    return total_bits == 0 ? 0.0
                           : static_cast<double>(total_errors) /
                                 static_cast<double>(total_bits);
  }
};

/// Nearest-rank percentile of a non-empty sorted sample: the smallest value
/// whose rank covers fraction `q` of the sample (q in (0, 1]).
inline u64 nearest_rank(const std::vector<u64>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

inline AggregateReport aggregate_report(const std::vector<SlotResult>& results,
                                        const phy::CarrierConfig& carrier,
                                        double clock_hz = 1e9) {
  AggregateReport agg;
  agg.clock_hz = clock_hz;
  agg.tti_seconds = carrier.numerology.slot_seconds();
  agg.slots = results.size();
  std::vector<u64> cycles;
  cycles.reserve(results.size());
  for (const SlotResult& r : results) {
    cycles.push_back(r.slot_cycles);
    agg.worst_cycles = std::max(agg.worst_cycles, r.slot_cycles);
    agg.reloads += r.total_reloads;
    agg.reload_cycles += r.total_reload_cycles;
    agg.total_bits += r.bits;
    agg.total_errors += r.errors;
    if (r.degraded) ++agg.degraded_slots;
    agg.failed_batches += r.failed_batches;
    agg.hart_faults += r.hart_faults;
    agg.ecc_corrected += r.ecc_corrected;
    agg.ecc_detected += r.ecc_detected;
    agg.ecc_silent += r.ecc_silent;
    if (static_cast<double>(r.slot_cycles) / clock_hz > agg.tti_seconds)
      ++agg.misses;
  }
  std::sort(cycles.begin(), cycles.end());
  agg.p50_cycles = nearest_rank(cycles, 0.50);
  agg.p99_cycles = nearest_rank(cycles, 0.99);
  return agg;
}

/// Fraction of the slot's critical path during which cluster `c` was busy.
/// The critical path is the symbol-serialized sum (see SlotResult), so with
/// imbalanced symbol work even the busiest cluster can sit below 1.0.
inline double cluster_utilization(const SlotResult& result, u32 c) {
  if (result.slot_cycles == 0) return 0.0;
  return static_cast<double>(result.cluster_busy_cycles[c]) /
         static_cast<double>(result.slot_cycles);
}

/// One row per TTI: latency vs deadline, throughput, BER, reload overhead.
inline sim::Table slot_report_header() {
  return sim::Table({"tti", "problems", "bits", "ber", "latency_us", "deadline_us",
                     "margin_%", "met", "offered_mbps", "processed_mbps",
                     "reloads", "reload_%"});
}

inline void add_slot_row(sim::Table& table, const SlotResult& result,
                         const SlotTiming& timing) {
  // Reload share of total cluster busy time (parallel clusters reload in
  // parallel, so dividing by the max-based critical path would overstate).
  u64 busy_total = 0;
  for (const u64 busy : result.cluster_busy_cycles) busy_total += busy;
  const double reload_frac =
      busy_total == 0 ? 0.0
                      : static_cast<double>(result.total_reload_cycles) /
                            static_cast<double>(busy_total);
  table.add_row({
      sim::strf("%llu", static_cast<unsigned long long>(result.tti)),
      sim::strf("%llu", static_cast<unsigned long long>(result.problems)),
      sim::strf("%llu", static_cast<unsigned long long>(result.bits)),
      sim::strf("%.3g", result.ber()),
      sim::strf("%.1f", timing.latency_seconds() * 1e6),
      sim::strf("%.1f", timing.tti_seconds * 1e6),
      sim::strf("%+.1f", timing.margin_fraction() * 100.0),
      timing.meets_deadline() ? "yes" : "NO",
      sim::strf("%.1f", throughput_mbps(result.bits, timing.tti_seconds)),
      sim::strf("%.1f", throughput_mbps(result.bits, timing.latency_seconds())),
      sim::strf("%llu", static_cast<unsigned long long>(result.total_reloads)),
      sim::strf("%.2f", reload_frac * 100.0),
  });
}

/// One row per cluster: batches run, program reloads, busy cycles (reload
/// cycles included and also broken out), utilization.
inline sim::Table cluster_report(const SlotResult& result) {
  sim::Table table({"cluster", "batches", "reloads", "reload_cycles",
                    "busy_cycles", "utilization_%"});
  for (u32 c = 0; c < result.cluster_busy_cycles.size(); ++c) {
    table.add_row({
        sim::strf("%u", c),
        sim::strf("%u", result.cluster_batches[c]),
        sim::strf("%u", result.cluster_reloads[c]),
        sim::strf("%llu",
                  static_cast<unsigned long long>(result.cluster_reload_cycles[c])),
        sim::strf("%llu",
                  static_cast<unsigned long long>(result.cluster_busy_cycles[c])),
        sim::strf("%.1f", cluster_utilization(result, c) * 100.0),
    });
  }
  return table;
}

/// One row per OFDM symbol: critical-path cycles and latency share.
inline sim::Table symbol_report(const SlotResult& result, const SlotTiming& timing) {
  sim::Table table({"symbol", "cycles", "latency_us"});
  for (u32 s = 0; s < result.symbol_cycles.size(); ++s) {
    table.add_row({
        sim::strf("%u", s),
        sim::strf("%llu", static_cast<unsigned long long>(result.symbol_cycles[s])),
        sim::strf("%.2f", static_cast<double>(result.symbol_cycles[s]) /
                              timing.clock_hz * 1e6),
    });
  }
  return table;
}

}  // namespace tsim::ran
