// TTI deadline accounting (paper Sec. II: "the BS processes a Transmission
// Time Interval (TTI) with 14 OFDM-symbols in < 1 ms"; at mu = 1 numerology
// one slot is 0.5 ms).
//
// The scheduler reports work in simulated DUT cycles; this header converts
// those to wall-clock latency at a configurable cluster frequency, checks the
// slot deadline, and renders the per-TTI summary (latency, margin, throughput
// in Mb/s, per-cluster utilization) as a sim::Table.
#pragma once

#include "phy/ofdm.h"
#include "ran/scheduler.h"
#include "sim/report.h"

namespace tsim::ran {

/// Latency of one processed slot at a given DUT clock.
struct SlotTiming {
  u64 slot_cycles = 0;      // critical-path cycles (max over clusters)
  double clock_hz = 1e9;    // assumed cluster frequency
  double tti_seconds = 5e-4;

  double latency_seconds() const {
    return static_cast<double>(slot_cycles) / clock_hz;
  }
  bool meets_deadline() const { return latency_seconds() <= tti_seconds; }
  /// Positive = headroom, negative = overrun.
  double margin_seconds() const { return tti_seconds - latency_seconds(); }
  /// Fraction of the TTI left over (1 = idle, 0 = exactly at the deadline).
  double margin_fraction() const { return margin_seconds() / tti_seconds; }
};

inline SlotTiming slot_timing(const SlotResult& result,
                              const phy::CarrierConfig& carrier,
                              double clock_hz = 1e9) {
  SlotTiming t;
  t.slot_cycles = result.slot_cycles;
  t.clock_hz = clock_hz;
  t.tti_seconds = carrier.numerology.slot_seconds();
  return t;
}

/// Payload bits over an interval, in Mb/s.
inline double throughput_mbps(u64 bits, double seconds) {
  return seconds <= 0.0 ? 0.0 : static_cast<double>(bits) / seconds / 1e6;
}

/// Fraction of the slot's critical path during which cluster `c` was busy.
/// The critical path is the symbol-serialized sum (see SlotResult), so with
/// imbalanced symbol work even the busiest cluster can sit below 1.0.
inline double cluster_utilization(const SlotResult& result, u32 c) {
  if (result.slot_cycles == 0) return 0.0;
  return static_cast<double>(result.cluster_busy_cycles[c]) /
         static_cast<double>(result.slot_cycles);
}

/// One row per TTI: latency vs deadline, throughput and BER.
inline sim::Table slot_report_header() {
  return sim::Table({"tti", "problems", "bits", "ber", "latency_us", "deadline_us",
                     "margin_%", "met", "offered_mbps", "processed_mbps"});
}

inline void add_slot_row(sim::Table& table, const SlotResult& result,
                         const SlotTiming& timing) {
  table.add_row({
      sim::strf("%llu", static_cast<unsigned long long>(result.tti)),
      sim::strf("%llu", static_cast<unsigned long long>(result.problems)),
      sim::strf("%llu", static_cast<unsigned long long>(result.bits)),
      sim::strf("%.3g", result.ber()),
      sim::strf("%.1f", timing.latency_seconds() * 1e6),
      sim::strf("%.1f", timing.tti_seconds * 1e6),
      sim::strf("%+.1f", timing.margin_fraction() * 100.0),
      timing.meets_deadline() ? "yes" : "NO",
      sim::strf("%.1f", throughput_mbps(result.bits, timing.tti_seconds)),
      sim::strf("%.1f", throughput_mbps(result.bits, timing.latency_seconds())),
  });
}

/// One row per cluster: batches run, busy cycles, utilization.
inline sim::Table cluster_report(const SlotResult& result) {
  sim::Table table({"cluster", "batches", "busy_cycles", "utilization_%"});
  for (u32 c = 0; c < result.cluster_busy_cycles.size(); ++c) {
    table.add_row({
        sim::strf("%u", c),
        sim::strf("%u", result.cluster_batches[c]),
        sim::strf("%llu",
                  static_cast<unsigned long long>(result.cluster_busy_cycles[c])),
        sim::strf("%.1f", cluster_utilization(result, c) * 100.0),
    });
  }
  return table;
}

/// One row per OFDM symbol: critical-path cycles and latency share.
inline sim::Table symbol_report(const SlotResult& result, const SlotTiming& timing) {
  sim::Table table({"symbol", "cycles", "latency_us"});
  for (u32 s = 0; s < result.symbol_cycles.size(); ++s) {
    table.add_row({
        sim::strf("%u", s),
        sim::strf("%llu", static_cast<unsigned long long>(result.symbol_cycles[s])),
        sim::strf("%.2f", static_cast<double>(result.symbol_cycles[s]) /
                              timing.clock_hz * 1e6),
    });
  }
  return table;
}

}  // namespace tsim::ran
