#include "ran/scheduler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "phy/channel.h"
#include "sim/cosim.h"

namespace tsim::ran {

AssignPolicy parse_policy(const std::string& name) {
  if (name == "roundrobin") return AssignPolicy::kRoundRobin;
  if (name == "locality") return AssignPolicy::kLocality;
  throw SimError("unknown assignment policy '" + name +
                 "' (expected roundrobin or locality)");
}

void ClusterPoolConfig::validate() const {
  check(num_clusters >= 1, "ClusterPoolConfig: need at least one cluster");
  check(host_threads >= 1, "ClusterPoolConfig: need at least one host thread");
  check(threads_per_cluster >= 1, "ClusterPoolConfig: threads_per_cluster >= 1");
  check(problems_per_core >= 1, "ClusterPoolConfig: problems_per_core >= 1");
  cluster.validate();
  fault.validate();
  if (fault.enabled && fault.cluster_fail_tti != sim::FaultConfig::kNever) {
    check(fault.cluster_fail_id < num_clusters,
          "ClusterPoolConfig: fault.cluster_fail_id out of range");
    check(num_clusters >= 2,
          "ClusterPoolConfig: cluster failure needs a survivor cluster");
  }
}

SlotScheduler::SlotScheduler(const ClusterPoolConfig& cfg, std::vector<UeGroup> groups)
    : SlotScheduler(cfg, std::move(groups), nullptr) {}

SlotScheduler::SlotScheduler(const ClusterPoolConfig& cfg, std::vector<UeGroup> groups,
                             const WarmState* warm)
    : cfg_(cfg), groups_(std::move(groups)) {
  cfg_.validate();
  check(!groups_.empty(), "SlotScheduler: need at least one UE group");

  mods_.reserve(groups_.size());
  group_geometry_.reserve(groups_.size());
  for (const auto& g : groups_) {
    mods_.emplace_back(g.qam_order);
    group_geometry_.push_back(geometry_for(g.ntx, g.nrx));
  }

  if (warm != nullptr) {
    check(warm->key == warm_key(cfg_, groups_),
          "SlotScheduler: warm state from an incompatible shaping config");
    check(warm->programs.size() == geometries_.size(),
          "SlotScheduler: warm state geometry count mismatch");
  }

  // All geometries share one hart count so a cluster can switch geometry by
  // selecting a resident program without re-sizing the machine: the common
  // count is the smallest per-geometry L1 fit (optionally capped by
  // batch_cores).
  u32 common_cores = cfg_.cluster.num_cores();
  if (cfg_.batch_cores != 0) common_cores = std::min(common_cores, cfg_.batch_cores);
  for (const auto& geo : geometries_) {
    const u32 fit = kern::MmseLayout::max_parallel_cores(cfg_.cluster, geo.ntx,
                                                         geo.nrx, cfg_.prec);
    common_cores =
        std::min(common_cores, std::max(1u, fit / cfg_.problems_per_core));
  }
  for (u32 g = 0; g < geometries_.size(); ++g) {
    GeometryContext& geo = geometries_[g];
    geo.layout.num_cores = common_cores;
    geo.layout.validate();
    // A warm sibling already assembled the identical program (it is a pure
    // function of the layout, which the warm_key pins).
    geo.program = warm != nullptr ? warm->programs[g]
                                  : kern::build_mmse_program(geo.layout);
    geo.reload_cycles = program_reload_cycles(geo.program.size_bytes());
  }

  clusters_.resize(cfg_.num_clusters);
  for (auto& c : clusters_) {
    c.machine = std::make_unique<iss::Machine>(cfg_.cluster, iss::TimingConfig{},
                                               common_cores);
    c.geometry_handles.assign(geometries_.size(), -1);
  }

  // Calibration is only worth its warm-up runs when the locality policy has
  // a real placement decision to make: with a single cluster every batch
  // lands on it regardless of cost, and with a single geometry the chunks
  // are cost-uniform, so RELATIVE costs never change an assignment.
  // Round-robin never reads the costs at all. BENCH_ran_throughput showed
  // locality losing wall-clock to roundrobin in exactly these degenerate
  // configs, entirely from calibration overhead. When skipped under
  // locality, every geometry gets a large uniform placeholder cost: the
  // span = ceil(cost / ceil(cost/nc)) chunk arithmetic in assign_batches is
  // magnitude-sensitive for SMALL costs (a zero cost would even degenerate
  // the even-share target to 0 and bypass the residency tiers), but for
  // costs >> num_clusters^2 it sits in the stable large-cost asymptote
  // (span == nc) that every real calibrated kernel (~1e5 cycles) also
  // lands in - so the placeholder reproduces calibrated-uniform placement
  // for any realistic cost magnitude.
  if (cfg_.policy == AssignPolicy::kLocality) {
    if (cfg_.num_clusters > 1 && geometries_.size() > 1) {
      if (warm != nullptr && warm->calibrated) {
        adopt_warm_calibration(*warm);
      } else {
        calibrate_geometry_costs();
      }
      calibrated_ = true;
    } else {
      for (auto& geo : geometries_) geo.batch_cycles = kUncalibratedBatchCost;
    }
  }
}

u64 SlotScheduler::warm_key(const ClusterPoolConfig& cfg,
                            const std::vector<UeGroup>& groups) {
  u64 h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const tera::TeraPoolConfig& c = cfg.cluster;
  mix(c.cores_per_tile);
  mix(c.tiles_per_subgroup);
  mix(c.subgroups_per_group);
  mix(c.groups);
  mix(c.tile_l1_bytes);
  mix(c.banks_per_tile);
  mix(c.icache_bytes);
  mix(c.icache_line_bytes);
  mix(c.l2_bytes);
  mix(c.lat_local_tile);
  mix(c.lat_same_subgroup);
  mix(c.lat_same_group);
  mix(c.lat_remote_group);
  mix(c.lat_l2);
  mix(static_cast<u64>(cfg.prec));
  mix(cfg.problems_per_core);
  mix(cfg.batch_cores);
  mix(groups.size());
  for (const UeGroup& g : groups) {
    mix(g.ntx);
    mix(g.nrx);
  }
  return h;
}

SlotScheduler::WarmState SlotScheduler::export_warm_state() const {
  WarmState w;
  w.key = warm_key(cfg_, groups_);
  w.programs.reserve(geometries_.size());
  for (const GeometryContext& geo : geometries_) w.programs.push_back(geo.program);
  w.calibrated = calibrated_;
  if (calibrated_) {
    w.batch_cycles.reserve(geometries_.size());
    for (const GeometryContext& geo : geometries_)
      w.batch_cycles.push_back(geo.batch_cycles);
  }
  return w;
}

void SlotScheduler::adopt_warm_calibration(const WarmState& warm) {
  check(warm.batch_cycles.size() == geometries_.size(),
        "SlotScheduler: warm calibration geometry count mismatch");
  // Adopt the sibling's measured costs and replicate calibration's residency
  // side effects - cluster 0 ends with every geometry resident and the last
  // one loaded - without the measurement runs. The costs are a deterministic
  // pure function of the shaping config, so placement decisions and reload
  // accounting match a cold-calibrated scheduler exactly.
  Cluster& c0 = clusters_[0];
  for (u32 g = 0; g < geometries_.size(); ++g) {
    geometries_[g].batch_cycles = warm.batch_cycles[g];
    c0.geometry_handles[g] =
        static_cast<i64>(c0.machine->load_program(geometries_[g].program));
    c0.loaded_geometry = static_cast<i64>(g);
  }
}

SlotScheduler::FastForwardStats SlotScheduler::fast_forward_stats() const {
  FastForwardStats s;
  s.full_batches = ff_full_batches_.load(std::memory_order_relaxed);
  s.shrunk_batches = ff_shrunk_batches_.load(std::memory_order_relaxed);
  s.cores_full = ff_cores_full_.load(std::memory_order_relaxed);
  s.cores_run = ff_cores_run_.load(std::memory_order_relaxed);
  return s;
}

u32 SlotScheduler::geometry_for(u32 ntx, u32 nrx) {
  for (u32 i = 0; i < geometries_.size(); ++i) {
    if (geometries_[i].ntx == ntx && geometries_[i].nrx == nrx) return i;
  }
  GeometryContext geo;
  geo.ntx = ntx;
  geo.nrx = nrx;
  geo.layout.ntx = ntx;
  geo.layout.nrx = nrx;
  geo.layout.prec = cfg_.prec;
  geo.layout.problems_per_core = cfg_.problems_per_core;
  geo.layout.cluster = cfg_.cluster;
  geometries_.push_back(std::move(geo));  // num_cores/program set by constructor
  return static_cast<u32>(geometries_.size() - 1);
}

const kern::MmseLayout& SlotScheduler::layout_for_group(u32 g) const {
  check(g < groups_.size(), "layout_for_group: group out of range");
  return geometries_[group_geometry_[g]].layout;
}

u64 SlotScheduler::batch_cycles_for_group(u32 g) const {
  check(g < groups_.size(), "batch_cycles_for_group: group out of range");
  return geometries_[group_geometry_[g]].batch_cycles;
}

namespace {
constexpr u32 kSchedulerTag = 0x31484353;  // "SCH1"
}

void SlotScheduler::save_state(sim::SnapshotWriter& w) const {
  w.tag(kSchedulerTag);
  w.write_u64(geometries_.size());
  w.write_u64(clusters_.size());
  for (const Cluster& c : clusters_) {
    w.write_i64(c.loaded_geometry);
    w.write_u64(c.geometry_handles.size());
    for (const i64 h : c.geometry_handles) w.write_i64(h);
    w.write_u64(c.variants.size());
    for (const Cluster::Variant& v : c.variants) {
      w.write_u32(v.geometry);
      w.write_u32(v.cores);
      w.write_i64(v.handle);
    }
    c.machine->save_state(w);
  }
}

void SlotScheduler::restore_state(sim::SnapshotReader& r) {
  r.expect_tag(kSchedulerTag, "SlotScheduler");
  if (r.read_u64() != geometries_.size())
    r.fail("scheduler snapshot geometry count does not match this config");
  if (r.read_u64() != clusters_.size())
    r.fail("scheduler snapshot cluster count does not match this config");
  for (Cluster& c : clusters_) {
    const i64 loaded = r.read_i64();
    if (loaded < -1 || loaded >= static_cast<i64>(geometries_.size()))
      r.fail("loaded_geometry out of range");
    const u64 nh = r.read_u64();
    if (nh != geometries_.size()) r.fail("geometry handle table size mismatch");
    std::vector<i64> handles(nh);
    for (i64& h : handles) h = r.read_i64();
    const u64 nv = r.read_u64();
    std::vector<Cluster::Variant> variants(nv);
    for (Cluster::Variant& v : variants) {
      v.geometry = r.read_u32();
      v.cores = r.read_u32();
      v.handle = r.read_i64();
      if (v.geometry >= geometries_.size())
        r.fail("variant geometry out of range");
    }
    c.machine->restore_state(r);
    for (const i64 h : handles) {
      if (h < -1 ||
          h >= static_cast<i64>(c.machine->num_resident_programs()))
        r.fail("geometry handle out of range after machine restore");
    }
    for (const Cluster::Variant& v : variants) {
      if (v.handle < -1 ||
          v.handle >= static_cast<i64>(c.machine->num_resident_programs()))
        r.fail("variant handle out of range after machine restore");
    }
    c.loaded_geometry = loaded;
    c.geometry_handles = std::move(handles);
    c.variants = std::move(variants);
  }
}

void SlotScheduler::calibrate_geometry_costs() {
  // One deterministic single-threaded batch per geometry on cluster 0: the
  // measured duration is the locality policy's load estimate. A batch's cost
  // is padding-independent (every core always runs problems_per_core
  // problems), so any well-formed operands measure the real duration. Side
  // benefit: cluster 0's resident-program cache is warm for every geometry
  // before the first slot.
  Cluster& c0 = clusters_[0];
  iss::Machine& machine = *c0.machine;
  for (u32 g = 0; g < geometries_.size(); ++g) {
    GeometryContext& geo = geometries_[g];
    const kern::MmseLayout& lay = geo.layout;
    c0.geometry_handles[g] = static_cast<i64>(machine.load_program(geo.program));
    c0.loaded_geometry = static_cast<i64>(g);

    Rng rng(0xCA11B ^ static_cast<u64>(g));
    phy::Channel ch(phy::ChannelType::kRayleigh, lay.nrx, lay.ntx);
    phy::QamModulator qam(4);
    const u32 capacity = lay.num_cores * lay.problems_per_core;
    const sim::Batch batch =
        sim::generate_batch(ch, qam, lay.ntx, capacity, 10.0, rng);
    for (u32 i = 0; i < capacity; ++i) {
      sim::stage_problem(machine.memory(), lay, i / lay.problems_per_core,
                         i % lay.problems_per_core, batch.problems[i]);
    }
    machine.reset_harts();
    const iss::RunResult run = machine.run();
    check(run.exited && !run.deadlock,
          "SlotScheduler: geometry calibration run did not complete");
    geo.batch_cycles = std::max<u64>(1, machine.estimated_cycles());
  }
}

std::vector<std::vector<u32>> SlotScheduler::assign_batches(
    const std::vector<BatchTask>& tasks, const SlotWorkload& slot,
    std::vector<BatchTrace>& trace, const std::vector<u8>& alive) const {
  std::vector<std::vector<u32>> queues(cfg_.num_clusters);
  const auto assign = [&](u32 task_index, u32 c) {
    trace[task_index].cluster = c;
    queues[c].push_back(task_index);
  };

  // Survivor set: dead clusters (fault plan, see run_slot) take no work;
  // their share spills to the survivors through the same policy logic.
  std::vector<u32> alive_ids;
  alive_ids.reserve(cfg_.num_clusters);
  for (u32 c = 0; c < cfg_.num_clusters; ++c)
    if (alive[c] != 0) alive_ids.push_back(c);
  const u32 n_alive = static_cast<u32>(alive_ids.size());
  check(n_alive >= 1, "assign_batches: no alive cluster to assign to");

  if (cfg_.policy == AssignPolicy::kRoundRobin) {
    for (u32 i = 0; i < tasks.size(); ++i) assign(i, alive_ids[i % n_alive]);
    return queues;
  }

  // kLocality. Everything below runs serially on the calling thread and
  // depends only on the workload, the calibrated per-geometry costs, and the
  // clusters' resident geometries - so the assignment (and with it all cycle
  // accounting) is deterministic for every host_threads value.
  u32 symbols = 0;
  for (const BatchTask& t : tasks)
    symbols = std::max(symbols, slot.allocations[t.allocation].symbol + 1);
  std::vector<std::vector<u32>> by_symbol(symbols);
  for (u32 i = 0; i < tasks.size(); ++i)
    by_symbol[slot.allocations[tasks[i].allocation].symbol].push_back(i);

  // Residency prediction mirrors execution exactly: each cluster consumes
  // its queue in the order built here, so the geometry sequence per cluster
  // (and hence every reload) is known at assignment time. `incoming[c]` is
  // cluster c's resident geometry at the start of the symbol being placed.
  std::vector<i64> incoming(cfg_.num_clusters);
  for (u32 c = 0; c < cfg_.num_clusters; ++c)
    incoming[c] = clusters_[c].loaded_geometry;

  struct Group {
    u32 geometry = 0;
    u64 cost = 0;              // batches * calibrated batch cycles
    std::vector<u32> members;  // task indices in batch order
  };
  struct Run {
    u32 geometry = 0;
    std::vector<u32> members;  // contiguous same-geometry run on one cluster
  };

  for (u32 s = 0; s < symbols; ++s) {
    // Group the symbol's batches by geometry, preserving batch order within
    // a group (two UE groups sharing one geometry merge here).
    std::vector<Group> groups;
    for (const u32 i : by_symbol[s]) {
      const u32 g = tasks[i].geometry;
      auto it = std::find_if(groups.begin(), groups.end(),
                             [g](const Group& grp) { return grp.geometry == g; });
      if (it == groups.end()) {
        groups.push_back(Group{g, 0, {}});
        it = groups.end() - 1;
      }
      it->members.push_back(i);
      it->cost += geometries_[g].batch_cycles;
    }
    // Largest group first; ties by geometry index (deterministic).
    std::stable_sort(groups.begin(), groups.end(),
                     [](const Group& a, const Group& b) {
                       if (a.cost != b.cost) return a.cost > b.cost;
                       return a.geometry < b.geometry;
                     });

    u64 total = 0;
    for (const Group& g : groups) total += g.cost;
    // Even per-symbol share: a cluster is filled up to the target before the
    // rest of a group spills to the next one, so the per-symbol critical
    // path stays within one batch of the balanced optimum.
    const u64 target = (total + n_alive - 1) / n_alive;
    std::vector<u64> load(cfg_.num_clusters, 0);
    std::vector<std::vector<Run>> runs(cfg_.num_clusters);

    const auto hosts = [&](u32 c, u32 g) -> Run* {
      for (Run& r : runs[c])
        if (r.geometry == g) return &r;
      return nullptr;
    };

    for (const Group& grp : groups) {
      const u64 batch_cost = geometries_[grp.geometry].batch_cycles;
      const i64 geo = static_cast<i64>(grp.geometry);
      // A group wider than the even share is pre-split into near-even
      // chunks (as many as it spans targets, capped by the cluster count
      // and the batch count); smaller groups stay whole. Placing whole
      // chunks instead of filling batch-by-batch keeps the per-symbol
      // makespan within one batch of the balanced optimum while touching
      // the fewest clusters per geometry.
      const u64 span = (grp.cost + target - 1) / std::max<u64>(1, target);
      const u32 n_chunks = static_cast<u32>(std::max<u64>(
          1, std::min<u64>(span, std::min<u64>(n_alive, grp.members.size()))));
      size_t next = 0;
      for (u32 k = 0; k < n_chunks; ++k) {
        const size_t take =
            (grp.members.size() - next + (n_chunks - k) - 1) / (n_chunks - k);
        // Choose the chunk's cluster by lexicographic (tier, load, id) -
        // chunks of one group repel each other (that is what the pre-split
        // is for - balance), so a cluster already hosting this geometry is
        // avoided until nothing else is left. Tiers, best first:
        //  0. enters the symbol resident in this geometry (zero reload: the
        //     matching run is rotated to the front below), not hosting it
        //     yet, room below the target;
        //  1. below the target, not hosting it;
        //  2. not hosting it;
        //  3. anything (chunks merge back as a last resort).
        const auto tier = [&](u32 c) -> u32 {
          if (hosts(c, grp.geometry) != nullptr) return 3;
          if (load[c] >= target) return 2;
          return incoming[c] == geo ? 0 : 1;
        };
        u32 best = alive_ids[0];
        u32 best_tier = tier(best);
        for (u32 ci = 1; ci < n_alive; ++ci) {
          const u32 c = alive_ids[ci];
          const u32 t = tier(c);
          if (t < best_tier || (t == best_tier && load[c] < load[best])) {
            best = c;
            best_tier = t;
          }
        }
        Run* run = hosts(best, grp.geometry);
        if (run == nullptr) {
          if (incoming[best] != geo)
            load[best] += geometries_[grp.geometry].reload_cycles;
          runs[best].push_back(Run{grp.geometry, {}});
          run = &runs[best].back();
        }
        for (size_t t = 0; t < take; ++t) {
          run->members.push_back(grp.members[next++]);
          load[best] += batch_cost;
        }
      }
    }

    // Emit each cluster's runs for this symbol, rotating the run that
    // matches the cluster's incoming residency to the front: its program is
    // already loaded, so starting with it saves one reload per symbol
    // without changing any result (within-symbol order is free). The last
    // run decides the residency the next symbol starts from.
    for (u32 c = 0; c < cfg_.num_clusters; ++c) {
      if (runs[c].empty()) continue;
      for (size_t r = 0; r < runs[c].size(); ++r) {
        if (static_cast<i64>(runs[c][r].geometry) == incoming[c]) {
          std::rotate(runs[c].begin(), runs[c].begin() + static_cast<ptrdiff_t>(r),
                      runs[c].begin() + static_cast<ptrdiff_t>(r) + 1);
          break;
        }
      }
      for (const Run& r : runs[c])
        for (const u32 i : r.members) assign(i, c);
      incoming[c] = static_cast<i64>(runs[c].back().geometry);
    }
  }
  return queues;
}

i64& SlotScheduler::variant_handle(Cluster& cluster, u32 g, u32 cores) const {
  for (Cluster::Variant& v : cluster.variants) {
    if (v.geometry == g && v.cores == cores) return v.handle;
  }
  cluster.variants.push_back(Cluster::Variant{g, cores, -1});
  return cluster.variants.back().handle;
}

rvasm::Program SlotScheduler::build_variant_program(u32 g, u32 cores) const {
  // The variant keeps the full layout (so every addressing constant, and
  // with it the program text and per-hart timing, is unchanged) and only
  // parks the cores beyond `cores` via the active_cores override.
  kern::MmseLayout lay = geometries_[g].layout;
  lay.active_cores = cores;
  lay.validate();
  return kern::build_mmse_program(lay);
}

void SlotScheduler::run_batch(Cluster& cluster, const BatchTask& task,
                              const SlotWorkload& slot, SlotResult& result,
                              u32 batch_index) {
  const GeometryContext& geo = geometries_[task.geometry];
  const kern::MmseLayout& lay = geo.layout;
  iss::Machine& machine = *cluster.machine;
  const Allocation& alloc = slot.allocations[task.allocation];
  const u32 capacity = lay.num_cores * lay.problems_per_core;

  // Geometry switch: charge the modeled DMA reload cost. The accounting is
  // keyed on geometry alone - the fast-forward variant swaps below are
  // host-side execution shortcuts of the same modeled program and never
  // count as reloads.
  u32 reloads = 0;
  u64 reload_cycles = 0;
  if (cluster.loaded_geometry != static_cast<i64>(task.geometry)) {
    cluster.loaded_geometry = static_cast<i64>(task.geometry);
    reloads = 1;
    reload_cycles = geo.reload_cycles;
  }

  // Fast-forward shrink: a partially filled batch runs a program variant
  // that parks the all-padding cores in crt0 instead of computing results
  // nobody reads. The active count is quantized to a power of two with a
  // floor of kMinFastForwardCores, which keeps the modeled cycle accounting
  // provably invariant (see the header note); the decision is a pure
  // function of task.count, hence deterministic everywhere. Disabled under
  // a fault plan: fault draws are parameterized by the full hart count.
  u32 run_cores = lay.num_cores;
  if (cfg_.fast_forward && !cfg_.fault.enabled && task.count < capacity) {
    const u32 need =
        (task.count + lay.problems_per_core - 1) / lay.problems_per_core;
    u32 cores = kMinFastForwardCores;
    while (cores < need) cores <<= 1;
    run_cores = std::min(cores, lay.num_cores);
  }
  const bool shrunk = run_cores < lay.num_cores;
  (shrunk ? ff_shrunk_batches_ : ff_full_batches_)
      .fetch_add(1, std::memory_order_relaxed);
  ff_cores_full_.fetch_add(lay.num_cores, std::memory_order_relaxed);
  ff_cores_run_.fetch_add(run_cores, std::memory_order_relaxed);

  // Activate the resident program for (geometry, run_cores): an image
  // restore - no retranslation; translation happens only on the first visit
  // of the pair to this cluster.
  i64& handle = shrunk ? variant_handle(cluster, task.geometry, run_cores)
                       : cluster.geometry_handles[task.geometry];
  if (handle < 0) {
    handle = static_cast<i64>(machine.load_program(
        shrunk ? build_variant_program(task.geometry, run_cores) : geo.program));
  } else if (machine.active_program() !=
             static_cast<iss::Machine::ProgramHandle>(handle)) {
    machine.select_program(static_cast<iss::Machine::ProgramHandle>(handle));
  }

  // Stage the batch; unused tail slots repeat real problems so every active
  // core computes well-defined data (results of padded slots are never
  // read). Problem addresses are independent of the layout's core count, so
  // the staged prefix is identical for the full and shrunk variants.
  const u32 staged = run_cores * lay.problems_per_core;
  for (u32 i = 0; i < staged; ++i) {
    const u32 p = task.offset + (i < task.count ? i : i % task.count);
    sim::stage_problem(machine.memory(), lay, i / lay.problems_per_core,
                       i % lay.problems_per_core, alloc.batch.problems[p]);
  }

  machine.reset_harts();

  // ---- deterministic fault hooks (sim/fault.h) ----
  // Keyed by (fault seed, site, tti, batch_index): the same faults land at
  // the same sites no matter which host thread services the cluster. When
  // the config carries no batch faults this whole block is one cold branch.
  sim::EccCounts ecc;
  if (cfg_.fault.any_batch_faults()) {
    machine.clear_hart_faults();
    const u32 num_harts = lay.num_cores;
    const sim::HartFaultDraw trap = sim::draw_hart_fault(
        cfg_.fault, slot.tti, batch_index, num_harts, /*hang=*/false);
    if (trap.fire) machine.inject_hart_fault(trap.hart, trap.at_instret, false);
    const sim::HartFaultDraw hang = sim::draw_hart_fault(
        cfg_.fault, slot.tti, batch_index, num_harts, /*hang=*/true);
    if (hang.fire) machine.inject_hart_fault(hang.hart, hang.at_instret, true);
    ecc = sim::apply_l1_faults(machine.memory(),
                               tera::AddrMap(cfg_.cluster).l1_words(),
                               cfg_.fault, slot.tti, batch_index);
  }

  // Armed hart faults are applied by the serial run() oracle only.
  const bool forced_serial = machine.hart_faults_armed();
  const iss::RunResult run = (cfg_.threads_per_cluster > 1 && !forced_serial)
                                 ? machine.run_threads(cfg_.threads_per_cluster)
                                 : machine.run();
  const bool completed = run.exited && !run.deadlock;
  if (!completed) {
    // Graceful degradation only under an explicit fault plan: a stuck or
    // trapped hart keeps peers from the exit barrier, the run reports a
    // deadlock, and the batch's payload bits all count as errors - the CRC
    // fails and the HARQ layer absorbs the loss. Anything else still throws.
    check(cfg_.fault.enabled, "SlotScheduler: batch run did not complete");
  }
  const u32 hart_faults = machine.hart_faults_applied();
  if (forced_serial) machine.clear_hart_faults();
  const u64 cycles = machine.estimated_cycles();

  // Read back detections and count errors against the transmitted bits. A
  // failed run has undefined result memory: skip the readback and charge
  // every bit of the batch as an error (detected_bits stay zeroed).
  const phy::QamModulator& qam = mods_[alloc.group];
  const u32 bits_per_problem = lay.ntx * qam.bits_per_symbol();
  std::vector<u8>& det = result.detected_bits[task.allocation];
  u64 errors = 0;
  if (completed) {
    for (u32 i = 0; i < task.count; ++i) {
      const auto xhat = sim::read_xhat(machine.memory(), lay,
                                       i / lay.problems_per_core,
                                       i % lay.problems_per_core);
      const auto rx_bits = qam.demap_sequence(xhat);
      const size_t base = static_cast<size_t>(task.offset + i) * bits_per_problem;
      for (u32 b = 0; b < bits_per_problem; ++b) {
        det[base + b] = rx_bits[b];
        errors += (rx_bits[b] != alloc.batch.tx_bits[base + b]) ? 1 : 0;
      }
    }
  } else {
    errors = static_cast<u64>(task.count) * bits_per_problem;
  }

  // trace.cluster was assigned when the schedule was built; errors are folded
  // into the result after all workers join (deterministic order).
  BatchTrace& trace = result.trace[batch_index];
  trace.allocation = task.allocation;
  trace.offset = task.offset;
  trace.count = task.count;
  trace.geometry = task.geometry;
  trace.reloads = reloads;
  trace.reload_cycles = reload_cycles;
  trace.cycles = cycles;
  trace.instructions = run.instructions;
  trace.hart_faults = hart_faults;
  trace.ecc_corrected = static_cast<u32>(ecc.corrected);
  trace.ecc_detected = static_cast<u32>(ecc.detected);
  trace.ecc_silent = static_cast<u32>(ecc.silent);
  trace.failed = !completed;
  batch_errors_scratch_[batch_index] = errors;
}

SlotResult SlotScheduler::run_slot(const SlotWorkload& slot) {
  SlotResult result;
  result.tti = slot.tti;
  result.problems = slot.num_problems();
  result.bits = slot.num_bits();
  result.cluster_busy_cycles.assign(cfg_.num_clusters, 0);
  result.cluster_batches.assign(cfg_.num_clusters, 0);
  result.cluster_reloads.assign(cfg_.num_clusters, 0);
  result.cluster_reload_cycles.assign(cfg_.num_clusters, 0);

  u32 symbols = 0;
  result.detected_bits.resize(slot.allocations.size());
  result.allocation_errors.assign(slot.allocations.size(), 0);
  for (size_t a = 0; a < slot.allocations.size(); ++a) {
    result.detected_bits[a].assign(slot.allocations[a].batch.tx_bits.size(), 0);
    symbols = std::max(symbols, slot.allocations[a].symbol + 1);
  }

  // ---- build the batch schedule: chop allocations into cluster batches ----
  std::vector<BatchTask> tasks;
  for (u32 a = 0; a < static_cast<u32>(slot.allocations.size()); ++a) {
    const Allocation& alloc = slot.allocations[a];
    check(alloc.group < groups_.size(),
          "run_slot: workload references a UE group this scheduler was not built for");
    const u32 geometry = group_geometry_[alloc.group];
    const kern::MmseLayout& lay = geometries_[geometry].layout;
    const u32 capacity = lay.num_cores * lay.problems_per_core;
    for (u32 off = 0; off < alloc.num_problems(); off += capacity) {
      BatchTask t;
      t.allocation = a;
      t.offset = off;
      t.count = std::min(capacity, alloc.num_problems() - off);
      t.geometry = geometry;
      tasks.push_back(t);
    }
  }

  // ---- cluster fault plan: which clusters are alive this TTI ----
  // A dead cluster (FaultConfig::cluster_fail_tti) takes no work; its share
  // is reassigned to the survivors by the same (policy-aware) assignment
  // logic, and the slot is flagged degraded so the deadline accounting can
  // carry the impact.
  std::vector<u8> alive(cfg_.num_clusters, u8{1});
  for (u32 c = 0; c < cfg_.num_clusters; ++c) {
    if (cfg_.fault.cluster_dead(slot.tti, c)) {
      alive[c] = 0;
      result.dead_clusters.push_back(c);
      result.degraded = true;
    }
  }
  check(result.dead_clusters.size() < cfg_.num_clusters,
        "run_slot: all clusters dead - nothing can run this slot");

  // Serial up-front batch->cluster assignment (round-robin or locality; see
  // the header comment): fills trace[i].cluster and each cluster's ordered
  // queue, fixing residency transitions before any worker runs.
  result.trace.resize(tasks.size());
  batch_errors_scratch_.assign(tasks.size(), 0);
  const std::vector<std::vector<u32>> queue =
      assign_batches(tasks, slot, result.trace, alive);

  // ---- work-stealing pool: idle threads claim any cluster with work ----
  const u32 n_workers =
      std::min<u32>(cfg_.host_threads, std::max<u32>(1, cfg_.num_clusters));
  std::vector<std::atomic<u32>> pos(cfg_.num_clusters);
  std::vector<std::atomic<bool>> busy(cfg_.num_clusters);
  for (u32 c = 0; c < cfg_.num_clusters; ++c) {
    pos[c].store(0, std::memory_order_relaxed);
    busy[c].store(false, std::memory_order_relaxed);
  }

  // Progress signalling: a worker that finds nothing claimable sleeps on
  // the condition variable and is woken whenever a peer finishes a batch
  // (or aborts). The epoch counter closes the classic lost-wakeup window: a
  // worker re-checks the queues only if nothing progressed since its scan.
  std::atomic<bool> abort{false};
  std::mutex progress_mutex;
  std::condition_variable progress_cv;
  u64 progress_epoch = 0;  // guarded by progress_mutex
  const auto publish_progress = [&] {
    {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      ++progress_epoch;
    }
    progress_cv.notify_all();
  };

  const auto worker = [&](u32 home) {
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      u64 seen_epoch;
      {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        seen_epoch = progress_epoch;
      }
      bool all_done = true;
      bool did_work = false;
      for (u32 k = 0; k < cfg_.num_clusters; ++k) {
        const u32 c = (home + k) % cfg_.num_clusters;
        if (pos[c].load(std::memory_order_acquire) >= queue[c].size()) continue;
        all_done = false;
        bool expected = false;
        if (!busy[c].compare_exchange_strong(expected, true,
                                             std::memory_order_acquire))
          continue;
        const u32 qi = pos[c].load(std::memory_order_relaxed);
        bool ran = false;
        if (qi < queue[c].size()) {
          const u32 batch_index = queue[c][qi];
          run_batch(clusters_[c], tasks[batch_index], slot, result, batch_index);
          pos[c].store(qi + 1, std::memory_order_release);
          ran = true;
          did_work = true;
        }
        busy[c].store(false, std::memory_order_release);
        if (ran) publish_progress();
      }
      if (all_done) return;
      if (!did_work) {
        // Nothing claimable right now: a peer owns every pending cluster.
        // Wait for it to publish progress instead of burning host CPU in a
        // polling sleep (single-batch-tail slots used to spin here).
        std::unique_lock<std::mutex> lock(progress_mutex);
        progress_cv.wait(lock, [&] {
          return progress_epoch != seen_epoch ||
                 abort.load(std::memory_order_relaxed);
        });
      }
    }
  };

  if (n_workers == 1) {
    worker(0);
  } else {
    // A SimError from run_batch must not escape a worker thread (that would
    // std::terminate); stash the first one and rethrow after the join.
    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto guarded = [&](u32 home) {
      try {
        worker(home);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_release);
        publish_progress();  // release any peers waiting on the cv
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(n_workers);
    for (u32 t = 0; t < n_workers; ++t) threads.emplace_back(guarded, t);
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // ---- deterministic reduction over the trace (batch order) ----
  // Busy and critical-path accounting charge each batch its detection cycles
  // PLUS the modeled reload cycles of the program switch it forced, so the
  // reload overhead a policy pays is visible in latency and utilization.
  std::vector<std::vector<u64>> symbol_cycles(cfg_.num_clusters,
                                              std::vector<u64>(symbols, 0));
  for (u32 i = 0; i < result.trace.size(); ++i) {
    const BatchTrace& t = result.trace[i];
    const u64 busy_cycles = t.cycles + t.reload_cycles;
    result.errors += batch_errors_scratch_[i];
    result.allocation_errors[t.allocation] += batch_errors_scratch_[i];
    result.cluster_busy_cycles[t.cluster] += busy_cycles;
    result.cluster_batches[t.cluster] += 1;
    result.cluster_reloads[t.cluster] += t.reloads;
    result.cluster_reload_cycles[t.cluster] += t.reload_cycles;
    result.total_reloads += t.reloads;
    result.total_reload_cycles += t.reload_cycles;
    result.total_instructions += t.instructions;
    result.hart_faults += t.hart_faults;
    result.ecc_corrected += t.ecc_corrected;
    result.ecc_detected += t.ecc_detected;
    result.ecc_silent += t.ecc_silent;
    if (t.failed) {
      result.failed_batches += 1;
      result.degraded = true;
    }
    symbol_cycles[t.cluster][slot.allocations[t.allocation].symbol] += busy_cycles;
  }
  result.symbol_cycles.assign(symbols, 0);
  for (u32 s = 0; s < symbols; ++s) {
    for (u32 c = 0; c < cfg_.num_clusters; ++c) {
      result.symbol_cycles[s] = std::max(result.symbol_cycles[s], symbol_cycles[c][s]);
    }
  }
  // Slot critical path: OFDM symbols are data-serialized (symbol s+1's
  // samples arrive after symbol s), so the slot latency is the sum over
  // symbols of the per-symbol critical path - NOT the max of per-cluster
  // totals, which under-reports latency whenever symbol work is imbalanced
  // across clusters (the per-symbol maxima can sit on different clusters).
  // This keeps slot_cycles == sum(symbol_cycles) by construction, so the
  // slot and symbol reports in deadline.h stay consistent.
  result.slot_cycles = 0;
  for (const u64 cycles : result.symbol_cycles) result.slot_cycles += cycles;
  return result;
}

}  // namespace tsim::ran
