#include "ran/scheduler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"

namespace tsim::ran {

void ClusterPoolConfig::validate() const {
  check(num_clusters >= 1, "ClusterPoolConfig: need at least one cluster");
  check(host_threads >= 1, "ClusterPoolConfig: need at least one host thread");
  check(threads_per_cluster >= 1, "ClusterPoolConfig: threads_per_cluster >= 1");
  check(problems_per_core >= 1, "ClusterPoolConfig: problems_per_core >= 1");
  cluster.validate();
}

SlotScheduler::SlotScheduler(const ClusterPoolConfig& cfg, std::vector<UeGroup> groups)
    : cfg_(cfg), groups_(std::move(groups)) {
  cfg_.validate();
  check(!groups_.empty(), "SlotScheduler: need at least one UE group");

  mods_.reserve(groups_.size());
  group_geometry_.reserve(groups_.size());
  for (const auto& g : groups_) {
    mods_.emplace_back(g.qam_order);
    group_geometry_.push_back(geometry_for(g.ntx, g.nrx));
  }

  // All geometries share one hart count so a cluster can switch geometry by
  // reloading its program without re-sizing the machine: the common count is
  // the smallest per-geometry L1 fit (optionally capped by batch_cores).
  u32 common_cores = cfg_.cluster.num_cores();
  if (cfg_.batch_cores != 0) common_cores = std::min(common_cores, cfg_.batch_cores);
  for (const auto& geo : geometries_) {
    const u32 fit = kern::MmseLayout::max_parallel_cores(cfg_.cluster, geo.ntx,
                                                         geo.nrx, cfg_.prec);
    common_cores =
        std::min(common_cores, std::max(1u, fit / cfg_.problems_per_core));
  }
  for (auto& geo : geometries_) {
    geo.layout.num_cores = common_cores;
    geo.layout.validate();
    geo.program = kern::build_mmse_program(geo.layout);
  }

  clusters_.resize(cfg_.num_clusters);
  for (auto& c : clusters_) {
    c.machine = std::make_unique<iss::Machine>(cfg_.cluster, iss::TimingConfig{},
                                               common_cores);
  }
}

u32 SlotScheduler::geometry_for(u32 ntx, u32 nrx) {
  for (u32 i = 0; i < geometries_.size(); ++i) {
    if (geometries_[i].ntx == ntx && geometries_[i].nrx == nrx) return i;
  }
  GeometryContext geo;
  geo.ntx = ntx;
  geo.nrx = nrx;
  geo.layout.ntx = ntx;
  geo.layout.nrx = nrx;
  geo.layout.prec = cfg_.prec;
  geo.layout.problems_per_core = cfg_.problems_per_core;
  geo.layout.cluster = cfg_.cluster;
  geometries_.push_back(std::move(geo));  // num_cores/program set by constructor
  return static_cast<u32>(geometries_.size() - 1);
}

const kern::MmseLayout& SlotScheduler::layout_for_group(u32 g) const {
  check(g < groups_.size(), "layout_for_group: group out of range");
  return geometries_[group_geometry_[g]].layout;
}

void SlotScheduler::run_batch(Cluster& cluster, const BatchTask& task,
                              const SlotWorkload& slot, SlotResult& result,
                              u32 batch_index) {
  const GeometryContext& geo = geometries_[task.geometry];
  const kern::MmseLayout& lay = geo.layout;
  iss::Machine& machine = *cluster.machine;
  const Allocation& alloc = slot.allocations[task.allocation];
  const u32 capacity = lay.num_cores * lay.problems_per_core;

  if (cluster.loaded_geometry != static_cast<i64>(task.geometry)) {
    machine.load_program(geo.program);
    cluster.loaded_geometry = static_cast<i64>(task.geometry);
  }

  // Stage the batch; unused tail slots repeat real problems so every core
  // computes well-defined data (results of padded slots are never read).
  for (u32 i = 0; i < capacity; ++i) {
    const u32 p = task.offset + (i < task.count ? i : i % task.count);
    sim::stage_problem(machine.memory(), lay, i / lay.problems_per_core,
                       i % lay.problems_per_core, alloc.batch.problems[p]);
  }

  machine.reset_harts();
  const iss::RunResult run = (cfg_.threads_per_cluster > 1)
                                 ? machine.run_threads(cfg_.threads_per_cluster)
                                 : machine.run();
  check(run.exited && !run.deadlock, "SlotScheduler: batch run did not complete");
  const u64 cycles = machine.estimated_cycles();

  // Read back detections and count errors against the transmitted bits.
  const phy::QamModulator& qam = mods_[alloc.group];
  const u32 bits_per_problem = lay.ntx * qam.bits_per_symbol();
  std::vector<u8>& det = result.detected_bits[task.allocation];
  u64 errors = 0;
  for (u32 i = 0; i < task.count; ++i) {
    const auto xhat = sim::read_xhat(machine.memory(), lay,
                                     i / lay.problems_per_core,
                                     i % lay.problems_per_core);
    const auto rx_bits = qam.demap_sequence(xhat);
    const size_t base = static_cast<size_t>(task.offset + i) * bits_per_problem;
    for (u32 b = 0; b < bits_per_problem; ++b) {
      det[base + b] = rx_bits[b];
      errors += (rx_bits[b] != alloc.batch.tx_bits[base + b]) ? 1 : 0;
    }
  }

  // trace.cluster was assigned when the schedule was built; errors are folded
  // into the result after all workers join (deterministic order).
  BatchTrace& trace = result.trace[batch_index];
  trace.allocation = task.allocation;
  trace.offset = task.offset;
  trace.count = task.count;
  trace.cycles = cycles;
  batch_errors_scratch_[batch_index] = errors;
}

SlotResult SlotScheduler::run_slot(const SlotWorkload& slot) {
  SlotResult result;
  result.tti = slot.tti;
  result.problems = slot.num_problems();
  result.bits = slot.num_bits();
  result.cluster_busy_cycles.assign(cfg_.num_clusters, 0);
  result.cluster_batches.assign(cfg_.num_clusters, 0);

  u32 symbols = 0;
  result.detected_bits.resize(slot.allocations.size());
  for (size_t a = 0; a < slot.allocations.size(); ++a) {
    result.detected_bits[a].assign(slot.allocations[a].batch.tx_bits.size(), 0);
    symbols = std::max(symbols, slot.allocations[a].symbol + 1);
  }

  // ---- build the batch schedule: chop allocations into cluster batches ----
  std::vector<BatchTask> tasks;
  for (u32 a = 0; a < static_cast<u32>(slot.allocations.size()); ++a) {
    const Allocation& alloc = slot.allocations[a];
    check(alloc.group < groups_.size(),
          "run_slot: workload references a UE group this scheduler was not built for");
    const u32 geometry = group_geometry_[alloc.group];
    const kern::MmseLayout& lay = geometries_[geometry].layout;
    const u32 capacity = lay.num_cores * lay.problems_per_core;
    for (u32 off = 0; off < alloc.num_problems(); off += capacity) {
      BatchTask t;
      t.allocation = a;
      t.offset = off;
      t.count = std::min(capacity, alloc.num_problems() - off);
      t.geometry = geometry;
      tasks.push_back(t);
    }
  }

  // Static round-robin assignment: batch i runs on cluster i % num_clusters.
  result.trace.resize(tasks.size());
  batch_errors_scratch_.assign(tasks.size(), 0);
  std::vector<std::vector<u32>> queue(cfg_.num_clusters);
  for (u32 i = 0; i < tasks.size(); ++i) {
    const u32 c = i % cfg_.num_clusters;
    result.trace[i].cluster = c;
    queue[c].push_back(i);
  }

  // ---- work-stealing pool: idle threads claim any cluster with work ----
  const u32 n_workers =
      std::min<u32>(cfg_.host_threads, std::max<u32>(1, cfg_.num_clusters));
  std::vector<std::atomic<u32>> pos(cfg_.num_clusters);
  std::vector<std::atomic<bool>> busy(cfg_.num_clusters);
  for (u32 c = 0; c < cfg_.num_clusters; ++c) {
    pos[c].store(0, std::memory_order_relaxed);
    busy[c].store(false, std::memory_order_relaxed);
  }

  // Progress signalling: a worker that finds nothing claimable sleeps on
  // the condition variable and is woken whenever a peer finishes a batch
  // (or aborts). The epoch counter closes the classic lost-wakeup window: a
  // worker re-checks the queues only if nothing progressed since its scan.
  std::atomic<bool> abort{false};
  std::mutex progress_mutex;
  std::condition_variable progress_cv;
  u64 progress_epoch = 0;  // guarded by progress_mutex
  const auto publish_progress = [&] {
    {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      ++progress_epoch;
    }
    progress_cv.notify_all();
  };

  const auto worker = [&](u32 home) {
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      u64 seen_epoch;
      {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        seen_epoch = progress_epoch;
      }
      bool all_done = true;
      bool did_work = false;
      for (u32 k = 0; k < cfg_.num_clusters; ++k) {
        const u32 c = (home + k) % cfg_.num_clusters;
        if (pos[c].load(std::memory_order_acquire) >= queue[c].size()) continue;
        all_done = false;
        bool expected = false;
        if (!busy[c].compare_exchange_strong(expected, true,
                                             std::memory_order_acquire))
          continue;
        const u32 qi = pos[c].load(std::memory_order_relaxed);
        bool ran = false;
        if (qi < queue[c].size()) {
          const u32 batch_index = queue[c][qi];
          run_batch(clusters_[c], tasks[batch_index], slot, result, batch_index);
          pos[c].store(qi + 1, std::memory_order_release);
          ran = true;
          did_work = true;
        }
        busy[c].store(false, std::memory_order_release);
        if (ran) publish_progress();
      }
      if (all_done) return;
      if (!did_work) {
        // Nothing claimable right now: a peer owns every pending cluster.
        // Wait for it to publish progress instead of burning host CPU in a
        // polling sleep (single-batch-tail slots used to spin here).
        std::unique_lock<std::mutex> lock(progress_mutex);
        progress_cv.wait(lock, [&] {
          return progress_epoch != seen_epoch ||
                 abort.load(std::memory_order_relaxed);
        });
      }
    }
  };

  if (n_workers == 1) {
    worker(0);
  } else {
    // A SimError from run_batch must not escape a worker thread (that would
    // std::terminate); stash the first one and rethrow after the join.
    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto guarded = [&](u32 home) {
      try {
        worker(home);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_release);
        publish_progress();  // release any peers waiting on the cv
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(n_workers);
    for (u32 t = 0; t < n_workers; ++t) threads.emplace_back(guarded, t);
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // ---- deterministic reduction over the trace (batch order) ----
  std::vector<std::vector<u64>> symbol_cycles(cfg_.num_clusters,
                                              std::vector<u64>(symbols, 0));
  for (u32 i = 0; i < result.trace.size(); ++i) {
    const BatchTrace& t = result.trace[i];
    result.errors += batch_errors_scratch_[i];
    result.cluster_busy_cycles[t.cluster] += t.cycles;
    result.cluster_batches[t.cluster] += 1;
    symbol_cycles[t.cluster][slot.allocations[t.allocation].symbol] += t.cycles;
  }
  result.symbol_cycles.assign(symbols, 0);
  for (u32 s = 0; s < symbols; ++s) {
    for (u32 c = 0; c < cfg_.num_clusters; ++c) {
      result.symbol_cycles[s] = std::max(result.symbol_cycles[s], symbol_cycles[c][s]);
    }
  }
  // Slot critical path: OFDM symbols are data-serialized (symbol s+1's
  // samples arrive after symbol s), so the slot latency is the sum over
  // symbols of the per-symbol critical path - NOT the max of per-cluster
  // totals, which under-reports latency whenever symbol work is imbalanced
  // across clusters (the per-symbol maxima can sit on different clusters).
  // This keeps slot_cycles == sum(symbol_cycles) by construction, so the
  // slot and symbol reports in deadline.h stay consistent.
  result.slot_cycles = 0;
  for (const u64 cycles : result.symbol_cycles) result.slot_cycles += cycles;
  return result;
}

}  // namespace tsim::ran
