// Multi-cluster slot scheduler: packs a SlotWorkload's subcarrier problems
// into cluster-sized batches and dispatches them to a pool of emulated
// TeraPool clusters (iss::Machine instances) over a work-stealing host
// thread pool.
//
// Batch-to-cluster assignment is static round-robin in batch order, so the
// per-cluster cycle accounting (and hence latency/utilization reports) is
// deterministic and independent of how many host threads drive the pool;
// work stealing only decides *which host thread* services a cluster next.
// Within one batch run, Machine::run_threads(threads_per_cluster) may shard
// the cluster's harts over further host threads: functional results stay
// bit-identical to run(), cycle estimates agree up to the barrier-wake
// jitter (see machine.h).
//
// Heterogeneous UE groups are supported by caching one generated MMSE
// program per distinct (ntx, nrx) geometry; a cluster reloads its program
// only when consecutive batches switch geometry.
#pragma once

#include <memory>
#include <vector>

#include "iss/machine.h"
#include "kernels/layout.h"
#include "kernels/mmse_program.h"
#include "phy/qam.h"
#include "ran/traffic.h"
#include "rvasm/program.h"

namespace tsim::ran {

struct ClusterPoolConfig {
  u32 num_clusters = 2;        // emulated DUT clusters processing in parallel
  u32 host_threads = 2;        // host pool threads driving the clusters
  u32 threads_per_cluster = 1; // Machine::run_threads shards within one batch
  tera::TeraPoolConfig cluster = tera::TeraPoolConfig::tiny();
  kern::Precision prec = kern::Precision::k16CDotp;
  u32 problems_per_core = 4;
  u32 batch_cores = 0;         // 0 = as many cores as fit in L1

  void validate() const;
};

/// One batch execution record, in deterministic batch order.
struct BatchTrace {
  u32 cluster = 0;     // cluster that ran the batch
  u32 allocation = 0;  // index into SlotWorkload::allocations
  u32 offset = 0;      // first problem of the allocation in this batch
  u32 count = 0;       // problems detected (padding excluded)
  u64 cycles = 0;      // estimated DUT cycles of this run
};

/// Everything the scheduler measured and detected for one TTI.
struct SlotResult {
  u64 tti = 0;
  u64 problems = 0;
  u64 bits = 0;    // payload bits carried by the slot
  u64 errors = 0;  // hard-decision bit errors vs the transmitted bits

  /// Hard-decision detected bits, per allocation (same shape as tx_bits).
  std::vector<std::vector<u8>> detected_bits;

  std::vector<u64> cluster_busy_cycles;  // per cluster
  std::vector<u32> cluster_batches;      // batches run per cluster
  std::vector<u64> symbol_cycles;        // per-symbol critical path (max/cluster)
  /// Slot critical path. Symbols are data-serialized, so this is the sum of
  /// the per-symbol critical paths (== sum(symbol_cycles)); with imbalanced
  /// symbol work it can exceed every cluster's busy total.
  u64 slot_cycles = 0;
  std::vector<BatchTrace> trace;

  double ber() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors) / static_cast<double>(bits);
  }
};

class SlotScheduler {
 public:
  SlotScheduler(const ClusterPoolConfig& cfg, std::vector<UeGroup> groups);

  /// Processes one slot's workload on the cluster pool and returns detections
  /// plus deterministic per-cluster/per-symbol cycle accounting.
  SlotResult run_slot(const SlotWorkload& slot);

  const ClusterPoolConfig& config() const { return cfg_; }
  /// The batch layout used for UE group `g`'s geometry.
  const kern::MmseLayout& layout_for_group(u32 g) const;

 private:
  struct GeometryContext {
    u32 ntx = 0;
    u32 nrx = 0;
    kern::MmseLayout layout;
    rvasm::Program program;
  };
  struct Cluster {
    std::unique_ptr<iss::Machine> machine;
    i64 loaded_geometry = -1;  // index into geometries_, -1 = none
  };
  struct BatchTask {
    u32 allocation = 0;
    u32 offset = 0;
    u32 count = 0;
    u32 geometry = 0;
  };

  u32 geometry_for(u32 ntx, u32 nrx);  // builds layout+program on first use
  void run_batch(Cluster& cluster, const BatchTask& task, const SlotWorkload& slot,
                 SlotResult& result, u32 batch_index);

  ClusterPoolConfig cfg_;
  std::vector<UeGroup> groups_;
  std::vector<phy::QamModulator> mods_;    // one per group
  std::vector<u32> group_geometry_;        // group index -> geometry index
  std::vector<GeometryContext> geometries_;
  std::vector<Cluster> clusters_;
  std::vector<u64> batch_errors_scratch_;  // per-batch error counts, one run_slot
};

}  // namespace tsim::ran
