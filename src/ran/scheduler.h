// Multi-cluster slot scheduler: packs a SlotWorkload's subcarrier problems
// into cluster-sized batches and dispatches them to a pool of emulated
// TeraPool clusters (iss::Machine instances) over a work-stealing host
// thread pool.
//
// Batch-to-cluster assignment
// ---------------------------
// Two policies, selected by ClusterPoolConfig::policy:
//
//  - kRoundRobin: batch i runs on cluster i % num_clusters, in batch order.
//    The legacy policy; geometry-oblivious, so consecutive batches on a
//    cluster ping-pong between UE geometries and pay a program reload on
//    nearly every switch.
//  - kLocality (default): a geometry-packed, residency-aware assignment.
//    Per OFDM symbol, batches are grouped by geometry; groups are placed
//    largest-first onto clusters, preferring the cluster whose resident
//    program already matches, filling a cluster up to an even per-symbol
//    load share (calibrated batch cycles + modeled reload cycles) before
//    spilling the rest of the group to the next cluster, ties broken by
//    batch index then cluster id. Within each symbol a cluster's runs are
//    rotated so the run matching its incoming resident program goes first
//    (within-symbol order is free - symbols serialize, batches within one
//    don't). Same-geometry batches therefore land consecutively on the same
//    cluster and a cluster tends to keep its geometry from one symbol (and
//    one slot) to the next.
//
// Determinism: both assignments are computed *serially, up front*, from the
// workload, the per-geometry calibration (itself a deterministic single-
// threaded run; replaced by unit costs when only one cluster or one
// geometry exists, where measured costs cannot change an assignment), and
// the clusters' resident programs - never from host timing. The work-stealing pool only decides *which host thread* services a
// cluster next; each cluster consumes its own queue in the precomputed
// order, so residency transitions, reload counts, and per-cluster cycle
// accounting (hence latency/utilization reports) are identical for every
// host_threads value. Within one batch run,
// Machine::run_threads(threads_per_cluster) may shard the cluster's harts
// over further host threads: functional results stay bit-identical to
// run(), cycle estimates agree up to the barrier-wake jitter (see
// machine.h).
//
// Program reloads are explicit in the accounting: every geometry switch on a
// cluster is counted in BatchTrace::reloads and charged
// BatchTrace::reload_cycles (the modeled DMA cost of pulling the image into
// L2, see program_reload_cycles), which flow into the per-cluster busy
// cycles and the per-symbol critical path. Host-side, switches are nearly
// free: each iss::Machine keeps every geometry's program resident
// (translation cache + image, see machine.h), so a switch is an image
// restore, not a retranslation.
//
// Fast-forward (ClusterPoolConfig::fast_forward)
// ----------------------------------------------
// A partially filled batch normally pads its unused problem slots with
// duplicates and runs the FULL layout width - every core retires the whole
// kernel even when its results are never read. With fast_forward enabled,
// run_batch instead executes a shrunk program variant that parks the
// all-padding cores in wfi from crt0 (the same parking path shrunk
// batch_cores configs use), quantized to a power-of-two core count with a
// floor of kMinFastForwardCores. The variant is built with the FULL
// layout's addressing constants and only overrides the park threshold and
// barrier count (MmseLayout::active_cores), so its program text is
// word-for-word the full program's apart from those two equal-length
// immediates - a num_cores-derived constant crossing an li-expansion
// boundary can therefore never skew the variant's timing. The kernel
// streams are data-independent (compile-time-bounded loops, static-latency
// FP/memory timing), so every active core reaches the fork-join barrier at
// the same modeled cycle regardless of the core count, the last active
// arrival replays the full run's waker tail exactly, and parked harts
// resume below it; the machine's estimated_cycles - and with it every
// report field - is invariant under the shrink. Only host work changes: the variant swap is
// an image restore charged to NO reload accounting (reloads stay keyed on
// geometry transitions - the modeled DUT always runs the full-width
// program), and BatchTrace::instructions reports the instructions the host
// actually retired, which IS smaller under the shrink. That counter feeds
// no report or JSON surface (CellReport/AggregateReport are cycle- and
// count-based); the bit-exactness contract - fast-forwarded runs produce
// byte-identical reports to cycle-by-cycle runs - is pinned by
// tests/fastforward_test.cpp and the CI fastforward-smoke step. The shrink
// decision is a pure function of task.count, so it is deterministic across
// shards, host threads, and policies; it is disabled under a fault plan
// (fault draws are parameterized by the full hart count).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "iss/machine.h"
#include "kernels/layout.h"
#include "kernels/mmse_program.h"
#include "phy/qam.h"
#include "ran/traffic.h"
#include "rvasm/program.h"
#include "sim/fault.h"
#include "tera/dma.h"

namespace tsim::ran {

/// Batch-to-cluster assignment policy (see the header comment).
enum class AssignPolicy : u8 {
  kRoundRobin = 0,  // batch i -> cluster i % num_clusters
  kLocality,        // geometry-packed, residency-aware (default)
};

inline const char* policy_name(AssignPolicy p) {
  return p == AssignPolicy::kRoundRobin ? "roundrobin" : "locality";
}

/// Parses "roundrobin" / "locality"; throws SimError on anything else.
AssignPolicy parse_policy(const std::string& name);

/// Modeled DUT cycles to DMA a program image of `image_bytes` into L2
/// (descriptor setup + bus beats; same first-order model as tera::Dma).
inline u64 program_reload_cycles(u32 image_bytes, const tera::DmaConfig& dma = {}) {
  return dma.setup_cycles +
         (image_bytes + dma.bus_bytes_per_cycle - 1) / dma.bus_bytes_per_cycle;
}

struct ClusterPoolConfig {
  u32 num_clusters = 2;        // emulated DUT clusters processing in parallel
  u32 host_threads = 2;        // host pool threads driving the clusters
  u32 threads_per_cluster = 1; // Machine::run_threads shards within one batch
  tera::TeraPoolConfig cluster = tera::TeraPoolConfig::tiny();
  kern::Precision prec = kern::Precision::k16CDotp;
  u32 problems_per_core = 4;
  u32 batch_cores = 0;         // 0 = as many cores as fit in L1
  AssignPolicy policy = AssignPolicy::kLocality;
  /// Event-driven fast-forward: partially filled batches run a shrunk
  /// program variant that parks the all-padding cores instead of computing
  /// results nobody reads (see the header note). Bit-exact: every report
  /// field is byte-identical to the cycle-by-cycle run. Off by default;
  /// ignored while a fault plan is enabled.
  bool fast_forward = false;
  /// Deterministic fault plan (sim/fault.h). Disabled by default: every
  /// fault hook below then costs one cold branch per batch run.
  sim::FaultConfig fault;

  void validate() const;
};

/// One batch execution record, in deterministic batch order.
struct BatchTrace {
  u32 cluster = 0;        // cluster that ran the batch
  u32 allocation = 0;     // index into SlotWorkload::allocations
  u32 offset = 0;         // first problem of the allocation in this batch
  u32 count = 0;          // problems detected (padding excluded)
  u32 geometry = 0;       // geometry index the batch ran under
  u32 reloads = 0;        // program switches this batch forced (0 or 1)
  u64 reload_cycles = 0;  // modeled DMA cycles of that switch
  u64 cycles = 0;         // estimated DUT cycles of the detection run
  u64 instructions = 0;   // DUT instructions retired by the detection run
  // Fault-injection outcome of the batch run (all zero on clean runs).
  u32 hart_faults = 0;    // injected ISS faults that actually fired
  u32 ecc_corrected = 0;  // SECDED single-bit L1 upsets scrubbed
  u32 ecc_detected = 0;   // double-bit L1 upsets detected (word corrupted)
  u32 ecc_silent = 0;     // ECC-off L1 upsets (silent corruption)
  bool failed = false;    // run did not complete; batch bits count as errors
};

/// Everything the scheduler measured and detected for one TTI.
struct SlotResult {
  u64 tti = 0;
  u64 problems = 0;
  u64 bits = 0;    // payload bits carried by the slot
  u64 errors = 0;  // hard-decision bit errors vs the transmitted bits

  /// Hard-decision detected bits, per allocation (same shape as tx_bits).
  std::vector<std::vector<u8>> detected_bits;

  /// Bit errors per allocation (sum over the allocation's batches; indexed
  /// like SlotWorkload::allocations, sums to `errors`). This is the per-PDU
  /// outcome the MAC layer's FAPI CRC indication is built from: an
  /// allocation "passes CRC" iff its entry here is zero (see src/mac/).
  std::vector<u64> allocation_errors;

  /// Busy cycles include the reload cycles charged to the cluster.
  std::vector<u64> cluster_busy_cycles;    // per cluster
  std::vector<u32> cluster_batches;        // batches run per cluster
  std::vector<u32> cluster_reloads;        // program switches per cluster
  std::vector<u64> cluster_reload_cycles;  // modeled reload cycles per cluster
  u64 total_reloads = 0;                   // sum over clusters
  u64 total_reload_cycles = 0;             // sum over clusters
  u64 total_instructions = 0;              // DUT instructions retired, all batches
  std::vector<u64> symbol_cycles;          // per-symbol critical path (max/cluster)
  /// Slot critical path. Symbols are data-serialized, so this is the sum of
  /// the per-symbol critical paths (== sum(symbol_cycles)); with imbalanced
  /// symbol work it can exceed every cluster's busy total.
  u64 slot_cycles = 0;
  std::vector<BatchTrace> trace;

  // ---- graceful degradation (deterministic fault injection; sim/fault.h) ----
  /// True when the slot ran around trouble: a dead cluster's batches were
  /// reassigned to survivors, or a batch run failed and its bits were
  /// counted as errors for the CRC/HARQ layer to absorb.
  bool degraded = false;
  std::vector<u32> dead_clusters;  // clusters dead this TTI (fault plan)
  u64 failed_batches = 0;          // batch runs that did not complete
  u64 hart_faults = 0;             // injected ISS faults applied, all batches
  u64 ecc_corrected = 0;           // SECDED single-bit upsets scrubbed
  u64 ecc_detected = 0;            // double-bit upsets detected (corrupting)
  u64 ecc_silent = 0;              // ECC-off upsets (silent corruption)

  double ber() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors) / static_cast<double>(bits);
  }
};

class SlotScheduler {
 public:
  /// Construction-time warm state exported by a sibling scheduler with the
  /// same machine/program-shaping config (warm_key): the built per-geometry
  /// programs and, when the sibling calibrated, the measured batch costs.
  /// Reusing it skips program assembly and the calibration warm-up runs -
  /// both deterministic pure functions of the shaping config - so a
  /// warm-constructed scheduler is bit-identical to a cold one
  /// (tests/fastforward_test.cpp pins this point-for-point).
  struct WarmState {
    u64 key = 0;                           // warm_key() of the source config
    std::vector<rvasm::Program> programs;  // per geometry, discovery order
    bool calibrated = false;               // batch_cycles hold measured costs
    std::vector<u64> batch_cycles;         // per geometry, when calibrated
  };

  /// Identity of the machine/program-shaping subset of (cfg, groups): the
  /// cluster geometry and latency map, precision, problems_per_core,
  /// batch_cores, and the UE-group geometry sequence. num_clusters, host
  /// threading, the policy, fast_forward and the fault plan are excluded -
  /// they shape neither the programs nor the calibration measurements, so
  /// warm state fans out across those axes (e.g. neighboring DSE points).
  static u64 warm_key(const ClusterPoolConfig& cfg,
                      const std::vector<UeGroup>& groups);

  SlotScheduler(const ClusterPoolConfig& cfg, std::vector<UeGroup> groups);
  /// Warm-started construction: `warm` must be null or carry the matching
  /// warm_key (checked). See WarmState.
  SlotScheduler(const ClusterPoolConfig& cfg, std::vector<UeGroup> groups,
                const WarmState* warm);

  /// Exports this scheduler's warm state for sibling constructions.
  WarmState export_warm_state() const;

  /// Processes one slot's workload on the cluster pool and returns detections
  /// plus deterministic per-cluster/per-symbol cycle accounting.
  SlotResult run_slot(const SlotWorkload& slot);

  const ClusterPoolConfig& config() const { return cfg_; }
  /// The batch layout used for UE group `g`'s geometry.
  const kern::MmseLayout& layout_for_group(u32 g) const;
  /// Placeholder batch cost used when the locality policy skips calibration
  /// (see the constructor comment): large enough that the chunk-count
  /// arithmetic sits in the same large-cost asymptote as real calibrated
  /// kernel cycles, so placement matches what calibrated uniform costs
  /// would produce.
  static constexpr u64 kUncalibratedBatchCost = u64{1} << 20;

  // ---- checkpoint/restore (sim/snapshot.h) ----
  /// Serializes the scheduler's cross-slot state: each cluster's machine
  /// (full iss::Machine state, resident programs included) plus its
  /// program-residency bookkeeping (loaded_geometry / geometry_handles),
  /// which the locality policy's assignment and the reload accounting read.
  /// Geometry contexts and calibration are NOT serialized - both are
  /// deterministic functions of the construction-time config.
  void save_state(sim::SnapshotWriter& w) const;
  /// Restores into a scheduler constructed with the same config and groups
  /// (cluster/geometry counts are checked). Throws sim::SnapshotError on a
  /// mismatch or corrupt payload.
  void restore_state(sim::SnapshotReader& r);

  /// Smallest core count a fast-forward shrunk variant runs: keeps every
  /// post-barrier hart class populated (hart 0's exit path, the sleepers,
  /// the last arrival's waker tail - see the header note) with margin, so
  /// the cycle accounting is provably invariant under the shrink.
  /// MmseLayout::active_cores additionally requires >= 2.
  static constexpr u32 kMinFastForwardCores = 4;

  /// Host-side fast-forward execution statistics, accumulated over every
  /// run_slot since construction. Never part of SlotResult or any report -
  /// purely observability for drivers and benches.
  struct FastForwardStats {
    u64 full_batches = 0;    // batches run at full layout width
    u64 shrunk_batches = 0;  // batches run on a shrunk variant
    u64 cores_full = 0;      // cores a full-width run would have used
    u64 cores_run = 0;       // cores actually executed
    /// Fraction of core-runs the shrink parked (0 with fast-forward off).
    double park_fraction() const {
      return cores_full == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(cores_run) /
                             static_cast<double>(cores_full);
    }
  };
  FastForwardStats fast_forward_stats() const;

  /// Calibrated single-batch cycle cost of group `g`'s geometry (measured
  /// once at construction; the locality policy's load estimate). The
  /// locality policy skips the calibration warm-up runs in the degenerate
  /// configs where relative costs cannot change an assignment (a single
  /// cluster, or a single geometry whose chunks are cost-uniform anyway)
  /// and substitutes kUncalibratedBatchCost. Zero for a round-robin
  /// scheduler, which never reads the costs.
  u64 batch_cycles_for_group(u32 g) const;

 private:
  struct GeometryContext {
    u32 ntx = 0;
    u32 nrx = 0;
    kern::MmseLayout layout;
    rvasm::Program program;
    u64 batch_cycles = 0;   // calibrated cycles of one (padded) batch
    u64 reload_cycles = 0;  // modeled DMA cycles to load the image
  };
  struct Cluster {
    std::unique_ptr<iss::Machine> machine;
    i64 loaded_geometry = -1;  // index into geometries_, -1 = none
    /// geometry index -> resident-program handle on this machine (-1 until
    /// the geometry first runs here and gets translated).
    std::vector<i64> geometry_handles;
    /// Fast-forward shrunk-variant residency on this machine: one entry per
    /// (geometry, active core count) pair that has run here. Variants are
    /// host-side execution shortcuts - they never appear in the reload or
    /// residency accounting above.
    struct Variant {
      u32 geometry = 0;
      u32 cores = 0;
      i64 handle = -1;
    };
    std::vector<Variant> variants;
  };
  struct BatchTask {
    u32 allocation = 0;
    u32 offset = 0;
    u32 count = 0;
    u32 geometry = 0;
  };

  u32 geometry_for(u32 ntx, u32 nrx);  // builds layout+program on first use
  /// Resident-program handle slot for geometry `g`'s shrunk variant at
  /// `cores` active cores on `cluster` (created on first use, handle -1).
  /// The caller holds the cluster's busy flag, so no locking is needed.
  i64& variant_handle(Cluster& cluster, u32 g, u32 cores) const;
  /// Builds the shrunk program variant of geometry `g` with `cores` active
  /// cores (all higher hartids park in crt0).
  rvasm::Program build_variant_program(u32 g, u32 cores) const;
  /// Adopts a sibling's calibrated costs and replicates calibration's
  /// cluster-0 residency side effects without the measurement runs.
  void adopt_warm_calibration(const WarmState& warm);
  /// Runs one deterministic batch per geometry on cluster 0 to measure its
  /// batch cycle cost (and warm cluster 0's resident-program cache).
  void calibrate_geometry_costs();
  /// Serial up-front batch->cluster assignment: fills trace[i].cluster and
  /// returns each cluster's ordered queue of batch indices. Only clusters
  /// with alive[c] != 0 receive work (degradation around dead clusters).
  std::vector<std::vector<u32>> assign_batches(const std::vector<BatchTask>& tasks,
                                               const SlotWorkload& slot,
                                               std::vector<BatchTrace>& trace,
                                               const std::vector<u8>& alive) const;
  void run_batch(Cluster& cluster, const BatchTask& task, const SlotWorkload& slot,
                 SlotResult& result, u32 batch_index);

  ClusterPoolConfig cfg_;
  std::vector<UeGroup> groups_;
  std::vector<phy::QamModulator> mods_;    // one per group
  std::vector<u32> group_geometry_;        // group index -> geometry index
  std::vector<GeometryContext> geometries_;
  std::vector<Cluster> clusters_;
  std::vector<u64> batch_errors_scratch_;  // per-batch error counts, one run_slot
  bool calibrated_ = false;                // real measured costs (not placeholder)
  // Fast-forward observability (host-side only; workers run concurrently).
  std::atomic<u64> ff_full_batches_{0};
  std::atomic<u64> ff_shrunk_batches_{0};
  std::atomic<u64> ff_cores_full_{0};
  std::atomic<u64> ff_cores_run_{0};
};

}  // namespace tsim::ran
