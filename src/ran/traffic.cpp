#include "ran/traffic.h"

#include <cmath>

#include "common/error.h"

namespace tsim::ran {

void TrafficConfig::validate() const {
  check(!groups.empty(), "TrafficConfig: need at least one UE group");
  check(carrier.num_subcarriers() > 0, "TrafficConfig: carrier has no subcarriers");
  check(carrier.symbols_per_slot > 0, "TrafficConfig: slot has no symbols");
  double total_weight = 0.0;
  for (const auto& g : groups) {
    check(g.ntx >= 2 && g.nrx >= g.ntx, "TrafficConfig: unsupported MIMO size");
    check(g.weight > 0.0, "TrafficConfig: group weights must be positive");
    total_weight += g.weight;
  }
  check(total_weight > 0.0, "TrafficConfig: zero total weight");
  check(offered_load >= 0.0 && offered_load <= 1.0,
        "TrafficConfig: offered_load must be in [0, 1]");
}

u64 SlotWorkload::num_problems() const {
  u64 n = 0;
  for (const auto& a : allocations) n += a.num_problems();
  return n;
}

u64 SlotWorkload::num_bits() const {
  u64 n = 0;
  for (const auto& a : allocations) n += a.batch.tx_bits.size();
  return n;
}

u32 poisson_sample(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 32.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double product = 1.0;
    u32 k = 0;
    do {
      product *= rng.uniform();
      ++k;
    } while (product > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double draw = mean + std::sqrt(mean) * rng.normal() + 0.5;
  return draw <= 0.0 ? 0u : static_cast<u32>(draw);
}

TrafficGenerator::TrafficGenerator(const TrafficConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  channels_.reserve(cfg_.groups.size());
  mods_.reserve(cfg_.groups.size());
  for (const auto& g : cfg_.groups) {
    channels_.emplace_back(g.channel, g.nrx, g.ntx);
    mods_.emplace_back(g.qam_order);
  }
}

std::vector<u32> TrafficGenerator::split_subcarriers(u32 occupied) const {
  double total_weight = 0.0;
  for (const auto& g : cfg_.groups) total_weight += g.weight;
  std::vector<u32> counts(cfg_.groups.size());
  u32 assigned = 0;
  for (size_t g = 0; g + 1 < cfg_.groups.size(); ++g) {
    counts[g] = static_cast<u32>(occupied * (cfg_.groups[g].weight / total_weight));
    assigned += counts[g];
  }
  counts.back() = occupied - assigned;  // remainder absorbs rounding
  return counts;
}

namespace {
// Stream domain tags for Rng::keyed: occupancy and payload generation draw
// from disjoint key spaces, so adding draws to one never shifts the other.
constexpr u64 kOccupancyStream = 0x0CC0;
constexpr u64 kAllocationStream = 0xA110C;
}  // namespace

SlotWorkload TrafficGenerator::slot(u64 tti) const {
  const u32 nsc = cfg_.carrier.num_subcarriers();
  SlotWorkload out;
  out.tti = tti;

  // Every sub-stream is keyed by identity - (seed, tti, symbol[, group]) -
  // rather than derived from sequential draws, so a symbol's occupancy draw
  // count can never shift an allocation's payload stream, and any TTI can be
  // generated in any order (or in any host process) with identical bits.
  for (u32 sym = 0; sym < cfg_.carrier.symbols_per_slot; ++sym) {
    u32 occupied = nsc;
    if (cfg_.arrival == ArrivalModel::kPoisson) {
      Rng sym_rng = Rng::keyed(cfg_.seed, {kOccupancyStream, tti, sym});
      occupied = std::min(nsc, poisson_sample(sym_rng, cfg_.offered_load * nsc));
    }
    const std::vector<u32> counts = split_subcarriers(occupied);
    u32 next_sc = 0;
    for (size_t g = 0; g < cfg_.groups.size(); ++g) {
      if (counts[g] == 0) continue;
      Rng alloc_rng = Rng::keyed(cfg_.seed, {kAllocationStream, tti, sym, g});
      Allocation a;
      a.group = static_cast<u32>(g);
      a.symbol = sym;
      a.first_subcarrier = next_sc;
      a.batch = sim::generate_batch(channels_[g], mods_[g], cfg_.groups[g].ntx,
                                    counts[g], cfg_.groups[g].snr_db, alloc_rng);
      next_sc += counts[g];
      out.allocations.push_back(std::move(a));
    }
  }
  return out;
}

SlotWorkload TrafficGenerator::next_slot() { return slot(next_tti_++); }

}  // namespace tsim::ran
