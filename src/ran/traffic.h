// Slot-level RAN traffic generation (paper Sec. II/V-A): expands a 5G NR
// carrier (phy::CarrierConfig) into per-TTI PUSCH detection workloads.
//
// A TTI (= one slot, 14 OFDM symbols for normal CP) is modelled as a grid of
// num_subcarriers() x symbols_per_slot subcarrier MIMO problems. Heterogeneous
// UE groups partition each symbol's subcarriers: every group brings its own
// MIMO order (ntx, nrx), QAM constellation, operating SNR and channel type,
// mirroring the mixed-service traffic of the TeraPool-SDR / many-core uplink
// papers (PAPERS.md). Two arrival models are supported:
//  - kFullBuffer: every data subcarrier of every symbol carries a problem
//    (the paper's worst-case "process a full TTI in < 1 ms" load), and
//  - kPoisson:    per-symbol occupancy is Poisson-distributed around a
//    configurable offered load, for latency/utilization studies below the
//    deadline cliff.
//
// Generation is deterministic AND order-independent: every sub-stream is
// keyed by identity via Rng::keyed - occupancy by (seed, tti, symbol),
// payloads by (seed, tti, symbol, group) - never by sequential draw order.
// The same TrafficConfig::seed therefore reproduces the same bits, channels
// and noise for any TTI whether slots are generated forward, shuffled, or
// split across host processes/shards (the property the mac:: farm's
// deterministic sharding is built on).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "phy/channel.h"
#include "phy/ofdm.h"
#include "phy/qam.h"
#include "sim/cosim.h"

namespace tsim::ran {

/// One class of co-scheduled users: all allocations of this group share the
/// same MIMO geometry, constellation and channel statistics.
struct UeGroup {
  std::string name = "ue";
  u32 ntx = 4;                // spatially multiplexed layers
  u32 nrx = 4;                // base-station antennas observing the group
  u32 qam_order = 16;         // 4 / 16 / 64 / 256
  double snr_db = 15.0;       // operating point of the group's link
  phy::ChannelType channel = phy::ChannelType::kRayleigh;
  double weight = 1.0;        // share of the carrier's subcarriers
};

/// A mixed-service UE population with three distinct MIMO geometries
/// ((4,4), (2,4), (2,2)) sharing the carrier 2:1:1. This is the canonical
/// geometry-ping-pong stressor for the slot scheduler: with fewer clusters
/// than geometries, a geometry-oblivious assignment reloads programs on
/// nearly every batch (see scheduler.h and bench_ran_throughput).
inline std::vector<UeGroup> mixed_geometry_groups() {
  return {
      UeGroup{"embb", 4, 4, 16, 15.0, phy::ChannelType::kRayleigh, 2.0},
      UeGroup{"urllc", 2, 4, 4, 10.0, phy::ChannelType::kAwgn, 1.0},
      UeGroup{"mmtc", 2, 2, 4, 8.0, phy::ChannelType::kRayleigh, 1.0},
  };
}

enum class ArrivalModel : u8 {
  kFullBuffer,  // all subcarriers occupied every symbol
  kPoisson,     // per-symbol occupancy ~ Poisson(offered_load * num_subcarriers)
};

struct TrafficConfig {
  phy::CarrierConfig carrier = phy::CarrierConfig::paper_50mhz();
  std::vector<UeGroup> groups = {UeGroup{}};
  ArrivalModel arrival = ArrivalModel::kFullBuffer;
  double offered_load = 1.0;  // Poisson: mean fraction of subcarriers occupied
  u64 seed = 0x7E11;

  void validate() const;
};

/// A contiguous run of subcarriers of one OFDM symbol assigned to one UE
/// group, with the generated transmissions (problems + ground-truth bits).
struct Allocation {
  u32 group = 0;             // index into TrafficConfig::groups
  u32 symbol = 0;            // OFDM symbol within the slot [0, symbols_per_slot)
  u32 first_subcarrier = 0;  // grid position of batch.problems[0]
  sim::Batch batch;          // one MimoProblem per subcarrier in the run
  u32 num_problems() const { return static_cast<u32>(batch.problems.size()); }
};

/// All detection work of one TTI.
struct SlotWorkload {
  u64 tti = 0;
  std::vector<Allocation> allocations;

  u64 num_problems() const;
  /// Ground-truth payload bits carried by the slot (sum over allocations).
  u64 num_bits() const;
};

/// Deterministic per-TTI workload source.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& cfg);

  /// Generates the workload of TTI `next_tti_` and advances the counter.
  SlotWorkload next_slot();
  /// Generates the workload of an arbitrary TTI (does not advance).
  SlotWorkload slot(u64 tti) const;

  const TrafficConfig& config() const { return cfg_; }

 private:
  /// Occupied subcarriers of one symbol, split into per-group counts.
  std::vector<u32> split_subcarriers(u32 occupied) const;

  TrafficConfig cfg_;
  std::vector<phy::Channel> channels_;      // one per group
  std::vector<phy::QamModulator> mods_;     // one per group
  u64 next_tti_ = 0;
};

/// Draws a Poisson(mean) variate from `rng` (Knuth below mean 32, normal
/// approximation above; deterministic for a given stream).
u32 poisson_sample(Rng& rng, double mean);

}  // namespace tsim::ran
