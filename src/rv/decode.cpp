#include "rv/decode.h"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

#include "rv/encoding.h"

namespace tsim::rv {
namespace {

/// Candidate instructions bucketed by the 7-bit major opcode, most-specific
/// (highest mask popcount) first so exact-match system instructions win over
/// field-wise patterns.
const std::array<std::vector<const InstrDef*>, 128>& buckets() {
  static const auto kBuckets = [] {
    std::array<std::vector<const InstrDef*>, 128> b{};
    for (const auto& d : isa_table()) {
      if (d.op == Op::kInvalid) continue;
      b[d.match & 0x7F].push_back(&d);
    }
    for (auto& v : b) {
      std::sort(v.begin(), v.end(), [](const InstrDef* a, const InstrDef* c) {
        return std::popcount(a->mask) > std::popcount(c->mask);
      });
    }
    return b;
  }();
  return kBuckets;
}

/// Extracts format-specific operands once the table entry is known.
Decoded extract(const InstrDef& def, u32 w) {
  Decoded d;
  d.op = def.op;
  switch (def.fmt) {
    case Fmt::kR:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      d.rs2 = get_rs2(w);
      break;
    case Fmt::kR2:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      break;
    case Fmt::kR4:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      d.rs2 = get_rs2(w);
      d.rs3 = get_rs3(w);
      break;
    case Fmt::kI:
    case Fmt::kILoad:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      d.imm = imm_i(w);
      break;
    case Fmt::kIShift:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      d.imm = static_cast<i32>(get_rs2(w));  // shamt lives in the rs2 field
      break;
    case Fmt::kS:
      d.rs1 = get_rs1(w);
      d.rs2 = get_rs2(w);
      d.imm = imm_s(w);
      break;
    case Fmt::kB:
      d.rs1 = get_rs1(w);
      d.rs2 = get_rs2(w);
      d.imm = imm_b(w);
      break;
    case Fmt::kU:
      d.rd = get_rd(w);
      d.imm = imm_u(w);
      break;
    case Fmt::kJ:
      d.rd = get_rd(w);
      d.imm = imm_j(w);
      break;
    case Fmt::kCsr:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      d.imm = static_cast<i32>(w >> 20);  // CSR number, zero-extended
      break;
    case Fmt::kCsrI:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);  // uimm5 in the rs1 field
      d.imm = static_cast<i32>(w >> 20);
      break;
    case Fmt::kAmo:
    case Fmt::kLrSc:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      d.rs2 = get_rs2(w);
      break;
    case Fmt::kNullary:
      break;
    case Fmt::kPLanes:
      d.rd = get_rd(w);
      d.rs1 = get_rs1(w);
      d.imm = static_cast<i32>(get_rs2(w));  // lane index in the rs2 field
      break;
  }
  return d;
}

}  // namespace

Decoded decode(u32 word) {
  for (const InstrDef* def : buckets()[word & 0x7F]) {
    if ((word & def->mask) == def->match) return extract(*def, word);
  }
  return Decoded{};
}

u32 encode(const Decoded& d) {
  const InstrDef& def = def_of(d.op);
  u32 w = def.match;
  switch (def.fmt) {
    case Fmt::kR:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | f_rs2(d.rs2);
      break;
    case Fmt::kR2:
      w |= f_rd(d.rd) | f_rs1(d.rs1);
      break;
    case Fmt::kR4:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | f_rs2(d.rs2) | f_rs3(d.rs3);
      break;
    case Fmt::kI:
    case Fmt::kILoad:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | enc_imm_i(d.imm);
      break;
    case Fmt::kIShift:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | f_rs2(static_cast<u32>(d.imm) & 31);
      break;
    case Fmt::kS:
      w |= f_rs1(d.rs1) | f_rs2(d.rs2) | enc_imm_s(d.imm);
      break;
    case Fmt::kB:
      w |= f_rs1(d.rs1) | f_rs2(d.rs2) | enc_imm_b(d.imm);
      break;
    case Fmt::kU:
      w |= f_rd(d.rd) | enc_imm_u(d.imm);
      break;
    case Fmt::kJ:
      w |= f_rd(d.rd) | enc_imm_j(d.imm);
      break;
    case Fmt::kCsr:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | (static_cast<u32>(d.imm) << 20);
      break;
    case Fmt::kCsrI:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | (static_cast<u32>(d.imm) << 20);
      break;
    case Fmt::kAmo:
    case Fmt::kLrSc:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | f_rs2(d.rs2);
      break;
    case Fmt::kNullary:
      break;
    case Fmt::kPLanes:
      w |= f_rd(d.rd) | f_rs1(d.rs1) | f_rs2(static_cast<u32>(d.imm) & 31);
      break;
  }
  return w;
}

}  // namespace tsim::rv
