// Binary decoder: 32-bit instruction word -> Decoded operands.
#pragma once

#include "rv/inst.h"

namespace tsim::rv {

/// Decodes one instruction word. Returns Op::kInvalid in `.op` for words
/// that match no ISA table entry.
Decoded decode(u32 word);

}  // namespace tsim::rv
