#include "rv/disasm.h"
#include <cstdarg>

#include <cstdio>

#include "rv/decode.h"
#include "rv/reg.h"

namespace tsim::rv {
namespace {

std::string fmt_str(const char* fmt, ...) {
  char buf[96];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

const char* r(u8 i) { return reg_name(i).data(); }

bool is_post_increment(Op op) {
  switch (op) {
    case Op::kPLb:
    case Op::kPLbu:
    case Op::kPLh:
    case Op::kPLhu:
    case Op::kPLw:
    case Op::kPSb:
    case Op::kPSh:
    case Op::kPSw:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string disassemble(const Decoded& d) {
  const InstrDef& def = def_of(d.op);
  if (d.op == Op::kInvalid) return ".word <invalid>";
  const std::string m(def.mnemonic);
  switch (def.fmt) {
    case Fmt::kR:
      return fmt_str("%s %s, %s, %s", m.c_str(), r(d.rd), r(d.rs1), r(d.rs2));
    case Fmt::kR2:
      return fmt_str("%s %s, %s", m.c_str(), r(d.rd), r(d.rs1));
    case Fmt::kR4:
      return fmt_str("%s %s, %s, %s, %s", m.c_str(), r(d.rd), r(d.rs1), r(d.rs2), r(d.rs3));
    case Fmt::kI:
      return fmt_str("%s %s, %s, %d", m.c_str(), r(d.rd), r(d.rs1), d.imm);
    case Fmt::kILoad:
      if (is_post_increment(d.op))
        return fmt_str("%s %s, %d(%s!)", m.c_str(), r(d.rd), d.imm, r(d.rs1));
      return fmt_str("%s %s, %d(%s)", m.c_str(), r(d.rd), d.imm, r(d.rs1));
    case Fmt::kIShift:
      return fmt_str("%s %s, %s, %d", m.c_str(), r(d.rd), r(d.rs1), d.imm);
    case Fmt::kS:
      if (is_post_increment(d.op))
        return fmt_str("%s %s, %d(%s!)", m.c_str(), r(d.rs2), d.imm, r(d.rs1));
      return fmt_str("%s %s, %d(%s)", m.c_str(), r(d.rs2), d.imm, r(d.rs1));
    case Fmt::kB:
      return fmt_str("%s %s, %s, %d", m.c_str(), r(d.rs1), r(d.rs2), d.imm);
    case Fmt::kU:
      return fmt_str("%s %s, 0x%x", m.c_str(), r(d.rd), static_cast<u32>(d.imm) >> 12);
    case Fmt::kJ:
      return fmt_str("%s %s, %d", m.c_str(), r(d.rd), d.imm);
    case Fmt::kCsr:
      return fmt_str("%s %s, 0x%x, %s", m.c_str(), r(d.rd), d.imm, r(d.rs1));
    case Fmt::kCsrI:
      return fmt_str("%s %s, 0x%x, %u", m.c_str(), r(d.rd), d.imm, d.rs1);
    case Fmt::kAmo:
      return fmt_str("%s %s, %s, (%s)", m.c_str(), r(d.rd), r(d.rs2), r(d.rs1));
    case Fmt::kLrSc:
      if (d.op == Op::kLrW) return fmt_str("%s %s, (%s)", m.c_str(), r(d.rd), r(d.rs1));
      return fmt_str("%s %s, %s, (%s)", m.c_str(), r(d.rd), r(d.rs2), r(d.rs1));
    case Fmt::kNullary:
      return m;
    case Fmt::kPLanes:
      return fmt_str("%s %s, %s, %d", m.c_str(), r(d.rd), r(d.rs1), d.imm);
  }
  return m;
}

std::string disassemble_word(u32 word) {
  const Decoded d = decode(word);
  if (d.op == Op::kInvalid) return fmt_str(".word 0x%08x", word);
  return disassemble(d);
}

}  // namespace tsim::rv
