// Disassembler: Decoded (or raw word) -> assembly text.
#pragma once

#include <string>

#include "rv/inst.h"

namespace tsim::rv {

/// Renders a decoded instruction using ABI register names, e.g.
/// "addi sp, sp, -16" or "p.lw a0, 4(a1!)".
std::string disassemble(const Decoded& d);

/// Decodes and renders a raw instruction word; invalid words render as
/// ".word 0x........".
std::string disassemble_word(u32 word);

}  // namespace tsim::rv
