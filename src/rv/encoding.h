// RISC-V bit-level encode/extract helpers shared by the ISA table, the
// assembler and the decoder.
#pragma once

#include "common/types.h"
#include "rv/inst.h"

namespace tsim::rv {

// Field placement helpers (field value -> its position in the 32-bit word).
constexpr u32 f_opcode(u32 v) { return v & 0x7F; }
constexpr u32 f_rd(u32 v) { return (v & 31) << 7; }
constexpr u32 f_funct3(u32 v) { return (v & 7) << 12; }
constexpr u32 f_rs1(u32 v) { return (v & 31) << 15; }
constexpr u32 f_rs2(u32 v) { return (v & 31) << 20; }
constexpr u32 f_funct7(u32 v) { return (v & 0x7F) << 25; }
constexpr u32 f_rs3(u32 v) { return (v & 31) << 27; }

// Field extraction from an encoded word.
constexpr u32 get_opcode(u32 w) { return w & 0x7F; }
constexpr u8 get_rd(u32 w) { return static_cast<u8>((w >> 7) & 31); }
constexpr u32 get_funct3(u32 w) { return (w >> 12) & 7; }
constexpr u8 get_rs1(u32 w) { return static_cast<u8>((w >> 15) & 31); }
constexpr u8 get_rs2(u32 w) { return static_cast<u8>((w >> 20) & 31); }
constexpr u32 get_funct7(u32 w) { return (w >> 25) & 0x7F; }
constexpr u8 get_rs3(u32 w) { return static_cast<u8>((w >> 27) & 31); }

// Immediate extraction per format (sign-extended).
constexpr i32 imm_i(u32 w) { return sign_extend(w >> 20, 12); }
constexpr i32 imm_s(u32 w) {
  return sign_extend(((w >> 25) << 5) | ((w >> 7) & 31), 12);
}
constexpr i32 imm_b(u32 w) {
  const u32 v = (bits_of(w, 31, 1) << 12) | (bits_of(w, 7, 1) << 11) |
                (bits_of(w, 25, 6) << 5) | (bits_of(w, 8, 4) << 1);
  return sign_extend(v, 13);
}
constexpr i32 imm_u(u32 w) { return static_cast<i32>(w & 0xFFFFF000u); }
constexpr i32 imm_j(u32 w) {
  const u32 v = (bits_of(w, 31, 1) << 20) | (bits_of(w, 12, 8) << 12) |
                (bits_of(w, 20, 1) << 11) | (bits_of(w, 21, 10) << 1);
  return sign_extend(v, 21);
}

// Immediate encoding per format. Values must be range-checked by the caller.
constexpr u32 enc_imm_i(i32 imm) { return static_cast<u32>(imm & 0xFFF) << 20; }
constexpr u32 enc_imm_s(i32 imm) {
  const u32 v = static_cast<u32>(imm) & 0xFFF;
  return ((v >> 5) << 25) | ((v & 31) << 7);
}
constexpr u32 enc_imm_b(i32 imm) {
  const u32 v = static_cast<u32>(imm) & 0x1FFF;
  return (bits_of(v, 12, 1) << 31) | (bits_of(v, 5, 6) << 25) |
         (bits_of(v, 1, 4) << 8) | (bits_of(v, 11, 1) << 7);
}
constexpr u32 enc_imm_u(i32 imm) { return static_cast<u32>(imm) & 0xFFFFF000u; }
constexpr u32 enc_imm_j(i32 imm) {
  const u32 v = static_cast<u32>(imm) & 0x1FFFFF;
  return (bits_of(v, 20, 1) << 31) | (bits_of(v, 1, 10) << 21) |
         (bits_of(v, 11, 1) << 20) | (bits_of(v, 12, 8) << 12);
}

/// Encodes a fully-decoded instruction back into its 32-bit word using the
/// ISA table entry for `d.op`. Inverse of decode() for valid operands.
u32 encode(const Decoded& d);

}  // namespace tsim::rv
