// Instruction semantics, shared by the fast ISS and the cycle-accurate
// uarch model. `execute` performs the architectural state change of one
// instruction (registers, pc, memory) and reports what happened so that the
// timing engines can account for it without re-decoding.
//
// `execute` is a template on the memory type: calling it with a concrete
// final memory class (tera::ClusterMemory) devirtualizes every access on
// the hot path; calling it with rv::MemIface& keeps the generic interface.
//
// It is also a template on the hart-state type: any type exposing
// HartState's member names (pc, cycle, instret, halted, in_wfi, trapped,
// hartid, has_reservation, reservation_addr, read_reg/write_reg) works.
// The uarch model passes rv::HartState; the fast ISS passes iss::HartLane,
// a per-lane view over its structure-of-arrays state - either way the
// semantics exist exactly once.
#pragma once

#include "rv/hart_state.h"
#include "rv/inst.h"
#include "rv/mem_iface.h"

namespace tsim::rv {

/// Side-channel report of one executed instruction.
struct StepInfo {
  bool branch_taken = false;  // control transfer happened (branch/jal/jalr)
  bool is_load = false;
  bool is_store = false;
  bool is_amo = false;
  u32 mem_addr = 0;
  u8 mem_bytes = 0;
  bool entered_wfi = false;
  bool halted = false;  // ebreak or fault this step
};

/// Executes one decoded instruction: updates registers and pc, performs
/// memory accesses through `mem`. Does NOT advance cycle counts (timing is
/// engine-specific) but increments `instret`.
template <typename Mem, typename State = HartState>
[[gnu::always_inline]] inline StepInfo execute(const Decoded& d, State& h, Mem& mem);

/// Same semantics with the opcode as a compile-time constant: the dispatch
/// switch folds to the single case, yielding a straight-line per-op kernel
/// (the ISS convergence-batch sweep dispatches once per SbEntry, then runs
/// this in a tight per-hart loop; see machine.cpp). `d.op` must equal `kOp`.
template <Op kOp, typename Mem, typename State = HartState>
[[gnu::always_inline]] inline StepInfo execute_known(const Decoded& d, State& h,
                                                     Mem& mem);

}  // namespace tsim::rv

#include "rv/exec_inl.h"
