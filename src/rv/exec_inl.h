// Instruction semantics, templated on the concrete memory type so engines
// that execute against a final memory class (tera::ClusterMemory) get fully
// devirtualized, inlinable accesses. Included by rv/exec.h; do not include
// directly.
#pragma once

#include <bit>
#include <cmath>

#include "rv/fp_formats.h"
#include "rv/hart_state.h"
#include "rv/inst.h"
#include "rv/mem_iface.h"
#include "softfloat/minifloat.h"
#include "softfloat/packed.h"

namespace tsim::rv {
namespace exec_detail {

using sf::F16;
using sf::lane16;
using sf::lane8;
using sf::pack16;
using sf::pack8;

// ---- fp32 helpers (host IEEE-754 single precision) ----
inline float as_f32(u32 b) { return std::bit_cast<float>(b); }
inline u32 f32_bits(float f) { return std::bit_cast<u32>(f); }

inline u32 f32_min(u32 a, u32 b) {
  const float fa = as_f32(a), fb = as_f32(b);
  if (std::isnan(fa) && std::isnan(fb)) return 0x7FC00000u;
  if (std::isnan(fa)) return b;
  if (std::isnan(fb)) return a;
  if (fa == fb) return (std::signbit(fa) ? a : b);
  return fa < fb ? a : b;
}
inline u32 f32_max(u32 a, u32 b) {
  const float fa = as_f32(a), fb = as_f32(b);
  if (std::isnan(fa) && std::isnan(fb)) return 0x7FC00000u;
  if (std::isnan(fa)) return b;
  if (std::isnan(fb)) return a;
  if (fa == fb) return (std::signbit(fa) ? b : a);
  return fa > fb ? a : b;
}

inline i32 f32_to_i32(float f) {
  if (std::isnan(f)) return INT32_MAX;
  if (f >= 2147483647.0f) return INT32_MAX;
  if (f <= -2147483648.0f) return INT32_MIN;
  return static_cast<i32>(f);
}
inline u32 f32_to_u32(float f) {
  if (std::isnan(f)) return UINT32_MAX;
  if (f >= 4294967295.0f) return UINT32_MAX;
  if (f <= 0.0f) return 0;
  return static_cast<u32>(f);
}

// fp16 value in an x-register: low 16 bits, result sign-extended per Zhinx.
inline u32 h_box(u32 h16) { return static_cast<u32>(sign_extend(h16 & 0xFFFF, 16)); }

// Complex fp16 MAC with 32-bit internal datapath: the product terms are
// rounded once to binary32 (the multiplier's internal precision), then
// accumulated into the packed binary16 register (second rounding).
inline u32 cdotp_h(u32 acc, u32 a, u32 b, bool conj_a) {
  const double are = F16::to_double(lane16(a, 0)), aim = F16::to_double(lane16(a, 1));
  const double bre = F16::to_double(lane16(b, 0)), bim = F16::to_double(lane16(b, 1));
  const double sim = conj_a ? -aim : aim;
  const float prod_re = static_cast<float>(are * bre - sim * bim);
  const float prod_im = static_cast<float>(are * bim + sim * bre);
  const u16 re = static_cast<u16>(
      F16::from_double(static_cast<double>(prod_re) + F16::to_double(lane16(acc, 0))));
  const u16 im = static_cast<u16>(
      F16::from_double(static_cast<double>(prod_im) + F16::to_double(lane16(acc, 1))));
  return pack16(re, im);
}

}  // namespace exec_detail

// Shared body of execute / execute_known. When `kStaticOp` is true the
// opcode is the compile-time constant `kOp` and the dispatch switch below
// constant-folds to the single matching case: the instantiation is a
// straight-line kernel for that op with every untaken StepInfo field known
// to be false, which in turn folds the caller's timing branches. This is
// what the ISS convergence-batch sweep dispatches to (see machine.cpp):
// one runtime switch per SbEntry per *batch*, then a tight per-op member
// loop. Semantics exist exactly once - every path and every State type
// (rv::HartState or the ISS's SoA lane view) executes this body.
template <typename Mem, bool kStaticOp, Op kOp, typename State>
[[gnu::always_inline]] inline StepInfo execute_impl(const Decoded& d, State& h,
                                                    Mem& mem) {
  using namespace exec_detail;  // fp helpers
  StepInfo info;
  const u32 pc = h.pc;
  u32 next_pc = pc + 4;
  const u32 rs1 = h.read_reg(d.rs1);
  const u32 rs2 = h.read_reg(d.rs2);
  const u32 rd_old = h.read_reg(d.rd);

  const auto fault = [&] {
    h.halted = true;
    h.trapped = true;
    info.halted = true;
  };
  const auto do_load = [&](u32 addr, u32 bytes) -> MemResult {
    info.is_load = true;
    info.mem_addr = addr;
    info.mem_bytes = static_cast<u8>(bytes);
    if ((addr & (bytes - 1)) != 0) return {0, true};
    return mem.load(addr, bytes);
  };
  const auto do_store = [&](u32 addr, u32 value, u32 bytes) -> bool {
    info.is_store = true;
    info.mem_addr = addr;
    info.mem_bytes = static_cast<u8>(bytes);
    if ((addr & (bytes - 1)) != 0) return true;
    return mem.store(addr, value, bytes);
  };
  const auto do_amo = [&](AmoOp op, u32 addr, u32 value) -> MemResult {
    info.is_amo = true;
    info.mem_addr = addr;
    info.mem_bytes = 4;
    if ((addr & 3) != 0) return {0, true};
    return mem.amo(op, addr, value);
  };
  const auto branch = [&](bool take) {
    if (take) {
      next_pc = pc + static_cast<u32>(d.imm);
      info.branch_taken = true;
    }
  };
  const auto csr_read = [&](u32 csr) -> u32 {
    switch (csr) {
      case kCsrMhartid: return h.hartid;
      case kCsrMcycle: return static_cast<u32>(h.cycle);
      case kCsrMcycleH: return static_cast<u32>(h.cycle >> 32);
      case kCsrMinstret: return static_cast<u32>(h.instret);
      case kCsrMinstretH: return static_cast<u32>(h.instret >> 32);
      default: return 0;  // unimplemented CSRs read as zero
    }
  };

  Op op;
  if constexpr (kStaticOp) {
    op = kOp;
  } else {
    op = d.op;
  }
  switch (op) {
    // ----- RV32I -----
    case Op::kLui: h.write_reg(d.rd, static_cast<u32>(d.imm)); break;
    case Op::kAuipc: h.write_reg(d.rd, pc + static_cast<u32>(d.imm)); break;
    case Op::kJal:
      h.write_reg(d.rd, pc + 4);
      next_pc = pc + static_cast<u32>(d.imm);
      info.branch_taken = true;
      break;
    case Op::kJalr:
      h.write_reg(d.rd, pc + 4);
      next_pc = (rs1 + static_cast<u32>(d.imm)) & ~1u;
      info.branch_taken = true;
      break;
    case Op::kBeq: branch(rs1 == rs2); break;
    case Op::kBne: branch(rs1 != rs2); break;
    case Op::kBlt: branch(static_cast<i32>(rs1) < static_cast<i32>(rs2)); break;
    case Op::kBge: branch(static_cast<i32>(rs1) >= static_cast<i32>(rs2)); break;
    case Op::kBltu: branch(rs1 < rs2); break;
    case Op::kBgeu: branch(rs1 >= rs2); break;

    case Op::kLb: {
      const auto r = do_load(rs1 + static_cast<u32>(d.imm), 1);
      if (r.fault) { fault(); break; }
      h.write_reg(d.rd, static_cast<u32>(sign_extend(r.value, 8)));
      break;
    }
    case Op::kLh: {
      const auto r = do_load(rs1 + static_cast<u32>(d.imm), 2);
      if (r.fault) { fault(); break; }
      h.write_reg(d.rd, static_cast<u32>(sign_extend(r.value, 16)));
      break;
    }
    case Op::kLw: {
      const auto r = do_load(rs1 + static_cast<u32>(d.imm), 4);
      if (r.fault) { fault(); break; }
      h.write_reg(d.rd, r.value);
      break;
    }
    case Op::kLbu: {
      const auto r = do_load(rs1 + static_cast<u32>(d.imm), 1);
      if (r.fault) { fault(); break; }
      h.write_reg(d.rd, r.value);
      break;
    }
    case Op::kLhu: {
      const auto r = do_load(rs1 + static_cast<u32>(d.imm), 2);
      if (r.fault) { fault(); break; }
      h.write_reg(d.rd, r.value);
      break;
    }
    case Op::kSb:
      if (do_store(rs1 + static_cast<u32>(d.imm), rs2 & 0xFF, 1)) fault();
      break;
    case Op::kSh:
      if (do_store(rs1 + static_cast<u32>(d.imm), rs2 & 0xFFFF, 2)) fault();
      break;
    case Op::kSw:
      if (do_store(rs1 + static_cast<u32>(d.imm), rs2, 4)) fault();
      break;

    case Op::kAddi: h.write_reg(d.rd, rs1 + static_cast<u32>(d.imm)); break;
    case Op::kSlti: h.write_reg(d.rd, static_cast<i32>(rs1) < d.imm ? 1 : 0); break;
    case Op::kSltiu: h.write_reg(d.rd, rs1 < static_cast<u32>(d.imm) ? 1 : 0); break;
    case Op::kXori: h.write_reg(d.rd, rs1 ^ static_cast<u32>(d.imm)); break;
    case Op::kOri: h.write_reg(d.rd, rs1 | static_cast<u32>(d.imm)); break;
    case Op::kAndi: h.write_reg(d.rd, rs1 & static_cast<u32>(d.imm)); break;
    case Op::kSlli: h.write_reg(d.rd, rs1 << (d.imm & 31)); break;
    case Op::kSrli: h.write_reg(d.rd, rs1 >> (d.imm & 31)); break;
    case Op::kSrai: h.write_reg(d.rd, static_cast<u32>(static_cast<i32>(rs1) >> (d.imm & 31))); break;
    case Op::kAdd: h.write_reg(d.rd, rs1 + rs2); break;
    case Op::kSub: h.write_reg(d.rd, rs1 - rs2); break;
    case Op::kSll: h.write_reg(d.rd, rs1 << (rs2 & 31)); break;
    case Op::kSlt: h.write_reg(d.rd, static_cast<i32>(rs1) < static_cast<i32>(rs2) ? 1 : 0); break;
    case Op::kSltu: h.write_reg(d.rd, rs1 < rs2 ? 1 : 0); break;
    case Op::kXor: h.write_reg(d.rd, rs1 ^ rs2); break;
    case Op::kSrl: h.write_reg(d.rd, rs1 >> (rs2 & 31)); break;
    case Op::kSra: h.write_reg(d.rd, static_cast<u32>(static_cast<i32>(rs1) >> (rs2 & 31))); break;
    case Op::kOr: h.write_reg(d.rd, rs1 | rs2); break;
    case Op::kAnd: h.write_reg(d.rd, rs1 & rs2); break;

    case Op::kFence: break;  // single cluster-visible memory: no-op
    case Op::kEcall: break;  // no supervisor: treated as no-op
    case Op::kEbreak:
      h.halted = true;
      info.halted = true;
      break;
    case Op::kWfi:
      h.in_wfi = true;
      info.entered_wfi = true;
      break;

    // ----- Zicsr -----
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
      // All implemented CSRs are read-only counters; writes are ignored.
      h.write_reg(d.rd, csr_read(static_cast<u32>(d.imm)));
      break;
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
      h.write_reg(d.rd, csr_read(static_cast<u32>(d.imm)));
      break;

    // ----- M -----
    case Op::kMul: h.write_reg(d.rd, rs1 * rs2); break;
    case Op::kMulh:
      h.write_reg(d.rd, static_cast<u32>((static_cast<i64>(static_cast<i32>(rs1)) *
                                          static_cast<i64>(static_cast<i32>(rs2))) >> 32));
      break;
    case Op::kMulhsu:
      h.write_reg(d.rd, static_cast<u32>((static_cast<i64>(static_cast<i32>(rs1)) *
                                          static_cast<i64>(rs2)) >> 32));
      break;
    case Op::kMulhu:
      h.write_reg(d.rd, static_cast<u32>((static_cast<u64>(rs1) * rs2) >> 32));
      break;
    case Op::kDiv: {
      const i32 a = static_cast<i32>(rs1), b = static_cast<i32>(rs2);
      if (b == 0) h.write_reg(d.rd, 0xFFFFFFFFu);
      else if (a == INT32_MIN && b == -1) h.write_reg(d.rd, static_cast<u32>(INT32_MIN));
      else h.write_reg(d.rd, static_cast<u32>(a / b));
      break;
    }
    case Op::kDivu: h.write_reg(d.rd, rs2 == 0 ? 0xFFFFFFFFu : rs1 / rs2); break;
    case Op::kRem: {
      const i32 a = static_cast<i32>(rs1), b = static_cast<i32>(rs2);
      if (b == 0) h.write_reg(d.rd, rs1);
      else if (a == INT32_MIN && b == -1) h.write_reg(d.rd, 0);
      else h.write_reg(d.rd, static_cast<u32>(a % b));
      break;
    }
    case Op::kRemu: h.write_reg(d.rd, rs2 == 0 ? rs1 : rs1 % rs2); break;

    // ----- A -----
    case Op::kLrW: {
      const auto r = do_load(rs1, 4);
      if (r.fault) { fault(); break; }
      h.has_reservation = true;
      h.reservation_addr = rs1;
      h.write_reg(d.rd, r.value);
      break;
    }
    case Op::kScW: {
      if (h.has_reservation && h.reservation_addr == rs1) {
        if (do_store(rs1, rs2, 4)) { fault(); break; }
        h.write_reg(d.rd, 0);
      } else {
        h.write_reg(d.rd, 1);
      }
      h.has_reservation = false;
      break;
    }
    case Op::kAmoswapW:
    case Op::kAmoaddW:
    case Op::kAmoxorW:
    case Op::kAmoandW:
    case Op::kAmoorW:
    case Op::kAmominW:
    case Op::kAmomaxW:
    case Op::kAmominuW:
    case Op::kAmomaxuW: {
      static constexpr AmoOp kMap[] = {AmoOp::kSwap, AmoOp::kAdd, AmoOp::kXor,
                                       AmoOp::kAnd, AmoOp::kOr, AmoOp::kMin,
                                       AmoOp::kMax, AmoOp::kMinu, AmoOp::kMaxu};
      const auto idx = static_cast<size_t>(op) - static_cast<size_t>(Op::kAmoswapW);
      const auto r = do_amo(kMap[idx], rs1, rs2);
      if (r.fault) { fault(); break; }
      h.write_reg(d.rd, r.value);
      break;
    }

    // ----- Zfinx (binary32) -----
    case Op::kFaddS: h.write_reg(d.rd, f32_bits(as_f32(rs1) + as_f32(rs2))); break;
    case Op::kFsubS: h.write_reg(d.rd, f32_bits(as_f32(rs1) - as_f32(rs2))); break;
    case Op::kFmulS: h.write_reg(d.rd, f32_bits(as_f32(rs1) * as_f32(rs2))); break;
    case Op::kFdivS: h.write_reg(d.rd, f32_bits(as_f32(rs1) / as_f32(rs2))); break;
    case Op::kFsqrtS: h.write_reg(d.rd, f32_bits(std::sqrt(as_f32(rs1)))); break;
    case Op::kFsgnjS: h.write_reg(d.rd, (rs1 & 0x7FFFFFFFu) | (rs2 & 0x80000000u)); break;
    case Op::kFsgnjnS: h.write_reg(d.rd, (rs1 & 0x7FFFFFFFu) | (~rs2 & 0x80000000u)); break;
    case Op::kFsgnjxS: h.write_reg(d.rd, rs1 ^ (rs2 & 0x80000000u)); break;
    case Op::kFminS: h.write_reg(d.rd, f32_min(rs1, rs2)); break;
    case Op::kFmaxS: h.write_reg(d.rd, f32_max(rs1, rs2)); break;
    case Op::kFeqS: h.write_reg(d.rd, as_f32(rs1) == as_f32(rs2) ? 1 : 0); break;
    case Op::kFltS: h.write_reg(d.rd, as_f32(rs1) < as_f32(rs2) ? 1 : 0); break;
    case Op::kFleS: h.write_reg(d.rd, as_f32(rs1) <= as_f32(rs2) ? 1 : 0); break;
    case Op::kFclassS: h.write_reg(d.rd, sf::classify_f32(rs1)); break;
    case Op::kFcvtWS: h.write_reg(d.rd, static_cast<u32>(f32_to_i32(as_f32(rs1)))); break;
    case Op::kFcvtWuS: h.write_reg(d.rd, f32_to_u32(as_f32(rs1))); break;
    case Op::kFcvtSW: h.write_reg(d.rd, f32_bits(static_cast<float>(static_cast<i32>(rs1)))); break;
    case Op::kFcvtSWu: h.write_reg(d.rd, f32_bits(static_cast<float>(rs1))); break;
    case Op::kFmaddS: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, f32_bits(std::fma(as_f32(rs1), as_f32(rs2), as_f32(rs3))));
      break;
    }
    case Op::kFmsubS: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, f32_bits(std::fma(as_f32(rs1), as_f32(rs2), -as_f32(rs3))));
      break;
    }
    case Op::kFnmsubS: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, f32_bits(std::fma(-as_f32(rs1), as_f32(rs2), as_f32(rs3))));
      break;
    }
    case Op::kFnmaddS: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, f32_bits(std::fma(-as_f32(rs1), as_f32(rs2), -as_f32(rs3))));
      break;
    }

    // ----- Zhinx (binary16, low half of x-regs) -----
    case Op::kFaddH: h.write_reg(d.rd, h_box(sf::add<F16>(rs1 & 0xFFFF, rs2 & 0xFFFF))); break;
    case Op::kFsubH: h.write_reg(d.rd, h_box(sf::sub<F16>(rs1 & 0xFFFF, rs2 & 0xFFFF))); break;
    case Op::kFmulH: h.write_reg(d.rd, h_box(sf::mul<F16>(rs1 & 0xFFFF, rs2 & 0xFFFF))); break;
    case Op::kFdivH: h.write_reg(d.rd, h_box(sf::div<F16>(rs1 & 0xFFFF, rs2 & 0xFFFF))); break;
    case Op::kFsqrtH: h.write_reg(d.rd, h_box(sf::sqrt<F16>(rs1 & 0xFFFF))); break;
    case Op::kFsgnjH: h.write_reg(d.rd, h_box(sf::sgnj<F16>(rs1, rs2))); break;
    case Op::kFsgnjnH: h.write_reg(d.rd, h_box(sf::sgnjn<F16>(rs1, rs2))); break;
    case Op::kFsgnjxH: h.write_reg(d.rd, h_box(sf::sgnjx<F16>(rs1, rs2))); break;
    case Op::kFminH: h.write_reg(d.rd, h_box(sf::min<F16>(rs1, rs2))); break;
    case Op::kFmaxH: h.write_reg(d.rd, h_box(sf::max<F16>(rs1, rs2))); break;
    case Op::kFeqH: h.write_reg(d.rd, sf::eq<F16>(rs1, rs2) ? 1 : 0); break;
    case Op::kFltH: h.write_reg(d.rd, sf::lt<F16>(rs1, rs2) ? 1 : 0); break;
    case Op::kFleH: h.write_reg(d.rd, sf::le<F16>(rs1, rs2) ? 1 : 0); break;
    case Op::kFclassH: h.write_reg(d.rd, F16::classify(rs1)); break;
    case Op::kFcvtWH: h.write_reg(d.rd, static_cast<u32>(sf::to_i32<F16>(rs1))); break;
    case Op::kFcvtWuH: h.write_reg(d.rd, sf::to_u32<F16>(rs1)); break;
    case Op::kFcvtHW: h.write_reg(d.rd, h_box(sf::from_i32<F16>(static_cast<i32>(rs1)))); break;
    case Op::kFcvtHWu: h.write_reg(d.rd, h_box(sf::from_u32<F16>(rs1))); break;
    case Op::kFcvtSH:
      h.write_reg(d.rd, f32_bits(static_cast<float>(F16::to_double(rs1 & 0xFFFF))));
      break;
    case Op::kFcvtHS:
      h.write_reg(d.rd, h_box(F16::from_double(static_cast<double>(as_f32(rs1)))));
      break;
    case Op::kFmaddH: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, h_box(sf::fma<F16>(rs1, rs2, rs3)));
      break;
    }
    case Op::kFmsubH: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, h_box(sf::fma<F16>(rs1, rs2, sf::sgnjn<F16>(rs3, rs3))));
      break;
    }
    case Op::kFnmsubH: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, h_box(sf::fma<F16>(sf::sgnjn<F16>(rs1, rs1), rs2, rs3)));
      break;
    }
    case Op::kFnmaddH: {
      const u32 rs3 = h.read_reg(d.rs3);
      h.write_reg(d.rd, h_box(sf::fma<F16>(sf::sgnjn<F16>(rs1, rs1), rs2,
                                           sf::sgnjn<F16>(rs3, rs3))));
      break;
    }

    // ----- Xpulpimg: post-increment loads/stores -----
    case Op::kPLb:
    case Op::kPLbu:
    case Op::kPLh:
    case Op::kPLhu:
    case Op::kPLw: {
      const u32 bytes = (op == Op::kPLw) ? 4u : (op == Op::kPLh || op == Op::kPLhu) ? 2u : 1u;
      const auto r = do_load(rs1, bytes);
      if (r.fault) { fault(); break; }
      h.write_reg(d.rs1, rs1 + static_cast<u32>(d.imm));  // post-increment
      u32 v = r.value;
      if (op == Op::kPLb) v = static_cast<u32>(sign_extend(v, 8));
      if (op == Op::kPLh) v = static_cast<u32>(sign_extend(v, 16));
      h.write_reg(d.rd, v);  // load result wins if rd == rs1
      break;
    }
    case Op::kPSb:
    case Op::kPSh:
    case Op::kPSw: {
      const u32 bytes = (op == Op::kPSw) ? 4u : (op == Op::kPSh) ? 2u : 1u;
      if (do_store(rs1, rs2, bytes)) { fault(); break; }
      h.write_reg(d.rs1, rs1 + static_cast<u32>(d.imm));
      break;
    }

    // ----- Xpulpimg: integer DSP -----
    case Op::kPMac: h.write_reg(d.rd, rd_old + rs1 * rs2); break;
    case Op::kPMsu: h.write_reg(d.rd, rd_old - rs1 * rs2); break;
    case Op::kPvAddH:
      h.write_reg(d.rd, pack16(static_cast<u16>(lane16(rs1, 0) + lane16(rs2, 0)),
                               static_cast<u16>(lane16(rs1, 1) + lane16(rs2, 1))));
      break;
    case Op::kPvSubH:
      h.write_reg(d.rd, pack16(static_cast<u16>(lane16(rs1, 0) - lane16(rs2, 0)),
                               static_cast<u16>(lane16(rs1, 1) - lane16(rs2, 1))));
      break;
    case Op::kPvAddB: {
      u32 out = 0;
      for (unsigned i = 0; i < 4; ++i)
        out = sf::insert8(out, i, static_cast<u8>(lane8(rs1, i) + lane8(rs2, i)));
      h.write_reg(d.rd, out);
      break;
    }
    case Op::kPvSubB: {
      u32 out = 0;
      for (unsigned i = 0; i < 4; ++i)
        out = sf::insert8(out, i, static_cast<u8>(lane8(rs1, i) - lane8(rs2, i)));
      h.write_reg(d.rd, out);
      break;
    }
    case Op::kPvXorH:
    case Op::kPvXorB: h.write_reg(d.rd, rs1 ^ rs2); break;
    case Op::kPvAndH:
    case Op::kPvAndB: h.write_reg(d.rd, rs1 & rs2); break;
    case Op::kPvOrH:
    case Op::kPvOrB: h.write_reg(d.rd, rs1 | rs2); break;
    case Op::kPvShuffleH: {
      // Output lane i selects halfword (rs2.lane[i] & 1) of rs1.
      u32 out = 0;
      for (unsigned i = 0; i < 2; ++i)
        out = sf::insert16(out, i, lane16(rs1, lane16(rs2, i) & 1));
      h.write_reg(d.rd, out);
      break;
    }
    case Op::kPvShuffleB: {
      u32 out = 0;
      for (unsigned i = 0; i < 4; ++i)
        out = sf::insert8(out, i, lane8(rs1, lane8(rs2, i) & 3));
      h.write_reg(d.rd, out);
      break;
    }
    case Op::kPvShuffle2H: {
      // Output lane i selects halfword (rs2.lane[i] & 3) from {rs1, rd}:
      // indices 0-1 address rs1 lanes, 2-3 address the old rd lanes.
      u32 out = 0;
      for (unsigned i = 0; i < 2; ++i) {
        const u32 sel = lane16(rs2, i) & 3;
        const u16 v = (sel < 2) ? lane16(rs1, sel) : lane16(rd_old, sel - 2);
        out = sf::insert16(out, i, v);
      }
      h.write_reg(d.rd, out);
      break;
    }
    case Op::kPvShuffle2B: {
      u32 out = 0;
      for (unsigned i = 0; i < 4; ++i) {
        const u32 sel = lane8(rs2, i) & 7;
        const u8 v = (sel < 4) ? lane8(rs1, sel) : lane8(rd_old, sel - 4);
        out = sf::insert8(out, i, v);
      }
      h.write_reg(d.rd, out);
      break;
    }
    case Op::kPvPackH: h.write_reg(d.rd, pack16(lane16(rs1, 0), lane16(rs2, 0))); break;
    case Op::kPvExtractH:
      h.write_reg(d.rd, static_cast<u32>(sign_extend(lane16(rs1, d.imm & 1), 16)));
      break;
    case Op::kPvInsertH:
      h.write_reg(d.rd, sf::insert16(rd_old, d.imm & 1, static_cast<u16>(rs1)));
      break;

    // ----- SmallFloat / MiniFloat packed FP -----
    case Op::kVfaddH:
      h.write_reg(d.rd, pack16(static_cast<u16>(sf::add<F16>(lane16(rs1, 0), lane16(rs2, 0))),
                               static_cast<u16>(sf::add<F16>(lane16(rs1, 1), lane16(rs2, 1)))));
      break;
    case Op::kVfsubH:
      h.write_reg(d.rd, pack16(static_cast<u16>(sf::sub<F16>(lane16(rs1, 0), lane16(rs2, 0))),
                               static_cast<u16>(sf::sub<F16>(lane16(rs1, 1), lane16(rs2, 1)))));
      break;
    case Op::kVfmulH:
      h.write_reg(d.rd, pack16(static_cast<u16>(sf::mul<F16>(lane16(rs1, 0), lane16(rs2, 0))),
                               static_cast<u16>(sf::mul<F16>(lane16(rs1, 1), lane16(rs2, 1)))));
      break;
    case Op::kVfmacH:
      h.write_reg(d.rd,
                  pack16(static_cast<u16>(sf::fma<F16>(lane16(rs1, 0), lane16(rs2, 0),
                                                       lane16(rd_old, 0))),
                         static_cast<u16>(sf::fma<F16>(lane16(rs1, 1), lane16(rs2, 1),
                                                       lane16(rd_old, 1)))));
      break;
    case Op::kVfaddB:
    case Op::kVfsubB:
    case Op::kVfmulB:
    case Op::kVfmacB: {
      u32 out = 0;
      for (unsigned i = 0; i < 4; ++i) {
        const u32 a = lane8(rs1, i), b = lane8(rs2, i);
        u32 v = 0;
        switch (op) {
          case Op::kVfaddB: v = sf::add<Fp8>(a, b); break;
          case Op::kVfsubB: v = sf::sub<Fp8>(a, b); break;
          case Op::kVfmulB: v = sf::mul<Fp8>(a, b); break;
          default: v = sf::fma<Fp8>(a, b, lane8(rd_old, i)); break;
        }
        out = sf::insert8(out, i, static_cast<u8>(v));
      }
      h.write_reg(d.rd, out);
      break;
    }
    case Op::kVfdotpexSH: {
      // rd (binary32) += rs1.h0*rs2.h0 + rs1.h1*rs2.h1, single rounding.
      const double sum = F16::to_double(lane16(rs1, 0)) * F16::to_double(lane16(rs2, 0)) +
                         F16::to_double(lane16(rs1, 1)) * F16::to_double(lane16(rs2, 1)) +
                         static_cast<double>(as_f32(rd_old));
      h.write_reg(d.rd, f32_bits(static_cast<float>(sum)));
      break;
    }
    case Op::kVfdotpexHB: {
      // rd (binary16, low half) += sum of 4 fp8 lane products, single rounding.
      double sum = F16::to_double(lane16(rd_old, 0));
      for (unsigned i = 0; i < 4; ++i)
        sum += Fp8::to_double(lane8(rs1, i)) * Fp8::to_double(lane8(rs2, i));
      h.write_reg(d.rd, h_box(F16::from_double(sum)));
      break;
    }
    case Op::kVfcdotpH: h.write_reg(d.rd, cdotp_h(rd_old, rs1, rs2, false)); break;
    case Op::kVfccdotpH: h.write_reg(d.rd, cdotp_h(rd_old, rs1, rs2, true)); break;
    case Op::kVfcvtHB:
      h.write_reg(d.rd, pack16(static_cast<u16>(sf::convert<F16, Fp8>(lane8(rs1, 0))),
                               static_cast<u16>(sf::convert<F16, Fp8>(lane8(rs1, 1)))));
      break;
    case Op::kVfcvtBH:
      h.write_reg(d.rd, pack8(static_cast<u8>(sf::convert<Fp8, F16>(lane16(rs1, 0))),
                              static_cast<u8>(sf::convert<Fp8, F16>(lane16(rs1, 1))), 0, 0));
      break;

    case Op::kInvalid:
    default:
      fault();
      break;
  }

  h.pc = next_pc;
  ++h.instret;
  return info;
}

template <typename Mem, typename State>
[[gnu::always_inline]] inline StepInfo execute(const Decoded& d, State& h, Mem& mem) {
  return execute_impl<Mem, /*kStaticOp=*/false, Op::kInvalid, State>(d, h, mem);
}

template <Op kOp, typename Mem, typename State>
[[gnu::always_inline]] inline StepInfo execute_known(const Decoded& d, State& h,
                                                     Mem& mem) {
  static_assert(kOp != Op::kInvalid, "specialize real ops only");
  return execute_impl<Mem, /*kStaticOp=*/true, kOp, State>(d, h, mem);
}

}  // namespace tsim::rv
