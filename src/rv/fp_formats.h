// Selects the concrete 8-bit FP format used by the DUT's `.b` instructions.
//
// The paper describes the 8-bit SmallFloat operands as "1b sign, 4b exponent,
// 2b mantissa" (7 bits, stored in a byte). We follow it literally: the
// 2-bit mantissa is what produces the paper's Fig. 9 BER degradation of the
// 8-bit variants (with e4m3 the loss is much milder - measured in
// EXPERIMENTS.md). The e4m3/e5m2 alternatives are instantiated and covered
// by tests; switch the alias to explore them.
#pragma once

#include "softfloat/minifloat.h"

namespace tsim::rv {

using Fp8 = sf::F8E4M2;

}  // namespace tsim::rv
