// Architectural state of one emulated RISC-V hart (Snitch core).
//
// With zfinx/zhinx there is no separate FP register file: floating-point
// values live in the integer registers, exactly as on TeraPool's Snitch.
#pragma once

#include <array>

#include "common/types.h"

namespace tsim::rv {

/// CSR addresses implemented by the DUT model.
enum Csr : u32 {
  kCsrMhartid = 0xF14,
  kCsrMcycle = 0xB00,
  kCsrMcycleH = 0xB80,
  kCsrMinstret = 0xB02,
  kCsrMinstretH = 0xB82,
};

struct HartState {
  std::array<u32, 32> x{};  // x0 hardwired to zero via write helper
  u32 pc = 0;
  u32 hartid = 0;

  u64 cycle = 0;    // advanced by the owning timing engine
  u64 instret = 0;  // retired instruction count

  bool halted = false;  // terminated (ebreak / exit MMIO / trap)
  bool in_wfi = false;  // sleeping; cleared by a wake event
  bool trapped = false; // halted due to a fault (invalid instr, bad access)

  // LR/SC reservation.
  bool has_reservation = false;
  u32 reservation_addr = 0;

  u32 read_reg(u8 i) const { return x[i & 31]; }
  void write_reg(u8 i, u32 v) {
    if ((i & 31) != 0) x[i & 31] = v;
  }
};

}  // namespace tsim::rv
