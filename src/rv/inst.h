// Instruction identities, formats and the static ISA descriptor table.
//
// One table (`isa_table()`) describes every instruction the TeraPool DUT
// model understands: base RV32IMA + Zicsr, Zfinx/Zhinx scalar FP in the
// integer register file, the Xpulpimg DSP subset, and the SmallFloat /
// MiniFloat packed-FP subset used by the paper's MMSE kernels.
//
// The assembler, decoder, disassembler, fast ISS and cycle-accurate uarch
// model all consume this table, so encode/decode agreement holds by
// construction. The custom-extension encodings (Xpulpimg, SmallFloat) are
// repo-defined in the RISC-V custom-0/2/3 opcode spaces; see DESIGN.md.
#pragma once

#include <span>
#include <string_view>

#include "common/types.h"

namespace tsim::rv {

/// Every instruction the simulator understands.
enum class Op : u16 {
  kInvalid = 0,
  // ----- RV32I -----
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak, kWfi,
  // ----- Zicsr -----
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // ----- M -----
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // ----- A -----
  kLrW, kScW, kAmoswapW, kAmoaddW, kAmoxorW, kAmoandW, kAmoorW,
  kAmominW, kAmomaxW, kAmominuW, kAmomaxuW,
  // ----- Zfinx (binary32 in x-regs) -----
  kFaddS, kFsubS, kFmulS, kFdivS, kFsqrtS,
  kFsgnjS, kFsgnjnS, kFsgnjxS, kFminS, kFmaxS,
  kFeqS, kFltS, kFleS, kFclassS,
  kFcvtWS, kFcvtWuS, kFcvtSW, kFcvtSWu,
  kFmaddS, kFmsubS, kFnmsubS, kFnmaddS,
  // ----- Zhinx (binary16 in x-regs) -----
  kFaddH, kFsubH, kFmulH, kFdivH, kFsqrtH,
  kFsgnjH, kFsgnjnH, kFsgnjxH, kFminH, kFmaxH,
  kFeqH, kFltH, kFleH, kFclassH,
  kFcvtWH, kFcvtWuH, kFcvtHW, kFcvtHWu, kFcvtSH, kFcvtHS,
  kFmaddH, kFmsubH, kFnmsubH, kFnmaddH,
  // ----- Xpulpimg subset (repo encodings, custom-0/1/2) -----
  kPLb, kPLbu, kPLh, kPLhu, kPLw,       // post-increment loads: rd <- [rs1]; rs1 += imm
  kPSb, kPSh, kPSw,                     // post-increment stores: [rs1] <- rs2; rs1 += imm
  kPMac, kPMsu,                         // rd +/-= rs1 * rs2 (int32)
  kPvAddH, kPvAddB, kPvSubH, kPvSubB,   // packed int add/sub
  kPvXorH, kPvXorB, kPvAndH, kPvAndB, kPvOrH, kPvOrB,
  kPvShuffleH, kPvShuffleB,             // lane shuffle from rs1 only
  kPvShuffle2H, kPvShuffle2B,           // lane shuffle from {rs1, rd}
  kPvPackH,                             // rd = {rs2.h0, rs1.h0}
  kPvExtractH, kPvInsertH,              // lane extract/insert, lane index = imm
  // ----- SmallFloat / MiniFloat packed FP subset (repo encodings, custom-3) -----
  kVfaddH, kVfaddB, kVfsubH, kVfsubB, kVfmulH, kVfmulB,
  kVfmacH, kVfmacB,                     // per-lane fused rd.l += rs1.l * rs2.l
  kVfdotpexSH,                          // rd(f32) += rs1.h0*rs2.h0 + rs1.h1*rs2.h1
  kVfdotpexHB,                          // rd(f16) += sum of 4 fp8 lane products
  kVfcdotpH,                            // rd(cf16) += rs1 * rs2     (complex, f32 internal)
  kVfccdotpH,                           // rd(cf16) += conj(rs1) * rs2
  kVfcvtHB, kVfcvtBH,                   // packed fp8 <-> fp16 conversions
  kOpCount_,
};

constexpr size_t kNumOps = static_cast<size_t>(Op::kOpCount_);

/// Assembly/encoding format of an instruction.
enum class Fmt : u8 {
  kR,        // op rd, rs1, rs2
  kR2,       // op rd, rs1           (rs2 fixed in encoding: fsqrt, fcvt, fclass)
  kR4,       // op rd, rs1, rs2, rs3
  kI,        // op rd, rs1, imm12
  kILoad,    // op rd, imm(rs1)
  kIShift,   // op rd, rs1, shamt5
  kS,        // op rs2, imm(rs1)
  kB,        // op rs1, rs2, label
  kU,        // op rd, imm20
  kJ,        // op rd, label
  kCsr,      // op rd, csr, rs1
  kCsrI,     // op rd, csr, uimm5
  kAmo,      // op rd, rs2, (rs1)
  kLrSc,     // lr: op rd, (rs1); sc: op rd, rs2, (rs1)
  kNullary,  // op            (ecall, ebreak, wfi, fence)
  kPLanes,   // op rd, rs1, laneimm  (pv.extract/insert; lane index in rs2 field)
};

/// Functional unit an instruction occupies (used by the uarch model).
enum class Unit : u8 { kAlu, kMul, kDiv, kFpu, kFdiv, kLsu, kCsr, kBranch, kNone };

/// Coarse class used for instruction-mix histograms (Fig. 8 companions).
enum class Mix : u8 { kAlu, kMul, kLoad, kStore, kAmo, kBranch, kFp, kSimdFp, kCsr, kSync };

/// Decoded instruction operands. `imm` holds, depending on format: the
/// sign-extended immediate, the CSR number, the shift amount, or the lane
/// index.
struct Decoded {
  Op op = Op::kInvalid;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  u8 rs3 = 0;
  i32 imm = 0;
};

/// Static per-instruction descriptor.
struct InstrDef {
  Op op = Op::kInvalid;
  std::string_view mnemonic;
  Fmt fmt = Fmt::kNullary;
  u32 match = 0;     // fixed bit values
  u32 mask = 0;      // which bits are fixed
  Unit unit = Unit::kAlu;
  Mix mix = Mix::kAlu;
  u8 issue_cycles = 1;   // cycles the instruction occupies issue
  u8 result_latency = 1; // cycles from issue until rd is ready (RAW scoreboard)
};

/// The full ISA descriptor table, indexed by `Op`.
std::span<const InstrDef> isa_table();

/// Descriptor for one op (O(1)).
const InstrDef& def_of(Op op);

/// Looks up a mnemonic ("addi", "pv.add.h", ...); returns nullptr if unknown.
const InstrDef* find_mnemonic(std::string_view mnemonic);

/// True for ops that read rd as an implicit source (accumulating ops and
/// lane-preserving ops): p.mac/p.msu, vfmac, dotp/cdotp accumulators,
/// pv.insert, pv.shuffle2 (lane source includes old rd). Constexpr: this is
/// on the per-instruction path of both timing engines.
constexpr bool reads_rd(Op op) {
  switch (op) {
    case Op::kPMac:
    case Op::kPMsu:
    case Op::kVfmacH:
    case Op::kVfmacB:
    case Op::kVfdotpexSH:
    case Op::kVfdotpexHB:
    case Op::kVfcdotpH:
    case Op::kVfccdotpH:
    case Op::kPvInsertH:
    case Op::kPvShuffle2H:
    case Op::kPvShuffle2B:
      return true;
    default:
      return false;
  }
}

}  // namespace tsim::rv
