// The ISA descriptor table: one entry per instruction.
//
// Encodings: standard RV32IMA_Zicsr_Zfinx_Zhinx where ratified; the Xpulpimg
// and SmallFloat/MiniFloat subsets use the RISC-V custom-0/1/2/3 opcode
// spaces with repo-defined funct fields (the in-repo assembler and decoder
// share this table, so consistency is structural).
//
// Timing: `issue_cycles` and `result_latency` are the static per-instruction
// latencies of the paper's Banshee timing model (Sec. III-B): the ISS charges
// issue_cycles per instruction and marks rd busy for result_latency cycles;
// a consumer reading a busy register stalls (RAW scoreboard). Memory
// latencies are added dynamically by the timing engines on top of these.
#include "rv/inst.h"

#include <algorithm>
#include <array>
#include <bit>
#include <unordered_map>

#include "common/error.h"
#include "rv/encoding.h"

namespace tsim::rv {
namespace {

// Encoding-space constants.
constexpr u32 kLoad = 0x03, kStore = 0x23, kOpImm = 0x13, kOpReg = 0x33;
constexpr u32 kBranch = 0x63, kJalOp = 0x6F, kJalrOp = 0x67;
constexpr u32 kLuiOp = 0x37, kAuipcOp = 0x17, kMiscMem = 0x0F, kSystem = 0x73;
constexpr u32 kAmoOp = 0x2F, kOpFp = 0x53;
constexpr u32 kFmaddOp = 0x43, kFmsubOp = 0x47, kFnmsubOp = 0x4B, kFnmaddOp = 0x4F;
constexpr u32 kCustom0 = 0x0B;  // Xpulpimg post-increment loads
constexpr u32 kCustom1 = 0x2B;  // Xpulpimg post-increment stores
constexpr u32 kCustom2 = 0x5B;  // Xpulpimg R-type DSP
constexpr u32 kCustom3 = 0x7B;  // SmallFloat/MiniFloat packed FP

// Common masks.
constexpr u32 kMaskOp = 0x0000007F;        // opcode only (U/J)
constexpr u32 kMaskOpF3 = 0x0000707F;      // opcode + funct3 (I/S/B/CSR)
constexpr u32 kMaskR = 0xFE00707F;         // opcode + funct3 + funct7
constexpr u32 kMaskFpArith = 0xFE00007F;   // funct7 + opcode, rounding mode free
constexpr u32 kMaskFpUnary = 0xFFF0007F;   // funct7 + rs2 + opcode, rm free
constexpr u32 kMaskFpUnaryF3 = 0xFFF0707F; // funct7 + rs2 + funct3 + opcode
constexpr u32 kMaskR4 = 0x0600007F;        // fmt[26:25] + opcode
constexpr u32 kMaskAmo = 0xF800707F;       // funct5 + funct3 + opcode (aq/rl free)
constexpr u32 kMaskAmoRs2 = 0xF9F0707F;    // ... + rs2 fixed (LR)
constexpr u32 kMaskFull = 0xFFFFFFFFu;

// OP-FP fmt field values (bits 26:25): binary32 = 00, binary16 = 10.
constexpr u32 kFmtS = 0u << 25;
constexpr u32 kFmtH = 2u << 25;
constexpr u32 kFmt4S = 0u << 25;
constexpr u32 kFmt4H = 2u << 25;

struct TableBuilder {
  std::array<InstrDef, kNumOps> defs{};

  void add(Op op, std::string_view mnem, Fmt fmt, u32 match, u32 mask, Unit unit,
           Mix mix, u8 issue, u8 result) {
    auto& d = defs[static_cast<size_t>(op)];
    check(d.op == Op::kInvalid, "duplicate ISA table entry");
    d = InstrDef{op, mnem, fmt, match, mask, unit, mix, issue, result};
  }
};

std::array<InstrDef, kNumOps> build_table() {
  TableBuilder t;
  const auto f3m = [](u32 f3v) { return f_funct3(f3v); };

  // ----- RV32I -----
  t.add(Op::kLui, "lui", Fmt::kU, kLuiOp, kMaskOp, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kAuipc, "auipc", Fmt::kU, kAuipcOp, kMaskOp, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kJal, "jal", Fmt::kJ, kJalOp, kMaskOp, Unit::kBranch, Mix::kBranch, 1, 1);
  t.add(Op::kJalr, "jalr", Fmt::kILoad, kJalrOp | f3m(0), kMaskOpF3, Unit::kBranch,
        Mix::kBranch, 1, 1);
  t.add(Op::kBeq, "beq", Fmt::kB, kBranch | f3m(0), kMaskOpF3, Unit::kBranch, Mix::kBranch, 1, 1);
  t.add(Op::kBne, "bne", Fmt::kB, kBranch | f3m(1), kMaskOpF3, Unit::kBranch, Mix::kBranch, 1, 1);
  t.add(Op::kBlt, "blt", Fmt::kB, kBranch | f3m(4), kMaskOpF3, Unit::kBranch, Mix::kBranch, 1, 1);
  t.add(Op::kBge, "bge", Fmt::kB, kBranch | f3m(5), kMaskOpF3, Unit::kBranch, Mix::kBranch, 1, 1);
  t.add(Op::kBltu, "bltu", Fmt::kB, kBranch | f3m(6), kMaskOpF3, Unit::kBranch, Mix::kBranch, 1, 1);
  t.add(Op::kBgeu, "bgeu", Fmt::kB, kBranch | f3m(7), kMaskOpF3, Unit::kBranch, Mix::kBranch, 1, 1);
  t.add(Op::kLb, "lb", Fmt::kILoad, kLoad | f3m(0), kMaskOpF3, Unit::kLsu, Mix::kLoad, 1, 1);
  t.add(Op::kLh, "lh", Fmt::kILoad, kLoad | f3m(1), kMaskOpF3, Unit::kLsu, Mix::kLoad, 1, 1);
  t.add(Op::kLw, "lw", Fmt::kILoad, kLoad | f3m(2), kMaskOpF3, Unit::kLsu, Mix::kLoad, 1, 1);
  t.add(Op::kLbu, "lbu", Fmt::kILoad, kLoad | f3m(4), kMaskOpF3, Unit::kLsu, Mix::kLoad, 1, 1);
  t.add(Op::kLhu, "lhu", Fmt::kILoad, kLoad | f3m(5), kMaskOpF3, Unit::kLsu, Mix::kLoad, 1, 1);
  t.add(Op::kSb, "sb", Fmt::kS, kStore | f3m(0), kMaskOpF3, Unit::kLsu, Mix::kStore, 1, 1);
  t.add(Op::kSh, "sh", Fmt::kS, kStore | f3m(1), kMaskOpF3, Unit::kLsu, Mix::kStore, 1, 1);
  t.add(Op::kSw, "sw", Fmt::kS, kStore | f3m(2), kMaskOpF3, Unit::kLsu, Mix::kStore, 1, 1);
  t.add(Op::kAddi, "addi", Fmt::kI, kOpImm | f3m(0), kMaskOpF3, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSlti, "slti", Fmt::kI, kOpImm | f3m(2), kMaskOpF3, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSltiu, "sltiu", Fmt::kI, kOpImm | f3m(3), kMaskOpF3, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kXori, "xori", Fmt::kI, kOpImm | f3m(4), kMaskOpF3, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kOri, "ori", Fmt::kI, kOpImm | f3m(6), kMaskOpF3, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kAndi, "andi", Fmt::kI, kOpImm | f3m(7), kMaskOpF3, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSlli, "slli", Fmt::kIShift, kOpImm | f3m(1) | f_funct7(0x00), kMaskR,
        Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSrli, "srli", Fmt::kIShift, kOpImm | f3m(5) | f_funct7(0x00), kMaskR,
        Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSrai, "srai", Fmt::kIShift, kOpImm | f3m(5) | f_funct7(0x20), kMaskR,
        Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kAdd, "add", Fmt::kR, kOpReg | f3m(0) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSub, "sub", Fmt::kR, kOpReg | f3m(0) | f_funct7(0x20), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSll, "sll", Fmt::kR, kOpReg | f3m(1) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSlt, "slt", Fmt::kR, kOpReg | f3m(2) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSltu, "sltu", Fmt::kR, kOpReg | f3m(3) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kXor, "xor", Fmt::kR, kOpReg | f3m(4) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSrl, "srl", Fmt::kR, kOpReg | f3m(5) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kSra, "sra", Fmt::kR, kOpReg | f3m(5) | f_funct7(0x20), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kOr, "or", Fmt::kR, kOpReg | f3m(6) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kAnd, "and", Fmt::kR, kOpReg | f3m(7) | f_funct7(0x00), kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kFence, "fence", Fmt::kNullary, kMiscMem | f3m(0), kMaskOpF3, Unit::kNone,
        Mix::kSync, 1, 1);
  t.add(Op::kEcall, "ecall", Fmt::kNullary, 0x00000073, kMaskFull, Unit::kNone, Mix::kSync, 1, 1);
  t.add(Op::kEbreak, "ebreak", Fmt::kNullary, 0x00100073, kMaskFull, Unit::kNone, Mix::kSync, 1, 1);
  t.add(Op::kWfi, "wfi", Fmt::kNullary, 0x10500073, kMaskFull, Unit::kNone, Mix::kSync, 1, 1);

  // ----- Zicsr -----
  t.add(Op::kCsrrw, "csrrw", Fmt::kCsr, kSystem | f3m(1), kMaskOpF3, Unit::kCsr, Mix::kCsr, 1, 1);
  t.add(Op::kCsrrs, "csrrs", Fmt::kCsr, kSystem | f3m(2), kMaskOpF3, Unit::kCsr, Mix::kCsr, 1, 1);
  t.add(Op::kCsrrc, "csrrc", Fmt::kCsr, kSystem | f3m(3), kMaskOpF3, Unit::kCsr, Mix::kCsr, 1, 1);
  t.add(Op::kCsrrwi, "csrrwi", Fmt::kCsrI, kSystem | f3m(5), kMaskOpF3, Unit::kCsr, Mix::kCsr, 1, 1);
  t.add(Op::kCsrrsi, "csrrsi", Fmt::kCsrI, kSystem | f3m(6), kMaskOpF3, Unit::kCsr, Mix::kCsr, 1, 1);
  t.add(Op::kCsrrci, "csrrci", Fmt::kCsrI, kSystem | f3m(7), kMaskOpF3, Unit::kCsr, Mix::kCsr, 1, 1);

  // ----- M extension (Snitch IPU) -----
  const u32 m7 = f_funct7(0x01);
  t.add(Op::kMul, "mul", Fmt::kR, kOpReg | f3m(0) | m7, kMaskR, Unit::kMul, Mix::kMul, 1, 3);
  t.add(Op::kMulh, "mulh", Fmt::kR, kOpReg | f3m(1) | m7, kMaskR, Unit::kMul, Mix::kMul, 1, 3);
  t.add(Op::kMulhsu, "mulhsu", Fmt::kR, kOpReg | f3m(2) | m7, kMaskR, Unit::kMul, Mix::kMul, 1, 3);
  t.add(Op::kMulhu, "mulhu", Fmt::kR, kOpReg | f3m(3) | m7, kMaskR, Unit::kMul, Mix::kMul, 1, 3);
  t.add(Op::kDiv, "div", Fmt::kR, kOpReg | f3m(4) | m7, kMaskR, Unit::kDiv, Mix::kMul, 20, 21);
  t.add(Op::kDivu, "divu", Fmt::kR, kOpReg | f3m(5) | m7, kMaskR, Unit::kDiv, Mix::kMul, 20, 21);
  t.add(Op::kRem, "rem", Fmt::kR, kOpReg | f3m(6) | m7, kMaskR, Unit::kDiv, Mix::kMul, 20, 21);
  t.add(Op::kRemu, "remu", Fmt::kR, kOpReg | f3m(7) | m7, kMaskR, Unit::kDiv, Mix::kMul, 20, 21);

  // ----- A extension (barriers / atomics) -----
  const auto amo = [&](Op op, std::string_view mnem, u32 funct5) {
    t.add(op, mnem, Fmt::kAmo, kAmoOp | f3m(2) | (funct5 << 27), kMaskAmo, Unit::kLsu,
          Mix::kAmo, 1, 1);
  };
  t.add(Op::kLrW, "lr.w", Fmt::kLrSc, kAmoOp | f3m(2) | (0x02u << 27), kMaskAmoRs2,
        Unit::kLsu, Mix::kAmo, 1, 1);
  t.add(Op::kScW, "sc.w", Fmt::kLrSc, kAmoOp | f3m(2) | (0x03u << 27), kMaskAmo,
        Unit::kLsu, Mix::kAmo, 1, 1);
  amo(Op::kAmoswapW, "amoswap.w", 0x01);
  amo(Op::kAmoaddW, "amoadd.w", 0x00);
  amo(Op::kAmoxorW, "amoxor.w", 0x04);
  amo(Op::kAmoandW, "amoand.w", 0x0C);
  amo(Op::kAmoorW, "amoor.w", 0x08);
  amo(Op::kAmominW, "amomin.w", 0x10);
  amo(Op::kAmomaxW, "amomax.w", 0x14);
  amo(Op::kAmominuW, "amominu.w", 0x18);
  amo(Op::kAmomaxuW, "amomaxu.w", 0x1C);

  // ----- Zfinx / Zhinx scalar FP -----
  // funct7 = funct5 << 2 | fmt; fp32 latencies ~FPnew, fp16 one cycle less.
  const auto fp = [&](Op op, std::string_view mnem, u32 funct5, u32 fmt, Fmt afmt,
                      u32 mask, u32 extra, u8 issue, u8 result) {
    t.add(op, mnem, afmt, kOpFp | f_funct7((funct5 << 2)) | fmt | extra, mask,
          Unit::kFpu, Mix::kFp, issue, result);
  };
  // Arithmetic (rounding-mode field free).
  fp(Op::kFaddS, "fadd.s", 0x00, kFmtS, Fmt::kR, kMaskFpArith, 0, 1, 3);
  fp(Op::kFaddH, "fadd.h", 0x00, kFmtH, Fmt::kR, kMaskFpArith, 0, 1, 2);
  fp(Op::kFsubS, "fsub.s", 0x01, kFmtS, Fmt::kR, kMaskFpArith, 0, 1, 3);
  fp(Op::kFsubH, "fsub.h", 0x01, kFmtH, Fmt::kR, kMaskFpArith, 0, 1, 2);
  fp(Op::kFmulS, "fmul.s", 0x02, kFmtS, Fmt::kR, kMaskFpArith, 0, 1, 3);
  fp(Op::kFmulH, "fmul.h", 0x02, kFmtH, Fmt::kR, kMaskFpArith, 0, 1, 2);
  t.add(Op::kFdivS, "fdiv.s", Fmt::kR, kOpFp | f_funct7(0x03 << 2) | kFmtS, kMaskFpArith,
        Unit::kFdiv, Mix::kFp, 12, 14);
  t.add(Op::kFdivH, "fdiv.h", Fmt::kR, kOpFp | f_funct7((0x03 << 2)) | kFmtH, kMaskFpArith,
        Unit::kFdiv, Mix::kFp, 9, 11);
  t.add(Op::kFsqrtS, "fsqrt.s", Fmt::kR2, kOpFp | f_funct7((0x0B << 2)) | kFmtS,
        kMaskFpUnary, Unit::kFdiv, Mix::kFp, 12, 14);
  t.add(Op::kFsqrtH, "fsqrt.h", Fmt::kR2, kOpFp | f_funct7((0x0B << 2)) | kFmtH,
        kMaskFpUnary, Unit::kFdiv, Mix::kFp, 9, 11);
  // Sign injection / min-max / compares (funct3 significant).
  const auto fp3 = [&](Op op, std::string_view mnem, u32 funct5, u32 fmt, u32 f3v,
                       u8 result) {
    t.add(op, mnem, Fmt::kR, kOpFp | f_funct7((funct5 << 2)) | fmt | f3m(f3v), kMaskR,
          Unit::kFpu, Mix::kFp, 1, result);
  };
  fp3(Op::kFsgnjS, "fsgnj.s", 0x04, kFmtS, 0, 2);
  fp3(Op::kFsgnjnS, "fsgnjn.s", 0x04, kFmtS, 1, 2);
  fp3(Op::kFsgnjxS, "fsgnjx.s", 0x04, kFmtS, 2, 2);
  fp3(Op::kFsgnjH, "fsgnj.h", 0x04, kFmtH, 0, 2);
  fp3(Op::kFsgnjnH, "fsgnjn.h", 0x04, kFmtH, 1, 2);
  fp3(Op::kFsgnjxH, "fsgnjx.h", 0x04, kFmtH, 2, 2);
  fp3(Op::kFminS, "fmin.s", 0x05, kFmtS, 0, 2);
  fp3(Op::kFmaxS, "fmax.s", 0x05, kFmtS, 1, 2);
  fp3(Op::kFminH, "fmin.h", 0x05, kFmtH, 0, 2);
  fp3(Op::kFmaxH, "fmax.h", 0x05, kFmtH, 1, 2);
  fp3(Op::kFleS, "fle.s", 0x14, kFmtS, 0, 2);
  fp3(Op::kFltS, "flt.s", 0x14, kFmtS, 1, 2);
  fp3(Op::kFeqS, "feq.s", 0x14, kFmtS, 2, 2);
  fp3(Op::kFleH, "fle.h", 0x14, kFmtH, 0, 2);
  fp3(Op::kFltH, "flt.h", 0x14, kFmtH, 1, 2);
  fp3(Op::kFeqH, "feq.h", 0x14, kFmtH, 2, 2);
  // Conversions (unary; rs2 selects the source/int type).
  const auto cvt = [&](Op op, std::string_view mnem, u32 funct5, u32 fmt, u32 rs2sel) {
    t.add(op, mnem, Fmt::kR2, kOpFp | f_funct7((funct5 << 2)) | fmt | f_rs2(rs2sel),
          kMaskFpUnary, Unit::kFpu, Mix::kFp, 1, 2);
  };
  cvt(Op::kFcvtWS, "fcvt.w.s", 0x18, kFmtS, 0);
  cvt(Op::kFcvtWuS, "fcvt.wu.s", 0x18, kFmtS, 1);
  cvt(Op::kFcvtSW, "fcvt.s.w", 0x1A, kFmtS, 0);
  cvt(Op::kFcvtSWu, "fcvt.s.wu", 0x1A, kFmtS, 1);
  cvt(Op::kFcvtWH, "fcvt.w.h", 0x18, kFmtH, 0);
  cvt(Op::kFcvtWuH, "fcvt.wu.h", 0x18, kFmtH, 1);
  cvt(Op::kFcvtHW, "fcvt.h.w", 0x1A, kFmtH, 0);
  cvt(Op::kFcvtHWu, "fcvt.h.wu", 0x1A, kFmtH, 1);
  cvt(Op::kFcvtSH, "fcvt.s.h", 0x08, kFmtS, 2);
  cvt(Op::kFcvtHS, "fcvt.h.s", 0x08, kFmtH, 0);
  // Classification (funct3 = 001).
  t.add(Op::kFclassS, "fclass.s", Fmt::kR2, kOpFp | f_funct7((0x1C << 2)) | kFmtS | f3m(1),
        kMaskFpUnaryF3, Unit::kFpu, Mix::kFp, 1, 2);
  t.add(Op::kFclassH, "fclass.h", Fmt::kR2, kOpFp | f_funct7((0x1C << 2)) | kFmtH | f3m(1),
        kMaskFpUnaryF3, Unit::kFpu, Mix::kFp, 1, 2);
  // Fused multiply-add family.
  const auto fp4 = [&](Op op, std::string_view mnem, u32 opc, u32 fmt, u8 result) {
    t.add(op, mnem, Fmt::kR4, opc | fmt, kMaskR4, Unit::kFpu, Mix::kFp, 1, result);
  };
  fp4(Op::kFmaddS, "fmadd.s", kFmaddOp, kFmt4S, 4);
  fp4(Op::kFmsubS, "fmsub.s", kFmsubOp, kFmt4S, 4);
  fp4(Op::kFnmsubS, "fnmsub.s", kFnmsubOp, kFmt4S, 4);
  fp4(Op::kFnmaddS, "fnmadd.s", kFnmaddOp, kFmt4S, 4);
  fp4(Op::kFmaddH, "fmadd.h", kFmaddOp, kFmt4H, 3);
  fp4(Op::kFmsubH, "fmsub.h", kFmsubOp, kFmt4H, 3);
  fp4(Op::kFnmsubH, "fnmsub.h", kFnmsubOp, kFmt4H, 3);
  fp4(Op::kFnmaddH, "fnmadd.h", kFnmaddOp, kFmt4H, 3);

  // ----- Xpulpimg: post-increment loads (custom-0) / stores (custom-1) -----
  const auto plo = [&](Op op, std::string_view mnem, u32 f3v) {
    t.add(op, mnem, Fmt::kILoad, kCustom0 | f3m(f3v), kMaskOpF3, Unit::kLsu, Mix::kLoad, 1, 1);
  };
  plo(Op::kPLb, "p.lb", 0);
  plo(Op::kPLh, "p.lh", 1);
  plo(Op::kPLw, "p.lw", 2);
  plo(Op::kPLbu, "p.lbu", 4);
  plo(Op::kPLhu, "p.lhu", 5);
  const auto pst = [&](Op op, std::string_view mnem, u32 f3v) {
    t.add(op, mnem, Fmt::kS, kCustom1 | f3m(f3v), kMaskOpF3, Unit::kLsu, Mix::kStore, 1, 1);
  };
  pst(Op::kPSb, "p.sb", 0);
  pst(Op::kPSh, "p.sh", 1);
  pst(Op::kPSw, "p.sw", 2);

  // ----- Xpulpimg: R-type DSP (custom-2; funct3 0 = .h/scalar, 1 = .b) -----
  const auto pr = [&](Op op, std::string_view mnem, u32 funct7, u32 f3v, u8 result) {
    t.add(op, mnem, Fmt::kR, kCustom2 | f_funct7(funct7) | f3m(f3v), kMaskR, Unit::kAlu,
          Mix::kAlu, 1, result);
  };
  pr(Op::kPMac, "p.mac", 0x00, 0, 3);
  pr(Op::kPMsu, "p.msu", 0x01, 0, 3);
  pr(Op::kPvAddH, "pv.add.h", 0x02, 0, 1);
  pr(Op::kPvAddB, "pv.add.b", 0x02, 1, 1);
  pr(Op::kPvSubH, "pv.sub.h", 0x03, 0, 1);
  pr(Op::kPvSubB, "pv.sub.b", 0x03, 1, 1);
  pr(Op::kPvXorH, "pv.xor.h", 0x04, 0, 1);
  pr(Op::kPvXorB, "pv.xor.b", 0x04, 1, 1);
  pr(Op::kPvAndH, "pv.and.h", 0x05, 0, 1);
  pr(Op::kPvAndB, "pv.and.b", 0x05, 1, 1);
  pr(Op::kPvOrH, "pv.or.h", 0x06, 0, 1);
  pr(Op::kPvOrB, "pv.or.b", 0x06, 1, 1);
  pr(Op::kPvShuffle2H, "pv.shuffle2.h", 0x07, 0, 1);
  pr(Op::kPvShuffle2B, "pv.shuffle2.b", 0x07, 1, 1);
  pr(Op::kPvShuffleH, "pv.shuffle.h", 0x0B, 0, 1);
  pr(Op::kPvShuffleB, "pv.shuffle.b", 0x0B, 1, 1);
  pr(Op::kPvPackH, "pv.pack.h", 0x08, 0, 1);
  t.add(Op::kPvExtractH, "pv.extract.h", Fmt::kPLanes, kCustom2 | f_funct7(0x09) | f3m(0),
        kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);
  t.add(Op::kPvInsertH, "pv.insert.h", Fmt::kPLanes, kCustom2 | f_funct7(0x0A) | f3m(0),
        kMaskR, Unit::kAlu, Mix::kAlu, 1, 1);

  // ----- SmallFloat / MiniFloat packed FP (custom-3; funct3 0 = .h, 1 = .b) -----
  const auto vf = [&](Op op, std::string_view mnem, u32 funct7, u32 f3v, u8 result) {
    t.add(op, mnem, Fmt::kR, kCustom3 | f_funct7(funct7) | f3m(f3v), kMaskR, Unit::kFpu,
          Mix::kSimdFp, 1, result);
  };
  vf(Op::kVfaddH, "vfadd.h", 0x00, 0, 3);
  vf(Op::kVfaddB, "vfadd.b", 0x00, 1, 3);
  vf(Op::kVfsubH, "vfsub.h", 0x01, 0, 3);
  vf(Op::kVfsubB, "vfsub.b", 0x01, 1, 3);
  vf(Op::kVfmulH, "vfmul.h", 0x02, 0, 3);
  vf(Op::kVfmulB, "vfmul.b", 0x02, 1, 3);
  vf(Op::kVfmacH, "vfmac.h", 0x03, 0, 3);
  vf(Op::kVfmacB, "vfmac.b", 0x03, 1, 3);
  vf(Op::kVfdotpexSH, "vfdotpex.s.h", 0x04, 0, 3);
  vf(Op::kVfdotpexHB, "vfdotpex.h.b", 0x04, 1, 3);
  vf(Op::kVfcdotpH, "vfcdotp.h", 0x05, 0, 4);
  vf(Op::kVfccdotpH, "vfccdotp.h", 0x06, 0, 4);
  t.add(Op::kVfcvtHB, "vfcvt.h.b", Fmt::kR2, kCustom3 | f_funct7(0x07) | f3m(0),
        kMaskFpUnaryF3, Unit::kFpu, Mix::kSimdFp, 1, 2);
  t.add(Op::kVfcvtBH, "vfcvt.b.h", Fmt::kR2, kCustom3 | f_funct7(0x07) | f3m(1),
        kMaskFpUnaryF3, Unit::kFpu, Mix::kSimdFp, 1, 2);

  return t.defs;
}

const std::array<InstrDef, kNumOps>& table() {
  static const std::array<InstrDef, kNumOps> kTable = build_table();
  return kTable;
}

}  // namespace

std::span<const InstrDef> isa_table() { return table(); }

const InstrDef& def_of(Op op) { return table()[static_cast<size_t>(op)]; }

const InstrDef* find_mnemonic(std::string_view mnemonic) {
  static const auto kByName = [] {
    std::unordered_map<std::string_view, const InstrDef*> m;
    for (const auto& d : table()) {
      if (d.op != Op::kInvalid) m.emplace(d.mnemonic, &d);
    }
    return m;
  }();
  const auto it = kByName.find(mnemonic);
  return it == kByName.end() ? nullptr : it->second;
}


}  // namespace tsim::rv
