// Memory interface seen by instruction semantics.
//
// Implemented by tera::ClusterMemory (L1 scratchpad + L2 + MMIO). Atomic
// read-modify-write goes through a single `amo` entry point so that
// multi-threaded host execution can implement it with host atomics.
#pragma once

#include "common/types.h"

namespace tsim::rv {

/// Atomic operation selector for AMO instructions.
enum class AmoOp : u8 {
  kSwap, kAdd, kXor, kAnd, kOr, kMin, kMax, kMinu, kMaxu,
};

/// Result of a memory access; `fault` is set on out-of-range or misaligned
/// accesses and halts the hart.
struct MemResult {
  u32 value = 0;
  bool fault = false;
};

class MemIface {
 public:
  virtual ~MemIface() = default;

  /// Zero-extending load of 1/2/4 bytes.
  virtual MemResult load(u32 addr, u32 bytes) = 0;

  /// Store of 1/2/4 bytes. Returns fault status; may trigger MMIO effects.
  virtual bool store(u32 addr, u32 value, u32 bytes) = 0;

  /// Atomic read-modify-write of a 32-bit word; returns the OLD value.
  virtual MemResult amo(AmoOp op, u32 addr, u32 value) = 0;

  /// Instruction fetch (32-bit). Separated so engines can model I$.
  virtual MemResult fetch(u32 addr) = 0;
};

}  // namespace tsim::rv
