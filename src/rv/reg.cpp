#include "rv/reg.h"

#include <cctype>

namespace tsim::rv {
namespace {

constexpr std::array<std::string_view, 32> kNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

}  // namespace

std::string_view reg_name(u8 i) { return kNames[i & 31]; }

std::optional<u8> parse_reg(std::string_view name) {
  if (name.empty()) return std::nullopt;
  // Numeric form: x0..x31.
  if (name[0] == 'x' && name.size() >= 2 && name.size() <= 3) {
    unsigned v = 0;
    for (size_t i = 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) return std::nullopt;
      v = v * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (v < 32) return static_cast<u8>(v);
    return std::nullopt;
  }
  // ABI aliases (incl. "fp" for s0).
  if (name == "fp") return index_of(Reg::s0);
  for (u8 i = 0; i < 32; ++i) {
    if (kNames[i] == name) return i;
  }
  return std::nullopt;
}

}  // namespace tsim::rv
