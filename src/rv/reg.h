// RISC-V integer register file names (RV32 + ABI mnemonics).
//
// TeraPool's Snitch cores implement zfinx/zhinx: floating-point values live
// in the integer register file, so this is the only register namespace.
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "common/types.h"

namespace tsim::rv {

/// Integer register index with ABI aliases.
enum class Reg : u8 {
  // clang-format off
  zero = 0, ra, sp, gp, tp, t0, t1, t2,
  s0, s1, a0, a1, a2, a3, a4, a5,
  a6, a7, s2, s3, s4, s5, s6, s7,
  s8, s9, s10, s11, t3, t4, t5, t6,
  // clang-format on
};

constexpr u8 index_of(Reg r) { return static_cast<u8>(r); }
constexpr Reg reg_of(u8 i) { return static_cast<Reg>(i & 31); }

/// ABI name of register `i` ("zero", "ra", "sp", ...).
std::string_view reg_name(u8 i);

/// Parses "x7", "a0", "s11", ... into a register index.
std::optional<u8> parse_reg(std::string_view name);

}  // namespace tsim::rv
