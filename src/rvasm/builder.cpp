#include "rvasm/builder.h"

#include "rv/encoding.h"

namespace tsim::rvasm {
namespace {

using rv::Decoded;

u8 idx(Reg r) { return rv::index_of(r); }

/// Splits an absolute value into the lui/addi pair: hi20 rounds up when the
/// low 12 bits are negative as an I-immediate.
std::pair<i32, i32> hi_lo(u32 value) {
  const u32 hi = (value + 0x800u) & 0xFFFFF000u;
  const i32 lo = static_cast<i32>(value - hi);
  return {static_cast<i32>(hi), lo};
}

}  // namespace

void Asm::emit(const Decoded& d) { words_.push_back(rv::encode(d)); }

void Asm::label(const std::string& name) {
  check(!labels_.contains(name), "duplicate label: " + name);
  labels_[name] = here();
}

void Asm::r(Op op, Reg rd, Reg rs1, Reg rs2) {
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .rs2 = idx(rs2)});
}

void Asm::r2(Op op, Reg rd, Reg rs1) { emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1)}); }

void Asm::r4(Op op, Reg rd, Reg rs1, Reg rs2, Reg rs3) {
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .rs2 = idx(rs2), .rs3 = idx(rs3)});
}

void Asm::i(Op op, Reg rd, Reg rs1, i32 imm) {
  check(imm >= -2048 && imm <= 2047, "I-immediate out of range");
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .imm = imm});
}

void Asm::shift(Op op, Reg rd, Reg rs1, u32 shamt) {
  check(shamt < 32, "shift amount out of range");
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .imm = static_cast<i32>(shamt)});
}

void Asm::load(Op op, Reg rd, i32 imm, Reg rs1) {
  check(imm >= -2048 && imm <= 2047, "load offset out of range");
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .imm = imm});
}

void Asm::store(Op op, Reg rs2, i32 imm, Reg rs1) {
  check(imm >= -2048 && imm <= 2047, "store offset out of range");
  emit({.op = op, .rs1 = idx(rs1), .rs2 = idx(rs2), .imm = imm});
}

void Asm::branch(Op op, Reg rs1, Reg rs2, const std::string& target) {
  fixups_.push_back({words_.size(), FixKind::kBranch, target});
  emit({.op = op, .rs1 = idx(rs1), .rs2 = idx(rs2), .imm = 0});
}

void Asm::u_type(Op op, Reg rd, i32 imm) { emit({.op = op, .rd = idx(rd), .imm = imm}); }

void Asm::jal(Reg rd, const std::string& target) {
  fixups_.push_back({words_.size(), FixKind::kJal, target});
  emit({.op = Op::kJal, .rd = idx(rd), .imm = 0});
}

void Asm::jalr(Reg rd, Reg rs1, i32 imm) {
  emit({.op = Op::kJalr, .rd = idx(rd), .rs1 = idx(rs1), .imm = imm});
}

void Asm::csrr(Reg rd, u32 csr) {
  emit({.op = Op::kCsrrs, .rd = idx(rd), .rs1 = 0, .imm = static_cast<i32>(csr)});
}

void Asm::csr_rw(Op op, Reg rd, u32 csr, Reg rs1) {
  check(csr < 4096, "CSR number out of range");
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .imm = static_cast<i32>(csr)});
}

void Asm::csr_rwi(Op op, Reg rd, u32 csr, u32 uimm5) {
  check(csr < 4096 && uimm5 < 32, "CSR immediate out of range");
  emit({.op = op,
        .rd = idx(rd),
        .rs1 = static_cast<u8>(uimm5),
        .imm = static_cast<i32>(csr)});
}

void Asm::amo(Op op, Reg rd, Reg rs2, Reg rs1) {
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .rs2 = idx(rs2)});
}

void Asm::lr(Reg rd, Reg rs1) { emit({.op = Op::kLrW, .rd = idx(rd), .rs1 = idx(rs1)}); }

void Asm::sc(Reg rd, Reg rs2, Reg rs1) {
  emit({.op = Op::kScW, .rd = idx(rd), .rs1 = idx(rs1), .rs2 = idx(rs2)});
}

void Asm::lanes(Op op, Reg rd, Reg rs1, u32 lane) {
  emit({.op = op, .rd = idx(rd), .rs1 = idx(rs1), .imm = static_cast<i32>(lane)});
}

void Asm::nullary(Op op) { emit({.op = op}); }

void Asm::li(Reg rd, i32 value) {
  if (value >= -2048 && value <= 2047) {
    addi(rd, Reg::zero, value);
    return;
  }
  const auto [hi, lo] = hi_lo(static_cast<u32>(value));
  u_type(Op::kLui, rd, hi);
  if (lo != 0) addi(rd, rd, lo);
}

void Asm::la(Reg rd, const std::string& sym) {
  // Always two words so the fixup layout is static.
  fixups_.push_back({words_.size(), FixKind::kLuiHi, sym});
  u_type(Op::kLui, rd, 0);
  fixups_.push_back({words_.size(), FixKind::kAddiLo, sym});
  addi(rd, rd, 0);
}

Program Asm::link() {
  for (const auto& fix : fixups_) {
    const auto it = labels_.find(fix.target);
    check(it != labels_.end(), "undefined label: " + fix.target);
    const u32 target = it->second;
    const u32 insn_addr = base_ + static_cast<u32>(fix.word_index * 4);
    u32& w = words_[fix.word_index];
    switch (fix.kind) {
      case FixKind::kBranch: {
        const i32 off = static_cast<i32>(target - insn_addr);
        check(off >= -4096 && off <= 4094 && (off & 1) == 0, "branch target out of range");
        w |= rv::enc_imm_b(off);
        break;
      }
      case FixKind::kJal: {
        const i32 off = static_cast<i32>(target - insn_addr);
        check(off >= -(1 << 20) && off < (1 << 20) && (off & 1) == 0,
              "jal target out of range");
        w |= rv::enc_imm_j(off);
        break;
      }
      case FixKind::kLuiHi: {
        const auto [hi, lo] = hi_lo(target);
        (void)lo;
        w |= rv::enc_imm_u(hi);
        break;
      }
      case FixKind::kAddiLo: {
        const auto [hi, lo] = hi_lo(target);
        (void)hi;
        w |= rv::enc_imm_i(lo);
        break;
      }
    }
  }
  Program p;
  p.base = base_;
  p.words = words_;
  p.symbols = labels_;
  return p;
}

}  // namespace tsim::rvasm
