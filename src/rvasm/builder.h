// Programmatic RISC-V assembler.
//
// This is how DUT software is authored in this repo (no cross-compiler is
// required): kernels call emit methods, labels are resolved at link time,
// and the result is a flat image of genuine RV32 machine words that the ISS
// and the uarch model execute. Convenience wrappers cover the standard
// pseudo-instructions (li/la/mv/j/call/ret/beqz/...).
#pragma once

#include <string>
#include <vector>

#include "rv/inst.h"
#include "rv/reg.h"
#include "rvasm/program.h"

namespace tsim::rvasm {

using rv::Op;
using rv::Reg;

class Asm {
 public:
  explicit Asm(u32 base = 0x8000'0000) : base_(base) {}

  // ---- labels & layout ----
  /// Binds `name` to the current emission address.
  void label(const std::string& name);
  /// Current emission address.
  u32 here() const { return base_ + static_cast<u32>(words_.size() * 4); }

  // ---- generic format emitters ----
  void r(Op op, Reg rd, Reg rs1, Reg rs2);
  void r2(Op op, Reg rd, Reg rs1);
  void r4(Op op, Reg rd, Reg rs1, Reg rs2, Reg rs3);
  void i(Op op, Reg rd, Reg rs1, i32 imm);
  void shift(Op op, Reg rd, Reg rs1, u32 shamt);
  void load(Op op, Reg rd, i32 imm, Reg rs1);
  void store(Op op, Reg rs2, i32 imm, Reg rs1);
  void branch(Op op, Reg rs1, Reg rs2, const std::string& target);
  void u_type(Op op, Reg rd, i32 imm);
  void jal(Reg rd, const std::string& target);
  void jalr(Reg rd, Reg rs1, i32 imm = 0);
  void csrr(Reg rd, u32 csr);                  // csrrs rd, csr, x0
  void csr_rw(Op op, Reg rd, u32 csr, Reg rs1);   // csrrw/csrrs/csrrc
  void csr_rwi(Op op, Reg rd, u32 csr, u32 uimm5);  // immediate forms
  void amo(Op op, Reg rd, Reg rs2, Reg rs1);
  void lr(Reg rd, Reg rs1);
  void sc(Reg rd, Reg rs2, Reg rs1);
  void lanes(Op op, Reg rd, Reg rs1, u32 lane);
  void nullary(Op op);

  // ---- common instruction sugar ----
  void addi(Reg rd, Reg rs1, i32 imm) { i(Op::kAddi, rd, rs1, imm); }
  void add(Reg rd, Reg rs1, Reg rs2) { r(Op::kAdd, rd, rs1, rs2); }
  void sub(Reg rd, Reg rs1, Reg rs2) { r(Op::kSub, rd, rs1, rs2); }
  void slli(Reg rd, Reg rs1, u32 sh) { shift(Op::kSlli, rd, rs1, sh); }
  void srli(Reg rd, Reg rs1, u32 sh) { shift(Op::kSrli, rd, rs1, sh); }
  void mul(Reg rd, Reg rs1, Reg rs2) { r(Op::kMul, rd, rs1, rs2); }
  void lw(Reg rd, i32 imm, Reg rs1) { load(Op::kLw, rd, imm, rs1); }
  void lh(Reg rd, i32 imm, Reg rs1) { load(Op::kLh, rd, imm, rs1); }
  void lhu(Reg rd, i32 imm, Reg rs1) { load(Op::kLhu, rd, imm, rs1); }
  void sw(Reg rs2, i32 imm, Reg rs1) { store(Op::kSw, rs2, imm, rs1); }
  void sh(Reg rs2, i32 imm, Reg rs1) { store(Op::kSh, rs2, imm, rs1); }
  void beq(Reg a, Reg b, const std::string& t) { branch(Op::kBeq, a, b, t); }
  void bne(Reg a, Reg b, const std::string& t) { branch(Op::kBne, a, b, t); }
  void blt(Reg a, Reg b, const std::string& t) { branch(Op::kBlt, a, b, t); }
  void bge(Reg a, Reg b, const std::string& t) { branch(Op::kBge, a, b, t); }
  void bltu(Reg a, Reg b, const std::string& t) { branch(Op::kBltu, a, b, t); }
  void bgeu(Reg a, Reg b, const std::string& t) { branch(Op::kBgeu, a, b, t); }

  // ---- pseudo-instructions ----
  void nop() { addi(Reg::zero, Reg::zero, 0); }
  void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
  void li(Reg rd, i32 value);
  /// Loads the absolute address of `sym` (lui+addi pair, fixed up at link).
  void la(Reg rd, const std::string& sym);
  void j(const std::string& target) { jal(Reg::zero, target); }
  void call(const std::string& target) { jal(Reg::ra, target); }
  void ret() { jalr(Reg::zero, Reg::ra, 0); }
  void beqz(Reg rs, const std::string& t) { beq(rs, Reg::zero, t); }
  void bnez(Reg rs, const std::string& t) { bne(rs, Reg::zero, t); }
  void ebreak() { nullary(Op::kEbreak); }
  void wfi() { nullary(Op::kWfi); }

  // ---- data emission ----
  void word(u32 v) { words_.push_back(v); }
  void half2(u16 lo, u16 hi) { words_.push_back(static_cast<u32>(lo) | (static_cast<u32>(hi) << 16)); }
  void space_words(u32 n) { words_.insert(words_.end(), n, 0u); }

  /// Resolves all label references and returns the linked image.
  Program link();

 private:
  enum class FixKind { kBranch, kJal, kLuiHi, kAddiLo };
  struct Fixup {
    size_t word_index;
    FixKind kind;
    std::string target;
  };

  void emit(const rv::Decoded& d);

  u32 base_;
  std::vector<u32> words_;
  std::unordered_map<std::string, u32> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace tsim::rvasm
