// A linked flat program image: instruction/data words at a base address,
// plus the symbol table produced by the assembler.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace tsim::rvasm {

struct Program {
  u32 base = 0x8000'0000;      // load address (TeraPool L2)
  std::vector<u32> words;      // code + embedded data, word-granular
  std::unordered_map<std::string, u32> symbols;

  u32 size_bytes() const { return static_cast<u32>(words.size() * 4); }
  u32 end() const { return base + size_bytes(); }

  /// Address of a symbol; throws if undefined.
  u32 symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    check(it != symbols.end(), "undefined symbol: " + name);
    return it->second;
  }
};

}  // namespace tsim::rvasm
