#include "rvasm/textasm.h"

#include <charconv>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.h"
#include "rv/reg.h"
#include "rvasm/builder.h"

namespace tsim::rvasm {
namespace {

using rv::Fmt;
using rv::InstrDef;

struct LineError {
  std::string message;
};

std::optional<i64> parse_int(std::string_view s) {
  s = trim(s);
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  int bas = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    bas = 16;
    s.remove_prefix(2);
  }
  u64 v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, bas);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return neg ? -static_cast<i64>(v) : static_cast<i64>(v);
}

/// Named CSRs accepted by csr instructions.
std::optional<u32> parse_csr(std::string_view s) {
  if (s == "mhartid") return 0xF14;
  if (s == "mcycle") return 0xB00;
  if (s == "mcycleh") return 0xB80;
  if (s == "minstret") return 0xB02;
  if (s == "minstreth") return 0xB82;
  const auto v = parse_int(s);
  if (v && *v >= 0 && *v < 4096) return static_cast<u32>(*v);
  return std::nullopt;
}

class TextAssembler {
 public:
  explicit TextAssembler(u32 base) : asm_(base) {}

  void line(std::string_view raw) {
    // Strip comments.
    for (const auto marker : {std::string_view("#"), std::string_view("//")}) {
      if (const auto pos = raw.find(marker); pos != std::string_view::npos)
        raw = raw.substr(0, pos);
    }
    std::string_view s = trim(raw);
    if (s.empty()) return;

    // Labels (possibly followed by an instruction on the same line).
    if (const auto colon = s.find(':'); colon != std::string_view::npos &&
                                        s.substr(0, colon).find(' ') == std::string_view::npos) {
      asm_.label(std::string(trim(s.substr(0, colon))));
      s = trim(s.substr(colon + 1));
      if (s.empty()) return;
    }

    // Directives.
    if (s.starts_with(".word")) {
      const auto v = parse_int(trim(s.substr(5)));
      if (!v) throw LineError{"bad .word operand"};
      asm_.word(static_cast<u32>(*v));
      return;
    }
    if (s.starts_with(".space")) {
      const auto v = parse_int(trim(s.substr(6)));
      if (!v || *v < 0 || (*v % 4) != 0) throw LineError{".space needs a word-multiple size"};
      asm_.space_words(static_cast<u32>(*v / 4));
      return;
    }

    // Mnemonic and operand list.
    const auto sp = s.find_first_of(" \t");
    const std::string mnem = to_lower(sp == std::string_view::npos ? s : s.substr(0, sp));
    const std::string_view rest = sp == std::string_view::npos ? "" : trim(s.substr(sp));
    std::vector<std::string_view> ops;
    for (const auto piece : split_any(rest, ",")) ops.push_back(trim(piece));

    if (pseudo(mnem, ops)) return;

    const InstrDef* def = rv::find_mnemonic(mnem);
    if (def == nullptr) throw LineError{"unknown mnemonic: " + mnem};
    dispatch(*def, ops);
  }

  Program finish() { return asm_.link(); }

 private:
  static Reg reg(std::string_view s) {
    const auto r = rv::parse_reg(trim(s));
    if (!r) throw LineError{"bad register: " + std::string(s)};
    return rv::reg_of(*r);
  }

  static i32 imm(std::string_view s, i64 lo, i64 hi) {
    const auto v = parse_int(s);
    if (!v || *v < lo || *v > hi) throw LineError{"immediate out of range: " + std::string(s)};
    return static_cast<i32>(*v);
  }

  /// Parses "imm(rs1)" or "imm(rs1!)"; returns {imm, reg}.
  static std::pair<i32, Reg> mem_operand(std::string_view s) {
    const auto open = s.find('(');
    const auto close = s.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open)
      throw LineError{"bad memory operand: " + std::string(s)};
    const std::string_view off = trim(s.substr(0, open));
    std::string_view rn = trim(s.substr(open + 1, close - open - 1));
    if (!rn.empty() && rn.back() == '!') rn = trim(rn.substr(0, rn.size() - 1));
    const i32 o = off.empty() ? 0 : imm(off, -2048, 2047);
    return {o, reg(rn)};
  }

  bool pseudo(const std::string& mnem, const std::vector<std::string_view>& ops) {
    if (mnem == "nop") { asm_.nop(); return true; }
    if (mnem == "mv") { need(ops, 2); asm_.mv(reg(ops[0]), reg(ops[1])); return true; }
    if (mnem == "li") {
      need(ops, 2);
      asm_.li(reg(ops[0]), static_cast<i32>(imm64(ops[1])));
      return true;
    }
    if (mnem == "la") { need(ops, 2); asm_.la(reg(ops[0]), std::string(ops[1])); return true; }
    if (mnem == "j") { need(ops, 1); asm_.j(std::string(ops[0])); return true; }
    if (mnem == "call") { need(ops, 1); asm_.call(std::string(ops[0])); return true; }
    if (mnem == "ret") { asm_.ret(); return true; }
    if (mnem == "beqz") { need(ops, 2); asm_.beqz(reg(ops[0]), std::string(ops[1])); return true; }
    if (mnem == "bnez") { need(ops, 2); asm_.bnez(reg(ops[0]), std::string(ops[1])); return true; }
    if (mnem == "csrr") {
      need(ops, 2);
      const auto c = parse_csr(ops[1]);
      if (!c) throw LineError{"bad CSR: " + std::string(ops[1])};
      asm_.csrr(reg(ops[0]), *c);
      return true;
    }
    return false;
  }

  static i64 imm64(std::string_view s) {
    const auto v = parse_int(s);
    if (!v) throw LineError{"bad immediate: " + std::string(s)};
    return *v;
  }

  static void need(const std::vector<std::string_view>& ops, size_t n) {
    if (ops.size() != n) throw LineError{"wrong operand count"};
  }

  void dispatch(const InstrDef& def, const std::vector<std::string_view>& ops) {
    switch (def.fmt) {
      case Fmt::kR:
        need(ops, 3);
        asm_.r(def.op, reg(ops[0]), reg(ops[1]), reg(ops[2]));
        break;
      case Fmt::kR2:
        need(ops, 2);
        asm_.r2(def.op, reg(ops[0]), reg(ops[1]));
        break;
      case Fmt::kR4:
        need(ops, 4);
        asm_.r4(def.op, reg(ops[0]), reg(ops[1]), reg(ops[2]), reg(ops[3]));
        break;
      case Fmt::kI:
        need(ops, 3);
        asm_.i(def.op, reg(ops[0]), reg(ops[1]), imm(ops[2], -2048, 2047));
        break;
      case Fmt::kILoad: {
        need(ops, 2);
        const auto [o, base] = mem_operand(ops[1]);
        asm_.load(def.op, reg(ops[0]), o, base);
        break;
      }
      case Fmt::kIShift:
        need(ops, 3);
        asm_.shift(def.op, reg(ops[0]), reg(ops[1]), static_cast<u32>(imm(ops[2], 0, 31)));
        break;
      case Fmt::kS: {
        need(ops, 2);
        const auto [o, base] = mem_operand(ops[1]);
        asm_.store(def.op, reg(ops[0]), o, base);
        break;
      }
      case Fmt::kB:
        need(ops, 3);
        asm_.branch(def.op, reg(ops[0]), reg(ops[1]), std::string(ops[2]));
        break;
      case Fmt::kU:
        need(ops, 2);
        asm_.u_type(def.op, reg(ops[0]),
                    static_cast<i32>(imm64(ops[1]) << 12));
        break;
      case Fmt::kJ:
        if (ops.size() == 1) {
          asm_.jal(Reg::ra, std::string(ops[0]));
        } else {
          need(ops, 2);
          asm_.jal(reg(ops[0]), std::string(ops[1]));
        }
        break;
      case Fmt::kCsr: {
        need(ops, 3);
        const auto c = parse_csr(ops[1]);
        if (!c) throw LineError{"bad CSR: " + std::string(ops[1])};
        asm_.csr_rw(def.op, reg(ops[0]), *c, reg(ops[2]));
        break;
      }
      case Fmt::kCsrI: {
        need(ops, 3);
        const auto c = parse_csr(ops[1]);
        if (!c) throw LineError{"bad CSR: " + std::string(ops[1])};
        asm_.csr_rwi(def.op, reg(ops[0]), *c, static_cast<u32>(imm(ops[2], 0, 31)));
        break;
      }
      case Fmt::kAmo: {
        need(ops, 3);
        const auto [o, base] = mem_operand(ops[2]);
        if (o != 0) throw LineError{"amo operand must have no offset"};
        asm_.amo(def.op, reg(ops[0]), reg(ops[1]), base);
        break;
      }
      case Fmt::kLrSc: {
        if (def.op == rv::Op::kLrW) {
          need(ops, 2);
          const auto [o, base] = mem_operand(ops[1]);
          if (o != 0) throw LineError{"lr operand must have no offset"};
          asm_.lr(reg(ops[0]), base);
        } else {
          need(ops, 3);
          const auto [o, base] = mem_operand(ops[2]);
          if (o != 0) throw LineError{"sc operand must have no offset"};
          asm_.sc(reg(ops[0]), reg(ops[1]), base);
        }
        break;
      }
      case Fmt::kNullary:
        need(ops, 0);
        asm_.nullary(def.op);
        break;
      case Fmt::kPLanes:
        need(ops, 3);
        asm_.lanes(def.op, reg(ops[0]), reg(ops[1]), static_cast<u32>(imm(ops[2], 0, 31)));
        break;
    }
  }

  Asm asm_;
};

}  // namespace

Program assemble(std::string_view text, u32 base) {
  TextAssembler ta(base);
  size_t line_no = 0;
  size_t start = 0;
  try {
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == '\n') {
        ++line_no;
        ta.line(text.substr(start, i - start));
        start = i + 1;
      }
    }
    return ta.finish();
  } catch (const LineError& e) {
    throw SimError("asm line " + std::to_string(line_no) + ": " + e.message);
  }
}

}  // namespace tsim::rvasm
