// Text-form assembler built on top of the builder API.
//
// Supports all table mnemonics with standard operand syntax, labels,
// `#`/`//` comments, `.word`, and the common pseudo-instructions
// (nop/li/la/mv/j/call/ret/beqz/bnez/csrr). Post-increment addressing uses
// the PULP "imm(rs1!)" notation.
#pragma once

#include <string_view>

#include "rvasm/program.h"

namespace tsim::rvasm {

/// Assembles a full program text. Throws SimError with a line-numbered
/// message on any syntax error or undefined label.
Program assemble(std::string_view text, u32 base = 0x8000'0000);

}  // namespace tsim::rvasm
