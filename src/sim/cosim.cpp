#include "sim/cosim.h"

#include "phy/quantize.h"

namespace tsim::sim {

void stage_problem(tera::ClusterMemory& mem, const kern::MmseLayout& lay, u32 core,
                   u32 problem, const MimoProblem& p) {
  check(p.h.rows() == lay.nrx && p.h.cols() == lay.ntx, "stage_problem: H shape");
  check(p.y.size() == lay.nrx, "stage_problem: y length");
  const bool fp8_inputs = input_elem_bytes(lay.prec) == 2;

  std::vector<u8> block;
  block.reserve(lay.problem_bytes());
  // H, column-major (column = all NRX entries of one user's channel).
  for (u32 c = 0; c < lay.ntx; ++c) {
    for (u32 r = 0; r < lay.nrx; ++r) {
      if (fp8_inputs) {
        phy::append_cf8(block, p.h.at(r, c));
      } else {
        phy::append_cf16(block, p.h.at(r, c));
      }
    }
  }
  // y.
  for (u32 r = 0; r < lay.nrx; ++r) {
    if (fp8_inputs) {
      phy::append_cf8(block, p.y[r]);
    } else {
      phy::append_cf16(block, p.y[r]);
    }
  }
  // sigma^2 as a word-padded fp16 scalar.
  const u16 s16 = static_cast<u16>(sf::F16::from_double(p.sigma2));
  block.push_back(static_cast<u8>(s16));
  block.push_back(static_cast<u8>(s16 >> 8));
  block.push_back(0);
  block.push_back(0);
  mem.host_write(lay.h_addr(core, problem), block);
}

std::vector<phy::cd> read_xhat(const tera::ClusterMemory& mem,
                               const kern::MmseLayout& lay, u32 core, u32 problem) {
  std::vector<u8> raw(lay.x_bytes());
  mem.host_read(lay.x_addr(core, problem), raw);
  std::vector<phy::cd> x(lay.ntx);
  for (u32 i = 0; i < lay.ntx; ++i) x[i] = phy::read_cf16(&raw[i * 4]);
  return x;
}

Batch generate_batch(const phy::Channel& channel, const phy::QamModulator& qam,
                     u32 ntx, u32 num_problems, double snr_db, Rng& rng) {
  Batch batch;
  batch.problems.reserve(num_problems);
  const u32 bits_per_problem = ntx * qam.bits_per_symbol();
  batch.tx_bits.reserve(static_cast<size_t>(num_problems) * bits_per_problem);
  const double sigma2 = phy::Channel::sigma2_from_snr_db(snr_db);

  for (u32 p = 0; p < num_problems; ++p) {
    std::vector<u8> bits(bits_per_problem);
    for (auto& b : bits) b = rng.bit() ? 1 : 0;
    const auto symbols = qam.map_sequence(bits);
    MimoProblem prob;
    prob.h = channel.realize(rng);
    prob.y = channel.transmit(prob.h, symbols, sigma2, rng);
    prob.sigma2 = sigma2;
    batch.problems.push_back(std::move(prob));
    batch.tx_bits.insert(batch.tx_bits.end(), bits.begin(), bits.end());
    batch.tx_symbols.insert(batch.tx_symbols.end(), symbols.begin(), symbols.end());
  }
  return batch;
}

}  // namespace tsim::sim
