// Co-simulation glue: stages MIMO problems into DUT memory in the layout's
// bit-true formats, and reads detection results back (paper Fig. 2a: the
// host model feeds the Banshee-simulated DUT).
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "kernels/layout.h"
#include "phy/channel.h"
#include "phy/qam.h"
#include "tera/memory.h"

namespace tsim::sim {

/// One subcarrier's detection problem.
struct MimoProblem {
  phy::CMat h;               // NRX x NTX channel estimate
  std::vector<phy::cd> y;    // received vector
  double sigma2 = 0.0;       // noise variance estimate
};

/// Writes one problem into (core, problem_index)'s input block. H is staged
/// column-major and quantized to the layout's input precision; sigma^2 is
/// staged as fp16.
void stage_problem(tera::ClusterMemory& mem, const kern::MmseLayout& lay, u32 core,
                   u32 problem, const MimoProblem& p);

/// Reads back the detected symbol vector (complex fp16) of a problem.
std::vector<phy::cd> read_xhat(const tera::ClusterMemory& mem,
                               const kern::MmseLayout& lay, u32 core, u32 problem);

/// Generates a full batch of random problems: per-user random bits, QAM
/// mapping, channel realization and noise at the given SNR. Returns the
/// problems plus the transmitted bits (for BER counting), concatenated in
/// problem order.
struct Batch {
  std::vector<MimoProblem> problems;
  std::vector<u8> tx_bits;   // num_problems * ntx * bits_per_symbol
  std::vector<phy::cd> tx_symbols;  // num_problems * ntx
};

Batch generate_batch(const phy::Channel& channel, const phy::QamModulator& qam,
                     u32 ntx, u32 num_problems, double snr_db, Rng& rng);

}  // namespace tsim::sim
