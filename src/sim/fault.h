// Deterministic fault injection: the knobs and keyed-stream draws that turn
// hart traps, stuck cores, L1 bit upsets, cluster loss, lost FAPI feedback
// and host worker failure into first-class, bit-reproducible simulation
// inputs (carrier-grade uplinks treat all of these as operating conditions,
// not exceptions).
//
// Every fault is scheduled from a stateless Rng::keyed stream keyed by
// (fault seed, site tag, time): the same (config, seed) always injects the
// same faults at the same places, no matter which host thread, shard or
// retry attempt evaluates the site - so a faulted scenario can be re-run,
// bisected, or swept exactly like a traffic seed. Layer hooks:
//
//   ISS       Machine::inject_hart_fault schedules a transient trap or a
//             stuck-hart hang at (hart, instret); the scheduler draws the
//             (hart, instret, kind) per batch run from kFaultHartStream.
//   L1        apply_l1_faults flips bits in the staged operand words, with
//             an optional SECDED ECC model: single-bit upsets are corrected
//             (counted, data intact), double-bit upsets are detected but
//             corrupt the word, ECC-off upsets corrupt silently. Counters
//             flow SlotResult -> CellReport -> farm wire format.
//   cluster   FaultConfig::cluster_fail_tti kills one cluster of the pool
//             from that TTI on; SlotScheduler reassigns its batches to the
//             survivors (locality-aware), flags the slot degraded, and the
//             deadline accounting carries the impact.
//   FAPI      drop/delay draws (kFaultIndStream) lose or postpone a slot's
//             CRC indication; HARQ absorbs the loss via the per-process
//             feedback timeout (HarqConfig::feedback_timeout_slots).
//   host      HostFaultConfig crashes, stalls or garbles a farm shard
//             worker to exercise the supervising runner in mac/farm.h.
//
// The master switch is FaultConfig::enabled: when false every hook above is
// a single always-false branch on a cold path, so fault support costs
// nothing on clean runs (pinned by bench_iss_mips --guard in CI).
#pragma once

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "tera/memory.h"

namespace tsim::sim {

// Keyed-stream site tags of the fault domain (disjoint from every traffic
// tag in src/mac/cell.cpp; the fault seed is further derived per cell).
constexpr u64 kFaultCellStream = 0xFA117CE1;  // per-cell fault-seed derivation
constexpr u64 kFaultHartStream = 0xFA117A27;  // ISS trap/hang draws
constexpr u64 kFaultFlipStream = 0xFA117F11;  // L1 bit-upset draws
constexpr u64 kFaultIndStream = 0xFA1171D0;   // FAPI drop/delay draws

struct FaultConfig {
  static constexpr u32 kNever = ~0u;

  bool enabled = false;  // master switch: false = all hooks compiled to a cold branch
  u64 seed = 0xF417;     // fault stream seed, independent of the traffic seed

  // (a) ISS hart faults, drawn once per batch run.
  double hart_trap_rate = 0.0;  // P(one transient hart trap | batch run)
  double hart_hang_rate = 0.0;  // P(one stuck hart | batch run)

  // (b) L1 word bit upsets, drawn per batch run after operand staging.
  double l1_flip_rate = 0.0;          // expected upset events per batch run
  double l1_double_bit_fraction = 0.25;  // P(2-bit upset | upset event)
  bool ecc = true;                    // SECDED model on the L1 words

  // (c) whole-cluster failure: cluster `cluster_fail_id` is dead from TTI
  // `cluster_fail_tti` onward (kNever = no cluster failure).
  u32 cluster_fail_tti = kNever;
  u32 cluster_fail_id = 0;

  // (d) FAPI SlotIndication faults, drawn once per TTI.
  double drop_indication_rate = 0.0;   // P(indication lost | TTI)
  double delay_indication_rate = 0.0;  // P(indication delayed | TTI)
  u32 delay_slots = 2;                 // delivery delay of a delayed indication

  /// True when any ISS/L1 hook must run inside a batch run.
  bool any_batch_faults() const {
    return enabled && (hart_trap_rate > 0.0 || hart_hang_rate > 0.0 ||
                       l1_flip_rate > 0.0);
  }
  /// True when cluster `c` is dead at TTI `tti`.
  bool cluster_dead(u64 tti, u32 c) const {
    return enabled && cluster_fail_tti != kNever && tti >= cluster_fail_tti &&
           c == cluster_fail_id;
  }
  /// True when any FAPI indication fault can fire.
  bool any_indication_faults() const {
    return enabled &&
           (drop_indication_rate > 0.0 || delay_indication_rate > 0.0);
  }

  /// The per-cell fault seed: cells draw independent fault streams from one
  /// farm-level fault seed, mirroring CellConfig::cell_seed().
  u64 cell_fault_seed(u32 cell) const {
    return Rng::derive_seed(seed, {kFaultCellStream, cell});
  }

  void validate() const {
    const auto rate = [](double r, const char* what) {
      check(r >= 0.0 && r <= 1.0,
            std::string("FaultConfig: ") + what + " must be in [0, 1]");
    };
    rate(hart_trap_rate, "hart_trap_rate");
    rate(hart_hang_rate, "hart_hang_rate");
    rate(l1_double_bit_fraction, "l1_double_bit_fraction");
    rate(drop_indication_rate, "drop_indication_rate");
    rate(delay_indication_rate, "delay_indication_rate");
    check(l1_flip_rate >= 0.0, "FaultConfig: l1_flip_rate must be >= 0");
    check(delay_slots >= 1, "FaultConfig: delay_slots must be >= 1");
  }
};

/// One drawn ISS hart fault (see draw_hart_fault).
struct HartFaultDraw {
  bool fire = false;
  u32 hart = 0;
  u64 at_instret = 0;  // applied when the hart reaches this retired count
  bool hang = false;   // false = transient trap, true = stuck hart
};

/// Window of the scheduled fault instret: small enough that any real kernel
/// run reaches it, so configured rates translate into observed faults.
constexpr u64 kHartFaultInstretWindow = 4096;

/// Draws at most one trap and one hang for a batch run, keyed by
/// (fault seed, site, tti, batch). `index` distinguishes the trap (0) and
/// hang (1) draws; each returns an independent HartFaultDraw.
inline HartFaultDraw draw_hart_fault(const FaultConfig& cfg, u64 tti,
                                     u64 batch, u32 num_harts, bool hang) {
  HartFaultDraw d;
  const double rate = hang ? cfg.hart_hang_rate : cfg.hart_trap_rate;
  if (!cfg.enabled || rate <= 0.0 || num_harts == 0) return d;
  Rng rng = Rng::keyed(cfg.seed,
                       {kFaultHartStream, tti, batch, hang ? u64{1} : u64{0}});
  if (rng.uniform() >= rate) return d;
  d.fire = true;
  d.hang = hang;
  d.hart = static_cast<u32>(rng.below(num_harts));
  d.at_instret = 1 + rng.below(kHartFaultInstretWindow);
  return d;
}

/// SECDED ECC outcome counters of one L1 upset pass.
struct EccCounts {
  u64 corrected = 0;  // single-bit upsets scrubbed by SECDED (data intact)
  u64 detected = 0;   // double-bit upsets flagged but corrupting
  u64 silent = 0;     // upsets with ECC off: undetected corruption

  u64 events() const { return corrected + detected + silent; }
  void merge(const EccCounts& o) {
    corrected += o.corrected;
    detected += o.detected;
    silent += o.silent;
  }
};

/// Applies the batch run's L1 bit upsets to the first `l1_words` interleaved
/// words of `mem` (the staged operand region), keyed by (fault seed, site,
/// tti, batch). Event count is floor(rate) plus a Bernoulli of the fraction;
/// each event picks a word and bit uniformly, and is a double-bit upset with
/// l1_double_bit_fraction probability. With ECC on, single-bit events are
/// corrected in place (counted, word untouched); double-bit events and every
/// ECC-off event flip the drawn bits. Word addresses are interleaved-region
/// byte addresses (word w at address 4*w, see tera/addr_map.h).
inline EccCounts apply_l1_faults(tera::ClusterMemory& mem, u32 l1_words,
                                 const FaultConfig& cfg, u64 tti, u64 batch) {
  EccCounts counts;
  if (!cfg.enabled || cfg.l1_flip_rate <= 0.0 || l1_words == 0) return counts;
  Rng rng = Rng::keyed(cfg.seed, {kFaultFlipStream, tti, batch});
  const double whole = std::floor(cfg.l1_flip_rate);
  u64 events = static_cast<u64>(whole);
  if (rng.uniform() < cfg.l1_flip_rate - whole) ++events;
  for (u64 e = 0; e < events; ++e) {
    const u32 word = static_cast<u32>(rng.below(l1_words));
    const u32 bit = static_cast<u32>(rng.below(32));
    const bool double_bit = rng.uniform() < cfg.l1_double_bit_fraction;
    // Second bit of a double upset: distinct from the first by construction.
    const u32 bit2 = (bit + 1 + static_cast<u32>(rng.below(31))) % 32;
    if (cfg.ecc && !double_bit) {
      counts.corrected += 1;  // SECDED corrects the single-bit upset
      continue;
    }
    const u32 addr = word * 4;
    u32 v = mem.host_read_word(addr) ^ (1u << bit);
    if (double_bit) v ^= (1u << bit2);
    mem.host_write_words(addr, std::span<const u32>(&v, 1));
    if (cfg.ecc) {
      counts.detected += 1;  // double-bit: detected, not correctable
    } else {
      counts.silent += 1;
    }
  }
  return counts;
}

/// One drawn FAPI indication fault (see draw_indication_fault).
struct IndicationFaultDraw {
  bool drop = false;
  u32 delay = 0;  // 0 = deliver in the same TTI
};

/// Draws the fate of TTI `tti`'s SlotIndication: dropped, delayed by
/// delay_slots, or delivered normally. Drop wins over delay when both fire.
inline IndicationFaultDraw draw_indication_fault(const FaultConfig& cfg,
                                                 u64 tti) {
  IndicationFaultDraw d;
  if (!cfg.any_indication_faults()) return d;
  Rng rng = Rng::keyed(cfg.seed, {kFaultIndStream, tti});
  if (cfg.drop_indication_rate > 0.0 &&
      rng.uniform() < cfg.drop_indication_rate) {
    d.drop = true;
    return d;
  }
  if (cfg.delay_indication_rate > 0.0 &&
      rng.uniform() < cfg.delay_indication_rate) {
    d.delay = cfg.delay_slots;
  }
  return d;
}

/// Host-level shard fault injection for the supervising farm runner: these
/// faults live entirely in the worker harness (the simulated cells are
/// untouched), so a retried or inline-fallback shard reproduces its reports
/// byte-identically - the property the recovery contract and CI pin.
struct HostFaultConfig {
  static constexpr u32 kNone = ~0u;

  u32 crash_shard = kNone;   // worker _exits mid-stream with partial JSON
  u32 stall_shard = kNone;   // worker hangs before writing (needs a timeout)
  u32 garble_shard = kNone;  // worker emits truncated JSON and exits 0
  /// Faults fire only while the shard's attempt number is <= this, so a
  /// bounded retry deterministically recovers (attempt numbers are part of
  /// the injection site, not wall-clock luck).
  u32 fault_attempts = 1;

  bool any() const {
    return crash_shard != kNone || stall_shard != kNone || garble_shard != kNone;
  }
  /// True when `kind_shard` faults shard `shard` on 1-based `attempt`.
  bool fires(u32 kind_shard, u32 shard, u32 attempt) const {
    return kind_shard == shard && attempt <= fault_attempts;
  }
};

}  // namespace tsim::sim
