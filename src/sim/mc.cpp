#include "sim/mc.h"

#include "phy/ber.h"
#include "phy/mmse.h"
#include "phy/quantize.h"

namespace tsim::sim {

McRunner::McRunner(const McConfig& cfg)
    : cfg_(cfg), channel_(cfg.channel, cfg.nrx, cfg.ntx), qam_(cfg.qam_order) {}

McRunner::DutContext& McRunner::context_for(kern::Precision prec) {
  auto& slot = contexts_[static_cast<size_t>(prec)];
  if (!slot.has_value()) {
    kern::MmseLayout lay;
    lay.ntx = cfg_.ntx;
    lay.nrx = cfg_.nrx;
    lay.prec = prec;
    lay.problems_per_core = cfg_.problems_per_core;
    lay.cluster = cfg_.cluster;
    u32 cores = cfg_.batch_cores;
    if (cores == 0) {
      // Fit within L1: max_parallel_cores assumes 1 problem/core, so scale.
      const u32 fit = kern::MmseLayout::max_parallel_cores(cfg_.cluster, cfg_.ntx,
                                                           cfg_.nrx, prec);
      cores = std::max(1u, fit / std::max(1u, cfg_.problems_per_core));
    }
    lay.num_cores = std::min(cores, cfg_.cluster.num_cores());
    lay.validate();

    DutContext ctx;
    ctx.layout = lay;
    ctx.machine = std::make_unique<iss::Machine>(cfg_.cluster, iss::TimingConfig{},
                                                 lay.num_cores);
    ctx.machine->load_program(kern::build_mmse_program(lay));
    slot = std::move(ctx);
  }
  return *slot;
}

BerPoint McRunner::golden_point(double snr_db) {
  Rng rng(cfg_.seed ^ 0x60'1D'E0ull);
  phy::BerCounter ber;
  const u32 batch = 64;
  while (ber.errors() < cfg_.target_errors && ber.bits() < cfg_.max_bits) {
    Rng stream = rng.split(ber.bits() + 1);
    const Batch b = generate_batch(channel_, qam_, cfg_.ntx, batch, snr_db, stream);
    for (u32 p = 0; p < batch; ++p) {
      const auto& prob = b.problems[p];
      const auto xhat = phy::mmse_detect(prob.h, prob.y, prob.sigma2);
      const auto rx_bits = qam_.demap_sequence(xhat);
      const size_t nb = rx_bits.size();
      ber.add(std::span(b.tx_bits).subspan(p * nb, nb), rx_bits);
    }
  }
  return {snr_db, ber.ber(), ber.bits(), ber.errors()};
}

BerPoint McRunner::dut_point(kern::Precision prec, double snr_db) {
  DutContext& ctx = context_for(prec);
  const kern::MmseLayout& lay = ctx.layout;
  iss::Machine& machine = *ctx.machine;
  const u32 problems_per_run = lay.num_cores * lay.problems_per_core;

  Rng rng(cfg_.seed ^ (0xD0'7Aull + static_cast<u64>(prec)));
  phy::BerCounter ber;
  while (ber.errors() < cfg_.target_errors && ber.bits() < cfg_.max_bits) {
    Rng stream = rng.split(ber.bits() + 1);
    const Batch b =
        generate_batch(channel_, qam_, cfg_.ntx, problems_per_run, snr_db, stream);
    for (u32 core = 0; core < lay.num_cores; ++core) {
      for (u32 p = 0; p < lay.problems_per_core; ++p) {
        stage_problem(machine.memory(), lay, core, p,
                      b.problems[core * lay.problems_per_core + p]);
      }
    }
    machine.reset_harts();
    const auto result = (cfg_.host_threads > 1) ? machine.run_threads(cfg_.host_threads)
                                                : machine.run();
    check(result.exited && !result.deadlock, "dut_point: DUT run did not complete");
    for (u32 core = 0; core < lay.num_cores; ++core) {
      for (u32 p = 0; p < lay.problems_per_core; ++p) {
        const u32 idx = core * lay.problems_per_core + p;
        const auto xhat = read_xhat(machine.memory(), lay, core, p);
        const auto rx_bits = qam_.demap_sequence(xhat);
        const size_t nb = rx_bits.size();
        ber.add(std::span(b.tx_bits).subspan(idx * nb, nb), rx_bits);
      }
    }
  }
  return {snr_db, ber.ber(), ber.bits(), ber.errors()};
}

std::vector<BerPoint> McRunner::golden_sweep(const std::vector<double>& snrs) {
  std::vector<BerPoint> out;
  out.reserve(snrs.size());
  for (const double s : snrs) out.push_back(golden_point(s));
  return out;
}

std::vector<BerPoint> McRunner::dut_sweep(kern::Precision prec,
                                          const std::vector<double>& snrs) {
  std::vector<BerPoint> out;
  out.reserve(snrs.size());
  for (const double s : snrs) out.push_back(dut_point(prec, s));
  return out;
}

}  // namespace tsim::sim
