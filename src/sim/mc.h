// Monte-Carlo BER extraction with the emulated DUT in the loop (paper
// Sec. V-C): per SNR point, iterate batches of random subcarrier problems
// until a target error count (or a bit budget) is reached.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "kernels/precision.h"
#include "sim/cosim.h"

namespace tsim::sim {

struct McConfig {
  u32 ntx = 4;
  u32 nrx = 4;
  u32 qam_order = 16;
  phy::ChannelType channel = phy::ChannelType::kAwgn;

  u32 target_errors = 200;  // stop once this many bit errors are observed
  u64 max_bits = 4'000'000; // hard bit budget per point
  u64 seed = 0x5EED;

  // DUT batching: problems solved per Machine::run call.
  tera::TeraPoolConfig cluster = tera::TeraPoolConfig::tiny();
  u32 batch_cores = 0;        // 0 = auto (as many as fit)
  u32 problems_per_core = 4;
  u32 host_threads = 1;       // >1 shards harts across host threads
};

struct BerPoint {
  double snr_db = 0.0;
  double ber = 0.0;
  u64 bits = 0;
  u64 errors = 0;
};

class McRunner {
 public:
  explicit McRunner(const McConfig& cfg);

  /// Double-precision reference detector ("64bDouble").
  BerPoint golden_point(double snr_db);

  /// DUT detector in the given precision, bit-true on the emulated cluster.
  BerPoint dut_point(kern::Precision prec, double snr_db);

  /// Sweeps a list of SNR points.
  std::vector<BerPoint> golden_sweep(const std::vector<double>& snrs);
  std::vector<BerPoint> dut_sweep(kern::Precision prec, const std::vector<double>& snrs);

  const McConfig& config() const { return cfg_; }

 private:
  struct DutContext {
    kern::MmseLayout layout;
    std::unique_ptr<iss::Machine> machine;
  };
  DutContext& context_for(kern::Precision prec);

  McConfig cfg_;
  phy::Channel channel_;
  phy::QamModulator qam_;
  std::optional<DutContext> contexts_[5];
};

}  // namespace tsim::sim
