// Plain-text table/CSV reporting used by the benchmark harness to print
// rows matching the paper's tables and figure series.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace tsim::sim {

namespace detail {
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(ch));
      out += buf;
    } else {
      out += ch;
    }
  }
  return out;
}
}  // namespace detail

/// The one JSON-row emitter shared by every trajectory writer (Table::
/// write_json, the bench --json outputs, the DSE driver): a JSON array with
/// one string-keyed object per row, values exactly as rendered in the table.
/// Returns false (with a warning on stderr) when the file cannot be opened.
inline void write_json_rows(std::FILE* f, const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  std::fprintf(f, "[\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "  {");
    for (size_t c = 0; c < rows[r].size() && c < header.size(); ++c) {
      std::fprintf(f, "%s\"%s\": \"%s\"", c == 0 ? "" : ", ",
                   detail::json_escape(header[c]).c_str(),
                   detail::json_escape(rows[r][c]).c_str());
    }
    std::fprintf(f, "}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
}

inline bool write_json_rows(const std::string& path,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  write_json_rows(f, header, rows);
  std::fclose(f);
  return true;
}

/// Parses the exact format write_json_rows emits (an array of flat objects
/// with string keys and string values) back into per-row key/value lists.
/// This is the farm's shard-gather wire format: worker processes stream
/// their per-cell rows through a pipe as JSON and the parent reassembles
/// them (see mac/farm.cpp). Not a general JSON parser: nested values are
/// rejected (returns false), escapes are limited to what json_escape emits.
inline bool parse_json_rows(const std::string& text,
                            std::vector<std::vector<std::pair<std::string, std::string>>>& rows) {
  rows.clear();
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' ||
                               text[i] == '\r' || text[i] == '\t'))
      ++i;
  };
  // Reads a quoted string (cursor on the opening quote) into `out`.
  const auto read_string = [&](std::string& out) -> bool {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    out.clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') {
        if (i + 1 >= text.size()) return false;
        const char esc = text[i + 1];
        if (esc == '"' || esc == '\\') {
          out += esc;
          i += 2;
        } else if (esc == 'u' && i + 5 < text.size()) {
          out += static_cast<char>(std::strtoul(text.substr(i + 2, 4).c_str(),
                                                nullptr, 16));
          i += 6;
        } else {
          return false;
        }
      } else {
        out += text[i++];
      }
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '[') return false;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == ']') return true;  // empty array
  for (;;) {
    skip_ws();
    if (i >= text.size() || text[i] != '{') return false;
    ++i;
    std::vector<std::pair<std::string, std::string>> row;
    skip_ws();
    while (i < text.size() && text[i] != '}') {
      std::string key, value;
      if (!read_string(key)) return false;
      skip_ws();
      if (i >= text.size() || text[i] != ':') return false;
      ++i;
      skip_ws();
      if (!read_string(value)) return false;
      row.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        skip_ws();
      }
    }
    if (i >= text.size()) return false;
    ++i;  // '}'
    rows.push_back(std::move(row));
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  skip_ws();
  return i < text.size() && text[i] == ']';
}

/// Accumulates rows and prints an aligned plain-text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::FILE* out = stdout) const {
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());
    print_row(out, header_, width);
    std::string sep;
    for (size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) sep += "+";
    }
    std::fprintf(out, "%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(out, row, width);
  }

  void write_csv(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    write_csv_row(f, header_);
    for (const auto& row : rows_) write_csv_row(f, row);
    std::fclose(f);
  }

  /// Machine-readable form via the shared write_json_rows emitter. Returns
  /// false when the file cannot be written.
  bool write_json(const std::string& path) const {
    return write_json_rows(path, header_, rows_);
  }

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& row,
                        const std::vector<size_t>& width) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      std::fprintf(out, " %-*s ", static_cast<int>(width[c]), row[c].c_str());
      if (c + 1 < width.size()) std::fprintf(out, "|");
    }
    std::fprintf(out, "\n");
  }
  static void write_csv_row(std::FILE* f, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c)
      std::fprintf(f, "%s%s", row[c].c_str(), c + 1 < row.size() ? "," : "\n");
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style std::string helper for report rows.
inline std::string strf(const char* fmt, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace tsim::sim
