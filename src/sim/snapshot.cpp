#include "sim/snapshot.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define TSIM_SNAPSHOT_HAS_FSYNC 1
#endif

namespace tsim::sim {

namespace {

/// The 24-byte on-disk header (see snapshot.h). Serialized field-by-field,
/// not by struct copy, so padding can never leak host memory into files.
struct Header {
  u32 magic = kSnapshotMagic;
  u32 version = kSnapshotVersion;
  u32 kind = 0;
  u32 payload_crc = 0;
  u64 payload_size = 0;
};
constexpr size_t kHeaderBytes = 24;

std::array<char, kHeaderBytes> encode_header(const Header& h) {
  std::array<char, kHeaderBytes> out{};
  std::memcpy(out.data() + 0, &h.magic, 4);
  std::memcpy(out.data() + 4, &h.version, 4);
  std::memcpy(out.data() + 8, &h.kind, 4);
  std::memcpy(out.data() + 12, &h.payload_crc, 4);
  std::memcpy(out.data() + 16, &h.payload_size, 8);
  return out;
}

Header decode_header(const char* data) {
  Header h;
  std::memcpy(&h.magic, data + 0, 4);
  std::memcpy(&h.version, data + 4, 4);
  std::memcpy(&h.kind, data + 8, 4);
  std::memcpy(&h.payload_crc, data + 12, 4);
  std::memcpy(&h.payload_size, data + 16, 8);
  return h;
}

const std::array<u32, 256>& crc_table() {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// RAII stdio handle so error paths cannot leak the FILE*.
struct File {
  FILE* f = nullptr;
  explicit File(FILE* fp) : f(fp) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

[[noreturn]] void fail_io(const std::string& path, const char* what) {
  throw SimError(path + ": " + what + " (" + std::strerror(errno) + ")");
}

}  // namespace

u32 crc32(const void* data, size_t len, u32 seed) {
  const auto& table = crc_table();
  const u8* p = static_cast<const u8*>(data);
  u32 crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void write_snapshot_file(const std::string& path, u32 kind,
                         const std::string& payload) {
  Header h;
  h.kind = kind;
  h.payload_crc = crc32(payload.data(), payload.size());
  h.payload_size = payload.size();
  const auto header = encode_header(h);

  const std::string tmp = path + ".tmp";
  {
    File file(std::fopen(tmp.c_str(), "wb"));
    if (file.f == nullptr) fail_io(tmp, "cannot create snapshot temp file");
    if (std::fwrite(header.data(), 1, header.size(), file.f) != header.size() ||
        (!payload.empty() &&
         std::fwrite(payload.data(), 1, payload.size(), file.f) !=
             payload.size()))
      fail_io(tmp, "short write");
    if (std::fflush(file.f) != 0) fail_io(tmp, "flush failed");
#ifdef TSIM_SNAPSHOT_HAS_FSYNC
    // Durability before visibility: the rename below must never publish a
    // file whose bytes are still in the page cache of a crashed host.
    if (fsync(fileno(file.f)) != 0) fail_io(tmp, "fsync failed");
#endif
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    fail_io(path, "rename into place failed");
}

std::string read_snapshot_file(const std::string& path, u32 kind) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr)
    throw SimError(path + ": cannot open snapshot (" + std::strerror(errno) +
                   ")");

  std::array<char, kHeaderBytes> raw{};
  const size_t got = std::fread(raw.data(), 1, raw.size(), file.f);
  if (got != raw.size())
    throw SnapshotError(path, got, "truncated snapshot header");
  const Header h = decode_header(raw.data());
  if (h.magic != kSnapshotMagic)
    throw SnapshotError(path, 0, "bad magic (not a snapshot file)");
  if (h.version != kSnapshotVersion)
    throw SnapshotError(path, 4,
                        "unsupported snapshot version " +
                            std::to_string(h.version) + " (expected " +
                            std::to_string(kSnapshotVersion) + ")");
  if (h.kind != kind)
    throw SnapshotError(path, 8,
                        "wrong snapshot kind " + std::to_string(h.kind) +
                            " (expected " + std::to_string(kind) + ")");

  std::string payload(h.payload_size, '\0');
  const size_t read =
      h.payload_size == 0
          ? 0
          : std::fread(payload.data(), 1, payload.size(), file.f);
  if (read != payload.size())
    throw SnapshotError(path, kHeaderBytes + read, "truncated payload");
  // Trailing garbage means the file is not what the header promised.
  char extra;
  if (std::fread(&extra, 1, 1, file.f) != 0)
    throw SnapshotError(path, kHeaderBytes + payload.size(),
                        "trailing bytes after payload");
  const u32 crc = crc32(payload.data(), payload.size());
  if (crc != h.payload_crc)
    throw SnapshotError(path, kHeaderBytes, "payload CRC mismatch");
  return payload;
}

}  // namespace tsim::sim
