// Versioned, CRC-guarded binary snapshot format (ROADMAP "checkpointing").
//
// A snapshot file is a 24-byte header followed by an opaque payload:
//
//   offset  size  field
//        0     4  magic            'TSNP' (0x504E5354)
//        4     4  format version   kSnapshotVersion
//        8     4  kind             caller-chosen payload discriminator
//       12     4  payload CRC-32   ISO-HDLC polynomial, over the payload
//       16     8  payload size     bytes following the header
//
// The payload is produced by a SnapshotWriter and consumed by a
// SnapshotReader: little-endian-on-x86 native integers plus length-prefixed
// strings/vectors, with section tags interleaved so a reader that drifts
// out of sync fails on the next tag instead of silently misparsing. Every
// decode error - truncation, a bad tag, a length that overruns the buffer,
// a failed CRC - is reported as SnapshotError carrying the file and byte
// offset, never UB or a silent wrong restore.
//
// Write discipline is atomic: the payload goes to `<path>.tmp`, is fsynced,
// and then renamed over `<path>`. A crash (or SIGKILL) mid-write leaves
// either the complete previous snapshot or a stale .tmp that no reader
// looks at - a visible `<path>` is always a complete, CRC-consistent file.
//
// The stateful layers each expose save_state(SnapshotWriter&) /
// restore_state(SnapshotReader&) built on this format: tera::ClusterMemory,
// iss::Machine, ran::SlotScheduler, mac::HarqEntity, mac::Cell, and the
// farm's per-cell snapshot files (mac/farm.h). The repo-wide contract those
// entry points implement: capture at a TTI boundary, restore into a freshly
// constructed object of the same configuration in a fresh process, and the
// continuation is bit-identical to an uninterrupted run.
#pragma once

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace tsim::sim {

inline constexpr u32 kSnapshotMagic = 0x504E5354;  // "TSNP"
inline constexpr u32 kSnapshotVersion = 1;

/// A snapshot that cannot be decoded: truncated, corrupted (CRC/tag/length
/// mismatch), the wrong kind, or taken under an incompatible configuration.
/// Carries the file ("<memory>" for in-memory payloads) and the byte offset
/// at which decoding failed.
class SnapshotError : public SimError {
 public:
  SnapshotError(std::string file, u64 offset, const std::string& what)
      : SimError(file + " @" + std::to_string(offset) + ": " + what),
        file_(std::move(file)),
        offset_(offset) {}

  const std::string& file() const { return file_; }
  u64 offset() const { return offset_; }

 private:
  std::string file_;
  u64 offset_;
};

/// CRC-32 (ISO-HDLC / zlib polynomial, reflected, init/xorout 0xFFFFFFFF),
/// table-driven. `seed` chains partial buffers: crc32(b, n, crc32(a, m)).
u32 crc32(const void* data, size_t len, u32 seed = 0);

/// Serializes primitives into a growing byte buffer (the snapshot payload).
class SnapshotWriter {
 public:
  void write_u8(u8 v) { append(&v, 1); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_u32(u32 v) { append(&v, sizeof v); }
  void write_u64(u64 v) { append(&v, sizeof v); }
  void write_i64(i64 v) { append(&v, sizeof v); }
  void write_bytes(const void* data, size_t len) { append(data, len); }

  void write_string(std::string_view s) {
    write_u64(s.size());
    append(s.data(), s.size());
  }
  void write_vec_u8(const std::vector<u8>& v) {
    write_u64(v.size());
    append(v.data(), v.size());
  }
  void write_vec_u32(const std::vector<u32>& v) {
    write_u64(v.size());
    append(v.data(), v.size() * sizeof(u32));
  }
  void write_vec_u64(const std::vector<u64>& v) {
    write_u64(v.size());
    append(v.data(), v.size() * sizeof(u64));
  }

  /// Section marker; SnapshotReader::expect_tag checks it on decode.
  void tag(u32 t) { write_u32(t); }

  const std::string& payload() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void append(const void* data, size_t len) {
    if (len != 0) buf_.append(static_cast<const char*>(data), len);
  }
  std::string buf_;
};

/// Bounds-checked decoder over a snapshot payload. Every overrun or
/// mismatch throws SnapshotError with the source file and byte offset.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string payload, std::string file = "<memory>")
      : buf_(std::move(payload)), file_(std::move(file)) {}

  u8 read_u8() { return take<u8>(); }
  bool read_bool() { return read_u8() != 0; }
  u32 read_u32() { return take<u32>(); }
  u64 read_u64() { return take<u64>(); }
  i64 read_i64() { return take<i64>(); }
  void read_bytes(void* out, size_t len) {
    need(len, "byte run");
    std::memcpy(out, buf_.data() + pos_, len);
    pos_ += len;
  }

  std::string read_string() {
    const u64 n = read_length(1, "string");
    std::string s(buf_.data() + pos_, n);
    pos_ += n;
    return s;
  }
  std::vector<u8> read_vec_u8() { return read_vec<u8>("vec<u8>"); }
  std::vector<u32> read_vec_u32() { return read_vec<u32>("vec<u32>"); }
  std::vector<u64> read_vec_u64() { return read_vec<u64>("vec<u64>"); }

  /// Checks the next u32 equals `t`; `what` names the section in the error.
  void expect_tag(u32 t, const char* what) {
    const u64 at = pos_;
    const u32 got = read_u32();
    if (got != t)
      throw SnapshotError(file_, at,
                          std::string("bad section tag for ") + what);
  }

  /// Fails decoding at the current offset with a semantic error (value out
  /// of range, configuration mismatch, ...).
  [[noreturn]] void fail(const std::string& what) const {
    throw SnapshotError(file_, pos_, what);
  }

  u64 offset() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }
  /// Declares decoding complete; trailing bytes are corruption.
  void expect_end() const {
    if (pos_ != buf_.size())
      throw SnapshotError(file_, pos_, "trailing bytes after payload");
  }
  const std::string& file() const { return file_; }

 private:
  void need(size_t len, const char* what) const {
    if (len > buf_.size() - pos_)
      throw SnapshotError(file_, pos_,
                          std::string("truncated payload reading ") + what);
  }
  template <typename T>
  T take() {
    need(sizeof(T), "integer");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  /// Length prefix of `elem_size`-byte elements, validated against the
  /// remaining payload so a corrupt length cannot drive a huge allocation.
  u64 read_length(size_t elem_size, const char* what) {
    const u64 at = pos_;
    const u64 n = read_u64();
    if (n > (buf_.size() - pos_) / elem_size)
      throw SnapshotError(file_, at,
                          std::string("length overruns payload in ") + what);
    return n;
  }
  template <typename T>
  std::vector<T> read_vec(const char* what) {
    const u64 n = read_length(sizeof(T), what);
    std::vector<T> v(n);
    if (n != 0) {
      std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return v;
  }

  std::string buf_;
  size_t pos_ = 0;
  std::string file_;
};

/// Atomically writes `payload` as a snapshot of `kind` to `path`:
/// `<path>.tmp` + fsync + rename, so a visible file is always complete.
/// Throws SimError on any filesystem failure.
void write_snapshot_file(const std::string& path, u32 kind,
                         const std::string& payload);

/// Reads and verifies a snapshot file (magic, version, kind, size, CRC) and
/// returns its payload. Throws SnapshotError on any mismatch, truncation or
/// corruption; SimError if the file cannot be opened.
std::string read_snapshot_file(const std::string& path, u32 kind);

}  // namespace tsim::sim
