// Bit-true narrow floating-point formats (IEEE-754 style): binary16 and the
// SmallFloat/MiniFloat 8-bit formats used by the TeraPool ISA extensions.
//
// Encoding/decoding is exact bit manipulation. Arithmetic is performed in
// IEEE double and rounded once to the target format (round-to-nearest-even).
// This is the standard emulator shortcut; it is exact for add/sub/mul of
// narrow formats (their products and sums are exactly representable in
// double) and correct for fused ops except for a documented corner: when a
// 3-term sum has an addend more than 52 bits below the leading term AND the
// leading terms land exactly on a rounding tie, the tie may be broken as
// ties-to-even instead of by the vanishing addend. This cannot affect the
// paper's BER or timing experiments and is excluded from tests.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/types.h"

namespace tsim::sf {

namespace detail {
/// Exact powers of two for the decode fast path. Multiplying an integer-
/// valued double by an exact power of two is exact (no rounding), so this
/// is bit-identical to std::ldexp while staying inlinable - ldexp is an
/// out-of-line libm call on the hottest path of the packed-FP emulation.
constexpr int kPow2Min = -160;
constexpr int kPow2Max = 160;
inline constexpr std::array<double, kPow2Max - kPow2Min + 1> kPow2 = [] {
  std::array<double, kPow2Max - kPow2Min + 1> t{};
  for (int e = kPow2Min; e <= kPow2Max; ++e) {
    // Assemble the double directly: 2^e has a zero mantissa and biased
    // exponent e + 1023 (always normal in this range).
    t[static_cast<size_t>(e - kPow2Min)] =
        std::bit_cast<double>(static_cast<u64>(e + 1023) << 52);
  }
  return t;
}();
inline double exact_scale(double mant, int e) {
  return mant * kPow2[static_cast<size_t>(e - kPow2Min)];
}
}  // namespace detail

/// Result category for FCLASS-style classification.
enum class FpClass : u32 {
  kNegInf = 1u << 0,
  kNegNormal = 1u << 1,
  kNegSubnormal = 1u << 2,
  kNegZero = 1u << 3,
  kPosZero = 1u << 4,
  kPosSubnormal = 1u << 5,
  kPosNormal = 1u << 6,
  kPosInf = 1u << 7,
  kSignalingNan = 1u << 8,
  kQuietNan = 1u << 9,
};

/// Static description of a sign/exponent/mantissa mini-float format.
///
/// The value with biased exponent 0 is subnormal; all-ones exponent encodes
/// inf/NaN, exactly as IEEE-754 binary interchange formats.
template <int kExpBits, int kMantBits>
struct MiniFormat {
  static_assert(kExpBits >= 2 && kExpBits <= 8);
  static_assert(kMantBits >= 1 && kMantBits <= 10);

  static constexpr int kBits = 1 + kExpBits + kMantBits;
  static constexpr int kBias = (1 << (kExpBits - 1)) - 1;
  static constexpr u32 kExpMask = (1u << kExpBits) - 1u;
  static constexpr u32 kMantMask = (1u << kMantBits) - 1u;
  static constexpr u32 kSignBit = 1u << (kExpBits + kMantBits);
  static constexpr u32 kValueMask = (kBits >= 32) ? 0xFFFFFFFFu : ((1u << kBits) - 1u);
  /// Canonical quiet NaN: exponent all ones, mantissa MSB set.
  static constexpr u32 kQuietNanBits = (kExpMask << kMantBits) | (1u << (kMantBits - 1));
  static constexpr u32 kPosInfBits = kExpMask << kMantBits;

  /// Decodes the low kBits of `enc` into an exact double.
  static double to_double(u32 enc) {
    enc &= kValueMask;
    const bool sign = (enc & kSignBit) != 0;
    const u32 exp = (enc >> kMantBits) & kExpMask;
    const u32 mant = enc & kMantMask;
    double mag;
    if (exp == kExpMask) {
      if (mant != 0) return std::numeric_limits<double>::quiet_NaN();
      mag = std::numeric_limits<double>::infinity();
    } else if (exp == 0) {
      // Exponent range here is within [-136, 117] for every MiniFormat
      // (static_asserts above), safely inside the exact_scale table.
      mag = detail::exact_scale(static_cast<double>(mant), 1 - kBias - kMantBits);
    } else {
      mag = detail::exact_scale(static_cast<double>(mant | (kMantMask + 1u)),
                                static_cast<int>(exp) - kBias - kMantBits);
    }
    return sign ? -mag : mag;
  }

  /// Encodes `d` with round-to-nearest-even, overflow to infinity.
  static u32 from_double(double d) {
    const u64 dbits = std::bit_cast<u64>(d);
    const u32 sign = static_cast<u32>(dbits >> 63) << (kExpBits + kMantBits);
    const int dexp = static_cast<int>((dbits >> 52) & 0x7FF);
    const u64 dmant = dbits & ((1ull << 52) - 1);

    if (dexp == 0x7FF) {
      if (dmant != 0) return kQuietNanBits;  // NaN (canonicalized, sign dropped)
      return sign | kPosInfBits;             // +-inf
    }
    if (dexp == 0 && dmant == 0) return sign;  // +-0

    // Significand as a 53-bit integer; value = mant53 * 2^(unbiased - 52).
    // Double subnormals (< 2^-1022) underflow every mini format to zero.
    if (dexp == 0) return sign;
    const u64 mant53 = (1ull << 52) | dmant;
    const int unbiased = dexp - 1023;

    const int min_normal_exp = 1 - kBias;
    int biased;
    int shift;  // number of low bits of mant53 dropped by rounding
    if (unbiased >= min_normal_exp) {
      biased = unbiased + kBias;
      shift = 52 - kMantBits;
    } else {
      biased = 0;
      shift = (52 - kMantBits) + (min_normal_exp - unbiased);
    }
    if (shift > 62) return sign;  // magnitude far below half the smallest subnormal

    // Round-to-nearest-even on the dropped bits.
    u64 keep = mant53 >> shift;
    const u64 rem = mant53 & ((1ull << shift) - 1);
    const u64 half = 1ull << (shift - 1);
    if (rem > half || (rem == half && (keep & 1))) ++keep;

    if (biased == 0) {
      // Subnormal result; rounding may promote to the smallest normal.
      if (keep > kMantMask) return sign | (1u << kMantBits);
      return sign | static_cast<u32>(keep);
    }
    if (keep == (kMantMask + 1u) * 2) {  // carry out of the significand
      keep >>= 1;
      ++biased;
    }
    if (biased >= static_cast<int>(kExpMask)) return sign | kPosInfBits;  // overflow
    return sign | (static_cast<u32>(biased) << kMantBits) |
           (static_cast<u32>(keep) & kMantMask);
  }

  static bool is_nan(u32 enc) {
    enc &= kValueMask;
    return ((enc >> kMantBits) & kExpMask) == kExpMask && (enc & kMantMask) != 0;
  }

  static bool is_inf(u32 enc) {
    enc &= kValueMask;
    return ((enc >> kMantBits) & kExpMask) == kExpMask && (enc & kMantMask) == 0;
  }

  static bool is_zero(u32 enc) { return (enc & kValueMask & ~kSignBit) == 0; }

  static bool sign_of(u32 enc) { return (enc & kSignBit) != 0; }

  /// FCLASS bitmask for the encoded value.
  static u32 classify(u32 enc) {
    enc &= kValueMask;
    const bool neg = sign_of(enc);
    const u32 exp = (enc >> kMantBits) & kExpMask;
    const u32 mant = enc & kMantMask;
    if (exp == kExpMask) {
      if (mant == 0) return static_cast<u32>(neg ? FpClass::kNegInf : FpClass::kPosInf);
      // Mantissa MSB set => quiet NaN (IEEE-754 convention).
      return static_cast<u32>((mant >> (kMantBits - 1)) != 0 ? FpClass::kQuietNan
                                                             : FpClass::kSignalingNan);
    }
    if (exp == 0) {
      if (mant == 0) return static_cast<u32>(neg ? FpClass::kNegZero : FpClass::kPosZero);
      return static_cast<u32>(neg ? FpClass::kNegSubnormal : FpClass::kPosSubnormal);
    }
    return static_cast<u32>(neg ? FpClass::kNegNormal : FpClass::kPosNormal);
  }
};

/// IEEE-754 binary16.
using F16 = MiniFormat<5, 10>;
/// MiniFloat e4m3 (default FP8 of this repo; see DESIGN.md on the paper's 1-4-2).
using F8E4M3 = MiniFormat<4, 3>;
/// SmallFloat binary8 (e5m2).
using F8E5M2 = MiniFormat<5, 2>;
/// Literal paper format "1b sign, 4b exponent, 2b mantissa" (7 bits, stored in 8).
using F8E4M2 = MiniFormat<4, 2>;

// ---------------------------------------------------------------------------
// Generic arithmetic: compute in double, round once into the target format.
// ---------------------------------------------------------------------------

template <typename Fmt>
u32 add(u32 a, u32 b) {
  return Fmt::from_double(Fmt::to_double(a) + Fmt::to_double(b));
}

template <typename Fmt>
u32 sub(u32 a, u32 b) {
  return Fmt::from_double(Fmt::to_double(a) - Fmt::to_double(b));
}

template <typename Fmt>
u32 mul(u32 a, u32 b) {
  return Fmt::from_double(Fmt::to_double(a) * Fmt::to_double(b));
}

template <typename Fmt>
u32 div(u32 a, u32 b) {
  return Fmt::from_double(Fmt::to_double(a) / Fmt::to_double(b));
}

template <typename Fmt>
u32 sqrt(u32 a) {
  return Fmt::from_double(std::sqrt(Fmt::to_double(a)));
}

/// Fused multiply-add: round(a * b + c) with a single rounding.
template <typename Fmt>
u32 fma(u32 a, u32 b, u32 c) {
  return Fmt::from_double(
      std::fma(Fmt::to_double(a), Fmt::to_double(b), Fmt::to_double(c)));
}

/// IEEE 754-2019 minimumNumber: NaN loses to a number, -0 < +0.
template <typename Fmt>
u32 min(u32 a, u32 b) {
  if (Fmt::is_nan(a) && Fmt::is_nan(b)) return Fmt::kQuietNanBits;
  if (Fmt::is_nan(a)) return b & Fmt::kValueMask;
  if (Fmt::is_nan(b)) return a & Fmt::kValueMask;
  const double da = Fmt::to_double(a), db = Fmt::to_double(b);
  if (da == db) return (Fmt::sign_of(a) ? a : b) & Fmt::kValueMask;  // prefer -0
  return (da < db ? a : b) & Fmt::kValueMask;
}

/// IEEE 754-2019 maximumNumber.
template <typename Fmt>
u32 max(u32 a, u32 b) {
  if (Fmt::is_nan(a) && Fmt::is_nan(b)) return Fmt::kQuietNanBits;
  if (Fmt::is_nan(a)) return b & Fmt::kValueMask;
  if (Fmt::is_nan(b)) return a & Fmt::kValueMask;
  const double da = Fmt::to_double(a), db = Fmt::to_double(b);
  if (da == db) return (Fmt::sign_of(a) ? b : a) & Fmt::kValueMask;  // prefer +0
  return (da > db ? a : b) & Fmt::kValueMask;
}

template <typename Fmt>
bool eq(u32 a, u32 b) {
  if (Fmt::is_nan(a) || Fmt::is_nan(b)) return false;
  return Fmt::to_double(a) == Fmt::to_double(b);
}

template <typename Fmt>
bool lt(u32 a, u32 b) {
  if (Fmt::is_nan(a) || Fmt::is_nan(b)) return false;
  return Fmt::to_double(a) < Fmt::to_double(b);
}

template <typename Fmt>
bool le(u32 a, u32 b) {
  if (Fmt::is_nan(a) || Fmt::is_nan(b)) return false;
  return Fmt::to_double(a) <= Fmt::to_double(b);
}

/// Sign-injection family (FSGNJ / FSGNJN / FSGNJX).
template <typename Fmt>
u32 sgnj(u32 a, u32 b) {
  return (a & ~Fmt::kSignBit & Fmt::kValueMask) | (b & Fmt::kSignBit);
}
template <typename Fmt>
u32 sgnjn(u32 a, u32 b) {
  return (a & ~Fmt::kSignBit & Fmt::kValueMask) | (~b & Fmt::kSignBit);
}
template <typename Fmt>
u32 sgnjx(u32 a, u32 b) {
  return ((a & Fmt::kValueMask) ^ (b & Fmt::kSignBit));
}

/// Convert to signed 32-bit integer, round toward zero (FCVT.W.* default).
template <typename Fmt>
i32 to_i32(u32 a) {
  const double d = Fmt::to_double(a);
  if (std::isnan(d)) return std::numeric_limits<i32>::max();
  if (d >= 2147483647.0) return std::numeric_limits<i32>::max();
  if (d <= -2147483648.0) return std::numeric_limits<i32>::min();
  return static_cast<i32>(d);
}

/// Convert to unsigned 32-bit integer, round toward zero.
template <typename Fmt>
u32 to_u32(u32 a) {
  const double d = Fmt::to_double(a);
  if (std::isnan(d)) return std::numeric_limits<u32>::max();
  if (d >= 4294967295.0) return std::numeric_limits<u32>::max();
  if (d <= 0.0) return 0;
  return static_cast<u32>(d);
}

template <typename Fmt>
u32 from_i32(i32 v) {
  return Fmt::from_double(static_cast<double>(v));
}

template <typename Fmt>
u32 from_u32(u32 v) {
  return Fmt::from_double(static_cast<double>(v));
}

/// Cross-format conversion with a single rounding.
template <typename Dst, typename Src>
u32 convert(u32 a) {
  if (Src::is_nan(a)) return Dst::kQuietNanBits;
  return Dst::from_double(Src::to_double(a));
}

// ---------------------------------------------------------------------------
// binary32 helpers (zfinx scalar float ops use host IEEE float directly).
// ---------------------------------------------------------------------------

inline float f32_from_bits(u32 b) { return std::bit_cast<float>(b); }
inline u32 f32_to_bits(float f) { return std::bit_cast<u32>(f); }

/// FCLASS.S over a binary32 encoding.
u32 classify_f32(u32 enc);

/// round-to-nearest-even float from double (single rounding for f32 results
/// computed exactly in double).
inline u32 f32_round_from_double(double d) { return f32_to_bits(static_cast<float>(d)); }

}  // namespace tsim::sf
