// Packed SIMD views over 32-bit registers, as used by the Xpulpimg and
// SmallFloat/MiniFloat vector extensions: two 16-bit lanes or four 8-bit
// lanes per register. Lane 0 is the least-significant lane.
#pragma once

#include "common/types.h"
#include "softfloat/minifloat.h"

namespace tsim::sf {

/// Extracts 16-bit lane `i` (0 = low half-word).
constexpr u16 lane16(u32 reg, unsigned i) { return static_cast<u16>(reg >> (16 * i)); }

/// Extracts 8-bit lane `i` (0 = low byte).
constexpr u8 lane8(u32 reg, unsigned i) { return static_cast<u8>(reg >> (8 * i)); }

/// Builds a register from two 16-bit lanes.
constexpr u32 pack16(u16 lo, u16 hi) {
  return static_cast<u32>(lo) | (static_cast<u32>(hi) << 16);
}

/// Builds a register from four 8-bit lanes.
constexpr u32 pack8(u8 b0, u8 b1, u8 b2, u8 b3) {
  return static_cast<u32>(b0) | (static_cast<u32>(b1) << 8) |
         (static_cast<u32>(b2) << 16) | (static_cast<u32>(b3) << 24);
}

/// Replaces 16-bit lane `i` of `reg` with `v`.
constexpr u32 insert16(u32 reg, unsigned i, u16 v) {
  const u32 shift = 16 * i;
  return (reg & ~(0xFFFFu << shift)) | (static_cast<u32>(v) << shift);
}

/// Replaces 8-bit lane `i` of `reg` with `v`.
constexpr u32 insert8(u32 reg, unsigned i, u8 v) {
  const u32 shift = 8 * i;
  return (reg & ~(0xFFu << shift)) | (static_cast<u32>(v) << shift);
}

/// Complex fp16 value packed as (re = lane0, im = lane1).
struct Cf16 {
  u16 re = 0;
  u16 im = 0;

  static Cf16 from_reg(u32 reg) { return {lane16(reg, 0), lane16(reg, 1)}; }
  u32 to_reg() const { return pack16(re, im); }

  double re_d() const { return F16::to_double(re); }
  double im_d() const { return F16::to_double(im); }
};

}  // namespace tsim::sf
