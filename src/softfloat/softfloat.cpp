#include "softfloat/minifloat.h"

namespace tsim::sf {

u32 classify_f32(u32 enc) {
  const bool neg = (enc >> 31) != 0;
  const u32 exp = (enc >> 23) & 0xFF;
  const u32 mant = enc & 0x7FFFFF;
  if (exp == 0xFF) {
    if (mant == 0) return static_cast<u32>(neg ? FpClass::kNegInf : FpClass::kPosInf);
    return static_cast<u32>((mant >> 22) != 0 ? FpClass::kQuietNan : FpClass::kSignalingNan);
  }
  if (exp == 0) {
    if (mant == 0) return static_cast<u32>(neg ? FpClass::kNegZero : FpClass::kPosZero);
    return static_cast<u32>(neg ? FpClass::kNegSubnormal : FpClass::kPosSubnormal);
  }
  return static_cast<u32>(neg ? FpClass::kNegNormal : FpClass::kPosNormal);
}

}  // namespace tsim::sf
