// TeraPool address map and physical bank routing.
//
// Regions (word-granular routing):
//   0x0000_0000 +l1    L1 interleaved : consecutive words stripe across ALL
//                      cluster banks (MemPool-style), so bulk vectors spread
//                      evenly (paper Fig. 4: y, sigma, x, H).
//   0x1000_0000 +l1    L1 sequential  : same physical banks, tile-major
//                      addressing, so a block stays inside one tile
//                      (paper Fig. 4: per-core intermediates G, L).
//   0x4000_0000        MMIO           : exit / putchar / wake registers.
//   0x8000_0000 +l2    L2             : program image and bulk data.
#pragma once

#include <bit>
#include <optional>

#include "tera/config.h"

namespace tsim::tera {

constexpr u32 kL1InterleavedBase = 0x0000'0000;
constexpr u32 kL1SequentialBase = 0x1000'0000;
constexpr u32 kMmioBase = 0x4000'0000;
constexpr u32 kL2Base = 0x8000'0000;

constexpr u32 kMmioExit = kMmioBase + 0x0;     // store: halt all, low byte = code
constexpr u32 kMmioPutchar = kMmioBase + 0x4;  // store: append low byte to console
constexpr u32 kMmioWake = kMmioBase + 0x8;     // store: wake hart id, ~0u = all
constexpr u32 kMmioScratch = kMmioBase + 0xC;  // plain MMIO scratch register

/// Where a physical access landed, for timing purposes.
enum class Space : u8 { kL1, kL2, kMmio };

struct Route {
  Space space = Space::kL1;
  u32 bank = 0;        // L1: global bank index
  u32 tile = 0;        // L1: owning tile
  u32 phys_word = 0;   // index into the backing word array (L1 or L2)
};

/// Pure address decoding for a cluster configuration.
class AddrMap {
 public:
  explicit AddrMap(const TeraPoolConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
    bank_words_ = cfg_.tile_l1_bytes / 4 / cfg_.banks_per_tile;
    l1_bytes_ = cfg_.l1_bytes();
    // Power-of-two bank counts (every practical topology) let the per-access
    // bank routing use shifts instead of integer division - this is the
    // hottest address-decode path of both simulation engines.
    num_banks_ = cfg_.num_banks();
    banks_pow2_ = is_pow2(num_banks_);
    bank_shift_ = banks_pow2_ ? static_cast<u32>(std::countr_zero(num_banks_)) : 0;
  }

  const TeraPoolConfig& config() const { return cfg_; }

  /// Total words of L1 backing storage.
  u32 l1_words() const { return cfg_.l1_bytes() / 4; }
  u32 l2_words() const { return cfg_.l2_bytes / 4; }

  /// Routes a byte address. Returns nullopt for unmapped addresses.
  std::optional<Route> route(u32 addr) const {
    if (addr < l1_bytes_) return route_interleaved(addr);  // hottest case first
    if (addr >= kL2Base) {
      const u32 off = addr - kL2Base;
      if (off >= cfg_.l2_bytes) return std::nullopt;
      return Route{Space::kL2, 0, 0, off / 4};
    }
    if (addr >= kMmioBase) {
      if (addr - kMmioBase >= 0x1000) return std::nullopt;
      return Route{Space::kMmio, 0, 0, (addr - kMmioBase) / 4};
    }
    if (addr >= kL1SequentialBase) {
      const u32 off = addr - kL1SequentialBase;
      if (off >= l1_bytes_) return std::nullopt;
      return route_sequential(off);
    }
    return std::nullopt;
  }

  /// Interleaved region: word i lives in bank (i mod nbanks).
  Route route_interleaved(u32 off) const {
    const u32 wi = off / 4;
    u32 bank, slot;
    if (banks_pow2_) {
      bank = wi & (num_banks_ - 1);
      slot = wi >> bank_shift_;
    } else {
      bank = wi % num_banks_;
      slot = wi / num_banks_;
    }
    return Route{Space::kL1, bank, bank / cfg_.banks_per_tile, bank * bank_words_ + slot};
  }

  /// Sequential region: tile-major; words interleave across that tile's
  /// banks only, so a contiguous block stays tile-local.
  Route route_sequential(u32 off) const {
    const u32 tile = off / cfg_.tile_l1_bytes;
    const u32 wt = (off % cfg_.tile_l1_bytes) / 4;
    const u32 bank = tile * cfg_.banks_per_tile + (wt % cfg_.banks_per_tile);
    const u32 slot = wt / cfg_.banks_per_tile;
    return Route{Space::kL1, bank, tile, bank * bank_words_ + slot};
  }

  /// Base byte address of `tile`'s scratchpad in the sequential region.
  u32 tile_sequential_base(u32 tile) const {
    return kL1SequentialBase + tile * cfg_.tile_l1_bytes;
  }

 private:
  TeraPoolConfig cfg_;
  u32 bank_words_ = 0;
  u32 l1_bytes_ = 0;
  u32 num_banks_ = 0;
  bool banks_pow2_ = false;
  u32 bank_shift_ = 0;
};

}  // namespace tsim::tera
