// TeraPool address map and physical bank routing.
//
// Regions (word-granular routing):
//   0x0000_0000 +l1    L1 interleaved : consecutive words stripe across ALL
//                      cluster banks (MemPool-style), so bulk vectors spread
//                      evenly (paper Fig. 4: y, sigma, x, H).
//   0x1000_0000 +l1    L1 sequential  : same physical banks, tile-major
//                      addressing, so a block stays inside one tile
//                      (paper Fig. 4: per-core intermediates G, L).
//   0x4000_0000        MMIO           : exit / putchar / wake registers.
//   0x8000_0000 +l2    L2             : program image and bulk data.
//
// Host backing-store layout (de-interleaved)
// -------------------------------------------
// `Route::phys_word` indexes the host word array backing L1. The store is
// laid out so that DUT-consecutive words of the INTERLEAVED region are
// host-contiguous: `phys_word(interleaved word wi) == wi`. The DUT-visible
// semantics are unchanged - `bank`/`tile` are still derived exactly as
// before and drive all timing (NUMA distance in the fast ISS, bank-conflict
// accounting in the cycle-accurate model); only where a word *lives on the
// host* moved. Bank striping is therefore a pure view transform of the
// routing, not a property of the storage, which makes host-side bulk access
// (program staging, DMA, result readback) and the ISS's sweeps over DUT
// vectors plain contiguous memcpys/loops instead of bank-strided gathers.
//
// The sequential region addresses the SAME physical words as the seed
// layout did: sequential (bank b, word-in-bank s) aliases interleaved word
// s*num_banks + b, so `phys_word(sequential) = s*num_banks + b`. Aliasing
// between the two views is bit-for-bit the seed relation (pinned by
// tera_test).
#pragma once

#include <bit>
#include <optional>

#include "tera/config.h"

namespace tsim::tera {

constexpr u32 kL1InterleavedBase = 0x0000'0000;
constexpr u32 kL1SequentialBase = 0x1000'0000;
constexpr u32 kMmioBase = 0x4000'0000;
constexpr u32 kL2Base = 0x8000'0000;

constexpr u32 kMmioExit = kMmioBase + 0x0;     // store: halt all, low byte = code
constexpr u32 kMmioPutchar = kMmioBase + 0x4;  // store: append low byte to console
constexpr u32 kMmioWake = kMmioBase + 0x8;     // store: wake hart id, ~0u = all
constexpr u32 kMmioScratch = kMmioBase + 0xC;  // plain MMIO scratch register

/// Where a physical access landed, for timing purposes.
enum class Space : u8 { kL1, kL2, kMmio };

struct Route {
  Space space = Space::kL1;
  u32 bank = 0;        // L1: global bank index
  u32 tile = 0;        // L1: owning tile
  u32 phys_word = 0;   // index into the backing word array (L1 or L2)
};

/// Pure address decoding for a cluster configuration.
class AddrMap {
 public:
  explicit AddrMap(const TeraPoolConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
    l1_bytes_ = cfg_.l1_bytes();
    // Power-of-two bank counts (every practical topology) let the per-access
    // bank routing use masks instead of integer modulo - this is the
    // hottest address-decode path of both simulation engines.
    num_banks_ = cfg_.num_banks();
    banks_pow2_ = is_pow2(num_banks_);
  }

  const TeraPoolConfig& config() const { return cfg_; }

  /// Total words of L1 backing storage.
  u32 l1_words() const { return cfg_.l1_bytes() / 4; }
  u32 l2_words() const { return cfg_.l2_bytes / 4; }

  /// Routes a byte address. Returns nullopt for unmapped addresses.
  std::optional<Route> route(u32 addr) const {
    if (addr < l1_bytes_) return route_interleaved(addr);  // hottest case first
    if (addr >= kL2Base) {
      const u32 off = addr - kL2Base;
      if (off >= cfg_.l2_bytes) return std::nullopt;
      return Route{Space::kL2, 0, 0, off / 4};
    }
    if (addr >= kMmioBase) {
      if (addr - kMmioBase >= 0x1000) return std::nullopt;
      return Route{Space::kMmio, 0, 0, (addr - kMmioBase) / 4};
    }
    if (addr >= kL1SequentialBase) {
      const u32 off = addr - kL1SequentialBase;
      if (off >= l1_bytes_) return std::nullopt;
      return route_sequential(off);
    }
    return std::nullopt;
  }

  /// Interleaved region: word i lives in bank (i mod nbanks). The bank is a
  /// timing-only view transform; the word itself is stored at host index i,
  /// so DUT-consecutive interleaved words are host-contiguous.
  Route route_interleaved(u32 off) const {
    const u32 wi = off / 4;
    const u32 bank = banks_pow2_ ? (wi & (num_banks_ - 1)) : (wi % num_banks_);
    return Route{Space::kL1, bank, bank / cfg_.banks_per_tile, wi};
  }

  /// Sequential region: tile-major; words interleave across that tile's
  /// banks only, so a contiguous block stays tile-local. Physical storage is
  /// shared with the interleaved view: (bank, word-in-bank slot) is the
  /// interleaved word slot*num_banks + bank, preserving the seed aliasing
  /// relation between the two views word-for-word.
  Route route_sequential(u32 off) const {
    const u32 tile = off / cfg_.tile_l1_bytes;
    const u32 wt = (off % cfg_.tile_l1_bytes) / 4;
    const u32 bank = tile * cfg_.banks_per_tile + (wt % cfg_.banks_per_tile);
    const u32 slot = wt / cfg_.banks_per_tile;
    return Route{Space::kL1, bank, tile, slot * num_banks_ + bank};
  }

  /// Base byte address of `tile`'s scratchpad in the sequential region.
  u32 tile_sequential_base(u32 tile) const {
    return kL1SequentialBase + tile * cfg_.tile_l1_bytes;
  }

 private:
  TeraPoolConfig cfg_;
  u32 l1_bytes_ = 0;
  u32 num_banks_ = 0;
  bool banks_pow2_ = false;
};

}  // namespace tsim::tera
