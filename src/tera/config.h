// TeraPool cluster topology and latency parameters (paper Sec. II).
//
// Defaults model the full TeraPool-SDR: 1024 Snitch cores in 128 Tiles
// (8 cores + 32 KiB scratchpad + 4 KiB I$ each), 8 Tiles per SubGroup,
// 4 SubGroups per Group, 4 Groups per Cluster, 4 MiB shared L1, and
// non-uniform access latencies bounded by 9 cycles without contention.
#pragma once

#include "common/error.h"
#include "common/types.h"

namespace tsim::tera {

struct TeraPoolConfig {
  u32 cores_per_tile = 8;
  u32 tiles_per_subgroup = 8;
  u32 subgroups_per_group = 4;
  u32 groups = 4;

  u32 tile_l1_bytes = 32 * 1024;  // shared scratchpad per tile
  u32 banks_per_tile = 16;        // word-interleaved SRAM banks
  u32 icache_bytes = 4 * 1024;    // per-tile instruction cache
  u32 icache_line_bytes = 32;
  u32 l2_bytes = 32 * 1024 * 1024;

  // Zero-contention access latencies by NUMA distance (cycles, round-trip
  // to load-use). The paper quotes "less than 9 cycles without contentions".
  u32 lat_local_tile = 1;
  u32 lat_same_subgroup = 3;
  u32 lat_same_group = 5;
  u32 lat_remote_group = 9;
  u32 lat_l2 = 25;

  u32 tiles_per_group() const { return tiles_per_subgroup * subgroups_per_group; }
  u32 num_tiles() const { return tiles_per_group() * groups; }
  u32 num_cores() const { return num_tiles() * cores_per_tile; }
  u32 num_banks() const { return num_tiles() * banks_per_tile; }
  u32 l1_bytes() const { return num_tiles() * tile_l1_bytes; }

  u32 tile_of_core(u32 core) const { return core / cores_per_tile; }
  u32 subgroup_of_tile(u32 tile) const { return tile / tiles_per_subgroup; }
  u32 group_of_tile(u32 tile) const { return tile / tiles_per_group(); }

  /// Zero-contention latency for a request from `core` to a bank in `tile`.
  u32 numa_latency(u32 core, u32 tile) const {
    const u32 core_tile = tile_of_core(core);
    if (core_tile == tile) return lat_local_tile;
    if (subgroup_of_tile(core_tile) == subgroup_of_tile(tile)) return lat_same_subgroup;
    if (group_of_tile(core_tile) == group_of_tile(tile)) return lat_same_group;
    return lat_remote_group;
  }

  void validate() const {
    check(cores_per_tile > 0 && tiles_per_subgroup > 0 && subgroups_per_group > 0 &&
              groups > 0,
          "TeraPoolConfig: topology dimensions must be positive");
    check(is_pow2(banks_per_tile) && is_pow2(tile_l1_bytes),
          "TeraPoolConfig: banks and tile L1 size must be powers of two");
    check(tile_l1_bytes % (banks_per_tile * 4) == 0,
          "TeraPoolConfig: tile L1 must divide evenly into word banks");
  }

  /// A small configuration for fast unit tests: 2x2x2x2 = 16 cores.
  static TeraPoolConfig tiny() {
    TeraPoolConfig c;
    c.cores_per_tile = 2;
    c.tiles_per_subgroup = 2;
    c.subgroups_per_group = 2;
    c.groups = 2;
    c.tile_l1_bytes = 16 * 1024;
    c.banks_per_tile = 4;
    c.l2_bytes = 4 * 1024 * 1024;
    return c;
  }

  /// The full paper configuration (1024 cores).
  static TeraPoolConfig full() { return TeraPoolConfig{}; }
};

}  // namespace tsim::tera
