#include "tera/dma.h"

#include <vector>

namespace tsim::tera {

u64 Dma::transfer(u32 dst, u32 src, u32 bytes) {
  std::vector<u8> buf(bytes);
  mem_.host_read(src, buf);
  mem_.host_write(dst, buf);
  const u64 cycles = cfg_.setup_cycles + ceil_div(bytes, cfg_.bus_bytes_per_cycle);
  busy_cycles_ += cycles;
  return cycles;
}

}  // namespace tsim::tera
