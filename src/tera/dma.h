// Cluster DMA engine model: explicit L2 <-> L1 block transfers.
//
// The paper's workloads preload operands so that "the allocation of data in
// L2 ... does not require relocating elements after explicit DMA transfers
// to L1" - i.e. the DMA performs straight linear copies. This model performs
// the copy functionally and reports a first-order cycle cost so examples and
// benches can account for transfer time.
#pragma once

#include "tera/memory.h"

namespace tsim::tera {

struct DmaConfig {
  u32 setup_cycles = 20;     // descriptor programming + engine start
  u32 bus_bytes_per_cycle = 64;  // AXI data width at the cluster port
};

class Dma {
 public:
  Dma(ClusterMemory& mem, DmaConfig cfg = {}) : mem_(mem), cfg_(cfg) {}

  /// Copies `bytes` from `src` to `dst` (any mapped, non-MMIO regions) and
  /// returns the modeled transfer time in DUT cycles.
  u64 transfer(u32 dst, u32 src, u32 bytes);

  /// Total cycles spent in all transfers so far.
  u64 busy_cycles() const { return busy_cycles_; }

 private:
  ClusterMemory& mem_;
  DmaConfig cfg_;
  u64 busy_cycles_ = 0;
};

}  // namespace tsim::tera
