#include "tera/memory.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace tsim::tera {

ClusterMemory::ClusterMemory(const TeraPoolConfig& cfg)
    : map_(cfg), l1_(map_.l1_words(), 0), l2_(map_.l2_words(), 0), mmio_(0x1000 / 4, 0) {}


void ClusterMemory::mmio_store(u32 word_index, u32 value) {
  const u32 addr = kMmioBase + word_index * 4;
  switch (addr) {
    case kMmioExit:
      if (on_exit_) on_exit_(value);
      break;
    case kMmioPutchar:
      console_.push_back(static_cast<char>(value & 0xFF));
      break;
    case kMmioWake:
      if (on_wake_) on_wake_(value);
      break;
    default:
      atomic_store_word(mmio_[word_index], value);
      break;
  }
}


rv::MemResult ClusterMemory::amo(rv::AmoOp op, u32 addr, u32 value) {
  const auto r = map_.route(addr);
  if (!r) return {0, true};
  u32& slot = (r->space == Space::kL1)   ? l1_[r->phys_word]
              : (r->space == Space::kL2) ? l2_[r->phys_word]
                                         : mmio_[r->phys_word];
  std::atomic_ref<u32> ref(slot);
  using rv::AmoOp;
  switch (op) {
    case AmoOp::kSwap: return {ref.exchange(value, std::memory_order_acq_rel), false};
    case AmoOp::kAdd: return {ref.fetch_add(value, std::memory_order_acq_rel), false};
    case AmoOp::kXor: return {ref.fetch_xor(value, std::memory_order_acq_rel), false};
    case AmoOp::kAnd: return {ref.fetch_and(value, std::memory_order_acq_rel), false};
    case AmoOp::kOr: return {ref.fetch_or(value, std::memory_order_acq_rel), false};
    case AmoOp::kMin:
    case AmoOp::kMax:
    case AmoOp::kMinu:
    case AmoOp::kMaxu: {
      u32 old = ref.load(std::memory_order_acquire);
      while (true) {
        u32 next = old;
        switch (op) {
          case AmoOp::kMin:
            next = (static_cast<i32>(value) < static_cast<i32>(old)) ? value : old;
            break;
          case AmoOp::kMax:
            next = (static_cast<i32>(value) > static_cast<i32>(old)) ? value : old;
            break;
          case AmoOp::kMinu: next = value < old ? value : old; break;
          default: next = value > old ? value : old; break;
        }
        if (ref.compare_exchange_weak(old, next, std::memory_order_acq_rel)) return {old, false};
      }
    }
  }
  return {0, true};
}

rv::MemResult ClusterMemory::fetch(u32 addr) {
  if ((addr & 3) != 0) return {0, true};
  return load(addr, 4);
}

// Both bulk regions are host-contiguous: the interleaved L1 view stores
// word i at l1_[i] (bank striping is a routing view transform, see
// addr_map.h) and L2 always was a flat array. Host-side bulk access over
// either region is therefore a single memcpy; only the tile-major
// sequential view still needs the per-word route loop.
const u32* ClusterMemory::contiguous_words(u32 addr, size_t nwords) const {
  const u64 end = static_cast<u64>(addr) + static_cast<u64>(nwords) * 4;
  if (addr < kL1SequentialBase && end <= static_cast<u64>(map_.l1_words()) * 4)
    return l1_.data() + addr / 4;
  if (addr >= kL2Base && end - kL2Base <= static_cast<u64>(map_.l2_words()) * 4)
    return l2_.data() + (addr - kL2Base) / 4;
  return nullptr;
}

void ClusterMemory::host_write(u32 addr, std::span<const u8> bytes) {
  if constexpr (std::endian::native == std::endian::little) {
    // Byte offset k of a contiguous word region is host byte k on a
    // little-endian host, so byte spans copy directly too.
    const u32 base = addr & ~3u;
    const size_t span = (addr - base) + bytes.size();
    if (const u32* w = contiguous_words(base, (span + 3) / 4)) {
      std::memcpy(const_cast<u8*>(reinterpret_cast<const u8*>(w)) + (addr & 3),
                  bytes.data(), bytes.size());
      return;
    }
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    const u32 a = addr + static_cast<u32>(i);
    const auto r = map_.route(a);
    check(r.has_value() && r->space != Space::kMmio, "host_write: unmapped address");
    u32& slot = (r->space == Space::kL1) ? l1_[r->phys_word] : l2_[r->phys_word];
    const u32 shift = (a & 3) * 8;
    slot = (slot & ~(0xFFu << shift)) | (static_cast<u32>(bytes[i]) << shift);
  }
}

void ClusterMemory::host_read(u32 addr, std::span<u8> out) const {
  if constexpr (std::endian::native == std::endian::little) {
    const u32 base = addr & ~3u;
    const size_t span = (addr - base) + out.size();
    if (const u32* w = contiguous_words(base, (span + 3) / 4)) {
      std::memcpy(out.data(), reinterpret_cast<const u8*>(w) + (addr & 3), out.size());
      return;
    }
  }
  for (size_t i = 0; i < out.size(); ++i) {
    const u32 a = addr + static_cast<u32>(i);
    const auto r = map_.route(a);
    check(r.has_value(), "host_read: unmapped address");
    const u32 word = word_load(*r);
    out[i] = static_cast<u8>(word >> ((a & 3) * 8));
  }
}

void ClusterMemory::host_write_words(u32 addr, std::span<const u32> words) {
  check((addr & 3) == 0, "host_write_words: unaligned");
  if (const u32* w = contiguous_words(addr, words.size())) {
    std::memcpy(const_cast<u32*>(w), words.data(), words.size() * 4);
    return;
  }
  for (size_t i = 0; i < words.size(); ++i) {
    const auto r = map_.route(addr + static_cast<u32>(i * 4));
    check(r.has_value() && r->space != Space::kMmio, "host_write_words: unmapped");
    u32& slot = (r->space == Space::kL1) ? l1_[r->phys_word] : l2_[r->phys_word];
    slot = words[i];
  }
}

u32 ClusterMemory::host_read_word(u32 addr) const {
  check((addr & 3) == 0, "host_read_word: unaligned");
  const auto r = map_.route(addr);
  check(r.has_value(), "host_read_word: unmapped");
  return word_load(*r);
}

void ClusterMemory::load_program(u32 base, std::span<const u32> words) {
  host_write_words(base, words);
}

void ClusterMemory::reset_l1() {
  std::fill(l1_.begin(), l1_.end(), 0u);
  std::fill(mmio_.begin(), mmio_.end(), 0u);
  console_.clear();
}

namespace {
constexpr u32 kMemoryTag = 0x314D454D;  // "MEM1"
}

namespace {

// Guest memories are serialized with a zero-run-length encoding: an idle L2
// is almost entirely zero words, and snapshot cost is bound by bytes pushed
// through write+fsync, so storing zero runs as counts instead of payload is
// what keeps periodic checkpointing within the soak-overhead budget.
//
// Format: u64 total word count, then records of
//   u64 zero_run, u64 literal_run, literal_run raw u32 words
// until the total is covered. A literal run may contain short interior zero
// gaps (fewer than kMinZeroRun words) so sparse-but-live regions don't
// explode into per-word records.
constexpr size_t kMinZeroRun = 32;

void write_mem_words(sim::SnapshotWriter& w, const std::vector<u32>& v) {
  const size_t n = v.size();
  w.write_u64(n);
  size_t i = 0;
  while (i < n) {
    size_t z = i;
    while (z < n && v[z] == 0) ++z;
    // Extend the literal until a zero run long enough to be worth a record.
    size_t k = z;
    size_t zeros = 0;
    while (k < n) {
      if (v[k] == 0) {
        if (++zeros >= kMinZeroRun) break;
      } else {
        zeros = 0;
      }
      ++k;
    }
    size_t e = k;
    while (e > z && v[e - 1] == 0) --e;
    w.write_u64(z - i);
    w.write_u64(e - z);
    if (e > z) w.write_bytes(v.data() + z, (e - z) * sizeof(u32));
    i = (e > z) ? e : z;
  }
}

void read_mem_words(sim::SnapshotReader& r, std::vector<u32>& out,
                    size_t expected_words) {
  const u64 n = r.read_u64();
  if (n != expected_words)
    r.fail("memory snapshot sizes do not match this configuration");
  std::vector<u32> v(expected_words, 0);
  u64 pos = 0;
  while (pos < n) {
    const u64 zero_run = r.read_u64();
    const u64 literal_run = r.read_u64();
    if (zero_run > n - pos) r.fail("memory snapshot zero run overflows region");
    pos += zero_run;
    if (literal_run > n - pos)
      r.fail("memory snapshot literal run overflows region");
    if (zero_run == 0 && literal_run == 0)
      r.fail("memory snapshot contains an empty run record");
    r.read_bytes(v.data() + pos, literal_run * sizeof(u32));
    pos += literal_run;
  }
  out = std::move(v);
}

}  // namespace

void ClusterMemory::save_state(sim::SnapshotWriter& w) const {
  w.tag(kMemoryTag);
  write_mem_words(w, l1_);
  write_mem_words(w, l2_);
  write_mem_words(w, mmio_);
  w.write_string(console_);
}

void ClusterMemory::restore_state(sim::SnapshotReader& r) {
  r.expect_tag(kMemoryTag, "ClusterMemory");
  read_mem_words(r, l1_, l1_.size());
  read_mem_words(r, l2_, l2_.size());
  read_mem_words(r, mmio_, mmio_.size());
  console_ = r.read_string();
}

}  // namespace tsim::tera
