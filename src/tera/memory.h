// Cluster memory system: L1 scratchpad banks + L2 + MMIO, implementing the
// rv::MemIface used by instruction semantics.
//
// Thread-safety: word accesses use relaxed std::atomic_ref (free on x86);
// sub-word stores merge via CAS; AMOs are genuine host atomics. This lets
// multiple host threads execute disjoint groups of harts concurrently, with
// the DUT software's own barriers (amoadd + wfi/wake) as the only
// synchronization - mirroring how Banshee runs harts on parallel threads.
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "rv/mem_iface.h"
#include "tera/addr_map.h"

namespace tsim::tera {

class ClusterMemory final : public rv::MemIface {
 public:
  explicit ClusterMemory(const TeraPoolConfig& cfg);

  // ---- rv::MemIface ----
  rv::MemResult load(u32 addr, u32 bytes) override;
  bool store(u32 addr, u32 value, u32 bytes) override;
  rv::MemResult amo(rv::AmoOp op, u32 addr, u32 value) override;
  rv::MemResult fetch(u32 addr) override;

  // ---- host-side access (no MMIO side effects, handles interleaving) ----
  void host_write(u32 addr, std::span<const u8> bytes);
  void host_read(u32 addr, std::span<u8> out) const;
  void host_write_words(u32 addr, std::span<const u32> words);
  u32 host_read_word(u32 addr) const;

  /// Loads a program image into L2 (or wherever its base points).
  void load_program(u32 base, std::span<const u32> words);

  /// Zeroes L1 and the console; L2 is preserved.
  void reset_l1();

  // ---- MMIO observers ----
  /// Invoked on a store to the exit register (argument: exit code).
  void set_exit_handler(std::function<void(u32)> fn) { on_exit_ = std::move(fn); }
  /// Invoked on a store to the wake register (argument: hart id or ~0u).
  void set_wake_handler(std::function<void(u32)> fn) { on_wake_ = std::move(fn); }

  const std::string& console() const { return console_; }
  const AddrMap& map() const { return map_; }

 private:
  u32 word_load(const Route& r) const;
  void word_store(const Route& r, u32 value);
  void mmio_store(u32 word_index, u32 value);

  AddrMap map_;
  std::vector<u32> l1_;
  std::vector<u32> l2_;
  std::vector<u32> mmio_;
  std::string console_;
  std::function<void(u32)> on_exit_;
  std::function<void(u32)> on_wake_;
};

}  // namespace tsim::tera
