// Cluster memory system: L1 scratchpad banks + L2 + MMIO, implementing the
// rv::MemIface used by instruction semantics.
//
// Thread-safety: word accesses use relaxed std::atomic_ref (free on x86);
// sub-word stores merge via CAS; AMOs are genuine host atomics. This lets
// multiple host threads execute disjoint groups of harts concurrently, with
// the DUT software's own barriers (amoadd + wfi/wake) as the only
// synchronization - mirroring how Banshee runs harts on parallel threads.
//
// The load/store/amo hot paths are defined inline here: the ISS calls them
// through the concrete ClusterMemory type (devirtualized by the rv::execute
// template), so keeping the bodies visible lets the compiler inline the
// route + atomic access into the instruction dispatch loop.
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "rv/mem_iface.h"
#include "sim/snapshot.h"
#include "tera/addr_map.h"

namespace tsim::tera {

class ClusterMemory final : public rv::MemIface {
 public:
  explicit ClusterMemory(const TeraPoolConfig& cfg);

  // ---- rv::MemIface ----
  rv::MemResult load(u32 addr, u32 bytes) override {
    const auto r = map_.route(addr);
    if (!r) return {0, true};
    const u32 word = word_load(*r);
    const u32 shift = (addr & 3) * 8;
    switch (bytes) {
      case 1: return {(word >> shift) & 0xFF, false};
      case 2: return {(word >> shift) & 0xFFFF, false};
      default: return {word, false};
    }
  }

  bool store(u32 addr, u32 value, u32 bytes) override {
    const auto r = map_.route(addr);
    if (!r) return true;
    if (bytes == 4) {
      word_store(*r, value);
      return false;
    }
    if (r->space == Space::kMmio) {
      // Sub-word MMIO stores behave as word stores of the (masked) value.
      mmio_store(r->phys_word, value);
      return false;
    }
    u32& slot = (r->space == Space::kL1) ? l1_[r->phys_word] : l2_[r->phys_word];
    atomic_merge(slot, addr & 3, value, bytes);
    return false;
  }

  rv::MemResult amo(rv::AmoOp op, u32 addr, u32 value) override;
  rv::MemResult fetch(u32 addr) override;

  // ---- host-side access (no MMIO side effects, handles interleaving) ----
  void host_write(u32 addr, std::span<const u8> bytes);
  void host_read(u32 addr, std::span<u8> out) const;
  void host_write_words(u32 addr, std::span<const u32> words);
  u32 host_read_word(u32 addr) const;

  /// Loads a program image into L2 (or wherever its base points).
  void load_program(u32 base, std::span<const u32> words);

  /// Zeroes L1 and the console; L2 is preserved.
  void reset_l1();

  // ---- checkpoint/restore (sim/snapshot.h) ----
  /// Serializes the complete memory contents (L1 + L2 + MMIO backing words
  /// and the console). Call between runs only - no hart may be executing.
  void save_state(sim::SnapshotWriter& w) const;
  /// Restores contents captured by save_state into a memory of the same
  /// configuration (identical region sizes); throws sim::SnapshotError on a
  /// size mismatch or corrupt payload. MMIO handlers are untouched.
  void restore_state(sim::SnapshotReader& r);

  // ---- MMIO observers ----
  /// Invoked on a store to the exit register (argument: exit code).
  void set_exit_handler(std::function<void(u32)> fn) { on_exit_ = std::move(fn); }
  /// Invoked on a store to the wake register (argument: hart id or ~0u).
  void set_wake_handler(std::function<void(u32)> fn) { on_wake_ = std::move(fn); }

  const std::string& console() const { return console_; }
  const AddrMap& map() const { return map_; }

 private:
  /// Relaxed atomic word view over plain storage. x86 codegen is a plain
  /// mov; the atomicity only matters when host threads shard harts.
  static u32 atomic_load_word(const u32& slot) {
    return std::atomic_ref<u32>(const_cast<u32&>(slot)).load(std::memory_order_relaxed);
  }
  static void atomic_store_word(u32& slot, u32 v) {
    std::atomic_ref<u32>(slot).store(v, std::memory_order_relaxed);
  }
  /// Merges `bytes` of `value` into `slot` at byte offset `off` atomically.
  static void atomic_merge(u32& slot, u32 off, u32 value, u32 bytes) {
    const u32 shift = off * 8;
    const u32 mask = (bytes == 1 ? 0xFFu : 0xFFFFu) << shift;
    std::atomic_ref<u32> ref(slot);
    u32 old = ref.load(std::memory_order_relaxed);
    const u32 insert = (value << shift) & mask;
    while (!ref.compare_exchange_weak(old, (old & ~mask) | insert,
                                      std::memory_order_relaxed)) {
    }
  }

  u32 word_load(const Route& r) const {
    switch (r.space) {
      case Space::kL1: return atomic_load_word(l1_[r.phys_word]);
      case Space::kL2: return atomic_load_word(l2_[r.phys_word]);
      case Space::kMmio: return atomic_load_word(mmio_[r.phys_word]);
    }
    return 0;
  }
  void word_store(const Route& r, u32 value) {
    switch (r.space) {
      case Space::kL1: atomic_store_word(l1_[r.phys_word], value); break;
      case Space::kL2: atomic_store_word(l2_[r.phys_word], value); break;
      case Space::kMmio: mmio_store(r.phys_word, value); break;
    }
  }
  void mmio_store(u32 word_index, u32 value);  // cold: exit/putchar/wake

  /// Backing words for [addr, addr + 4*nwords) when that range is entirely
  /// inside a host-contiguous region (interleaved L1 or L2); else nullptr.
  const u32* contiguous_words(u32 addr, size_t nwords) const;

  AddrMap map_;
  std::vector<u32> l1_;
  std::vector<u32> l2_;
  std::vector<u32> mmio_;
  std::string console_;
  std::function<void(u32)> on_exit_;
  std::function<void(u32)> on_wake_;
};

}  // namespace tsim::tera
