#include "uarch/cluster_sim.h"

#include <algorithm>

#include "common/error.h"
#include "rv/exec.h"

namespace tsim::uarch {
namespace {

// Format/op predicates shared with the fast ISS (single source of truth).
using iss::TranslationCache;
constexpr auto writes_rd = [](rv::Fmt fmt) {
  return TranslationCache::format_writes_rd(fmt);
};
constexpr auto is_post_increment_load = [](rv::Op op) {
  return TranslationCache::is_post_increment_load(op);
};

bool is_mem_mix(rv::Mix m) {
  return m == rv::Mix::kLoad || m == rv::Mix::kStore || m == rv::Mix::kAmo;
}

}  // namespace

ClusterSim::ClusterSim(const tera::TeraPoolConfig& cluster, UarchConfig cfg,
                       u32 active_cores)
    : cluster_(cluster),
      cfg_(cfg),
      mem_(std::make_unique<tera::ClusterMemory>(cluster)),
      cores_(active_cores == 0 ? cluster.num_cores() : active_cores),
      tiles_(cluster.num_tiles()),
      bank_free_(cluster.num_banks(), 0),
      bank_stats_(cluster.num_banks()) {
  const u32 nlines = cluster_.icache_bytes / cluster_.icache_line_bytes;
  for (auto& tile : tiles_) {
    tile.icache_tags.assign(nlines, 0);
    tile.icache_valid.assign(nlines, false);
  }
  for (auto& core : cores_) core.lsu_slots.assign(cfg_.lsu_outstanding, 0);
  mem_->set_exit_handler([this](u32 code) { on_exit(code); });
  mem_->set_wake_handler([this](u32 target) { pending_wakes_.push_back(target); });
}

void ClusterSim::load_program(const rvasm::Program& prog) {
  mem_->load_program(prog.base, prog.words);
  tcache_ = iss::TranslationCache(prog);
  const auto it = prog.symbols.find("_start");
  entry_pc_ = it != prog.symbols.end() ? it->second : prog.base;
  reset();
}

void ClusterSim::reset() {
  now_ = 0;
  stop_ = false;
  exited_ = false;
  exit_code_ = 0;
  l2_port_free_ = 0;
  pending_wakes_.clear();
  std::fill(bank_free_.begin(), bank_free_.end(), 0);
  for (auto& b : bank_stats_) b = BankStats{};
  for (auto& tile : tiles_) {
    std::fill(tile.icache_valid.begin(), tile.icache_valid.end(), false);
    tile.refill_port_free = 0;
  }
  for (auto& slot : wheel_) slot.clear();
  live_cores_ = num_cores();
  for (u32 i = 0; i < num_cores(); ++i) {
    Core& c = cores_[i];
    c.state = rv::HartState{};
    c.state.hartid = i;
    c.state.pc = entry_pc_;
    c.ready.fill(0);
    c.from_mem.fill(false);
    c.next_time = 0;
    c.scheduled = false;
    c.sleep_since = 0;
    c.wake_pending = false;
    c.div_busy_until = 0;
    std::fill(c.lsu_slots.begin(), c.lsu_slots.end(), 0);
    c.stats = CoreStats{};
  }
}

void ClusterSim::on_exit(u32 code) {
  exited_ = true;
  exit_code_ = code;
  stop_ = true;
}

void ClusterSim::schedule(u32 core, u64 time) {
  Core& c = cores_[core];
  check(!c.scheduled, "uarch: core double-scheduled");
  check(time > now_, "uarch: cannot schedule into the past or present");
  // The wheel covers kWheelSize cycles; longer waits re-enter via a hop.
  const u64 slot_time = std::min(time, now_ + kWheelSize - 1);
  c.next_time = time;
  c.scheduled = true;
  wheel_[slot_time & (kWheelSize - 1)].push_back(core);
}

u64 ClusterSim::fetch_done(u32 core, u32 pc) {
  Tile& tile = tiles_[core / cluster_.cores_per_tile];
  const u32 line = pc / cluster_.icache_line_bytes;
  const u32 nlines = cluster_.icache_bytes / cluster_.icache_line_bytes;
  const u32 set = line % nlines;
  const u32 tag = line / nlines;
  if (tile.icache_valid[set] && tile.icache_tags[set] == tag) return now_;
  const u64 start = std::max(now_, tile.refill_port_free);
  const u64 done = start + cfg_.l2_latency;
  tile.refill_port_free = done;
  tile.icache_valid[set] = true;
  tile.icache_tags[set] = tag;
  return done;
}

void ClusterSim::apply_wakes(u64 now) {
  if (pending_wakes_.empty()) return;
  const auto wake_one = [&](u32 i) {
    if (i >= num_cores()) return;
    Core& c = cores_[i];
    if (c.state.halted) return;
    if (c.state.in_wfi && !c.scheduled) {
      const u64 resume = now + cfg_.wake_latency;
      c.stats.stall_wfi += resume - c.sleep_since;
      c.state.in_wfi = false;
      schedule(i, resume);
    } else {
      c.wake_pending = true;
    }
  };
  // Drain into a local list first: waking can cascade (not with current
  // semantics, but keeps the loop re-entrant if MMIO grows).
  std::vector<u32> wakes;
  wakes.swap(pending_wakes_);
  for (const u32 target : wakes) {
    if (target == ~0u) {
      for (u32 i = 0; i < num_cores(); ++i) wake_one(i);
    } else {
      wake_one(target);
    }
  }
}

void ClusterSim::issue(u32 ci) {
  Core& c = cores_[ci];
  auto& st = c.state;
  const u64 t = now_;
  if (st.halted) {
    return;
  }

  // --- fetch through the tile I$ ---
  const u64 f = fetch_done(ci, st.pc);
  if (f > t) {
    c.stats.stall_ins += f - t;
    schedule(ci, f);
    return;
  }

  const rv::Decoded* d = tcache_.lookup(st.pc);
  if (d == nullptr || d->op == rv::Op::kInvalid) {
    st.halted = true;
    st.trapped = true;
    --live_cores_;
    return;
  }
  const rv::InstrDef& def = isa_defs_[static_cast<size_t>(d->op)];

  // --- RAW scoreboard (attribute the stall to its producer class) ---
  {
    u64 ready = 0;
    bool blocked_by_mem = false;
    const auto consider = [&](u8 reg) {
      if (c.ready[reg] > ready) {
        ready = c.ready[reg];
        blocked_by_mem = c.from_mem[reg];
      }
    };
    consider(d->rs1);
    consider(d->rs2);
    if (def.fmt == rv::Fmt::kR4) consider(d->rs3);
    if (rv::reads_rd(d->op)) consider(d->rd);
    if (ready > t) {
      if (blocked_by_mem) {
        c.stats.stall_lsu += ready - t;
      } else {
        c.stats.stall_raw += ready - t;
      }
      schedule(ci, ready);
      return;
    }
  }

  // --- structural hazard: unpipelined divide/sqrt unit ---
  if ((def.unit == rv::Unit::kDiv || def.unit == rv::Unit::kFdiv) &&
      c.div_busy_until > t) {
    c.stats.stall_acc += c.div_busy_until - t;
    schedule(ci, c.div_busy_until);
    return;
  }

  // --- LSU admission: bounded outstanding requests ---
  size_t lsu_slot = 0;
  if (is_mem_mix(def.mix)) {
    const auto it = std::min_element(c.lsu_slots.begin(), c.lsu_slots.end());
    if (*it > t) {
      c.stats.stall_lsu += *it - t;
      schedule(ci, *it);
      return;
    }
    lsu_slot = static_cast<size_t>(it - c.lsu_slots.begin());
  }

  // --- execute architecturally ---
  st.cycle = t;  // expose a meaningful mcycle to the DUT program
  const rv::StepInfo info = rv::execute(*d, st, *mem_);
  ++c.stats.instructions;
  c.stats.instr_cycles += 1;
  u64 next = t + 1;

  // --- destination availability ---
  if (info.is_load || info.is_store || info.is_amo) {
    u64 data_at = t + 1;
    const auto route = mem_->map().route(info.mem_addr);
    if (route && route->space == tera::Space::kL1) {
      const u64 request_at = t + 1;
      const u64 grant = std::max(request_at, bank_free_[route->bank]);
      const u64 hold = info.is_amo ? cfg_.amo_bank_hold : 1;
      bank_free_[route->bank] = grant + hold;
      auto& bs = bank_stats_[route->bank];
      ++bs.grants;
      bs.conflict_cycles += grant - request_at;
      data_at = grant + cluster_.numa_latency(ci, route->tile);
    } else if (route && route->space == tera::Space::kL2) {
      const u64 grant = std::max(t + 1, l2_port_free_);
      l2_port_free_ = grant + 1;
      data_at = grant + cfg_.l2_latency;
    }
    c.lsu_slots[lsu_slot] = info.is_store ? data_at : data_at + 1;
    if (info.is_load || info.is_amo) {
      if (writes_rd(def.fmt) && d->rd != 0) {
        c.ready[d->rd] = data_at + 1;
        c.from_mem[d->rd] = true;
      }
    }
    if (is_post_increment_load(d->op) && d->rs1 != 0) {
      c.ready[d->rs1] = t + 1;
      c.from_mem[d->rs1] = false;
    }
  } else if (writes_rd(def.fmt) && d->rd != 0) {
    c.ready[d->rd] = t + def.result_latency;
    c.from_mem[d->rd] = false;
  }

  // --- unit occupancy ---
  if (def.unit == rv::Unit::kDiv || def.unit == rv::Unit::kFdiv) {
    c.div_busy_until = t + def.issue_cycles;
  }

  // --- control flow ---
  if (info.branch_taken) {
    c.stats.stall_branch += cfg_.branch_penalty;
    next = t + 1 + cfg_.branch_penalty;
  }

  apply_wakes(t);

  if (st.halted) {
    --live_cores_;
    return;
  }

  if (info.entered_wfi) {
    if (c.wake_pending) {
      c.wake_pending = false;
      st.in_wfi = false;
      schedule(ci, next + cfg_.wake_latency);
      return;
    }
    st.in_wfi = true;
    c.sleep_since = next;
    return;  // parked: not scheduled until a wake arrives
  }

  schedule(ci, next);
}

UarchRunResult ClusterSim::run() {
  for (u32 i = 0; i < num_cores(); ++i) {
    cores_[i].next_time = 1;
    cores_[i].scheduled = true;
    wheel_[1 & (kWheelSize - 1)].push_back(i);
  }
  now_ = 0;
  u64 idle_cycles = 0;
  std::vector<u32> current;

  while (live_cores_ > 0 && !stop_) {
    ++now_;
    if (cfg_.max_cycles != 0 && now_ > cfg_.max_cycles) break;
    auto& slot = wheel_[now_ & (kWheelSize - 1)];
    if (slot.empty()) {
      // Deadlock detection: nothing scheduled for a whole wheel revolution
      // means every live core is parked in WFI with nobody left to wake it.
      if (++idle_cycles > kWheelSize) {
        UarchRunResult res;
        res.deadlock = true;
        res.cycles = now_;
        for (const auto& c : cores_) res.instructions += c.stats.instructions;
        return res;
      }
      continue;
    }
    idle_cycles = 0;
    current.clear();
    current.swap(slot);
    for (const u32 ci : current) {
      Core& c = cores_[ci];
      if (!c.scheduled) continue;
      if (c.next_time > now_) {
        // Long-wait hop: re-enter the wheel closer to the real time.
        c.scheduled = false;
        schedule(ci, c.next_time);
        continue;
      }
      c.scheduled = false;
      issue(ci);
      if (stop_) break;
    }
  }

  UarchRunResult res;
  res.exited = exited_;
  res.exit_code = exit_code_;
  res.cycles = now_;
  for (const auto& c : cores_) res.instructions += c.stats.instructions;
  return res;
}

CoreStats ClusterSim::aggregate_stats() const {
  CoreStats agg;
  for (const auto& c : cores_) agg += c.stats;
  return agg;
}

u64 ClusterSim::bank_conflict_cycles() const {
  u64 sum = 0;
  for (const auto& b : bank_stats_) sum += b.conflict_cycles;
  return sum;
}

}  // namespace tsim::uarch
