// Cycle-accurate TeraPool cluster model - this repo's stand-in for RTL
// simulation (see DESIGN.md substitution table).
//
// Models, per cycle:
//  - Snitch in-order single-issue pipeline with a register scoreboard
//    (true RAW stalls, classified raw vs lsu by the blocking producer),
//  - per-tile shared I$ (direct-mapped, single refill port to L2),
//  - unpipelined divide/sqrt units (structural stall-acc),
//  - LSU with bounded outstanding requests,
//  - word-interleaved TCDM banks with single-grant-per-cycle arbitration
//    and NUMA request/response latency by hierarchy distance,
//  - AMOs holding their bank for the read-modify-write,
//  - WFI sleep / wake-register semantics for barriers.
//
// Shares instruction semantics (rv::execute) and the predecoded program
// (iss::TranslationCache) with the fast ISS, so functional behaviour is
// identical by construction; only time differs.
#pragma once

#include <array>
#include <limits>
#include <memory>
#include <vector>

#include "iss/translation.h"
#include "rv/hart_state.h"
#include "tera/memory.h"
#include "uarch/stats.h"

namespace tsim::uarch {

struct UarchConfig {
  u32 l2_latency = 25;          // I$ refill / L2 data access
  u32 wake_latency = 2;         // wake store -> sleeper resumes
  u32 branch_penalty = 2;       // taken-branch fetch bubbles
  u32 lsu_outstanding = 4;      // maximum in-flight memory requests per core
  u32 amo_bank_hold = 2;        // cycles an AMO occupies its bank
  u64 max_cycles = 0;           // safety stop; 0 = unlimited
};

struct UarchRunResult {
  bool exited = false;
  u32 exit_code = 0;
  bool deadlock = false;
  u64 cycles = 0;         // global cycle at completion
  u64 instructions = 0;
};

class ClusterSim {
 public:
  ClusterSim(const tera::TeraPoolConfig& cluster, UarchConfig cfg = {},
             u32 active_cores = 0);

  tera::ClusterMemory& memory() { return *mem_; }

  void load_program(const rvasm::Program& prog);
  void reset();

  /// Runs to completion (exit store / all halted) and returns the result.
  UarchRunResult run();

  u32 num_cores() const { return static_cast<u32>(cores_.size()); }
  const CoreStats& core_stats(u32 i) const { return cores_[i].stats; }
  CoreStats aggregate_stats() const;
  u64 bank_conflict_cycles() const;

  /// Architectural state access for tests.
  const rv::HartState& hart_state(u32 i) const { return cores_[i].state; }

 private:
  static constexpr u64 kAsleep = std::numeric_limits<u64>::max();
  static constexpr u32 kWheelBits = 14;
  static constexpr u64 kWheelSize = 1ull << kWheelBits;  // 16384-cycle horizon

  struct Core {
    rv::HartState state;
    std::array<u64, 32> ready{};       // scoreboard: result landing time
    std::array<bool, 32> from_mem{};   // producer was a memory op
    u64 next_time = 0;                 // next cycle this core can act
    bool scheduled = false;
    u64 sleep_since = 0;
    bool wake_pending = false;
    u64 div_busy_until = 0;
    std::vector<u64> lsu_slots;        // completion times of in-flight ops
    CoreStats stats;
  };

  struct Tile {
    std::vector<u32> icache_tags;
    std::vector<bool> icache_valid;
    u64 refill_port_free = 0;
  };

  void schedule(u32 core, u64 time);
  void issue(u32 core);
  /// I$ lookup; returns the cycle at which the fetch completes (== now on hit).
  u64 fetch_done(u32 core, u32 pc);
  void apply_wakes(u64 now);
  void on_exit(u32 code);

  tera::TeraPoolConfig cluster_;
  UarchConfig cfg_;
  const rv::InstrDef* isa_defs_ = rv::isa_table().data();
  std::unique_ptr<tera::ClusterMemory> mem_;
  iss::TranslationCache tcache_;
  u32 entry_pc_ = 0;

  std::vector<Core> cores_;
  std::vector<Tile> tiles_;
  std::vector<u64> bank_free_;
  std::vector<BankStats> bank_stats_;
  u64 l2_port_free_ = 0;

  std::array<std::vector<u32>, kWheelSize> wheel_;
  u64 now_ = 0;
  u32 live_cores_ = 0;

  bool stop_ = false;
  bool exited_ = false;
  u32 exit_code_ = 0;
  std::vector<u32> pending_wakes_;
};

}  // namespace tsim::uarch
