// Per-core cycle accounting of the cycle-accurate model, matching the
// paper's Fig. 8 breakdown: instruction issue cycles vs stall-ins (I$
// refill), stall-raw (register dependencies), stall-acc (busy functional
// units), stall-lsu (interconnect/bank contention and LSU capacity) and
// stall-wfi (barrier sleep). Taken-branch refill bubbles are tracked
// separately so benches can fold them where the paper does.
#pragma once

#include "common/types.h"

namespace tsim::uarch {

struct CoreStats {
  u64 instructions = 0;

  u64 instr_cycles = 0;
  u64 stall_raw = 0;
  u64 stall_lsu = 0;
  u64 stall_acc = 0;
  u64 stall_ins = 0;
  u64 stall_wfi = 0;
  u64 stall_branch = 0;

  u64 total_cycles() const {
    return instr_cycles + stall_raw + stall_lsu + stall_acc + stall_ins + stall_wfi +
           stall_branch;
  }

  CoreStats& operator+=(const CoreStats& o) {
    instructions += o.instructions;
    instr_cycles += o.instr_cycles;
    stall_raw += o.stall_raw;
    stall_lsu += o.stall_lsu;
    stall_acc += o.stall_acc;
    stall_ins += o.stall_ins;
    stall_wfi += o.stall_wfi;
    stall_branch += o.stall_branch;
    return *this;
  }
};

struct BankStats {
  u64 grants = 0;
  u64 conflict_cycles = 0;  // cumulative grant-queue wait observed by requests
};

}  // namespace tsim::uarch
