// DSE subsystem tests: design-space enumeration, Pareto-front extraction
// (non-domination, completeness, tie handling), end-to-end sweeps through
// the slot engine (metric sanity, determinism across host thread counts,
// infeasible-point skipping), and the JSON trajectory schema the CI smoke
// step validates.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dse/pareto.h"
#include "dse/space.h"
#include "dse/sweep.h"
#include "ran/traffic.h"

namespace tsim::dse {
namespace {

/// A small carrier for fast sweeps: 16 data subcarriers, 2 symbols.
ran::TrafficConfig tiny_traffic() {
  ran::TrafficConfig cfg;
  cfg.carrier.bandwidth_hz = 0.5e6;  // 16 subcarriers
  cfg.carrier.symbols_per_slot = 2;
  cfg.groups = ran::mixed_geometry_groups();
  cfg.seed = 0xD5E7;
  return cfg;
}

DesignSpace tiny_space() {
  DesignSpace space;
  space.clusters = {1, 2};
  space.cores_per_cluster = {16};
  space.precisions = {kern::Precision::k16CDotp, kern::Precision::k8WDotp};
  space.problems_per_core = {1};
  space.policies = {ran::AssignPolicy::kLocality};
  return space;
}

/// Synthetic metrics for pure Pareto tests (no simulation involved).
PointMetrics synthetic(u32 total_cores, u64 slot_cycles, u64 errors,
                       u64 reload_cycles = 0) {
  PointMetrics m;
  m.point.clusters = 1;
  m.point.cores_per_cluster = total_cores;
  m.slot_cycles = slot_cycles;
  m.errors = errors;
  m.bits = 1000;
  m.reload_cycles = reload_cycles;
  return m;
}

TEST(Space, CartesianEnumerationIsAxisMajorAndComplete) {
  DesignSpace space;
  space.clusters = {1, 2};
  space.cores_per_cluster = {16, 32};
  space.precisions = {kern::Precision::k16Half, kern::Precision::k8WDotp};
  space.problems_per_core = {1, 4};
  space.policies = {ran::AssignPolicy::kRoundRobin, ran::AssignPolicy::kLocality};
  const auto points = space.enumerate();
  ASSERT_EQ(points.size(), 2u * 2u * 2u * 2u * 2u);
  // Axis-major: policy varies fastest, clusters slowest.
  EXPECT_EQ(points[0].policy, ran::AssignPolicy::kRoundRobin);
  EXPECT_EQ(points[1].policy, ran::AssignPolicy::kLocality);
  EXPECT_EQ(points[0].clusters, 1u);
  EXPECT_EQ(points.back().clusters, 2u);
  EXPECT_EQ(points.back().cores_per_cluster, 32u);
  // All points distinct.
  for (size_t i = 0; i < points.size(); ++i)
    for (size_t j = i + 1; j < points.size(); ++j) EXPECT_FALSE(points[i] == points[j]);
}

TEST(Space, ListedPointsBypassTheCartesianProduct) {
  DesignSpace space;
  space.listed = {DesignPoint{4, 64, kern::Precision::k8WDotp, 2,
                              ran::AssignPolicy::kRoundRobin}};
  const auto points = space.enumerate();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], space.listed[0]);
  EXPECT_EQ(points[0].total_cores(), 256u);
  EXPECT_EQ(points[0].label(), "4x64/8bwDotp/ppc2/roundrobin");
}

TEST(Space, ClusterForCoresScalesTheTinyShape) {
  for (const u32 cores : {8u, 16u, 32u, 64u, 1024u}) {
    const tera::TeraPoolConfig c = cluster_for_cores(cores);
    EXPECT_EQ(c.num_cores(), cores);
    // Shared L1 scales linearly with the core count (tiny shape: 8 KiB/core).
    EXPECT_EQ(c.l1_bytes(), static_cast<u64>(cores) * 8 * 1024);
  }
  EXPECT_THROW(cluster_for_cores(0), SimError);
  EXPECT_THROW(cluster_for_cores(12), SimError);
  EXPECT_THROW(cluster_for_cores(4), SimError);
}

TEST(Space, ValidateRejectsEmptyAxes) {
  DesignSpace space;
  space.precisions.clear();
  EXPECT_THROW(space.enumerate(), SimError);
  space.listed = {DesignPoint{}};
  EXPECT_NO_THROW(space.enumerate());  // listed points bypass axis checks
}

TEST(Pareto, FrontIsExactOnKnownPoints) {
  // p0 dominated by p3 (same cost/latency, better BER); p2 dominated by p1.
  const std::vector<PointMetrics> points = {
      synthetic(16, 100'000, 10),  // p0
      synthetic(32, 50'000, 10),   // p1: front
      synthetic(32, 60'000, 20),   // p2
      synthetic(16, 100'000, 5),   // p3: front
      synthetic(64, 40'000, 1),    // p4: front
  };
  const auto front = pareto_front(points, default_objectives());
  EXPECT_EQ(front, (std::vector<u32>{1, 3, 4}));
}

TEST(Pareto, NoFrontMemberIsDominatedAndEveryOutsiderIs) {
  // A mesh of points with correlated objectives exercises the property the
  // front definition promises.
  std::vector<PointMetrics> points;
  for (u32 cores = 16; cores <= 128; cores *= 2)
    for (u64 lat = 1; lat <= 4; ++lat)
      points.push_back(synthetic(cores, lat * 100'000 / (cores / 16), lat * 7 % 23));
  const auto objectives = default_objectives();
  const auto front = pareto_front(points, objectives);
  ASSERT_FALSE(front.empty());
  std::vector<bool> on_front(points.size(), false);
  for (const u32 i : front) on_front[i] = true;
  for (u32 i = 0; i < points.size(); ++i) {
    if (on_front[i]) {
      for (u32 j = 0; j < points.size(); ++j)
        EXPECT_FALSE(dominates(points[j], points[i], objectives));
    } else {
      bool dominated = false;
      for (const u32 j : front)
        dominated = dominated || dominates(points[j], points[i], objectives);
      EXPECT_TRUE(dominated) << "point " << i << " off-front but undominated";
    }
  }
}

TEST(Pareto, TiedPointsAllStayOnTheFront) {
  const std::vector<PointMetrics> points = {
      synthetic(16, 100, 3),
      synthetic(16, 100, 3),  // identical objective vector: neither dominates
      synthetic(16, 200, 3),
  };
  const auto front = pareto_front(points, default_objectives());
  EXPECT_EQ(front, (std::vector<u32>{0, 1}));
}

TEST(Pareto, ObjectiveParsingAndValues) {
  EXPECT_EQ(parse_objective("cores"), Objective::kCores);
  EXPECT_EQ(parse_objective("latency"), Objective::kLatency);
  EXPECT_EQ(parse_objective("ber"), Objective::kBer);
  EXPECT_EQ(parse_objective("reloads"), Objective::kReloadCycles);
  EXPECT_THROW(parse_objective("watts"), SimError);
  EXPECT_THROW(parse_objectives(""), SimError);
  const auto objs = parse_objectives("cores, latency,ber");
  ASSERT_EQ(objs.size(), 3u);
  EXPECT_EQ(objs[1], Objective::kLatency);

  const PointMetrics m = synthetic(32, 12'345, 10, 777);
  EXPECT_DOUBLE_EQ(objective_value(m, Objective::kCores), 32.0);
  EXPECT_DOUBLE_EQ(objective_value(m, Objective::kLatency), 12'345.0);
  EXPECT_DOUBLE_EQ(objective_value(m, Objective::kBer), 0.01);
  EXPECT_DOUBLE_EQ(objective_value(m, Objective::kReloadCycles), 777.0);
}

TEST(Sweep, QuickSweepMetricsAreSane) {
  SweepConfig cfg;
  cfg.traffic = tiny_traffic();
  const SweepResult result = run_sweep(tiny_space(), cfg);
  ASSERT_EQ(result.points.size(), 4u);
  EXPECT_TRUE(result.skipped.empty());

  const u64 expected_problems =
      static_cast<u64>(cfg.traffic.carrier.num_subcarriers()) *
      cfg.traffic.carrier.symbols_per_slot;
  for (const PointMetrics& m : result.points) {
    EXPECT_EQ(m.problems, expected_problems);
    EXPECT_GT(m.bits, 0u);
    EXPECT_GT(m.instructions, 0u);
    EXPECT_GT(m.slot_cycles, 0u);
    EXPECT_GT(m.busy_cycles, 0u);
    // Per-symbol maxima are bounded by per-symbol sums, so the total busy
    // cycles dominate the symbol-serialized critical path.
    EXPECT_GE(m.busy_cycles, m.slot_cycles);
    EXPECT_GE(m.batch_cores, 1u);
    EXPECT_GE(m.dut_ber(), 0.0);
    EXPECT_LT(m.dut_ber(), 0.5);
    EXPECT_GE(m.golden_ber(), 0.0);
    EXPECT_LT(m.golden_ber(), 0.5);
    EXPECT_DOUBLE_EQ(m.deadline_seconds, 5e-4);
    EXPECT_GT(m.latency_seconds(cfg.clock_hz), 0.0);
    EXPECT_GE(m.wall_seconds, 0.0);
  }
  // The golden reference is point-independent (same workload everywhere).
  for (const PointMetrics& m : result.points)
    EXPECT_EQ(m.golden_errors, result.points[0].golden_errors);
  // Two clusters cut the worst-slot critical path vs one at equal precision.
  EXPECT_LT(result.points[2].slot_cycles, result.points[0].slot_cycles);
  // The front over the default objectives is non-empty.
  EXPECT_FALSE(pareto_front(result.points, default_objectives()).empty());
}

TEST(Sweep, DeterministicAcrossHostThreadCounts) {
  SweepConfig serial;
  serial.traffic = tiny_traffic();
  serial.host_threads = 1;
  SweepConfig threaded = serial;
  threaded.host_threads = 3;

  const SweepResult a = run_sweep(tiny_space(), serial);
  const SweepResult b = run_sweep(tiny_space(), threaded);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    const PointMetrics& pa = a.points[i];
    const PointMetrics& pb = b.points[i];
    EXPECT_EQ(pa.point, pb.point);
    EXPECT_EQ(pa.batch_cores, pb.batch_cores);
    EXPECT_EQ(pa.problems, pb.problems);
    EXPECT_EQ(pa.bits, pb.bits);
    EXPECT_EQ(pa.errors, pb.errors);
    EXPECT_EQ(pa.golden_errors, pb.golden_errors);
    EXPECT_EQ(pa.instructions, pb.instructions);
    EXPECT_EQ(pa.slot_cycles, pb.slot_cycles);
    EXPECT_EQ(pa.reloads, pb.reloads);
    EXPECT_EQ(pa.reload_cycles, pb.reload_cycles);
    EXPECT_EQ(pa.busy_cycles, pb.busy_cycles);
  }
  EXPECT_EQ(pareto_front(a.points, default_objectives()),
            pareto_front(b.points, default_objectives()));
}

TEST(Sweep, InfeasiblePointsAreSkippedWithAReason) {
  DesignSpace space = tiny_space();
  space.clusters = {1};
  space.precisions = {kern::Precision::k16CDotp};
  space.problems_per_core = {1, 100'000};  // second cannot fit any L1
  SweepConfig cfg;
  cfg.traffic = tiny_traffic();
  const SweepResult result = run_sweep(space, cfg);
  ASSERT_EQ(result.points.size(), 1u);
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].point.problems_per_core, 100'000u);
  EXPECT_FALSE(result.skipped[0].reason.empty());
}

TEST(Sweep, RejectsBrokenConfigs) {
  SweepConfig cfg;
  cfg.traffic = tiny_traffic();
  cfg.ttis = 0;
  EXPECT_THROW(run_sweep(tiny_space(), cfg), SimError);
  cfg.ttis = 1;
  cfg.clock_hz = 0.0;
  EXPECT_THROW(run_sweep(tiny_space(), cfg), SimError);
}

TEST(Json, TrajectorySchemaHasRequiredKeysAndFrontMarks) {
  SweepConfig cfg;
  cfg.traffic = tiny_traffic();
  const SweepResult result = run_sweep(tiny_space(), cfg);
  const auto front = pareto_front(result.points, default_objectives());
  const sim::Table table = sweep_table(result, front);

  // The keys the CI dse-smoke step requires of every row.
  for (const char* key :
       {"clusters", "cores_per_cluster", "total_cores", "precision",
        "problems_per_core", "policy", "latency_us", "deadline_us", "met",
        "dut_ber", "golden_ber", "reloads", "front"}) {
    bool found = false;
    for (const std::string& h : table.header()) found = found || h == key;
    EXPECT_TRUE(found) << "missing column " << key;
  }
  ASSERT_EQ(table.rows().size(), result.points.size());
  u32 marked = 0;
  for (const auto& row : table.rows()) {
    ASSERT_EQ(row.size(), table.header().size());
    marked += row.back() == "1" ? 1 : 0;
  }
  EXPECT_EQ(marked, front.size());

  // front_table carries exactly the front rows, all marked.
  const sim::Table ft = front_table(result, front);
  ASSERT_EQ(ft.rows().size(), front.size());
  for (const auto& row : ft.rows()) EXPECT_EQ(row.back(), "1");

  // Written JSON round-trips through the shared emitter: an array with one
  // object per row and every header key quoted.
  const std::string path = testing::TempDir() + "/dse_pareto_test.json";
  ASSERT_TRUE(table.write_json(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"front\": \"1\""), std::string::npos);
  EXPECT_NE(json.find("\"precision\": \"16bCDotp\""), std::string::npos);
  size_t objects = 0;
  for (const char ch : json) objects += ch == '{' ? 1 : 0;
  EXPECT_EQ(objects, result.points.size());
  std::remove(path.c_str());

  // The shared writer reports unwritable paths instead of failing silently.
  EXPECT_FALSE(table.write_json("/nonexistent-dir/x.json"));
}

}  // namespace
}  // namespace tsim::dse
