// End-to-end co-simulation tests: the full paper pipeline (bits -> QAM ->
// channel -> DUT detection -> demap -> BER), engine equivalence (ISS vs
// cycle-accurate model), and Monte-Carlo BER behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "phy/mmse.h"
#include "phy/quantize.h"
#include "sim/mc.h"
#include "softfloat/minifloat.h"
#include "uarch/cluster_sim.h"

namespace tsim::sim {
namespace {

using kern::MmseLayout;
using kern::Precision;

McConfig small_config(u32 ntx, u32 nrx, u32 qam, phy::ChannelType ch) {
  McConfig cfg;
  cfg.ntx = ntx;
  cfg.nrx = nrx;
  cfg.qam_order = qam;
  cfg.channel = ch;
  cfg.target_errors = 60;
  cfg.max_bits = 80'000;
  cfg.problems_per_core = 2;
  return cfg;
}

TEST(E2E, GoldenBerDecreasesWithSnr) {
  McRunner mc(small_config(4, 4, 16, phy::ChannelType::kAwgn));
  const auto low = mc.golden_point(6.0);
  const auto high = mc.golden_point(14.0);
  EXPECT_GT(low.ber, high.ber);
  EXPECT_GT(low.ber, 1e-4);
}

TEST(E2E, GoldenAwgn16QamMatchesTheory) {
  // Uncoded 16-QAM over AWGN at Es/N0 = 14 dB: BER ~ (3/8) erfc(sqrt(Es/N0 / 10))
  // ~ 9.3e-3 (identity-coupled MIMO behaves per-stream identically).
  McConfig cfg = small_config(4, 4, 16, phy::ChannelType::kAwgn);
  cfg.target_errors = 150;
  cfg.max_bits = 600'000;
  McRunner mc(cfg);
  const auto p = mc.golden_point(14.0);
  EXPECT_GT(p.ber, 4e-3);
  EXPECT_LT(p.ber, 2e-2);
}

TEST(E2E, Dut16BitMatchesGoldenBerOnAwgn) {
  McConfig cfg = small_config(4, 4, 16, phy::ChannelType::kAwgn);
  McRunner mc(cfg);
  const auto golden = mc.golden_point(10.0);
  const auto dut = mc.dut_point(Precision::k16WDotp, 10.0);
  ASSERT_GT(dut.bits, 0u);
  // Same operating point: BERs within a small factor of each other.
  EXPECT_LT(dut.ber, golden.ber * 2.5 + 1e-3);
  EXPECT_GT(dut.ber * 2.5 + 1e-3, golden.ber);
}

TEST(E2E, EightBitLosesToSixteenBit) {
  // Paper Fig. 9: the 8b variants suffer a visible BER penalty at high SNR.
  McConfig cfg = small_config(4, 4, 16, phy::ChannelType::kAwgn);
  cfg.target_errors = 100;
  cfg.max_bits = 120'000;
  McRunner mc(cfg);
  const auto b16 = mc.dut_point(Precision::k16CDotp, 14.0);
  const auto b8 = mc.dut_point(Precision::k8Quarter, 14.0);
  EXPECT_GT(b8.ber, b16.ber);
}

TEST(E2E, DutSweepIsMonotonicallyImprovingOnAwgn) {
  McConfig cfg = small_config(4, 4, 16, phy::ChannelType::kAwgn);
  cfg.target_errors = 50;
  McRunner mc(cfg);
  const auto pts = mc.dut_sweep(Precision::k16CDotp, {6.0, 12.0});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[0].ber, pts[1].ber);
}

TEST(E2E, RayleighIsHarderThanAwgn) {
  McConfig awgn = small_config(4, 4, 16, phy::ChannelType::kAwgn);
  McConfig ray = small_config(4, 4, 16, phy::ChannelType::kRayleigh);
  McRunner mc_a(awgn);
  McRunner mc_r(ray);
  const auto pa = mc_a.golden_point(12.0);
  const auto pr = mc_r.golden_point(12.0);
  EXPECT_GT(pr.ber, pa.ber);  // fully-loaded Rayleigh MMSE is interference-limited
}

TEST(E2E, IssAndUarchProduceIdenticalDetections) {
  // The two timing engines share semantics; their architectural results on
  // the same staged problem must match bit-for-bit.
  MmseLayout lay;
  lay.ntx = 4;
  lay.nrx = 4;
  lay.prec = Precision::k16WDotp;
  lay.num_cores = 4;
  lay.cluster = tera::TeraPoolConfig::tiny();
  const auto program = kern::build_mmse_program(lay);

  Rng rng(5150);
  phy::Channel ch(phy::ChannelType::kRayleigh, 4, 4);
  phy::QamModulator qam(16);
  const Batch batch = generate_batch(ch, qam, 4, 4, 12.0, rng);

  iss::Machine machine(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(program);
  uarch::ClusterSim rtl(lay.cluster, uarch::UarchConfig{}, lay.num_cores);
  rtl.load_program(program);
  for (u32 c = 0; c < 4; ++c) {
    stage_problem(machine.memory(), lay, c, 0, batch.problems[c]);
    stage_problem(rtl.memory(), lay, c, 0, batch.problems[c]);
  }
  EXPECT_TRUE(machine.run().exited);
  EXPECT_TRUE(rtl.run().exited);
  for (u32 c = 0; c < 4; ++c) {
    const auto a = read_xhat(machine.memory(), lay, c, 0);
    const auto b = read_xhat(rtl.memory(), lay, c, 0);
    for (u32 i = 0; i < 4; ++i) EXPECT_EQ(a[i], b[i]) << "core " << c << " elem " << i;
  }
}

TEST(E2E, UarchCyclesExceedIssEstimate) {
  // Banshee underestimates cycles vs RTL (paper Fig. 7, negative errors):
  // the contention-aware model must report more cycles than the ISS.
  MmseLayout lay;
  lay.ntx = 8;
  lay.nrx = 8;
  lay.prec = Precision::k16Half;
  lay.num_cores = 8;
  lay.cluster = tera::TeraPoolConfig::tiny();
  const auto program = kern::build_mmse_program(lay);

  Rng rng(99);
  phy::Channel ch(phy::ChannelType::kRayleigh, 8, 8);
  phy::QamModulator qam(16);
  const Batch batch = generate_batch(ch, qam, 8, 8, 10.0, rng);

  iss::Machine machine(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(program);
  uarch::ClusterSim rtl(lay.cluster, uarch::UarchConfig{}, lay.num_cores);
  rtl.load_program(program);
  for (u32 c = 0; c < 8; ++c) {
    stage_problem(machine.memory(), lay, c, 0, batch.problems[c]);
    stage_problem(rtl.memory(), lay, c, 0, batch.problems[c]);
  }
  machine.run();
  const auto rtl_result = rtl.run();
  EXPECT_GT(rtl_result.cycles, 0u);
  // The ISS estimate is first-order: the paper reports ~30% average error
  // vs RTL. At this small scale contention is negligible, so the two track
  // each other closely; assert the error stays inside the paper's band.
  const double err =
      std::abs(static_cast<double>(machine.estimated_cycles()) -
               static_cast<double>(rtl_result.cycles)) /
      static_cast<double>(rtl_result.cycles);
  EXPECT_LT(err, 0.35);
}

TEST(E2E, MultiThreadBerMatchesSingleThread) {
  McConfig cfg = small_config(4, 4, 16, phy::ChannelType::kAwgn);
  cfg.target_errors = 40;
  cfg.max_bits = 40'000;
  McRunner single(cfg);
  cfg.host_threads = 2;
  McRunner multi(cfg);
  const auto p1 = single.dut_point(Precision::k16CDotp, 10.0);
  const auto p2 = multi.dut_point(Precision::k16CDotp, 10.0);
  // Identical seeds and bit-true kernels: exactly the same errors counted.
  EXPECT_EQ(p1.errors, p2.errors);
  EXPECT_EQ(p1.bits, p2.bits);
}

TEST(E2E, StageAndReadBackRoundTrip) {
  MmseLayout lay;
  lay.ntx = 4;
  lay.nrx = 4;
  lay.prec = Precision::k16Half;
  lay.num_cores = 2;
  lay.cluster = tera::TeraPoolConfig::tiny();
  tera::ClusterMemory mem(lay.cluster);
  MimoProblem prob;
  prob.h = phy::CMat(4, 4);
  for (u32 r = 0; r < 4; ++r)
    for (u32 c = 0; c < 4; ++c) prob.h.at(r, c) = phy::cd(r * 1.0, c * 0.5);
  prob.y = {phy::cd(1, 2), phy::cd(3, 4), phy::cd(5, 6), phy::cd(7, 8)};
  prob.sigma2 = 0.125;
  stage_problem(mem, lay, 1, 0, prob);
  // H is staged column-major: word k of column c holds H[k][c] as cf16.
  std::vector<u8> raw(4);
  mem.host_read(lay.h_addr(1, 0) + (1 * 4 + 2) * 4, raw);  // column 1, row 2
  const phy::cd v = phy::read_cf16(raw.data());
  EXPECT_DOUBLE_EQ(v.real(), 2.0);   // H[2][1].re
  EXPECT_DOUBLE_EQ(v.imag(), 0.5);   // H[2][1].im
  // sigma^2 survives the fp16 round trip exactly (power of two).
  std::vector<u8> sraw(2);
  mem.host_read(lay.sigma_addr(1, 0), sraw);
  EXPECT_DOUBLE_EQ(sf::F16::to_double(static_cast<u16>(sraw[0] | (sraw[1] << 8))),
                   0.125);
}

}  // namespace
}  // namespace tsim::sim
