// Tests for the extension subsystems: NR OFDM numerology / TTI deadline
// analysis, per-operator DUT profiling, soft-output demapping, and the ISS
// trace hook.
#include <gtest/gtest.h>

#include <cmath>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "kernels/profile.h"
#include "phy/ofdm.h"
#include "phy/qam.h"
#include "rv/disasm.h"
#include "rvasm/textasm.h"
#include "sim/report.h"
#include "sim/cosim.h"
#include "uarch/cluster_sim.h"

namespace tsim {
namespace {

// ---------------------------------------------------------------------------
// OFDM numerology (paper Sec. V-A quotes NSC = 1638 at 50 MHz / 30 kHz).
// ---------------------------------------------------------------------------

TEST(Ofdm, PaperCarrierMatchesQuotedNumbers) {
  const auto carrier = phy::CarrierConfig::paper_50mhz();
  EXPECT_EQ(carrier.numerology.subcarrier_spacing_hz(), 30'000u);
  EXPECT_EQ(carrier.num_subcarriers(), 1638u);
  EXPECT_DOUBLE_EQ(carrier.numerology.slot_seconds(), 0.5e-3);  // 0.5 ms TTI
  EXPECT_EQ(carrier.problems_per_tti(), 1638u * 14);
}

TEST(Ofdm, NumerologyScaling) {
  phy::Numerology mu0{0}, mu2{2};
  EXPECT_EQ(mu0.subcarrier_spacing_hz(), 15'000u);
  EXPECT_EQ(mu2.subcarrier_spacing_hz(), 60'000u);
  EXPECT_EQ(mu2.slots_per_subframe(), 4u);
  EXPECT_DOUBLE_EQ(mu2.slot_seconds(), 0.25e-3);
}

TEST(Ofdm, DeadlineReportArithmetic) {
  const auto carrier = phy::CarrierConfig::paper_50mhz();
  // 5k cycles per 4x4 problem on 1024 cores at 1 GHz:
  // ceil(22932/1024) = 23 rounds * 5 us = 115 us < 500 us.
  const auto report = phy::tti_deadline(carrier, 5000, 1024);
  EXPECT_TRUE(report.meets_deadline());
  EXPECT_GT(report.headroom(), 1.0);
  // One core alone cannot hold the deadline.
  const auto serial = phy::tti_deadline(carrier, 5000, 1);
  EXPECT_FALSE(serial.meets_deadline());
}

TEST(Ofdm, DeadlineRequiresCores) {
  EXPECT_THROW(phy::tti_deadline(phy::CarrierConfig::paper_50mhz(), 1000, 0),
               SimError);
}

// ---------------------------------------------------------------------------
// Per-operator DUT profiling via mcycle instrumentation.
// ---------------------------------------------------------------------------

class ProfileTest : public ::testing::Test {
 protected:
  kern::MmseLayout layout(u32 n, kern::Precision prec) {
    kern::MmseLayout lay;
    lay.ntx = n;
    lay.nrx = n;
    lay.prec = prec;
    lay.num_cores = 1;
    lay.cluster = tera::TeraPoolConfig::tiny();
    return lay;
  }

  kern::KernelProfile run_and_profile(const kern::MmseLayout& lay, u64 seed) {
    iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1);
    machine.load_program(kern::build_mmse_program(lay));
    Rng rng(seed);
    phy::Channel ch(phy::ChannelType::kRayleigh, lay.nrx, lay.ntx);
    phy::QamModulator qam(16);
    const auto batch = sim::generate_batch(ch, qam, lay.ntx, 1, 12.0, rng);
    sim::stage_problem(machine.memory(), lay, 0, 0, batch.problems[0]);
    EXPECT_TRUE(machine.run().exited);
    return kern::read_profile(machine.memory(), lay, 0);
  }
};

TEST_F(ProfileTest, OperatorsAreTimedAndSumToTotal) {
  const auto p = run_and_profile(layout(8, kern::Precision::k16CDotp), 31);
  EXPECT_GT(p.gram, 0u);
  EXPECT_GT(p.mvm, 0u);
  EXPECT_GT(p.chol, 0u);
  EXPECT_GT(p.fsolve, 0u);
  EXPECT_GT(p.bsolve, 0u);
  // Operators dominate the problem; the call glue is small.
  EXPECT_LE(p.operator_sum(), p.total);
  EXPECT_GT(p.operator_sum() * 10, p.total * 9);
}

TEST_F(ProfileTest, GramDominatesAtLargeSizes) {
  // Gram is O(n^2 * nrx) vs O(n^2) solves: it must dominate at 16x16.
  const auto p = run_and_profile(layout(16, kern::Precision::k16WDotp), 32);
  EXPECT_GT(p.gram, p.fsolve);
  EXPECT_GT(p.gram, p.bsolve);
  EXPECT_GT(p.gram, p.mvm);
}

TEST_F(ProfileTest, HalfPrecisionGramIsSlowerThanCDotp) {
  const auto ph = run_and_profile(layout(8, kern::Precision::k16Half), 33);
  const auto pc = run_and_profile(layout(8, kern::Precision::k16CDotp), 33);
  EXPECT_GT(ph.gram, pc.gram);  // 4 fmadd + 4 loads vs 1 cdotp + 2 loads
}

TEST_F(ProfileTest, UarchProfilesAreLargerThanIssEstimates) {
  const auto lay = layout(8, kern::Precision::k16Half);
  const auto program = kern::build_mmse_program(lay);
  Rng rng(34);
  phy::Channel ch(phy::ChannelType::kRayleigh, 8, 8);
  phy::QamModulator qam(16);
  const auto batch = sim::generate_batch(ch, qam, 8, 1, 12.0, rng);

  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1);
  machine.load_program(program);
  sim::stage_problem(machine.memory(), lay, 0, 0, batch.problems[0]);
  machine.run();
  const auto est = kern::read_profile(machine.memory(), lay, 0);

  uarch::ClusterSim rtl(lay.cluster, uarch::UarchConfig{}, 1);
  rtl.load_program(program);
  sim::stage_problem(rtl.memory(), lay, 0, 0, batch.problems[0]);
  rtl.run();
  const auto meas = kern::read_profile(rtl.memory(), lay, 0);

  // Same binary, same operands: both profiles are populated and the ISS
  // stays within the paper's first-order error band of the measurement.
  EXPECT_GT(meas.total, 0u);
  const double err = std::abs(static_cast<double>(est.total) -
                              static_cast<double>(meas.total)) /
                     meas.total;
  EXPECT_LT(err, 0.35);
}

// ---------------------------------------------------------------------------
// Soft-output demapping.
// ---------------------------------------------------------------------------

TEST(SoftDemap, SignsAgreeWithHardDecisions) {
  phy::QamModulator qam(16);
  Rng rng(35);
  for (int t = 0; t < 200; ++t) {
    const phy::cd y(rng.normal(), rng.normal());
    std::vector<u8> hard(4);
    qam.demap(y, hard);
    std::vector<double> llrs(4);
    qam.soft_demap(y, 0.1, llrs);
    for (u32 b = 0; b < 4; ++b) {
      // Positive LLR favours bit 0 under this convention.
      EXPECT_EQ(hard[b], llrs[b] < 0 ? 1 : 0) << "bit " << b;
    }
  }
}

TEST(SoftDemap, ConfidenceGrowsWithSnr) {
  phy::QamModulator qam(16);
  std::vector<u8> bits = {0, 1, 1, 0};
  const auto sym = qam.map(bits);
  std::vector<double> low(4), high(4);
  qam.soft_demap(sym, 1.0, low);
  qam.soft_demap(sym, 0.01, high);
  for (u32 b = 0; b < 4; ++b) EXPECT_GT(std::abs(high[b]), std::abs(low[b]));
}

TEST(SoftDemap, SymmetricPointHasMagnitudeOrdering) {
  // A point on a decision boundary yields a near-zero LLR for that bit.
  phy::QamModulator qam(4);
  std::vector<double> llrs(2);
  qam.soft_demap(phy::cd(0.0, 1.0 / std::sqrt(2.0)), 0.1, llrs);
  EXPECT_NEAR(llrs[0], 0.0, 1e-9);     // I-axis boundary
  EXPECT_GT(std::abs(llrs[1]), 1.0);   // Q-axis deep in a region
}

TEST(SoftDemap, RejectsNonPositiveNoise) {
  phy::QamModulator qam(16);
  std::vector<double> llrs(4);
  EXPECT_THROW(qam.soft_demap(phy::cd(0, 0), 0.0, llrs), SimError);
}

// ---------------------------------------------------------------------------
// ISS trace hook.
// ---------------------------------------------------------------------------

TEST(Trace, HookSeesEveryInstructionInOrder) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(rvasm::assemble(R"(
    _start:
      li t0, 2
      addi t0, t0, 3
      ebreak
  )"));
  std::vector<std::string> lines;
  m.set_trace([&](u32 hart, u32 pc, const rv::Decoded& d) {
    lines.push_back(sim::strf("%u:%08x %s", hart, pc, rv::disassemble(d).c_str()));
  });
  m.run();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("addi t0, zero, 2"), std::string::npos);
  EXPECT_NE(lines[1].find("addi t0, t0, 3"), std::string::npos);
  EXPECT_NE(lines[2].find("ebreak"), std::string::npos);
}

TEST(Trace, UnsetHookCostsNothingFunctionally) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(rvasm::assemble("_start:\n li t0, 7\n ebreak\n"));
  m.run();
  EXPECT_EQ(m.hart(0).state.x[5], 7u);
}

}  // namespace
}  // namespace tsim
