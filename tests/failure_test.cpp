// Failure-injection tests: faults, misuse, and resource-limit behaviour of
// both engines and the co-simulation stack.
#include <gtest/gtest.h>

#include <memory>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "rvasm/textasm.h"
#include "sim/cosim.h"
#include "uarch/cluster_sim.h"

namespace tsim {
namespace {

rvasm::Program prog(const std::string& text) { return rvasm::assemble(text); }

TEST(FaultIss, JumpOutsideProgramTraps) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(prog("_start:\n li t0, 0x90000000\n jalr zero, 0(t0)\n"));
  m.run();
  EXPECT_TRUE(m.hart(0).state.trapped);
}

TEST(FaultIss, StoreToUnmappedAddressTraps) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(prog("_start:\n li t0, 0x70000000\n sw t0, 0(t0)\n ebreak\n"));
  m.run();
  EXPECT_TRUE(m.hart(0).state.trapped);
}

TEST(FaultIss, MisalignedLoadTraps) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(prog("_start:\n li t0, 0x101\n lw t1, 0(t0)\n ebreak\n"));
  m.run();
  EXPECT_TRUE(m.hart(0).state.trapped);
}

TEST(FaultIss, TrapHaltsOnlyTheFaultingHart) {
  // Hart 0 faults immediately; hart 1 still completes and exits. (Hart 0
  // runs first in the round-robin, so its fault must not take the machine
  // down before hart 1 gets to execute.)
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 2);
  m.load_program(prog(R"(
    _start:
      csrr t0, mhartid
      beqz t0, bad
      li t1, 0x40000000
      sw zero, 0(t1)
    bad:
      li t2, 0x70000000
      lw t3, 0(t2)
  )"));
  const auto r = m.run();
  EXPECT_TRUE(r.exited);
  EXPECT_TRUE(m.hart(0).state.trapped);
  EXPECT_FALSE(m.hart(1).state.trapped);
}

TEST(FaultUarch, TrapsMatchIssBehaviour) {
  const auto p = prog("_start:\n li t0, 0x101\n lw t1, 0(t0)\n ebreak\n");
  uarch::ClusterSim rtl(tera::TeraPoolConfig::tiny(), {}, 1);
  rtl.load_program(p);
  const auto r = rtl.run();
  EXPECT_FALSE(r.exited);
  EXPECT_TRUE(rtl.hart_state(0).trapped);
}

TEST(FaultUarch, MaxCyclesBoundsRunaway) {
  uarch::UarchConfig cfg;
  cfg.max_cycles = 5000;
  uarch::ClusterSim rtl(tera::TeraPoolConfig::tiny(), cfg, 1);
  rtl.load_program(prog("_start:\n j _start\n"));
  const auto r = rtl.run();
  EXPECT_FALSE(r.exited);
  EXPECT_LE(r.cycles, 5001u);
}

TEST(FaultUarch, LongStallsHopAcrossTheTimingWheel) {
  // An I$-miss storm with an enormous refill latency forces waits longer
  // than the wheel horizon; completion must still be exact.
  uarch::UarchConfig cfg;
  cfg.l2_latency = 20000;  // > kWheelSize
  uarch::ClusterSim rtl(tera::TeraPoolConfig::tiny(), cfg, 1);
  rtl.load_program(prog("_start:\n li t0, 0x40000000\n sw zero, 0(t0)\n"));
  const auto r = rtl.run();
  EXPECT_TRUE(r.exited);
  EXPECT_GT(r.cycles, 20000u);
}

TEST(FaultLayout, MisconfiguredLayoutsThrow) {
  kern::MmseLayout lay;
  lay.cluster = tera::TeraPoolConfig::tiny();
  lay.ntx = 3;  // unsupported odd size
  lay.nrx = 3;
  EXPECT_THROW(lay.validate(), SimError);
  lay.ntx = 8;
  lay.nrx = 4;  // NRX < NTX: under-determined
  EXPECT_THROW(lay.validate(), SimError);
}

TEST(FaultStage, ShapeMismatchesAreRejected) {
  kern::MmseLayout lay;
  lay.ntx = 4;
  lay.nrx = 4;
  lay.cluster = tera::TeraPoolConfig::tiny();
  tera::ClusterMemory mem(lay.cluster);
  sim::MimoProblem p;
  p.h = phy::CMat(2, 2);  // wrong shape
  p.y.resize(4);
  EXPECT_THROW(sim::stage_problem(mem, lay, 0, 0, p), SimError);
}

TEST(FaultKernelGen, BadUnrollIsRejected) {
  kern::MmseLayout lay;
  lay.ntx = 4;
  lay.nrx = 4;
  lay.cluster = tera::TeraPoolConfig::tiny();
  // 4 elements per dot product; unroll 3 does not divide the step count.
  EXPECT_THROW(kern::build_mmse_program(lay, {.gram_unroll = 3}), SimError);
}

TEST(FaultMachine, HartCountBeyondClusterStillConstructs) {
  // active_harts = 0 means "all cores"; explicit counts are honored as-is.
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 0);
  EXPECT_EQ(m.num_harts(), tera::TeraPoolConfig::tiny().num_cores());
}

TEST(FaultBarrier, WrongParticipantCountDeadlocks) {
  // A 4-hart barrier executed by only 2 harts must be caught as deadlock
  // rather than hanging the host.
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 2);
  m.load_program(prog(R"(
    _start:
      li t3, 0x80
      li t4, 1
      amoadd.w t5, t4, (t3)
      li t6, 3
      beq t5, t6, last
      wfi
    last:
      wfi
      j _start
  )"));
  const auto r = m.run();
  EXPECT_TRUE(r.deadlock);
}

}  // namespace
}  // namespace tsim
