// Failure-injection tests: faults, misuse, and resource-limit behaviour of
// both engines and the co-simulation stack, plus the deterministic
// fault-injection subsystem (sim/fault.h): scheduled hart traps/hangs, L1
// bit upsets under the SECDED model, and cluster-death degradation.
#include <gtest/gtest.h>

#include <memory>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "ran/scheduler.h"
#include "ran/traffic.h"
#include "rvasm/textasm.h"
#include "sim/cosim.h"
#include "sim/fault.h"
#include "uarch/cluster_sim.h"

namespace tsim {
namespace {

rvasm::Program prog(const std::string& text) { return rvasm::assemble(text); }

TEST(FaultIss, JumpOutsideProgramTraps) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(prog("_start:\n li t0, 0x90000000\n jalr zero, 0(t0)\n"));
  m.run();
  EXPECT_TRUE(m.hart(0).state.trapped);
}

TEST(FaultIss, StoreToUnmappedAddressTraps) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(prog("_start:\n li t0, 0x70000000\n sw t0, 0(t0)\n ebreak\n"));
  m.run();
  EXPECT_TRUE(m.hart(0).state.trapped);
}

TEST(FaultIss, MisalignedLoadTraps) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(prog("_start:\n li t0, 0x101\n lw t1, 0(t0)\n ebreak\n"));
  m.run();
  EXPECT_TRUE(m.hart(0).state.trapped);
}

TEST(FaultIss, TrapHaltsOnlyTheFaultingHart) {
  // Hart 0 faults immediately; hart 1 still completes and exits. (Hart 0
  // runs first in the round-robin, so its fault must not take the machine
  // down before hart 1 gets to execute.)
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 2);
  m.load_program(prog(R"(
    _start:
      csrr t0, mhartid
      beqz t0, bad
      li t1, 0x40000000
      sw zero, 0(t1)
    bad:
      li t2, 0x70000000
      lw t3, 0(t2)
  )"));
  const auto r = m.run();
  EXPECT_TRUE(r.exited);
  EXPECT_TRUE(m.hart(0).state.trapped);
  EXPECT_FALSE(m.hart(1).state.trapped);
}

TEST(FaultUarch, TrapsMatchIssBehaviour) {
  const auto p = prog("_start:\n li t0, 0x101\n lw t1, 0(t0)\n ebreak\n");
  uarch::ClusterSim rtl(tera::TeraPoolConfig::tiny(), {}, 1);
  rtl.load_program(p);
  const auto r = rtl.run();
  EXPECT_FALSE(r.exited);
  EXPECT_TRUE(rtl.hart_state(0).trapped);
}

TEST(FaultUarch, MaxCyclesBoundsRunaway) {
  uarch::UarchConfig cfg;
  cfg.max_cycles = 5000;
  uarch::ClusterSim rtl(tera::TeraPoolConfig::tiny(), cfg, 1);
  rtl.load_program(prog("_start:\n j _start\n"));
  const auto r = rtl.run();
  EXPECT_FALSE(r.exited);
  EXPECT_LE(r.cycles, 5001u);
}

TEST(FaultUarch, LongStallsHopAcrossTheTimingWheel) {
  // An I$-miss storm with an enormous refill latency forces waits longer
  // than the wheel horizon; completion must still be exact.
  uarch::UarchConfig cfg;
  cfg.l2_latency = 20000;  // > kWheelSize
  uarch::ClusterSim rtl(tera::TeraPoolConfig::tiny(), cfg, 1);
  rtl.load_program(prog("_start:\n li t0, 0x40000000\n sw zero, 0(t0)\n"));
  const auto r = rtl.run();
  EXPECT_TRUE(r.exited);
  EXPECT_GT(r.cycles, 20000u);
}

TEST(FaultLayout, MisconfiguredLayoutsThrow) {
  kern::MmseLayout lay;
  lay.cluster = tera::TeraPoolConfig::tiny();
  lay.ntx = 3;  // unsupported odd size
  lay.nrx = 3;
  EXPECT_THROW(lay.validate(), SimError);
  lay.ntx = 8;
  lay.nrx = 4;  // NRX < NTX: under-determined
  EXPECT_THROW(lay.validate(), SimError);
}

TEST(FaultStage, ShapeMismatchesAreRejected) {
  kern::MmseLayout lay;
  lay.ntx = 4;
  lay.nrx = 4;
  lay.cluster = tera::TeraPoolConfig::tiny();
  tera::ClusterMemory mem(lay.cluster);
  sim::MimoProblem p;
  p.h = phy::CMat(2, 2);  // wrong shape
  p.y.resize(4);
  EXPECT_THROW(sim::stage_problem(mem, lay, 0, 0, p), SimError);
}

TEST(FaultKernelGen, BadUnrollIsRejected) {
  kern::MmseLayout lay;
  lay.ntx = 4;
  lay.nrx = 4;
  lay.cluster = tera::TeraPoolConfig::tiny();
  // 4 elements per dot product; unroll 3 does not divide the step count.
  EXPECT_THROW(kern::build_mmse_program(lay, {.gram_unroll = 3}), SimError);
}

TEST(FaultMachine, HartCountBeyondClusterStillConstructs) {
  // active_harts = 0 means "all cores"; explicit counts are honored as-is.
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 0);
  EXPECT_EQ(m.num_harts(), tera::TeraPoolConfig::tiny().num_cores());
}

// ---------------------------------------------------------------------------
// Deterministic fault injection (sim/fault.h + the per-layer hooks).

/// A single-hart counting loop long enough that a fault scheduled inside
/// kHartFaultInstretWindow always lands before the exit store.
rvasm::Program counting_prog() {
  return prog(R"(
    _start:
      li t0, 8000
    loop:
      addi t0, t0, -1
      bnez t0, loop
      li t1, 0x40000000
      sw zero, 0(t1)
  )");
}

TEST(FaultInject, TransientTrapFiresAtTheExactInstret) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(counting_prog());
  m.inject_hart_fault(0, 50, /*hang=*/false);
  m.run();
  EXPECT_TRUE(m.hart(0).state.trapped);
  EXPECT_EQ(m.hart(0).state.instret, 50u);
  EXPECT_EQ(m.hart_faults_applied(), 1u);
}

TEST(FaultInject, StuckHartHangIsReportedAsDeadlock) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(counting_prog());
  m.inject_hart_fault(0, 50, /*hang=*/true);
  const auto r = m.run();
  EXPECT_TRUE(r.deadlock);
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(m.hart_faults_applied(), 1u);
}

TEST(FaultInject, FaultBeyondTheRunNeverFires) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(counting_prog());
  m.inject_hart_fault(0, u64{1} << 40, /*hang=*/false);
  const auto r = m.run();
  EXPECT_TRUE(r.exited);
  EXPECT_FALSE(m.hart(0).state.trapped);
  EXPECT_EQ(m.hart_faults_applied(), 0u);
}

TEST(FaultInject, ClearedFaultsDoNotFire) {
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 1);
  m.load_program(counting_prog());
  m.inject_hart_fault(0, 50, /*hang=*/false);
  m.clear_hart_faults();
  const auto r = m.run();
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(m.hart_faults_applied(), 0u);
}

TEST(FaultDraw, HartDrawsAreDeterministicAndRateGated) {
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.hart_trap_rate = 1.0;
  const auto a = sim::draw_hart_fault(cfg, /*tti=*/3, /*batch=*/7, 8, false);
  const auto b = sim::draw_hart_fault(cfg, /*tti=*/3, /*batch=*/7, 8, false);
  ASSERT_TRUE(a.fire);
  EXPECT_EQ(a.hart, b.hart);
  EXPECT_EQ(a.at_instret, b.at_instret);
  EXPECT_LT(a.hart, 8u);
  EXPECT_GE(a.at_instret, 1u);
  EXPECT_LE(a.at_instret, sim::kHartFaultInstretWindow);
  cfg.hart_trap_rate = 0.0;
  EXPECT_FALSE(sim::draw_hart_fault(cfg, 3, 7, 8, false).fire);
  cfg.enabled = false;
  cfg.hart_trap_rate = 1.0;
  EXPECT_FALSE(sim::draw_hart_fault(cfg, 3, 7, 8, false).fire);
}

/// Stages a known pattern into the first `words` L1 words.
void stage_words(tera::ClusterMemory& mem, u32 words) {
  for (u32 w = 0; w < words; ++w) {
    const u32 v = 0xC0DE0000u + w;
    mem.host_write_words(w * 4, std::span<const u32>(&v, 1));
  }
}

TEST(FaultEcc, SingleBitUpsetsAreCorrectedWithoutTouchingMemory) {
  const auto pool = tera::TeraPoolConfig::tiny();
  const u32 words = 64;
  tera::ClusterMemory mem(pool);
  stage_words(mem, words);
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.l1_flip_rate = 4.0;
  cfg.l1_double_bit_fraction = 0.0;  // every event single-bit
  cfg.ecc = true;
  const auto counts = sim::apply_l1_faults(mem, words, cfg, /*tti=*/0, /*batch=*/0);
  EXPECT_EQ(counts.corrected, 4u);
  EXPECT_EQ(counts.detected, 0u);
  EXPECT_EQ(counts.silent, 0u);
  for (u32 w = 0; w < words; ++w) {
    EXPECT_EQ(mem.host_read_word(w * 4), 0xC0DE0000u + w);
  }
}

TEST(FaultEcc, DoubleBitUpsetsAreDetectedButCorrupt) {
  const auto pool = tera::TeraPoolConfig::tiny();
  const u32 words = 64;
  tera::ClusterMemory mem(pool);
  stage_words(mem, words);
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.l1_flip_rate = 4.0;
  cfg.l1_double_bit_fraction = 1.0;  // every event double-bit
  cfg.ecc = true;
  const auto counts = sim::apply_l1_faults(mem, words, cfg, 0, 0);
  EXPECT_EQ(counts.detected, 4u);
  EXPECT_EQ(counts.corrected, 0u);
  u32 changed = 0;
  for (u32 w = 0; w < words; ++w) {
    changed += mem.host_read_word(w * 4) != 0xC0DE0000u + w ? 1 : 0;
  }
  EXPECT_GE(changed, 1u);  // events may collide on a word, but not all cancel
}

TEST(FaultEcc, EccOffUpsetsAreSilentAndCorrupt) {
  const auto pool = tera::TeraPoolConfig::tiny();
  const u32 words = 64;
  tera::ClusterMemory mem(pool);
  stage_words(mem, words);
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.l1_flip_rate = 4.0;
  cfg.l1_double_bit_fraction = 0.0;
  cfg.ecc = false;
  const auto counts = sim::apply_l1_faults(mem, words, cfg, 0, 0);
  EXPECT_EQ(counts.silent, 4u);
  EXPECT_EQ(counts.corrected, 0u);
  EXPECT_EQ(counts.detected, 0u);
  u32 changed = 0;
  for (u32 w = 0; w < words; ++w) {
    changed += mem.host_read_word(w * 4) != 0xC0DE0000u + w ? 1 : 0;
  }
  EXPECT_GE(changed, 1u);
}

TEST(FaultEcc, UpsetPatternIsKeyedByTtiAndBatch) {
  const auto pool = tera::TeraPoolConfig::tiny();
  const u32 words = 64;
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.l1_flip_rate = 4.0;
  cfg.ecc = false;  // corrupting, so the pattern is visible in memory
  cfg.l1_double_bit_fraction = 0.0;
  const auto words_after = [&](u64 tti, u64 batch) {
    tera::ClusterMemory mem(pool);
    stage_words(mem, words);
    sim::apply_l1_faults(mem, words, cfg, tti, batch);
    std::vector<u32> out(words);
    for (u32 w = 0; w < words; ++w) out[w] = mem.host_read_word(w * 4);
    return out;
  };
  EXPECT_EQ(words_after(2, 5), words_after(2, 5));  // same site -> same upsets
  EXPECT_NE(words_after(2, 5), words_after(3, 5));  // different TTI
  EXPECT_NE(words_after(2, 5), words_after(2, 6));  // different batch
}

ran::TrafficConfig fault_traffic() {
  ran::TrafficConfig cfg;
  cfg.carrier.bandwidth_hz = 0.5e6;  // 16 data subcarriers
  cfg.carrier.symbols_per_slot = 2;
  cfg.groups = {
      ran::UeGroup{"embb", 4, 4, 16, 12.0, phy::ChannelType::kRayleigh, 1.0}};
  cfg.seed = 0xA11CE;
  return cfg;
}

ran::ClusterPoolConfig fault_pool(u32 clusters) {
  ran::ClusterPoolConfig cfg;
  cfg.num_clusters = clusters;
  cfg.host_threads = 2;
  cfg.cluster = tera::TeraPoolConfig::tiny();
  cfg.problems_per_core = 2;
  cfg.batch_cores = 3;  // several batches per symbol
  return cfg;
}

TEST(FaultCluster, DeadClusterWorkIsReassignedToSurvivors) {
  const ran::TrafficConfig tcfg = fault_traffic();
  const ran::SlotWorkload slot = ran::TrafficGenerator(tcfg).slot(0);

  ran::ClusterPoolConfig pool = fault_pool(2);
  pool.fault.enabled = true;
  pool.fault.cluster_fail_tti = 0;
  pool.fault.cluster_fail_id = 1;
  ran::SlotScheduler sched(pool, tcfg.groups);
  const ran::SlotResult r = sched.run_slot(slot);

  EXPECT_TRUE(r.degraded);
  ASSERT_EQ(r.dead_clusters.size(), 1u);
  EXPECT_EQ(r.dead_clusters[0], 1u);
  ASSERT_FALSE(r.trace.empty());
  for (const auto& t : r.trace) EXPECT_EQ(t.cluster, 0u);
  EXPECT_EQ(r.cluster_batches[1], 0u);

  // Detection on the survivor is bit-identical to a fault-free pool.
  ran::SlotScheduler clean(fault_pool(2), tcfg.groups);
  const ran::SlotResult c = clean.run_slot(slot);
  EXPECT_FALSE(c.degraded);
  EXPECT_EQ(r.errors, c.errors);
  EXPECT_EQ(r.detected_bits, c.detected_bits);
}

TEST(FaultCluster, ClusterDeathStartsAtTheConfiguredTti) {
  const ran::TrafficConfig tcfg = fault_traffic();
  ran::TrafficGenerator gen(tcfg);
  ran::ClusterPoolConfig pool = fault_pool(2);
  pool.fault.enabled = true;
  pool.fault.cluster_fail_tti = 1;
  pool.fault.cluster_fail_id = 0;
  ran::SlotScheduler sched(pool, tcfg.groups);
  const ran::SlotResult before = sched.run_slot(gen.slot(0));
  EXPECT_FALSE(before.degraded);
  EXPECT_TRUE(before.dead_clusters.empty());
  const ran::SlotResult after = sched.run_slot(gen.slot(1));
  EXPECT_TRUE(after.degraded);
  ASSERT_EQ(after.dead_clusters.size(), 1u);
  EXPECT_EQ(after.dead_clusters[0], 0u);
  for (const auto& t : after.trace) EXPECT_EQ(t.cluster, 1u);
}

TEST(FaultCluster, KillingTheOnlyClusterThrows) {
  const ran::TrafficConfig tcfg = fault_traffic();
  ran::ClusterPoolConfig pool = fault_pool(1);
  pool.fault.enabled = true;
  pool.fault.cluster_fail_tti = 0;
  pool.fault.cluster_fail_id = 0;
  EXPECT_THROW(ran::SlotScheduler(pool, tcfg.groups), SimError);
}

TEST(FaultScheduler, HartFaultsDegradeIntoBitErrorsNotCrashes) {
  // Aggressive trap+hang rates: failed batches count their bits as errors
  // and the slot completes degraded instead of throwing.
  const ran::TrafficConfig tcfg = fault_traffic();
  const ran::SlotWorkload slot = ran::TrafficGenerator(tcfg).slot(0);
  ran::ClusterPoolConfig pool = fault_pool(2);
  pool.fault.enabled = true;
  pool.fault.hart_trap_rate = 1.0;
  pool.fault.hart_hang_rate = 0.5;
  ran::SlotScheduler sched(pool, tcfg.groups);
  const ran::SlotResult r = sched.run_slot(slot);
  EXPECT_GT(r.hart_faults, 0u);
  EXPECT_LE(r.errors, r.bits);
  // Every hang produces a failed batch; with trap rate 1.0 and this seed at
  // least one batch must have failed and been flagged.
  EXPECT_GT(r.failed_batches, 0u);
  EXPECT_TRUE(r.degraded);

  // The faulted slot is reproducible: same config -> same outcome.
  ran::SlotScheduler again(pool, tcfg.groups);
  const ran::SlotResult r2 = again.run_slot(slot);
  EXPECT_EQ(r.errors, r2.errors);
  EXPECT_EQ(r.hart_faults, r2.hart_faults);
  EXPECT_EQ(r.failed_batches, r2.failed_batches);
  EXPECT_EQ(r.detected_bits, r2.detected_bits);
}

TEST(FaultBarrier, WrongParticipantCountDeadlocks) {
  // A 4-hart barrier executed by only 2 harts must be caught as deadlock
  // rather than hanging the host.
  iss::Machine m(tera::TeraPoolConfig::tiny(), {}, 2);
  m.load_program(prog(R"(
    _start:
      li t3, 0x80
      li t4, 1
      amoadd.w t5, t4, (t3)
      li t6, 3
      beq t5, t6, last
      wfi
    last:
      wfi
      j _start
  )"));
  const auto r = m.run();
  EXPECT_TRUE(r.deadlock);
}

}  // namespace
}  // namespace tsim
