// Event-driven fast-forward tests: Machine wake-event quiescence jumps,
// scheduler batch shrink bit-exactness (cycles/reloads/detections identical,
// strictly fewer host-retired instructions), the MAC cell's quiescent-TTI
// skip, and DSE warm-started points equalling cold-run points bit-exactly.
#include <gtest/gtest.h>

#include <memory>

#include "dse/space.h"
#include "dse/sweep.h"
#include "iss/machine.h"
#include "mac/cell.h"
#include "ran/scheduler.h"
#include "ran/traffic.h"
#include "rvasm/textasm.h"
#include "tera/config.h"

namespace tsim {
namespace {

// ---- iss::Machine wake events ----

/// Every hart parks in WFI immediately; after an external wake, hart 0
/// stores the exit code and non-zero harts park again.
std::unique_ptr<iss::Machine> parked_machine(u32 harts) {
  auto m = std::make_unique<iss::Machine>(tera::TeraPoolConfig::tiny(),
                                          iss::TimingConfig{}, harts);
  m->load_program(rvasm::assemble(R"(
    _start:
      wfi
      csrr t0, mhartid
      bnez t0, park
      li t1, 0x40000000
      li t2, 7
      sw t2, 0(t1)
    park:
      wfi
      j park
  )"));
  return m;
}

TEST(FastForwardMachine, JumpsToScheduledWakeInsteadOfDeadlocking) {
  auto m = parked_machine(4);
  const u64 wake_at = 10'000;
  m->schedule_wake_at(~0u, wake_at);  // broadcast: timer-style event
  EXPECT_EQ(m->pending_wake_events(), 1u);
  const iss::RunResult r = m->run();
  EXPECT_TRUE(r.exited);
  EXPECT_FALSE(r.deadlock);
  EXPECT_EQ(r.exit_code, 7u);
  EXPECT_EQ(m->idle_jumps(), 1u);
  EXPECT_EQ(m->pending_wake_events(), 0u);
  // The quiescent gap is charged as wfi stall, not spun through: every hart
  // resumed at (or after) the event cycle.
  for (u32 h = 0; h < 4; ++h) {
    EXPECT_GE(m->hart(h).cycles(), wake_at) << "hart " << h;
    EXPECT_GE(m->hart(h).wfi_stall_cycles, wake_at - 64) << "hart " << h;
  }
}

TEST(FastForwardMachine, SingleHartWakeTargetsExactlyThatHart) {
  auto m = parked_machine(2);
  m->schedule_wake_at(0, 500);  // wake hart 0 only; hart 1 sleeps through
  const iss::RunResult r = m->run();
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 7u);
  EXPECT_EQ(m->idle_jumps(), 1u);
  EXPECT_GE(m->hart(0).cycles(), 500u);
  // Hart 1 never woke: it is still parked at its first wfi.
  EXPECT_LT(m->hart(1).cycles(), 500u);
}

TEST(FastForwardMachine, NoEventsStillMeansDeadlock) {
  auto m = parked_machine(2);
  const iss::RunResult r = m->run();
  EXPECT_TRUE(r.deadlock);
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(m->idle_jumps(), 0u);
}

TEST(FastForwardMachine, EventsAreExactlyReplayableAfterReset) {
  auto a = parked_machine(3);
  auto b = parked_machine(3);
  a->schedule_wake_at(~0u, 2'000);
  b->schedule_wake_at(~0u, 2'000);
  a->run();
  b->run();
  for (u32 h = 0; h < 3; ++h) {
    EXPECT_EQ(a->hart(h).cycles(), b->hart(h).cycles()) << "hart " << h;
    EXPECT_EQ(a->hart(h).wfi_stall_cycles, b->hart(h).wfi_stall_cycles)
        << "hart " << h;
  }
  // reset_harts clears pending events: a fresh pass must not see stale ones.
  a->schedule_wake_at(~0u, 9'999);
  a->reset_harts();
  EXPECT_EQ(a->pending_wake_events(), 0u);
}

TEST(FastForwardMachine, ThreadedRunRefusesPendingEvents) {
  auto m = parked_machine(4);
  m->schedule_wake_at(~0u, 100);
  EXPECT_THROW(m->run_threads(2), SimError);
}

// ---- ran::SlotScheduler batch shrink ----

ran::TrafficConfig partial_traffic() {
  ran::TrafficConfig cfg;
  cfg.carrier.bandwidth_hz = 0.25e6;  // 8 subcarriers
  cfg.carrier.symbols_per_slot = 2;
  cfg.groups = {ran::UeGroup{"embb", 4, 4, 16, 12.0,
                             phy::ChannelType::kRayleigh, 1.0}};
  cfg.seed = 0xFF5EED;
  return cfg;
}

ran::ClusterPoolConfig shrink_pool(bool fast_forward) {
  ran::ClusterPoolConfig cfg;
  cfg.num_clusters = 1;
  cfg.host_threads = 1;
  cfg.cluster = tera::TeraPoolConfig::tiny();
  cfg.problems_per_core = 2;
  cfg.batch_cores = 8;  // capacity 16 > the 8-problem allocations: every
                        // batch is partially filled and eligible to shrink
  cfg.fast_forward = fast_forward;
  return cfg;
}

TEST(FastForwardScheduler, ShrunkBatchesKeepModeledAccountingBitExact) {
  ran::TrafficGenerator gen(partial_traffic());
  ran::SlotScheduler slow(shrink_pool(false), partial_traffic().groups);
  ran::SlotScheduler fast(shrink_pool(true), partial_traffic().groups);

  u64 slow_instr = 0, fast_instr = 0;
  for (u64 tti = 0; tti < 4; ++tti) {
    const ran::SlotWorkload slot = gen.slot(tti);
    const ran::SlotResult a = slow.run_slot(slot);
    const ran::SlotResult b = fast.run_slot(slot);

    // Everything modeled is identical...
    EXPECT_EQ(a.slot_cycles, b.slot_cycles) << "tti " << tti;
    EXPECT_EQ(a.total_reloads, b.total_reloads) << "tti " << tti;
    EXPECT_EQ(a.total_reload_cycles, b.total_reload_cycles) << "tti " << tti;
    EXPECT_EQ(a.cluster_busy_cycles, b.cluster_busy_cycles) << "tti " << tti;
    EXPECT_EQ(a.allocation_errors, b.allocation_errors) << "tti " << tti;
    EXPECT_EQ(a.detected_bits, b.detected_bits) << "tti " << tti;
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].cycles, b.trace[i].cycles) << "batch " << i;
      EXPECT_EQ(a.trace[i].reloads, b.trace[i].reloads) << "batch " << i;
    }
    slow_instr += a.total_instructions;
    fast_instr += b.total_instructions;
  }

  // ...while the host retired strictly less work on the shrunk variants.
  const ran::SlotScheduler::FastForwardStats off = slow.fast_forward_stats();
  const ran::SlotScheduler::FastForwardStats on = fast.fast_forward_stats();
  EXPECT_EQ(off.shrunk_batches, 0u);
  EXPECT_GT(on.shrunk_batches, 0u);
  EXPECT_LT(on.cores_run, on.cores_full);
  EXPECT_LT(fast_instr, slow_instr);
}

// Wide-cluster regression: at 128 cores the full run's critical path is the
// barrier WAKER's post-broadcast tail, not hart 0's exit path, and the 2x4
// geometry's scratch base crosses an li-expansion boundary between the
// 128-core and 4-core layouts. Both skewed the shrunk estimate by a few
// cycles until variants switched to MmseLayout::active_cores (full layout
// text, parked tail) - this pins that construction.
TEST(FastForwardScheduler, WideClusterWakerTailStaysBitExact) {
  ran::TrafficConfig tcfg;
  tcfg.carrier.bandwidth_hz = 0.25e6;  // 8 subcarriers
  tcfg.carrier.symbols_per_slot = 2;
  tcfg.groups = ran::mixed_geometry_groups();  // includes the 2x4 geometry
  tcfg.seed = 0xFF5EED;

  ran::ClusterPoolConfig pool;
  pool.num_clusters = 1;
  pool.host_threads = 1;
  pool.cluster = dse::cluster_for_cores(128);
  pool.problems_per_core = 1;
  pool.batch_cores = 128;

  ran::TrafficGenerator gen(tcfg);
  pool.fast_forward = false;
  ran::SlotScheduler slow(pool, tcfg.groups);
  pool.fast_forward = true;
  ran::SlotScheduler fast(pool, tcfg.groups);
  for (u64 tti = 0; tti < 2; ++tti) {
    const ran::SlotWorkload slot = gen.slot(tti);
    const ran::SlotResult a = slow.run_slot(slot);
    const ran::SlotResult b = fast.run_slot(slot);
    EXPECT_EQ(a.slot_cycles, b.slot_cycles) << "tti " << tti;
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i)
      EXPECT_EQ(a.trace[i].cycles, b.trace[i].cycles) << "batch " << i;
  }
  EXPECT_GT(fast.fast_forward_stats().shrunk_batches, 0u);
}

TEST(FastForwardScheduler, FullBatchesNeverShrink) {
  ran::TrafficConfig tcfg = partial_traffic();
  ran::ClusterPoolConfig pool = shrink_pool(true);
  pool.batch_cores = 4;  // capacity 8 == allocation size: always full
  ran::TrafficGenerator gen(tcfg);
  ran::SlotScheduler sched(pool, tcfg.groups);
  sched.run_slot(gen.slot(0));
  const ran::SlotScheduler::FastForwardStats s = sched.fast_forward_stats();
  EXPECT_EQ(s.shrunk_batches, 0u);
  EXPECT_GT(s.full_batches, 0u);
  EXPECT_EQ(s.cores_run, s.cores_full);
}

// ---- mac::Cell quiescent-TTI skip ----

mac::CellConfig trough_cell(bool fast_forward) {
  mac::CellConfig cfg;
  cfg.cell = 0;
  cfg.farm_seed = 0xD1A7;
  cfg.num_ues = 6;
  cfg.carrier.bandwidth_hz = 0.5e6;  // 16 subcarriers
  cfg.carrier.symbols_per_slot = 2;
  cfg.groups = ran::mixed_geometry_groups();
  cfg.burst.enabled = true;
  cfg.burst.duty = 0.25;
  cfg.burst.mean_on_slots = 4.0;
  cfg.burst.arrival_prob = 0.8;
  cfg.burst.diurnal_period_ttis = 40.0;
  cfg.burst.diurnal_depth = 1.0;  // deep troughs: long quiescent stretches
  cfg.pool.num_clusters = 1;
  cfg.pool.host_threads = 1;
  cfg.pool.fast_forward = fast_forward;
  return cfg;
}

TEST(FastForwardCell, SkippedIdleTtisLeaveTheReportBitIdentical) {
  mac::Cell slow(trough_cell(false));
  mac::Cell fast(trough_cell(true));
  const u32 ttis = 300;
  for (u32 t = 0; t < ttis; ++t) {
    slow.step(t);
    fast.step(t);
  }
  EXPECT_EQ(slow.ff_idle_ttis(), 0u);
  EXPECT_GT(fast.ff_idle_ttis(), 0u);
  EXPECT_TRUE(slow.report() == fast.report());
  // The archived per-slot results the percentiles read are identical too.
  ASSERT_EQ(slow.slot_results().size(), fast.slot_results().size());
  for (size_t i = 0; i < slow.slot_results().size(); ++i) {
    EXPECT_EQ(slow.slot_results()[i].tti, fast.slot_results()[i].tti);
    EXPECT_EQ(slow.slot_results()[i].slot_cycles,
              fast.slot_results()[i].slot_cycles);
  }
  // Observability for the README's measured skip ratio.
  std::printf("[ff] quiescent TTIs skipped: %llu / %u (%.0f%%)\n",
              static_cast<unsigned long long>(fast.ff_idle_ttis()), ttis,
              100.0 * static_cast<double>(fast.ff_idle_ttis()) / ttis);
  const ran::SlotScheduler::FastForwardStats s = fast.ff_batch_stats();
  std::printf("[ff] batches shrunk: %llu / %llu, simulated cores %llu / %llu "
              "(%.0f%% parked)\n",
              static_cast<unsigned long long>(s.shrunk_batches),
              static_cast<unsigned long long>(s.shrunk_batches + s.full_batches),
              static_cast<unsigned long long>(s.cores_run),
              static_cast<unsigned long long>(s.cores_full),
              100.0 * s.park_fraction());
}

// ---- DSE warm start ----

TEST(FastForwardDse, WarmStartedPointsEqualColdRunPointsBitExactly) {
  dse::DesignSpace space;
  space.clusters = {1, 2};
  space.cores_per_cluster = {16};
  space.precisions = {kern::Precision::k16CDotp};
  space.problems_per_core = {1, 4};
  space.policies = {ran::AssignPolicy::kLocality};

  dse::SweepConfig cfg;
  cfg.traffic.carrier.bandwidth_hz = 0.5e6;
  cfg.traffic.carrier.symbols_per_slot = 2;
  cfg.traffic.groups = ran::mixed_geometry_groups();
  cfg.traffic.seed = 0xD5E;
  cfg.ttis = 2;
  cfg.golden_ber = false;

  cfg.warm_start = false;
  const dse::SweepResult cold = dse::run_sweep(space, cfg);
  cfg.warm_start = true;
  const dse::SweepResult warm = dse::run_sweep(space, cfg);

  ASSERT_EQ(cold.points.size(), warm.points.size());
  ASSERT_EQ(cold.skipped.size(), warm.skipped.size());
  for (size_t i = 0; i < cold.points.size(); ++i) {
    const dse::PointMetrics& a = cold.points[i];
    const dse::PointMetrics& b = warm.points[i];
    EXPECT_EQ(a.batch_cores, b.batch_cores) << a.point.label();
    EXPECT_EQ(a.problems, b.problems) << a.point.label();
    EXPECT_EQ(a.bits, b.bits) << a.point.label();
    EXPECT_EQ(a.errors, b.errors) << a.point.label();
    EXPECT_EQ(a.instructions, b.instructions) << a.point.label();
    EXPECT_EQ(a.slot_cycles, b.slot_cycles) << a.point.label();
    EXPECT_EQ(a.worst_slot_bits, b.worst_slot_bits) << a.point.label();
    EXPECT_EQ(a.reloads, b.reloads) << a.point.label();
    EXPECT_EQ(a.reload_cycles, b.reload_cycles) << a.point.label();
    EXPECT_EQ(a.busy_cycles, b.busy_cycles) << a.point.label();
  }
}

}  // namespace
}  // namespace tsim
