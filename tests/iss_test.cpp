// Fast ISS tests: program execution, timing model (static latencies + RAW
// scoreboard), multi-hart scheduling, barriers, wfi/wake, determinism, and
// single- vs multi-thread equivalence.
#include <gtest/gtest.h>

#include <memory>

#include "iss/machine.h"
#include "rvasm/textasm.h"
#include "tera/addr_map.h"

namespace tsim::iss {
namespace {

rvasm::Program prog(const std::string& text) { return rvasm::assemble(text); }

/// Convenience: machine with N harts on the tiny cluster. (Machine holds
/// atomics, so it is neither movable nor copyable - heap-allocate it.)
std::unique_ptr<Machine> make_machine(const std::string& text, u32 harts = 1,
                                      TimingConfig t = {}) {
  auto m = std::make_unique<Machine>(tera::TeraPoolConfig::tiny(), t, harts);
  m->load_program(prog(text));
  return m;
}

TEST(Iss, RunsToExitStore) {
  auto m = make_machine(R"(
    _start:
      li t0, 0x40000000   # exit MMIO
      li t1, 5
      sw t1, 0(t0)
  )");
  const auto r = m->run();
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 5u);
}

TEST(Iss, CountsInstructionsAndLoop) {
  auto m = make_machine(R"(
    _start:
      li t0, 10
      li t1, 0
    loop:
      addi t1, t1, 1
      addi t0, t0, -1
      bnez t0, loop
      li t2, 0x40000000
      sw t1, 0(t2)
  )");
  const auto r = m->run();
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 10u);
  // 2 + 10*3 + 2 (li t2 is li+nothing; sw) = 34-ish; exact: 2 + 30 + 1 + 1.
  EXPECT_EQ(m->hart(0).instructions(), 34u);
}

TEST(Iss, EbreakHaltsHart) {
  auto m = make_machine("_start:\n nop\n ebreak\n");
  const auto r = m->run();
  EXPECT_FALSE(r.exited);
  EXPECT_TRUE(m->hart(0).state.halted);
  EXPECT_FALSE(m->hart(0).state.trapped);
}

TEST(Iss, InvalidInstructionTraps) {
  auto m = make_machine("_start:\n .word 0xFFFFFFFF\n");
  m->run();
  EXPECT_TRUE(m->hart(0).state.trapped);
}

TEST(Iss, PutcharConsole) {
  auto m = make_machine(R"(
    _start:
      li t0, 0x40000004
      li t1, 72        # 'H'
      sw t1, 0(t0)
      li t1, 105       # 'i'
      sw t1, 0(t0)
      ebreak
  )");
  m->run();
  EXPECT_EQ(m->memory().console(), "Hi");
}

// ----- timing model -----

TEST(IssTiming, RawStallOnLoadUse) {
  // Immediate use of a load result stalls for the static memory latency.
  auto strict = make_machine(R"(
    _start:
      li t0, 0x100
      lw t1, 0(t0)
      addi t1, t1, 1    # immediate consumer
      ebreak
  )");
  strict->run();
  const u64 with_use = strict->hart(0).cycles();

  auto relaxed = make_machine(R"(
    _start:
      li t0, 0x100
      lw t1, 0(t0)
      addi t2, zero, 1  # independent instruction
      ebreak
  )");
  relaxed->run();
  const u64 without_use = relaxed->hart(0).cycles();
  EXPECT_GT(with_use, without_use);
  EXPECT_GT(strict->hart(0).raw_stall_cycles, 0u);
  EXPECT_EQ(relaxed->hart(0).raw_stall_cycles, 0u);
}

TEST(IssTiming, ScoreboardOffRemovesStalls) {
  TimingConfig t;
  t.scoreboard = false;
  auto m = make_machine(R"(
    _start:
      li t0, 0x100
      lw t1, 0(t0)
      addi t1, t1, 1
      ebreak
  )", 1, t);
  m->run();
  EXPECT_EQ(m->hart(0).raw_stall_cycles, 0u);
}

TEST(IssTiming, StaticMemoryLatencyIsConfigurable) {
  const auto body = R"(
    _start:
      li t0, 0x100
      lw t1, 0(t0)
      addi t1, t1, 1
      ebreak
  )";
  TimingConfig t9;  // default 9
  auto m9 = make_machine(body, 1, t9);
  m9->run();
  TimingConfig t1;
  t1.static_mem_latency = 1;
  auto m1 = make_machine(body, 1, t1);
  m1->run();
  EXPECT_GT(m9->hart(0).cycles(), m1->hart(0).cycles());
}

TEST(IssTiming, TakenBranchCostsMore) {
  auto taken = make_machine(R"(
    _start:
      li t0, 1
      bnez t0, skip
      nop
    skip:
      ebreak
  )");
  taken->run();
  auto fallthrough = make_machine(R"(
    _start:
      li t0, 0
      bnez t0, skip
      nop
    skip:
      ebreak
  )");
  fallthrough->run();
  // Same instruction count +-1; the taken branch pays the flush penalty.
  EXPECT_GT(taken->hart(0).cycles() + 1, fallthrough->hart(0).cycles());
}

TEST(IssTiming, MixHistogramIsPopulated) {
  auto m = make_machine(R"(
    _start:
      li t0, 0x100
      lw t1, 0(t0)
      sw t1, 4(t0)
      mul t2, t1, t1
      fadd.h t3, t1, t2
      ebreak
  )");
  m->run();
  const auto& mix = m->hart(0).mix;
  EXPECT_GT(mix[static_cast<size_t>(rv::Mix::kLoad)], 0u);
  EXPECT_GT(mix[static_cast<size_t>(rv::Mix::kStore)], 0u);
  EXPECT_GT(mix[static_cast<size_t>(rv::Mix::kMul)], 0u);
  EXPECT_GT(mix[static_cast<size_t>(rv::Mix::kFp)], 0u);
  EXPECT_GT(mix[static_cast<size_t>(rv::Mix::kAlu)], 0u);
}

// ----- multi-hart -----

const char* kParallelSum = R"(
    # Each hart adds hartid+1 into a shared accumulator with amoadd, then
    # hart 0 exits after a software barrier (amoadd counter + wfi/wake).
    _start:
      csrr t0, mhartid
      addi t1, t0, 1
      li t2, 0x200          # accumulator
      amoadd.w zero, t1, (t2)
      # barrier
      li t3, 0x80           # barrier counter
      li t4, 1
      amoadd.w t5, t4, (t3)
      li t6, 3              # nharts-1
      beq t5, t6, last
      wfi
      j after
    last:
      sw zero, 0(t3)
      li s2, 0x40000008     # wake MMIO
      li s3, -1
      sw s3, 0(s2)
    after:
      csrr t0, mhartid
      bnez t0, park
      li s4, 0x200
      lw s5, 0(s4)
      li s6, 0x40000000
      sw s5, 0(s6)          # exit with the sum
    park:
      wfi
      j park
)";

TEST(IssMultiHart, BarrierAndSharedMemory) {
  Machine m(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  m.load_program(prog(kParallelSum));
  const auto r = m.run();
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 1u + 2 + 3 + 4);
}

TEST(IssMultiHart, MultiThreadMatchesSingleThread) {
  Machine single(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  single.load_program(prog(kParallelSum));
  const auto r1 = single.run();

  Machine multi(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  multi.load_program(prog(kParallelSum));
  const auto r2 = multi.run_threads(2);

  EXPECT_TRUE(r2.exited);
  EXPECT_EQ(r1.exit_code, r2.exit_code);
  // The shared-memory result is schedule-independent. (Per-hart instruction
  // counts of the post-exit park loops are not: the exit store races with
  // other harts' parking, exactly as on the real hardware.)
  EXPECT_EQ(single.memory().host_read_word(0x200),
            multi.memory().host_read_word(0x200));
}

TEST(IssMultiHart, RerunAfterResetIsDeterministic) {
  Machine m(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  m.load_program(prog(kParallelSum));
  const auto r1 = m.run();
  const u64 c1 = m.estimated_cycles();
  const std::vector<u32> zero_word = {0};
  m.memory().host_write_words(0x200, zero_word);  // clear accumulator
  m.reset_harts();
  const auto r2 = m.run();
  EXPECT_EQ(r1.exit_code, r2.exit_code);
  EXPECT_EQ(c1, m.estimated_cycles());
}

TEST(IssMultiHart, DeadlockIsDetected) {
  auto m = make_machine("_start:\n wfi\n j _start\n", 2);
  const auto r = m->run();
  EXPECT_TRUE(r.deadlock);
}

TEST(IssMultiHart, WfiStallCyclesAccounted) {
  Machine m(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  m.load_program(prog(kParallelSum));
  m.run();
  // At least one non-last hart must have slept at the barrier.
  u64 total_wfi = 0;
  for (u32 i = 0; i < 4; ++i) total_wfi += m.hart(i).wfi_stall_cycles;
  EXPECT_GT(total_wfi, 0u);
}

TEST(Iss, MaxInstructionBudgetStopsRunaway) {
  auto m = make_machine("_start:\n j _start\n");
  const auto r = m->run(1000);
  EXPECT_EQ(r.instructions, 1000u);
  EXPECT_FALSE(r.exited);
}

TEST(Iss, ExitOnExactInstructionBudgetIsReported) {
  // The exit store is the 3rd and last budgeted instruction: the RunResult
  // must still carry the exit status (a budget-boundary exit used to be
  // reported as not-exited because the early return skipped exited_).
  const char* body = R"(
    _start:
      lui t0, 0x40000     # exit MMIO base
      li t1, 5
      sw t1, 0(t0)
  )";
  auto m = make_machine(body);
  const auto r = m->run(3);
  EXPECT_EQ(r.instructions, 3u);
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 5u);

  // Same program under a multi-threaded run with the same budget.
  auto mt = make_machine(body);
  const auto rt = mt->run_threads(1, 3);
  EXPECT_EQ(rt.instructions, 3u);
  EXPECT_TRUE(rt.exited);
  EXPECT_EQ(rt.exit_code, 5u);
}

TEST(Iss, RunThreadsHonoursMaxInstructions) {
  // run_threads used to silently ignore the budget; now it is a shared pool
  // claimed quantum-by-quantum and never overshoots.
  auto m = make_machine("_start:\n j _start\n", 4);
  const auto r = m->run_threads(2, 1000);
  EXPECT_EQ(r.instructions, 1000u);
  EXPECT_FALSE(r.exited);
  EXPECT_FALSE(r.deadlock);
}

TEST(Iss, TranslationCacheCoversProgram) {
  const auto p = prog("_start:\n nop\n ebreak\n");
  TranslationCache tc(p);
  EXPECT_EQ(tc.size(), p.words.size());
  EXPECT_NE(tc.lookup(p.base), nullptr);
  EXPECT_EQ(tc.lookup(p.base + 1), nullptr);        // misaligned
  EXPECT_EQ(tc.lookup(p.base + 0x10000), nullptr);  // out of range
}

TEST(Iss, SuperblockRunLengthsStopAtBoundaries) {
  // addi / addi / beq / addi / wfi / jal / .word garbage
  const auto p = prog(R"(
    _start:
      addi t0, zero, 1
      addi t1, zero, 2
      beq t0, t1, _start
      addi t2, zero, 3
      wfi
      j _start
      .word 0xFFFFFFFF
  )");
  TranslationCache tc(p);
  ASSERT_EQ(tc.size(), 7u);
  const auto run_len = [&](u32 idx) { return tc.entry(p.base + idx * 4)->run_len; };
  EXPECT_EQ(run_len(0), 3u);  // addi, addi, beq
  EXPECT_EQ(run_len(1), 2u);
  EXPECT_EQ(run_len(2), 1u);  // branch terminates its own run
  EXPECT_EQ(run_len(3), 2u);  // addi, wfi
  EXPECT_EQ(run_len(4), 1u);  // wfi
  EXPECT_EQ(run_len(5), 1u);  // jal
  EXPECT_EQ(run_len(6), 1u);  // invalid word heads its own run
  EXPECT_EQ(tc.entry(p.base + 1), nullptr);  // misaligned
  // Folded metadata matches the ISA table.
  const SbEntry* e = tc.entry(p.base);
  EXPECT_EQ(e->d.op, rv::Op::kAddi);
  EXPECT_NE(e->flags & kSbWritesRd, 0);
  EXPECT_EQ(e->flags & kSbStore, 0);
}

TEST(Iss, ScWakeTimestampsMatchTracedReference) {
  // sc.w is classified kAmo but stores through the same path as sw, so it
  // can hit the MMIO wake register; the fast path must refresh the wake
  // timestamp for it exactly like the per-instruction reference path does,
  // or the woken hart's wfi stall accounting diverges.
  const char* body = R"(
    _start:
      csrr t0, mhartid
      bnez t0, waker
      wfi                  # hart 0 parks until the sc.w wake
      li t2, 0x40000000
      sw zero, 0(t2)       # exit
    waker:
      li t3, 0x40000008    # wake MMIO
      lr.w t4, (t3)
      sc.w t5, zero, (t3)  # store hart id 0 -> wakes hart 0
    park:
      wfi
      j park
  )";
  auto fast = make_machine(body, 2);
  const auto rf = fast->run();
  auto ref = make_machine(body, 2);
  ref->set_trace([](u32, u32, const rv::Decoded&) {});
  const auto rr = ref->run();
  ASSERT_TRUE(rf.exited);
  ASSERT_TRUE(rr.exited);
  for (u32 h = 0; h < 2; ++h) {
    EXPECT_EQ(fast->hart(h).cycles(), ref->hart(h).cycles()) << "hart " << h;
    EXPECT_EQ(fast->hart(h).wfi_stall_cycles, ref->hart(h).wfi_stall_cycles)
        << "hart " << h;
  }
  EXPECT_GT(fast->hart(0).wfi_stall_cycles, 0u);
}

// ----- resident-program cache -----

TEST(Iss, ResidentProgramCacheKeysByContentIdentity) {
  const auto p1 = prog("_start:\n li t0, 1\n ebreak\n");
  const auto p2 = prog("_start:\n li t0, 2\n ebreak\n");
  Machine m(tera::TeraPoolConfig::tiny(), TimingConfig{}, 1);
  EXPECT_EQ(m.active_program(), Machine::kNoProgram);

  const auto h1 = m.load_program(p1);
  EXPECT_EQ(m.active_program(), h1);
  EXPECT_EQ(m.num_resident_programs(), 1u);

  const auto h2 = m.load_program(p2);
  EXPECT_NE(h2, h1);
  EXPECT_EQ(m.active_program(), h2);
  EXPECT_EQ(m.num_resident_programs(), 2u);

  // Reloading p1 - even via a freshly assembled, content-identical program
  // object - finds the resident entry instead of translating again.
  const auto p1_again = prog("_start:\n li t0, 1\n ebreak\n");
  EXPECT_EQ(m.load_program(p1_again), h1);
  EXPECT_EQ(m.num_resident_programs(), 2u);
  const u64 switches = m.program_switches();

  // Reloading the active program is a no-op plus reset (no image rewrite).
  EXPECT_EQ(m.load_program(p1), h1);
  EXPECT_EQ(m.program_switches(), switches);

  // select_program activates a resident program directly.
  m.select_program(h2);
  EXPECT_EQ(m.active_program(), h2);
  m.run();
  EXPECT_EQ(m.hart(0).state.x[5], 2u);  // t0 from p2
  EXPECT_THROW(m.select_program(99), SimError);
}

TEST(Iss, ResidentProgramSwapIsBitExactVsColdLoad) {
  // Machine A ping-pongs: barrier program, a second program that scribbles
  // over L1 and the (shared) L2 image range footprint, then the barrier
  // program again via the resident cache. Its final run must be bit-exact -
  // registers, cycles, stall accounting - against machine B's cold first
  // run of the same program.
  const char* scribble = R"(
    _start:
      li t0, 0x100
      li t1, 0xDEAD
      sw t1, 0(t0)
      sw t1, 4(t0)
      li t2, 0x40000000
      sw zero, 0(t2)
  )";
  Machine a(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  const auto h_sum = a.load_program(prog(kParallelSum));
  ASSERT_TRUE(a.run().exited);
  const auto h_scribble = a.load_program(prog(scribble));
  ASSERT_NE(h_scribble, h_sum);
  ASSERT_TRUE(a.run().exited);
  // Clear the accumulator the first barrier run left in L1, then swap the
  // resident barrier program back in (cache hit: no retranslation).
  const std::vector<u32> zero_word = {0};
  a.memory().host_write_words(0x200, zero_word);
  a.memory().host_write_words(0x80, zero_word);
  ASSERT_EQ(a.load_program(prog(kParallelSum)), h_sum);
  const auto ra = a.run();

  Machine b(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  b.load_program(prog(kParallelSum));
  const auto rb = b.run();

  ASSERT_TRUE(ra.exited);
  ASSERT_TRUE(rb.exited);
  EXPECT_EQ(ra.exit_code, rb.exit_code);
  EXPECT_EQ(ra.instructions, rb.instructions);
  for (u32 h = 0; h < 4; ++h) {
    EXPECT_EQ(a.hart(h).cycles(), b.hart(h).cycles()) << "hart " << h;
    EXPECT_EQ(a.hart(h).instructions(), b.hart(h).instructions()) << "hart " << h;
    EXPECT_EQ(a.hart(h).raw_stall_cycles, b.hart(h).raw_stall_cycles) << "hart " << h;
    EXPECT_EQ(a.hart(h).wfi_stall_cycles, b.hart(h).wfi_stall_cycles) << "hart " << h;
    EXPECT_EQ(a.hart(h).state.x, b.hart(h).state.x) << "hart " << h;
  }
}

TEST(Iss, ProgramFingerprintSeparatesImages) {
  const auto p1 = prog("_start:\n li t0, 1\n ebreak\n");
  const auto p2 = prog("_start:\n li t0, 2\n ebreak\n");
  EXPECT_EQ(program_fingerprint(p1), program_fingerprint(p1));
  EXPECT_NE(program_fingerprint(p1), program_fingerprint(p2));
  auto moved = p1;
  moved.base += 0x1000;
  EXPECT_NE(program_fingerprint(p1), program_fingerprint(moved));

  // Identical images whose "_start" differs are distinct programs: the
  // resident cache must not return the first program's entry point for the
  // second (they execute differently).
  const auto entry_base = prog("_start:\n nop\n li t0, 7\n ebreak\n");
  const auto entry_later = prog("nop\n_start:\n li t0, 7\n ebreak\n");
  ASSERT_EQ(entry_base.words, entry_later.words);
  EXPECT_NE(program_entry_pc(entry_base), program_entry_pc(entry_later));
  EXPECT_NE(program_fingerprint(entry_base), program_fingerprint(entry_later));

  Machine m(tera::TeraPoolConfig::tiny(), TimingConfig{}, 1);
  const auto h1 = m.load_program(entry_base);
  const auto h2 = m.load_program(entry_later);
  EXPECT_NE(h1, h2);
  m.run();
  EXPECT_EQ(m.hart(0).instructions(), 2u);  // skipped the leading nop
}

// ----- SPMD convergence batching (see machine.h) -----
// The serial path (set_batching(false)) is the bit-exactness oracle: the
// batched dispatch must reproduce cycles, registers, stalls, and wake
// timestamps exactly on every workload below.

/// Expects hart-for-hart bit-identical state between two machines.
void expect_harts_identical(const Machine& a, const Machine& b) {
  ASSERT_EQ(a.num_harts(), b.num_harts());
  for (u32 h = 0; h < a.num_harts(); ++h) {
    EXPECT_EQ(a.hart(h).cycles(), b.hart(h).cycles()) << "hart " << h;
    EXPECT_EQ(a.hart(h).instructions(), b.hart(h).instructions()) << "hart " << h;
    EXPECT_EQ(a.hart(h).raw_stall_cycles, b.hart(h).raw_stall_cycles) << "hart " << h;
    EXPECT_EQ(a.hart(h).wfi_stall_cycles, b.hart(h).wfi_stall_cycles) << "hart " << h;
    EXPECT_EQ(a.hart(h).wake_cycle, b.hart(h).wake_cycle) << "hart " << h;
    EXPECT_EQ(a.hart(h).state.x, b.hart(h).state.x) << "hart " << h;
    EXPECT_EQ(a.hart(h).mix, b.hart(h).mix) << "hart " << h;
  }
}

TEST(IssBatch, BatchedMatchesSerialOnBarrierWorkload) {
  Machine batched(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  ASSERT_TRUE(batched.batching());  // default on
  batched.load_program(prog(kParallelSum));
  const auto rb = batched.run();

  Machine serial(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  serial.set_batching(false);
  serial.load_program(prog(kParallelSum));
  const auto rs = serial.run();

  ASSERT_TRUE(rb.exited);
  ASSERT_TRUE(rs.exited);
  EXPECT_EQ(rb.exit_code, rs.exit_code);
  EXPECT_EQ(rb.instructions, rs.instructions);
  expect_harts_identical(batched, serial);
  // The four harts really did run in lockstep.
  EXPECT_GT(batched.batch_stats().batches, 0u);
  EXPECT_EQ(batched.batch_stats().width_max, 4u);
  EXPECT_EQ(serial.batch_stats().batches, 0u);
}

TEST(IssBatch, BatchedMatchesSerialOnDeadlockWorkload) {
  auto batched = make_machine("_start:\n wfi\n j _start\n", 4);
  const auto rb = batched->run();
  auto serial = make_machine("_start:\n wfi\n j _start\n", 4);
  serial->set_batching(false);
  const auto rs = serial->run();
  EXPECT_TRUE(rb.deadlock);
  EXPECT_TRUE(rs.deadlock);
  EXPECT_EQ(rb.instructions, rs.instructions);
  expect_harts_identical(*batched, *serial);
}

TEST(IssBatch, SingleHartNeverBatches) {
  auto m = make_machine("_start:\n li t0, 0x40000000\n sw zero, 0(t0)\n", 1);
  EXPECT_TRUE(m->run().exited);
  EXPECT_EQ(m->batch_stats().batches, 0u);
  EXPECT_EQ(m->batch_stats().lockstep_instructions, 0u);
}

TEST(IssBatch, FullyDivergentPcsFallBackToSerial) {
  // Harts branch to per-hart infinite loops: after the first pass no two
  // awake harts share a pc, so batches stop forming and every turn takes
  // the serial path - results must stay bit-exact under a budget cut.
  const char* body = R"(
    _start:
      csrr t0, mhartid
      li t1, 1
      beq t0, t1, loop1
      li t1, 2
      beq t0, t1, loop2
      li t1, 3
      beq t0, t1, loop3
    loop0:
      addi s0, s0, 1
      j loop0
    loop1:
      addi s1, s1, 2
      j loop1
    loop2:
      addi s2, s2, 3
      j loop2
    loop3:
      addi s3, s3, 4
      j loop3
  )";
  auto batched = make_machine(body, 4);
  const auto rb = batched->run(2000);
  auto serial = make_machine(body, 4);
  serial->set_batching(false);
  const auto rs = serial->run(2000);
  EXPECT_EQ(rb.instructions, 2000u);
  EXPECT_EQ(rs.instructions, 2000u);
  expect_harts_identical(*batched, *serial);
  // Divergence was actually exercised (first-turn batch split on the
  // hartid branches), and the budget cut landed on a serial turn.
  EXPECT_GT(batched->batch_stats().split_divergence, 0u);
}

TEST(IssBatch, MidSuperblockQuantumExpiryInsideBatch) {
  // A straight-line run longer than the scheduler quantum: the quantum
  // expires mid-superblock inside the batch, which must re-form at the
  // interior pc next turn and still match the serial path exactly.
  std::string body = "_start:\n";
  for (int i = 0; i < 300; ++i) body += "  addi t1, t1, 1\n";
  body += "  li t2, 0x40000000\n  sw t1, 0(t2)\n";
  auto batched = make_machine(body, 4);
  const auto rb = batched->run();
  auto serial = make_machine(body, 4);
  serial->set_batching(false);
  const auto rs = serial->run();
  ASSERT_TRUE(rb.exited);
  ASSERT_TRUE(rs.exited);
  EXPECT_EQ(rb.exit_code, rs.exit_code);
  EXPECT_EQ(rb.instructions, rs.instructions);
  expect_harts_identical(*batched, *serial);
  // The replay consumed whole quanta (trace exhausted at the budget), so
  // the batch really did span a superblock boundary cut.
  EXPECT_GT(batched->batch_stats().split_budget, 0u);
  EXPECT_GT(batched->batch_stats().avg_run_length(), 100.0);
}

TEST(IssBatch, BudgetedRunsAreExactAndIdenticalToSerial) {
  // max_instructions semantics must be untouched by batching: the exact
  // same instruction count retires, and per-hart state matches bit for bit
  // (a batch only forms with full-quantum headroom for every member).
  auto batched = make_machine("_start:\n j _start\n", 4);
  const auto rb = batched->run(1000);
  auto serial = make_machine("_start:\n j _start\n", 4);
  serial->set_batching(false);
  const auto rs = serial->run(1000);
  EXPECT_EQ(rb.instructions, 1000u);
  EXPECT_EQ(rs.instructions, 1000u);
  EXPECT_FALSE(rb.exited);
  expect_harts_identical(*batched, *serial);

  // run_threads shares the budget pool across shards; batched turns claim
  // width*quantum and must never overshoot either.
  auto mt = make_machine("_start:\n j _start\n", 4);
  const auto rt = mt->run_threads(2, 1000);
  EXPECT_EQ(rt.instructions, 1000u);
  EXPECT_FALSE(rt.exited);
  EXPECT_FALSE(rt.deadlock);
}

TEST(IssBatch, ScWakeTimestampsMatchSerial) {
  // The sc.w wake path: the woken hart's wake timestamp (and hence its wfi
  // stall accounting) must be identical when the waker runs as a batch
  // follower instead of a serial turn.
  const char* body = R"(
    _start:
      csrr t0, mhartid
      bnez t0, waker
      wfi                  # hart 0 parks until the sc.w wake
      li t2, 0x40000000
      sw zero, 0(t2)       # exit
    waker:
      li t3, 0x40000008    # wake MMIO
      lr.w t4, (t3)
      sc.w t5, zero, (t3)  # store hart id 0 -> wakes hart 0
    park:
      wfi
      j park
  )";
  auto batched = make_machine(body, 2);
  const auto rb = batched->run();
  auto serial = make_machine(body, 2);
  serial->set_batching(false);
  const auto rs = serial->run();
  ASSERT_TRUE(rb.exited);
  ASSERT_TRUE(rs.exited);
  expect_harts_identical(*batched, *serial);
  EXPECT_GT(batched->hart(0).wfi_stall_cycles, 0u);
}

TEST(Iss, SuperblockFastPathMatchesTracedReferenceOnBarriers) {
  // The wfi/wake-heavy barrier program, fast path vs the per-instruction
  // reference path (forced by a no-op trace hook): registers, instruction
  // counts, and cycle counts must be bit-identical.
  Machine fast(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  fast.load_program(prog(kParallelSum));
  const auto rf = fast.run();

  Machine ref(tera::TeraPoolConfig::tiny(), TimingConfig{}, 4);
  ref.set_trace([](u32, u32, const rv::Decoded&) {});
  ref.load_program(prog(kParallelSum));
  const auto rr = ref.run();

  EXPECT_TRUE(rf.exited);
  EXPECT_TRUE(rr.exited);
  EXPECT_EQ(rf.exit_code, rr.exit_code);
  EXPECT_EQ(rf.instructions, rr.instructions);
  for (u32 h = 0; h < 4; ++h) {
    EXPECT_EQ(fast.hart(h).cycles(), ref.hart(h).cycles()) << "hart " << h;
    EXPECT_EQ(fast.hart(h).instructions(), ref.hart(h).instructions()) << "hart " << h;
    EXPECT_EQ(fast.hart(h).state.x, ref.hart(h).state.x) << "hart " << h;
  }
}

// ----- SoA hart-state layout (see hart.h) -----
// The vectorized lockstep sweep reads/writes the machine-owned column
// arrays; these tests pin its results - including the full RAW scoreboard,
// which expect_harts_identical does not cover - against the serial oracle
// and the per-instruction traced reference across the state transitions the
// column passes handle specially (divergence splits, park/wake, budget
// cuts, shard boundaries, generic-op fallbacks).

/// The kParallelSum barrier program generalized to `nharts` harts.
std::string parallel_sum(u32 nharts) {
  std::string body(kParallelSum);
  const auto pos = body.find("li t6, 3");
  EXPECT_NE(pos, std::string::npos);
  body.replace(pos, 8, "li t6, " + std::to_string(nharts - 1));
  return body;
}

/// Hart-for-hart equality including the 32-entry RAW scoreboard snapshot.
void expect_scoreboards_identical(const Machine& a, const Machine& b) {
  expect_harts_identical(a, b);
  for (u32 h = 0; h < a.num_harts(); ++h)
    EXPECT_EQ(a.hart(h).ready, b.hart(h).ready) << "hart " << h;
}

TEST(IssSoa, ScoreboardSnapshotMatchesTracedReference) {
  // A load-use + FP chain leaves non-trivial per-register ready times; the
  // snapshot assembled from the ready columns must equal the traced
  // reference path entry for entry.
  const char* body = R"(
    _start:
      li t0, 0x100
      sw t0, 0(t0)
      lw t1, 0(t0)        # load-use: ready[t1] lands late
      addi t2, t1, 7
      mul t3, t2, t2      # multi-cycle result latency
      sw t3, 4(t0)
      ebreak
  )";
  auto fast = make_machine(body, 2);
  fast->run();
  auto ref = make_machine(body, 2);
  ref->set_trace([](u32, u32, const rv::Decoded&) {});
  ref->run();
  for (u32 h = 0; h < 2; ++h) {
    EXPECT_EQ(fast->hart(h).ready, ref->hart(h).ready) << "hart " << h;
    EXPECT_EQ(fast->hart(h).cycles(), ref->hart(h).cycles()) << "hart " << h;
  }
}

TEST(IssSoa, SixteenHartDivergenceAndParkWakeMatchesOracles) {
  // All sixteen tiny-cluster harts: heterogeneous per-hart work before a
  // wfi/wake barrier forces batch splits, parking, and re-formation. The
  // batched SoA sweep must match both the serial oracle and the traced
  // reference bit for bit, scoreboard included.
  const std::string body = parallel_sum(16);
  auto batched = make_machine(body, 16);
  const auto rb = batched->run();
  auto serial = make_machine(body, 16);
  serial->set_batching(false);
  const auto rs = serial->run();
  auto ref = make_machine(body, 16);
  ref->set_trace([](u32, u32, const rv::Decoded&) {});
  const auto rr = ref->run();
  ASSERT_TRUE(rb.exited && rs.exited && rr.exited);
  EXPECT_EQ(rb.exit_code, (16u * 17u) / 2u);
  EXPECT_EQ(rb.exit_code, rs.exit_code);
  EXPECT_EQ(rb.instructions, rs.instructions);
  EXPECT_EQ(rb.instructions, rr.instructions);
  expect_scoreboards_identical(*batched, *serial);
  expect_scoreboards_identical(*batched, *ref);
  EXPECT_GT(batched->batch_stats().batches, 0u);
}

TEST(IssSoa, MidSuperblockBudgetCutMatchesSerial) {
  // The budget expires inside a lockstep sweep of a long superblock: the
  // partial replay must retire exactly the budgeted count and leave every
  // column (cycles, stalls, scoreboard) as the serial oracle does.
  std::string body = "_start:\n";
  for (int i = 0; i < 200; ++i) body += "  addi t1, t1, 1\n";
  body += "loop:\n  j loop\n";
  for (const u64 budget : {150u * 4u + 3u, 199u * 4u + 1u}) {
    auto batched = make_machine(body, 4);
    const auto rb = batched->run(budget);
    auto serial = make_machine(body, 4);
    serial->set_batching(false);
    const auto rs = serial->run(budget);
    EXPECT_EQ(rb.instructions, budget);
    EXPECT_EQ(rs.instructions, budget);
    expect_scoreboards_identical(*batched, *serial);
  }
}

TEST(IssSoa, ThreeThreadUnevenShardsMatchSerial) {
  // 16 harts over 3 host threads: uneven shards (6/5/5) exercise the
  // column-array sharding boundaries of run_threads. The workload is
  // interaction-free (per-hart loop then ebreak) so per-hart state is
  // shard-placement independent and must match the single-threaded serial
  // oracle exactly, scoreboard included. (Wake-coupled workloads cannot be
  // cycle-exact across thread counts - wake arrival is cross-thread timing.)
  const char* body = R"(
    _start:
      csrr t0, mhartid
      addi t1, t0, 1      # hartid+1 iterations: every shard is heterogeneous
    loop:
      addi s0, s0, 3
      mul s1, s0, t1
      addi t1, t1, -1
      bnez t1, loop
      ebreak
  )";
  auto sharded = make_machine(body, 16);
  const auto rt = sharded->run_threads(3);
  auto serial = make_machine(body, 16);
  serial->set_batching(false);
  const auto rs = serial->run();
  EXPECT_FALSE(rt.exited);
  EXPECT_FALSE(rt.deadlock);
  EXPECT_EQ(rt.instructions, rs.instructions);
  expect_scoreboards_identical(*sharded, *serial);
  for (u32 h = 0; h < 16; ++h) EXPECT_TRUE(sharded->hart(h).state.halted) << h;
}

TEST(IssSoa, GenericFallbackOpsMatchSerial) {
  // Ops without a specialized sweep kernel (xor/or/and/srl/slt...) run
  // through the generic per-member loop inside a batch; mixing them with
  // specialized ops must stay bit-exact vs the serial oracle.
  const char* body = R"(
    _start:
      csrr t0, mhartid
      addi t1, t0, 5
    loop:
      xori t2, t1, 0x3C
      or t3, t2, t0
      and t4, t3, t1
      srli t5, t4, 1
      slt t6, t5, t1
      sltu s2, t1, t5
      sub s3, s2, t6
      addi t1, t1, -1
      bnez t1, loop
      li s4, 0x40000000
      sw s3, 0(s4)
  )";
  auto batched = make_machine(body, 8);
  const auto rb = batched->run();
  auto serial = make_machine(body, 8);
  serial->set_batching(false);
  const auto rs = serial->run();
  ASSERT_TRUE(rb.exited && rs.exited);
  EXPECT_EQ(rb.exit_code, rs.exit_code);
  EXPECT_EQ(rb.instructions, rs.instructions);
  expect_scoreboards_identical(*batched, *serial);
  EXPECT_GT(batched->batch_stats().batches, 0u);
}

}  // namespace
}  // namespace tsim::iss
