// Kernel generator tests: layout arithmetic, program structure, and the
// numerical correctness of every precision variant against the double-
// precision golden model on the emulated DUT.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "phy/mmse.h"
#include "phy/quantize.h"
#include "rv/disasm.h"
#include "sim/cosim.h"

namespace tsim::kern {
namespace {

using phy::cd;

MmseLayout make_layout(u32 ntx, u32 nrx, Precision prec, u32 cores = 1,
                       u32 problems = 1) {
  MmseLayout lay;
  lay.ntx = ntx;
  lay.nrx = nrx;
  lay.prec = prec;
  lay.num_cores = cores;
  lay.problems_per_core = problems;
  lay.cluster = tera::TeraPoolConfig::tiny();
  return lay;
}

TEST(Layout, AddressesAreDisjointAndOrdered) {
  const MmseLayout lay = make_layout(4, 4, Precision::k16Half, 4, 2);
  lay.validate();
  // Problem blocks tile the input region without overlap.
  for (u32 c = 0; c < 4; ++c) {
    for (u32 p = 0; p < 2; ++p) {
      const u32 base = lay.problem_base(c, p);
      EXPECT_EQ(lay.h_addr(c, p), base);
      EXPECT_LT(lay.y_addr(c, p), lay.sigma_addr(c, p));
      EXPECT_LT(lay.sigma_addr(c, p), lay.x_addr(c, p));
      EXPECT_LE(lay.x_addr(c, p) + lay.x_bytes(), base + lay.problem_bytes());
    }
  }
  // Scratch starts above all inputs.
  EXPECT_GE(lay.scratch_region_base(),
            lay.problem_base(3, 1) + lay.problem_bytes());
  // Per-core scratch blocks are disjoint.
  EXPECT_GE(lay.scratch_base(1), lay.stack_top(0));
}

TEST(Layout, EightBitInputsAreHalfTheSize) {
  const MmseLayout h16 = make_layout(8, 8, Precision::k16Half);
  const MmseLayout q8 = make_layout(8, 8, Precision::k8Quarter);
  EXPECT_EQ(q8.h_bytes() * 2, h16.h_bytes());
  EXPECT_EQ(q8.y_bytes() * 2, h16.y_bytes());
  // Scratch (fp16 intermediates) is the same size.
  EXPECT_EQ(q8.g_bytes(), h16.g_bytes());
}

TEST(Layout, OverflowIsRejected) {
  MmseLayout lay = make_layout(32, 32, Precision::k16Half, 16, 64);
  EXPECT_THROW(lay.validate(), SimError);
}

TEST(Layout, MaxParallelCoresFitsL1) {
  const auto cluster = tera::TeraPoolConfig::full();
  const u32 fit = MmseLayout::max_parallel_cores(cluster, 32, 32, Precision::k16Half);
  EXPECT_GT(fit, 0u);
  EXPECT_LT(fit, 1024u);  // 32x32 cannot fit 1024 problems (see DESIGN.md)
  const u32 fit4 = MmseLayout::max_parallel_cores(cluster, 4, 4, Precision::k16Half);
  EXPECT_EQ(fit4, 1024u);  // 4x4 does fit the full cluster
  MmseLayout lay = make_layout(32, 32, Precision::k16Half, fit);
  lay.cluster = cluster;
  lay.validate();
}

TEST(Program, HasAllKernelSymbols) {
  const auto program = build_mmse_program(make_layout(4, 4, Precision::k16Half));
  for (const char* sym :
       {"_start", "main", "barrier", "gram", "mvm", "chol", "fsolve", "bsolve"}) {
    EXPECT_TRUE(program.symbols.contains(sym)) << sym;
  }
  EXPECT_GT(program.words.size(), 100u);
}

TEST(Program, EveryWordDecodes) {
  for (const Precision p : kAllPrecisions) {
    const auto program = build_mmse_program(make_layout(4, 4, p));
    for (size_t i = 0; i < program.words.size(); ++i) {
      EXPECT_NE(rv::decode(program.words[i]).op, rv::Op::kInvalid)
          << name_of(p) << " word " << i << ": " << rv::disassemble_word(program.words[i]);
    }
  }
}

TEST(Program, PrecisionsUseTheirSignatureInstructions) {
  const auto uses = [](const rvasm::Program& prog, rv::Op op) {
    for (const u32 w : prog.words)
      if (rv::decode(w).op == op) return true;
    return false;
  };
  const auto p_half = build_mmse_program(make_layout(4, 4, Precision::k16Half));
  EXPECT_TRUE(uses(p_half, rv::Op::kFmaddH));
  EXPECT_FALSE(uses(p_half, rv::Op::kVfdotpexSH));

  const auto p_wdotp = build_mmse_program(make_layout(4, 4, Precision::k16WDotp));
  EXPECT_TRUE(uses(p_wdotp, rv::Op::kVfdotpexSH));
  EXPECT_TRUE(uses(p_wdotp, rv::Op::kPvShuffleH));

  const auto p_cdotp = build_mmse_program(make_layout(4, 4, Precision::k16CDotp));
  EXPECT_TRUE(uses(p_cdotp, rv::Op::kVfcdotpH));
  EXPECT_TRUE(uses(p_cdotp, rv::Op::kVfccdotpH));

  const auto p_q8 = build_mmse_program(make_layout(4, 4, Precision::k8Quarter));
  EXPECT_TRUE(uses(p_q8, rv::Op::kVfmacB));
  EXPECT_TRUE(uses(p_q8, rv::Op::kVfcvtHB));

  const auto p_w8 = build_mmse_program(make_layout(4, 4, Precision::k8WDotp));
  EXPECT_TRUE(uses(p_w8, rv::Op::kVfdotpexHB));
}

TEST(Program, HalfLoadsScalarWDotpLoadsPacked) {
  // The paper: 16bHalf performs twice the memory operations (separate re/im
  // halfword loads); the SIMD variants load packed words.
  const auto count = [](const rvasm::Program& prog, rv::Op op) {
    size_t n = 0;
    for (const u32 w : prog.words)
      if (rv::decode(w).op == op) ++n;
    return n;
  };
  const auto p_half = build_mmse_program(make_layout(4, 4, Precision::k16Half));
  const auto p_wdotp = build_mmse_program(make_layout(4, 4, Precision::k16WDotp));
  EXPECT_GT(count(p_half, rv::Op::kPLh), 2 * count(p_half, rv::Op::kPLw));
  EXPECT_GT(count(p_wdotp, rv::Op::kPLw), count(p_wdotp, rv::Op::kPLh));
}

// ---------------------------------------------------------------------------
// Numerical correctness: run the generated program on the ISS and compare
// against the double-precision golden detector.
// ---------------------------------------------------------------------------

struct DutResult {
  std::vector<cd> xhat;
  u64 instructions = 0;
};

DutResult run_dut(const MmseLayout& lay, const sim::MimoProblem& prob) {
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(build_mmse_program(lay));
  sim::stage_problem(machine.memory(), lay, 0, 0, prob);
  const auto r = machine.run();
  EXPECT_TRUE(r.exited) << "DUT did not exit";
  EXPECT_FALSE(r.deadlock);
  return {sim::read_xhat(machine.memory(), lay, 0, 0), machine.total_instructions()};
}

sim::MimoProblem random_problem(u32 ntx, u32 nrx, double snr_db, u64 seed,
                                phy::ChannelType type = phy::ChannelType::kRayleigh) {
  Rng rng(seed);
  phy::Channel ch(type, nrx, ntx);
  phy::QamModulator qam(16);
  std::vector<u8> bits(ntx * qam.bits_per_symbol());
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto syms = qam.map_sequence(bits);
  sim::MimoProblem prob;
  prob.h = ch.realize(rng);
  prob.sigma2 = phy::Channel::sigma2_from_snr_db(snr_db);
  prob.y = ch.transmit(prob.h, syms, prob.sigma2, rng);
  return prob;
}

double max_rel_error(const std::vector<cd>& dut, const std::vector<cd>& golden) {
  double worst = 0.0;
  for (size_t i = 0; i < golden.size(); ++i) {
    const double scale = std::max(0.25, std::abs(golden[i]));
    worst = std::max(worst, std::abs(dut[i] - golden[i]) / scale);
  }
  return worst;
}

class PrecisionAccuracy : public ::testing::TestWithParam<Precision> {};

TEST_P(PrecisionAccuracy, MatchesGoldenOn4x4) {
  const Precision prec = GetParam();
  const MmseLayout lay = make_layout(4, 4, prec);
  const auto prob = random_problem(4, 4, 15.0, 1234);
  const auto dut = run_dut(lay, prob);
  const auto golden = phy::mmse_detect(prob.h, prob.y, prob.sigma2);
  ASSERT_EQ(dut.xhat.size(), golden.size());
  // fp16 variants track the golden model closely. The fp8 variants use the
  // paper's 2-bit-mantissa format: on Rayleigh-conditioned problems their
  // Gram truncation produces large (but finite, roughly-oriented) errors -
  // this is precisely the Fig. 9/10 BER degradation - so only a sanity
  // bound applies here; the tight AWGN-conditioned check is below.
  const bool is8b = (prec == Precision::k8Quarter || prec == Precision::k8WDotp);
  const double tol = is8b ? 1.0 : 0.05;
  EXPECT_LT(max_rel_error(dut.xhat, golden), tol) << name_of(prec);
}

TEST_P(PrecisionAccuracy, MatchesGoldenOn8x8Awgn) {
  const Precision prec = GetParam();
  const MmseLayout lay = make_layout(8, 8, prec);
  const auto prob = random_problem(8, 8, 18.0, 777, phy::ChannelType::kAwgn);
  const auto dut = run_dut(lay, prob);
  const auto golden = phy::mmse_detect(prob.h, prob.y, prob.sigma2);
  const bool is8b = (prec == Precision::k8Quarter || prec == Precision::k8WDotp);
  EXPECT_LT(max_rel_error(dut.xhat, golden), is8b ? 0.75 : 0.05) << name_of(prec);
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, PrecisionAccuracy,
                         ::testing::ValuesIn(kAllPrecisions),
                         [](const auto& info) {
                           return std::string(name_of(info.param));
                         });

TEST(KernelNumerics, SixteenBitTracksGoldenAcrossSizes) {
  for (const u32 n : {4u, 8u, 16u}) {
    const MmseLayout lay = make_layout(n, n, Precision::k16CDotp);
    const auto prob = random_problem(n, n, 12.0, 99 + n);
    const auto dut = run_dut(lay, prob);
    const auto golden = phy::mmse_detect(prob.h, prob.y, prob.sigma2);
    EXPECT_LT(max_rel_error(dut.xhat, golden), 0.15) << "n=" << n;
  }
}

TEST(KernelNumerics, UnrolledAndLoopedKernelsAgreeBitExactly) {
  const auto prob = random_problem(8, 8, 10.0, 4242);
  MmseLayout lay = make_layout(8, 8, Precision::k16WDotp);

  iss::Machine full(lay.cluster, iss::TimingConfig{}, 1);
  full.load_program(build_mmse_program(lay, {.gram_unroll = 0}));
  sim::stage_problem(full.memory(), lay, 0, 0, prob);
  EXPECT_TRUE(full.run().exited);

  iss::Machine looped(lay.cluster, iss::TimingConfig{}, 1);
  looped.load_program(build_mmse_program(lay, {.gram_unroll = 2}));
  sim::stage_problem(looped.memory(), lay, 0, 0, prob);
  EXPECT_TRUE(looped.run().exited);

  const auto a = sim::read_xhat(full.memory(), lay, 0, 0);
  const auto b = sim::read_xhat(looped.memory(), lay, 0, 0);
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(a[i], b[i]);
  // The unrolled variant retires fewer instructions (no loop bookkeeping).
  EXPECT_LT(full.total_instructions(), looped.total_instructions());
}

TEST(KernelNumerics, InstructionCountOrderingMatchesPaper) {
  // Per paper Fig. 7/8: 16bHalf issues the most instructions; the SIMD
  // variants reduce the count (16bCDotp the fewest among 16-bit kernels).
  const auto prob = random_problem(16, 16, 12.0, 31);
  const auto count_for = [&](Precision p) {
    const MmseLayout lay = make_layout(16, 16, p);
    return run_dut(lay, prob).instructions;
  };
  const u64 n_half = count_for(Precision::k16Half);
  const u64 n_wdotp = count_for(Precision::k16WDotp);
  const u64 n_cdotp = count_for(Precision::k16CDotp);
  const u64 n_w8 = count_for(Precision::k8WDotp);
  EXPECT_GT(n_half, n_wdotp);
  EXPECT_GT(n_wdotp, n_cdotp);
  EXPECT_GT(n_half, n_w8);
}

TEST(KernelNumerics, BatchedModeSolvesEveryProblem) {
  MmseLayout lay = make_layout(4, 4, Precision::k16CDotp, 1, 6);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1);
  machine.load_program(build_mmse_program(lay));
  std::vector<sim::MimoProblem> probs;
  for (u32 p = 0; p < 6; ++p) {
    probs.push_back(random_problem(4, 4, 14.0, 1000 + p));
    sim::stage_problem(machine.memory(), lay, 0, p, probs.back());
  }
  EXPECT_TRUE(machine.run().exited);
  for (u32 p = 0; p < 6; ++p) {
    const auto golden = phy::mmse_detect(probs[p].h, probs[p].y, probs[p].sigma2);
    const auto dut = sim::read_xhat(machine.memory(), lay, 0, p);
    EXPECT_LT(max_rel_error(dut, golden), 0.1) << "problem " << p;
  }
}

TEST(KernelNumerics, ParallelModeSolvesPerCoreProblems) {
  MmseLayout lay = make_layout(4, 4, Precision::k16WDotp, 8, 1);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 8);
  machine.load_program(build_mmse_program(lay));
  std::vector<sim::MimoProblem> probs;
  for (u32 c = 0; c < 8; ++c) {
    probs.push_back(random_problem(4, 4, 14.0, 2000 + c));
    sim::stage_problem(machine.memory(), lay, c, 0, probs.back());
  }
  EXPECT_TRUE(machine.run().exited);
  for (u32 c = 0; c < 8; ++c) {
    const auto golden = phy::mmse_detect(probs[c].h, probs[c].y, probs[c].sigma2);
    const auto dut = sim::read_xhat(machine.memory(), lay, c, 0);
    EXPECT_LT(max_rel_error(dut, golden), 0.1) << "core " << c;
  }
}

}  // namespace
}  // namespace tsim::kern
