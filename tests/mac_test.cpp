// MAC subsystem tests: HARQ entity edge cases (max-retransmission drop,
// soft-buffer release, all-processes-busy stall, feedback timeouts),
// burst-model sanity, the closed-loop cell (determinism, HARQ vs single-shot
// residual BLER), the farm's shard/thread bit-invariance contract, the
// supervising runner's failure policies (crash/stall/garble x
// retry/degrade/fail-fast), and the JSON row wire format the shard gather
// rides on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "mac/cell.h"
#include "mac/farm.h"
#include "mac/harq.h"
#include "sim/report.h"

namespace tsim::mac {
namespace {

// ------------------------------------------------------------ HarqEntity ---

TEST(HarqEntityTest, NewDataOccupiesLowestFreeProcess) {
  HarqEntity h(HarqConfig{4, 4, true});
  EXPECT_EQ(h.start_new_data(100).value(), 0u);
  EXPECT_EQ(h.start_new_data(100).value(), 1u);
  EXPECT_TRUE(h.active(0));
  EXPECT_TRUE(h.active(1));
  EXPECT_FALSE(h.active(2));
  EXPECT_EQ(h.soft_buffer_bits(), 200u);
}

TEST(HarqEntityTest, AckReleasesSoftBuffer) {
  HarqEntity h(HarqConfig{2, 4, true});
  h.start_new_data(100);
  h.on_feedback(0, true);
  EXPECT_FALSE(h.active(0));
  EXPECT_EQ(h.soft_buffer_bits(), 0u);
  EXPECT_EQ(h.stats().acks, 1u);
  EXPECT_EQ(h.stats().delivered_bits, 100u);
  // The freed process starts the next block clean: transmission 1, new bits.
  EXPECT_EQ(h.start_new_data(60).value(), 0u);
  EXPECT_EQ(h.attempts(0), 1u);
  EXPECT_EQ(h.soft_buffer_bits(), 60u);
}

TEST(HarqEntityTest, NackRetransmitsWithBoostedAttemptCount) {
  HarqEntity h(HarqConfig{2, 4, true});
  h.start_new_data(100);
  h.on_feedback(0, false);  // NACK 1: block stays resident
  EXPECT_TRUE(h.active(0));
  EXPECT_EQ(h.soft_buffer_bits(), 100u);
  ASSERT_TRUE(h.pending_retx().has_value());
  EXPECT_EQ(*h.pending_retx(), 0u);
  EXPECT_EQ(h.grant_retx(0), 2u);  // second transmission
  h.on_feedback(0, true);
  EXPECT_EQ(h.stats().retx, 1u);
  EXPECT_EQ(h.stats().acks, 1u);
  EXPECT_FALSE(h.pending_retx().has_value());
}

TEST(HarqEntityTest, MaxAttemptsDropsBlockAndFreesProcess) {
  HarqEntity h(HarqConfig{1, 3, true});
  h.start_new_data(100);
  h.on_feedback(0, false);  // attempt 1 NACK
  h.grant_retx(0);
  h.on_feedback(0, false);  // attempt 2 NACK
  h.grant_retx(0);
  h.on_feedback(0, false);  // attempt 3 NACK: budget spent -> drop
  EXPECT_FALSE(h.active(0));
  EXPECT_EQ(h.soft_buffer_bits(), 0u);
  EXPECT_EQ(h.stats().drops, 1u);
  EXPECT_EQ(h.stats().dropped_bits, 100u);
  EXPECT_EQ(h.stats().retx, 2u);
  EXPECT_FALSE(h.pending_retx().has_value());
  EXPECT_DOUBLE_EQ(h.stats().residual_bler(), 1.0);
}

TEST(HarqEntityTest, AllProcessesBusyStalls) {
  HarqEntity h(HarqConfig{2, 4, true});
  EXPECT_TRUE(h.start_new_data(10).has_value());
  EXPECT_TRUE(h.start_new_data(10).has_value());
  EXPECT_TRUE(h.all_busy());
  EXPECT_FALSE(h.start_new_data(10).has_value());
  EXPECT_EQ(h.stats().stalls, 1u);
  EXPECT_EQ(h.stats().new_tx, 2u);
  EXPECT_EQ(h.unresolved(), 2u);
}

TEST(HarqEntityTest, DisabledHarqDropsOnFirstNack) {
  HarqEntity h(HarqConfig{4, 4, false});  // single-shot baseline
  h.start_new_data(100);
  h.on_feedback(0, false);
  EXPECT_EQ(h.stats().drops, 1u);
  EXPECT_FALSE(h.active(0));
  EXPECT_FALSE(h.pending_retx().has_value());
}

TEST(HarqEntityTest, SoftBufferPeakTracksConcurrentBlocks) {
  HarqEntity h(HarqConfig{4, 4, true});
  h.start_new_data(100);
  h.start_new_data(200);
  EXPECT_EQ(h.stats().soft_buffer_peak_bits, 300u);
  h.on_feedback(0, true);
  h.on_feedback(1, true);
  EXPECT_EQ(h.soft_buffer_bits(), 0u);
  EXPECT_EQ(h.stats().soft_buffer_peak_bits, 300u);  // peak is monotone
}

TEST(HarqEntityTest, FeedbackTimeoutResolvesAsNackForRetx) {
  HarqConfig cfg{2, 4, true};
  cfg.feedback_timeout_slots = 3;
  HarqEntity h(cfg);
  h.start_new_data(100, /*tti=*/5);
  EXPECT_EQ(h.expire_overdue(7), 0u);  // indication still within the window
  EXPECT_EQ(h.expire_overdue(8), 1u);  // 5 + 3: attempt resolves as NACK
  EXPECT_EQ(h.stats().timeouts, 1u);
  EXPECT_TRUE(h.active(0));            // block stays resident for retx
  EXPECT_FALSE(h.in_flight(0));
  ASSERT_TRUE(h.pending_retx().has_value());
  EXPECT_EQ(h.grant_retx(0, 9), 2u);
  EXPECT_EQ(h.sent_tti(0), 9u);        // retx restarts the timeout window
}

TEST(HarqEntityTest, FeedbackTimeoutSpendsTheAttemptBudget) {
  HarqConfig cfg{1, 2, true};
  cfg.feedback_timeout_slots = 2;
  HarqEntity h(cfg);
  h.start_new_data(64, 0);
  EXPECT_EQ(h.expire_overdue(2), 1u);  // attempt 1 timed out
  h.grant_retx(0, 3);
  EXPECT_EQ(h.expire_overdue(5), 1u);  // attempt 2 timed out: budget spent
  EXPECT_FALSE(h.active(0));           // block dropped, soft buffer released
  EXPECT_EQ(h.stats().drops, 1u);
  EXPECT_EQ(h.stats().timeouts, 2u);
  EXPECT_EQ(h.soft_buffer_bits(), 0u);
}

TEST(HarqEntityTest, ZeroTimeoutWaitsForever) {
  HarqEntity h(HarqConfig{1, 2, true});
  h.start_new_data(64, 0);
  EXPECT_EQ(h.expire_overdue(1000), 0u);
  EXPECT_TRUE(h.in_flight(0));
}

// ----------------------------------------------------------- BurstConfig ---

TEST(BurstConfigTest, StationaryOnProbabilityMatchesDuty) {
  BurstConfig b;
  b.enabled = true;
  b.duty = 0.5;
  b.mean_on_slots = 8.0;
  b.validate();
  // Two-state Markov chain: stationary P(on) = p_on / (p_on + p_off).
  const double p_on = b.p_on(0);
  const double p_off = b.p_off();
  EXPECT_NEAR(p_on / (p_on + p_off), b.duty, 1e-12);
}

TEST(BurstConfigTest, DiurnalModulationStaysWithinBounds) {
  BurstConfig b;
  b.enabled = true;
  b.duty = 0.9;
  b.mean_on_slots = 4.0;
  b.diurnal_period_ttis = 20.0;
  b.diurnal_depth = 1.0;
  b.validate();
  for (u64 t = 0; t < 40; ++t) {
    const double p = b.p_on(t);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// ------------------------------------------------------------- Cell/farm ---

/// A farm small enough for unit tests: 16-subcarrier carrier, 2 symbols,
/// tiny clusters - but enough TTIs for retransmission chains to resolve.
FarmConfig tiny_farm() {
  FarmConfig cfg;
  cfg.cells = 4;
  cfg.ttis = 24;
  cfg.ues_per_cell = 8;
  cfg.carrier.bandwidth_hz = 0.5e6;  // 16 subcarriers
  cfg.carrier.symbols_per_slot = 2;
  cfg.seed = 0xFA21;
  return cfg;
}

TEST(CellTest, ClosedLoopRunsAndAccounts) {
  const FarmConfig cfg = tiny_farm();
  Cell cell(cfg.cell_config(0));
  for (u32 t = 0; t < cfg.ttis; ++t) cell.step(t);
  const CellReport rep = cell.report();
  EXPECT_EQ(rep.ttis, cfg.ttis);
  EXPECT_EQ(rep.slots, cfg.ttis);
  EXPECT_EQ(rep.pdus, rep.harq.transmissions());
  EXPECT_GT(rep.pdus, 0u);
  EXPECT_GT(rep.bits, 0u);
  // Feedback bookkeeping closes: every transmission either passed CRC (and
  // was an ACK), failed (and became a retx, a drop, or is unresolved).
  EXPECT_EQ(rep.harq.new_tx, rep.harq.acks + rep.harq.drops + rep.unresolved);
  EXPECT_LE(rep.p50_cycles, rep.p99_cycles);
  EXPECT_LE(rep.p99_cycles, rep.worst_cycles);
}

TEST(CellTest, SameConfigIsBitIdentical) {
  const FarmConfig cfg = tiny_farm();
  Cell a(cfg.cell_config(1));
  Cell b(cfg.cell_config(1));
  for (u32 t = 0; t < cfg.ttis; ++t) {
    a.step(t);
    b.step(t);
  }
  EXPECT_TRUE(a.report() == b.report());
}

TEST(CellTest, DistinctCellsGetDistinctTraffic) {
  const FarmConfig cfg = tiny_farm();
  const CellReport a = run_cell(cfg, 0);
  const CellReport b = run_cell(cfg, 1);
  // Same shape, different keyed streams: the error counts should differ.
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_FALSE(a == b);
}

TEST(FarmTest, ShardCountDoesNotChangeAnyReport) {
  FarmConfig cfg = tiny_farm();
  cfg.shards = 1;
  const FarmResult r1 = run_farm(cfg);
  cfg.shards = 2;
  const FarmResult r2 = run_farm(cfg);
  cfg.shards = 4;
  const FarmResult r4 = run_farm(cfg);
  cfg.shards = 3;  // uneven partition
  const FarmResult r3 = run_farm(cfg);
  ASSERT_EQ(r1.cells.size(), cfg.cells);
  ASSERT_EQ(r2.cells.size(), cfg.cells);
  ASSERT_EQ(r4.cells.size(), cfg.cells);
  for (u32 c = 0; c < cfg.cells; ++c) {
    EXPECT_TRUE(r1.cells[c] == r2.cells[c]) << "cell " << c << " shards 1 vs 2";
    EXPECT_TRUE(r1.cells[c] == r4.cells[c]) << "cell " << c << " shards 1 vs 4";
    EXPECT_TRUE(r1.cells[c] == r3.cells[c]) << "cell " << c << " shards 1 vs 3";
  }
}

TEST(FarmTest, HostThreadCountDoesNotChangeAnyReport) {
  FarmConfig cfg = tiny_farm();
  cfg.pool.host_threads = 1;
  const FarmResult r1 = run_farm(cfg);
  cfg.pool.host_threads = 4;
  cfg.shards = 2;
  const FarmResult r4 = run_farm(cfg);
  for (u32 c = 0; c < cfg.cells; ++c)
    EXPECT_TRUE(r1.cells[c] == r4.cells[c]) << "cell " << c;
}

TEST(FarmTest, HarqLowersResidualBlerAtSameSnr) {
  FarmConfig cfg = tiny_farm();
  cfg.cells = 2;
  cfg.ttis = 40;
  const CellReport with = run_farm(cfg).total();
  cfg.harq.enabled = false;
  const CellReport without = run_farm(cfg).total();
  ASSERT_GT(with.harq.retx, 0u) << "test needs CRC failures to exercise HARQ";
  ASSERT_GT(without.harq.finished(), 0u);
  // Retransmissions at Chase-boosted SNR recover blocks single-shot loses.
  EXPECT_LT(with.residual_bler(), without.residual_bler());
  EXPECT_EQ(without.harq.retx, 0u);
}

TEST(FarmTest, BurstyArrivalsThinTheOfferedLoad) {
  FarmConfig cfg = tiny_farm();
  const CellReport full = run_farm(cfg).total();
  cfg.burst.enabled = true;
  cfg.burst.duty = 0.4;
  cfg.burst.arrival_prob = 0.7;
  const CellReport burst = run_farm(cfg).total();
  EXPECT_LT(burst.harq.new_tx, full.harq.new_tx);
  EXPECT_GT(burst.harq.new_tx, 0u);
  // Bursty runs stay shard-invariant too.
  cfg.shards = 2;
  const CellReport burst2 = run_farm(cfg).total();
  EXPECT_TRUE(burst == burst2);
}

TEST(FarmTest, TotalSumsCounters) {
  FarmConfig cfg = tiny_farm();
  const FarmResult r = run_farm(cfg);
  const CellReport t = r.total();
  u64 pdus = 0, misses = 0, worst = 0;
  for (const CellReport& c : r.cells) {
    pdus += c.pdus;
    misses += c.misses;
    worst = std::max(worst, c.worst_cycles);
  }
  EXPECT_EQ(t.pdus, pdus);
  EXPECT_EQ(t.misses, misses);
  EXPECT_EQ(t.worst_cycles, worst);
  EXPECT_EQ(t.ues, cfg.cells * cfg.ues_per_cell);
}

TEST(FarmTest, TotalSemanticsOnHandBuiltReports) {
  // Pin which fields sum and which take the worst cell: cells run on
  // independent hardware, so timing percentiles are max'd while every
  // counter - including soft-buffer peaks (farm-wide memory provisioning)
  // and the fault/timeout counters - sums.
  CellReport a, b;
  a.cell = 0;
  a.ttis = 24;
  a.p50_cycles = 10;
  a.p99_cycles = 20;
  a.worst_cycles = 30;
  a.harq.soft_buffer_peak_bits = 1000;
  a.harq.timeouts = 3;
  a.hart_faults = 2;
  a.ecc_corrected = 1;
  a.ecc_detected = 3;
  a.ecc_silent = 1;
  a.dropped_ind = 2;
  a.degraded_slots = 4;
  b.cell = 1;
  b.ttis = 16;
  b.p50_cycles = 15;
  b.p99_cycles = 18;
  b.worst_cycles = 25;
  b.harq.soft_buffer_peak_bits = 500;
  b.harq.timeouts = 4;
  b.hart_faults = 5;
  b.ecc_corrected = 2;
  b.ecc_silent = 1;
  b.dropped_ind = 1;
  b.delayed_ind = 2;
  b.degraded_slots = 1;
  FarmResult r;
  r.cells = {a, b};
  const CellReport t = r.total();
  EXPECT_EQ(t.ttis, 24u);          // max: cells ran concurrently
  EXPECT_EQ(t.p50_cycles, 15u);    // max over per-cell percentiles
  EXPECT_EQ(t.p99_cycles, 20u);
  EXPECT_EQ(t.worst_cycles, 30u);
  EXPECT_EQ(t.harq.soft_buffer_peak_bits, 1500u);  // sum
  EXPECT_EQ(t.harq.timeouts, 7u);
  EXPECT_EQ(t.hart_faults, 7u);
  EXPECT_EQ(t.ecc_corrected, 3u);
  EXPECT_EQ(t.ecc_detected, 3u);
  EXPECT_EQ(t.ecc_silent, 2u);
  EXPECT_EQ(t.dropped_ind, 3u);
  EXPECT_EQ(t.delayed_ind, 2u);
  EXPECT_EQ(t.degraded_slots, 5u);
}

// ------------------------------------------------------ supervisor/faults ---

TEST(FarmSupervisorTest, CrashedShardIsRetriedToTheCleanResult) {
  FarmConfig cfg = tiny_farm();
  const FarmResult want = run_farm(cfg);

  cfg.shards = 2;
  cfg.policy = FarmPolicy::kRetry;
  cfg.host_fault.crash_shard = 0;
  const FarmResult got = run_farm(cfg);
  for (u32 c = 0; c < cfg.cells; ++c)
    EXPECT_TRUE(got.cells[c] == want.cells[c]) << "cell " << c;
  ASSERT_EQ(got.failures.size(), 1u);
  EXPECT_EQ(got.failures[0].shard, 0u);
  EXPECT_EQ(got.failures[0].attempt, 1u);
  EXPECT_TRUE(got.failures[0].recovered);
  EXPECT_TRUE(got.missing_cells().empty());
}

TEST(FarmSupervisorTest, ExhaustedRetriesFallBackToInlineExecution) {
  FarmConfig cfg = tiny_farm();
  const FarmResult want = run_farm(cfg);

  cfg.shards = 2;
  cfg.policy = FarmPolicy::kRetry;
  cfg.max_shard_attempts = 2;
  cfg.host_fault.crash_shard = 1;
  cfg.host_fault.fault_attempts = 99;  // every forked attempt crashes
  const FarmResult got = run_farm(cfg);
  for (u32 c = 0; c < cfg.cells; ++c)
    EXPECT_TRUE(got.cells[c] == want.cells[c]) << "cell " << c;
  ASSERT_EQ(got.failures.size(), 2u);  // both forked attempts failed
  EXPECT_TRUE(got.failures[0].recovered);  // ...but the inline fallback ran
  EXPECT_TRUE(got.failures[1].recovered);
  EXPECT_TRUE(got.missing_cells().empty());
}

TEST(FarmSupervisorTest, StalledShardIsKilledByTheTimeoutAndRetried) {
  FarmConfig cfg = tiny_farm();
  cfg.cells = 2;
  cfg.ttis = 8;
  const FarmResult want = run_farm(cfg);

  cfg.shards = 2;
  cfg.policy = FarmPolicy::kRetry;
  cfg.host_fault.stall_shard = 1;
  cfg.shard_timeout_s = 4.0;
  const FarmResult got = run_farm(cfg);
  for (u32 c = 0; c < cfg.cells; ++c)
    EXPECT_TRUE(got.cells[c] == want.cells[c]) << "cell " << c;
  ASSERT_EQ(got.failures.size(), 1u);
  EXPECT_NE(got.failures[0].reason.find("timeout"), std::string::npos)
      << got.failures[0].reason;
  EXPECT_TRUE(got.failures[0].recovered);
}

TEST(FarmSupervisorTest, GarbledShardDegradesToZeroFilledCells) {
  FarmConfig cfg = tiny_farm();
  const FarmResult want = run_farm(cfg);

  cfg.shards = 2;
  cfg.policy = FarmPolicy::kDegrade;
  cfg.host_fault.garble_shard = 1;  // owns cells 1 and 3 (round-robin)
  const FarmResult got = run_farm(cfg);
  ASSERT_FALSE(got.failures.empty());
  EXPECT_FALSE(got.failures[0].recovered);
  EXPECT_NE(got.failures[0].reason.find("JSON"), std::string::npos)
      << got.failures[0].reason;
  EXPECT_EQ(got.missing_cells(), (std::vector<u32>{1, 3}));
  // Survivor cells are untouched; lost cells are zero-filled with identity.
  EXPECT_TRUE(got.cells[0] == want.cells[0]);
  EXPECT_TRUE(got.cells[2] == want.cells[2]);
  EXPECT_EQ(got.cells[1].cell, 1u);
  EXPECT_EQ(got.cells[1].pdus, 0u);
  EXPECT_EQ(got.cells[3].slots, 0u);
}

TEST(FarmSupervisorTest, FailFastThrowsAndReapsEverything) {
  FarmConfig cfg = tiny_farm();
  cfg.shards = 2;
  cfg.policy = FarmPolicy::kFailFast;
  cfg.host_fault.crash_shard = 0;
  EXPECT_THROW(run_farm(cfg), SimError);
}

TEST(FarmSupervisorTest, ReportsLargerThanThePipeBufferAreDrained) {
  // Pad every row until each shard streams well past 64 KiB (the Linux pipe
  // buffer): the concurrent poll() drain must gather all of it without
  // deadlock, and padding must not change any parsed report.
  FarmConfig cfg = tiny_farm();
  cfg.shards = 2;
  const FarmResult want = run_farm(cfg);
  cfg.pad_row_bytes = 48 * 1024;  // 2 cells/shard -> ~96 KiB per shard
  const FarmResult got = run_farm(cfg);
  for (u32 c = 0; c < cfg.cells; ++c)
    EXPECT_TRUE(got.cells[c] == want.cells[c]) << "cell " << c;
  EXPECT_TRUE(got.failures.empty());
}

TEST(FarmSupervisorTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(parse_farm_policy("retry"), FarmPolicy::kRetry);
  EXPECT_EQ(parse_farm_policy("degrade"), FarmPolicy::kDegrade);
  EXPECT_EQ(parse_farm_policy("fail_fast"), FarmPolicy::kFailFast);
  EXPECT_STREQ(farm_policy_name(FarmPolicy::kRetry), "retry");
  EXPECT_THROW(parse_farm_policy("bogus"), SimError);
}

TEST(FarmSupervisorTest, StallInjectionWithoutTimeoutIsRejected) {
  FarmConfig cfg = tiny_farm();
  cfg.shards = 2;
  cfg.host_fault.stall_shard = 0;
  cfg.shard_timeout_s = 0.0;  // would hang forever
  EXPECT_THROW(run_farm(cfg), SimError);
}

// ------------------------------------------------------- row wire format ---

TEST(FarmWireFormatTest, ReportRowRoundTrips) {
  const FarmConfig cfg = tiny_farm();
  const CellReport rep = run_cell(cfg, 2);
  const std::vector<std::string> header = cell_report_header();
  const std::vector<std::string> row = cell_report_row(rep);
  ASSERT_EQ(header.size(), row.size());
  std::vector<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < header.size(); ++i) pairs.emplace_back(header[i], row[i]);
  EXPECT_TRUE(cell_report_from_row(pairs) == rep);
}

TEST(FarmWireFormatTest, JsonPipeRoundTripsThroughParser) {
  // The exact writer/parser pair the shard gather uses, including the
  // multi-row comma path.
  const FarmConfig cfg = tiny_farm();
  std::vector<CellReport> reps = {run_cell(cfg, 0), run_cell(cfg, 1),
                                  run_cell(cfg, 3)};
  std::vector<std::vector<std::string>> rows;
  for (const CellReport& r : reps) rows.push_back(cell_report_row(r));

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  sim::write_json_rows(f, cell_report_header(), rows);
  std::rewind(f);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::vector<std::vector<std::pair<std::string, std::string>>> parsed;
  ASSERT_TRUE(sim::parse_json_rows(text, parsed));
  ASSERT_EQ(parsed.size(), reps.size());
  for (size_t i = 0; i < reps.size(); ++i)
    EXPECT_TRUE(cell_report_from_row(parsed[i]) == reps[i]) << "row " << i;
}

TEST(FarmWireFormatTest, ParserRejectsMalformedInput) {
  std::vector<std::vector<std::pair<std::string, std::string>>> rows;
  EXPECT_FALSE(sim::parse_json_rows("", rows));
  EXPECT_FALSE(sim::parse_json_rows("not json", rows));
  EXPECT_FALSE(sim::parse_json_rows("[{\"a\": 1}]", rows));  // non-string value
  EXPECT_FALSE(sim::parse_json_rows("[{\"a\": \"1\"", rows));  // truncated
  EXPECT_TRUE(sim::parse_json_rows("[\n]\n", rows));
  EXPECT_TRUE(rows.empty());
  EXPECT_TRUE(sim::parse_json_rows("[{\"a\": \"1\"}, {\"a\": \"2\"}]", rows));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0].second, "2");
}

TEST(FarmWireFormatTest, MissingFieldThrows) {
  EXPECT_THROW(cell_report_from_row({{"cell", "0"}}), SimError);
  EXPECT_THROW(cell_report_from_row({{"cell", "abc"}}), SimError);
}

// ------------------------------------------------------------------ FAPI ---

TEST(FapiTest, SlotRequestTotalsAndIndicationFailures) {
  SlotRequest req;
  req.cell = 1;
  req.tti = 7;
  req.pdus.push_back(PduDescriptor{0, 0, true, 1, 0, 0, 0, 4, 10.0, 96});
  req.pdus.push_back(PduDescriptor{1, 2, false, 3, 0, 0, 4, 4, 14.8, 96});
  EXPECT_EQ(req.total_bits(), 192u);

  SlotIndication ind;
  ind.crcs.push_back(CrcResult{0, 0, true, 0, 96});
  ind.crcs.push_back(CrcResult{1, 2, false, 5, 96});
  EXPECT_EQ(ind.failed(), 1u);
  EXPECT_NEAR(ind.crcs[1].ber(), 5.0 / 96.0, 1e-12);
}

TEST(FapiTest, ChaseCombiningBoostsEffectiveSnr) {
  EXPECT_DOUBLE_EQ(phy::Channel::chase_combined_snr_db(10.0, 1), 10.0);
  EXPECT_NEAR(phy::Channel::chase_combined_snr_db(10.0, 2), 13.0103, 1e-3);
  EXPECT_NEAR(phy::Channel::chase_combined_snr_db(10.0, 4), 16.0206, 1e-3);
}

}  // namespace
}  // namespace tsim::mac
