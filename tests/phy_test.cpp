// PHY layer tests: linear algebra identities, QAM gray mapping, channel
// statistics, golden MMSE behaviour, and BER sanity under known SNR.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/ber.h"
#include "phy/channel.h"
#include "phy/mmse.h"
#include "phy/qam.h"
#include "phy/quantize.h"

namespace tsim::phy {
namespace {

CMat random_matrix(u32 rows, u32 cols, Rng& rng) {
  CMat m(rows, cols);
  for (auto& v : m.data()) v = cd(rng.normal(), rng.normal());
  return m;
}

TEST(Linalg, HermitianTransposes) {
  Rng rng(1);
  const CMat a = random_matrix(3, 5, rng);
  const CMat ah = hermitian(a);
  EXPECT_EQ(ah.rows(), 5u);
  EXPECT_EQ(ah.cols(), 3u);
  EXPECT_EQ(ah.at(2, 1), std::conj(a.at(1, 2)));
}

TEST(Linalg, MatmulIdentity) {
  Rng rng(2);
  const CMat a = random_matrix(4, 4, rng);
  const CMat i = CMat::identity(4);
  const CMat ai = matmul(a, i);
  for (u32 r = 0; r < 4; ++r)
    for (u32 c = 0; c < 4; ++c) EXPECT_NEAR(std::abs(ai.at(r, c) - a.at(r, c)), 0, 1e-12);
}

TEST(Linalg, GramMatchesExplicitProduct) {
  Rng rng(3);
  const CMat h = random_matrix(6, 4, rng);
  const CMat g1 = gram(h, 0.25);
  CMat g2 = matmul(hermitian(h), h);
  for (u32 i = 0; i < 4; ++i) g2.at(i, i) += 0.25;
  for (u32 r = 0; r < 4; ++r)
    for (u32 c = 0; c < 4; ++c)
      EXPECT_NEAR(std::abs(g1.at(r, c) - g2.at(r, c)), 0.0, 1e-10);
}

TEST(Linalg, CholeskyReconstructs) {
  Rng rng(4);
  const CMat h = random_matrix(8, 4, rng);
  const CMat g = gram(h, 0.5);
  const CMat l = cholesky(g);
  const CMat rebuilt = matmul(l, hermitian(l));
  for (u32 r = 0; r < 4; ++r) {
    EXPECT_GT(l.at(r, r).real(), 0.0);
    EXPECT_NEAR(l.at(r, r).imag(), 0.0, 1e-12);
    for (u32 c = 0; c < 4; ++c)
      EXPECT_NEAR(std::abs(rebuilt.at(r, c) - g.at(r, c)), 0.0, 1e-9);
  }
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  CMat g = CMat::identity(2);
  g.at(1, 1) = -1.0;
  EXPECT_THROW(cholesky(g), SimError);
}

TEST(Linalg, TriangularSolvesInvert) {
  Rng rng(5);
  const CMat h = random_matrix(8, 5, rng);
  const CMat g = gram(h, 0.3);
  const CMat l = cholesky(g);
  std::vector<cd> b(5);
  for (auto& v : b) v = cd(rng.normal(), rng.normal());
  // Solve G x = b via the two triangular systems and check the residual.
  const auto w = forward_solve(l, b);
  const auto x = backward_solve(l, w);
  const auto gx = matvec(g, x);
  for (u32 i = 0; i < 5; ++i) EXPECT_NEAR(std::abs(gx[i] - b[i]), 0.0, 1e-9);
}

TEST(Qam, MapDemapRoundTripsAllSymbols) {
  for (const u32 order : {4u, 16u, 64u, 256u}) {
    QamModulator qam(order);
    const u32 k = qam.bits_per_symbol();
    for (u32 sym = 0; sym < order; ++sym) {
      std::vector<u8> bits(k);
      for (u32 b = 0; b < k; ++b) bits[b] = (sym >> (k - 1 - b)) & 1;
      const auto point = qam.map(bits);
      std::vector<u8> back(k);
      qam.demap(point, back);
      EXPECT_EQ(back, bits) << "order " << order << " sym " << sym;
    }
  }
}

TEST(Qam, UnitAverageEnergy) {
  for (const u32 order : {4u, 16u, 64u}) {
    QamModulator qam(order);
    const u32 k = qam.bits_per_symbol();
    double energy = 0.0;
    for (u32 sym = 0; sym < order; ++sym) {
      std::vector<u8> bits(k);
      for (u32 b = 0; b < k; ++b) bits[b] = (sym >> (k - 1 - b)) & 1;
      energy += std::norm(qam.map(bits));
    }
    EXPECT_NEAR(energy / order, 1.0, 1e-12);
  }
}

TEST(Qam, GrayNeighborsDifferByOneBit) {
  // Adjacent I-axis constellation points must differ in exactly one bit.
  QamModulator qam(16);
  std::vector<u8> a(4), b(4);
  for (double lvl = -3; lvl < 3; lvl += 2) {
    const double s = 1.0 / std::sqrt(10.0);
    qam.demap(cd(lvl * s, s), a);
    qam.demap(cd((lvl + 2) * s, s), b);
    int diff = 0;
    for (u32 i = 0; i < 4; ++i) diff += (a[i] != b[i]) ? 1 : 0;
    EXPECT_EQ(diff, 1);
  }
}

TEST(Qam, RejectsUnsupportedOrder) { EXPECT_THROW(QamModulator(32), SimError); }

TEST(Channel, AwgnIsIdentityCoupling) {
  Rng rng(6);
  Channel ch(ChannelType::kAwgn, 4, 4);
  const CMat h = ch.realize(rng);
  for (u32 r = 0; r < 4; ++r)
    for (u32 c = 0; c < 4; ++c)
      EXPECT_EQ(h.at(r, c), (r == c) ? cd(1.0) : cd(0.0));
}

TEST(Channel, RayleighHasUnitRowPower) {
  Rng rng(7);
  Channel ch(ChannelType::kRayleigh, 8, 8);
  double power = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const CMat h = ch.realize(rng);
    for (u32 c = 0; c < 8; ++c) power += std::norm(h.at(0, c));
  }
  // Sum over NTX entries of one receive row ~ 1 under the 1/NTX scaling.
  EXPECT_NEAR(power / trials, 1.0, 0.1);
}

TEST(Channel, NoisePowerMatchesSigma) {
  Rng rng(8);
  Channel ch(ChannelType::kAwgn, 4, 4);
  const CMat h = ch.realize(rng);
  const std::vector<cd> x(4, cd(0.0));
  const double sigma2 = 0.5;
  double measured = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto y = ch.transmit(h, x, sigma2, rng);
    for (const auto& v : y) measured += std::norm(v);
  }
  EXPECT_NEAR(measured / (trials * 4), sigma2, 0.05);
}

TEST(Mmse, PerfectRecoveryWithoutNoise) {
  Rng rng(9);
  Channel ch(ChannelType::kRayleigh, 8, 4);
  const CMat h = ch.realize(rng);
  std::vector<cd> x = {cd(1, 0), cd(0, -1), cd(-1, 0), cd(0, 1)};
  const auto y = matvec(h, x);
  const auto xhat = mmse_detect(h, y, 1e-9);
  for (u32 i = 0; i < 4; ++i) EXPECT_NEAR(std::abs(xhat[i] - x[i]), 0.0, 1e-3);
}

TEST(Mmse, ShrinksTowardZeroAtLowSnr) {
  Rng rng(10);
  Channel ch(ChannelType::kRayleigh, 4, 4);
  const CMat h = ch.realize(rng);
  std::vector<cd> x = {cd(1, 0), cd(1, 0), cd(1, 0), cd(1, 0)};
  const auto y = matvec(h, x);
  const auto strong = mmse_detect(h, y, 1e-6);
  const auto weak = mmse_detect(h, y, 100.0);
  double n_strong = 0, n_weak = 0;
  for (u32 i = 0; i < 4; ++i) {
    n_strong += std::abs(strong[i]);
    n_weak += std::abs(weak[i]);
  }
  EXPECT_LT(n_weak, n_strong);  // heavy regularization shrinks the estimate
}

TEST(Ber, CounterAccumulates) {
  BerCounter ber;
  const std::vector<u8> a = {0, 1, 1, 0, 1};
  const std::vector<u8> b = {0, 1, 0, 0, 0};
  ber.add(a, b);
  EXPECT_EQ(ber.errors(), 2u);
  EXPECT_EQ(ber.bits(), 5u);
  EXPECT_DOUBLE_EQ(ber.ber(), 0.4);
}

TEST(Quantize, Fp16RoundTripAccuracy) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const cd v(rng.normal(), rng.normal());
    const cd q = quantize_cf16(v);
    EXPECT_NEAR(q.real(), v.real(), std::abs(v.real()) * 6e-4 + 1e-6);
    EXPECT_NEAR(q.imag(), v.imag(), std::abs(v.imag()) * 6e-4 + 1e-6);
  }
}

TEST(Quantize, Fp8IsMuchCoarser) {
  Rng rng(12);
  double err16 = 0, err8 = 0;
  for (int i = 0; i < 500; ++i) {
    const cd v(rng.normal(), rng.normal());
    err16 += std::abs(quantize_cf16(v) - v);
    err8 += std::abs(quantize_cf8(v) - v);
  }
  EXPECT_GT(err8, 10.0 * err16);
}

}  // namespace
}  // namespace tsim::phy
