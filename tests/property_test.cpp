// Property-based tests: invariants that must hold over randomized inputs,
// exercised with parameterized sweeps (gtest TEST_P / typed tests).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "phy/qam.h"
#include "rv/decode.h"
#include "rv/encoding.h"
#include "rv/disasm.h"
#include "rvasm/textasm.h"
#include "softfloat/minifloat.h"

namespace tsim {
namespace {

// ---------------------------------------------------------------------------
// Soft-float properties over all three FP8 formats plus binary16.
// ---------------------------------------------------------------------------

template <typename Fmt>
class FormatProps : public ::testing::Test {};

using AllFormats =
    ::testing::Types<sf::F16, sf::F8E4M3, sf::F8E5M2, sf::F8E4M2>;
TYPED_TEST_SUITE(FormatProps, AllFormats);

TYPED_TEST(FormatProps, RoundingIsMonotonic) {
  // a <= b implies round(a) <= round(b): encode a rising ramp and check the
  // decoded sequence never decreases.
  using Fmt = TypeParam;
  double prev = -std::numeric_limits<double>::infinity();
  for (double v = -20.0; v <= 20.0; v += 0.0137) {
    const double q = Fmt::to_double(Fmt::from_double(v));
    EXPECT_GE(q, prev) << "at v=" << v;
    prev = q;
  }
}

TYPED_TEST(FormatProps, EncodingIsIdempotent) {
  using Fmt = TypeParam;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const u32 once = Fmt::from_double(rng.normal() * 4.0);
    const u32 twice = Fmt::from_double(Fmt::to_double(once));
    EXPECT_EQ(once, twice);
  }
}

TYPED_TEST(FormatProps, AddIsCommutative) {
  using Fmt = TypeParam;
  Rng rng(18);
  for (int i = 0; i < 1000; ++i) {
    const u32 a = Fmt::from_double(rng.normal());
    const u32 b = Fmt::from_double(rng.normal());
    EXPECT_EQ((sf::add<Fmt>(a, b)), (sf::add<Fmt>(b, a)));
    EXPECT_EQ((sf::mul<Fmt>(a, b)), (sf::mul<Fmt>(b, a)));
  }
}

TYPED_TEST(FormatProps, NegationIsExact) {
  using Fmt = TypeParam;
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal();
    EXPECT_EQ(Fmt::from_double(-v), Fmt::from_double(v) ^ Fmt::kSignBit);
  }
}

TYPED_TEST(FormatProps, AddZeroIsIdentity) {
  using Fmt = TypeParam;
  for (u32 enc = 0; enc < (1u << Fmt::kBits); ++enc) {
    if (Fmt::is_nan(enc) || Fmt::is_inf(enc)) continue;
    const u32 z = Fmt::from_double(0.0);
    const u32 sum = sf::add<Fmt>(enc, z);
    EXPECT_DOUBLE_EQ(Fmt::to_double(sum), Fmt::to_double(enc)) << enc;
  }
}

TYPED_TEST(FormatProps, FmaMatchesExactArithmeticWithinOneRounding) {
  using Fmt = TypeParam;
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    const u32 a = Fmt::from_double(rng.normal());
    const u32 b = Fmt::from_double(rng.normal());
    const u32 c = Fmt::from_double(rng.normal());
    const double exact =
        Fmt::to_double(a) * Fmt::to_double(b) + Fmt::to_double(c);
    EXPECT_EQ((sf::fma<Fmt>(a, b, c)), Fmt::from_double(exact));
  }
}

// ---------------------------------------------------------------------------
// QAM properties.
// ---------------------------------------------------------------------------

class QamProps : public ::testing::TestWithParam<u32> {};

TEST_P(QamProps, DemapIsRobustToSubThresholdNoise) {
  // Hard decisions survive any perturbation smaller than half the minimum
  // constellation distance.
  phy::QamModulator qam(GetParam());
  const double dmin_half = 1.0 / std::sqrt(2.0 * (GetParam() - 1) / 3.0) * 0.98;
  Rng rng(21);
  const u32 k = qam.bits_per_symbol();
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<u8> bits(k);
    for (auto& b : bits) b = rng.bit();
    const auto sym = qam.map(bits);
    const double angle = rng.uniform() * 2 * M_PI;
    const auto noisy = sym + std::polar(dmin_half * rng.uniform(), angle);
    std::vector<u8> back(k);
    qam.demap(noisy, back);
    EXPECT_EQ(back, bits);
  }
}

TEST_P(QamProps, MapIsInjective) {
  phy::QamModulator qam(GetParam());
  const u32 k = qam.bits_per_symbol();
  std::vector<std::complex<double>> points;
  for (u32 sym = 0; sym < GetParam(); ++sym) {
    std::vector<u8> bits(k);
    for (u32 b = 0; b < k; ++b) bits[b] = (sym >> (k - 1 - b)) & 1;
    points.push_back(qam.map(bits));
  }
  for (size_t i = 0; i < points.size(); ++i)
    for (size_t j = i + 1; j < points.size(); ++j)
      EXPECT_GT(std::abs(points[i] - points[j]), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, QamProps, ::testing::Values(4u, 16u, 64u, 256u));

// ---------------------------------------------------------------------------
// ISA properties: text round trip through the disassembler.
// ---------------------------------------------------------------------------

TEST(IsaProps, DisasmOutputReassemblesForEveryNonBranchInstruction) {
  // For every instruction whose disassembly does not reference a code label
  // (branches/jumps print numeric offsets), the printed text must assemble
  // back to the identical word.
  for (const auto& def : rv::isa_table()) {
    if (def.op == rv::Op::kInvalid) continue;
    if (def.fmt == rv::Fmt::kB || def.fmt == rv::Fmt::kJ) continue;
    rv::Decoded d;
    d.op = def.op;
    d.rd = 10;
    d.rs1 = 11;
    d.rs2 = 12;
    d.rs3 = 13;
    switch (def.fmt) {
      case rv::Fmt::kI:
      case rv::Fmt::kILoad:
      case rv::Fmt::kS:
        d.imm = -44;
        break;
      case rv::Fmt::kIShift:
      case rv::Fmt::kPLanes:
        d.imm = 1;
        break;
      case rv::Fmt::kU:
        d.imm = static_cast<i32>(0x12345u << 12);
        break;
      case rv::Fmt::kCsr:
      case rv::Fmt::kCsrI:
        d.imm = 0xF14;
        break;
      default:
        d.imm = 0;
        break;
    }
    if (def.fmt == rv::Fmt::kNullary) d = rv::Decoded{.op = def.op};
    if (def.fmt == rv::Fmt::kCsrI) d.rs1 = 7;  // uimm5
    if (def.op == rv::Op::kLrW) d.rs2 = 0;

    const u32 word = rv::encode(d);
    const std::string text = rv::disassemble_word(word);
    SCOPED_TRACE(text);
    const auto prog = rvasm::assemble(text);
    ASSERT_EQ(prog.words.size(), 1u);
    EXPECT_EQ(prog.words[0], word);
  }
}

TEST(IsaProps, DecodeNeverMatchesTwoInstructions) {
  // Every (match, mask) pair must be unambiguous: no other table entry may
  // accept another entry's match word.
  for (const auto& a : rv::isa_table()) {
    if (a.op == rv::Op::kInvalid) continue;
    const auto d = rv::decode(a.match);
    EXPECT_EQ(d.op, a.op) << a.mnemonic << " decoded as "
                          << rv::def_of(d.op).mnemonic;
  }
}

}  // namespace
}  // namespace tsim
