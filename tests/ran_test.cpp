// Slot-level RAN engine tests: traffic generation (full-buffer and Poisson
// arrivals, heterogeneous UE groups, determinism), the multi-cluster slot
// scheduler (bit-exact equivalence with a single-cluster cosim reference,
// determinism across host thread counts), and deadline accounting.
#include <gtest/gtest.h>

#include "ran/deadline.h"
#include "ran/scheduler.h"
#include "ran/traffic.h"
#include "sim/cosim.h"

namespace tsim::ran {
namespace {

/// A small carrier for fast tests: 16 data subcarriers, 2 symbols per slot.
phy::CarrierConfig tiny_carrier(u32 symbols = 2) {
  phy::CarrierConfig c;
  c.bandwidth_hz = 0.5e6;  // 0.4914 MHz usable / 30 kHz = 16 subcarriers
  c.symbols_per_slot = symbols;
  return c;
}

TrafficConfig one_group_traffic(u32 symbols = 2) {
  TrafficConfig cfg;
  cfg.carrier = tiny_carrier(symbols);
  cfg.groups = {UeGroup{"embb", 4, 4, 16, 12.0, phy::ChannelType::kRayleigh, 1.0}};
  cfg.seed = 0xA11CE;
  return cfg;
}

ClusterPoolConfig small_pool(u32 clusters, u32 host_threads) {
  ClusterPoolConfig cfg;
  cfg.num_clusters = clusters;
  cfg.host_threads = host_threads;
  cfg.cluster = tera::TeraPoolConfig::tiny();
  cfg.problems_per_core = 2;
  cfg.batch_cores = 3;  // force several batches per symbol (16 sc / 6 slots)
  return cfg;
}

/// Three distinct (ntx, nrx) geometries sharing the tiny carrier: the
/// geometry-ping-pong stressor for the assignment policies.
TrafficConfig mixed_geometry_traffic(u32 symbols = 4) {
  TrafficConfig cfg;
  cfg.carrier = tiny_carrier(symbols);
  cfg.groups = mixed_geometry_groups();
  cfg.seed = 0x5EED;
  return cfg;
}

TEST(Traffic, FullBufferCoversTheWholeCarrier) {
  TrafficConfig cfg = one_group_traffic();
  cfg.groups = {
      UeGroup{"a", 4, 4, 16, 12.0, phy::ChannelType::kRayleigh, 3.0},
      UeGroup{"b", 2, 4, 4, 6.0, phy::ChannelType::kAwgn, 1.0},
  };
  TrafficGenerator gen(cfg);
  const SlotWorkload slot = gen.slot(0);
  const u32 nsc = cfg.carrier.num_subcarriers();
  ASSERT_EQ(nsc, 16u);
  EXPECT_EQ(slot.num_problems(), nsc * cfg.carrier.symbols_per_slot);
  // Two allocations per symbol, weights 3:1 -> 12 + 4 subcarriers.
  ASSERT_EQ(slot.allocations.size(), 2u * cfg.carrier.symbols_per_slot);
  for (const auto& a : slot.allocations) {
    EXPECT_EQ(a.num_problems(), a.group == 0 ? 12u : 4u);
  }
  // Group geometry flows through: group 1 problems are 4x2 (nrx x ntx).
  const auto& b = slot.allocations[1];
  ASSERT_EQ(b.group, 1u);
  EXPECT_EQ(b.batch.problems[0].h.rows(), 4u);
  EXPECT_EQ(b.batch.problems[0].h.cols(), 2u);
  // 12 * 4 layers * 4 bits + 4 * 2 layers * 2 bits per symbol.
  EXPECT_EQ(slot.num_bits(), (12u * 16u + 4u * 4u) * cfg.carrier.symbols_per_slot);
}

TEST(Traffic, SameSeedReproducesTheSameSlot) {
  TrafficGenerator gen_a(one_group_traffic());
  TrafficGenerator gen_b(one_group_traffic());
  const SlotWorkload a = gen_a.slot(3);
  const SlotWorkload b = gen_b.slot(3);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_EQ(a.allocations[i].batch.tx_bits, b.allocations[i].batch.tx_bits);
    ASSERT_EQ(a.allocations[i].batch.problems.size(),
              b.allocations[i].batch.problems.size());
    EXPECT_EQ(a.allocations[i].batch.problems[0].y, b.allocations[i].batch.problems[0].y);
  }
}

TEST(Traffic, DistinctTtisCarryDistinctPayloads) {
  TrafficGenerator gen(one_group_traffic());
  const SlotWorkload a = gen.next_slot();
  const SlotWorkload b = gen.next_slot();
  EXPECT_EQ(a.tti, 0u);
  EXPECT_EQ(b.tti, 1u);
  EXPECT_NE(a.allocations[0].batch.tx_bits, b.allocations[0].batch.tx_bits);
}

TEST(Traffic, PoissonOccupancyIsBoundedAndLoadDependent) {
  TrafficConfig cfg = one_group_traffic(/*symbols=*/14);
  cfg.arrival = ArrivalModel::kPoisson;
  cfg.offered_load = 0.5;
  TrafficGenerator gen(cfg);
  const u32 nsc = cfg.carrier.num_subcarriers();
  u64 total = 0, slots = 40;
  for (u64 t = 0; t < slots; ++t) {
    const SlotWorkload slot = gen.slot(t);
    for (const auto& a : slot.allocations) {
      EXPECT_LE(a.first_subcarrier + a.num_problems(), nsc);
    }
    total += slot.num_problems();
  }
  const double mean_occupancy =
      static_cast<double>(total) /
      (static_cast<double>(slots) * cfg.carrier.symbols_per_slot * nsc);
  EXPECT_GT(mean_occupancy, 0.35);
  EXPECT_LT(mean_occupancy, 0.65);
}

TEST(Traffic, PoissonSampleMatchesMeanInBothRegimes) {
  Rng rng(77);
  for (const double mean : {5.0, 150.0}) {
    double sum = 0.0;
    const int draws = 4000;
    for (int i = 0; i < draws; ++i) sum += poisson_sample(rng, mean);
    EXPECT_NEAR(sum / draws, mean, mean * 0.1) << "mean " << mean;
  }
}

TEST(Traffic, ValidateRejectsBadConfigs) {
  TrafficConfig cfg = one_group_traffic();
  cfg.groups.clear();
  EXPECT_THROW(TrafficGenerator{cfg}, SimError);
  cfg = one_group_traffic();
  cfg.groups[0].weight = 0.0;
  EXPECT_THROW(TrafficGenerator{cfg}, SimError);
  cfg = one_group_traffic();
  cfg.offered_load = 1.5;
  EXPECT_THROW(TrafficGenerator{cfg}, SimError);
}

// The acceptance test: the multi-cluster / multi-host-thread scheduler's
// detected bits must match an independent single-cluster cosim reference
// that stages the same problems through one Machine, batch by batch.
TEST(Scheduler, MatchesSingleClusterCosimReference) {
  const TrafficConfig tcfg = one_group_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);

  SlotScheduler sched(small_pool(/*clusters=*/2, /*host_threads=*/2), tcfg.groups);
  const SlotResult result = sched.run_slot(slot);
  EXPECT_EQ(result.problems, slot.num_problems());
  EXPECT_EQ(result.bits, slot.num_bits());

  // Reference: one cluster, one host thread, plain cosim loop (mc.cpp style).
  const kern::MmseLayout lay = sched.layout_for_group(0);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(kern::build_mmse_program(lay));
  const phy::QamModulator qam(tcfg.groups[0].qam_order);
  const u32 capacity = lay.num_cores * lay.problems_per_core;
  u64 ref_errors = 0;
  for (size_t ai = 0; ai < slot.allocations.size(); ++ai) {
    const Allocation& alloc = slot.allocations[ai];
    const u32 bits_per_problem = lay.ntx * qam.bits_per_symbol();
    for (u32 off = 0; off < alloc.num_problems(); off += capacity) {
      const u32 count = std::min(capacity, alloc.num_problems() - off);
      for (u32 i = 0; i < capacity; ++i) {
        const u32 p = off + (i < count ? i : i % count);
        sim::stage_problem(machine.memory(), lay, i / lay.problems_per_core,
                           i % lay.problems_per_core, alloc.batch.problems[p]);
      }
      machine.reset_harts();
      ASSERT_TRUE(machine.run().exited);
      for (u32 i = 0; i < count; ++i) {
        const auto xhat = sim::read_xhat(machine.memory(), lay,
                                         i / lay.problems_per_core,
                                         i % lay.problems_per_core);
        const auto rx = qam.demap_sequence(xhat);
        const size_t base = static_cast<size_t>(off + i) * bits_per_problem;
        for (u32 b = 0; b < bits_per_problem; ++b) {
          ASSERT_EQ(result.detected_bits[ai][base + b], rx[b])
              << "allocation " << ai << " problem " << off + i << " bit " << b;
          ref_errors += (rx[b] != alloc.batch.tx_bits[base + b]) ? 1 : 0;
        }
      }
    }
  }
  EXPECT_EQ(result.errors, ref_errors);
}

TEST(Scheduler, DeterministicAcrossHostThreadCounts) {
  const TrafficConfig tcfg = one_group_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(1);

  SlotScheduler serial(small_pool(3, /*host_threads=*/1), tcfg.groups);
  SlotScheduler parallel(small_pool(3, /*host_threads=*/4), tcfg.groups);
  const SlotResult a = serial.run_slot(slot);
  const SlotResult b = parallel.run_slot(slot);

  EXPECT_EQ(a.detected_bits, b.detected_bits);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.cluster_busy_cycles, b.cluster_busy_cycles);
  EXPECT_EQ(a.cluster_batches, b.cluster_batches);
  EXPECT_EQ(a.symbol_cycles, b.symbol_cycles);
  EXPECT_EQ(a.slot_cycles, b.slot_cycles);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cluster, b.trace[i].cluster);
    EXPECT_EQ(a.trace[i].cycles, b.trace[i].cycles);
  }
}

TEST(Scheduler, IntraClusterShardingIsBitIdentical) {
  const TrafficConfig tcfg = one_group_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(2);

  ClusterPoolConfig one = small_pool(2, 2);
  ClusterPoolConfig sharded = small_pool(2, 2);
  sharded.threads_per_cluster = 2;
  const SlotResult a = SlotScheduler(one, tcfg.groups).run_slot(slot);
  const SlotResult b = SlotScheduler(sharded, tcfg.groups).run_slot(slot);
  EXPECT_EQ(a.detected_bits, b.detected_bits);
  EXPECT_EQ(a.errors, b.errors);
  // Cycle accounting agrees up to the barrier-wake jitter of run_threads
  // (see machine.h), which is a few cycles per batch.
  EXPECT_NEAR(static_cast<double>(a.slot_cycles), static_cast<double>(b.slot_cycles),
              0.01 * static_cast<double>(a.slot_cycles));
}

TEST(Scheduler, HandlesHeterogeneousGeometriesAndConstellations) {
  TrafficConfig tcfg = one_group_traffic();
  tcfg.groups = {
      UeGroup{"embb", 4, 4, 16, 14.0, phy::ChannelType::kRayleigh, 1.0},
      UeGroup{"urllc", 2, 4, 4, 8.0, phy::ChannelType::kAwgn, 1.0},
  };
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);

  SlotScheduler sched(small_pool(2, 2), tcfg.groups);
  const SlotResult result = sched.run_slot(slot);
  ASSERT_EQ(result.detected_bits.size(), slot.allocations.size());
  for (size_t a = 0; a < slot.allocations.size(); ++a) {
    EXPECT_EQ(result.detected_bits[a].size(), slot.allocations[a].batch.tx_bits.size());
  }
  EXPECT_EQ(result.bits, slot.num_bits());
  // Detection genuinely ran: BER is far below the coin-flip 0.5.
  EXPECT_LT(result.ber(), 0.2);
  // Both geometries use the same hart count (shared machine sizing).
  EXPECT_EQ(sched.layout_for_group(0).num_cores, sched.layout_for_group(1).num_cores);
}

TEST(Scheduler, AccountsEveryBatchExactlyOnce) {
  const TrafficConfig tcfg = one_group_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);
  SlotScheduler sched(small_pool(3, 2), tcfg.groups);
  const SlotResult result = sched.run_slot(slot);

  u32 batches = 0;
  for (const u32 n : result.cluster_batches) batches += n;
  EXPECT_EQ(batches, result.trace.size());
  u64 covered = 0;
  for (const auto& t : result.trace) {
    EXPECT_GT(t.cycles, 0u);
    covered += t.count;
  }
  EXPECT_EQ(covered, slot.num_problems());
  // Round-robin assignment touches every cluster when there is enough work.
  for (const u32 n : result.cluster_batches) EXPECT_GT(n, 0u);
}

// Regression for the slot critical-path accounting: symbols are
// data-serialized, so slot_cycles must be the sum over symbols of the
// per-symbol cross-cluster maximum. Pinned to the round-robin policy: with
// 3 batches per symbol round-robined over 2 clusters, consecutive symbols
// load opposite clusters (cluster 0 runs 2 batches of symbol 0, cluster 1
// runs 2 batches of symbol 1), so the per-symbol maxima sit on different
// clusters and the old max-of-cluster-totals formula under-reported the
// latency.
TEST(Scheduler, SlotCriticalPathIsSymbolSerializedSum) {
  const TrafficConfig tcfg = one_group_traffic(/*symbols=*/2);
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);

  ClusterPoolConfig pool = small_pool(/*clusters=*/2, /*host_threads=*/2);
  pool.policy = AssignPolicy::kRoundRobin;
  SlotScheduler sched(pool, tcfg.groups);
  const SlotResult result = sched.run_slot(slot);

  ASSERT_EQ(result.symbol_cycles.size(), 2u);
  u64 symbol_sum = 0;
  for (const u64 c : result.symbol_cycles) symbol_sum += c;
  EXPECT_EQ(result.slot_cycles, symbol_sum);

  // Cross-check against the trace: per-(cluster, symbol) busy cycles,
  // program reload cycles included (they are on the critical path).
  std::vector<std::vector<u64>> busy(2, std::vector<u64>(2, 0));
  for (const BatchTrace& t : result.trace) {
    busy[t.cluster][slot.allocations[t.allocation].symbol] +=
        t.cycles + t.reload_cycles;
  }
  u64 expected = 0;
  for (u32 s = 0; s < 2; ++s) expected += std::max(busy[0][s], busy[1][s]);
  EXPECT_EQ(result.slot_cycles, expected);

  // The constructed slot is genuinely imbalanced: the serialized critical
  // path strictly exceeds every cluster's busy total, which is exactly the
  // margin the old formula over-reported.
  for (u32 c = 0; c < 2; ++c) {
    EXPECT_GT(result.slot_cycles, result.cluster_busy_cycles[c]);
  }
}

// The policy acceptance test: with more geometries than clusters, the
// locality policy must produce bit-identical detections to round-robin
// while cutting program reloads by at least 2x (reloads under round-robin
// approach one per batch; under locality they approach the per-symbol
// geometry-overcommit minimum).
// In the degenerate configs (single geometry, or single cluster) the
// locality policy skips the per-geometry calibration runs - relative costs
// cannot change an assignment there - and substitutes a large uniform
// placeholder cost, which keeps the even-share chunk arithmetic in the
// same large-cost regime as real calibrated kernel cycles.
TEST(Scheduler, LocalitySkipsCalibrationInDegenerateConfigs) {
  const TrafficConfig single_geo = one_group_traffic();
  TrafficGenerator gen(single_geo);
  const SlotWorkload slot = gen.slot(0);

  // Single geometry, two clusters: calibration skipped, unit costs.
  SlotScheduler loc(small_pool(2, 2), single_geo.groups);
  EXPECT_EQ(loc.batch_cycles_for_group(0), SlotScheduler::kUncalibratedBatchCost);

  // Detections still match the round-robin reference bit for bit, and the
  // work still spreads over both clusters.
  ClusterPoolConfig rr_cfg = small_pool(2, 2);
  rr_cfg.policy = AssignPolicy::kRoundRobin;
  SlotScheduler rr(rr_cfg, single_geo.groups);
  EXPECT_EQ(rr.batch_cycles_for_group(0), 0u);  // roundrobin never calibrates
  const SlotResult a = loc.run_slot(slot);
  const SlotResult b = rr.run_slot(slot);
  EXPECT_EQ(a.detected_bits, b.detected_bits);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_GT(a.cluster_batches[0], 0u);
  EXPECT_GT(a.cluster_batches[1], 0u);

  // Multiple geometries on a single cluster: also skipped.
  TrafficConfig mixed = mixed_geometry_traffic();
  SlotScheduler one_cluster(small_pool(1, 1), mixed.groups);
  for (u32 g = 0; g < static_cast<u32>(mixed.groups.size()); ++g)
    EXPECT_EQ(one_cluster.batch_cycles_for_group(g),
              SlotScheduler::kUncalibratedBatchCost);
  const SlotResult c = one_cluster.run_slot(TrafficGenerator(mixed).slot(0));
  EXPECT_EQ(c.problems, TrafficGenerator(mixed).slot(0).num_problems());

  // Multiple geometries AND multiple clusters: calibration still runs and
  // yields real (non-unit) cycle costs.
  SlotScheduler calibrated(small_pool(2, 2), mixed.groups);
  for (u32 g = 0; g < static_cast<u32>(mixed.groups.size()); ++g) {
    EXPECT_GT(calibrated.batch_cycles_for_group(g), 1u);
    EXPECT_NE(calibrated.batch_cycles_for_group(g),
              SlotScheduler::kUncalibratedBatchCost);
  }
}

TEST(Scheduler, PoliciesAreBitIdenticalAndLocalityCutsReloads) {
  const TrafficConfig tcfg = mixed_geometry_traffic(/*symbols=*/4);
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);

  ClusterPoolConfig rr = small_pool(/*clusters=*/2, /*host_threads=*/2);
  rr.batch_cores = 1;  // capacity 2: several batches per geometry per symbol
  rr.policy = AssignPolicy::kRoundRobin;
  ClusterPoolConfig loc = rr;
  loc.policy = AssignPolicy::kLocality;

  const SlotResult a = SlotScheduler(rr, tcfg.groups).run_slot(slot);
  const SlotResult b = SlotScheduler(loc, tcfg.groups).run_slot(slot);

  // Functional results do not depend on where a batch runs.
  EXPECT_EQ(a.detected_bits, b.detected_bits);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.problems, b.problems);
  EXPECT_EQ(a.trace.size(), b.trace.size());

  // The locality win: >= 2x fewer program reloads, less reload time on the
  // critical path.
  EXPECT_GT(a.total_reloads, 0u);
  EXPECT_GE(a.total_reloads, 2 * b.total_reloads);
  EXPECT_LT(b.total_reload_cycles, a.total_reload_cycles);
}

TEST(Scheduler, LocalityIsDeterministicAcrossHostThreadCounts) {
  const TrafficConfig tcfg = mixed_geometry_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(1);

  // small_pool defaults to the locality policy.
  SlotScheduler serial(small_pool(3, /*host_threads=*/1), tcfg.groups);
  SlotScheduler parallel(small_pool(3, /*host_threads=*/4), tcfg.groups);
  const SlotResult a = serial.run_slot(slot);
  const SlotResult b = parallel.run_slot(slot);

  EXPECT_EQ(a.detected_bits, b.detected_bits);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.cluster_busy_cycles, b.cluster_busy_cycles);
  EXPECT_EQ(a.cluster_batches, b.cluster_batches);
  EXPECT_EQ(a.cluster_reloads, b.cluster_reloads);
  EXPECT_EQ(a.cluster_reload_cycles, b.cluster_reload_cycles);
  EXPECT_EQ(a.total_reloads, b.total_reloads);
  EXPECT_EQ(a.total_reload_cycles, b.total_reload_cycles);
  EXPECT_EQ(a.symbol_cycles, b.symbol_cycles);
  EXPECT_EQ(a.slot_cycles, b.slot_cycles);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cluster, b.trace[i].cluster);
    EXPECT_EQ(a.trace[i].cycles, b.trace[i].cycles);
    EXPECT_EQ(a.trace[i].reloads, b.trace[i].reloads);
    EXPECT_EQ(a.trace[i].reload_cycles, b.trace[i].reload_cycles);
  }
}

TEST(Scheduler, ReloadAccountingIsConsistent) {
  const TrafficConfig tcfg = mixed_geometry_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);
  SlotScheduler sched(small_pool(2, 2), tcfg.groups);
  const SlotResult result = sched.run_slot(slot);

  // Trace-level reloads roll up exactly into the per-cluster and slot
  // totals, and busy cycles include the reload cycles.
  std::vector<u32> reloads(2, 0);
  std::vector<u64> reload_cycles(2, 0), busy(2, 0);
  for (const BatchTrace& t : result.trace) {
    ASSERT_LT(t.cluster, 2u);
    EXPECT_LE(t.reloads, 1u);
    EXPECT_EQ(t.reload_cycles > 0, t.reloads == 1);
    reloads[t.cluster] += t.reloads;
    reload_cycles[t.cluster] += t.reload_cycles;
    busy[t.cluster] += t.cycles + t.reload_cycles;
  }
  EXPECT_EQ(result.cluster_reloads, reloads);
  EXPECT_EQ(result.cluster_reload_cycles, reload_cycles);
  EXPECT_EQ(result.cluster_busy_cycles, busy);
  EXPECT_EQ(result.total_reloads, static_cast<u64>(reloads[0]) + reloads[1]);
  EXPECT_EQ(result.total_reload_cycles, reload_cycles[0] + reload_cycles[1]);
  // Three geometries over two clusters: someone must reload at least once.
  EXPECT_GT(result.total_reloads, 0u);
  // The modeled DMA reload cost is nonzero for any real program image.
  EXPECT_GT(program_reload_cycles(4096), 0u);
}

TEST(Deadline, DeadlineReportCarriesReloadOverhead) {
  const TrafficConfig tcfg = mixed_geometry_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);
  SlotScheduler sched(small_pool(2, 2), tcfg.groups);
  const SlotResult result = sched.run_slot(slot);

  const DeadlineReport rep = deadline_report(result, tcfg.carrier, 1e9);
  EXPECT_EQ(rep.reloads, result.total_reloads);
  EXPECT_EQ(rep.reload_cycles, result.total_reload_cycles);
  EXPECT_EQ(rep.timing.slot_cycles, result.slot_cycles);
  EXPECT_EQ(rep.met(), rep.timing.meets_deadline());
  EXPECT_GT(rep.reload_fraction(), 0.0);
  EXPECT_LT(rep.reload_fraction(), 1.0);
}

TEST(Deadline, TimingArithmetic) {
  SlotTiming t;
  t.slot_cycles = 500'000;
  t.clock_hz = 1e9;
  t.tti_seconds = 5e-4;
  EXPECT_DOUBLE_EQ(t.latency_seconds(), 5e-4);
  EXPECT_TRUE(t.meets_deadline());
  EXPECT_DOUBLE_EQ(t.margin_seconds(), 0.0);

  t.slot_cycles = 750'000;
  EXPECT_FALSE(t.meets_deadline());
  EXPECT_NEAR(t.margin_fraction(), -0.5, 1e-12);

  EXPECT_DOUBLE_EQ(throughput_mbps(1'000'000, 1e-3), 1000.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(123, 0.0), 0.0);
}

TEST(Deadline, SlotTimingFollowsTheCarrierNumerology) {
  const phy::CarrierConfig carrier = phy::CarrierConfig::paper_50mhz();
  SlotResult result;
  result.slot_cycles = 400'000;
  const SlotTiming t = slot_timing(result, carrier, 1e9);
  EXPECT_DOUBLE_EQ(t.tti_seconds, 5e-4);  // mu = 1 -> 0.5 ms slot
  EXPECT_TRUE(t.meets_deadline());
}

// ---- deadline.h unit tests on hand-built SlotResults: the report
// arithmetic (margins, reload_fraction, utilization, symbol serialization)
// pinned independently of the full scheduler path. ----

TEST(Deadline, ReportFieldsFromHandBuiltSlotResult) {
  SlotResult r;
  r.symbol_cycles = {150'000, 250'000};
  r.slot_cycles = 400'000;  // symbol-serialized sum
  r.cluster_busy_cycles = {300'000, 200'000};
  r.total_reloads = 3;
  r.total_reload_cycles = 50'000;

  const phy::CarrierConfig carrier = phy::CarrierConfig::paper_50mhz();
  const DeadlineReport rep = deadline_report(r, carrier, 1e9);
  EXPECT_EQ(rep.reloads, 3u);
  EXPECT_EQ(rep.reload_cycles, 50'000u);
  EXPECT_EQ(rep.busy_cycles, 500'000u);  // summed across clusters
  EXPECT_DOUBLE_EQ(rep.reload_fraction(), 0.1);
  EXPECT_TRUE(rep.met());
  EXPECT_DOUBLE_EQ(rep.timing.latency_seconds(), 4e-4);
  EXPECT_DOUBLE_EQ(rep.timing.margin_seconds(), 1e-4);
  EXPECT_NEAR(rep.timing.margin_fraction(), 0.2, 1e-12);

  // Utilization is measured against the hand-built critical path.
  EXPECT_DOUBLE_EQ(cluster_utilization(r, 0), 0.75);
  EXPECT_DOUBLE_EQ(cluster_utilization(r, 1), 0.5);

  // The clock scales latency: at 2 GHz the same cycles halve the latency.
  const DeadlineReport fast = deadline_report(r, carrier, 2e9);
  EXPECT_DOUBLE_EQ(fast.timing.latency_seconds(), 2e-4);
  EXPECT_NEAR(fast.timing.margin_fraction(), 0.6, 1e-12);
}

TEST(Deadline, OverrunMarginsAndEmptyResultGuards) {
  SlotResult r;
  r.slot_cycles = 600'000;
  const DeadlineReport rep = deadline_report(r, phy::CarrierConfig::paper_50mhz(), 1e9);
  EXPECT_FALSE(rep.met());
  EXPECT_NEAR(rep.timing.margin_seconds(), -1e-4, 1e-16);
  EXPECT_NEAR(rep.timing.margin_fraction(), -0.2, 1e-12);
  // No busy cycles recorded: reload_fraction guards the division.
  EXPECT_EQ(rep.busy_cycles, 0u);
  EXPECT_DOUBLE_EQ(rep.reload_fraction(), 0.0);
  // A zero-cycle result never divides by zero either.
  SlotResult empty;
  empty.cluster_busy_cycles = {0};
  EXPECT_DOUBLE_EQ(cluster_utilization(empty, 0), 0.0);
}

TEST(Deadline, SymbolSerializedReportsRenderHandBuiltCycles) {
  SlotResult r;
  r.tti = 7;
  r.problems = 6;
  r.bits = 48;
  r.errors = 3;
  r.symbol_cycles = {100'000, 200'000, 300'000};
  r.slot_cycles = 600'000;  // == sum(symbol_cycles), the deadline.h contract
  r.cluster_busy_cycles = {400'000, 350'000};
  r.total_reloads = 2;
  r.total_reload_cycles = 60'000;

  const phy::CarrierConfig carrier = phy::CarrierConfig::paper_50mhz();
  const SlotTiming timing = slot_timing(r, carrier, 1e9);
  EXPECT_EQ(timing.slot_cycles, 600'000u);

  sim::Table slots = slot_report_header();
  add_slot_row(slots, r, timing);
  ASSERT_EQ(slots.rows().size(), 1u);
  const auto& header = slots.header();
  const auto& row = slots.rows()[0];
  ASSERT_EQ(row.size(), header.size());
  const auto cell = [&](const std::string& name) -> const std::string& {
    for (size_t c = 0; c < header.size(); ++c)
      if (header[c] == name) return row[c];
    ADD_FAILURE() << "missing column " << name;
    return row[0];
  };
  EXPECT_EQ(cell("tti"), "7");
  EXPECT_EQ(cell("ber"), "0.0625");
  EXPECT_EQ(cell("met"), "NO");  // 600 us > 500 us deadline
  EXPECT_EQ(cell("reloads"), "2");
  // Reload share of total busy time: 60k / 750k = 8%.
  EXPECT_EQ(cell("reload_%"), "8.00");

  const sim::Table symbols = symbol_report(r, timing);
  ASSERT_EQ(symbols.rows().size(), 3u);
  EXPECT_EQ(symbols.rows()[2][1], "300000");
  EXPECT_EQ(symbols.rows()[2][2], "300.00");  // us at 1 GHz
}

TEST(Deadline, UtilizationAndReportsAreWellFormed) {
  const TrafficConfig tcfg = one_group_traffic();
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.slot(0);
  SlotScheduler sched(small_pool(2, 2), tcfg.groups);
  const SlotResult result = sched.run_slot(slot);

  for (u32 c = 0; c < 2; ++c) {
    EXPECT_GT(cluster_utilization(result, c), 0.0);
    EXPECT_LE(cluster_utilization(result, c), 1.0);
  }
  // The slot critical path is the symbol-serialized sum, so it bounds every
  // cluster's busy total but need not equal any of them.
  for (u32 c = 0; c < 2; ++c) {
    EXPECT_LE(result.cluster_busy_cycles[c], result.slot_cycles);
  }

  const SlotTiming timing = slot_timing(result, tcfg.carrier, 1e9);
  sim::Table report = slot_report_header();
  add_slot_row(report, result, timing);
  const sim::Table clusters = cluster_report(result);
  const sim::Table symbols = symbol_report(result, timing);
  (void)clusters;
  (void)symbols;
  EXPECT_EQ(result.symbol_cycles.size(), tcfg.carrier.symbols_per_slot);
  for (const u64 c : result.symbol_cycles) EXPECT_GT(c, 0u);
}

/// Exact (bit-level) workload equality over everything the detector
/// consumes: allocation geometry, ground-truth bits/symbols, and the staged
/// problems' received vectors and noise estimates.
void expect_identical_workloads(const SlotWorkload& a, const SlotWorkload& b) {
  ASSERT_EQ(a.tti, b.tti);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (size_t i = 0; i < a.allocations.size(); ++i) {
    const Allocation& x = a.allocations[i];
    const Allocation& y = b.allocations[i];
    EXPECT_EQ(x.group, y.group);
    EXPECT_EQ(x.symbol, y.symbol);
    EXPECT_EQ(x.first_subcarrier, y.first_subcarrier);
    ASSERT_EQ(x.batch.tx_bits, y.batch.tx_bits);
    ASSERT_EQ(x.batch.problems.size(), y.batch.problems.size());
    for (size_t p = 0; p < x.batch.problems.size(); ++p) {
      EXPECT_EQ(x.batch.problems[p].sigma2, y.batch.problems[p].sigma2);
      ASSERT_EQ(x.batch.problems[p].y.size(), y.batch.problems[p].y.size());
      for (size_t k = 0; k < x.batch.problems[p].y.size(); ++k)
        EXPECT_EQ(x.batch.problems[p].y[k], y.batch.problems[p].y[k]);
    }
  }
}

TEST(Traffic, SlotsAreOrderIndependent) {
  // Every allocation's RNG sub-stream is keyed by (seed, tti, symbol, group)
  // identity, so generating TTIs out of order - as farm shards and the DSE
  // sweep do - must reproduce the forward sequence bit-for-bit.
  TrafficConfig tcfg = one_group_traffic();
  tcfg.groups = mixed_geometry_groups();
  tcfg.arrival = ArrivalModel::kPoisson;
  tcfg.offered_load = 0.8;
  const TrafficGenerator forward(tcfg);
  const TrafficGenerator shuffled(tcfg);
  std::vector<SlotWorkload> slots(10);
  for (u64 t = 0; t < 10; ++t) slots[t] = forward.slot(t);
  for (const u64 t : {7ull, 2ull, 9ull, 0ull, 5ull, 1ull, 8ull, 3ull, 6ull, 4ull})
    expect_identical_workloads(shuffled.slot(t), slots[t]);
}

TEST(Traffic, NextSlotMatchesRandomAccess) {
  const TrafficConfig tcfg = one_group_traffic();
  TrafficGenerator sequential(tcfg);
  const TrafficGenerator random_access(tcfg);
  for (u64 t = 0; t < 4; ++t)
    expect_identical_workloads(sequential.next_slot(), random_access.slot(t));
}

TEST(Scheduler, AllocationErrorsSumToSlotErrors) {
  TrafficConfig tcfg = one_group_traffic();
  tcfg.groups[0].snr_db = 8.0;  // low enough that some bits flip
  TrafficGenerator gen(tcfg);
  const SlotWorkload slot = gen.next_slot();
  SlotScheduler sched(small_pool(2, 2), tcfg.groups);
  const SlotResult result = sched.run_slot(slot);
  ASSERT_EQ(result.allocation_errors.size(), slot.allocations.size());
  u64 sum = 0;
  for (const u64 e : result.allocation_errors) sum += e;
  EXPECT_EQ(sum, result.errors);
  EXPECT_GT(result.errors, 0u);  // the per-PDU split carries real signal
}

TEST(Deadline, NearestRankPercentiles) {
  const std::vector<u64> sorted = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(nearest_rank(sorted, 0.50), 50u);
  EXPECT_EQ(nearest_rank(sorted, 0.99), 100u);
  EXPECT_EQ(nearest_rank(sorted, 1.00), 100u);
  EXPECT_EQ(nearest_rank(sorted, 0.01), 10u);
  EXPECT_EQ(nearest_rank({42}, 0.5), 42u);
  EXPECT_EQ(nearest_rank({}, 0.5), 0u);
}

TEST(Deadline, AggregateReportFromHandBuiltResults) {
  // paper_50mhz slot budget is 0.5 ms = 500k cycles at 1 GHz: one of the
  // three hand-built slots overruns.
  std::vector<SlotResult> results(3);
  results[0].slot_cycles = 400'000;
  results[0].bits = 100;
  results[0].errors = 2;
  results[0].total_reloads = 1;
  results[0].total_reload_cycles = 1000;
  results[1].slot_cycles = 450'000;
  results[1].bits = 100;
  results[1].errors = 0;
  results[2].slot_cycles = 600'000;
  results[2].bits = 200;
  results[2].errors = 6;
  results[2].total_reloads = 2;
  results[2].total_reload_cycles = 3000;

  const AggregateReport agg =
      aggregate_report(results, phy::CarrierConfig::paper_50mhz(), 1e9);
  EXPECT_EQ(agg.slots, 3u);
  EXPECT_EQ(agg.misses, 1u);
  EXPECT_EQ(agg.worst_cycles, 600'000u);
  EXPECT_EQ(agg.p50_cycles, 450'000u);
  EXPECT_EQ(agg.p99_cycles, 600'000u);
  EXPECT_EQ(agg.reloads, 3u);
  EXPECT_EQ(agg.reload_cycles, 4000u);
  EXPECT_EQ(agg.total_bits, 400u);
  EXPECT_EQ(agg.total_errors, 8u);
  EXPECT_DOUBLE_EQ(agg.ber(), 0.02);
  EXPECT_NEAR(agg.miss_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(agg.p50_latency_seconds(), 4.5e-4);
  EXPECT_DOUBLE_EQ(agg.worst_latency_seconds(), 6e-4);

  // Empty run: all-zero aggregates, no division by zero.
  const AggregateReport none =
      aggregate_report({}, phy::CarrierConfig::paper_50mhz(), 1e9);
  EXPECT_EQ(none.slots, 0u);
  EXPECT_DOUBLE_EQ(none.miss_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(none.ber(), 0.0);
}

}  // namespace
}  // namespace tsim::ran
