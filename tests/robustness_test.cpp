// Robustness and determinism sweeps: engine reproducibility, numerically
// hard inputs, a parameterized accuracy matrix over (size, precision), and
// the fault-injection determinism contracts (a faulted cell is bit-exactly
// reproducible; a crash-recovered farm equals a fault-free one).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "mac/farm.h"
#include "phy/mmse.h"
#include "sim/cosim.h"
#include "uarch/cluster_sim.h"

namespace tsim {
namespace {

using kern::MmseLayout;
using kern::Precision;

MmseLayout tiny_layout(u32 n, Precision prec, u32 cores = 1) {
  MmseLayout lay;
  lay.ntx = n;
  lay.nrx = n;
  lay.prec = prec;
  lay.num_cores = cores;
  lay.cluster = tera::TeraPoolConfig::tiny();
  lay.validate();
  return lay;
}

sim::MimoProblem rayleigh_problem(u32 n, double snr_db, u64 seed) {
  Rng rng(seed);
  phy::Channel ch(phy::ChannelType::kRayleigh, n, n);
  phy::QamModulator qam(16);
  const auto batch = sim::generate_batch(ch, qam, n, 1, snr_db, rng);
  return batch.problems[0];
}

TEST(Robustness, UarchRerunIsCycleExact) {
  const auto lay = tiny_layout(8, Precision::k16WDotp, 4);
  const auto program = kern::build_mmse_program(lay);
  u64 cycles[2];
  for (int pass = 0; pass < 2; ++pass) {
    uarch::ClusterSim rtl(lay.cluster, uarch::UarchConfig{}, 4);
    rtl.load_program(program);
    for (u32 c = 0; c < 4; ++c)
      sim::stage_problem(rtl.memory(), lay, c, 0, rayleigh_problem(8, 12.0, 100 + c));
    const auto res = rtl.run();
    ASSERT_TRUE(res.exited);
    cycles[pass] = res.cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(Robustness, UarchResetReusesTheSameInstance) {
  const auto lay = tiny_layout(4, Precision::k16CDotp, 2);
  uarch::ClusterSim rtl(lay.cluster, uarch::UarchConfig{}, 2);
  rtl.load_program(kern::build_mmse_program(lay));
  u64 first = 0;
  for (int pass = 0; pass < 3; ++pass) {
    rtl.reset();
    rtl.memory().reset_l1();
    for (u32 c = 0; c < 2; ++c)
      sim::stage_problem(rtl.memory(), lay, c, 0, rayleigh_problem(4, 10.0, 7 + c));
    const auto res = rtl.run();
    ASSERT_TRUE(res.exited);
    if (pass == 0) {
      first = res.cycles;
    } else {
      EXPECT_EQ(res.cycles, first);
    }
  }
}

TEST(Robustness, NearSingularProblemStaysFinite) {
  // Two identical user channels make G rank-deficient up to the sigma^2
  // regularization; the fp16 Cholesky must still produce finite output.
  sim::MimoProblem p;
  p.h = phy::CMat(4, 4);
  for (u32 r = 0; r < 4; ++r) {
    p.h.at(r, 0) = phy::cd(0.5, -0.25);
    p.h.at(r, 1) = p.h.at(r, 0);  // duplicated column
    p.h.at(r, 2) = phy::cd(-0.3, 0.4);
    p.h.at(r, 3) = phy::cd(0.1, r * 0.1);
  }
  p.y = {phy::cd(1, 0), phy::cd(0, 1), phy::cd(-1, 0), phy::cd(0, -1)};
  p.sigma2 = 0.05;

  const auto lay = tiny_layout(4, Precision::k16WDotp);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1);
  machine.load_program(kern::build_mmse_program(lay));
  sim::stage_problem(machine.memory(), lay, 0, 0, p);
  ASSERT_TRUE(machine.run().exited);
  const auto xhat = sim::read_xhat(machine.memory(), lay, 0, 0);
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(xhat[i].real()) && std::isfinite(xhat[i].imag()))
        << "element " << i;
  }
  // And it should still be a sensible regularized solution.
  const auto golden = phy::mmse_detect(p.h, p.y, p.sigma2);
  for (u32 i = 0; i < 4; ++i) EXPECT_LT(std::abs(xhat[i] - golden[i]), 0.2);
}

TEST(Robustness, ZeroReceivedVectorGivesZeroEstimate) {
  sim::MimoProblem p = rayleigh_problem(4, 10.0, 55);
  std::fill(p.y.begin(), p.y.end(), phy::cd(0, 0));
  const auto lay = tiny_layout(4, Precision::k16CDotp);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1);
  machine.load_program(kern::build_mmse_program(lay));
  sim::stage_problem(machine.memory(), lay, 0, 0, p);
  ASSERT_TRUE(machine.run().exited);
  const auto xhat = sim::read_xhat(machine.memory(), lay, 0, 0);
  for (u32 i = 0; i < 4; ++i) EXPECT_EQ(xhat[i], phy::cd(0, 0));
}

TEST(Robustness, HighNoiseShrinksDutEstimateLikeGolden) {
  sim::MimoProblem p = rayleigh_problem(4, 10.0, 66);
  p.sigma2 = 16.0;  // heavy regularization
  const auto lay = tiny_layout(4, Precision::k16WDotp);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1);
  machine.load_program(kern::build_mmse_program(lay));
  sim::stage_problem(machine.memory(), lay, 0, 0, p);
  ASSERT_TRUE(machine.run().exited);
  const auto xhat = sim::read_xhat(machine.memory(), lay, 0, 0);
  for (u32 i = 0; i < 4; ++i) EXPECT_LT(std::abs(xhat[i]), 0.25);
}

// ---------------------------------------------------------------------------
// Fault-injection determinism contracts (sim/fault.h, mac/farm.h).
// ---------------------------------------------------------------------------

mac::FarmConfig small_faulted_farm() {
  mac::FarmConfig cfg;
  cfg.cells = 2;
  cfg.ttis = 12;
  cfg.ues_per_cell = 8;
  cfg.carrier.bandwidth_hz = 0.5e6;  // 16 subcarriers
  cfg.carrier.symbols_per_slot = 2;
  cfg.seed = 0xB0B5;
  return cfg;
}

TEST(Robustness, FaultedCellIsBitExactlyReproducible) {
  // Every DUT-level fault class armed at once: the faulted closed loop must
  // still be a pure function of (seed, cell id) - rerunning it reproduces
  // every counter, including the fault counters themselves.
  mac::FarmConfig cfg = small_faulted_farm();
  cfg.fault.enabled = true;
  cfg.fault.hart_trap_rate = 0.3;
  cfg.fault.hart_hang_rate = 0.2;
  cfg.fault.l1_flip_rate = 0.5;
  cfg.fault.drop_indication_rate = 0.2;
  cfg.fault.delay_indication_rate = 0.2;
  cfg.harq.feedback_timeout_slots = 4;
  const mac::CellReport a = mac::run_cell(cfg, 0);
  const mac::CellReport b = mac::run_cell(cfg, 0);
  EXPECT_TRUE(a == b);
  // The fault plan actually fired somewhere observable.
  EXPECT_GT(a.hart_faults + a.ecc_corrected + a.ecc_detected + a.dropped_ind +
                a.delayed_ind,
            0u);
}

TEST(Robustness, CrashRecoveredFarmEqualsTheCleanRun) {
  // Crash shard 1's worker on its first attempt; under kRetry the recovered
  // result must match a fault-free farm cell-for-cell.
  mac::FarmConfig clean = small_faulted_farm();
  const mac::FarmResult want = mac::run_farm(clean);

  mac::FarmConfig faulted = clean;
  faulted.shards = 2;
  faulted.policy = mac::FarmPolicy::kRetry;
  faulted.host_fault.crash_shard = 1;
  const mac::FarmResult got = mac::run_farm(faulted);

  ASSERT_EQ(got.cells.size(), want.cells.size());
  for (size_t c = 0; c < want.cells.size(); ++c) {
    EXPECT_TRUE(got.cells[c] == want.cells[c]) << "cell " << c;
  }
  ASSERT_FALSE(got.failures.empty());
  EXPECT_EQ(got.failures[0].shard, 1u);
  EXPECT_TRUE(got.failures[0].recovered);
  EXPECT_TRUE(got.missing_cells().empty());
  EXPECT_TRUE(want.failures.empty());
}

TEST(Robustness, GarbledShardRecoveryResumesFromCheckpoints) {
  // A garbling worker exits cleanly but emits truncated JSON; with
  // checkpointing armed the retry must climb the snapshot ladder (bounded
  // re-work, recorded in resume_ttis) and still equal the clean run.
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tsim_robust_ckpt_XXXXXX")
                        .string();
  ASSERT_NE(::mkdtemp(dir.data()), nullptr);

  mac::FarmConfig clean = small_faulted_farm();
  const mac::FarmResult want = mac::run_farm(clean);

  mac::FarmConfig faulted = clean;
  faulted.shards = 2;
  faulted.policy = mac::FarmPolicy::kRetry;
  faulted.host_fault.garble_shard = 0;
  faulted.checkpoint_every = 4;
  faulted.checkpoint_dir = dir;
  const mac::FarmResult got = mac::run_farm(faulted);

  ASSERT_EQ(got.cells.size(), want.cells.size());
  for (size_t c = 0; c < want.cells.size(); ++c)
    EXPECT_TRUE(got.cells[c] == want.cells[c]) << "cell " << c;
  ASSERT_FALSE(got.failures.empty());
  EXPECT_EQ(got.failures[0].shard, 0u);
  EXPECT_TRUE(got.failures[0].recovered);
  // The garbled worker finished simulating (and checkpointing) before its
  // truncated write, so the retry resumed from a snapshot, not TTI 0.
  ASSERT_EQ(got.failures[0].resume_ttis.size(), got.failures[0].cells.size());
  for (const i64 t : got.failures[0].resume_ttis) EXPECT_GT(t, 0);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Accuracy matrix: (MIMO size x 16-bit precision) against the golden model.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<u32, Precision>;

class AccuracySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AccuracySweep, TracksGoldenOnRayleigh) {
  const auto [n, prec] = GetParam();
  const auto lay = tiny_layout(n, prec);
  const auto p = rayleigh_problem(n, 13.0, 1000 + n);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1);
  machine.load_program(kern::build_mmse_program(lay));
  sim::stage_problem(machine.memory(), lay, 0, 0, p);
  ASSERT_TRUE(machine.run().exited);
  const auto xhat = sim::read_xhat(machine.memory(), lay, 0, 0);
  const auto golden = phy::mmse_detect(p.h, p.y, p.sigma2);
  double worst = 0;
  for (u32 i = 0; i < n; ++i) worst = std::max(worst, std::abs(xhat[i] - golden[i]));
  // fp16 absolute error grows mildly with the accumulation length.
  EXPECT_LT(worst, n <= 8 ? 0.08 : 0.3) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPrecisions, AccuracySweep,
    ::testing::Combine(::testing::Values(4u, 8u, 16u),
                       ::testing::Values(Precision::k16Half, Precision::k16WDotp,
                                         Precision::k16CDotp)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(kern::name_of(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace tsim
