// ISA table integrity, encode/decode round trips, and instruction
// semantics tests (executing single decoded instructions on a hart).
#include <gtest/gtest.h>

#include "rv/decode.h"
#include "rv/disasm.h"
#include "rv/encoding.h"
#include "rv/reg.h"
#include "rv/exec.h"
#include "rv/fp_formats.h"
#include "softfloat/minifloat.h"
#include "softfloat/packed.h"
#include "tera/memory.h"

namespace tsim::rv {
namespace {

TEST(IsaTable, EveryOpIsDefinedExactlyOnce) {
  const auto table = isa_table();
  for (size_t i = 1; i < kNumOps; ++i) {
    const auto& def = table[i];
    EXPECT_EQ(static_cast<size_t>(def.op), i) << "op index " << i;
    EXPECT_FALSE(def.mnemonic.empty());
    EXPECT_GE(def.issue_cycles, 1);
    EXPECT_GE(def.result_latency, 1);
  }
}

TEST(IsaTable, MatchBitsAreWithinMask) {
  for (const auto& def : isa_table()) {
    if (def.op == Op::kInvalid) continue;
    EXPECT_EQ(def.match & ~def.mask, 0u) << def.mnemonic;
  }
}

TEST(IsaTable, MnemonicLookupIsExhaustive) {
  for (const auto& def : isa_table()) {
    if (def.op == Op::kInvalid) continue;
    const InstrDef* found = find_mnemonic(def.mnemonic);
    ASSERT_NE(found, nullptr) << def.mnemonic;
    EXPECT_EQ(found->op, def.op);
  }
  EXPECT_EQ(find_mnemonic("bogus.instr"), nullptr);
}

/// Encode/decode round trip over every instruction with pseudo-random
/// operand patterns: the single-table design must guarantee agreement.
TEST(EncodeDecode, RoundTripsEveryInstruction) {
  for (const auto& def : isa_table()) {
    if (def.op == Op::kInvalid) continue;
    for (u32 pattern = 0; pattern < 8; ++pattern) {
      Decoded d;
      d.op = def.op;
      d.rd = static_cast<u8>((pattern * 7 + 3) % 32);
      d.rs1 = static_cast<u8>((pattern * 5 + 1) % 32);
      d.rs2 = static_cast<u8>((pattern * 11 + 2) % 32);
      d.rs3 = static_cast<u8>((pattern * 13 + 4) % 32);
      switch (def.fmt) {
        case Fmt::kI:
        case Fmt::kILoad:
          d.imm = static_cast<i32>(pattern * 321) - 1024;
          break;
        case Fmt::kS:
          d.imm = static_cast<i32>(pattern * 217) - 700;
          break;
        case Fmt::kB:
          d.imm = (static_cast<i32>(pattern * 100) - 400) & ~1;
          break;
        case Fmt::kU:
          d.imm = static_cast<i32>((pattern * 0x1234u) << 12);
          break;
        case Fmt::kJ:
          d.imm = (static_cast<i32>(pattern * 5000) - 20000) & ~1;
          break;
        case Fmt::kIShift:
        case Fmt::kPLanes:
          d.imm = static_cast<i32>(pattern % 32);
          break;
        case Fmt::kCsr:
        case Fmt::kCsrI:
          d.imm = 0xF14;
          break;
        default:
          d.imm = 0;
          break;
      }
      // Format-specific operand fields that the encoding doesn't carry.
      if (def.fmt == Fmt::kNullary) d = Decoded{.op = def.op};
      if (def.fmt == Fmt::kR2) d.rs2 = 0, d.rs3 = 0, d.imm = 0;
      if (def.fmt == Fmt::kR) d.rs3 = 0, d.imm = 0;
      if (def.fmt == Fmt::kU || def.fmt == Fmt::kJ) d.rs1 = d.rs2 = d.rs3 = 0;
      if (def.fmt == Fmt::kB || def.fmt == Fmt::kS) d.rd = 0, d.rs3 = 0;
      if (def.fmt == Fmt::kAmo || def.fmt == Fmt::kLrSc) d.rs3 = 0, d.imm = 0;
      if (def.op == Op::kLrW) d.rs2 = 0;
      if (def.fmt == Fmt::kI || def.fmt == Fmt::kILoad || def.fmt == Fmt::kIShift ||
          def.fmt == Fmt::kCsr || def.fmt == Fmt::kCsrI || def.fmt == Fmt::kPLanes)
        d.rs2 = 0, d.rs3 = 0;

      const u32 word = encode(d);
      const Decoded back = decode(word);
      ASSERT_EQ(back.op, d.op) << def.mnemonic << " word=0x" << std::hex << word;
      EXPECT_EQ(back.rd, d.rd) << def.mnemonic;
      EXPECT_EQ(back.rs1, d.rs1) << def.mnemonic;
      EXPECT_EQ(back.rs2, d.rs2) << def.mnemonic;
      EXPECT_EQ(back.rs3, d.rs3) << def.mnemonic;
      EXPECT_EQ(back.imm, d.imm) << def.mnemonic;
    }
  }
}

TEST(Decode, StandardEncodings) {
  // Cross-checked against the RISC-V spec: addi x1, x2, 42.
  EXPECT_EQ(decode(0x02A10093).op, Op::kAddi);
  EXPECT_EQ(decode(0x02A10093).rd, 1);
  EXPECT_EQ(decode(0x02A10093).rs1, 2);
  EXPECT_EQ(decode(0x02A10093).imm, 42);
  // lui a0, 0x12345.
  EXPECT_EQ(decode(0x12345537).op, Op::kLui);
  // ecall / ebreak / wfi.
  EXPECT_EQ(decode(0x00000073).op, Op::kEcall);
  EXPECT_EQ(decode(0x00100073).op, Op::kEbreak);
  EXPECT_EQ(decode(0x10500073).op, Op::kWfi);
  // mul a0, a1, a2.
  EXPECT_EQ(decode(0x02C58533).op, Op::kMul);
  // amoadd.w a0, a1, (a2).
  EXPECT_EQ(decode(0x00B6252F).op, Op::kAmoaddW);
  // Garbage.
  EXPECT_EQ(decode(0xFFFFFFFF).op, Op::kInvalid);
  EXPECT_EQ(decode(0x00000000).op, Op::kInvalid);
}

TEST(Disasm, RendersReadableText) {
  EXPECT_EQ(disassemble_word(0x02A10093), "addi ra, sp, 42");
  EXPECT_EQ(disassemble_word(0xFFFFFFFF), ".word 0xffffffff");
  Decoded d{.op = Op::kPLw, .rd = 10, .rs1 = 11, .imm = 4};
  EXPECT_EQ(disassemble(d), "p.lw a0, 4(a1!)");
}

TEST(Regs, NamesAndParsing) {
  EXPECT_EQ(reg_name(0), "zero");
  EXPECT_EQ(reg_name(2), "sp");
  EXPECT_EQ(parse_reg("a0").value(), 10u);
  EXPECT_EQ(parse_reg("x31").value(), 31u);
  EXPECT_EQ(parse_reg("fp").value(), 8u);
  EXPECT_FALSE(parse_reg("x32").has_value());
  EXPECT_FALSE(parse_reg("q7").has_value());
}

// ---------------------------------------------------------------------------
// Semantics: execute single instructions against a small memory.
// ---------------------------------------------------------------------------

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : mem_(tera::TeraPoolConfig::tiny()) {}

  StepInfo exec(const Decoded& d) { return execute(d, hart_, mem_); }

  u32 run_r(Op op, u32 a, u32 b) {
    hart_.x[5] = a;
    hart_.x[6] = b;
    exec({.op = op, .rd = 7, .rs1 = 5, .rs2 = 6});
    return hart_.x[7];
  }

  u32 run_r4(Op op, u32 a, u32 b, u32 c) {
    hart_.x[5] = a;
    hart_.x[6] = b;
    hart_.x[28] = c;
    exec({.op = op, .rd = 7, .rs1 = 5, .rs2 = 6, .rs3 = 28});
    return hart_.x[7];
  }

  HartState hart_;
  tera::ClusterMemory mem_;
};

TEST_F(ExecTest, IntegerAluBasics) {
  EXPECT_EQ(run_r(Op::kAdd, 3, 4), 7u);
  EXPECT_EQ(run_r(Op::kSub, 3, 4), 0xFFFFFFFFu);
  EXPECT_EQ(run_r(Op::kXor, 0xFF00, 0x0FF0), 0xF0F0u);
  EXPECT_EQ(run_r(Op::kSltu, 1, 2), 1u);
  EXPECT_EQ(run_r(Op::kSlt, 0xFFFFFFFF, 0), 1u);  // -1 < 0
  EXPECT_EQ(run_r(Op::kSra, 0x80000000, 4), 0xF8000000u);
  EXPECT_EQ(run_r(Op::kSrl, 0x80000000, 4), 0x08000000u);
}

TEST_F(ExecTest, X0IsHardwiredToZero) {
  hart_.x[5] = 100;
  exec({.op = Op::kAdd, .rd = 0, .rs1 = 5, .rs2 = 5});
  EXPECT_EQ(hart_.x[0], 0u);
}

TEST_F(ExecTest, MulDivEdgeCases) {
  EXPECT_EQ(run_r(Op::kMul, 7, 6), 42u);
  EXPECT_EQ(run_r(Op::kMulh, 0x80000000, 0x80000000), 0x40000000u);
  EXPECT_EQ(run_r(Op::kMulhu, 0xFFFFFFFF, 0xFFFFFFFF), 0xFFFFFFFEu);
  EXPECT_EQ(run_r(Op::kDiv, 7, 2), 3u);
  EXPECT_EQ(run_r(Op::kDiv, 7, 0), 0xFFFFFFFFu);             // div by zero
  EXPECT_EQ(run_r(Op::kDiv, 0x80000000, 0xFFFFFFFF), 0x80000000u);  // overflow
  EXPECT_EQ(run_r(Op::kRem, 7, 0), 7u);
  EXPECT_EQ(run_r(Op::kRemu, 7, 3), 1u);
}

TEST_F(ExecTest, BranchesUpdatePc) {
  hart_.pc = 0x100;
  hart_.x[5] = 1;
  hart_.x[6] = 1;
  const auto info = exec({.op = Op::kBeq, .rs1 = 5, .rs2 = 6, .imm = 64});
  EXPECT_TRUE(info.branch_taken);
  EXPECT_EQ(hart_.pc, 0x140u);
  const auto info2 = exec({.op = Op::kBne, .rs1 = 5, .rs2 = 6, .imm = 64});
  EXPECT_FALSE(info2.branch_taken);
  EXPECT_EQ(hart_.pc, 0x144u);
}

TEST_F(ExecTest, JalLinksAndJumps) {
  hart_.pc = 0x200;
  exec({.op = Op::kJal, .rd = 1, .imm = 0x100});
  EXPECT_EQ(hart_.x[1], 0x204u);
  EXPECT_EQ(hart_.pc, 0x300u);
  hart_.x[5] = 0x500;
  exec({.op = Op::kJalr, .rd = 1, .rs1 = 5, .imm = 4});
  EXPECT_EQ(hart_.x[1], 0x304u);
  EXPECT_EQ(hart_.pc, 0x504u);
}

TEST_F(ExecTest, LoadStoreRoundTrip) {
  hart_.x[5] = 0x1000;
  hart_.x[6] = 0xDEADBEEF;
  exec({.op = Op::kSw, .rs1 = 5, .rs2 = 6, .imm = 0});
  exec({.op = Op::kLw, .rd = 7, .rs1 = 5, .imm = 0});
  EXPECT_EQ(hart_.x[7], 0xDEADBEEFu);
  exec({.op = Op::kLhu, .rd = 7, .rs1 = 5, .imm = 0});
  EXPECT_EQ(hart_.x[7], 0xBEEFu);
  exec({.op = Op::kLh, .rd = 7, .rs1 = 5, .imm = 0});
  EXPECT_EQ(hart_.x[7], 0xFFFFBEEFu);  // sign-extended
  exec({.op = Op::kLbu, .rd = 7, .rs1 = 5, .imm = 3});
  EXPECT_EQ(hart_.x[7], 0xDEu);
}

TEST_F(ExecTest, MisalignedAccessFaults) {
  hart_.x[5] = 0x1001;
  const auto info = exec({.op = Op::kLw, .rd = 7, .rs1 = 5, .imm = 0});
  EXPECT_TRUE(info.halted);
  EXPECT_TRUE(hart_.trapped);
}

TEST_F(ExecTest, PostIncrementLoadUpdatesBase) {
  hart_.x[5] = 0x1000;
  hart_.x[6] = 0x12345678;
  exec({.op = Op::kSw, .rs1 = 5, .rs2 = 6, .imm = 0});
  exec({.op = Op::kPLw, .rd = 7, .rs1 = 5, .imm = 8});
  EXPECT_EQ(hart_.x[7], 0x12345678u);
  EXPECT_EQ(hart_.x[5], 0x1008u);  // post-incremented
}

TEST_F(ExecTest, PostIncrementStoreUpdatesBase) {
  hart_.x[5] = 0x1000;
  hart_.x[6] = 0xCAFE;
  exec({.op = Op::kPSw, .rs1 = 5, .rs2 = 6, .imm = 4});
  EXPECT_EQ(hart_.x[5], 0x1004u);  // post-incremented
  hart_.x[8] = 0x1000;
  exec({.op = Op::kLw, .rd = 7, .rs1 = 8, .imm = 0});
  EXPECT_EQ(hart_.x[7], 0xCAFEu);  // stored at the pre-increment address
}

TEST_F(ExecTest, AmoAddReturnsOldValue) {
  hart_.x[5] = 0x2000;
  hart_.x[6] = 5;
  exec({.op = Op::kSw, .rs1 = 5, .rs2 = 6, .imm = 0});
  hart_.x[7] = 3;
  exec({.op = Op::kAmoaddW, .rd = 8, .rs1 = 5, .rs2 = 7});
  EXPECT_EQ(hart_.x[8], 5u);
  exec({.op = Op::kLw, .rd = 9, .rs1 = 5, .imm = 0});
  EXPECT_EQ(hart_.x[9], 8u);
}

TEST_F(ExecTest, LrScSequence) {
  hart_.x[5] = 0x3000;
  hart_.x[6] = 77;
  exec({.op = Op::kSw, .rs1 = 5, .rs2 = 6, .imm = 0});
  exec({.op = Op::kLrW, .rd = 7, .rs1 = 5});
  EXPECT_EQ(hart_.x[7], 77u);
  hart_.x[8] = 88;
  exec({.op = Op::kScW, .rd = 9, .rs1 = 5, .rs2 = 8});
  EXPECT_EQ(hart_.x[9], 0u);  // success
  exec({.op = Op::kLw, .rd = 10, .rs1 = 5, .imm = 0});
  EXPECT_EQ(hart_.x[10], 88u);
  // Second sc without reservation fails.
  exec({.op = Op::kScW, .rd = 9, .rs1 = 5, .rs2 = 8});
  EXPECT_EQ(hart_.x[9], 1u);
}

TEST_F(ExecTest, CsrReadsHartidAndCounters) {
  hart_.hartid = 42;
  hart_.cycle = 0x1234;
  exec({.op = Op::kCsrrs, .rd = 7, .rs1 = 0, .imm = 0xF14});
  EXPECT_EQ(hart_.x[7], 42u);
  exec({.op = Op::kCsrrs, .rd = 7, .rs1 = 0, .imm = 0xB00});
  EXPECT_EQ(hart_.x[7], 0x1234u);
}

TEST_F(ExecTest, WfiSetsSleepState) {
  const auto info = exec({.op = Op::kWfi});
  EXPECT_TRUE(info.entered_wfi);
  EXPECT_TRUE(hart_.in_wfi);
}

// ----- fp16 scalar (Zhinx) -----

u32 h(double v) { return sf::F16::from_double(v); }

TEST_F(ExecTest, HalfPrecisionArithmetic) {
  EXPECT_EQ(run_r(Op::kFaddH, h(1.5), h(2.0)) & 0xFFFF, h(3.5));
  EXPECT_EQ(run_r(Op::kFsubH, h(1.0), h(0.5)) & 0xFFFF, h(0.5));
  EXPECT_EQ(run_r(Op::kFmulH, h(3.0), h(0.5)) & 0xFFFF, h(1.5));
  EXPECT_EQ(run_r(Op::kFdivH, h(1.0), h(4.0)) & 0xFFFF, h(0.25));
}

TEST_F(ExecTest, HalfFusedMultiplyAddFamily) {
  EXPECT_EQ(run_r4(Op::kFmaddH, h(2.0), h(3.0), h(1.0)) & 0xFFFF, h(7.0));
  EXPECT_EQ(run_r4(Op::kFmsubH, h(2.0), h(3.0), h(1.0)) & 0xFFFF, h(5.0));
  EXPECT_EQ(run_r4(Op::kFnmsubH, h(2.0), h(3.0), h(1.0)) & 0xFFFF, h(-5.0));
  EXPECT_EQ(run_r4(Op::kFnmaddH, h(2.0), h(3.0), h(1.0)) & 0xFFFF, h(-7.0));
}

TEST_F(ExecTest, HalfSqrtAndCompare) {
  hart_.x[5] = h(9.0);
  exec({.op = Op::kFsqrtH, .rd = 7, .rs1 = 5});
  EXPECT_EQ(hart_.x[7] & 0xFFFF, h(3.0));
  EXPECT_EQ(run_r(Op::kFltH, h(1.0), h(2.0)), 1u);
  EXPECT_EQ(run_r(Op::kFeqH, h(2.0), h(2.0)), 1u);
  EXPECT_EQ(run_r(Op::kFleH, h(3.0), h(2.0)), 0u);
}

TEST_F(ExecTest, HalfConversions) {
  hart_.x[5] = h(2.5);
  exec({.op = Op::kFcvtSH, .rd = 7, .rs1 = 5});
  EXPECT_EQ(std::bit_cast<float>(hart_.x[7]), 2.5f);
  hart_.x[5] = std::bit_cast<u32>(0.75f);
  exec({.op = Op::kFcvtHS, .rd = 7, .rs1 = 5});
  EXPECT_EQ(hart_.x[7] & 0xFFFF, h(0.75));
  hart_.x[5] = h(-7.9);
  exec({.op = Op::kFcvtWH, .rd = 7, .rs1 = 5});
  EXPECT_EQ(static_cast<i32>(hart_.x[7]), -7);  // truncation
  hart_.x[5] = static_cast<u32>(-3);
  exec({.op = Op::kFcvtHW, .rd = 7, .rs1 = 5});
  EXPECT_EQ(hart_.x[7] & 0xFFFF, h(-3.0));
}

// ----- packed SIMD -----

TEST_F(ExecTest, PvAddSubHalfwords) {
  EXPECT_EQ(run_r(Op::kPvAddH, sf::pack16(1, 2), sf::pack16(10, 20)), sf::pack16(11, 22));
  EXPECT_EQ(run_r(Op::kPvSubH, sf::pack16(10, 5), sf::pack16(1, 7)),
            sf::pack16(9, 0xFFFE));
  EXPECT_EQ(run_r(Op::kPvAddB, sf::pack8(1, 2, 3, 255), sf::pack8(1, 1, 1, 1)),
            sf::pack8(2, 3, 4, 0));
}

TEST_F(ExecTest, PvShuffleSelectsLanes) {
  const u32 v = sf::pack16(0xAAAA, 0xBBBB);
  EXPECT_EQ(run_r(Op::kPvShuffleH, v, sf::pack16(1, 0)), sf::pack16(0xBBBB, 0xAAAA));
  const u32 b = sf::pack8(1, 2, 3, 4);
  EXPECT_EQ(run_r(Op::kPvShuffleB, b, sf::pack8(3, 2, 1, 0)), sf::pack8(4, 3, 2, 1));
}

TEST_F(ExecTest, PvShuffle2ReadsBothSources) {
  hart_.x[7] = sf::pack16(0xCCCC, 0xDDDD);  // old rd
  hart_.x[5] = sf::pack16(0xAAAA, 0xBBBB);
  hart_.x[6] = sf::pack16(2, 1);  // lane0 <- rd.lane0, lane1 <- rs1.lane1
  exec({.op = Op::kPvShuffle2H, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(hart_.x[7], sf::pack16(0xCCCC, 0xBBBB));
}

TEST_F(ExecTest, PvPackExtractInsert) {
  EXPECT_EQ(run_r(Op::kPvPackH, sf::pack16(0x1111, 0x9999), sf::pack16(0x2222, 0x8888)),
            sf::pack16(0x1111, 0x2222));
  hart_.x[5] = sf::pack16(0x7FFF, 0x8001);
  exec({.op = Op::kPvExtractH, .rd = 7, .rs1 = 5, .imm = 1});
  EXPECT_EQ(hart_.x[7], 0xFFFF8001u);  // sign-extended lane
  hart_.x[7] = 0;
  hart_.x[5] = 0xABCD;
  exec({.op = Op::kPvInsertH, .rd = 7, .rs1 = 5, .imm = 1});
  EXPECT_EQ(hart_.x[7], 0xABCD0000u);
}

TEST_F(ExecTest, PMacAccumulates) {
  hart_.x[7] = 100;
  hart_.x[5] = 6;
  hart_.x[6] = 7;
  exec({.op = Op::kPMac, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(hart_.x[7], 142u);
  exec({.op = Op::kPMsu, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(hart_.x[7], 100u);
}

// ----- SmallFloat / MiniFloat vector ops -----

TEST_F(ExecTest, VfaddHalfLanes) {
  const u32 a = sf::pack16(h(1.0), h(2.0));
  const u32 b = sf::pack16(h(0.5), h(0.25));
  EXPECT_EQ(run_r(Op::kVfaddH, a, b), sf::pack16(h(1.5), h(2.25)));
  EXPECT_EQ(run_r(Op::kVfmulH, a, b), sf::pack16(h(0.5), h(0.5)));
}

TEST_F(ExecTest, VfmacFusesPerLane) {
  hart_.x[7] = sf::pack16(h(1.0), h(-1.0));
  hart_.x[5] = sf::pack16(h(2.0), h(3.0));
  hart_.x[6] = sf::pack16(h(0.5), h(2.0));
  exec({.op = Op::kVfmacH, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(hart_.x[7], sf::pack16(h(2.0), h(5.0)));
}

TEST_F(ExecTest, VfdotpexSHAccumulatesInF32) {
  hart_.x[7] = std::bit_cast<u32>(10.0f);
  hart_.x[5] = sf::pack16(h(1.5), h(2.0));
  hart_.x[6] = sf::pack16(h(2.0), h(-0.5));
  exec({.op = Op::kVfdotpexSH, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(std::bit_cast<float>(hart_.x[7]), 12.0f);  // 10 + 3 - 1
}

TEST_F(ExecTest, VfcdotpComplexMac) {
  // acc += (1+2i) * (3+4i) = (3-8) + (4+6)i = -5 + 10i.
  hart_.x[7] = 0;
  hart_.x[5] = sf::pack16(h(1.0), h(2.0));
  hart_.x[6] = sf::pack16(h(3.0), h(4.0));
  exec({.op = Op::kVfcdotpH, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(hart_.x[7], sf::pack16(h(-5.0), h(10.0)));
}

TEST_F(ExecTest, VfccdotpConjugatesFirstOperand) {
  // acc += conj(1+2i) * (3+4i) = (3+8) + (4-6)i = 11 - 2i.
  hart_.x[7] = 0;
  hart_.x[5] = sf::pack16(h(1.0), h(2.0));
  hart_.x[6] = sf::pack16(h(3.0), h(4.0));
  exec({.op = Op::kVfccdotpH, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(hart_.x[7], sf::pack16(h(11.0), h(-2.0)));
}

u32 q(double v) { return Fp8::from_double(v); }

TEST_F(ExecTest, VfaddByteLanes) {
  const u32 a = sf::pack8(static_cast<u8>(q(1.0)), static_cast<u8>(q(2.0)),
                          static_cast<u8>(q(-1.0)), static_cast<u8>(q(0.5)));
  const u32 b = sf::pack8(static_cast<u8>(q(1.0)), static_cast<u8>(q(1.0)),
                          static_cast<u8>(q(1.0)), static_cast<u8>(q(0.5)));
  const u32 r = run_r(Op::kVfaddB, a, b);
  EXPECT_EQ(sf::lane8(r, 0), q(2.0));
  EXPECT_EQ(sf::lane8(r, 1), q(3.0));
  EXPECT_EQ(sf::lane8(r, 2), q(0.0));
  EXPECT_EQ(sf::lane8(r, 3), q(1.0));
}

TEST_F(ExecTest, VfdotpexHBWidensToF16) {
  // acc(fp16) += 1*2 + 2*2 + 0.5*4 + (-1)*1 = 7.
  hart_.x[7] = h(1.0);
  hart_.x[5] = sf::pack8(static_cast<u8>(q(1.0)), static_cast<u8>(q(2.0)),
                         static_cast<u8>(q(0.5)), static_cast<u8>(q(-1.0)));
  hart_.x[6] = sf::pack8(static_cast<u8>(q(2.0)), static_cast<u8>(q(2.0)),
                         static_cast<u8>(q(4.0)), static_cast<u8>(q(1.0)));
  exec({.op = Op::kVfdotpexHB, .rd = 7, .rs1 = 5, .rs2 = 6});
  EXPECT_EQ(hart_.x[7] & 0xFFFF, h(8.0));
}

TEST_F(ExecTest, VfcvtBetweenFp8AndFp16) {
  hart_.x[5] = sf::pack8(static_cast<u8>(q(1.5)), static_cast<u8>(q(-2.0)), 0, 0);
  exec({.op = Op::kVfcvtHB, .rd = 7, .rs1 = 5});
  EXPECT_EQ(hart_.x[7], sf::pack16(h(1.5), h(-2.0)));
  hart_.x[5] = sf::pack16(h(0.25), h(3.0));
  exec({.op = Op::kVfcvtBH, .rd = 7, .rs1 = 5});
  EXPECT_EQ(sf::lane8(hart_.x[7], 0), q(0.25));
  EXPECT_EQ(sf::lane8(hart_.x[7], 1), q(3.0));
}

TEST_F(ExecTest, InvalidInstructionHalts) {
  const auto info = exec(Decoded{});
  EXPECT_TRUE(info.halted);
  EXPECT_TRUE(hart_.trapped);
}

}  // namespace
}  // namespace tsim::rv
