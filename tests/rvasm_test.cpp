// Assembler tests: builder API, label fixups, pseudo-instructions, and the
// text assembler (including round-trips through the disassembler).
#include <gtest/gtest.h>

#include "rv/decode.h"
#include "rv/disasm.h"
#include "rvasm/builder.h"
#include "rvasm/textasm.h"

namespace tsim::rvasm {
namespace {

using rv::Op;
using rv::Reg;

TEST(Builder, EmitsAndLinksForwardBranch) {
  Asm a(0x80000000);
  a.li(Reg::t0, 5);
  a.label("loop");
  a.addi(Reg::t0, Reg::t0, -1);
  a.bnez(Reg::t0, "loop");
  a.ebreak();
  const Program p = a.link();
  ASSERT_EQ(p.words.size(), 4u);
  const auto d = rv::decode(p.words[2]);
  EXPECT_EQ(d.op, Op::kBne);
  EXPECT_EQ(d.imm, -4);  // back to "loop"
}

TEST(Builder, LiSplitsLargeConstants) {
  Asm a;
  a.li(Reg::t0, 0x12345678);
  const Program p = a.link();
  ASSERT_EQ(p.words.size(), 2u);
  EXPECT_EQ(rv::decode(p.words[0]).op, Op::kLui);
  EXPECT_EQ(rv::decode(p.words[1]).op, Op::kAddi);
  // Verify the combination reconstructs the constant.
  const i32 hi = rv::decode(p.words[0]).imm;
  const i32 lo = rv::decode(p.words[1]).imm;
  EXPECT_EQ(static_cast<u32>(hi) + static_cast<u32>(lo), 0x12345678u);
}

TEST(Builder, LiSmallConstantsAreOneInstruction) {
  Asm a;
  a.li(Reg::t0, -7);
  EXPECT_EQ(a.link().words.size(), 1u);
}

TEST(Builder, LiHandlesNegativeLowPart) {
  // 0x12345FFF has low 12 bits that are negative as an I-immediate.
  Asm a;
  a.li(Reg::t0, 0x12345FFF);
  const Program p = a.link();
  const i32 hi = rv::decode(p.words[0]).imm;
  const i32 lo = rv::decode(p.words[1]).imm;
  EXPECT_EQ(static_cast<u32>(hi + lo), 0x12345FFFu);
}

TEST(Builder, LaResolvesSymbolAddress) {
  Asm a(0x80000000);
  a.la(Reg::a0, "data");
  a.ebreak();
  a.label("data");
  a.word(0xCAFEBABE);
  const Program p = a.link();
  EXPECT_EQ(p.symbol("data"), 0x8000000Cu);
  const i32 hi = rv::decode(p.words[0]).imm;
  const i32 lo = rv::decode(p.words[1]).imm;
  EXPECT_EQ(static_cast<u32>(hi) + static_cast<u32>(lo), 0x8000000Cu);
}

TEST(Builder, DuplicateLabelThrows) {
  Asm a;
  a.label("x");
  EXPECT_THROW(a.label("x"), SimError);
}

TEST(Builder, UndefinedLabelThrowsAtLink) {
  Asm a;
  a.j("nowhere");
  EXPECT_THROW(a.link(), SimError);
}

TEST(Builder, BranchRangeChecked) {
  Asm a;
  a.bnez(Reg::t0, "far");
  for (int i = 0; i < 3000; ++i) a.nop();
  a.label("far");
  EXPECT_THROW(a.link(), SimError);
}

TEST(Builder, ImmediateRangeChecked) {
  Asm a;
  EXPECT_THROW(a.addi(Reg::t0, Reg::t0, 5000), SimError);
  EXPECT_THROW(a.lw(Reg::t0, -3000, Reg::t1), SimError);
}

TEST(TextAsm, AssemblesBasicProgram) {
  const Program p = assemble(R"(
    # a tiny counting loop
    start:
      li   t0, 3
      li   t1, 0
    loop:
      addi t1, t1, 1
      addi t0, t0, -1
      bnez t0, loop
      ebreak
  )");
  EXPECT_EQ(p.symbol("start"), 0x80000000u);
  EXPECT_EQ(rv::decode(p.words.back()).op, Op::kEbreak);
}

TEST(TextAsm, ParsesMemoryOperands) {
  const Program p = assemble(R"(
    lw a0, 8(a1)
    sw a0, -4(sp)
    p.lw a2, 4(a3!)
    p.sh a2, 2(a4!)
  )");
  EXPECT_EQ(rv::decode(p.words[0]).op, Op::kLw);
  EXPECT_EQ(rv::decode(p.words[0]).imm, 8);
  EXPECT_EQ(rv::decode(p.words[1]).imm, -4);
  EXPECT_EQ(rv::decode(p.words[2]).op, Op::kPLw);
  EXPECT_EQ(rv::decode(p.words[3]).op, Op::kPSh);
}

TEST(TextAsm, ParsesCsrAndAmoAndFp) {
  const Program p = assemble(R"(
    csrr t0, mhartid
    csrrs t1, 0xB00, zero
    amoadd.w t2, t3, (t4)
    lr.w t5, (t6)
    sc.w t5, t6, (a0)
    fmadd.h a1, a2, a3, a4
    vfdotpex.s.h a5, a6, a7
    fcvt.h.s s2, s3
    pv.extract.h s4, s5, 1
  )");
  EXPECT_EQ(rv::decode(p.words[0]).op, Op::kCsrrs);
  EXPECT_EQ(rv::decode(p.words[0]).imm, 0xF14);
  EXPECT_EQ(rv::decode(p.words[2]).op, Op::kAmoaddW);
  EXPECT_EQ(rv::decode(p.words[3]).op, Op::kLrW);
  EXPECT_EQ(rv::decode(p.words[4]).op, Op::kScW);
  EXPECT_EQ(rv::decode(p.words[5]).op, Op::kFmaddH);
  EXPECT_EQ(rv::decode(p.words[6]).op, Op::kVfdotpexSH);
  EXPECT_EQ(rv::decode(p.words[7]).op, Op::kFcvtHS);
  EXPECT_EQ(rv::decode(p.words[8]).op, Op::kPvExtractH);
  EXPECT_EQ(rv::decode(p.words[8]).imm, 1);
}

TEST(TextAsm, WordDirectiveAndComments) {
  const Program p = assemble(R"(
    .word 0xDEADBEEF   // trailing comment
    .space 8
  )");
  ASSERT_EQ(p.words.size(), 3u);
  EXPECT_EQ(p.words[0], 0xDEADBEEFu);
  EXPECT_EQ(p.words[1], 0u);
}

TEST(TextAsm, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus t0, t1\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TextAsm, RejectsBadRegister) {
  EXPECT_THROW(assemble("addi q0, t0, 1"), SimError);
  EXPECT_THROW(assemble("addi t0, t0, 99999"), SimError);
}

/// Round-trip: disassemble every instruction the builder can emit and
/// reassemble it, expecting identical words (for formats whose disasm
/// output is valid assembler input).
TEST(TextAsm, DisasmRoundTripSimpleFormats) {
  Asm a;
  a.r(Op::kAdd, Reg::a0, Reg::a1, Reg::a2);
  a.i(Op::kAddi, Reg::t0, Reg::t1, -42);
  a.load(Op::kLw, Reg::s2, 16, Reg::sp);
  a.store(Op::kSw, Reg::s3, -8, Reg::sp);
  a.r(Op::kVfcdotpH, Reg::a3, Reg::a4, Reg::a5);
  a.r4(Op::kFmaddS, Reg::t0, Reg::t1, Reg::t2, Reg::t3);
  const Program p = a.link();
  std::string text;
  for (const u32 w : p.words) text += rv::disassemble_word(w) + "\n";
  const Program p2 = assemble(text);
  EXPECT_EQ(p.words, p2.words);
}

}  // namespace
}  // namespace tsim::rvasm
