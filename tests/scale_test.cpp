// Full-scale smoke tests: the complete 1024-core TeraPool configuration
// (the paper's DUT) running the parallel MMSE on the fast ISS, single- and
// multi-threaded, plus capacity boundaries. Slower than unit tests by
// design (a few seconds total).
#include <gtest/gtest.h>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "kernels/profile.h"
#include "phy/mmse.h"
#include "sim/cosim.h"

namespace tsim {
namespace {

using kern::MmseLayout;
using kern::Precision;

MmseLayout full_layout(u32 n, Precision prec, u32 cores) {
  MmseLayout lay;
  lay.ntx = n;
  lay.nrx = n;
  lay.prec = prec;
  lay.num_cores = cores;
  lay.cluster = tera::TeraPoolConfig::full();
  lay.validate();
  return lay;
}

sim::Batch make_batch(u32 n, u32 problems, u64 seed) {
  Rng rng(seed);
  phy::Channel ch(phy::ChannelType::kRayleigh, n, n);
  phy::QamModulator qam(16);
  return sim::generate_batch(ch, qam, n, problems, 14.0, rng);
}

TEST(Scale, Full1024CoreParallelMmseCompletes) {
  // The paper's headline configuration: 1024 independent 4x4 problems, one
  // per core, with the fork-join barrier across all 1024 harts.
  const auto lay = full_layout(4, Precision::k16CDotp, 1024);
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 1024);
  machine.load_program(kern::build_mmse_program(lay));
  const auto batch = make_batch(4, 1024, 77);
  for (u32 c = 0; c < 1024; ++c)
    sim::stage_problem(machine.memory(), lay, c, 0, batch.problems[c]);

  const auto res = machine.run_threads(2);
  EXPECT_TRUE(res.exited);
  EXPECT_FALSE(res.deadlock);
  EXPECT_GT(res.instructions, 1024u * 500);

  // Spot-check detections across the cluster against the golden model.
  for (const u32 c : {0u, 1u, 511u, 1023u}) {
    const auto& p = batch.problems[c];
    const auto golden = phy::mmse_detect(p.h, p.y, p.sigma2);
    const auto dut = sim::read_xhat(machine.memory(), lay, c, 0);
    for (u32 i = 0; i < 4; ++i) {
      EXPECT_LT(std::abs(dut[i] - golden[i]), 0.15) << "core " << c << " elem " << i;
    }
  }
  // Every core produced a profile.
  for (const u32 c : {0u, 1023u}) {
    EXPECT_GT(kern::read_profile(machine.memory(), lay, c).total, 0u);
  }
}

TEST(Scale, LargestMimoAtMaxFittingCores) {
  // 32x32 at the L1 capacity limit (see DESIGN.md: 1024 cores do not fit).
  const u32 fit = MmseLayout::max_parallel_cores(tera::TeraPoolConfig::full(), 32, 32,
                                                 Precision::k16WDotp);
  ASSERT_GT(fit, 128u);
  ASSERT_LT(fit, 1024u);
  const auto lay = full_layout(32, Precision::k16WDotp, 64);  // bounded runtime
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, 64);
  machine.load_program(kern::build_mmse_program(lay));
  const auto batch = make_batch(32, 64, 78);
  for (u32 c = 0; c < 64; ++c)
    sim::stage_problem(machine.memory(), lay, c, 0, batch.problems[c]);
  const auto res = machine.run_threads(2);
  EXPECT_TRUE(res.exited);
  const auto& p = batch.problems[63];
  const auto golden = phy::mmse_detect(p.h, p.y, p.sigma2);
  const auto dut = sim::read_xhat(machine.memory(), lay, 63, 0);
  double worst = 0;
  for (u32 i = 0; i < 32; ++i) worst = std::max(worst, std::abs(dut[i] - golden[i]));
  EXPECT_LT(worst, 0.5);  // fp16 on a 32x32 Rayleigh problem
}

TEST(Scale, BatchedAndParallelModesAgreeBitExactly) {
  // The same problems solved (a) batched on one core and (b) one-per-core
  // must produce bit-identical fp16 results: the kernels are deterministic
  // and layout-independent.
  const u32 n = 8, count = 8;
  const auto batch = make_batch(n, count, 79);

  MmseLayout batched = full_layout(n, Precision::k16WDotp, 1);
  batched.problems_per_core = count;
  batched.validate();
  iss::Machine mb(batched.cluster, iss::TimingConfig{}, 1);
  mb.load_program(kern::build_mmse_program(batched));
  for (u32 p = 0; p < count; ++p)
    sim::stage_problem(mb.memory(), batched, 0, p, batch.problems[p]);
  ASSERT_TRUE(mb.run().exited);

  const auto parallel = full_layout(n, Precision::k16WDotp, count);
  iss::Machine mp(parallel.cluster, iss::TimingConfig{}, count);
  mp.load_program(kern::build_mmse_program(parallel));
  for (u32 c = 0; c < count; ++c)
    sim::stage_problem(mp.memory(), parallel, c, 0, batch.problems[c]);
  ASSERT_TRUE(mp.run().exited);

  for (u32 p = 0; p < count; ++p) {
    const auto a = sim::read_xhat(mb.memory(), batched, 0, p);
    const auto b = sim::read_xhat(mp.memory(), parallel, p, 0);
    for (u32 i = 0; i < n; ++i) EXPECT_EQ(a[i], b[i]) << "problem " << p;
  }
}

TEST(Scale, PerHartCycleEstimatesAreThreadCountInvariant) {
  // The ISS per-hart timing depends only on the hart's own stream and the
  // barrier wake times, so 1-thread and 2-thread runs of the same parallel
  // program must report identical busy cycles per hart (excluding the
  // post-exit park race).
  const auto lay = full_layout(4, Precision::k16Half, 32);
  const auto program = kern::build_mmse_program(lay);
  const auto batch = make_batch(4, 32, 80);

  std::array<u64, 32> cycles1{}, cycles2{};
  for (int pass = 0; pass < 2; ++pass) {
    iss::Machine machine(lay.cluster, iss::TimingConfig{}, 32);
    machine.load_program(program);
    for (u32 c = 0; c < 32; ++c)
      sim::stage_problem(machine.memory(), lay, c, 0, batch.problems[c]);
    if (pass == 0) {
      machine.run();
    } else {
      machine.run_threads(2);
    }
    for (u32 c = 0; c < 32; ++c) {
      const auto prof = kern::read_profile(machine.memory(), lay, c);
      (pass == 0 ? cycles1 : cycles2)[c] = prof.total;
    }
  }
  for (u32 c = 0; c < 32; ++c) EXPECT_EQ(cycles1[c], cycles2[c]) << "hart " << c;
}

}  // namespace
}  // namespace tsim
