// Checkpoint/restore contract tests (sim/snapshot.h and the save_state/
// restore_state entry points layered on it): container integrity against
// bit-flips and truncation, bit-exact machine round-trips at adversarial
// boundaries (mid-superblock budget expiry, WFI-parked harts, armed-but-
// unfired faults, every kernel precision), cell round-trips with HARQ
// attempts in flight past the feedback timeout, the farm's snapshot resume
// ladder, and checkpoint-resumed crash recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "mac/farm.h"
#include "sim/cosim.h"
#include "sim/snapshot.h"

namespace tsim {
namespace {

using kern::MmseLayout;
using kern::Precision;

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

MmseLayout tiny_layout(u32 n, Precision prec, u32 cores = 1) {
  MmseLayout lay;
  lay.ntx = n;
  lay.nrx = n;
  lay.prec = prec;
  lay.num_cores = cores;
  lay.cluster = tera::TeraPoolConfig::tiny();
  lay.validate();
  return lay;
}

sim::MimoProblem rayleigh_problem(u32 n, double snr_db, u64 seed) {
  Rng rng(seed);
  phy::Channel ch(phy::ChannelType::kRayleigh, n, n);
  phy::QamModulator qam(16);
  const auto batch = sim::generate_batch(ch, qam, n, 1, snr_db, rng);
  return batch.problems[0];
}

std::string machine_payload(const iss::Machine& m) {
  sim::SnapshotWriter w;
  m.save_state(w);
  return w.payload();
}

std::string cell_payload(const mac::Cell& c) {
  sim::SnapshotWriter w;
  c.save_state(w);
  return w.payload();
}

/// Fresh per-test scratch directory under the system temp dir, removed on
/// destruction (tests run concurrently under ctest -j, so names must not
/// collide).
struct ScratchDir {
  std::string path;
  explicit ScratchDir(const char* tag) {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        (std::string("tsim_") + tag + "_XXXXXX"))
                           .string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

mac::FarmConfig small_farm() {
  mac::FarmConfig cfg;
  cfg.cells = 2;
  cfg.ttis = 12;
  cfg.ues_per_cell = 8;
  cfg.carrier.bandwidth_hz = 0.5e6;  // 16 subcarriers
  cfg.carrier.symbols_per_slot = 2;
  cfg.seed = 0xB0B5;
  return cfg;
}

// ---------------------------------------------------------------------------
// Container format: CRC, primitives, corruption detection.
// ---------------------------------------------------------------------------

TEST(Snapshot, Crc32KnownAnswer) {
  // The ISO-HDLC check value: CRC-32 of the ASCII digits "123456789".
  EXPECT_EQ(sim::crc32("123456789", 9), 0xCBF43926u);
  // Chaining partial buffers equals one shot.
  const u32 a = sim::crc32("12345", 5);
  EXPECT_EQ(sim::crc32("6789", 4, a), 0xCBF43926u);
}

TEST(Snapshot, WriterReaderRoundTripsEveryPrimitive) {
  sim::SnapshotWriter w;
  w.tag(0xABCD0001);
  w.write_u8(0x5A);
  w.write_bool(true);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i64(-42);
  w.write_string("hello snapshot");
  w.write_vec_u8({1, 2, 3});
  w.write_vec_u32({0xFFFFFFFFu, 0});
  w.write_vec_u64({7, 8, 9});

  sim::SnapshotReader r(w.payload());
  r.expect_tag(0xABCD0001, "test section");
  EXPECT_EQ(r.read_u8(), 0x5A);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_string(), "hello snapshot");
  EXPECT_EQ(r.read_vec_u8(), (std::vector<u8>{1, 2, 3}));
  EXPECT_EQ(r.read_vec_u32(), (std::vector<u32>{0xFFFFFFFFu, 0}));
  EXPECT_EQ(r.read_vec_u64(), (std::vector<u64>{7, 8, 9}));
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Snapshot, ReaderRejectsCorruptLengthAndBadTag) {
  sim::SnapshotWriter w;
  w.write_u64(0xFFFFFFFFFFFFFFFFull);  // absurd length prefix
  {
    sim::SnapshotReader r(w.payload());
    EXPECT_THROW(r.read_vec_u64(), sim::SnapshotError);
  }
  {
    sim::SnapshotWriter t;
    t.tag(1);
    sim::SnapshotReader r(t.payload());
    EXPECT_THROW(r.expect_tag(2, "mismatched"), sim::SnapshotError);
  }
  {
    sim::SnapshotReader r(std::string("ab"));  // too short for a u32
    EXPECT_THROW(r.read_u32(), sim::SnapshotError);
    try {
      sim::SnapshotReader r2(std::string("ab"), "some_file.snap");
      r2.read_u32();
      FAIL() << "expected SnapshotError";
    } catch (const sim::SnapshotError& e) {
      EXPECT_EQ(e.file(), "some_file.snap");
      EXPECT_EQ(e.offset(), 0u);
    }
  }
}

TEST(Snapshot, FileRoundTripIsAtomicAndClean) {
  ScratchDir dir("file");
  const std::string path = dir.path + "/round.snap";
  const std::string payload = "payload bytes \x00\x01\x02 with nul";
  sim::write_snapshot_file(path, 0x4B494E44, payload);
  EXPECT_EQ(sim::read_snapshot_file(path, 0x4B494E44), payload);
  // The atomic write leaves no temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Wrong kind is rejected even though the bytes are intact.
  EXPECT_THROW(sim::read_snapshot_file(path, 0x4B494E45), sim::SnapshotError);
}

TEST(Snapshot, TruncatedFilesAreDetectedAtEveryBoundary) {
  ScratchDir dir("trunc");
  const std::string path = dir.path + "/t.snap";
  sim::write_snapshot_file(path, 7, std::string(64, 'x'));
  const std::string whole = slurp(path);
  ASSERT_EQ(whole.size(), 24u + 64u);
  // Mid-header, exactly-header, and mid-payload truncations must all throw
  // SnapshotError (never a silent short read).
  for (const size_t keep : {size_t{3}, size_t{12}, size_t{24}, size_t{50}}) {
    spit(path, whole.substr(0, keep));
    EXPECT_THROW(sim::read_snapshot_file(path, 7), sim::SnapshotError)
        << "truncated to " << keep << " bytes";
  }
  // Trailing garbage is corruption too.
  spit(path, whole + "zz");
  EXPECT_THROW(sim::read_snapshot_file(path, 7), sim::SnapshotError);
}

TEST(Snapshot, BitFlipsAreDetectedEverywhere) {
  ScratchDir dir("flip");
  const std::string path = dir.path + "/f.snap";
  sim::write_snapshot_file(path, 7, std::string(64, 'y'));
  const std::string whole = slurp(path);
  // Flip one bit in every region: magic, version, kind, CRC, size, payload.
  for (const size_t at : {size_t{1}, size_t{5}, size_t{9}, size_t{13},
                          size_t{17}, size_t{30}, whole.size() - 1}) {
    std::string bad = whole;
    bad[at] = static_cast<char>(bad[at] ^ 0x10);
    spit(path, bad);
    EXPECT_THROW(sim::read_snapshot_file(path, 7), sim::SnapshotError)
        << "bit flip at byte " << at;
  }
  // And the pristine file still reads back.
  spit(path, whole);
  EXPECT_EQ(sim::read_snapshot_file(path, 7), std::string(64, 'y'));
}

// ---------------------------------------------------------------------------
// Machine round-trips at adversarial boundaries.
// ---------------------------------------------------------------------------

class MachinePrecisionRoundTrip : public ::testing::TestWithParam<Precision> {};

TEST_P(MachinePrecisionRoundTrip, MidRunCutContinuesBitIdentically) {
  // Cut the run mid-flight with an instruction budget (which can land inside
  // a lockstep superblock sweep - run() normalizes every hart to a serial
  // boundary before returning), capture, restore into a fresh machine, and
  // finish both: every architectural bit and counter must agree.
  const auto lay = tiny_layout(8, GetParam(), 4);
  const auto program = kern::build_mmse_program(lay);

  iss::Machine a(lay.cluster, iss::TimingConfig{}, 4);
  a.load_program(program);
  for (u32 c = 0; c < 4; ++c)
    sim::stage_problem(a.memory(), lay, c, 0, rayleigh_problem(8, 12.0, 40 + c));
  const auto cut = a.run(2000);  // mid-run: nobody has exited yet
  ASSERT_FALSE(cut.exited);

  iss::Machine b(lay.cluster, iss::TimingConfig{}, 4);
  sim::SnapshotReader r(machine_payload(a));
  b.restore_state(r);
  EXPECT_NO_THROW(r.expect_end());
  EXPECT_EQ(machine_payload(a), machine_payload(b));

  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_TRUE(ra.exited);
  EXPECT_TRUE(rb.exited);
  EXPECT_EQ(ra.exit_code, rb.exit_code);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(machine_payload(a), machine_payload(b));
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, MachinePrecisionRoundTrip,
                         ::testing::Values(Precision::k16Half,
                                           Precision::k16WDotp,
                                           Precision::k16CDotp,
                                           Precision::k8Quarter,
                                           Precision::k8WDotp),
                         [](const auto& info) {
                           return std::string(kern::name_of(info.param));
                         });

TEST(Snapshot, MachineRoundTripWithWfiParkedHarts) {
  // Run a multi-core barrier workload in small instruction slices until the
  // capture catches harts parked in WFI at the barrier, then round-trip.
  const auto lay = tiny_layout(4, Precision::k16CDotp, 4);
  iss::Machine a(lay.cluster, iss::TimingConfig{}, 4);
  a.load_program(kern::build_mmse_program(lay));
  for (u32 c = 0; c < 4; ++c)
    sim::stage_problem(a.memory(), lay, c, 0, rayleigh_problem(4, 10.0, 90 + c));

  bool saw_wfi_capture = false;
  for (int slice = 0; slice < 400; ++slice) {
    const auto res = a.run(50);
    if (res.exited) break;
    u32 parked = 0;
    for (u32 h = 0; h < 4; ++h)
      if (a.hart(h).state.in_wfi) ++parked;
    if (parked == 0) continue;
    saw_wfi_capture = true;
    iss::Machine b(lay.cluster, iss::TimingConfig{}, 4);
    sim::SnapshotReader r(machine_payload(a));
    b.restore_state(r);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.exited, rb.exited);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(machine_payload(a), machine_payload(b));
    break;
  }
  EXPECT_TRUE(saw_wfi_capture) << "never caught a WFI-parked hart";
}

TEST(Snapshot, MachineRoundTripWithArmedUnfiredFaults) {
  // Arm faults that have NOT fired at capture time: the schedule must travel
  // with the snapshot so both runs trap/hang identically after restore.
  const auto lay = tiny_layout(4, Precision::k16WDotp, 2);
  iss::Machine a(lay.cluster, iss::TimingConfig{}, 2);
  a.load_program(kern::build_mmse_program(lay));
  for (u32 c = 0; c < 2; ++c)
    sim::stage_problem(a.memory(), lay, c, 0, rayleigh_problem(4, 11.0, 70 + c));
  a.inject_hart_fault(1, 1500, /*hang=*/false);  // fires well past the cut
  const auto cut = a.run(300);
  ASSERT_FALSE(cut.exited);
  ASSERT_EQ(a.hart_faults_applied(), 0u);
  ASSERT_TRUE(a.hart_faults_armed());

  iss::Machine b(lay.cluster, iss::TimingConfig{}, 2);
  sim::SnapshotReader r(machine_payload(a));
  b.restore_state(r);
  EXPECT_TRUE(b.hart_faults_armed());

  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.exited, rb.exited);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(a.hart_faults_applied(), b.hart_faults_applied());
  EXPECT_EQ(a.hart_faults_applied(), 1u);
  EXPECT_EQ(machine_payload(a), machine_payload(b));
}

TEST(Snapshot, MachineRestoreRefusesCorruptImagesAndWrongShapes) {
  const auto lay = tiny_layout(4, Precision::k16Half, 1);
  iss::Machine a(lay.cluster, iss::TimingConfig{}, 1);
  a.load_program(kern::build_mmse_program(lay));
  const std::string payload = machine_payload(a);

  // Hart-count mismatch: a 2-hart machine must refuse a 1-hart capture.
  iss::Machine wrong(lay.cluster, iss::TimingConfig{}, 2);
  sim::SnapshotReader rw(payload);
  EXPECT_THROW(wrong.restore_state(rw), sim::SnapshotError);

  // A flipped bit inside a resident program image breaks the stored
  // fingerprint binding (or the payload structure) - never a silent load.
  bool threw_somewhere = false;
  for (size_t at = 64; at < payload.size(); at += payload.size() / 13) {
    std::string bad = payload;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    iss::Machine m(lay.cluster, iss::TimingConfig{}, 1);
    try {
      sim::SnapshotReader r(bad);
      m.restore_state(r);
      r.expect_end();
    } catch (const sim::SnapshotError&) {
      threw_somewhere = true;
    }
  }
  EXPECT_TRUE(threw_somewhere);
}

// ---------------------------------------------------------------------------
// Cell round-trips: HARQ in flight, feedback timers, delayed indications.
// ---------------------------------------------------------------------------

TEST(Snapshot, CellRoundTripWithHarqInFlightPastTimeout) {
  // Capture mid-soak with every stateful mechanism live: HARQ attempts in
  // flight (some past the feedback timeout), fault-delayed indications
  // pending, retransmissions queued. The restored cell must finish the soak
  // byte-identically.
  mac::FarmConfig cfg = small_farm();
  cfg.fault.enabled = true;
  cfg.fault.hart_trap_rate = 0.3;
  cfg.fault.hart_hang_rate = 0.2;
  cfg.fault.l1_flip_rate = 0.5;
  cfg.fault.drop_indication_rate = 0.2;
  cfg.fault.delay_indication_rate = 0.3;
  cfg.fault.delay_slots = 3;
  cfg.harq.feedback_timeout_slots = 2;  // shorter than the delivery delay

  mac::Cell clean(cfg.cell_config(0));
  for (u32 t = 0; t < cfg.ttis; ++t) clean.step(t);

  mac::Cell a(cfg.cell_config(0));
  for (u32 t = 0; t < 7; ++t) a.step(t);  // mid-soak, timers mid-count

  mac::Cell b(cfg.cell_config(0));
  sim::SnapshotReader r(cell_payload(a));
  b.restore_state(r);
  EXPECT_NO_THROW(r.expect_end());
  EXPECT_EQ(cell_payload(a), cell_payload(b));

  for (u32 t = 7; t < cfg.ttis; ++t) {
    a.step(t);
    b.step(t);
  }
  EXPECT_EQ(cell_payload(a), cell_payload(b));
  EXPECT_EQ(cell_payload(a), cell_payload(clean));
  EXPECT_TRUE(a.report() == clean.report());
  // The scenario actually exercised timeouts and delays.
  EXPECT_GT(clean.report().harq.timeouts + clean.report().delayed_ind, 0u);
}

TEST(Snapshot, CellRestoreRefusesForeignFingerprint) {
  mac::FarmConfig cfg = small_farm();
  mac::Cell a(cfg.cell_config(0));
  a.step(0);
  const std::string payload = cell_payload(a);

  // Different seed => different trajectory fingerprint: must refuse.
  mac::FarmConfig other = cfg;
  other.seed = cfg.seed + 1;
  mac::Cell b(other.cell_config(0));
  sim::SnapshotReader r(payload);
  EXPECT_THROW(b.restore_state(r), sim::SnapshotError);
}

// ---------------------------------------------------------------------------
// Farm snapshot files, the resume ladder, and checkpointed recovery.
// ---------------------------------------------------------------------------

TEST(Snapshot, ResumeLadderFallsPastCorruptedNewestSnapshot) {
  ScratchDir dir("ladder");
  mac::FarmConfig cfg = small_farm();
  cfg.checkpoint_every = 4;
  cfg.checkpoint_dir = dir.path;

  const mac::CellReport clean = mac::run_cell(cfg, 0);
  ASSERT_EQ(mac::list_cell_snapshots(dir.path, 0), (std::vector<u64>{4, 8}));

  // Corrupt the newest snapshot: resume must fall to TTI 4 and still finish
  // byte-identically.
  const std::string newest = mac::cell_snapshot_path(dir.path, 0, 8);
  std::string bytes = slurp(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  spit(newest, bytes);

  i64 from = -1;
  const mac::CellReport resumed = mac::run_cell(cfg, 0, true, &from);
  EXPECT_EQ(from, 4);
  EXPECT_TRUE(resumed == clean);

  // Truncate BOTH snapshots: the ladder bottoms out at a clean start.
  spit(newest, bytes.substr(0, 10));
  spit(mac::cell_snapshot_path(dir.path, 0, 4), "");
  const mac::CellReport fresh = mac::run_cell(cfg, 0, true, &from);
  EXPECT_EQ(from, -1);
  EXPECT_TRUE(fresh == clean);
}

TEST(Snapshot, CheckpointedCrashRecoveryResumesAndMatchesClean) {
  ScratchDir dir("farm");
  mac::FarmConfig clean = small_farm();
  const mac::FarmResult want = mac::run_farm(clean);

  mac::FarmConfig faulted = clean;
  faulted.shards = 2;
  faulted.policy = mac::FarmPolicy::kRetry;
  faulted.host_fault.crash_shard = 1;
  faulted.checkpoint_every = 4;
  faulted.checkpoint_dir = dir.path;
  const mac::FarmResult got = mac::run_farm(faulted);

  ASSERT_EQ(got.cells.size(), want.cells.size());
  for (size_t c = 0; c < want.cells.size(); ++c)
    EXPECT_TRUE(got.cells[c] == want.cells[c]) << "cell " << c;
  ASSERT_FALSE(got.failures.empty());
  const mac::ShardFailure& f = got.failures[0];
  EXPECT_EQ(f.shard, 1u);
  EXPECT_TRUE(f.recovered);
  // The recovery record says which ladder rung each cell restarted from;
  // the crashed worker ran its cells to completion before dying mid-stream,
  // so snapshots must exist and the retry must NOT have restarted clean.
  ASSERT_EQ(f.resume_ttis.size(), f.cells.size());
  for (const i64 t : f.resume_ttis) EXPECT_GT(t, 0);
}

TEST(Snapshot, FarmResumeFlagReproducesInterruptedSoak) {
  // Simulate an interrupted soak: checkpoint a full run, then re-run with
  // resume=true against the populated directory - the "resumed" soak picks
  // every cell up from its newest snapshot and must reproduce the clean
  // result exactly.
  ScratchDir dir("resume");
  mac::FarmConfig cfg = small_farm();
  const mac::FarmResult want = mac::run_farm(cfg);

  cfg.checkpoint_every = 4;
  cfg.checkpoint_dir = dir.path;
  const mac::FarmResult seeded = mac::run_farm(cfg);
  ASSERT_EQ(seeded.cells.size(), want.cells.size());

  cfg.resume = true;
  const mac::FarmResult resumed = mac::run_farm(cfg);
  ASSERT_EQ(resumed.cells.size(), want.cells.size());
  for (size_t c = 0; c < want.cells.size(); ++c) {
    EXPECT_TRUE(seeded.cells[c] == want.cells[c]) << "cell " << c;
    EXPECT_TRUE(resumed.cells[c] == want.cells[c]) << "cell " << c;
  }
}

// ---------------------------------------------------------------------------
// Bisection.
// ---------------------------------------------------------------------------

TEST(Snapshot, BisectFindsFirstDegradedTti) {
  ScratchDir dir("bisect");
  mac::FarmConfig cfg = small_farm();
  cfg.cells = 1;
  cfg.ttis = 32;
  cfg.checkpoint_every = 8;
  cfg.checkpoint_dir = dir.path;
  cfg.fault.enabled = true;
  cfg.fault.cluster_fail_tti = 13;  // cluster dies at TTI 13 onward

  const mac::BisectPredicate pred = mac::parse_bisect_predicate("degraded");
  const mac::BisectResult res = mac::bisect_cell(cfg, 0, pred);
  EXPECT_EQ(res.first_bad_tti, 13);
  // O(log snapshots) restores + at most one checkpoint interval replayed.
  EXPECT_LE(res.ttis_replayed, 8u);
  EXPECT_LE(res.snapshots_loaded, 4u);
  EXPECT_EQ(res.window_start, 8);
  ASSERT_FALSE(res.window_trace.empty());
  EXPECT_NE(res.window_trace.back().find("degraded=1"), std::string::npos);
}

TEST(Snapshot, BisectReportsNeverWhenPredicateCannotFire) {
  ScratchDir dir("bisect_none");
  mac::FarmConfig cfg = small_farm();
  cfg.cells = 1;
  cfg.checkpoint_every = 4;
  cfg.checkpoint_dir = dir.path;
  const mac::BisectPredicate pred = mac::parse_bisect_predicate("degraded");
  const mac::BisectResult res = mac::bisect_cell(cfg, 0, pred);
  EXPECT_EQ(res.first_bad_tti, -1);
}

TEST(Snapshot, BisectPredicateParsing) {
  EXPECT_EQ(mac::parse_bisect_predicate("miss").kind,
            mac::BisectPredicate::Kind::kDeadlineMiss);
  EXPECT_EQ(mac::parse_bisect_predicate("degraded").kind,
            mac::BisectPredicate::Kind::kDegradedSlot);
  const auto bler = mac::parse_bisect_predicate("bler=0.25");
  EXPECT_EQ(bler.kind, mac::BisectPredicate::Kind::kResidualBler);
  EXPECT_DOUBLE_EQ(bler.threshold, 0.25);
  EXPECT_THROW(mac::parse_bisect_predicate("nope"), SimError);
  EXPECT_THROW(mac::parse_bisect_predicate("bler=2"), SimError);
  EXPECT_THROW(mac::parse_bisect_predicate("bler="), SimError);
}

}  // namespace
}  // namespace tsim
